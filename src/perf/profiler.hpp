// Region profiler: maps per-core region counters back to the named
// source regions workload models declared (the VTune hot-spot
// attribution the paper uses in Section VI).
#pragma once

#include <vector>

#include "perf/metrics.hpp"
#include "sim/machine.hpp"

namespace coperf::perf {

/// Named per-region profiles for application binding `app_index`,
/// ordered by cycles descending. Regions below `min_cycles` are
/// dropped (noise from region-entry transitions).
std::vector<RegionProfile> profile_app(sim::Machine& m, std::size_t app_index,
                                       std::uint64_t min_cycles = 0);

/// Profile of one specific region by name ("" if absent -> empty name).
RegionProfile region_of(sim::Machine& m, std::size_t app_index,
                        const std::string& region_name);

}  // namespace coperf::perf
