// Derived hardware metrics (Section VI-A of the paper).
//
// All four metrics the paper profiles with VTune are pure arithmetic on
// the simulator's event counters:
//   CPI      = cycles / instructions
//   L2_PCP   = cycles with an L2 miss pending / cycles
//   LLC MPKI = 1000 * LLC misses / instructions
//   LL       = CPI * L2_PCP / (L2 misses per instruction)
#pragma once

#include <string>

#include "sim/stats.hpp"

namespace coperf::perf {

struct Metrics {
  double cpi = 0.0;
  double l2_pcp = 0.0;
  double llc_mpki = 0.0;
  double l2_mpki = 0.0;
  double ll = 0.0;
  double ipc = 0.0;

  static Metrics from(const sim::CoreStats& s) {
    return Metrics{s.cpi(), s.l2_pcp(), s.llc_mpki(), s.l2_mpki(), s.ll(),
                   s.ipc()};
  }
};

/// Per-region profile entry (VTune hot-spot analogue).
struct RegionProfile {
  std::string region;
  sim::CoreStats stats;
  Metrics metrics;
};

}  // namespace coperf::perf
