#include "perf/profiler.hpp"

#include <algorithm>

#include "wl/regions.hpp"

namespace coperf::perf {

std::vector<RegionProfile> profile_app(sim::Machine& m, std::size_t app_index,
                                       std::uint64_t min_cycles) {
  std::vector<RegionProfile> out;
  for (const auto& [region_id, stats] : m.app_region_stats(app_index)) {
    if (stats.cycles < min_cycles) continue;
    RegionProfile p;
    p.region = wl::Regions::instance().name(region_id);
    p.stats = stats;
    p.metrics = Metrics::from(stats);
    out.push_back(std::move(p));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.stats.cycles > b.stats.cycles;
  });
  return out;
}

RegionProfile region_of(sim::Machine& m, std::size_t app_index,
                        const std::string& region_name) {
  for (auto& p : profile_app(m, app_index))
    if (p.region == region_name) return p;
  return RegionProfile{};
}

}  // namespace coperf::perf
