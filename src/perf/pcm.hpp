// Bandwidth reporting over the machine's sampled traffic timeline --
// the Intel PCM (pcm-memory) analogue used throughout the paper's
// Sections IV-B, V-B and Table III.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/machine.hpp"

namespace coperf::perf {

struct BandwidthReport {
  double avg_total_gbs = 0.0;           ///< whole-socket average
  std::vector<double> app_avg_gbs;      ///< per app binding
  std::vector<double> total_series_gbs; ///< per sample window
  double peak_window_gbs = 0.0;
};

/// Summarizes the machine's bandwidth timeline. `skip_windows` drops
/// leading warm-up samples (cold caches inflate early traffic).
BandwidthReport summarize_bandwidth(const sim::Machine& m,
                                    std::size_t skip_windows = 1);

}  // namespace coperf::perf
