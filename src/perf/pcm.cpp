#include "perf/pcm.hpp"

#include <algorithm>

namespace coperf::perf {

BandwidthReport summarize_bandwidth(const sim::Machine& m,
                                    std::size_t skip_windows) {
  BandwidthReport rep;
  const auto& samples = m.bandwidth_timeline();
  const double freq_hz = m.config().freq_ghz * 1e9;

  if (samples.size() >= 2) {
    // Skip warm-up windows only when enough samples exist to spare them.
    const std::size_t first =
        samples.size() > skip_windows + 2 ? skip_windows : 0;
    const auto& s0 = samples[first];
    const auto& s1 = samples.back();
    const double secs =
        static_cast<double>(s1.cycle - s0.cycle) / freq_hz;
    if (secs > 0) {
      rep.avg_total_gbs =
          static_cast<double>(s1.total_bytes - s0.total_bytes) / secs / 1e9;
      for (std::size_t a = 0; a < m.num_apps() && a < s1.app_bytes.size(); ++a)
        rep.app_avg_gbs.push_back(
            static_cast<double>(s1.app_bytes[a] - s0.app_bytes[a]) / secs /
            1e9);
    }
    for (std::size_t i = first + 1; i < samples.size(); ++i) {
      const double wsecs =
          static_cast<double>(samples[i].cycle - samples[i - 1].cycle) /
          freq_hz;
      if (wsecs <= 0) continue;
      const double gbs =
          static_cast<double>(samples[i].total_bytes -
                              samples[i - 1].total_bytes) /
          wsecs / 1e9;
      rep.total_series_gbs.push_back(gbs);
      rep.peak_window_gbs = std::max(rep.peak_window_gbs, gbs);
    }
  }
  return rep;
}

}  // namespace coperf::perf
