// Shared log2-bucket quantile math (obs subsystem).
//
// Both the obs::Histogram metrics type and the simulator's per-request
// LatencyStats keep the same 65-bucket log2 layout: bucket b holds
// values whose bit width is b, i.e. [2^(b-1), 2^b), with value 0 in
// bucket 0. These free functions hold the one copy of the bucket/
// quantile arithmetic so the RunResult latency percentiles and the
// metrics snapshot percentiles cannot drift apart. Header-only and
// dependency-free (plain uint64 arrays, no atomics) so sim/ can use it
// without pulling in the metrics registry.
#pragma once

#include <bit>
#include <cstdint>

namespace coperf::obs {

/// Number of log2 buckets covering the full uint64 range.
inline constexpr unsigned kQuantileBuckets = 65;

/// Bucket index of `v`: its bit width (0 for v == 0).
inline unsigned log_bucket(std::uint64_t v) noexcept {
  return v == 0 ? 0 : static_cast<unsigned>(std::bit_width(v));
}

/// Inclusive lower bound of bucket b (0 for buckets 0 and 1).
inline std::uint64_t bucket_low(unsigned b) noexcept {
  return b <= 1 ? 0 : (std::uint64_t{1} << (b - 1));
}

/// Exclusive upper bound of bucket b, saturating at UINT64_MAX.
inline std::uint64_t bucket_high(unsigned b) noexcept {
  return b >= 64 ? UINT64_MAX : (std::uint64_t{1} << b);
}

/// The q-quantile (q in [0,1], clamped) of a 65-entry log2 bucket
/// array holding `count` samples, linearly interpolated within the
/// bucket containing the rank target. Returns 0.0 for an empty
/// distribution. The interpolation assumes samples spread uniformly
/// across a bucket's value range, so the result is exact at bucket
/// boundaries and a smooth estimate inside -- good to a factor of 2 by
/// construction, like the histogram itself.
template <typename Buckets>
inline double bucket_quantile(const Buckets& buckets, std::uint64_t count,
                              double q) noexcept {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (unsigned b = 0; b < kQuantileBuckets; ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    const std::uint64_t prev = cum;
    cum += in_bucket;
    if (static_cast<double>(cum) >= target) {
      const double lo = static_cast<double>(bucket_low(b));
      const double hi = static_cast<double>(bucket_high(b));
      const double frac =
          (target - static_cast<double>(prev)) / static_cast<double>(in_bucket);
      const double clamped = frac < 0.0 ? 0.0 : frac;
      return lo + (hi - lo) * clamped;
    }
  }
  return static_cast<double>(bucket_high(kQuantileBuckets - 1));
}

}  // namespace coperf::obs
