#include "obs/metrics.hpp"

#include <bit>

#include "obs/quantile.hpp"
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>

namespace coperf::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

void put_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void put_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;  // keep the snapshot valid JSON whatever happens upstream
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) noexcept {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

double wall_us() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double, std::micro>(clock::now() - epoch)
      .count();
}

// --- Histogram -------------------------------------------------------

void Histogram::record(std::uint64_t v) noexcept {
  if (!metrics_enabled()) return;
  const unsigned b = v == 0 ? 0 : static_cast<unsigned>(std::bit_width(v));
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::bucket(unsigned b) const noexcept {
  return b < kBuckets ? buckets_[b].load(std::memory_order_relaxed) : 0;
}

std::uint64_t Histogram::quantile_upper(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(n);
  std::uint64_t cum = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    cum += bucket(b);
    if (static_cast<double>(cum) >= target && cum > 0) {
      if (b == 0) return 0;
      if (b >= 64) return UINT64_MAX;
      return (std::uint64_t{1} << b) - 1;
    }
  }
  return UINT64_MAX;
}

double Histogram::quantile(double q) const noexcept {
  // Snapshot the buckets once so the interpolation sees one coherent
  // view even while other threads record.
  std::uint64_t snap[kBuckets];
  std::uint64_t n = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    snap[b] = bucket(b);
    n += snap[b];
  }
  return bucket_quantile(snap, n, q);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// --- Registry --------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mu;
  // Stable addresses: metric objects are heap-held and never erased.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry::Registry() : impl_(new Impl) {}

Registry& Registry::instance() {
  // Leaked: the snapshot may be taken from an atexit handler, after
  // function-local statics would have been destroyed.
  static Registry* reg = new Registry;
  return *reg;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock{impl_->mu};
  auto& slot = impl_->counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock{impl_->mu};
  auto& slot = impl_->gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard lock{impl_->mu};
  auto& slot = impl_->histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::snapshot_json(std::ostream& os) const {
  std::lock_guard lock{impl_->mu};
  os << "{\n  \"counters\": {";
  const char* sep = "";
  for (const auto& [name, c] : impl_->counters) {
    os << sep << "\n    ";
    put_escaped(os, name);
    os << ": " << c->value();
    sep = ",";
  }
  os << (impl_->counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
  sep = "";
  for (const auto& [name, g] : impl_->gauges) {
    os << sep << "\n    ";
    put_escaped(os, name);
    os << ": ";
    put_double(os, g->value());
    sep = ",";
  }
  os << (impl_->gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  sep = "";
  for (const auto& [name, h] : impl_->histograms) {
    os << sep << "\n    ";
    put_escaped(os, name);
    os << ": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
       << ", \"mean\": ";
    put_double(os, h->mean());
    os << ", \"p50\": " << h->quantile_upper(0.50)
       << ", \"p90\": " << h->quantile_upper(0.90)
       << ", \"p99\": " << h->quantile_upper(0.99) << ", \"buckets\": {";
    const char* bsep = "";
    for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
      if (h->bucket(b) == 0) continue;
      os << bsep << "\"" << b << "\": " << h->bucket(b);
      bsep = ", ";
    }
    os << "}}";
    sep = ",";
  }
  os << (impl_->histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

std::string Registry::snapshot_json() const {
  std::ostringstream os;
  snapshot_json(os);
  return os.str();
}

void Registry::reset() {
  std::lock_guard lock{impl_->mu};
  for (auto& [name, c] : impl_->counters) c->reset();
  for (auto& [name, g] : impl_->gauges) g->reset();
  for (auto& [name, h] : impl_->histograms) h->reset();
}

}  // namespace coperf::obs
