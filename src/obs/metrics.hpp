// Observability metrics registry (obs subsystem).
//
// The paper's whole method is measurement -- attributing slowdown to
// counters and regions (Section VI) -- and this module applies the
// same discipline to the reproduction itself: named process-wide
// counters, gauges, and log-bucket histograms that every layer
// (harness plan execution, RunCache, group-truth builds, the cluster
// event loop) updates instead of printing ad-hoc stats. A snapshot is
// one JSON object, so benches expose it uniformly via --metrics and CI
// asserts on it (e.g. "zero RunCache misses on the warm path") instead
// of grepping bespoke output.
//
// Cost model: every update is a relaxed atomic on a pre-resolved
// handle; when metrics are disabled the update is a single relaxed
// bool load and a branch (the zero-overhead-when-off guarantee --
// nothing here ever touches simulator state, so results are identical
// either way). Handles returned by Registry are valid for the process
// lifetime.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>

namespace coperf::obs {

/// Process-wide metrics switch. Defaults to ON (updates are coarse --
/// per trial / per cache probe, never per simulated op); set false for
/// the branch-only fast path.
bool metrics_enabled() noexcept;
void set_metrics_enabled(bool on) noexcept;

/// Microseconds of wall clock since the first obs call in the process
/// (steady clock). Shared epoch with Trace timestamps.
double wall_us() noexcept;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!metrics_enabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value-wins instantaneous measurement.
class Gauge {
 public:
  void set(double v) noexcept {
    if (!metrics_enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(double d) noexcept {
    if (!metrics_enabled()) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Histogram over unsigned values with fixed log2 buckets: bucket b
/// holds values whose bit width is b, i.e. [2^(b-1), 2^b); value 0
/// lands in bucket 0. 65 buckets cover the full uint64 range, so a
/// record() is always one bucket increment -- no locking, no dynamic
/// resizing, mergeable across processes.
class Histogram {
 public:
  static constexpr unsigned kBuckets = 65;

  void record(std::uint64_t v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  double mean() const noexcept;
  std::uint64_t bucket(unsigned b) const noexcept;
  /// Upper bound of the bucket containing the q-quantile (q in [0,1]).
  std::uint64_t quantile_upper(double q) const noexcept;
  /// The q-quantile linearly interpolated within its bucket
  /// (obs/quantile.hpp math); 0.0 for an empty histogram.
  double quantile(double q) const noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Process-wide named-metric registry. Lookup is a mutex-guarded map
/// probe -- callers on warm paths resolve their handle once and keep
/// the reference (handles live for the process lifetime).
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Canonical labeled-series name: "name{key=value}".
  static std::string labeled(const std::string& name, const std::string& key,
                             const std::string& value) {
    return name + "{" + key + "=" + value + "}";
  }

  /// One JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,mean,p50,p90,p99,buckets}}}, names
  /// sorted, stable across runs.
  void snapshot_json(std::ostream& os) const;
  std::string snapshot_json() const;

  /// Zeroes every registered metric (registrations survive).
  void reset();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry();
  struct Impl;
  Impl* impl_;  // leaked with the singleton (safe in atexit handlers)
};

}  // namespace coperf::obs
