// Chrome-trace-event recorder (obs subsystem).
//
// Records duration spans, instant events, and counter tracks into the
// Chrome trace-event JSON format, loadable in chrome://tracing and
// Perfetto (https://ui.perfetto.dev). Two clock domains coexist as
// separate trace "processes":
//
//   * pid kHostPid -- wall-clock host time. Spans opened with
//     Trace::Span land on the calling thread's lane (one tid per host
//     thread, so ExperimentPlan trials draw one row per pool worker).
//   * explicit pids/lanes with caller-supplied timestamps -- the
//     cluster event loop renders *simulated* time this way, one lane
//     per machine, one trace process per simulate() call.
//
// Recording is off by default. Every emit checks one relaxed atomic
// bool and returns -- the branch-only zero-overhead-when-off fast
// path; a disabled Span does not even read the clock. Events buffer in
// memory under a mutex (emission points are coarse: per trial, per
// scheduler event -- never per simulated op) and write() dumps the
// JSON document; start(path)/stop() bracket a recording that flushes
// to a file, which is what the bench binaries' --trace=FILE flag uses.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>

#include "obs/metrics.hpp"  // wall_us -- the shared host time base

namespace coperf::obs {

/// Small builder for a trace event's "args" JSON object.
class Args {
 public:
  Args& set(std::string_view key, std::string_view value);
  Args& set(std::string_view key, const char* value) {
    return set(key, std::string_view{value});
  }
  Args& set(std::string_view key, double value);
  Args& set(std::string_view key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  Args& set(std::string_view key, T value) {
    return raw(key, std::to_string(value));
  }

  /// "{...}" -- empty object when nothing was set.
  std::string str() const { return "{" + body_ + "}"; }

 private:
  Args& raw(std::string_view key, std::string_view rendered);
  std::string body_;
};

class Trace {
 public:
  static Trace& instance();

  /// Trace process id of the wall-clock host timeline.
  static constexpr int kHostPid = 1;

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Clears the buffer and starts recording. When `path` is non-empty,
  /// stop() writes the trace there.
  void start(std::string path = {});
  /// Stops recording and flushes to the start() path (if any),
  /// returning that path (empty when none was set or the write
  /// failed). Safe to call when not recording.
  std::string stop();
  /// Drops all buffered events (recording state unchanged).
  void clear();

  std::size_t event_count() const;

  /// Writes the full trace document ({"displayTimeUnit","traceEvents"}).
  void write(std::ostream& os) const;

  /// Wall-clock timestamp (us since process obs epoch; see
  /// obs::wall_us) -- the host-lane time base.
  double now_us() const { return wall_us(); }

  // --- wall-clock host lanes ------------------------------------------

  /// RAII duration span ("ph":"X") on the calling thread's host lane.
  /// Constructing while disabled records nothing and reads no clock.
  class Span {
   public:
    explicit Span(std::string name, std::string args_json = {});
    ~Span();
    /// Replaces the args attached when the span closes.
    void set_args(std::string args_json);
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    bool live_;
    double t0_ = 0.0;
    std::string name_;
    std::string args_;
  };

  /// Completed span on the calling thread's host lane (explicit times).
  void complete_host(std::string name, double ts_us, double dur_us,
                     std::string args_json = {});
  /// Instant event ("ph":"i") on the calling thread's host lane, now.
  void instant(std::string name, std::string args_json = {});
  /// Counter sample ("ph":"C") on the host process track, now.
  void counter(std::string name, double value);

  // --- explicit timelines (simulated time) ----------------------------

  void complete(int pid, int tid, std::string name, double ts_us,
                double dur_us, std::string args_json = {});
  void instant_at(int pid, int tid, std::string name, double ts_us,
                  std::string args_json = {});
  void counter_at(int pid, std::string name, double ts_us, double value);
  void name_process(int pid, std::string name);
  void name_thread(int pid, int tid, std::string name);

  /// Allocates a fresh trace pid for an explicit timeline (one per
  /// cluster simulate() call, so repeated runs get separate lanes).
  int next_pid();

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

 private:
  Trace();
  struct Impl;
  Impl* impl_;  // leaked with the singleton (safe in atexit handlers)
  std::atomic<bool> enabled_{false};
};

}  // namespace coperf::obs
