#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <ostream>
#include <set>
#include <utility>
#include <vector>

namespace coperf::obs {

namespace {

std::string escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string fmt_num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

struct Event {
  char ph = 'X';
  int pid = Trace::kHostPid;
  int tid = 0;
  double ts = 0.0;
  double dur = 0.0;  // X only
  std::string name;
  std::string args;  // pre-rendered JSON object, may be empty
};

void put_event(std::ostream& os, const Event& e) {
  os << "{\"name\": " << escaped(e.name) << ", \"ph\": \"" << e.ph
     << "\", \"pid\": " << e.pid << ", \"tid\": " << e.tid
     << ", \"ts\": " << fmt_num(e.ts);
  if (e.ph == 'X') os << ", \"dur\": " << fmt_num(e.dur);
  if (e.ph == 'i') os << ", \"s\": \"t\"";  // thread-scoped instant
  if (!e.args.empty()) os << ", \"args\": " << e.args;
  os << "}";
}

/// Host lane id of the calling thread, assigned on first use.
int host_lane() {
  static std::atomic<int> next{0};
  thread_local const int lane = next.fetch_add(1);
  return lane;
}

}  // namespace

// --- Args ------------------------------------------------------------

Args& Args::raw(std::string_view key, std::string_view rendered) {
  if (!body_.empty()) body_ += ", ";
  body_ += escaped(key);
  body_ += ": ";
  body_ += rendered;
  return *this;
}

Args& Args::set(std::string_view key, std::string_view value) {
  return raw(key, escaped(value));
}

Args& Args::set(std::string_view key, double value) {
  return raw(key, fmt_num(value));
}

// --- Trace -----------------------------------------------------------

struct Trace::Impl {
  mutable std::mutex mu;
  std::vector<Event> events;
  std::string path;
  std::atomic<int> next_pid{2};  // 1 is the host timeline

  void push(Event e) {
    std::lock_guard lock{mu};
    events.push_back(std::move(e));
  }
};

Trace::Trace() : impl_(new Impl) {}

Trace& Trace::instance() {
  // Leaked: stop() may run from an atexit handler, after function-local
  // statics would have been destroyed.
  static Trace* tr = new Trace;
  return *tr;
}

void Trace::start(std::string path) {
  std::lock_guard lock{impl_->mu};
  impl_->events.clear();
  impl_->path = std::move(path);
  enabled_.store(true, std::memory_order_relaxed);
}

std::string Trace::stop() {
  enabled_.store(false, std::memory_order_relaxed);
  std::string path;
  {
    std::lock_guard lock{impl_->mu};
    path = impl_->path;
  }
  if (path.empty()) return {};
  std::ofstream out{path};
  if (!out) {
    std::cerr << "obs::Trace: cannot write trace to " << path << "\n";
    return {};
  }
  write(out);
  return path;
}

void Trace::clear() {
  std::lock_guard lock{impl_->mu};
  impl_->events.clear();
}

std::size_t Trace::event_count() const {
  std::lock_guard lock{impl_->mu};
  return impl_->events.size();
}

int Trace::next_pid() { return impl_->next_pid.fetch_add(1); }

void Trace::write(std::ostream& os) const {
  std::lock_guard lock{impl_->mu};
  os << "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  // Synthesize names for lanes no one named explicitly, so every row
  // in Perfetto is labeled.
  std::set<int> named_pids;
  std::set<std::pair<int, int>> named_lanes;
  std::set<int> seen_pids;
  std::set<std::pair<int, int>> seen_lanes;
  for (const Event& e : impl_->events) {
    if (e.ph == 'M') {
      if (e.name == "process_name") named_pids.insert(e.pid);
      if (e.name == "thread_name") named_lanes.insert({e.pid, e.tid});
    } else {
      seen_pids.insert(e.pid);
      if (e.ph != 'C') seen_lanes.insert({e.pid, e.tid});
    }
  }
  const char* sep = "";
  const auto emit = [&](const Event& e) {
    os << sep;
    put_event(os, e);
    sep = ",\n";
  };
  for (const int pid : seen_pids)
    if (named_pids.count(pid) == 0)
      emit(Event{'M', pid, 0, 0.0, 0.0, "process_name",
                 Args{}.set("name", pid == kHostPid ? "host (wall clock)"
                                                    : "timeline " +
                                                          std::to_string(pid))
                     .str()});
  for (const auto& [pid, tid] : seen_lanes)
    if (named_lanes.count({pid, tid}) == 0)
      emit(Event{'M', pid, tid, 0.0, 0.0, "thread_name",
                 Args{}.set("name", (pid == kHostPid ? "host-" : "lane-") +
                                        std::to_string(tid))
                     .str()});
  for (const Event& e : impl_->events) emit(e);
  os << "\n]}\n";
}

// --- host lanes ------------------------------------------------------

Trace::Span::Span(std::string name, std::string args_json)
    : live_(Trace::instance().enabled()) {
  if (!live_) return;
  name_ = std::move(name);
  args_ = std::move(args_json);
  t0_ = Trace::instance().now_us();
}

void Trace::Span::set_args(std::string args_json) {
  if (live_) args_ = std::move(args_json);
}

Trace::Span::~Span() {
  if (!live_) return;
  Trace& tr = Trace::instance();
  if (!tr.enabled()) return;  // stopped mid-span: drop it
  tr.complete_host(std::move(name_), t0_, tr.now_us() - t0_,
                   std::move(args_));
}

void Trace::complete_host(std::string name, double ts_us, double dur_us,
                          std::string args_json) {
  if (!enabled()) return;
  impl_->push(Event{'X', kHostPid, host_lane(), ts_us, dur_us,
                    std::move(name), std::move(args_json)});
}

void Trace::instant(std::string name, std::string args_json) {
  if (!enabled()) return;
  impl_->push(Event{'i', kHostPid, host_lane(), now_us(), 0.0,
                    std::move(name), std::move(args_json)});
}

void Trace::counter(std::string name, double value) {
  if (!enabled()) return;
  impl_->push(Event{'C', kHostPid, 0, now_us(), 0.0, std::move(name),
                    Args{}.set("value", value).str()});
}

// --- explicit timelines ----------------------------------------------

void Trace::complete(int pid, int tid, std::string name, double ts_us,
                     double dur_us, std::string args_json) {
  if (!enabled()) return;
  impl_->push(
      Event{'X', pid, tid, ts_us, dur_us, std::move(name), std::move(args_json)});
}

void Trace::instant_at(int pid, int tid, std::string name, double ts_us,
                       std::string args_json) {
  if (!enabled()) return;
  impl_->push(
      Event{'i', pid, tid, ts_us, 0.0, std::move(name), std::move(args_json)});
}

void Trace::counter_at(int pid, std::string name, double ts_us, double value) {
  if (!enabled()) return;
  impl_->push(Event{'C', pid, 0, ts_us, 0.0, std::move(name),
                    Args{}.set("value", value).str()});
}

void Trace::name_process(int pid, std::string name) {
  if (!enabled()) return;
  impl_->push(Event{'M', pid, 0, 0.0, 0.0, "process_name",
                    Args{}.set("name", name).str()});
}

void Trace::name_thread(int pid, int tid, std::string name) {
  if (!enabled()) return;
  impl_->push(Event{'M', pid, tid, 0.0, 0.0, "thread_name",
                    Args{}.set("name", name).str()});
}

}  // namespace coperf::obs
