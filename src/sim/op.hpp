// The micro-trace "ISA" consumed by the core timing model.
//
// Workload models emit streams of these ops (via coroutines in
// src/wl/); the core replays them against the cache hierarchy and
// memory channel. This is the boundary between the workload layer and
// the machine layer: sim/ knows nothing about graphs or GEMMs, only
// about compute bursts, loads/stores with dependence classes,
// barriers, and region markers.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/addr.hpp"

namespace coperf::sim {

enum class OpKind : std::uint8_t {
  Compute,  ///< `count` back-to-back non-memory uops
  Load,     ///< one demand load of `addr`
  Store,    ///< one demand store to `addr`
  Barrier,  ///< synchronize with all threads of the same application
  Region,   ///< enter profiling region `region` (VTune hot-spot analogue)
  /// Request boundary for serving workloads: `count` == 1 records the
  /// cycles since the previous mark as one request latency; `count`
  /// == 0 only moves the mark (setup / inter-batch gaps are excluded
  /// without polluting the distribution). Batch workloads never emit
  /// this, so their timing and stats are untouched.
  Request,
};

/// Dependence/locality class of a memory access, controlling how much
/// of its latency the core can hide and whether it allocates cache
/// space (Section VI of the paper attributes graph victimhood to
/// exactly these distinctions).
enum class Dep : std::uint8_t {
  Indep,  ///< independent of recent loads; overlaps up to the MLP window
  Chain,  ///< data-dependent on the previous load (pointer chasing); serializes
  /// Independent AND non-allocating: the access set-conflicts with its
  /// predecessors (Bandit) or is explicitly non-temporal, so it reaches
  /// DRAM without displacing shared-cache contents.
  Bypass,
};

/// One trace operation. Kept at 16 bytes so refill buffers stay compact.
struct Op {
  OpKind kind = OpKind::Compute;
  Dep dep = Dep::Indep;
  std::uint16_t pc = 0;    ///< synthetic instruction-pointer id (IP prefetcher, profiling)
  std::uint32_t count = 0; ///< Compute: uop count; Region: region id
  Addr addr = 0;

  static Op compute(std::uint32_t uops) {
    return Op{OpKind::Compute, Dep::Indep, 0, uops, 0};
  }
  static Op load(Addr a, std::uint16_t pc, Dep d = Dep::Indep) {
    return Op{OpKind::Load, d, pc, 0, a};
  }
  static Op store(Addr a, std::uint16_t pc) {
    return Op{OpKind::Store, Dep::Indep, pc, 0, a};
  }
  static Op barrier() { return Op{OpKind::Barrier, Dep::Indep, 0, 0, 0}; }
  static Op region(std::uint32_t id) {
    return Op{OpKind::Region, Dep::Indep, 0, id, 0};
  }
  static Op request_done() {
    return Op{OpKind::Request, Dep::Indep, 0, 1, 0};
  }
  static Op request_reset() {
    return Op{OpKind::Request, Dep::Indep, 0, 0, 0};
  }
};
static_assert(sizeof(Op) == 16, "Op should stay a compact 16-byte POD");

/// Per-thread execution attributes supplied by the workload model.
struct ThreadAttr {
  /// Average cycles per non-memory uop (captures issue width / FP mix).
  double cpi_base = 0.5;
  /// Maximum overlapped outstanding misses this code sustains
  /// (min'd with the machine's MSHR count).
  std::uint32_t mlp = 8;
};

/// Pull-interface the core uses to obtain trace ops. Implemented by the
/// workload layer's coroutine pump. refill() returning 0 means the
/// thread has finished its work for this run.
class OpSource {
 public:
  virtual ~OpSource() = default;
  virtual std::size_t refill(Op* buf, std::size_t max) = 0;

  /// Zero-copy variant: returns a pointer to `n` ready ops owned by the
  /// source (valid until the next refill/refill_view/rearm call), or
  /// nullptr to make the core fall back to the copying refill(). The
  /// returned ops are exactly what refill() would have produced, so the
  /// two paths are interchangeable; buffer-backed sources override this
  /// to spare one 16-byte copy per op on the simulator's pump.
  virtual const Op* refill_view(std::size_t& n) {
    n = 0;
    return nullptr;
  }

  virtual ThreadAttr attr() const = 0;

  /// Called by the core when the thread's most recent Barrier op
  /// completed (the barrier released). Trace generators that run ahead
  /// of simulated time use this to hold back post-barrier work: shared
  /// per-epoch state (work queues, frontiers) must not be touched until
  /// every sibling reached the barrier in simulated time.
  virtual void barrier_passed() {}
};

}  // namespace coperf::sim
