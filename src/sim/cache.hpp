// Set-associative write-back cache model with true-LRU replacement.
//
// Used for the private L1D/L2 and the shared (optionally inclusive) L3.
// Lookups operate on line numbers (Addr >> 6). The L3 uses a folded
// set-index hash so co-running applications (whose address spaces
// differ only in high bits) spread across all sets the way physical
// addresses do on real hardware.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/addr.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"

namespace coperf::sim {

/// Outcome of a demand access or a fill.
struct CacheResult {
  bool hit = false;
  bool was_prefetched = false;  ///< hit on a line brought in by a prefetcher
  bool evicted = false;         ///< fill displaced a valid line
  bool evicted_dirty = false;   ///< ...that needs a writeback
  Addr evicted_line = 0;
};

class Cache {
 public:
  /// `hashed_index` selects the folded-XOR set mapping (use for the LLC).
  Cache(std::string name, const CacheConfig& cfg, bool hashed_index = false);

  /// Demand lookup; updates LRU and statistics. Does NOT allocate on miss
  /// (the hierarchy calls fill() once the line arrives from below).
  CacheResult access(Addr line, bool is_write);

  /// Lookup without side effects (no LRU update, no stats).
  bool probe(Addr line) const;

  /// Installs `line`, evicting the LRU way if the set is full.
  /// `from_prefetch` marks the line for usefulness accounting.
  CacheResult fill(Addr line, bool dirty, bool from_prefetch);

  /// Marks an existing line dirty (store hit after fill). No-op if absent.
  void mark_dirty(Addr line);

  /// Removes `line` if present; returns {was_present, was_dirty}.
  struct InvalidateResult {
    bool present = false;
    bool dirty = false;
  };
  InvalidateResult invalidate(Addr line);

  /// Drops every line belonging to application `app` (used when a
  /// background application restarts with a fresh address space is NOT
  /// done in the paper's methodology -- provided for tests/tools).
  std::uint64_t invalidate_app(AppId app);

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  const std::string& name() const { return name_; }
  std::uint64_t num_sets() const { return num_sets_; }
  std::uint32_t assoc() const { return assoc_; }
  std::uint64_t size_bytes() const { return cfg_.size_bytes; }
  std::uint32_t latency() const { return cfg_.latency_cycles; }

  /// Number of currently valid lines (test/diagnostic helper).
  std::uint64_t occupancy() const;
  /// Valid lines belonging to a given application (LLC-share diagnostics).
  std::uint64_t occupancy_of(AppId app) const;

  std::uint64_t set_index(Addr line) const;

 private:
  struct Way {
    Addr tag = 0;
    std::uint64_t lru = 0;  // larger == more recently used
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;
  };

  Way* find(Addr line);
  const Way* find(Addr line) const;

  std::string name_;
  CacheConfig cfg_;
  bool hashed_index_;
  std::uint64_t num_sets_;
  std::uint32_t assoc_;
  std::uint64_t sets_log2_;
  std::uint64_t lru_clock_ = 0;
  std::vector<Way> ways_;  // num_sets_ * assoc_, row-major by set
  CacheStats stats_;
};

}  // namespace coperf::sim
