// Set-associative write-back cache model with true-LRU replacement.
//
// Used for the private L1D/L2 and the shared (optionally inclusive) L3.
// Lookups operate on line numbers (Addr >> 6). The L3 uses a folded
// set-index hash so co-running applications (whose address spaces
// differ only in high bits) spread across all sets the way physical
// addresses do on real hardware.
//
// Hot-path layout: way state is stored SoA (tags / flags / LRU stamps
// in separate arrays) so the per-set way scan touches a handful of
// contiguous cache lines instead of striding through an AoS struct.
// A one-entry "known absent" memo lets the common access-miss -> fill
// and probe -> fill chains run with a single set scan: the second call
// skips the duplicate lookup and goes straight to victim selection.
// Per-application valid-line counters make occupancy_of() O(1) and let
// invalidate() reject lines of applications with no cached state
// without scanning the set -- the inclusive-L3 back-invalidation
// broadcast relies on this.
//
// All SoA arrays come from a bump Arena -- normally the owning
// MemorySystem's, so one Machine costs a couple of block allocations
// instead of ~130 vector round-trips per trial; standalone construction
// (tests, tools) falls back to a private arena. The access/probe/fill
// chain lives in this header: it is the simulator's innermost loop
// (~170M calls per cold Tiny matrix) and must inline into the
// hierarchy walk rather than bounce through a cross-TU call per level.
//
// Each set also carries a departure epoch, bumped whenever a valid
// line LEAVES the set (eviction or invalidation). "Set epoch
// unchanged since line was observed resident" is therefore an exact
// proof the line is still resident -- the hierarchy's prefetch
// request-combining queue uses this to skip provably redundant probe
// walks with bit-identical semantics.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "sim/addr.hpp"
#include "sim/arena.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"

namespace coperf::sim {

/// Outcome of a demand access or a fill.
struct CacheResult {
  bool hit = false;
  bool was_prefetched = false;  ///< hit on a line brought in by a prefetcher
  bool evicted = false;         ///< fill displaced a valid line
  bool evicted_dirty = false;   ///< ...that needs a writeback
  Addr evicted_line = 0;
  /// Cores whose private caches MAY hold the evicted line (bit per
  /// core). Only meaningful when the cache tracks private copies (the
  /// inclusive L3); defaults to "every core" so untracked caches stay
  /// conservative.
  std::uint64_t evicted_private_mask = ~std::uint64_t{0};
};

class Cache {
 public:
  /// `hashed_index` selects the folded-XOR set mapping (use for the LLC).
  /// `track_private_copies` enables the per-line core mask consumed by
  /// the inclusive-L3 back-invalidation broadcast (LLC only).
  /// SoA storage comes from `arena`; the arena must outlive the cache.
  Cache(Arena& arena, std::string name, const CacheConfig& cfg,
        bool hashed_index = false, bool track_private_copies = false);

  /// Standalone construction (tests/tools): storage from a private arena.
  Cache(std::string name, const CacheConfig& cfg, bool hashed_index = false,
        bool track_private_copies = false);

  Cache(Cache&&) noexcept = default;
  Cache& operator=(Cache&&) noexcept = default;

  /// Demand lookup; updates LRU and statistics. Does NOT allocate on miss
  /// (the hierarchy calls fill() once the line arrives from below).
  CacheResult access(Addr line, bool is_write);

  /// Lookup without side effects (no LRU update, no stats).
  bool probe(Addr line) const;

  /// Installs `line`, evicting the LRU way if the set is full.
  /// `from_prefetch` marks the line for usefulness accounting.
  CacheResult fill(Addr line, bool dirty, bool from_prefetch);

  /// Marks an existing line dirty (store hit after fill). Returns
  /// whether the line was present so dirty-victim chains can fall
  /// through to the next level with a single scan per level.
  bool mark_dirty(Addr line);

  /// Removes `line` if present; returns {was_present, was_dirty}.
  /// O(1) when the owning application has no lines cached here or the
  /// presence filter proves the line absent -- the common case for the
  /// inclusive-L3 back-invalidation broadcast, so the filter checks are
  /// inlined at the call site and the set scan stays out of line.
  struct InvalidateResult {
    bool present = false;
    bool dirty = false;
  };
  InvalidateResult invalidate(Addr line) {
    if (app_lines_[app_of_line(line)] == 0 || definitely_absent(line))
      return {};
    return invalidate_slow(line);
  }

  /// Drops every line belonging to application `app` (used when a
  /// background application restarts with a fresh address space is NOT
  /// done in the paper's methodology -- provided for tests/tools).
  /// Scans only the sets whose presence summary names the application.
  std::uint64_t invalidate_app(AppId app);

  /// True when at least one line of `app` is resident. Coarse per-core
  /// "may hold lines of app X" filter (complements the per-line mask).
  bool holds_app(AppId app) const { return app_lines_[app] != 0; }

  /// Records that `core`'s private caches received a copy of the line
  /// most recently touched here (access hit, probe hit, or fill). The
  /// hierarchy calls this right after the L3 interaction that precedes
  /// a private fill, so the matching eviction later broadcasts
  /// invalidations only to cores that ever pulled the line.
  void note_private(unsigned core) {
    if (track_private_) private_mask_[last_touch_] |= std::uint64_t{1} << core;
  }

  /// Departure epoch of `line`'s set: bumped whenever a valid line
  /// leaves the set. An unchanged epoch since `line` was observed
  /// resident proves the line is still resident (nothing departed, so
  /// nothing displaced it) -- the request-combining queue's exactness
  /// argument.
  std::uint32_t set_epoch_of(Addr line) const {
    return set_epoch_[set_index(line)];
  }

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  const std::string& name() const { return name_; }
  std::uint64_t num_sets() const { return num_sets_; }
  std::uint32_t assoc() const { return assoc_; }
  std::uint64_t size_bytes() const { return cfg_.size_bytes; }
  std::uint32_t latency() const { return cfg_.latency_cycles; }

  /// Number of currently valid lines (maintained counter, O(1)).
  std::uint64_t occupancy() const { return valid_lines_; }
  /// Valid lines belonging to a given application (O(1) counter).
  std::uint64_t occupancy_of(AppId app) const { return app_lines_[app]; }

  std::uint64_t set_index(Addr line) const;

 private:
  // flags_ bit layout.
  static constexpr std::uint8_t kValid = 1;
  static constexpr std::uint8_t kDirty = 2;
  static constexpr std::uint8_t kPrefetched = 4;
  static constexpr std::uint32_t kNoWay = ~0u;

  static AppId app_of_line(Addr line) {
    return app_of(line << kLineBytesLog2);
  }
  /// Per-set presence summary bit (applications >= 7 share the top bit;
  /// the summary is conservative, the way scan still matches exactly).
  static std::uint8_t app_bit(AppId app) {
    return static_cast<std::uint8_t>(1u << (app < 7 ? app : 7));
  }

  std::uint32_t find_way(std::uint64_t set, std::uint64_t base,
                         Addr line) const;

  std::uint32_t pick_victim(std::uint64_t base) const;

  CacheResult install(std::uint64_t set, std::uint32_t way, Addr line,
                      bool dirty, bool from_prefetch);

  InvalidateResult invalidate_slow(Addr line);

  /// Sizes and carves every SoA array out of `arena` (shared ctor body).
  void init_storage(Arena& arena);

  /// Counting presence filter: bucket == 0 proves the line is absent
  /// (counting, so removals keep it exact -- no false negatives ever).
  std::uint64_t presence_bucket(Addr line) const {
    return (line * 0x9E3779B97F4A7C15ull) >> presence_shift_;
  }
  bool definitely_absent(Addr line) const {
    return presence_[presence_bucket(line)] == 0;
  }
  void presence_add(Addr line) {
    std::uint8_t& c = presence_[presence_bucket(line)];
    if (c != kPresenceSaturated) ++c;
  }
  void presence_remove(Addr line) {
    std::uint8_t& c = presence_[presence_bucket(line)];
    if (c != kPresenceSaturated) --c;  // saturated buckets stay pessimistic
  }

  std::string name_;
  CacheConfig cfg_;
  bool hashed_index_;
  std::uint64_t num_sets_;
  std::uint32_t assoc_;
  std::uint64_t sets_log2_;
  std::uint64_t lru_clock_ = 0;

  /// Standalone-constructor storage; null when an external arena (the
  /// MemorySystem's) backs the SoA arrays. Heap-held so Cache stays
  /// movable with stable interior pointers.
  std::unique_ptr<Arena> own_arena_;

  // SoA way state, row-major by set (index = set * assoc_ + way).
  // Raw arena arrays: sized once in the constructor, never resized.
  Addr* tags_ = nullptr;
  std::uint64_t* lru_ = nullptr;
  std::uint8_t* flags_ = nullptr;
  /// Per-line "cores that may hold a private copy" (tracking caches
  /// only). Sticky until the line leaves this cache.
  bool track_private_ = false;
  std::uint64_t* private_mask_ = nullptr;
  /// Way index of the line most recently hit/probed/installed; the
  /// anchor for note_private().
  mutable std::uint64_t last_touch_ = 0;
  /// Sticky per-set summary of which applications may have lines there.
  std::uint8_t* set_app_mask_ = nullptr;
  /// Per-set most-recently-touched way (global line index): checked
  /// first by find_way, which short-circuits the way scan for the
  /// repeat-touch patterns that dominate demand hits and the stride
  /// prefetchers' redundant-request probes.
  std::uint32_t* mru_idx_ = nullptr;
  /// Per-set departure counter (see set_epoch_of).
  std::uint32_t* set_epoch_ = nullptr;

  /// Exact valid-line counters (total and per application).
  std::uint64_t valid_lines_ = 0;
  std::array<std::uint64_t, 256> app_lines_{};

  static constexpr std::uint8_t kPresenceSaturated = 0xFF;
  /// Counting filter over resident line numbers; sized ~4x the line
  /// capacity so a cold lookup is rejected without a set scan. Byte
  /// counters keep the filter small enough to live in host caches; a
  /// saturated bucket stays pessimistic forever (still exact).
  std::uint8_t* presence_ = nullptr;
  unsigned presence_shift_ = 64;

  /// One-entry negative lookup memo: when valid, `memo_line_` is known
  /// to be ABSENT (set by a missing access/probe/mark_dirty, consumed by
  /// the fill that installs it). Removals keep the invariant; only an
  /// install of the memoized line clears it.
  mutable Addr memo_line_ = 0;
  mutable bool memo_valid_ = false;

  CacheStats stats_;
};

}  // namespace coperf::sim
