// Machine configuration mirroring the paper's testbed (Section III-A):
// a Supermicro 8047R-TRF+ with an 8-core Intel Xeon E5-4650 (Sandy
// Bridge) at 2.7 GHz -- 32K private L1I/L1D, 256K private L2, 20 MB
// shared inclusive L3, 64 GB DRAM, ~28 GB/s practical memory bandwidth.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/addr.hpp"

namespace coperf::sim {

/// Geometry and latency of one cache level.
struct CacheConfig {
  std::uint64_t size_bytes = 0;
  std::uint32_t assoc = 8;
  std::uint32_t latency_cycles = 4;  ///< load-to-use latency on hit
  std::uint32_t line_bytes = kLineBytes;

  std::uint64_t num_sets() const { return size_bytes / (assoc * line_bytes); }
  std::uint64_t num_lines() const { return size_bytes / line_bytes; }
};

/// Which of the four Sandy Bridge hardware prefetchers are enabled.
/// Mirrors the per-core MSR 0x1A4 bit layout described in Section IV-C.
struct PrefetchMask {
  bool l2_stream = true;    ///< "L2 hardware prefetcher" (streamer)
  bool l2_adjacent = true;  ///< "L2 adjacent cache line prefetcher"
  bool l1_next_line = true; ///< "L1-data cache prefetcher" (DCU)
  bool l1_ip_stride = true; ///< "L1-data cache IP prefetcher"

  static constexpr PrefetchMask all_on() { return {true, true, true, true}; }
  static constexpr PrefetchMask all_off() { return {false, false, false, false}; }
  bool any() const { return l2_stream || l2_adjacent || l1_next_line || l1_ip_stride; }
  bool operator==(const PrefetchMask&) const = default;
};

/// Full machine description. `paper()` is the unscaled testbed;
/// `scaled(f)` shrinks the shared LLC by `f` so experiments with
/// proportionally shrunk workload footprints preserve the
/// footprint-to-LLC and demand-to-peak-bandwidth ratios that drive
/// every interference result (see DESIGN.md, "Scaled-machine mode").
struct MachineConfig {
  std::uint32_t num_cores = 8;
  double freq_ghz = 2.7;

  CacheConfig l1d{32 * 1024, 8, 4};
  CacheConfig l2{256 * 1024, 8, 12};
  CacheConfig l3{20ull * 1024 * 1024, 20, 38};
  bool l3_inclusive = true;

  double peak_bw_gbs = 28.0;            ///< practical system bandwidth (paper VI-B)
  /// Per-core sustainable DRAM bandwidth (demand + prefetch): one core
  /// cannot saturate the whole socket -- this is the MLP/queue limit
  /// that makes multi-threaded bandwidth CLIMB from 1 to 4 threads in
  /// Fig. 3 instead of starting saturated.
  double per_core_bw_gbs = 10.5;
  std::uint32_t dram_latency_cycles = 200;  ///< unloaded DRAM round trip

  std::uint32_t mshr_per_core = 10;     ///< max outstanding L1 misses (MLP cap)
  std::uint32_t store_buffer = 16;      ///< non-blocking store slots
  /// Reorder-buffer capacity: how many instructions may retire past an
  /// outstanding miss before the pipeline stalls. This is what turns
  /// co-run-inflated memory latency into victim slowdown -- without it
  /// a core could run arbitrarily far ahead of a slow load.
  std::uint32_t rob_instructions = 168;  // Sandy Bridge ROB

  /// Local-time quantum for the relaxed-synchronization event loop.
  std::uint32_t quantum_cycles = 250;

  PrefetchMask prefetch = PrefetchMask::all_on();

  /// L2-streamer aggressiveness (lines prefetched ahead per stream).
  std::uint32_t streamer_degree = 4;
  /// Misses on consecutive lines of a 4K page before a stream is trained.
  std::uint32_t streamer_train = 2;

  /// Workload/LLC scale denominator this config was built with (1 = native).
  std::uint32_t scale = 1;

  static MachineConfig paper() { return MachineConfig{}; }

  /// Shrinks the shared LLC by `factor` (and, for deep scaling, the
  /// private L2s by 2 so the inclusive LLC stays larger than the sum of
  /// the private caches). Workload inputs built through SizeClass
  /// shrink correspondingly, preserving the footprint-to-cache ratios
  /// that drive the paper's contention results (see DESIGN.md).
  static MachineConfig scaled(std::uint32_t factor = 16) {
    if (factor == 0) throw std::invalid_argument{"scale factor must be >= 1"};
    MachineConfig c;
    c.l3.size_bytes /= factor;
    if (factor >= 16) c.l2.size_bytes /= 2;
    if (c.l3.size_bytes < c.l3.assoc * c.l3.line_bytes)
      throw std::invalid_argument{"scale factor too large for LLC geometry"};
    if (c.l3.size_bytes < std::uint64_t{c.num_cores} * c.l2.size_bytes)
      throw std::invalid_argument{
          "scaled LLC smaller than the sum of private L2s"};
    c.scale = factor;
    return c;
  }

  /// Bytes the DRAM channel can move per core cycle.
  double bytes_per_cycle() const { return peak_bw_gbs / freq_ghz; }

  /// Converts a cycle count to seconds at the configured frequency.
  double seconds(Cycle cycles) const {
    return static_cast<double>(cycles) / (freq_ghz * 1e9);
  }

  void validate() const {
    auto check_cache = [](const CacheConfig& c, const std::string& name) {
      if (c.size_bytes == 0 || c.assoc == 0 || c.line_bytes == 0)
        throw std::invalid_argument{name + ": zero-sized cache parameter"};
      const std::uint64_t sets = c.num_sets();
      if (sets == 0 || (sets & (sets - 1)) != 0)
        throw std::invalid_argument{name + ": set count must be a nonzero power of two"};
    };
    check_cache(l1d, "l1d");
    check_cache(l2, "l2");
    check_cache(l3, "l3");
    if (num_cores == 0 || num_cores > 64)
      throw std::invalid_argument{"num_cores out of range"};
    if (peak_bw_gbs <= 0 || freq_ghz <= 0)
      throw std::invalid_argument{"bandwidth/frequency must be positive"};
    if (quantum_cycles == 0 || mshr_per_core == 0)
      throw std::invalid_argument{"quantum/mshr must be positive"};
  }
};

}  // namespace coperf::sim
