// MemorySystem: the full cache/memory hierarchy shared by all cores.
//
// Private L1-D and L2 per core, one shared (optionally inclusive) L3,
// one DRAM channel, and one prefetcher bank per core. This is the
// paper's contention substrate: co-running applications meet here, in
// the LLC and on the memory bus, and nowhere else (Fig. 1).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/addr.hpp"
#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/memory.hpp"
#include "sim/prefetcher.hpp"

namespace coperf::sim {

/// Where a demand access was satisfied.
enum class HitLevel : std::uint8_t { L1 = 1, L2 = 2, L3 = 3, Mem = 4 };

struct AccessOutcome {
  HitLevel level = HitLevel::L1;
  std::uint32_t latency = 0;  ///< load-to-use cycles (0 for L1 hits: folded into base CPI)
  bool l2_miss = false;       ///< access went past the private L2
};

class MemorySystem {
 public:
  explicit MemorySystem(const MachineConfig& cfg);

  /// Demand load/store from `core` at local time `now`. Updates all
  /// cache state, trains prefetchers, issues their requests, and
  /// returns where the data came from and how long it took.
  /// `allocate == false` models set-conflicting / non-temporal traffic:
  /// the access still probes the hierarchy but a full miss goes to DRAM
  /// without displacing any cached line.
  AccessOutcome demand_access(unsigned core, Addr addr, std::uint16_t pc,
                              bool is_write, Cycle now, bool allocate = true);

  /// Number of prefetch lines brought in by the last demand_access call
  /// (for the issuing core's statistics).
  std::uint32_t last_prefetches() const { return last_prefetches_; }

  Cache& l1(unsigned core) { return *l1_[core]; }
  Cache& l2(unsigned core) { return *l2_[core]; }
  Cache& l3() { return *l3_; }
  const Cache& l3() const { return *l3_; }
  MemoryChannel& channel() { return channel_; }
  const MemoryChannel& channel() const { return channel_; }
  PrefetcherBank& prefetcher(unsigned core) { return *banks_[core]; }

  void set_prefetch_mask(const PrefetchMask& m);

  const MachineConfig& config() const { return cfg_; }

 private:
  /// Gates a request through `core`'s private bandwidth bucket (a core
  /// cannot pull more than per_core_bw_gbs from the socket).
  Cycle core_gate(unsigned core, Cycle now);
  /// Cycles until `core`'s bucket frees at `now`.
  Cycle core_backlog(unsigned core, Cycle now) const {
    const double nf = core_next_free_[core];
    return nf > static_cast<double>(now)
               ? static_cast<Cycle>(nf - static_cast<double>(now))
               : 0;
  }

  /// Brings `line` into the L3 (and handles inclusion back-invalidation
  /// plus dirty writebacks of evicted lines). Returns completion time.
  Cycle fetch_to_l3(unsigned core, Addr line, Cycle now, bool from_prefetch);
  void fill_l2(unsigned core, Addr line, bool from_prefetch);
  void fill_l1(unsigned core, Addr line, bool dirty, bool from_prefetch);
  void handle_l3_eviction(const CacheResult& r, Cycle now);
  /// Inline guard: most demand accesses queue no prefetch requests, so
  /// the walk stays out of line and the empty case costs two stores.
  void run_prefetches(unsigned core, Cycle now) {
    last_prefetches_ = 0;
    if (!scratch_.empty()) run_prefetches_slow(core, now);
  }
  void run_prefetches_slow(unsigned core, Cycle now);

  MachineConfig cfg_;
  std::vector<std::unique_ptr<Cache>> l1_;
  std::vector<std::unique_ptr<Cache>> l2_;
  std::unique_ptr<Cache> l3_;
  MemoryChannel channel_;
  std::vector<double> core_next_free_;  ///< per-core bandwidth buckets
  double core_cycles_per_line_ = 0.0;
  std::vector<std::unique_ptr<PrefetcherBank>> banks_;
  std::vector<PrefetchRequest> scratch_;  // reused per access, allocation-free
  std::uint32_t last_prefetches_ = 0;

  /// Prefetches are dropped when the global channel backlog exceeds
  /// this many cycles (socket-level prefetch throttling).
  static constexpr Cycle kPrefetchDropBacklog = 700;
  /// ...and, more importantly, when the issuing core's own bandwidth
  /// gate is still busy: demand misses have priority, so prefetch can
  /// never queue ahead of them at the core (useless prefetches on
  /// irregular code would otherwise inflate every demand latency).
  static constexpr Cycle kPrefetchDropCoreBacklog = 300;
};

}  // namespace coperf::sim
