// MemorySystem: the full cache/memory hierarchy shared by all cores.
//
// Private L1-D and L2 per core, one shared (optionally inclusive) L3,
// one DRAM channel, and one prefetcher bank per core. This is the
// paper's contention substrate: co-running applications meet here, in
// the LLC and on the memory bus, and nowhere else (Fig. 1).
//
// The demand walk and the prefetch drain live in this header: they are
// the innermost simulator loop (tens of millions of calls per co-run
// trial) and must inline into Core::do_mem together with the Cache
// lookups instead of paying a cross-TU call per hierarchy level.
// All cache SoA state is carved out of one bump arena owned here, so a
// trial's MemorySystem costs a couple of block allocations total.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/addr.hpp"
#include "sim/arena.hpp"
#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/memory.hpp"
#include "sim/prefetcher.hpp"

namespace coperf::sim {

/// Where a demand access was satisfied.
enum class HitLevel : std::uint8_t { L1 = 1, L2 = 2, L3 = 3, Mem = 4 };

struct AccessOutcome {
  HitLevel level = HitLevel::L1;
  std::uint32_t latency = 0;  ///< load-to-use cycles (0 for L1 hits: folded into base CPI)
  bool l2_miss = false;       ///< access went past the private L2
};

class MemorySystem {
 public:
  explicit MemorySystem(const MachineConfig& cfg);

  /// Demand load/store from `core` at local time `now`. Updates all
  /// cache state, trains prefetchers, issues their requests, and
  /// returns where the data came from and how long it took.
  /// `allocate == false` models set-conflicting / non-temporal traffic:
  /// the access still probes the hierarchy but a full miss goes to DRAM
  /// without displacing any cached line.
  AccessOutcome demand_access(unsigned core, Addr addr, std::uint16_t pc,
                              bool is_write, Cycle now, bool allocate = true) {
    AccessOutcome out;
    const Addr line = line_of(addr);
    scratch_.clear();

    Cache& l1 = l1_[core];
    const CacheResult r1 = l1.access(line, is_write);
    if (allocate) banks_[core].on_l1_access(addr, pc, !r1.hit, scratch_);
    if (r1.hit) {
      out.level = HitLevel::L1;
      out.latency = 0;
      run_prefetches(core, now);
      return out;
    }

    Cache& l2 = l2_[core];
    const CacheResult r2 = l2.access(line, /*is_write=*/false);
    if (r2.hit) {
      out.level = HitLevel::L2;
      out.latency = cfg_.l2.latency_cycles;
      fill_l1(core, line, is_write, false);
      run_prefetches(core, now);
      return out;
    }

    if (allocate) banks_[core].on_l2_miss(line, scratch_);
    out.l2_miss = true;

    const CacheResult r3 = l3_.access(line, /*is_write=*/false);
    if (r3.hit) {
      out.level = HitLevel::L3;
      out.latency = cfg_.l3.latency_cycles;
    } else {
      out.level = HitLevel::Mem;
      // L3 tag check precedes DRAM; the per-core bucket gates issue.
      const Cycle issued = core_gate(core, now + cfg_.l3.latency_cycles);
      const Cycle done = channel_.read(issued, kLineBytes, app_of(addr));
      out.latency = static_cast<std::uint32_t>(done - now);
      if (!allocate) return out;  // non-temporal: no displacement anywhere
      const CacheResult fill = l3_.fill(line, /*dirty=*/false, false);
      handle_l3_eviction(fill, now);
    }
    l3_.note_private(core);  // the line is about to enter this core's L1/L2
    fill_l2(core, line, false);
    fill_l1(core, line, is_write, false);
    run_prefetches(core, now);
    return out;
  }

  /// Number of prefetch lines brought in by the last demand_access call
  /// (for the issuing core's statistics).
  std::uint32_t last_prefetches() const { return last_prefetches_; }

  Cache& l1(unsigned core) { return l1_[core]; }
  Cache& l2(unsigned core) { return l2_[core]; }
  Cache& l3() { return l3_; }
  const Cache& l3() const { return l3_; }
  MemoryChannel& channel() { return channel_; }
  const MemoryChannel& channel() const { return channel_; }
  PrefetcherBank& prefetcher(unsigned core) { return banks_[core]; }

  void set_prefetch_mask(const PrefetchMask& m);

  const MachineConfig& config() const { return cfg_; }

  /// Arena bytes backing the cache SoA state (diagnostics).
  std::size_t arena_bytes() const { return arena_.bytes_used(); }

 private:
  /// Gates a request through `core`'s private bandwidth bucket (a core
  /// cannot pull more than per_core_bw_gbs from the socket).
  Cycle core_gate(unsigned core, Cycle now) {
    double& nf = core_next_free_[core];
    const double start = std::max(static_cast<double>(now), nf);
    nf = start + core_cycles_per_line_;
    return static_cast<Cycle>(start);
  }
  /// Cycles until `core`'s bucket frees at `now`.
  Cycle core_backlog(unsigned core, Cycle now) const {
    const double nf = core_next_free_[core];
    return nf > static_cast<double>(now)
               ? static_cast<Cycle>(nf - static_cast<double>(now))
               : 0;
  }

  /// Brings `line` into the L3 (and handles inclusion back-invalidation
  /// plus dirty writebacks of evicted lines). Returns completion time.
  Cycle fetch_to_l3(unsigned core, Addr line, Cycle now, bool from_prefetch) {
    const Cycle issue = core_gate(core, now);
    const Cycle done =
        channel_.read(issue, kLineBytes, app_of(line << kLineBytesLog2));
    const CacheResult fill = l3_.fill(line, /*dirty=*/false, from_prefetch);
    handle_l3_eviction(fill, now);
    return done;
  }

  void fill_l2(unsigned core, Addr line, bool from_prefetch) {
    const CacheResult fill = l2_[core].fill(line, /*dirty=*/false, from_prefetch);
    if (fill.evicted && fill.evicted_dirty) {
      // Write the dirty L2 victim back into the (inclusive) L3; if the L3
      // already dropped it, the traffic went to memory at that point.
      // mark_dirty reports presence itself, so no probe double-walk.
      (void)l3_.mark_dirty(fill.evicted_line);
    }
  }

  void fill_l1(unsigned core, Addr line, bool dirty, bool from_prefetch) {
    const CacheResult fill = l1_[core].fill(line, dirty, from_prefetch);
    if (fill.evicted && fill.evicted_dirty) {
      if (!l2_[core].mark_dirty(fill.evicted_line))
        (void)l3_.mark_dirty(fill.evicted_line);
    }
  }

  void handle_l3_eviction(const CacheResult& r, Cycle now) {
    if (!r.evicted) return;
    bool dirty = r.evicted_dirty;
    const AppId app = app_of(r.evicted_line << kLineBytesLog2);
    if (cfg_.l3_inclusive) {
      // Inclusion victims: the line must leave every private cache too.
      // Instead of broadcasting to all 2*num_cores private caches, visit
      // only the cores the L3 recorded as ever pulling this line
      // (note_private). The mask is sticky-conservative: a listed core
      // may have evicted the line long ago, and invalidate() rejects
      // those with its O(1) presence filters.
      std::uint64_t m = r.evicted_private_mask;
      if (cfg_.num_cores < 64) m &= (std::uint64_t{1} << cfg_.num_cores) - 1;
      while (m != 0) {
        const auto c = static_cast<unsigned>(std::countr_zero(m));
        m &= m - 1;
        if (l1_[c].invalidate(r.evicted_line).dirty) dirty = true;
        if (l2_[c].invalidate(r.evicted_line).dirty) dirty = true;
      }
    }
    if (dirty) channel_.write(now, kLineBytes, app);
  }

  /// Inline guard: most demand accesses queue no prefetch requests, so
  /// the walk stays out of line and the empty case costs two stores.
  void run_prefetches(unsigned core, Cycle now) {
    last_prefetches_ = 0;
    if (!scratch_.empty()) run_prefetches_slow(core, now);
  }

  // --- Prefetch request-combining queue ------------------------------
  //
  // Trained prefetchers re-request lines they (or a sibling) already
  // brought in: a degree-4 streamer burst overlaps the previous burst
  // in 3 of 4 lines, so most requests used to re-walk the probe chain
  // just to discover the line is resident. The combining queue is a
  // small per-core ring of (line, level, set-departure-epoch) records
  // written whenever a prefetch walk leaves `line` resident at its
  // target level. A later duplicate request whose recorded epoch still
  // matches the target cache's set epoch is dropped WITHOUT probing.
  //
  // Exactness argument (goldens must stay bit-identical):
  //  - the skipped walk would have been `probe(line) -> hit -> continue`,
  //    which mutates no statistic, no LRU state, and no memo (a probe
  //    only records its negative memo on a MISS; mru/last_touch touches
  //    on private caches are never observed);
  //  - the epoch check is an exact residency proof: the epoch bumps on
  //    every departure from the set, so "epoch unchanged since observed
  //    resident" means nothing was displaced -- the line is still there;
  //  - both drop gates below are invariant across skipped requests
  //    (only fetch_to_l3 moves the core bucket or the channel), so
  //    skipping cannot shift which request a backlog break lands on;
  //  - `last_prefetches_` counts fills only; a skipped request would
  //    not have filled.

  struct CombineEntry {
    Addr line = ~Addr{0};
    std::uint32_t epoch = 0;
    PrefetchLevel level = PrefetchLevel::L2;
  };
  static constexpr unsigned kCombineWays = 8;

  void run_prefetches_slow(unsigned core, Cycle now) {
    // The probe -> fill chains below are effectively single set walks:
    // a missing probe leaves a "known absent" memo in the cache, and the
    // matching fill consumes it instead of re-running the lookup.
    Cache& l1 = l1_[core];
    Cache& l2 = l2_[core];
    CombineEntry* ring = combine_.data() + core * kCombineWays;
    // Demand priority: prefetch only into an idle core gate, and back
    // off entirely when the socket is congested. Both gates move only
    // when a prefetch reaches DRAM (fetch_to_l3), so they are hoisted
    // out of the per-request path and refreshed after each fetch.
    bool gates_open = core_backlog(core, now) <= kPrefetchDropCoreBacklog &&
                      channel_.backlog(now) <= kPrefetchDropBacklog;
    for (const PrefetchRequest& req : scratch_) {
      if (!gates_open) break;
      CombineEntry* known = nullptr;
      for (unsigned i = 0; i < kCombineWays; ++i) {
        if (ring[i].line == req.line && ring[i].level == req.level) {
          known = &ring[i];
          break;
        }
      }
      Cache& target = req.level == PrefetchLevel::L1 ? l1 : l2;
      if (known != nullptr && target.set_epoch_of(req.line) == known->epoch)
        continue;  // combined: provably still resident, the walk is a no-op
      if (req.level == PrefetchLevel::L1) {
        if (!l1.probe(req.line)) {
          if (!l2.probe(req.line)) {
            if (!l3_.probe(req.line)) {
              (void)fetch_to_l3(core, req.line, now, true);
              gates_open =
                  core_backlog(core, now) <= kPrefetchDropCoreBacklog &&
                  channel_.backlog(now) <= kPrefetchDropBacklog;
            }
            l3_.note_private(core);
            fill_l2(core, req.line, true);
          }
          fill_l1(core, req.line, /*dirty=*/false, true);
          ++last_prefetches_;
        }
      } else {
        if (!l2.probe(req.line)) {
          if (!l3_.probe(req.line)) {
            (void)fetch_to_l3(core, req.line, now, true);
            gates_open = core_backlog(core, now) <= kPrefetchDropCoreBacklog &&
                         channel_.backlog(now) <= kPrefetchDropBacklog;
          }
          l3_.note_private(core);
          fill_l2(core, req.line, true);
          ++last_prefetches_;
        }
      }
      // Either way the line is now resident at the target level: record
      // it so the next duplicate request combines instead of re-walking.
      const std::uint32_t epoch = target.set_epoch_of(req.line);
      if (known != nullptr) {
        known->epoch = epoch;
      } else {
        std::uint8_t& cur = combine_pos_[core];
        ring[cur] = CombineEntry{req.line, epoch, req.level};
        cur = static_cast<std::uint8_t>((cur + 1) & (kCombineWays - 1));
      }
    }
    scratch_.clear();
  }

  MachineConfig cfg_;
  /// Backs every cache's SoA arrays; declared before them so it
  /// outlives their pointers on destruction.
  Arena arena_;
  std::vector<Cache> l1_;
  std::vector<Cache> l2_;
  Cache l3_;
  MemoryChannel channel_;
  std::vector<double> core_next_free_;  ///< per-core bandwidth buckets
  double core_cycles_per_line_ = 0.0;
  std::vector<PrefetcherBank> banks_;
  std::vector<PrefetchRequest> scratch_;  // reused per access, allocation-free
  std::vector<CombineEntry> combine_;     // kCombineWays entries per core
  std::vector<std::uint8_t> combine_pos_;
  std::uint32_t last_prefetches_ = 0;

  /// Prefetches are dropped when the global channel backlog exceeds
  /// this many cycles (socket-level prefetch throttling).
  static constexpr Cycle kPrefetchDropBacklog = 700;
  /// ...and, more importantly, when the issuing core's own bandwidth
  /// gate is still busy: demand misses have priority, so prefetch can
  /// never queue ahead of them at the core (useless prefetches on
  /// irregular code would otherwise inflate every demand latency).
  static constexpr Cycle kPrefetchDropCoreBacklog = 300;
};

}  // namespace coperf::sim
