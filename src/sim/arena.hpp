// Bump arena backing per-machine simulation state.
//
// A trial constructs one Machine, which owns 17 caches (2 private
// levels x 8 cores + L3) and 8 prefetcher banks; before the arena each
// cache carried ~6 separate vectors, so ExperimentPlan fan-outs paid
// ~130 allocator round-trips per trial just to build and tear down the
// machine. The arena replaces all of that with a couple of geometric
// block allocations that free in O(blocks) when the trial ends -- the
// construct/teardown component of `plan.trial_us` is what this buys
// down. Storage is zero-initialized (the vectors it replaces were
// assign(n, 0)), trivially-destructible element types only.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace coperf::sim {

class Arena {
 public:
  Arena() = default;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Zero-initialized array of `n` elements. Pointers stay valid for
  /// the arena's lifetime (blocks are never reallocated, only chained),
  /// so holders remain trivially movable.
  template <class T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "arena storage is raw memory: trivial types only");
    static_assert(alignof(T) <= kAlign);
    if (n == 0) return nullptr;
    void* p = allocate(n * sizeof(T));
    std::memset(p, 0, n * sizeof(T));
    return static_cast<T*>(p);
  }

  /// Total bytes handed out (diagnostics).
  std::size_t bytes_used() const { return total_used_; }

 private:
  static constexpr std::size_t kAlign = 16;
  static constexpr std::size_t kLine = 64;
  static constexpr std::size_t kPage = 4096;
  static constexpr std::size_t kMinBlock = 64 * 1024;

  void* allocate(std::size_t bytes) {
    bytes = (bytes + (kAlign - 1)) & ~(kAlign - 1);
    // Rotate each allocation's page offset by a cache line. The arrays
    // this arena serves (cache tags / LRU stamps / flags, scanned at
    // the same element index together) have power-of-two sizes; packed
    // back-to-back they would land on identical 4 KiB page offsets and
    // collide in the same host L1 sets / 4K store-forwarding windows on
    // every single access. malloc decorrelated them by accident; the
    // skew does it on purpose, for one wasted line per allocation.
    skew_ = (skew_ + kLine) & (kPage - 1);
    if (used_ + ((skew_ - used_) & (kPage - 1)) + bytes > cap_)
      grow(bytes + kPage);
    used_ += (skew_ - used_) & (kPage - 1);
    void* p = cur_ + used_;
    used_ += bytes;
    total_used_ += bytes;
    return p;
  }

  void grow(std::size_t need) {
    std::size_t size = blocks_.empty() ? kMinBlock : 2 * blocks_.back().size;
    if (size < need) size = need;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    cur_ = blocks_.back().data.get();
    cap_ = size;
    used_ = 0;
  }

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };
  std::vector<Block> blocks_;
  std::byte* cur_ = nullptr;
  std::size_t used_ = 0;
  std::size_t cap_ = 0;
  std::size_t total_used_ = 0;
  std::size_t skew_ = 0;  ///< rotating page offset for the next allocation
};

}  // namespace coperf::sim
