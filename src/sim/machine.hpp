// Machine: assembles cores + MemorySystem and drives the
// relaxed-synchronization (quantum) event loop.
//
// Reproduces the paper's experiment setup (Fig. 1): each application is
// bound to an exclusive set of physical cores; the only shared
// resources are the LLC and the memory subsystem. Background
// applications restart indefinitely until every foreground application
// finishes (Section V), exactly like the paper's co-run harness.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/core.hpp"
#include "sim/hierarchy.hpp"
#include "sim/op.hpp"
#include "sim/stats.hpp"

namespace coperf::sim {

/// One application bound onto the machine: one OpSource per thread,
/// each pinned to the corresponding core.
struct AppBinding {
  AppId id = 0;
  std::vector<unsigned> cores;
  std::vector<OpSource*> sources;
  /// Re-arms all sources for a fresh run (background apps only).
  std::function<void()> restart;
  bool background = false;
};

/// Cumulative memory-traffic snapshot taken every sample window
/// (the Intel PCM `pcm-memory` analogue). One slot per bound app, so
/// N-way co-run groups get per-member bandwidth like pairs do.
struct BandwidthSample {
  Cycle cycle = 0;
  std::uint64_t total_bytes = 0;
  std::vector<std::uint64_t> app_bytes;  // indexed by binding order
};

/// Result of Machine::run().
struct RunOutcome {
  Cycle finish_cycle = 0;              ///< when the last foreground thread retired
  std::vector<Cycle> app_finish;       ///< per-binding finish (bg: last restart boundary)
  std::vector<std::uint64_t> bg_runs;  ///< completed background iterations per binding
  bool hit_cycle_limit = false;
};

class Machine final : public SyncEnv {
 public:
  explicit Machine(const MachineConfig& cfg);

  /// Registers an application; must be called before run().
  /// Throws if core assignments overlap or exceed the machine.
  void add_app(AppBinding binding);

  /// Runs until every foreground application finishes.
  RunOutcome run();

  /// Runs for a fixed duration (diagnostics; background-only setups).
  void run_for(Cycle cycles);

  // SyncEnv
  std::optional<Cycle> barrier_arrive(unsigned core, Cycle now) override;

  MemorySystem& mem() { return mem_; }
  const MemorySystem& mem() const { return mem_; }
  Core& core(unsigned i) { return cores_[i]; }
  const MachineConfig& config() const { return cfg_; }
  Cycle global_cycle() const { return global_; }

  std::size_t num_apps() const { return apps_.size(); }
  const AppBinding& app(std::size_t i) const { return apps_[i]; }

  /// Aggregated counters over all cores of binding `i`.
  CoreStats app_stats(std::size_t i) const;

  /// Per-region aggregated counters over all cores of binding `i`.
  std::vector<std::pair<std::uint32_t, CoreStats>> app_region_stats(std::size_t i);

  /// Merged per-request latency distribution over all cores of binding
  /// `i` (empty for batch workloads).
  LatencyStats app_latency(std::size_t i) const;

  const std::vector<BandwidthSample>& bandwidth_timeline() const { return samples_; }

  /// PCM-style sampling window (cycles between samples).
  void set_sample_window(Cycle w) { sample_window_ = w; }
  /// Safety limit; run() aborts with hit_cycle_limit when exceeded.
  void set_cycle_limit(Cycle c) { cycle_limit_ = c; }

  /// Cost of one barrier episode for a `parties`-thread group: an
  /// OpenMP-style busy-wait tree release (kmp_hyper_barrier) costs on
  /// the order of a microsecond and grows with the fan-out. This is
  /// negligible for workloads that synchronize per iteration (graph
  /// supersteps) but dominates ones that synchronize every minibatch
  /// (ATIS) -- exactly the paper's Section IV-A finding.
  static Cycle barrier_overhead(std::uint32_t parties) {
    return parties <= 1 ? 0 : 400 + 250ull * (parties - 1);
  }

 private:
  struct BarrierGroup {
    std::uint32_t parties = 0;
    std::uint32_t arrived = 0;
    Cycle max_arrival = 0;
    std::vector<unsigned> waiting;
  };

  void step_quantum();
  void sample_bandwidth();
  bool foreground_done() const;
  void handle_background_restarts();
  void check_progress();
  /// Recomputes `active_cores_` = cores that are Runnable or Blocked.
  void rebuild_active_cores();

  MachineConfig cfg_;
  MemorySystem mem_;
  std::vector<Core> cores_;
  std::vector<AppBinding> apps_;
  std::vector<int> core_to_app_;  // -1 == unbound
  std::vector<BarrierGroup> barriers_;
  /// Cores worth visiting each quantum (not Idle, not Done), ascending.
  /// Blocked cores stay listed: a sibling can release them mid-quantum.
  std::vector<unsigned> active_cores_;

  Cycle global_ = 0;
  Cycle sample_window_ = 100'000;
  Cycle next_sample_ = 0;
  Cycle cycle_limit_ = 50'000'000'000ull;
  std::vector<BandwidthSample> samples_;
  std::vector<std::uint64_t> bg_runs_;
  std::vector<Cycle> app_finish_;
  std::uint64_t stalled_quanta_ = 0;
};

}  // namespace coperf::sim
