#include "sim/core.hpp"

namespace coperf::sim {

void Core::attach(OpSource* src, AppId app, Cycle at) {
  src_ = src;
  app_ = app;
  attr_ = src->attr();
  window_ = std::min<std::uint32_t>(
      {mem_->config().mshr_per_core, attr_.mlp, kMaxWindow});
  window_ = std::max<std::uint32_t>(window_, 1);
  local_ = std::max(local_, at);
  // `start_` anchors elapsed-cycle accounting; it must not reset when a
  // background app restarts, or per-app CPI would ignore earlier runs.
  if (!ever_attached_) {
    start_ = local_;
    ever_attached_ = true;
  }
  rob_ = mem_->config().rob_instructions;
  region_start_cycle_ = local_;
  state_ = CoreState::Runnable;
  buf_pos_ = buf_len_ = 0;
  ring_head_ = 0;
  ring_size_ = 0;
  pending_watermark_ = local_;
  // Requests never span an attach: a background restart re-attaches at
  // the join cycle and the idle gap must not count as request time.
  last_request_mark_ = local_;
  frac_cycles_ = 0.0;
}

void Core::detach() {
  flush_region();
  src_ = nullptr;
  state_ = CoreState::Idle;
}

CoreStats Core::snapshot() const {
  CoreStats s = stats_;
  s.cycles = local_ - start_;
  return s;
}

const std::vector<std::pair<std::uint32_t, CoreStats>>& Core::region_stats() {
  flush_region();
  return region_stats_;
}

void Core::flush_region() {
  CoreStats now = stats_;
  now.cycles = 0;  // cycles handled separately below
  // Workloads declare a handful of regions, so a sorted flat vector
  // beats a node-based map on both lookup and iteration.
  CoreStats& bucket = sim::region_bucket(region_stats_, cur_region_);
  auto diff = [](std::uint64_t a, std::uint64_t b) { return a - b; };
  bucket.instructions += diff(now.instructions, region_snapshot_.instructions);
  bucket.loads += diff(now.loads, region_snapshot_.loads);
  bucket.stores += diff(now.stores, region_snapshot_.stores);
  bucket.l1d_hits += diff(now.l1d_hits, region_snapshot_.l1d_hits);
  bucket.l1d_misses += diff(now.l1d_misses, region_snapshot_.l1d_misses);
  bucket.l2_hits += diff(now.l2_hits, region_snapshot_.l2_hits);
  bucket.l2_misses += diff(now.l2_misses, region_snapshot_.l2_misses);
  bucket.l3_hits += diff(now.l3_hits, region_snapshot_.l3_hits);
  bucket.l3_misses += diff(now.l3_misses, region_snapshot_.l3_misses);
  bucket.bytes_from_mem += diff(now.bytes_from_mem, region_snapshot_.bytes_from_mem);
  bucket.bytes_written_back +=
      diff(now.bytes_written_back, region_snapshot_.bytes_written_back);
  bucket.stall_cycles_mem +=
      diff(now.stall_cycles_mem, region_snapshot_.stall_cycles_mem);
  bucket.pending_l2_cycles +=
      diff(now.pending_l2_cycles, region_snapshot_.pending_l2_cycles);
  bucket.prefetches_issued +=
      diff(now.prefetches_issued, region_snapshot_.prefetches_issued);
  bucket.cycles += local_ - region_start_cycle_;
  region_snapshot_ = now;
  region_start_cycle_ = local_;
}

void Core::do_region(std::uint32_t region) {
  if (region == cur_region_) return;
  flush_region();
  cur_region_ = region;
}

void Core::do_request(std::uint32_t count) {
  // A request ends when its slowest outstanding miss arrives, not when
  // the in-order front has merely issued it: take the latest in-flight
  // completion into account (pure observation -- neither local_ nor
  // any counter moves, so batch timing is untouched even if a batch
  // workload ever emitted a mark).
  Cycle end = local_;
  for (std::uint32_t i = 0; i < ring_size_; ++i)
    end = std::max(end, window_ring_[(ring_head_ + i) % kMaxWindow].completion);
  if (count != 0)
    latency_.record(end > last_request_mark_ ? end - last_request_mark_ : 0);
  last_request_mark_ = end;
}

void Core::pending_add(Cycle start, Cycle end) {
  const Cycle s = std::max(start, pending_watermark_);
  if (end > s) {
    stats_.pending_l2_cycles += end - s;
    pending_watermark_ = end;
  }
}

void Core::drain_window() {
  // Retire misses whose data arrived (in issue order).
  while (ring_size_ > 0 &&
         window_ring_[ring_head_].completion <= local_) {
    ring_head_ = (ring_head_ + 1) % kMaxWindow;
    --ring_size_;
  }
  // ROB pressure: the pipeline cannot run more than `rob_` instructions
  // past the oldest unfinished miss -- this is what converts co-run
  // latency inflation into victim slowdown.
  while (ring_size_ > 0 &&
         stats_.instructions - window_ring_[ring_head_].instr_at_issue >=
             rob_) {
    const Cycle completion = window_ring_[ring_head_].completion;
    if (completion > local_) {
      stats_.stall_cycles_mem += completion - local_;
      local_ = completion;
    }
    ring_head_ = (ring_head_ + 1) % kMaxWindow;
    --ring_size_;
  }
  // MSHR/LFB pressure: no more than `window_` misses in flight.
  while (ring_size_ >= window_) {
    const Cycle completion = window_ring_[ring_head_].completion;
    if (completion > local_) {
      stats_.stall_cycles_mem += completion - local_;
      local_ = completion;
    }
    ring_head_ = (ring_head_ + 1) % kMaxWindow;
    --ring_size_;
  }
}

void Core::do_compute(std::uint32_t uops) {
  stats_.instructions += uops;
  frac_cycles_ += static_cast<double>(uops) * attr_.cpi_base;
  if (frac_cycles_ >= 1.0) {
    const auto whole = static_cast<Cycle>(frac_cycles_);
    local_ += whole;
    frac_cycles_ -= static_cast<double>(whole);
  }
  if (ring_size_ > 0) drain_window();  // compute can fill the ROB too
}

void Core::do_mem(const Op& op, bool is_write) {
  ++stats_.instructions;
  if (is_write)
    ++stats_.stores;
  else
    ++stats_.loads;

  // Every memory op occupies an issue slot for one cycle (AGU + port),
  // so even an all-L1-hit instruction stream cannot run in zero time.
  local_ += kIssueCost;

  const AccessOutcome out = mem_->demand_access(
      id_, op.addr, op.pc, is_write, local_, op.dep != Dep::Bypass);
  stats_.prefetches_issued += mem_->last_prefetches();

  switch (out.level) {
    case HitLevel::L1:
      ++stats_.l1d_hits;
      return;  // hit latency folded into base CPI
    case HitLevel::L2:
      ++stats_.l1d_misses;
      ++stats_.l2_hits;
      local_ += (op.dep == Dep::Chain && !is_write) ? out.latency
                                                    : kL2HitOverlapCost;
      return;
    case HitLevel::L3:
      ++stats_.l1d_misses;
      ++stats_.l2_misses;
      ++stats_.l3_hits;
      break;
    case HitLevel::Mem:
      ++stats_.l1d_misses;
      ++stats_.l2_misses;
      ++stats_.l3_misses;
      stats_.bytes_from_mem += kLineBytes;
      break;
  }

  // Past the private L2: either serialize (chain) or overlap (window).
  if (op.dep == Dep::Chain && !is_write) {
    pending_add(local_, local_ + out.latency);
    stats_.stall_cycles_mem += out.latency;
    local_ += out.latency;
    return;
  }
  // The line arrives at an ABSOLUTE time anchored at issue; a stall for
  // window space below must not push the arrival further out.
  const Cycle completes_at = local_ + out.latency;
  drain_window();  // may stall on MSHR or ROB pressure
  pending_add(local_, completes_at);
  window_ring_[(ring_head_ + ring_size_) % kMaxWindow] =
      Miss{completes_at, stats_.instructions};
  ++ring_size_;
}

void Core::exec(const Op& op) {
  switch (op.kind) {
    case OpKind::Compute:
      do_compute(op.count);
      break;
    case OpKind::Load:
      do_mem(op, false);
      break;
    case OpKind::Store:
      do_mem(op, true);
      break;
    case OpKind::Region:
      do_region(op.count);
      break;
    case OpKind::Request:
      do_request(op.count);
      break;
    case OpKind::Barrier: {
      const auto released = sync_->barrier_arrive(id_, local_);
      if (released.has_value()) {
        stats_.barrier_wait_cycles += *released - local_;
        local_ = *released;
        src_->barrier_passed();
      } else {
        state_ = CoreState::Blocked;
      }
      break;
    }
  }
}

void Core::release_barrier(Cycle release_time) {
  stats_.barrier_wait_cycles += release_time > local_ ? release_time - local_ : 0;
  local_ = std::max(local_, release_time);
  state_ = CoreState::Runnable;
  src_->barrier_passed();
}

void Core::run_until(Cycle until) {
  if (state_ != CoreState::Runnable) return;
  while (local_ < until) {
    if (buf_pos_ >= buf_len_) {
      // Prefer the source's zero-copy window; fall back to a copying
      // refill for sources that do not expose one.
      std::size_t n = 0;
      if (const Op* view = src_->refill_view(n); view != nullptr) {
        ops_ = view;
        buf_len_ = n;
      } else {
        buf_len_ = src_->refill(buf_.data(), kBufCap);
        ops_ = buf_.data();
      }
      buf_pos_ = 0;
      if (buf_len_ == 0) {
        flush_region();
        state_ = CoreState::Done;
        return;
      }
    }
    // Batched pump: drain the refilled block through the hierarchy in
    // one tight loop with the cursor and bounds held in locals, instead
    // of round-tripping through the outer refill check per op. Same
    // op-at-a-time semantics (quantum boundary and barrier state are
    // re-checked after every op), one block bookkeeping pass per block.
    const Op* const ops = ops_;
    const std::size_t len = buf_len_;
    std::size_t pos = buf_pos_;
    while (pos < len) {
      exec(ops[pos++]);
      if (state_ != CoreState::Runnable || local_ >= until) break;
    }
    buf_pos_ = pos;
    if (state_ == CoreState::Blocked) return;
  }
}

}  // namespace coperf::sim
