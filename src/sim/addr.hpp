// Address-space conventions for the simulated machine.
//
// Simulated addresses are 64-bit virtual addresses. Each co-running
// application instance owns a disjoint address space selected by an
// AppId placed in the upper bits, so two applications never alias in
// the coherence sense yet still contend for shared-cache sets and
// memory bandwidth -- exactly the sharing structure of the paper's
// testbed (two processes pinned to disjoint cores sharing LLC+DRAM).
#pragma once

#include <cstdint>

namespace coperf::sim {

using Addr = std::uint64_t;
using Cycle = std::uint64_t;

/// Identifies one application instance within a simulation (0 or 1 in
/// the paper's pairwise co-run setup; more are allowed).
using AppId = std::uint8_t;

inline constexpr unsigned kLineBytesLog2 = 6;  // 64-byte lines everywhere
inline constexpr unsigned kLineBytes = 1u << kLineBytesLog2;

/// Bit position of the AppId field inside a simulated address. 1 TiB of
/// private address space per application is far beyond any workload
/// footprint used here.
inline constexpr unsigned kAppIdShift = 40;

/// Base of application `id`'s private address space.
constexpr Addr app_base(AppId id) { return Addr{id} << kAppIdShift; }

/// Cache-line number of an address (global across applications).
constexpr Addr line_of(Addr a) { return a >> kLineBytesLog2; }

/// First byte of the line containing `a`.
constexpr Addr line_align(Addr a) { return a & ~Addr{kLineBytes - 1}; }

/// AppId owning address `a`.
constexpr AppId app_of(Addr a) { return static_cast<AppId>(a >> kAppIdShift); }

}  // namespace coperf::sim
