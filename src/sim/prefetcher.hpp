// The four Sandy Bridge hardware prefetchers (Section IV-C):
//   - L1-D next-line (DCU) prefetcher
//   - L1-D IP-stride prefetcher
//   - L2 streamer ("L2 hardware prefetcher")
//   - L2 adjacent-cache-line (buddy) prefetcher
// One PrefetcherBank instance sits next to each core, like the per-core
// MSR 0x1A4 control the paper toggles.
//
// The on_* hooks run on every demand access / L2 miss (tens of millions
// of calls per trial), so they live in this header and inline into the
// hierarchy walk.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/addr.hpp"
#include "sim/config.hpp"

namespace coperf::sim {

/// Target level of a generated prefetch.
enum class PrefetchLevel : std::uint8_t { L1, L2 };

struct PrefetchRequest {
  Addr line = 0;
  PrefetchLevel level = PrefetchLevel::L2;
};

/// Per-core bank of the four prefetchers. Callers invoke the on_*
/// hooks during demand accesses; generated requests are appended to the
/// caller-owned vector (kept allocation-free in steady state).
class PrefetcherBank {
 public:
  PrefetcherBank(const PrefetchMask& mask, std::uint32_t streamer_degree,
                 std::uint32_t streamer_train)
      : mask_(mask), degree_(streamer_degree), train_(streamer_train) {}

  /// Demand L1-D access (both hits and misses train the IP prefetcher;
  /// only misses trigger the next-line prefetcher).
  void on_l1_access(Addr addr, std::uint16_t pc, bool miss,
                    std::vector<PrefetchRequest>& out) {
    const Addr line = line_of(addr);

    if (mask_.l1_ip_stride && pc != 0) {
      IpEntry& e = ip_table_[pc % kIpTableSize];
      if (e.valid && e.pc == pc) {
        const std::int64_t stride = static_cast<std::int64_t>(addr) -
                                    static_cast<std::int64_t>(e.last_addr);
        if (stride != 0 && stride == e.stride) {
          if (e.confidence < kIpConfidenceThreshold) ++e.confidence;
        } else {
          e.stride = stride;
          e.confidence = 0;
        }
        e.last_addr = addr;
        // Real DCU IP prefetchers only track short strides; large hops
        // (e.g. Bandit's set-conflict pattern) must not be predictable.
        constexpr std::int64_t kMaxStride = 2048;
        if (e.confidence >= kIpConfidenceThreshold && e.stride != 0 &&
            e.stride >= -kMaxStride && e.stride <= kMaxStride) {
          // Fetch the line two strides ahead (prefetch distance 2).
          const Addr target = static_cast<Addr>(
              static_cast<std::int64_t>(addr) + 2 * e.stride);
          if (line_of(target) != line)
            emit(line_of(target), PrefetchLevel::L1, out);
        }
      } else {
        e = IpEntry{pc, addr, 0, 0, true};
      }
    }

    if (miss) {
      // The DCU next-line prefetcher has an ascending-pattern filter:
      // random misses (graph gathers, hash probes) must not trigger it.
      const bool ascending =
          last_l1_miss_line_ != ~Addr{0} && line >= last_l1_miss_line_ &&
          line - last_l1_miss_line_ <= 2;
      if (mask_.l1_next_line && ascending)
        emit(line + 1, PrefetchLevel::L1, out);
      last_l1_miss_line_ = line;
    }
  }

  /// Demand L2 miss (trains the streamer, fires the adjacent prefetcher).
  void on_l2_miss(Addr line, std::vector<PrefetchRequest>& out) {
    if (mask_.l2_adjacent) {
      // Fetch the buddy line of the 128-byte aligned pair.
      emit(line ^ 1, PrefetchLevel::L2, out);
    }

    if (!mask_.l2_stream) return;

    const Addr page = page_of_line(line);
    // Steady state is a match on a trained stream: scan for it with an
    // early exit and leave victim selection to the (rare) allocation
    // path instead of folding an LRU sweep into every lookup.
    StreamEntry* entry = nullptr;
    for (StreamEntry& s : streams_) {
      if (s.valid && s.page == page) {
        entry = &s;
        break;
      }
    }
    ++stream_clock_;
    if (entry == nullptr) {
      // Prefer an invalid slot; otherwise evict the least recently used.
      StreamEntry* victim = &streams_.front();
      for (StreamEntry& s : streams_) {
        if (victim->valid && (!s.valid || s.lru < victim->lru)) victim = &s;
      }
      *victim = StreamEntry{page, line, 0, 1, stream_clock_, true};
      return;
    }
    entry->lru = stream_clock_;
    const std::int64_t delta = static_cast<std::int64_t>(line) -
                               static_cast<std::int64_t>(entry->last_line);
    if (delta == 1 || delta == -1) {
      const auto dir = static_cast<std::int8_t>(delta);
      entry->run = (entry->direction == dir)
                       ? static_cast<std::uint8_t>(entry->run + 1)
                       : std::uint8_t{1};
      entry->direction = dir;
      if (entry->run >= train_) {
        for (std::uint32_t i = 1; i <= degree_; ++i) {
          // Keep the arithmetic signed: dir(-1) * unsigned would wrap.
          const std::int64_t target =
              static_cast<std::int64_t>(line) +
              static_cast<std::int64_t>(dir) * static_cast<std::int64_t>(i + 1);
          if (target >= 0 && page_of_line(static_cast<Addr>(target)) == page)
            emit(static_cast<Addr>(target), PrefetchLevel::L2, out);
        }
      }
    } else {
      entry->run = 1;
      entry->direction = 0;
    }
    entry->last_line = line;
  }

  const PrefetchMask& mask() const { return mask_; }
  void set_mask(const PrefetchMask& m) { mask_ = m; }

  std::uint64_t issued() const { return issued_; }
  void reset();

 private:
  static constexpr unsigned kPageBytesLog2 = 12;  // 4 KiB training granule
  static constexpr Addr page_of_line(Addr line) {
    return line >> (kPageBytesLog2 - kLineBytesLog2);
  }

  // --- L1 IP-stride state ---------------------------------------------
  struct IpEntry {
    std::uint16_t pc = 0;
    Addr last_addr = 0;
    std::int64_t stride = 0;
    std::uint8_t confidence = 0;
    bool valid = false;
  };
  static constexpr std::size_t kIpTableSize = 256;
  static constexpr std::uint8_t kIpConfidenceThreshold = 2;

  // --- L2 streamer state ------------------------------------------------
  struct StreamEntry {
    Addr page = 0;            // 4 KiB page number
    Addr last_line = 0;
    std::int8_t direction = 0;  // +1 / -1
    std::uint8_t run = 0;       // consecutive sequential misses seen
    std::uint64_t lru = 0;
    bool valid = false;
  };
  static constexpr std::size_t kStreamTableSize = 16;

  void emit(Addr line, PrefetchLevel level, std::vector<PrefetchRequest>& out) {
    out.push_back(PrefetchRequest{line, level});
    ++issued_;
  }

  Addr last_l1_miss_line_ = ~Addr{0};
  PrefetchMask mask_;
  std::uint32_t degree_;
  std::uint32_t train_;
  std::array<IpEntry, kIpTableSize> ip_table_{};
  std::array<StreamEntry, kStreamTableSize> streams_{};
  std::uint64_t stream_clock_ = 0;
  std::uint64_t issued_ = 0;
};

}  // namespace coperf::sim
