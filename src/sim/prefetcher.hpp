// The four Sandy Bridge hardware prefetchers (Section IV-C):
//   - L1-D next-line (DCU) prefetcher
//   - L1-D IP-stride prefetcher
//   - L2 streamer ("L2 hardware prefetcher")
//   - L2 adjacent-cache-line (buddy) prefetcher
// One PrefetcherBank instance sits next to each core, like the per-core
// MSR 0x1A4 control the paper toggles.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/addr.hpp"
#include "sim/config.hpp"

namespace coperf::sim {

/// Target level of a generated prefetch.
enum class PrefetchLevel : std::uint8_t { L1, L2 };

struct PrefetchRequest {
  Addr line = 0;
  PrefetchLevel level = PrefetchLevel::L2;
};

/// Per-core bank of the four prefetchers. Callers invoke the on_*
/// hooks during demand accesses; generated requests are appended to the
/// caller-owned vector (kept allocation-free in steady state).
class PrefetcherBank {
 public:
  PrefetcherBank(const PrefetchMask& mask, std::uint32_t streamer_degree,
                 std::uint32_t streamer_train);

  /// Demand L1-D access (both hits and misses train the IP prefetcher;
  /// only misses trigger the next-line prefetcher).
  void on_l1_access(Addr addr, std::uint16_t pc, bool miss,
                    std::vector<PrefetchRequest>& out);

  /// Demand L2 miss (trains the streamer, fires the adjacent prefetcher).
  void on_l2_miss(Addr line, std::vector<PrefetchRequest>& out);

  const PrefetchMask& mask() const { return mask_; }
  void set_mask(const PrefetchMask& m) { mask_ = m; }

  std::uint64_t issued() const { return issued_; }
  void reset();

 private:
  // --- L1 IP-stride state ---------------------------------------------
  struct IpEntry {
    std::uint16_t pc = 0;
    Addr last_addr = 0;
    std::int64_t stride = 0;
    std::uint8_t confidence = 0;
    bool valid = false;
  };
  static constexpr std::size_t kIpTableSize = 256;
  static constexpr std::uint8_t kIpConfidenceThreshold = 2;

  // --- L2 streamer state ------------------------------------------------
  struct StreamEntry {
    Addr page = 0;            // 4 KiB page number
    Addr last_line = 0;
    std::int8_t direction = 0;  // +1 / -1
    std::uint8_t run = 0;       // consecutive sequential misses seen
    std::uint64_t lru = 0;
    bool valid = false;
  };
  static constexpr std::size_t kStreamTableSize = 16;

  void emit(Addr line, PrefetchLevel level, std::vector<PrefetchRequest>& out);

  Addr last_l1_miss_line_ = ~Addr{0};
  PrefetchMask mask_;
  std::uint32_t degree_;
  std::uint32_t train_;
  std::array<IpEntry, kIpTableSize> ip_table_{};
  std::array<StreamEntry, kStreamTableSize> streams_{};
  std::uint64_t stream_clock_ = 0;
  std::uint64_t issued_ = 0;
};

}  // namespace coperf::sim
