// Shared DRAM channel: a work-conserving single server with a token
// bucket running at the machine's practical peak bandwidth.
//
// Every line fill and writeback passes through request(); when
// aggregate demand approaches the peak, requests queue behind
// `next_free_cycle` and observed latency inflates -- this emergent
// queueing delay (not a tuned parameter) is what turns high-bandwidth
// applications into the paper's "offenders".
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

#include "sim/addr.hpp"
#include "sim/config.hpp"
#include "sim/stats.hpp"

namespace coperf::sim {

class MemoryChannel {
 public:
  MemoryChannel(double bytes_per_cycle, std::uint32_t base_latency)
      : bytes_per_cycle_(bytes_per_cycle), base_latency_(base_latency) {}

  /// A read of `bytes` issued at local time `now` by application `app`.
  /// Returns the completion cycle (queue + transfer + DRAM latency).
  Cycle read(Cycle now, std::uint32_t bytes, AppId app) {
    const Cycle done = serve(now, bytes);
    ++stats_.reads;
    stats_.bytes_read += bytes;
    bytes_by_app_[app] += bytes;
    return done;
  }

  /// A writeback of `bytes`; consumes bandwidth but nobody waits on it.
  void write(Cycle now, std::uint32_t bytes, AppId app) {
    (void)serve(now, bytes);
    ++stats_.writes;
    stats_.bytes_written += bytes;
    bytes_by_app_[app] += bytes;
  }

  const MemoryStats& stats() const { return stats_; }
  std::uint64_t bytes_of(AppId app) const { return bytes_by_app_[app]; }

  /// Instantaneous queue depth expressed in cycles of backlog at `now`.
  Cycle backlog(Cycle now) const {
    const auto nf = static_cast<double>(now);
    return next_free_ > nf ? static_cast<Cycle>(next_free_ - nf) : 0;
  }

  double bytes_per_cycle() const { return bytes_per_cycle_; }
  std::uint32_t base_latency() const { return base_latency_; }

  void reset_stats() {
    stats_ = MemoryStats{};
    bytes_by_app_.fill(0);
  }

 private:
  Cycle serve(Cycle now, std::uint32_t bytes) {
    // Work-conserving single server; `next_free_` is kept fractional so
    // throughput converges to exactly the configured peak. The queue
    // cannot run away because each core's MSHR window bounds its
    // outstanding requests (natural backpressure).
    const double start = std::max(static_cast<double>(now), next_free_);
    const double service = static_cast<double>(bytes) / bytes_per_cycle_;
    next_free_ = start + service;
    const auto done = static_cast<Cycle>(next_free_) + base_latency_;
    stats_.queue_delay_cycles +=
        static_cast<Cycle>(start) > now ? static_cast<Cycle>(start) - now : 0;
    ++stats_.requests;
    return std::max(done, now + base_latency_ + 1);
  }

  double bytes_per_cycle_;
  std::uint32_t base_latency_;
  double next_free_ = 0.0;
  MemoryStats stats_;
  std::array<std::uint64_t, 256> bytes_by_app_{};
};

}  // namespace coperf::sim
