#include "sim/hierarchy.hpp"

#include <string>

namespace coperf::sim {

MemorySystem::MemorySystem(const MachineConfig& cfg)
    : cfg_(cfg),
      l3_(arena_, "L3", cfg.l3, /*hashed_index=*/true,
          /*track_private_copies=*/cfg.l3_inclusive),
      channel_(cfg.bytes_per_cycle(), cfg.dram_latency_cycles) {
  cfg_.validate();
  l1_.reserve(cfg.num_cores);
  l2_.reserve(cfg.num_cores);
  banks_.reserve(cfg.num_cores);
  for (unsigned c = 0; c < cfg.num_cores; ++c) {
    l1_.emplace_back(arena_, "L1D#" + std::to_string(c), cfg.l1d);
    l2_.emplace_back(arena_, "L2#" + std::to_string(c), cfg.l2);
    banks_.emplace_back(cfg.prefetch, cfg.streamer_degree, cfg.streamer_train);
  }
  scratch_.reserve(16);
  combine_.assign(std::size_t{cfg.num_cores} * kCombineWays, CombineEntry{});
  combine_pos_.assign(cfg.num_cores, 0);
  core_next_free_.assign(cfg.num_cores, 0.0);
  core_cycles_per_line_ =
      static_cast<double>(kLineBytes) / (cfg.per_core_bw_gbs / cfg.freq_ghz);
}

void MemorySystem::set_prefetch_mask(const PrefetchMask& m) {
  cfg_.prefetch = m;
  for (auto& b : banks_) b.set_mask(m);
}

}  // namespace coperf::sim
