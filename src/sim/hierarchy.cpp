#include "sim/hierarchy.hpp"

#include <bit>

namespace coperf::sim {

MemorySystem::MemorySystem(const MachineConfig& cfg)
    : cfg_(cfg),
      l3_(std::make_unique<Cache>("L3", cfg.l3, /*hashed_index=*/true,
                                  /*track_private_copies=*/cfg.l3_inclusive)),
      channel_(cfg.bytes_per_cycle(), cfg.dram_latency_cycles) {
  cfg_.validate();
  l1_.reserve(cfg.num_cores);
  l2_.reserve(cfg.num_cores);
  banks_.reserve(cfg.num_cores);
  for (unsigned c = 0; c < cfg.num_cores; ++c) {
    l1_.push_back(std::make_unique<Cache>("L1D#" + std::to_string(c), cfg.l1d));
    l2_.push_back(std::make_unique<Cache>("L2#" + std::to_string(c), cfg.l2));
    banks_.push_back(std::make_unique<PrefetcherBank>(
        cfg.prefetch, cfg.streamer_degree, cfg.streamer_train));
  }
  scratch_.reserve(16);
  core_next_free_.assign(cfg.num_cores, 0.0);
  core_cycles_per_line_ =
      static_cast<double>(kLineBytes) / (cfg.per_core_bw_gbs / cfg.freq_ghz);
}

Cycle MemorySystem::core_gate(unsigned core, Cycle now) {
  double& nf = core_next_free_[core];
  const double start = std::max(static_cast<double>(now), nf);
  nf = start + core_cycles_per_line_;
  return static_cast<Cycle>(start);
}

void MemorySystem::set_prefetch_mask(const PrefetchMask& m) {
  cfg_.prefetch = m;
  for (auto& b : banks_) b->set_mask(m);
}

void MemorySystem::handle_l3_eviction(const CacheResult& r, Cycle now) {
  if (!r.evicted) return;
  bool dirty = r.evicted_dirty;
  const AppId app = app_of(r.evicted_line << kLineBytesLog2);
  if (cfg_.l3_inclusive) {
    // Inclusion victims: the line must leave every private cache too.
    // Instead of broadcasting to all 2*num_cores private caches, visit
    // only the cores the L3 recorded as ever pulling this line
    // (note_private). The mask is sticky-conservative: a listed core
    // may have evicted the line long ago, and invalidate() rejects
    // those with its O(1) presence filters.
    std::uint64_t m = r.evicted_private_mask;
    if (cfg_.num_cores < 64) m &= (std::uint64_t{1} << cfg_.num_cores) - 1;
    while (m != 0) {
      const auto c = static_cast<unsigned>(std::countr_zero(m));
      m &= m - 1;
      if (l1_[c]->invalidate(r.evicted_line).dirty) dirty = true;
      if (l2_[c]->invalidate(r.evicted_line).dirty) dirty = true;
    }
  }
  if (dirty) channel_.write(now, kLineBytes, app);
}

Cycle MemorySystem::fetch_to_l3(unsigned core, Addr line, Cycle now,
                                bool from_prefetch) {
  const Cycle issue = core_gate(core, now);
  const Cycle done =
      channel_.read(issue, kLineBytes, app_of(line << kLineBytesLog2));
  const CacheResult fill = l3_->fill(line, /*dirty=*/false, from_prefetch);
  handle_l3_eviction(fill, now);
  return done;
}

void MemorySystem::fill_l2(unsigned core, Addr line, bool from_prefetch) {
  const CacheResult fill = l2_[core]->fill(line, /*dirty=*/false, from_prefetch);
  if (fill.evicted && fill.evicted_dirty) {
    // Write the dirty L2 victim back into the (inclusive) L3; if the L3
    // already dropped it, the traffic went to memory at that point.
    // mark_dirty reports presence itself, so no probe double-walk.
    (void)l3_->mark_dirty(fill.evicted_line);
  }
}

void MemorySystem::fill_l1(unsigned core, Addr line, bool dirty, bool from_prefetch) {
  const CacheResult fill = l1_[core]->fill(line, dirty, from_prefetch);
  if (fill.evicted && fill.evicted_dirty) {
    if (!l2_[core]->mark_dirty(fill.evicted_line))
      (void)l3_->mark_dirty(fill.evicted_line);
  }
}

void MemorySystem::run_prefetches_slow(unsigned core, Cycle now) {
  // The probe -> fill chains below are effectively single set walks:
  // a missing probe leaves a "known absent" memo in the cache, and the
  // matching fill consumes it instead of re-running the lookup.
  for (const PrefetchRequest& req : scratch_) {
    // Demand priority: prefetch only into an idle core gate, and back
    // off entirely when the socket is congested.
    if (core_backlog(core, now) > kPrefetchDropCoreBacklog) break;
    if (channel_.backlog(now) > kPrefetchDropBacklog) break;
    if (req.level == PrefetchLevel::L1) {
      if (l1_[core]->probe(req.line)) continue;
      if (!l2_[core]->probe(req.line)) {
        if (!l3_->probe(req.line)) (void)fetch_to_l3(core, req.line, now, true);
        l3_->note_private(core);
        fill_l2(core, req.line, true);
      }
      fill_l1(core, req.line, /*dirty=*/false, true);
    } else {
      if (l2_[core]->probe(req.line)) continue;
      if (!l3_->probe(req.line)) (void)fetch_to_l3(core, req.line, now, true);
      l3_->note_private(core);
      fill_l2(core, req.line, true);
    }
    ++last_prefetches_;
  }
  scratch_.clear();
}

AccessOutcome MemorySystem::demand_access(unsigned core, Addr addr,
                                          std::uint16_t pc, bool is_write,
                                          Cycle now, bool allocate) {
  AccessOutcome out;
  const Addr line = line_of(addr);
  scratch_.clear();

  Cache& l1 = *l1_[core];
  const CacheResult r1 = l1.access(line, is_write);
  if (allocate) banks_[core]->on_l1_access(addr, pc, !r1.hit, scratch_);
  if (r1.hit) {
    out.level = HitLevel::L1;
    out.latency = 0;
    run_prefetches(core, now);
    return out;
  }

  Cache& l2 = *l2_[core];
  const CacheResult r2 = l2.access(line, /*is_write=*/false);
  if (r2.hit) {
    out.level = HitLevel::L2;
    out.latency = cfg_.l2.latency_cycles;
    fill_l1(core, line, is_write, false);
    run_prefetches(core, now);
    return out;
  }

  if (allocate) banks_[core]->on_l2_miss(line, scratch_);
  out.l2_miss = true;

  const CacheResult r3 = l3_->access(line, /*is_write=*/false);
  if (r3.hit) {
    out.level = HitLevel::L3;
    out.latency = cfg_.l3.latency_cycles;
  } else {
    out.level = HitLevel::Mem;
    // L3 tag check precedes DRAM; the per-core bucket gates issue.
    const Cycle issued = core_gate(core, now + cfg_.l3.latency_cycles);
    const Cycle done = channel_.read(issued, kLineBytes, app_of(addr));
    out.latency = static_cast<std::uint32_t>(done - now);
    if (!allocate) return out;  // non-temporal: no displacement anywhere
    const CacheResult fill = l3_->fill(line, /*dirty=*/false, false);
    handle_l3_eviction(fill, now);
  }
  l3_->note_private(core);  // the line is about to enter this core's L1/L2
  fill_l2(core, line, false);
  fill_l1(core, line, is_write, false);
  run_prefetches(core, now);
  return out;
}

}  // namespace coperf::sim
