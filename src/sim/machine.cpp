#include "sim/machine.hpp"

#include <algorithm>

namespace coperf::sim {

Machine::Machine(const MachineConfig& cfg)
    : cfg_(cfg), mem_(cfg), core_to_app_(cfg.num_cores, -1) {
  cfg_.validate();
  cores_.reserve(cfg.num_cores);
  for (unsigned i = 0; i < cfg.num_cores; ++i) cores_.emplace_back(i, &mem_, this);
}

void Machine::add_app(AppBinding binding) {
  if (binding.cores.size() != binding.sources.size())
    throw std::invalid_argument{"AppBinding: cores/sources size mismatch"};
  if (binding.cores.empty())
    throw std::invalid_argument{"AppBinding: needs at least one thread"};
  if (binding.background && !binding.restart)
    throw std::invalid_argument{"background app needs a restart callback"};
  for (unsigned c : binding.cores) {
    if (c >= cfg_.num_cores)
      throw std::invalid_argument{"AppBinding: core id out of range"};
    if (core_to_app_[c] != -1)
      throw std::invalid_argument{"AppBinding: core " + std::to_string(c) +
                                  " already bound"};
    core_to_app_[c] = static_cast<int>(apps_.size());
  }
  for (std::size_t t = 0; t < binding.cores.size(); ++t)
    cores_[binding.cores[t]].attach(binding.sources[t], binding.id, global_);
  barriers_.push_back(BarrierGroup{
      static_cast<std::uint32_t>(binding.cores.size()), 0, 0, {}});
  bg_runs_.push_back(0);
  app_finish_.push_back(0);
  apps_.push_back(std::move(binding));
  rebuild_active_cores();
}

void Machine::rebuild_active_cores() {
  active_cores_.clear();
  for (unsigned c = 0; c < cfg_.num_cores; ++c) {
    const CoreState s = cores_[c].state();
    if (s == CoreState::Runnable || s == CoreState::Blocked)
      active_cores_.push_back(c);
  }
}

std::optional<Cycle> Machine::barrier_arrive(unsigned core, Cycle now) {
  const int app = core_to_app_[core];
  if (app < 0) throw std::logic_error{"barrier from unbound core"};
  BarrierGroup& g = barriers_[static_cast<std::size_t>(app)];
  g.max_arrival = std::max(g.max_arrival, now);
  ++g.arrived;
  if (g.arrived < g.parties) {
    g.waiting.push_back(core);
    return std::nullopt;
  }
  const Cycle release = g.max_arrival + barrier_overhead(g.parties);
  for (unsigned w : g.waiting) cores_[w].release_barrier(release);
  g.waiting.clear();
  g.arrived = 0;
  g.max_arrival = 0;
  return release;
}

bool Machine::foreground_done() const {
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    if (apps_[i].background) continue;
    for (unsigned c : apps_[i].cores)
      if (cores_[c].state() != CoreState::Done) return false;
  }
  return true;
}

void Machine::handle_background_restarts() {
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    AppBinding& a = apps_[i];
    if (!a.background) continue;
    const bool all_done = std::all_of(
        a.cores.begin(), a.cores.end(),
        [&](unsigned c) { return cores_[c].state() == CoreState::Done; });
    if (!all_done) continue;
    Cycle join = 0;
    for (unsigned c : a.cores) join = std::max(join, cores_[c].local_cycle());
    ++bg_runs_[i];
    app_finish_[i] = join;
    a.restart();
    for (std::size_t t = 0; t < a.cores.size(); ++t)
      cores_[a.cores[t]].attach(a.sources[t], a.id, join);
  }
}

void Machine::sample_bandwidth() {
  if (global_ < next_sample_) return;
  // Build the sample in place: the old local-then-push_back danced the
  // app_bytes vector through an extra allocate-and-copy per sample.
  BandwidthSample& s = samples_.emplace_back();
  s.cycle = global_;
  s.total_bytes = mem_.channel().stats().total_bytes();
  s.app_bytes.resize(apps_.size());
  for (std::size_t i = 0; i < apps_.size(); ++i)
    s.app_bytes[i] = mem_.channel().bytes_of(apps_[i].id);
  next_sample_ = global_ + sample_window_;
}

void Machine::check_progress() {
  // A barrier group can only be released by an arrival; if every core of
  // an app is Blocked or Done with arrivals outstanding, the workload
  // model has mismatched barrier counts across threads.
  bool any_runnable = false;
  for (const Core& c : cores_)
    if (c.state() == CoreState::Runnable) any_runnable = true;
  if (any_runnable) {
    stalled_quanta_ = 0;
    return;
  }
  if (++stalled_quanta_ > 2 && !foreground_done())
    throw std::runtime_error{
        "Machine: no runnable core but foreground unfinished -- "
        "barrier deadlock in a workload model (mismatched barrier counts?)"};
}

void Machine::step_quantum() {
  const Cycle qend = global_ + cfg_.quantum_cycles;
  // Visiting only Runnable/Blocked cores keeps finished (and never
  // bound) cores off the per-quantum path. Iteration stays in core-id
  // order, so a core released by a lower-numbered sibling still runs
  // within the same quantum, exactly like the full scan did.
  bool any_finished = false;
  for (unsigned c : active_cores_) {
    cores_[c].run_until(qend);
    any_finished |= cores_[c].state() == CoreState::Done;
  }
  global_ = qend;
  // A background app can only become all-Done in a quantum where some
  // core finished, so the restart scan is gated on that instead of
  // walking every app every quantum.
  if (any_finished) {
    handle_background_restarts();  // may re-arm Done background cores
    rebuild_active_cores();
  }
  sample_bandwidth();
  check_progress();
}

RunOutcome Machine::run() {
  if (apps_.empty()) throw std::logic_error{"Machine::run with no apps"};
  bool any_fg = false;
  for (const auto& a : apps_) any_fg |= !a.background;
  if (!any_fg) throw std::logic_error{"Machine::run needs a foreground app"};

  RunOutcome out;
  while (!foreground_done()) {
    if (global_ >= cycle_limit_) {
      out.hit_cycle_limit = true;
      break;
    }
    step_quantum();
  }
  // Close the PCM timeline so short runs still yield a bandwidth average.
  if (samples_.empty() || samples_.back().cycle < global_) {
    next_sample_ = global_;
    sample_bandwidth();
  }
  for (std::size_t i = 0; i < apps_.size(); ++i) {
    if (apps_[i].background) continue;
    Cycle fin = 0;
    for (unsigned c : apps_[i].cores)
      fin = std::max(fin, cores_[c].local_cycle());
    app_finish_[i] = fin;
    out.finish_cycle = std::max(out.finish_cycle, fin);
  }
  out.app_finish = app_finish_;
  out.bg_runs = bg_runs_;
  return out;
}

void Machine::run_for(Cycle cycles) {
  const Cycle target = global_ + cycles;
  while (global_ < target) step_quantum();
}

CoreStats Machine::app_stats(std::size_t i) const {
  CoreStats total;
  for (unsigned c : apps_[i].cores) total += cores_[c].snapshot();
  return total;
}

LatencyStats Machine::app_latency(std::size_t i) const {
  LatencyStats total;
  for (unsigned c : apps_[i].cores) total += cores_[c].latency();
  return total;
}

std::vector<std::pair<std::uint32_t, CoreStats>> Machine::app_region_stats(
    std::size_t i) {
  // Flat sorted merge (regions are few); region 0 is the implicit
  // "untagged" region and is reported like any other.
  std::vector<std::pair<std::uint32_t, CoreStats>> merged;
  for (unsigned c : apps_[i].cores) {
    // Blocked cores cannot flush; snapshot what they have accumulated.
    for (const auto& [region, stats] : cores_[c].region_stats())
      region_bucket(merged, region) += stats;
  }
  return merged;
}

}  // namespace coperf::sim
