#include "sim/cache.hpp"

#include <bit>
#include <stdexcept>
#include <utility>

namespace coperf::sim {

Cache::Cache(Arena& arena, std::string name, const CacheConfig& cfg,
             bool hashed_index, bool track_private_copies)
    : name_(std::move(name)),
      cfg_(cfg),
      hashed_index_(hashed_index),
      num_sets_(cfg.num_sets()),
      assoc_(cfg.assoc),
      track_private_(track_private_copies) {
  init_storage(arena);
}

Cache::Cache(std::string name, const CacheConfig& cfg, bool hashed_index,
             bool track_private_copies)
    : name_(std::move(name)),
      cfg_(cfg),
      hashed_index_(hashed_index),
      num_sets_(cfg.num_sets()),
      assoc_(cfg.assoc),
      own_arena_(std::make_unique<Arena>()),
      track_private_(track_private_copies) {
  init_storage(*own_arena_);
}

void Cache::init_storage(Arena& arena) {
  if (num_sets_ == 0 || (num_sets_ & (num_sets_ - 1)) != 0)
    throw std::invalid_argument{name_ + ": set count must be a power of two"};
  sets_log2_ = static_cast<std::uint64_t>(std::countr_zero(num_sets_));
  const std::uint64_t lines = num_sets_ * assoc_;
  tags_ = arena.alloc_array<Addr>(lines);
  lru_ = arena.alloc_array<std::uint64_t>(lines);
  flags_ = arena.alloc_array<std::uint8_t>(lines);
  set_app_mask_ = arena.alloc_array<std::uint8_t>(num_sets_);
  mru_idx_ = arena.alloc_array<std::uint32_t>(num_sets_);
  set_epoch_ = arena.alloc_array<std::uint32_t>(num_sets_);
  if (track_private_) private_mask_ = arena.alloc_array<std::uint64_t>(lines);
  // ~4 filter buckets per resident line keeps the false-positive rate
  // (cold lookups that still scan) in the low percent range while the
  // filter itself stays host-cache resident.
  std::uint64_t buckets = std::bit_ceil(lines * 4);
  buckets = std::min<std::uint64_t>(std::max<std::uint64_t>(buckets, 1024),
                                    64 * 1024);
  presence_ = arena.alloc_array<std::uint8_t>(buckets);
  presence_shift_ = 64u - static_cast<unsigned>(std::countr_zero(buckets));
}

Cache::InvalidateResult Cache::invalidate_slow(Addr line) {
  InvalidateResult r;
  const std::uint64_t set = set_index(line);
  const std::uint64_t base = set * assoc_;
  const std::uint32_t w = find_way(set, base, line);
  if (w == kNoWay) return r;
  const std::uint64_t i = base + w;
  r.present = true;
  r.dirty = (flags_[i] & kDirty) != 0;
  flags_[i] = 0;
  --app_lines_[app_of_line(line)];
  --valid_lines_;
  presence_remove(line);
  ++set_epoch_[set];  // a line departed: combining proofs expire
  if (track_private_) private_mask_[i] = 0;
  ++stats_.back_invalidations;
  return r;
}

std::uint64_t Cache::invalidate_app(AppId app) {
  std::uint64_t remaining = app_lines_[app];
  if (remaining == 0) return 0;
  const std::uint8_t bit = app_bit(app);
  std::uint64_t n = 0;
  for (std::uint64_t s = 0; s < num_sets_ && remaining > 0; ++s) {
    if ((set_app_mask_[s] & bit) == 0) continue;  // app never filled here
    const std::uint64_t base = s * assoc_;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
      const std::uint64_t i = base + w;
      if ((flags_[i] & kValid) != 0 && app_of_line(tags_[i]) == app) {
        flags_[i] = 0;
        ++n;
        --remaining;
        --valid_lines_;
        presence_remove(tags_[i]);
        ++set_epoch_[s];
        if (track_private_) private_mask_[i] = 0;
      }
    }
  }
  app_lines_[app] = 0;
  return n;
}

CacheResult Cache::access(Addr line, bool is_write) {
  // Member pointers are hoisted into locals throughout the hot methods:
  // flags_/presence_ are byte arrays, and a byte store may alias the
  // member pointers themselves, so without the locals every store forces
  // the compiler to reload them from `this`.
  std::uint8_t* const flags = flags_;
  Addr* const tags = tags_;
  CacheResult r;
  const std::uint64_t set = set_index(line);
  // MRU-first: repeat touches dominate demand traffic, and the MRU
  // check is one compare -- cheaper than the presence-filter hash, so
  // it runs before the filter (the filter only pays off on misses;
  // both checks are side-effect-free, so the order is unobservable).
  const std::uint64_t m = mru_idx_[set];
  std::uint64_t i;
  if ((flags[m] & kValid) != 0 && tags[m] == line) {
    i = m;
  } else if (!definitely_absent(line)) {
    const std::uint64_t base = set * assoc_;
    std::uint32_t w = kNoWay;
    for (std::uint32_t k = 0; k < assoc_; ++k) {
      if ((flags[base + k] & kValid) != 0 && tags[base + k] == line) {
        w = k;
        break;
      }
    }
    if (w == kNoWay) {
      memo_line_ = line;  // the upcoming fill may skip its duplicate lookup
      memo_valid_ = true;
      if (is_write)
        ++stats_.store_misses;
      else
        ++stats_.demand_misses;
      return r;
    }
    i = base + w;
    mru_idx_[set] = static_cast<std::uint32_t>(i);
  } else {
    memo_line_ = line;
    memo_valid_ = true;
    if (is_write)
      ++stats_.store_misses;
    else
      ++stats_.demand_misses;
    return r;
  }
  last_touch_ = i;
  r.hit = true;
  r.was_prefetched = (flags[i] & kPrefetched) != 0;
  if (r.was_prefetched) {
    ++stats_.prefetch_useful;
    flags[i] &= static_cast<std::uint8_t>(~kPrefetched);  // first touch only
  }
  lru_[i] = ++lru_clock_;
  if (is_write) {
    flags[i] |= kDirty;
    ++stats_.store_hits;
  } else {
    ++stats_.demand_hits;
  }
  return r;
}

bool Cache::probe(Addr line) const {
  const std::uint8_t* const flags = flags_;
  const Addr* const tags = tags_;
  const std::uint64_t set = set_index(line);
  const std::uint64_t m = mru_idx_[set];  // MRU-first, as in access()
  if ((flags[m] & kValid) != 0 && tags[m] == line) {
    last_touch_ = m;
    return true;
  }
  if (!definitely_absent(line)) {
    const std::uint64_t base = set * assoc_;
    const std::uint32_t w = find_way(set, base, line);
    if (w != kNoWay) {
      last_touch_ = base + w;
      return true;
    }
  }
  memo_line_ = line;
  memo_valid_ = true;
  return false;
}

CacheResult Cache::fill(Addr line, bool dirty, bool from_prefetch) {
  const std::uint8_t* const flags = flags_;
  const Addr* const tags = tags_;
  const std::uint64_t* const lru = lru_;
  const std::uint64_t set = set_index(line);
  const std::uint64_t base = set * assoc_;
  if (memo_valid_ && memo_line_ == line) {
    // The caller just observed this line missing (access/probe), and
    // nothing can have inserted it since: skip the duplicate lookup.
    memo_valid_ = false;
    return install(set, pick_victim(base), line, dirty, from_prefetch);
  }
  // Single merged pass: duplicate check and victim selection together.
  std::uint32_t first_invalid = kNoWay;
  std::uint32_t lru_way = 0;
  std::uint64_t best_lru = ~std::uint64_t{0};
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    const std::uint64_t i = base + w;
    if ((flags[i] & kValid) == 0) {
      if (first_invalid == kNoWay) first_invalid = w;
      continue;
    }
    if (tags[i] == line) {
      // Duplicate fill (e.g. prefetch raced a demand fill): refresh state.
      CacheResult r;
      if (dirty) flags_[i] |= kDirty;
      lru_[i] = ++lru_clock_;
      last_touch_ = i;
      return r;
    }
    if (lru[i] < best_lru) {
      best_lru = lru[i];
      lru_way = w;
    }
  }
  const std::uint32_t victim =
      first_invalid != kNoWay ? first_invalid : lru_way;
  return install(set, victim, line, dirty, from_prefetch);
}

bool Cache::mark_dirty(Addr line) {
  const std::uint8_t* const flags = flags_;
  const Addr* const tags = tags_;
  const std::uint64_t set = set_index(line);
  const std::uint64_t m = mru_idx_[set];  // MRU-first, as in access()
  if ((flags[m] & kValid) != 0 && tags[m] == line) {
    flags_[m] |= kDirty;
    return true;
  }
  if (!definitely_absent(line)) {
    const std::uint64_t base = set * assoc_;
    const std::uint32_t w = find_way(set, base, line);
    if (w != kNoWay) {
      flags_[base + w] |= kDirty;
      return true;
    }
  }
  memo_line_ = line;
  memo_valid_ = true;
  return false;
}

std::uint32_t Cache::find_way(std::uint64_t set, std::uint64_t base,
                       Addr line) const {
  const std::uint64_t m = mru_idx_[set];
  if ((flags_[m] & kValid) != 0 && tags_[m] == line)
    return static_cast<std::uint32_t>(m - base);
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if ((flags_[base + w] & kValid) != 0 && tags_[base + w] == line) {
      mru_idx_[set] = static_cast<std::uint32_t>(base + w);
      return w;
    }
  }
  return kNoWay;
}

std::uint32_t Cache::pick_victim(std::uint64_t base) const {
  // First invalid way wins; otherwise the smallest LRU stamp (stamps
  // are unique, so ties cannot occur).
  std::uint32_t victim = 0;
  std::uint64_t best_lru = ~std::uint64_t{0};
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if ((flags_[base + w] & kValid) == 0) return w;
    if (lru_[base + w] < best_lru) {
      best_lru = lru_[base + w];
      victim = w;
    }
  }
  return victim;
}

CacheResult Cache::install(std::uint64_t set, std::uint32_t way, Addr line,
                    bool dirty, bool from_prefetch) {
  std::uint8_t* const flags = flags_;
  Addr* const tags = tags_;
  CacheResult r;
  const std::uint64_t i = set * assoc_ + way;
  const std::uint8_t old_flags = flags[i];
  if ((old_flags & kValid) != 0) {
    const Addr old_tag = tags[i];
    r.evicted = true;
    r.evicted_line = old_tag;
    r.evicted_dirty = (old_flags & kDirty) != 0;
    if (r.evicted_dirty) ++stats_.writebacks;
    --app_lines_[app_of_line(old_tag)];
    --valid_lines_;
    presence_remove(old_tag);
    ++set_epoch_[set];  // a line departed: combining proofs expire
  }
  if (track_private_) {
    if (r.evicted) r.evicted_private_mask = private_mask_[i];
    if (private_mask_[i] != 0) private_mask_[i] = 0;  // fresh line: no copies
  }
  last_touch_ = i;
  mru_idx_[set] = static_cast<std::uint32_t>(i);
  tags[i] = line;
  flags[i] = static_cast<std::uint8_t>(kValid | (dirty ? kDirty : 0) |
                                       (from_prefetch ? kPrefetched : 0));
  lru_[i] = ++lru_clock_;
  const AppId app = app_of_line(line);
  ++app_lines_[app];
  ++valid_lines_;
  presence_add(line);
  const std::uint8_t bit = app_bit(app);
  if ((set_app_mask_[set] & bit) == 0) set_app_mask_[set] |= bit;
  if (from_prefetch) ++stats_.prefetch_fills;
  if (memo_valid_ && memo_line_ == line) memo_valid_ = false;
  return r;
}

std::uint64_t Cache::set_index(Addr line) const {
  const std::uint64_t mask = num_sets_ - 1;
  if (!hashed_index_) return line & mask;
  // Folded-XOR set index: spreads high address bits (including the
  // AppId field) into the index so distinct address spaces interleave
  // across LLC sets instead of aliasing into a narrow band.
  Addr x = line;
  x ^= line >> sets_log2_;
  x ^= line >> (2 * sets_log2_);
  x ^= line >> (3 * sets_log2_);
  return x & mask;
}

}  // namespace coperf::sim
