#include "sim/cache.hpp"

#include <bit>
#include <stdexcept>

namespace coperf::sim {

namespace {
/// Folded-XOR set index: spreads high address bits (including the AppId
/// field) into the index so distinct address spaces interleave across
/// LLC sets instead of aliasing into a narrow band.
std::uint64_t fold_index(Addr line, std::uint64_t sets_log2, std::uint64_t mask) {
  Addr x = line;
  x ^= line >> sets_log2;
  x ^= line >> (2 * sets_log2);
  x ^= line >> (3 * sets_log2);
  return x & mask;
}
}  // namespace

Cache::Cache(std::string name, const CacheConfig& cfg, bool hashed_index)
    : name_(std::move(name)),
      cfg_(cfg),
      hashed_index_(hashed_index),
      num_sets_(cfg.num_sets()),
      assoc_(cfg.assoc) {
  if (num_sets_ == 0 || (num_sets_ & (num_sets_ - 1)) != 0)
    throw std::invalid_argument{name_ + ": set count must be a power of two"};
  sets_log2_ = static_cast<std::uint64_t>(std::countr_zero(num_sets_));
  ways_.resize(num_sets_ * assoc_);
}

std::uint64_t Cache::set_index(Addr line) const {
  const std::uint64_t mask = num_sets_ - 1;
  return hashed_index_ ? fold_index(line, sets_log2_, mask) : (line & mask);
}

Cache::Way* Cache::find(Addr line) {
  const std::uint64_t base = set_index(line) * assoc_;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    Way& way = ways_[base + w];
    if (way.valid && way.tag == line) return &way;
  }
  return nullptr;
}

const Cache::Way* Cache::find(Addr line) const {
  const std::uint64_t base = set_index(line) * assoc_;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    const Way& way = ways_[base + w];
    if (way.valid && way.tag == line) return &way;
  }
  return nullptr;
}

CacheResult Cache::access(Addr line, bool is_write) {
  CacheResult r;
  if (Way* way = find(line)) {
    r.hit = true;
    r.was_prefetched = way->prefetched;
    if (way->prefetched) {
      ++stats_.prefetch_useful;
      way->prefetched = false;  // count first demand touch only
    }
    way->lru = ++lru_clock_;
    if (is_write) {
      way->dirty = true;
      ++stats_.store_hits;
    } else {
      ++stats_.demand_hits;
    }
    return r;
  }
  if (is_write)
    ++stats_.store_misses;
  else
    ++stats_.demand_misses;
  return r;
}

bool Cache::probe(Addr line) const { return find(line) != nullptr; }

CacheResult Cache::fill(Addr line, bool dirty, bool from_prefetch) {
  CacheResult r;
  if (Way* existing = find(line)) {
    // Duplicate fill (e.g. prefetch raced a demand fill): refresh state.
    existing->dirty = existing->dirty || dirty;
    existing->lru = ++lru_clock_;
    return r;
  }
  const std::uint64_t base = set_index(line) * assoc_;
  Way* victim = nullptr;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    Way& way = ways_[base + w];
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (victim == nullptr || way.lru < victim->lru) victim = &way;
  }
  if (victim->valid) {
    r.evicted = true;
    r.evicted_line = victim->tag;
    r.evicted_dirty = victim->dirty;
    if (victim->dirty) ++stats_.writebacks;
  }
  victim->tag = line;
  victim->valid = true;
  victim->dirty = dirty;
  victim->prefetched = from_prefetch;
  victim->lru = ++lru_clock_;
  if (from_prefetch) ++stats_.prefetch_fills;
  return r;
}

void Cache::mark_dirty(Addr line) {
  if (Way* way = find(line)) way->dirty = true;
}

Cache::InvalidateResult Cache::invalidate(Addr line) {
  InvalidateResult r;
  if (Way* way = find(line)) {
    r.present = true;
    r.dirty = way->dirty;
    way->valid = false;
    way->dirty = false;
    way->prefetched = false;
    ++stats_.back_invalidations;
  }
  return r;
}

std::uint64_t Cache::invalidate_app(AppId app) {
  std::uint64_t n = 0;
  for (Way& way : ways_) {
    if (way.valid && app_of(way.tag << kLineBytesLog2) == app) {
      way.valid = false;
      way.dirty = false;
      way.prefetched = false;
      ++n;
    }
  }
  return n;
}

std::uint64_t Cache::occupancy() const {
  std::uint64_t n = 0;
  for (const Way& way : ways_)
    if (way.valid) ++n;
  return n;
}

std::uint64_t Cache::occupancy_of(AppId app) const {
  std::uint64_t n = 0;
  for (const Way& way : ways_)
    if (way.valid && app_of(way.tag << kLineBytesLog2) == app) ++n;
  return n;
}

}  // namespace coperf::sim
