// Hardware-event counters gathered by the simulator.
//
// These are the raw events from which every paper metric is derived:
// CPI, LLC MPKI, L2_PCP (fraction of cycles with an L2 miss pending)
// and LL (average shared-resource load latency), per Section VI-A.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/quantile.hpp"

namespace coperf::sim {

/// Counters for one cache level (kept per cache instance).
struct CacheStats {
  std::uint64_t demand_hits = 0;
  std::uint64_t demand_misses = 0;
  std::uint64_t store_hits = 0;
  std::uint64_t store_misses = 0;
  std::uint64_t prefetch_fills = 0;
  std::uint64_t prefetch_useful = 0;  ///< prefetched lines later demand-hit
  std::uint64_t writebacks = 0;
  std::uint64_t back_invalidations = 0;  ///< inclusion victims forced out

  std::uint64_t demand_accesses() const { return demand_hits + demand_misses; }
  double miss_rate() const {
    const auto a = demand_accesses();
    return a == 0 ? 0.0 : static_cast<double>(demand_misses) / static_cast<double>(a);
  }
  CacheStats& operator+=(const CacheStats& o) {
    demand_hits += o.demand_hits;
    demand_misses += o.demand_misses;
    store_hits += o.store_hits;
    store_misses += o.store_misses;
    prefetch_fills += o.prefetch_fills;
    prefetch_useful += o.prefetch_useful;
    writebacks += o.writebacks;
    back_invalidations += o.back_invalidations;
    return *this;
  }
};

/// Per-core pipeline + memory-system counters.
struct CoreStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;  ///< compute uops + memory ops
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;

  std::uint64_t l1d_hits = 0;
  std::uint64_t l1d_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t l3_hits = 0;
  std::uint64_t l3_misses = 0;

  std::uint64_t bytes_from_mem = 0;   ///< demand+prefetch line fills
  std::uint64_t bytes_written_back = 0;

  std::uint64_t stall_cycles_mem = 0;     ///< cycles the pipeline was blocked on memory
  std::uint64_t pending_l2_cycles = 0;    ///< cycles with >=1 L2 miss outstanding
  std::uint64_t barrier_wait_cycles = 0;  ///< cycles parked at synchronization

  std::uint64_t prefetches_issued = 0;

  double cpi() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(cycles) / static_cast<double>(instructions);
  }
  double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) / static_cast<double>(cycles);
  }
  /// LLC misses per kilo-instruction.
  double llc_mpki() const {
    return instructions == 0
               ? 0.0
               : 1000.0 * static_cast<double>(l3_misses) / static_cast<double>(instructions);
  }
  /// L2 misses per kilo-instruction.
  double l2_mpki() const {
    return instructions == 0
               ? 0.0
               : 1000.0 * static_cast<double>(l2_misses) / static_cast<double>(instructions);
  }
  /// L2 Pending Cycle Percent: fraction of cycles with an L2 miss in flight.
  double l2_pcp() const {
    return cycles == 0
               ? 0.0
               : static_cast<double>(pending_l2_cycles) / static_cast<double>(cycles);
  }
  /// The paper's LL metric (Section VI-A): CPI * L2_PCP / (L2 misses per
  /// instruction) -- an estimate of the average latency paid per L2 miss
  /// at the shared LLC/memory level.
  double ll() const {
    if (instructions == 0 || l2_misses == 0) return 0.0;
    const double l2_mpi =
        static_cast<double>(l2_misses) / static_cast<double>(instructions);
    return cpi() * l2_pcp() / l2_mpi;
  }

  CoreStats& operator+=(const CoreStats& o) {
    cycles += o.cycles;
    instructions += o.instructions;
    loads += o.loads;
    stores += o.stores;
    l1d_hits += o.l1d_hits;
    l1d_misses += o.l1d_misses;
    l2_hits += o.l2_hits;
    l2_misses += o.l2_misses;
    l3_hits += o.l3_hits;
    l3_misses += o.l3_misses;
    bytes_from_mem += o.bytes_from_mem;
    bytes_written_back += o.bytes_written_back;
    stall_cycles_mem += o.stall_cycles_mem;
    pending_l2_cycles += o.pending_l2_cycles;
    barrier_wait_cycles += o.barrier_wait_cycles;
    prefetches_issued += o.prefetches_issued;
    return *this;
  }
};

/// Per-request latency distribution in simulated cycles, recorded at
/// OpKind::Request boundaries. Same 65-bucket log2 layout as
/// obs::Histogram (obs/quantile.hpp holds the shared math), but plain
/// integers: this is simulation state, deterministic and mergeable
/// across cores with operator+=. Batch workloads emit no request
/// marks, so their LatencyStats stay empty (count == 0).
struct LatencyStats {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  ///< total request cycles
  std::array<std::uint64_t, obs::kQuantileBuckets> buckets{};

  void record(std::uint64_t cycles) {
    buckets[obs::log_bucket(cycles)] += 1;
    count += 1;
    sum += cycles;
  }

  bool empty() const { return count == 0; }
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Interpolated q-quantile in cycles (0.0 when empty).
  double quantile(double q) const {
    return obs::bucket_quantile(buckets, count, q);
  }

  LatencyStats& operator+=(const LatencyStats& o) {
    count += o.count;
    sum += o.sum;
    for (std::size_t b = 0; b < buckets.size(); ++b) buckets[b] += o.buckets[b];
    return *this;
  }
  bool operator==(const LatencyStats&) const = default;
};

/// Finds or inserts the bucket for `region` in a flat (region id,
/// stats) vector kept sorted ascending by id -- the storage both
/// Core's per-region accounting and Machine's cross-core merge use.
inline CoreStats& region_bucket(
    std::vector<std::pair<std::uint32_t, CoreStats>>& v,
    std::uint32_t region) {
  auto it = std::lower_bound(
      v.begin(), v.end(), region,
      [](const auto& entry, std::uint32_t id) { return entry.first < id; });
  if (it == v.end() || it->first != region)
    it = v.insert(it, {region, CoreStats{}});
  return it->second;
}

/// Memory-channel counters (shared resource).
struct MemoryStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t queue_delay_cycles = 0;  ///< total cycles requests waited for the channel
  std::uint64_t requests = 0;

  std::uint64_t total_bytes() const { return bytes_read + bytes_written; }
  double avg_queue_delay() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(queue_delay_cycles) / static_cast<double>(requests);
  }
};

}  // namespace coperf::sim
