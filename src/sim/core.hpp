// In-order core timing model with an MLP-limited outstanding-miss
// window.
//
// The model separates three latency regimes:
//   - L1 hits: folded into the workload's base CPI (modern pipelines
//     fully hide them);
//   - L2 hits: short, mostly overlapped unless the access is
//     chain-dependent;
//   - L2 misses (LLC or DRAM): tracked in a small window of outstanding
//     completions. Independent misses overlap up to min(machine MSHRs,
//     workload MLP); chain-dependent misses serialize. This is the
//     mechanism that makes irregular, latency-bound code the paper's
//     co-running "victims" while streaming code tolerates latency and
//     hogs bandwidth instead.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "sim/addr.hpp"
#include "sim/hierarchy.hpp"
#include "sim/op.hpp"
#include "sim/stats.hpp"

namespace coperf::sim {

/// Synchronization callback surface the Machine provides to cores.
class SyncEnv {
 public:
  virtual ~SyncEnv() = default;
  /// Thread on `core` arrived at its application barrier at `now`.
  /// Returns the release cycle if this arrival released the barrier
  /// (the implementation unblocks all sibling cores itself), or nullopt
  /// if the core must block and wait for release_barrier().
  virtual std::optional<Cycle> barrier_arrive(unsigned core, Cycle now) = 0;
};

enum class CoreState : std::uint8_t {
  Idle,     ///< no thread bound
  Runnable, ///< executing trace ops
  Blocked,  ///< parked at a barrier
  Done,     ///< bound thread exhausted its trace
};

class Core {
 public:
  Core(unsigned id, MemorySystem* mem, SyncEnv* sync)
      : id_(id), mem_(mem), sync_(sync) {}

  /// Binds a thread (trace source) to this core, starting at `at`.
  void attach(OpSource* src, AppId app, Cycle at);
  void detach();

  /// Advances local time until >= `until` or the core blocks/finishes.
  void run_until(Cycle until);

  /// Called by the Machine when a sibling released the barrier this
  /// core is parked at.
  void release_barrier(Cycle release_time);

  CoreState state() const { return state_; }
  AppId app() const { return app_; }
  unsigned id() const { return id_; }
  Cycle local_cycle() const { return local_; }

  /// Cumulative counters with `cycles` filled in as elapsed local time.
  CoreStats snapshot() const;
  /// Per-region counter deltas accumulated so far (flushes current
  /// region). Sorted ascending by region id; flat storage keeps the
  /// per-region bookkeeping off the allocator on the hot path.
  const std::vector<std::pair<std::uint32_t, CoreStats>>& region_stats();

  /// Per-request latencies recorded at OpKind::Request boundaries
  /// (empty for batch workloads, which never emit request marks).
  const LatencyStats& latency() const { return latency_; }

  /// Forces local time forward (app restart joins, test setup).
  void advance_to(Cycle t) { local_ = std::max(local_, t); }

 private:
  void exec(const Op& op);
  void do_compute(std::uint32_t uops);
  void do_mem(const Op& op, bool is_write);
  void do_region(std::uint32_t region);
  void do_request(std::uint32_t count);
  void flush_region();
  void pending_add(Cycle start, Cycle end);
  /// Retires completed misses; stalls on MSHR or ROB pressure.
  void drain_window();

  static constexpr std::size_t kBufCap = 512;
  static constexpr std::uint32_t kMaxWindow = 16;
  static constexpr std::uint32_t kL2HitOverlapCost = 2;
  static constexpr std::uint32_t kIssueCost = 1;

  unsigned id_;
  MemorySystem* mem_;
  SyncEnv* sync_;

  OpSource* src_ = nullptr;
  AppId app_ = 0;
  CoreState state_ = CoreState::Idle;
  ThreadAttr attr_{};
  std::uint32_t window_ = 8;  ///< min(machine MSHR, thread MLP)

  Cycle local_ = 0;
  Cycle start_ = 0;
  bool ever_attached_ = false;
  double frac_cycles_ = 0.0;  ///< sub-cycle accumulator for fractional CPI

  std::array<Op, kBufCap> buf_{};
  /// Current op window: either a zero-copy view owned by the source or
  /// buf_.data() after a copying refill.
  const Op* ops_ = nullptr;
  std::size_t buf_pos_ = 0;
  std::size_t buf_len_ = 0;

  /// In-flight misses in issue order (in-order retirement model).
  struct Miss {
    Cycle completion = 0;
    std::uint64_t instr_at_issue = 0;
  };
  std::array<Miss, kMaxWindow> window_ring_{};
  std::uint32_t ring_head_ = 0;  ///< oldest outstanding
  std::uint32_t ring_size_ = 0;
  std::uint32_t rob_ = 168;
  Cycle pending_watermark_ = 0;

  CoreStats stats_;
  LatencyStats latency_;
  /// End of the previous request (or the attach point): where the next
  /// request's latency measurement starts.
  Cycle last_request_mark_ = 0;
  std::uint32_t cur_region_ = 0;
  Cycle region_start_cycle_ = 0;
  CoreStats region_snapshot_;
  /// Flat (region id, accumulated stats) pairs, sorted by id.
  std::vector<std::pair<std::uint32_t, CoreStats>> region_stats_;
};

}  // namespace coperf::sim
