#include "sim/prefetcher.hpp"

namespace coperf::sim {

namespace {
constexpr unsigned kPageBytesLog2 = 12;  // 4 KiB prefetch training granule
constexpr Addr page_of_line(Addr line) {
  return line >> (kPageBytesLog2 - kLineBytesLog2);
}
}  // namespace

PrefetcherBank::PrefetcherBank(const PrefetchMask& mask,
                               std::uint32_t streamer_degree,
                               std::uint32_t streamer_train)
    : mask_(mask), degree_(streamer_degree), train_(streamer_train) {}

void PrefetcherBank::reset() {
  ip_table_.fill(IpEntry{});
  streams_.fill(StreamEntry{});
  stream_clock_ = 0;
  issued_ = 0;
  last_l1_miss_line_ = ~Addr{0};
}

void PrefetcherBank::emit(Addr line, PrefetchLevel level,
                          std::vector<PrefetchRequest>& out) {
  out.push_back(PrefetchRequest{line, level});
  ++issued_;
}

void PrefetcherBank::on_l1_access(Addr addr, std::uint16_t pc, bool miss,
                                  std::vector<PrefetchRequest>& out) {
  const Addr line = line_of(addr);

  if (mask_.l1_ip_stride && pc != 0) {
    IpEntry& e = ip_table_[pc % kIpTableSize];
    if (e.valid && e.pc == pc) {
      const std::int64_t stride =
          static_cast<std::int64_t>(addr) - static_cast<std::int64_t>(e.last_addr);
      if (stride != 0 && stride == e.stride) {
        if (e.confidence < kIpConfidenceThreshold) ++e.confidence;
      } else {
        e.stride = stride;
        e.confidence = 0;
      }
      e.last_addr = addr;
      // Real DCU IP prefetchers only track short strides; large hops
      // (e.g. Bandit's set-conflict pattern) must not be predictable.
      constexpr std::int64_t kMaxStride = 2048;
      if (e.confidence >= kIpConfidenceThreshold && e.stride != 0 &&
          e.stride >= -kMaxStride && e.stride <= kMaxStride) {
        // Fetch the line two strides ahead (prefetch distance 2).
        const Addr target = static_cast<Addr>(
            static_cast<std::int64_t>(addr) + 2 * e.stride);
        if (line_of(target) != line) emit(line_of(target), PrefetchLevel::L1, out);
      }
    } else {
      e = IpEntry{pc, addr, 0, 0, true};
    }
  }

  if (miss) {
    // The DCU next-line prefetcher has an ascending-pattern filter:
    // random misses (graph gathers, hash probes) must not trigger it.
    const bool ascending =
        last_l1_miss_line_ != ~Addr{0} && line >= last_l1_miss_line_ &&
        line - last_l1_miss_line_ <= 2;
    if (mask_.l1_next_line && ascending)
      emit(line + 1, PrefetchLevel::L1, out);
    last_l1_miss_line_ = line;
  }
}

void PrefetcherBank::on_l2_miss(Addr line, std::vector<PrefetchRequest>& out) {
  if (mask_.l2_adjacent) {
    // Fetch the buddy line of the 128-byte aligned pair.
    emit(line ^ 1, PrefetchLevel::L2, out);
  }

  if (!mask_.l2_stream) return;

  const Addr page = page_of_line(line);
  StreamEntry* entry = nullptr;
  StreamEntry* victim = &streams_.front();
  for (StreamEntry& s : streams_) {
    if (s.valid && s.page == page) {
      entry = &s;
      break;
    }
    // Prefer an invalid slot; otherwise evict the least recently used.
    if (victim->valid && (!s.valid || s.lru < victim->lru)) victim = &s;
  }
  ++stream_clock_;
  if (entry == nullptr) {
    *victim = StreamEntry{page, line, 0, 1, stream_clock_, true};
    return;
  }
  entry->lru = stream_clock_;
  const std::int64_t delta =
      static_cast<std::int64_t>(line) - static_cast<std::int64_t>(entry->last_line);
  if (delta == 1 || delta == -1) {
    const auto dir = static_cast<std::int8_t>(delta);
    entry->run = (entry->direction == dir) ? static_cast<std::uint8_t>(entry->run + 1)
                                           : std::uint8_t{1};
    entry->direction = dir;
    if (entry->run >= train_) {
      for (std::uint32_t i = 1; i <= degree_; ++i) {
        // Keep the arithmetic signed: dir(-1) * unsigned would wrap.
        const std::int64_t target =
            static_cast<std::int64_t>(line) +
            static_cast<std::int64_t>(dir) * static_cast<std::int64_t>(i + 1);
        if (target >= 0 && page_of_line(static_cast<Addr>(target)) == page)
          emit(static_cast<Addr>(target), PrefetchLevel::L2, out);
      }
    }
  } else {
    entry->run = 1;
    entry->direction = 0;
  }
  entry->last_line = line;
}

}  // namespace coperf::sim
