#include "sim/prefetcher.hpp"

namespace coperf::sim {

void PrefetcherBank::reset() {
  ip_table_.fill(IpEntry{});
  streams_.fill(StreamEntry{});
  stream_clock_ = 0;
  issued_ = 0;
  last_l1_miss_line_ = ~Addr{0};
}

}  // namespace coperf::sim
