// coperf public API.
//
// A Session bundles a machine configuration and an input size class and
// exposes the paper's complete methodology:
//
//   coperf::Session s;                           // scaled machine, Small inputs
//   auto solo  = s.run_solo("G-PR");             // Section IV sole-run
//   auto pair  = s.run_pair("G-CC", "fotonik3d"); // Section V co-run
//   auto trio  = s.run_group(harness::GroupSpec{{ // N-way co-run group
//       {"G-CC", 2}, {"CIFAR", 2}, {"Stream", 4, {}, true}}});
//   auto scal  = s.scalability("ATIS");          // Fig. 2 sweep
//   auto pf    = s.prefetch_sensitivity("IRSmk"); // Fig. 4 experiment
//   auto matrix = s.corun_matrix();              // Fig. 5, all 625 pairs
//
// For experiment *sets*, build a plan instead of looping blocking
// calls: plan() collects specs (solos, groups, sweeps, matrices),
// dedupes the trials they expand to -- structurally and against the
// content-addressed run cache -- executes the residue in parallel,
// and returns results addressable by spec:
//
//   auto plan = s.plan();
//   harness::MatrixSpec fig5{{"G-PR", "CIFAR", "Stream"}, 3};
//   plan.add_matrix(fig5);
//   plan.add_scalability({"ATIS", 8});
//   auto results = plan.execute();
//   auto m = results.matrix(fig5);
//
// Every result is deterministic for a given seed; "three repeated
// runs" are three seeds with the median reported, like the paper.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "harness/classify.hpp"
#include "harness/group.hpp"
#include "harness/matrix.hpp"
#include "harness/plan.hpp"
#include "harness/prefetch_study.hpp"
#include "harness/runner.hpp"
#include "harness/scalability.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/config.hpp"
#include "wl/registry.hpp"
#include "wl/workload.hpp"

namespace coperf {

class Session {
 public:
  /// Defaults reproduce the paper's experiment configuration on the
  /// scaled machine (see DESIGN.md "Scaled-machine mode").
  explicit Session(sim::MachineConfig machine = sim::MachineConfig::scaled(),
                   wl::SizeClass size = wl::SizeClass::Small);

  /// Workload names, paper order (Fig. 5 axes). Excludes mini-benchmarks.
  std::vector<std::string> applications() const;
  /// Including Bandit and Stream.
  std::vector<std::string> all_workloads() const;

  harness::RunResult run_solo(std::string_view workload,
                              unsigned threads = 4) const;
  harness::CorunResult run_pair(std::string_view fg, std::string_view bg,
                                unsigned threads = 4) const;
  /// N workloads on disjoint core ranges (harness/group.hpp); pairs
  /// are the 2-member special case.
  harness::GroupResult run_group(const harness::GroupSpec& spec) const;

  /// An empty plan seeded with this session's options; add specs, then
  /// execute() once.
  harness::ExperimentPlan plan() const;

  harness::ScalabilityResult scalability(std::string_view workload,
                                         unsigned max_threads = 8) const;
  harness::PrefetchSensitivity prefetch_sensitivity(
      std::string_view workload, unsigned threads = 4) const;

  /// The full fg x bg sweep (625 pairs at default scope).
  harness::CorunMatrix corun_matrix(unsigned reps = 3,
                                    std::vector<std::string> subset = {}) const;

  /// Base RunOptions used by all calls (seed, sampling, machine, size).
  harness::RunOptions options() const { return base_; }
  void set_seed(std::uint64_t seed) { base_.seed = seed; }
  void set_sample_window(sim::Cycle w) { base_.sample_window = w; }

  const sim::MachineConfig& machine() const { return base_.machine; }
  wl::SizeClass size_class() const { return base_.size; }

  /// Process-wide metrics registry (counters/gauges/histograms kept by
  /// the harness, truth oracles, and cluster simulator). Enabled by
  /// default; snapshot with metrics().snapshot_json().
  static obs::Registry& metrics() { return obs::Registry::instance(); }
  /// Process-wide Chrome-trace recorder. Off by default; trace().start
  /// (path) records spans until trace().stop() writes the file -- load
  /// it in Perfetto or chrome://tracing.
  static obs::Trace& trace() { return obs::Trace::instance(); }

 private:
  harness::RunOptions base_;
};

}  // namespace coperf
