#include "core/session.hpp"

namespace coperf {

Session::Session(sim::MachineConfig machine, wl::SizeClass size) {
  machine.validate();
  base_.machine = machine;
  base_.size = size;
}

std::vector<std::string> Session::applications() const {
  std::vector<std::string> out;
  for (const auto* w : wl::Registry::instance().applications())
    out.push_back(w->name);
  return out;
}

std::vector<std::string> Session::all_workloads() const {
  std::vector<std::string> out;
  for (const auto* w : wl::Registry::instance().all()) out.push_back(w->name);
  return out;
}

harness::RunResult Session::run_solo(std::string_view workload,
                                     unsigned threads) const {
  harness::RunOptions o = base_;
  o.threads = threads;
  return harness::run_solo(workload, o);
}

harness::CorunResult Session::run_pair(std::string_view fg,
                                       std::string_view bg,
                                       unsigned threads) const {
  harness::RunOptions o = base_;
  o.threads = threads;
  return harness::run_pair(fg, bg, o);
}

harness::GroupResult Session::run_group(const harness::GroupSpec& spec) const {
  return harness::run_group(spec, base_);
}

harness::ExperimentPlan Session::plan() const {
  return harness::ExperimentPlan{base_};
}

harness::ScalabilityResult Session::scalability(std::string_view workload,
                                                unsigned max_threads) const {
  return harness::scalability_sweep(workload, base_, max_threads);
}

harness::PrefetchSensitivity Session::prefetch_sensitivity(
    std::string_view workload, unsigned threads) const {
  harness::RunOptions o = base_;
  o.threads = threads;
  return harness::prefetch_sensitivity(workload, o);
}

harness::CorunMatrix Session::corun_matrix(
    unsigned reps, std::vector<std::string> subset) const {
  harness::MatrixOptions mo;
  mo.run = base_;
  mo.reps = reps;
  mo.subset = std::move(subset);
  return harness::corun_matrix(mo);
}

}  // namespace coperf
