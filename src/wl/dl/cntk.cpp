// CNTK deep-learning workload models (Table I: ConvNet-CIFAR/MNIST,
// LSTM-AN4, ATIS). Only the training phase is modelled, as in the paper.
//
// Characteristics reproduced (Sections IV-A..C):
//  - CIFAR: streams large activation/im2col buffers through the LLC
//    every step -> moderate bandwidth (~7-8 GB/s @4T), real LLC
//    pollution (it is one of the paper's three offenders), scalability
//    that saturates after 4 threads.
//  - MNIST: the same pipeline at a fraction of the size -> high
//    scalability, light bandwidth.
//  - LSTM: recurrent steps over LLC-resident weights -> low DRAM
//    traffic, good scalability.
//  - ATIS: tiny per-step parallel work plus a serial recurrence and a
//    barrier every minibatch -> no scalability past 2 threads, with
//    most cycles in barrier release (kmp_hyper_barrier_release).
#include <algorithm>
#include <cstdint>
#include <memory>

#include "util/rng.hpp"
#include "wl/registry.hpp"
#include "wl/regions.hpp"
#include "wl/sim_array.hpp"
#include "wl/workload.hpp"

namespace coperf::wl {
namespace {

using sim::Addr;
using sim::Dep;

struct ConvNetParams {
  const char* name;
  std::uint32_t samples_per_batch;  ///< global minibatch, split over threads
  std::uint32_t batches;            ///< training steps (Small size)
  std::uint32_t im2col_kb;          ///< im2col buffer per sample
  std::uint32_t act_kb;             ///< activation tensor per sample
  std::uint32_t weight_kb;          ///< model weights (shared, hot)
  std::uint32_t gemm_uops_per_line; ///< MACs executed per streamed line
  double cpi_base;
};

/// Data-parallel minibatch SGD: im2col copy -> GEMM forward -> pool ->
/// backward GEMM -> weight-gradient allreduce (barrier) -> update.
class ConvNetModel final : public WorkloadBase {
 public:
  ConvNetModel(const ConvNetParams& cp, const AppParams& p)
      : WorkloadBase(cp.name, p, sim::ThreadAttr{cp.cpi_base, 4}),
        cp_(cp),
        batches_(scaled_size(cp.batches, p.size, 2)),
        weights_(space(), cp.weight_kb * 1024ull / sizeof(float)),
        grads_(space(), cp.weight_kb * 1024ull / sizeof(float)),
        rgn_gemm_(region_id(std::string{cp.name} + "/gemm")),
        rgn_data_(region_id(std::string{cp.name} + "/data_layout")),
        rgn_update_(region_id(std::string{cp.name} + "/allreduce")) {
    const std::size_t im2col_floats = cp.im2col_kb * 1024ull / sizeof(float);
    const std::size_t act_floats = cp.act_kb * 1024ull / sizeof(float);
    for (unsigned t = 0; t < p.threads; ++t) {
      im2col_.emplace_back(space(), im2col_floats);
      acts_.emplace_back(space(), act_floats);
    }
  }

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    const auto& buf = im2col_[tid];
    const auto& act = acts_[tid];
    const std::size_t buf_lines = buf.bytes() / sim::kLineBytes;
    const std::size_t act_lines = act.bytes() / sim::kLineBytes;
    const std::size_t w_lines = weights_.bytes() / sim::kLineBytes;
    constexpr std::size_t kFloatsPerLine = sim::kLineBytes / sizeof(float);
    for (std::uint32_t b = 0; b < batches_; ++b) {
      // Fixed total work: samples of the global minibatch are assigned
      // round-robin so every thread count processes the same batch.
      for (std::uint32_t s = tid; s < cp_.samples_per_batch; s += threads()) {
        // ---- im2col: activation -> GEMM layout (pure streaming) ----
        co_await ctx.region(rgn_data_);
        for (std::size_t l = 0; l < buf_lines; ++l) {
          co_await ctx.load(act.addr_of((l % act_lines) * kFloatsPerLine), 61);
          co_await ctx.store(buf.addr_of(l * kFloatsPerLine), 62);
          co_await ctx.compute(4);
        }
        // ---- forward GEMM: stream im2col, reuse weights ----
        co_await ctx.region(rgn_gemm_);
        for (std::size_t l = 0; l < buf_lines; ++l) {
          co_await ctx.load(buf.addr_of(l * kFloatsPerLine), 63);
          co_await ctx.load(weights_.addr_of((l % w_lines) * kFloatsPerLine), 64);
          co_await ctx.compute(cp_.gemm_uops_per_line);
        }
        // ---- pooling/activation: read-modify-write the tensor ----
        co_await ctx.region(rgn_data_);
        for (std::size_t l = 0; l < act_lines; ++l) {
          co_await ctx.load(act.addr_of(l * kFloatsPerLine), 65);
          co_await ctx.store(act.addr_of(l * kFloatsPerLine), 66);
          co_await ctx.compute(6);
        }
        // ---- backward GEMM: stream im2col again, accumulate grads ----
        co_await ctx.region(rgn_gemm_);
        for (std::size_t l = 0; l < buf_lines; ++l) {
          co_await ctx.load(buf.addr_of(l * kFloatsPerLine), 67);
          co_await ctx.load(grads_.addr_of((l % w_lines) * kFloatsPerLine), 68);
          co_await ctx.compute(cp_.gemm_uops_per_line);
        }
      }
      // ---- gradient allreduce + SGD step (synchronous training) ----
      co_await ctx.barrier();
      co_await ctx.region(rgn_update_);
      const auto [wb, we] = std::pair{w_lines * tid / threads(),
                                      w_lines * (tid + 1) / threads()};
      for (std::size_t l = wb; l < we; ++l) {
        co_await ctx.load(grads_.addr_of(l * kFloatsPerLine), 69);
        co_await ctx.load(weights_.addr_of(l * kFloatsPerLine), 70);
        co_await ctx.store(weights_.addr_of(l * kFloatsPerLine), 71);
        co_await ctx.compute(8);
      }
      co_await ctx.barrier();
    }
  }

 private:
  ConvNetParams cp_;
  std::uint32_t batches_;
  std::vector<GhostArray<float>> im2col_, acts_;
  GhostArray<float> weights_, grads_;
  std::uint32_t rgn_gemm_, rgn_data_, rgn_update_;
};

// ---------------------------------------------------------------------
// LSTM-AN4: recurrence over LLC-resident weights, batch-parallel.
// ---------------------------------------------------------------------
class LstmModel final : public WorkloadBase {
 public:
  explicit LstmModel(const AppParams& p)
      : WorkloadBase("LSTM", p, sim::ThreadAttr{0.5, 10}),
        total_batches_(scaled_size(24, p.size, 8)),
        weights_(space(), 256 * 1024 / sizeof(float)),
        rgn_cell_(region_id("LSTM/cell_gemm")) {
    for (unsigned t = 0; t < p.threads; ++t) {
      hidden_.emplace_back(space(), 16 * 1024 / sizeof(float));
      grads_.emplace_back(space(), 32 * 1024 / sizeof(float));
    }
  }

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    constexpr std::uint32_t kTimesteps = 8;
    constexpr std::size_t kFloatsPerLine = sim::kLineBytes / sizeof(float);
    const auto& h = hidden_[tid];
    const std::size_t h_lines = h.bytes() / sim::kLineBytes;
    const std::size_t w_lines = weights_.bytes() / sim::kLineBytes;

    const auto& grad = grads_[tid];
    const std::size_t g_lines = grad.bytes() / sim::kLineBytes;
    // Batch slots are strided over threads; every thread passes the same
    // number of barriers regardless of whether its slot holds work.
    const std::uint32_t slots =
        (total_batches_ + threads() - 1) / threads();

    co_await ctx.region(rgn_cell_);
    for (std::uint32_t slot = 0; slot < slots; ++slot) {
      const std::uint32_t b = slot * threads() + tid;
      const std::uint32_t t_end = b < total_batches_ ? kTimesteps : 0;
      for (std::uint32_t t = 0; t < t_end; ++t) {
        for (std::size_t l = 0; l < w_lines; ++l) {
          co_await ctx.load(weights_.addr_of(l * kFloatsPerLine), 75);
          co_await ctx.load(h.addr_of((l % h_lines) * kFloatsPerLine), 76);
          // Accumulate per-thread weight gradients (write stream).
          co_await ctx.store(grad.addr_of((l % g_lines) * kFloatsPerLine), 78);
          co_await ctx.compute(45);
        }
        for (std::size_t l = 0; l < h_lines; ++l) {
          co_await ctx.store(h.addr_of(l * kFloatsPerLine), 77);
          co_await ctx.compute(10);
        }
      }
      co_await ctx.barrier();  // gradient sync per batch
    }
  }

 private:
  std::uint32_t total_batches_;
  std::vector<GhostArray<float>> hidden_, grads_;
  GhostArray<float> weights_;
  std::uint32_t rgn_cell_;
};

// ---------------------------------------------------------------------
// ATIS: sync-bound NLP training -- tiny sharded work + serial
// recurrence + a barrier every step (no scalability, Section IV-A).
// ---------------------------------------------------------------------
class AtisModel final : public WorkloadBase {
 public:
  explicit AtisModel(const AppParams& p)
      : WorkloadBase("ATIS", p, sim::ThreadAttr{0.55, 8}),
        steps_(scaled_size(2600, p.size, 80)),
        embeddings_(space(), 768 * 1024 / sizeof(float)),
        rgn_embed_(region_id("ATIS/embedding")),
        rgn_serial_(region_id("ATIS/serial_recurrence")),
        rgn_barrier_(region_id("ATIS/kmp_hyper_barrier_release")) {}

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    constexpr std::uint32_t kBatch = 8;       // samples per step, sharded
    constexpr std::uint32_t kLookups = 24;    // embedding gathers/sample
    util::SplitMix64 rng{util::seed_combine(0xA715, tid)};
    const std::size_t vocab_lines = embeddings_.bytes() / sim::kLineBytes;

    for (std::uint32_t s = 0; s < steps_; ++s) {
      co_await ctx.region(rgn_embed_);
      for (std::uint32_t i = tid; i < kBatch; i += threads()) {
        for (std::uint32_t k = 0; k < kLookups; ++k) {
          const auto line = rng.below(vocab_lines);
          co_await ctx.load(
              embeddings_.addr_of(line * (sim::kLineBytes / sizeof(float))),
              81);
        }
        co_await ctx.compute(500);  // tiny GEMM on the gathered vectors
      }
      // Serial sequence recurrence on thread 0; everyone else heads
      // straight into the barrier (this is where VTune attributes 80%
      // of cycles to kmp_hyper_barrier_release at >2 threads).
      co_await ctx.region(rgn_serial_);
      if (tid == 0) co_await ctx.compute(2000);
      co_await ctx.region(rgn_barrier_);
      co_await ctx.barrier();
    }
  }

 private:
  std::uint32_t steps_;
  GhostArray<float> embeddings_;
  std::uint32_t rgn_embed_, rgn_serial_, rgn_barrier_;
};

}  // namespace

void register_cntk(Registry& r) {
  r.add({"CIFAR", "CNTK", "ConvNet on CIFAR: streaming activations + GEMM",
         false, [](const AppParams& p) {
           // Calibrated so 4-thread bandwidth lands near the paper's
           // 7-8 GB/s with real LLC turnover per step.
           return std::make_unique<ConvNetModel>(
               ConvNetParams{"CIFAR", 8, 6, 320, 128, 384, 200, 0.5}, p);
         }});
  r.add({"MNIST", "CNTK", "ConvNet on MNIST: small tensors, compute-bound",
         false, [](const AppParams& p) {
           return std::make_unique<ConvNetModel>(
               ConvNetParams{"MNIST", 8, 24, 128, 48, 96, 150, 0.5}, p);
         }});
  r.add({"LSTM", "CNTK", "LSTM-AN4: LLC-resident weights, batch-parallel",
         false,
         [](const AppParams& p) { return std::make_unique<LstmModel>(p); }});
  r.add({"ATIS", "CNTK", "ATIS NLP: sync-bound, no scalability past 2 threads",
         false,
         [](const AppParams& p) { return std::make_unique<AtisModel>(p); }});
}

}  // namespace coperf::wl
