// Simulated-address data structures.
//
// Workload models mix two concerns: real data (a BFS needs real
// adjacency to traverse) and simulated addresses (what the cache model
// sees). AddrSpace hands out per-application address ranges; SimArray
// couples a host vector with such a range; SimView maps shared
// immutable host data (e.g. a cached graph) into an app's space.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "sim/addr.hpp"

namespace coperf::wl {

/// Bump allocator over one application's simulated address space.
class AddrSpace {
 public:
  explicit AddrSpace(sim::AppId app)
      : app_(app), next_(sim::app_base(app) + kStartOffset) {}

  /// Reserves `bytes` aligned to a cache line (optionally to 4K pages).
  sim::Addr alloc(std::size_t bytes, bool page_align = true) {
    const sim::Addr align = page_align ? 4096 : sim::kLineBytes;
    next_ = (next_ + align - 1) & ~(align - 1);
    const sim::Addr base = next_;
    next_ += bytes;
    if (next_ >= sim::app_base(app_) + (sim::Addr{1} << sim::kAppIdShift))
      throw std::length_error{"AddrSpace: application address space exhausted"};
    return base;
  }

  sim::AppId app() const { return app_; }
  std::size_t bytes_allocated() const {
    return static_cast<std::size_t>(next_ - sim::app_base(app_) - kStartOffset);
  }

 private:
  static constexpr sim::Addr kStartOffset = 1 << 16;
  sim::AppId app_;
  sim::Addr next_;
};

/// Host-backed array with a simulated address range.
template <typename T>
class SimArray {
 public:
  SimArray() = default;
  SimArray(AddrSpace& space, std::size_t n, T init = T{})
      : data_(n, init), base_(space.alloc(n * sizeof(T))) {}

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  sim::Addr addr_of(std::size_t i) const { return base_ + i * sizeof(T); }
  sim::Addr base() const { return base_; }
  std::size_t bytes() const { return data_.size() * sizeof(T); }

  void fill(const T& v) { data_.assign(data_.size(), v); }

 private:
  std::vector<T> data_;
  sim::Addr base_ = 0;
};

/// Address-only array: footprint without host storage, for data whose
/// values never influence control flow (streamed field arrays etc.).
template <typename T>
class GhostArray {
 public:
  GhostArray() = default;
  GhostArray(AddrSpace& space, std::size_t n)
      : n_(n), base_(space.alloc(n * sizeof(T))) {}

  std::size_t size() const { return n_; }
  sim::Addr addr_of(std::size_t i) const { return base_ + i * sizeof(T); }
  sim::Addr base() const { return base_; }
  std::size_t bytes() const { return n_ * sizeof(T); }

 private:
  std::size_t n_ = 0;
  sim::Addr base_ = 0;
};

/// A value padded to a fixed record size. Used by the graph models to
/// preserve the paper's vertex-state-to-LLC footprint ratio under
/// scaled-down vertex counts: friendster keeps ~10-30 bytes of engine
/// state per vertex across several arrays, and that state is orders of
/// magnitude larger than the LLC -- with 2^17 vertices the same ratio
/// requires widening the per-vertex record (see DESIGN.md).
template <typename T, std::size_t Bytes = 32>
struct Cell {
  static_assert(Bytes >= sizeof(T));
  T v{};
  unsigned char pad[Bytes - sizeof(T)]{};
};

/// Read-only view of shared host data mapped into an app's space.
template <typename T>
class SimView {
 public:
  SimView() = default;
  SimView(AddrSpace& space, std::span<const T> host)
      : host_(host), base_(space.alloc(host.size_bytes())) {}

  const T& operator[](std::size_t i) const { return host_[i]; }
  std::size_t size() const { return host_.size(); }

  sim::Addr addr_of(std::size_t i) const { return base_ + i * sizeof(T); }
  sim::Addr base() const { return base_; }
  std::size_t bytes() const { return host_.size_bytes(); }

 private:
  std::span<const T> host_{};
  sim::Addr base_ = 0;
};

}  // namespace coperf::wl
