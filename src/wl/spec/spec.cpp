// SPEC CPU2017 workload models (Table I: mcf, fotonik3d, deepsjeng,
// nab, xalancbmk, cactuBSSN), executed in SPEC-rate style: N threads
// run N independent copies, each with private data (Section III-B).
//
// Characteristics reproduced (Fig. 2e/3/4, Table IV):
//  - mcf: network-simplex pointer chasing over a >LLC arc network ->
//    high LLC MPKI, latency-bound, prefetch-insensitive, scales in
//    rate mode.
//  - fotonik3d: FDTD field sweeps over many large arrays -> ~18 GB/s
//    @4 copies, LLC MPKI ~21 that co-runners barely change (pure
//    streaming), highly prefetch-sensitive, saturates after 4 copies.
//    The paper's chief offender AND a bandwidth victim. Its hot region
//    is tagged "UUS" to match Table IV.
//  - deepsjeng: alpha-beta search: hash probes into a cache-resident
//    table + heavy compute -> near-linear rate scaling.
//  - nab: molecular dynamics on a small working set -> compute-bound,
//    co-run friendly.
//  - xalancbmk: DOM traversal, pointer chasing over a medium tree ->
//    medium bandwidth and medium rate scaling.
//  - cactuBSSN: BSSN stencil with very heavy per-point FP -> regular
//    streams, moderate bandwidth, near-linear scaling.
#include <algorithm>
#include <cstdint>
#include <memory>

#include "util/rng.hpp"
#include "wl/emit.hpp"
#include "wl/registry.hpp"
#include "wl/regions.hpp"
#include "wl/sim_array.hpp"
#include "wl/workload.hpp"

namespace coperf::wl {
namespace {

using sim::Addr;
using sim::Dep;

constexpr std::size_t kDoublesPerLine = sim::kLineBytes / sizeof(double);

// ---------------------------------------------------------------------
// mcf: network simplex over an arc/node network (pointer chasing)
// ---------------------------------------------------------------------
class McfModel final : public WorkloadBase {
 public:
  explicit McfModel(const AppParams& p)
      : WorkloadBase("mcf", p, sim::ThreadAttr{0.7, 4}),
        arcs_per_copy_(scaled_size(120'000, p.size, 4096)),
        pivots_(scaled_size(14'000, p.size, 1200)),
        rgn_simplex_(region_id("mcf/primal_bea_mpp")) {
    for (unsigned t = 0; t < p.threads; ++t) {
      arcs_.emplace_back(space(), arcs_per_copy_);
      nodes_.emplace_back(space(), arcs_per_copy_ / 3);
    }
  }

 protected:
  struct Arc {
    std::uint64_t cost;
    std::uint32_t tail, head;
    std::uint64_t flow;
    std::uint64_t ident;
  };  // 32 bytes, 2 per line

  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    util::SplitMix64 rng{util::seed_combine(0x3CF, tid)};
    const auto& arcs = arcs_[tid];
    const auto& nodes = nodes_[tid];
    co_await ctx.region(rgn_simplex_);
    for (std::uint64_t pivot = 0; pivot < pivots_; ++pivot) {
      // Price scan: walk a random run of arcs (semi-sequential)...
      std::uint64_t a = rng.below(arcs.size());
      for (unsigned k = 0; k < 14; ++k) {
        co_await ctx.load(arcs.addr_of(a), 401);
        a = (a + 2) % arcs.size();
        co_await ctx.compute(6);
      }
      // ...then chase the spanning-tree path (dependent loads); the
      // tree root region is hot, the leaves are cold.
      const std::uint64_t hot_nodes = (256 * 1024) / 32;
      std::uint64_t node = rng.below(nodes.size());
      for (unsigned d = 0; d < 6; ++d) {
        co_await ctx.load(nodes.addr_of(node), 402, Dep::Chain);
        const std::uint64_t h = node * 0x9E3779B97F4A7C15ull + d;
        node = (h & 1) ? h % hot_nodes : h % nodes.size();
        co_await ctx.compute(5);
      }
      co_await ctx.store(nodes.addr_of(node), 403);
    }
  }

 private:
  std::size_t arcs_per_copy_;
  std::uint64_t pivots_;
  std::vector<GhostArray<Arc>> arcs_;
  std::vector<GhostArray<Arc>> nodes_;
  std::uint32_t rgn_simplex_;
};

// ---------------------------------------------------------------------
// fotonik3d: FDTD sweeps; hot region "UUS" per Table IV
// ---------------------------------------------------------------------
class FotonikModel final : public WorkloadBase {
 public:
  explicit FotonikModel(const AppParams& p)
      : WorkloadBase("fotonik3d", p, sim::ThreadAttr{0.45, 14}),
        cells_per_copy_(scaled_size(210'000, p.size, 32'768)),
        sweeps_(p.size == SizeClass::Tiny ? 1 : 2),
        rgn_uus_(region_id("fotonik3d/UUS")) {
    // Six field arrays (Ex,Ey,Ez,Hx,Hy,Hz) per copy, each > private L2.
    for (unsigned t = 0; t < p.threads; ++t) {
      fields_.emplace_back();
      for (unsigned f = 0; f < 6; ++f)
        fields_.back().emplace_back(space(), cells_per_copy_);
    }
  }

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    const auto& f = fields_[tid];
    co_await ctx.region(rgn_uus_);
    for (unsigned sweep = 0; sweep < sweeps_; ++sweep) {
      // E update reads H fields and writes E (then vice versa):
      // three loads + one store per line, unit stride, per field pair.
      for (unsigned pair = 0; pair < 3; ++pair) {
        const auto& e = f[pair];
        const auto& h1 = f[3 + pair];
        const auto& h2 = f[3 + (pair + 1) % 3];
        for (std::size_t i = 0; i < cells_per_copy_; i += kDoublesPerLine) {
          co_await ctx.load(e.addr_of(i), 411);
          co_await ctx.load(h1.addr_of(i), 412);
          co_await ctx.load(h2.addr_of(i), 413);
          co_await ctx.compute(140);  // curl + PML update, 8 cells/line
          co_await ctx.store(e.addr_of(i), 414);
        }
      }
    }
  }

 private:
  std::size_t cells_per_copy_;
  unsigned sweeps_;
  std::vector<std::vector<GhostArray<double>>> fields_;
  std::uint32_t rgn_uus_;
};

// ---------------------------------------------------------------------
// deepsjeng: alpha-beta search with transposition-table probes
// ---------------------------------------------------------------------
class DeepsjengModel final : public WorkloadBase {
 public:
  explicit DeepsjengModel(const AppParams& p)
      : WorkloadBase("deepsjeng", p, sim::ThreadAttr{0.6, 6}),
        searches_(scaled_size(26'000, p.size, 1000)),
        rgn_search_(region_id("deepsjeng/search")) {
    for (unsigned t = 0; t < p.threads; ++t)
      ttable_.emplace_back(space(), (1536 * 1024) / 16);  // 1.5 MB hash table
  }

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    util::SplitMix64 rng{util::seed_combine(0xD5, tid)};
    const auto& tt = ttable_[tid];
    co_await ctx.region(rgn_search_);
    const std::uint64_t hot_slots = (128 * 1024) / 16;  // hot upper tree
    for (std::uint64_t node = 0; node < searches_; ++node) {
      // Transposition probe + possible store, then heavy evaluation.
      // Search locality: most probes land in the hot upper tree.
      const std::uint64_t slot = (rng.below(100) < 75)
                                     ? rng.below(hot_slots)
                                     : rng.below(tt.size());
      co_await ctx.load(tt.addr_of(slot), 421);
      if ((node & 7) == 0) co_await ctx.store(tt.addr_of(slot), 422);
      co_await ctx.compute(420);  // move gen + static eval
    }
  }

 private:
  std::uint64_t searches_;
  std::vector<GhostArray<std::uint8_t[16]>> ttable_;
  std::uint32_t rgn_search_;
};

// ---------------------------------------------------------------------
// nab: molecular dynamics on a small working set
// ---------------------------------------------------------------------
class NabModel final : public WorkloadBase {
 public:
  explicit NabModel(const AppParams& p)
      : WorkloadBase("nab", p, sim::ThreadAttr{0.65, 8}),
        steps_(p.size == SizeClass::Tiny ? 1 : 3),
        atoms_(scaled_size(14'000, p.size, 512)) {
    rgn_force_ = region_id("nab/egb_forces");
    for (unsigned t = 0; t < p.threads; ++t) {
      coords_.emplace_back(space(), atoms_ * 4);
      neigh_.emplace_back(space(), atoms_ * 24);
    }
  }

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    util::SplitMix64 rng{util::seed_combine(0xAB, tid)};
    const auto& xyz = coords_[tid];
    const auto& nl = neigh_[tid];
    co_await ctx.region(rgn_force_);
    for (unsigned step = 0; step < steps_; ++step) {
      LineTracker nl_line;
      for (std::size_t a = 0; a < atoms_; ++a) {
        for (unsigned k = 0; k < 24; ++k) {
          const std::size_t idx = a * 24 + k;
          if (nl_line.touch(nl.addr_of(idx)))
            co_await ctx.load(nl.addr_of(idx), 431);
          // Neighbours cluster nearby: small working set, cache-kind.
          const std::size_t nb = (a + rng.below(256)) % atoms_;
          co_await ctx.load(xyz.addr_of(nb * 4), 432);
          co_await ctx.compute(34);  // GB pairwise term
        }
        co_await ctx.store(xyz.addr_of(a * 4), 433);
      }
    }
  }

 private:
  unsigned steps_;
  std::size_t atoms_;
  std::vector<GhostArray<double>> coords_;
  std::vector<GhostArray<std::uint32_t>> neigh_;
  std::uint32_t rgn_force_;
};

// ---------------------------------------------------------------------
// xalancbmk: XSLT/DOM traversal (pointer chasing, medium footprint)
// ---------------------------------------------------------------------
class XalancbmkModel final : public WorkloadBase {
 public:
  explicit XalancbmkModel(const AppParams& p)
      : WorkloadBase("xalancbmk", p, sim::ThreadAttr{0.7, 3}),
        traversals_(scaled_size(12'000, p.size, 800)),
        rgn_walk_(region_id("xalancbmk/dom_walk")) {
    for (unsigned t = 0; t < p.threads; ++t)
      dom_.emplace_back(space(), (1536 * 1024) / 64);  // 1.5 MB DOM arena
  }

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    util::SplitMix64 rng{util::seed_combine(0x8A1, tid)};
    const auto& dom = dom_[tid];
    co_await ctx.region(rgn_walk_);
    const std::uint64_t hot_nodes = (192 * 1024) / 64;  // hot template part
    for (std::uint64_t t = 0; t < traversals_; ++t) {
      std::uint64_t node = (rng.below(100) < 65) ? rng.below(hot_nodes)
                                                 : rng.below(dom.size());
      const unsigned depth = 5 + static_cast<unsigned>(rng.below(8));
      for (unsigned d = 0; d < depth; ++d) {
        co_await ctx.load(dom.addr_of(node), 441, Dep::Chain);
        node = (node * 2654435761ull + 1) % dom.size();
        co_await ctx.compute(16);  // string compare + dispatch
      }
      if ((t & 3) == 0) co_await ctx.store(dom.addr_of(node), 442);
    }
  }

 private:
  std::uint64_t traversals_;
  std::vector<GhostArray<std::uint8_t[64]>> dom_;
  std::uint32_t rgn_walk_;
};

// ---------------------------------------------------------------------
// cactuBSSN: structured-grid relativity stencil, FLOP-dominated
// ---------------------------------------------------------------------
class CactuModel final : public WorkloadBase {
 public:
  explicit CactuModel(const AppParams& p)
      : WorkloadBase("cactuBSSN", p, sim::ThreadAttr{0.5, 10}),
        points_per_copy_(scaled_size(60'000, p.size, 2048)),
        sweeps_(p.size == SizeClass::Tiny ? 1 : 3),
        rgn_rhs_(region_id("cactuBSSN/BSSN_RHS")) {
    for (unsigned t = 0; t < p.threads; ++t) {
      grids_.emplace_back();
      for (unsigned g = 0; g < 10; ++g)
        grids_.back().emplace_back(space(), points_per_copy_);
    }
  }

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    const auto& g = grids_[tid];
    co_await ctx.region(rgn_rhs_);
    for (unsigned sweep = 0; sweep < sweeps_; ++sweep) {
      for (std::size_t i = 0; i < points_per_copy_; i += kDoublesPerLine) {
        for (unsigned a = 0; a < 10; ++a) co_await ctx.load(g[a].addr_of(i), 451);
        co_await ctx.compute(640);  // BSSN right-hand side is FLOP-huge
        for (unsigned a = 0; a < 3; ++a) co_await ctx.store(g[a].addr_of(i), 452);
      }
    }
  }

 private:
  std::size_t points_per_copy_;
  unsigned sweeps_;
  std::vector<std::vector<GhostArray<double>>> grids_;
  std::uint32_t rgn_rhs_;
};

}  // namespace

void register_spec(Registry& r) {
  r.add({"cactuBSSN", "SPEC CPU2017", "BSSN stencil, FLOP-dominated", true,
         [](const AppParams& p) { return std::make_unique<CactuModel>(p); }});
  r.add({"xalancbmk", "SPEC CPU2017", "DOM traversal pointer chasing", true,
         [](const AppParams& p) {
           return std::make_unique<XalancbmkModel>(p);
         }});
  r.add({"deepsjeng", "SPEC CPU2017", "alpha-beta search + hash probes", true,
         [](const AppParams& p) {
           return std::make_unique<DeepsjengModel>(p);
         }});
  r.add({"fotonik3d", "SPEC CPU2017",
         "FDTD field sweeps (UUS); chief bandwidth offender", true,
         [](const AppParams& p) { return std::make_unique<FotonikModel>(p); }});
  r.add({"mcf", "SPEC CPU2017", "network simplex pointer chasing", true,
         [](const AppParams& p) { return std::make_unique<McfModel>(p); }});
  r.add({"nab", "SPEC CPU2017", "molecular dynamics, small working set", true,
         [](const AppParams& p) { return std::make_unique<NabModel>(p); }});
}

}  // namespace coperf::wl
