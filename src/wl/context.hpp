// ThreadCtx + CoroSource: the pump between workload coroutines and the
// core timing model.
//
// A workload thread body receives a ThreadCtx& and emits trace ops with
//   co_await ctx.load(addr, pc);
//   co_await ctx.compute(n);
//   co_await ctx.barrier();
// Each emit is buffered; the coroutine suspends only when the buffer is
// full. CoroSource drains the buffer through sim::OpSource::refill and
// resumes the coroutine when empty.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "sim/op.hpp"
#include "wl/coro.hpp"

namespace coperf::wl {

class ThreadCtx {
 public:
  static constexpr std::size_t kCap = 8192;
  /// Largest uop burst packed into a single Compute op; bounds how far
  /// one op can advance a core past its quantum.
  static constexpr std::uint32_t kComputeChunk = 2048;

  ThreadCtx() { buf_.reserve(kCap); }
  ThreadCtx(const ThreadCtx&) = delete;
  ThreadCtx& operator=(const ThreadCtx&) = delete;

  bool full() const { return buf_.size() >= kCap; }
  bool empty() const { return head_ >= buf_.size(); }

  /// Copies up to `max` buffered ops to `out`; returns the count.
  std::size_t drain(sim::Op* out, std::size_t max) {
    const std::size_t avail = buf_.size() - head_;
    const std::size_t n = avail < max ? avail : max;
    for (std::size_t i = 0; i < n; ++i) out[i] = buf_[head_ + i];
    head_ += n;
    if (head_ >= buf_.size()) {
      buf_.clear();
      head_ = 0;
    }
    return n;
  }

  /// Zero-copy drain of everything buffered: marks it consumed and
  /// returns the slice. The slice stays valid until the next
  /// reset_consumed()/clear() (i.e. until the pump resumes the body).
  const sim::Op* drain_all_view(std::size_t& n) {
    n = buf_.size() - head_;
    const sim::Op* p = buf_.data() + head_;
    head_ = buf_.size();
    return p;
  }

  /// Reclaims buffer storage once a zero-copy view has been consumed.
  void reset_consumed() {
    if (head_ != 0 && head_ >= buf_.size()) {
      buf_.clear();
      head_ = 0;
    }
  }

  /// Stable non-null pointer for empty zero-copy results.
  const sim::Op* storage() const { return buf_.data(); }

  void clear() {
    buf_.clear();
    head_ = 0;
    at_barrier_ = false;
  }

  /// True while the body is parked at a barrier: the pump must not
  /// resume it until the core reports the barrier released (otherwise
  /// the generator -- which runs ahead of simulated time -- would touch
  /// next-epoch shared state while siblings are still in this epoch).
  bool at_barrier() const { return at_barrier_; }
  void barrier_released() { at_barrier_ = false; }

  // ---- awaitable emitters --------------------------------------------

  /// Single-op emitter: pushes in await_ready when space is available,
  /// otherwise suspends and pushes right after the pump drains.
  struct [[nodiscard]] Emit {
    ThreadCtx* c;
    sim::Op op;
    bool pushed = false;
    bool await_ready() {
      if (!c->full()) {
        c->buf_.push_back(op);
        pushed = true;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<>) noexcept {}
    void await_resume() {
      if (!pushed) c->buf_.push_back(op);
    }
  };

  /// Multi-chunk compute emitter (splits big bursts into kComputeChunk
  /// pieces for quantum fairness).
  struct [[nodiscard]] EmitCompute {
    ThreadCtx* c;
    std::uint64_t remaining;
    bool await_ready() {
      push_some();
      return remaining == 0;
    }
    void await_suspend(std::coroutine_handle<>) noexcept {}
    void await_resume() {
      push_some();
      // The pump resumes only on an empty buffer (capacity kCap ops >=
      // any residual chunk count), so one suspension always suffices.
      assert(remaining == 0 && "compute burst larger than buffer capacity");
    }
    void push_some() {
      while (remaining > 0 && !c->full()) {
        const auto n = remaining < kComputeChunk
                           ? static_cast<std::uint32_t>(remaining)
                           : kComputeChunk;
        c->buf_.push_back(sim::Op::compute(n));
        remaining -= n;
      }
    }
  };

  Emit load(sim::Addr a, std::uint16_t pc, sim::Dep dep = sim::Dep::Indep) {
    return Emit{this, sim::Op::load(a, pc, dep)};
  }
  Emit store(sim::Addr a, std::uint16_t pc) {
    return Emit{this, sim::Op::store(a, pc)};
  }
  /// Barrier emitter: pushes the op and ALWAYS suspends; the pump keeps
  /// the body suspended until the core passes the barrier.
  struct [[nodiscard]] EmitBarrier {
    ThreadCtx* c;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) {
      c->buf_.push_back(sim::Op::barrier());
      c->at_barrier_ = true;
    }
    void await_resume() const noexcept {}
  };

  EmitCompute compute(std::uint64_t uops) { return EmitCompute{this, uops}; }
  EmitBarrier barrier() { return EmitBarrier{this}; }
  Emit region(std::uint32_t id) { return Emit{this, sim::Op::region(id)}; }
  /// Request boundary for serving workloads: records the cycles since
  /// the previous mark as one request latency.
  Emit request_done() { return Emit{this, sim::Op::request_done()}; }
  /// Moves the latency mark without recording (setup, batch gaps).
  Emit request_reset() { return Emit{this, sim::Op::request_reset()}; }

 private:
  std::vector<sim::Op> buf_;
  std::size_t head_ = 0;
  bool at_barrier_ = false;
};

/// sim::OpSource implemented by pumping a workload coroutine.
class CoroSource final : public sim::OpSource {
 public:
  using Factory = std::function<TraceGen(ThreadCtx&)>;

  CoroSource(Factory factory, sim::ThreadAttr attr)
      : factory_(std::move(factory)), attr_(attr) {}

  /// Arms (or re-arms) the source for a fresh run of the thread body.
  void rearm() {
    ctx_.clear();
    gen_.emplace(factory_(ctx_));
  }

  std::size_t refill(sim::Op* buf, std::size_t max) override {
    for (;;) {
      if (const std::size_t n = ctx_.drain(buf, max); n != 0) return n;
      if (ctx_.at_barrier() || !gen_ || gen_->done()) return 0;
      gen_->resume();
      if (ctx_.empty() && gen_->done()) return 0;
    }
  }

  /// Zero-copy pump: hands the core the coroutine's buffer directly
  /// (same op sequence as refill(), one 16-byte copy per op less).
  const sim::Op* refill_view(std::size_t& n) override {
    for (;;) {
      if (!ctx_.empty()) return ctx_.drain_all_view(n);
      ctx_.reset_consumed();
      if (ctx_.at_barrier() || !gen_ || gen_->done()) {
        n = 0;
        return ctx_.storage();
      }
      gen_->resume();
      if (ctx_.empty() && gen_->done()) {
        n = 0;
        return ctx_.storage();
      }
    }
  }

  void barrier_passed() override { ctx_.barrier_released(); }

  sim::ThreadAttr attr() const override { return attr_; }

 private:
  Factory factory_;
  sim::ThreadAttr attr_;
  ThreadCtx ctx_;
  std::optional<TraceGen> gen_;
};

}  // namespace coperf::wl
