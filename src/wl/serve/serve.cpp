// Latency-critical serving workloads (the "serve" suite).
//
// The paper's datacenter framing needs a victim whose health is a tail
// latency, not a completion time. Two canonical serving apps are
// modelled after the appbench profiles in SNIPPETS.md:
//
// kvserve (Redis-style in-memory KV): small random GET/SET commands
// over a pointer-rich hash table. Zipfian key popularity, a bucket
// probe plus a short data-dependent chain walk per command, ~10% SETs,
// and an occasional multi-key scan that stretches the tail. One
// command = one request mark, so the core records a per-request
// latency distribution in simulated cycles.
//
// lsmserve (LevelDB-style LSM tree): foreground point gets (memtable
// probe, per-level index descent, a short sequential block read at the
// bottom level) while thread 0 runs background compaction -- large
// sequential merge scans that emit NO request marks but fight their
// own foreground for cache and bandwidth. The classic LSM tail problem
// in miniature: solo p99 already carries the compaction interference,
// and co-runners stack on top.
//
// Both are latency-bound (low MLP, chain-dependent probes), so they
// are victims in the paper's sense: streaming aggressors inflate their
// p99 far more than their throughput.
#include <cmath>
#include <cstdint>

#include "util/rng.hpp"
#include "wl/registry.hpp"
#include "wl/regions.hpp"
#include "wl/sim_array.hpp"
#include "wl/workload.hpp"

namespace coperf::wl {
namespace {

using sim::Dep;

/// One cache line of address-only footprint.
struct CacheLine {
  std::uint8_t bytes[sim::kLineBytes];
};

/// Zipfian rank sampler over `ranks` coarse popularity classes with a
/// precomputed inverse-CDF table: draw uniform, binary-search the
/// cumulative harmonic weights. Deterministic given the RNG stream;
/// rank 0 is the hottest class.
class ZipfTable {
 public:
  ZipfTable(std::size_t ranks, double s) : cum_(ranks) {
    double total = 0.0;
    for (std::size_t r = 0; r < ranks; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cum_[r] = total;
    }
    for (double& c : cum_) c /= total;
  }

  std::size_t sample(util::SplitMix64& rng) const {
    const double u = rng.uniform();
    std::size_t lo = 0, hi = cum_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cum_[mid] < u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

 private:
  std::vector<double> cum_;
};

// ---------------------------------------------------------------------
// kvserve -- Redis-style in-memory key-value store
// ---------------------------------------------------------------------
class KvServeModel final : public WorkloadBase {
 public:
  explicit KvServeModel(const AppParams& p)
      : WorkloadBase("kvserve", p, sim::ThreadAttr{0.6, 4}),
        requests_(scaled_size(60'000, p.size, 4'000)),
        zipf_(kZipfRanks, 0.99) {
    // Per-thread shard: bucket heads + a chained node pool. The pool
    // straddles the LLC at Small so hot keys cache and cold chains
    // miss -- the co-runner decides which.
    const std::size_t buckets = scaled_size(std::size_t{1} << 16, p.size,
                                            std::size_t{1} << 12);
    const std::size_t nodes = scaled_size(std::size_t{1} << 18, p.size,
                                          std::size_t{1} << 14);
    for (unsigned t = 0; t < p.threads; ++t) {
      buckets_.emplace_back(space(), buckets);
      nodes_.emplace_back(space(), nodes);
    }
  }

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    const auto& buckets = buckets_[tid];
    const auto& nodes = nodes_[tid];
    const std::size_t nbuckets = buckets.size();
    const std::size_t nnodes = nodes.size();
    const std::size_t keys_per_rank = nnodes / kZipfRanks;
    util::SplitMix64 rng{util::seed_combine(params().seed, tid)};

    co_await ctx.region(region_id("kvserve/commands"));
    co_await ctx.request_reset();  // exclude setup from the first request
    for (std::uint64_t i = 0; i < requests_; ++i) {
      // Zipfian key: a hot popularity rank, then a key within it.
      const std::size_t rank = zipf_.sample(rng);
      const std::size_t key =
          rank * keys_per_rank + rng.below(keys_per_rank ? keys_per_rank : 1);
      // Command parse + hash.
      co_await ctx.compute(20);
      // Bucket head probe (independent: the address comes from the hash).
      co_await ctx.load(buckets.addr_of(key * kBucketHash % nbuckets), 41);
      // Walk the collision chain: each hop's address lives in the
      // previous node -- pure pointer chasing.
      const std::size_t depth = 1 + key % 3;
      std::size_t node = key;
      for (std::size_t d = 0; d < depth; ++d) {
        co_await ctx.load(nodes.addr_of(node % nnodes), 42, Dep::Chain);
        node = node * 0x9E3779B9u + d + 1;
      }
      // ~10% SETs rewrite the found node.
      if (rng.below(10) == 0) co_await ctx.store(nodes.addr_of(node % nnodes), 43);
      co_await ctx.compute(12);  // reply serialization
      // Rare multi-key scan (SCAN/MGET): stretches the tail.
      if (i % 1024 == 1023) {
        const std::size_t start = rng.below(nnodes - kScanLines);
        for (std::size_t l = 0; l < kScanLines; ++l)
          co_await ctx.load(nodes.addr_of(start + l), 44);
        co_await ctx.compute(64);
      }
      co_await ctx.request_done();
    }
  }

 private:
  static constexpr std::size_t kZipfRanks = 1024;
  static constexpr std::size_t kBucketHash = 0x2545F491;  // odd multiplier
  static constexpr std::size_t kScanLines = 32;

  std::uint64_t requests_;
  ZipfTable zipf_;
  std::vector<GhostArray<CacheLine>> buckets_, nodes_;
};

// ---------------------------------------------------------------------
// lsmserve -- LevelDB-style LSM tree with background compaction
// ---------------------------------------------------------------------
class LsmServeModel final : public WorkloadBase {
 public:
  explicit LsmServeModel(const AppParams& p)
      : WorkloadBase("lsmserve", p, sim::ThreadAttr{0.6, 6}),
        gets_(scaled_size(40'000, p.size, 3'000)),
        compaction_rounds_(p.size == SizeClass::Tiny ? 1 : 2) {
    const std::size_t memtable = scaled_size(std::size_t{1} << 12, p.size,
                                             std::size_t{1} << 9);
    const std::size_t level_base = scaled_size(std::size_t{1} << 14, p.size,
                                               std::size_t{1} << 11);
    for (unsigned t = 0; t < p.threads; ++t)
      memtables_.emplace_back(space(), memtable);
    // Levels grow 4x per depth, shared by all foreground threads (an
    // LSM tree is one structure; ghost data needs no synchronization).
    for (std::size_t lvl = 0; lvl < kLevels; ++lvl)
      levels_.emplace_back(space(), level_base << (2 * lvl));
    // Compaction state: two input runs merged into one output run.
    const std::size_t run = scaled_size(std::size_t{1} << 15, p.size,
                                        std::size_t{1} << 12);
    run_a_ = GhostArray<CacheLine>(space(), run);
    run_b_ = GhostArray<CacheLine>(space(), run);
    run_out_ = GhostArray<CacheLine>(space(), 2 * run);
  }

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    // Thread 0 is the background compactor when it has siblings to
    // serve the gets; a 1-thread instance degrades to gets only.
    if (tid == 0 && threads() >= 2) return compaction(ctx);
    return gets(ctx, tid);
  }

 private:
  TraceGen gets(ThreadCtx& ctx, unsigned tid) {
    const auto& memtable = memtables_[tid];
    util::SplitMix64 rng{util::seed_combine(params().seed, 0x15A + tid)};

    co_await ctx.region(region_id("lsmserve/get"));
    co_await ctx.request_reset();
    for (std::uint64_t i = 0; i < gets_; ++i) {
      co_await ctx.compute(16);  // key compare + seek setup
      // Memtable probe: skiplist descent, data-dependent hops.
      std::size_t idx = rng.below(memtable.size());
      for (int hop = 0; hop < 3; ++hop) {
        co_await ctx.load(memtable.addr_of(idx), 51, Dep::Chain);
        idx = (idx * 0x9E3779B9u + 7) % memtable.size();
      }
      // Level descent: one index/filter line per level (pointer chase),
      // then a short sequential block read at the hit level. Most keys
      // resolve deep (larger levels hold more keys).
      const std::size_t hit_level = pick_level(rng);
      for (std::size_t lvl = 0; lvl <= hit_level; ++lvl) {
        const auto& level = levels_[lvl];
        co_await ctx.load(level.addr_of(rng.below(level.size())), 52,
                          Dep::Chain);
      }
      const auto& data = levels_[hit_level];
      const std::size_t block =
          rng.below(data.size() > kBlockLines ? data.size() - kBlockLines : 1);
      for (std::size_t l = 0; l < kBlockLines; ++l)
        co_await ctx.load(data.addr_of(block + l), 53);
      co_await ctx.compute(24);  // decode + reply
      co_await ctx.request_done();
    }
  }

  TraceGen compaction(ThreadCtx& ctx) {
    // Merge two sorted runs into an output run: two sequential read
    // streams, a compare per line, one sequential write stream. No
    // request marks -- compaction is background work whose cost shows
    // up as the foreground's tail, exactly like the real system.
    co_await ctx.region(region_id("lsmserve/compaction"));
    const std::size_t lines = run_a_.size();
    for (unsigned r = 0; r < compaction_rounds_; ++r) {
      for (std::size_t l = 0; l < lines; ++l) {
        co_await ctx.load(run_a_.addr_of(l), 54);
        co_await ctx.load(run_b_.addr_of(l), 55);
        co_await ctx.compute(10);  // merge compare
        co_await ctx.store(run_out_.addr_of(2 * l), 56);
        co_await ctx.store(run_out_.addr_of(2 * l + 1), 56);
      }
    }
  }

  /// Levels hold 4x more keys per depth: P(level) ~ its share.
  std::size_t pick_level(util::SplitMix64& rng) const {
    const std::uint64_t u = rng.below(1 + 4 + 16);
    if (u < 1) return 0;
    if (u < 5) return 1;
    return 2;
  }

  static constexpr std::size_t kLevels = 3;
  static constexpr std::size_t kBlockLines = 16;

  std::uint64_t gets_;
  unsigned compaction_rounds_;
  std::vector<GhostArray<CacheLine>> memtables_;
  std::vector<GhostArray<CacheLine>> levels_;
  GhostArray<CacheLine> run_a_, run_b_, run_out_;
};

}  // namespace

void register_serve(Registry& r) {
  r.add(WorkloadInfo{
      "kvserve", "serve",
      "Redis-style in-memory KV: Zipfian GET/SET over a pointer-rich "
      "hash table; one command = one latency-tracked request",
      false,
      [](const AppParams& p) { return std::make_unique<KvServeModel>(p); }});
  r.add(WorkloadInfo{
      "lsmserve", "serve",
      "LevelDB-style LSM: foreground point gets (latency-tracked) + a "
      "background compaction thread doing large sequential merges",
      false,
      [](const AppParams& p) { return std::make_unique<LsmServeModel>(p); }});
}

}  // namespace coperf::wl
