// Global registry of profiling-region names.
//
// Workload models tag code regions the way the paper attributes VTune
// samples to hot spots (e.g. PowerGraph PageRank's `gather` at
// pagerank.c L63-66). Region ids are process-global and stable for the
// process lifetime.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace coperf::wl {

class Regions {
 public:
  static Regions& instance() {
    static Regions r;
    return r;
  }

  /// Returns the stable id for `name`, creating it on first use.
  /// Id 0 is reserved for the implicit "untagged" region.
  std::uint32_t id(std::string_view name) {
    std::lock_guard lock{mu_};
    if (auto it = by_name_.find(std::string{name}); it != by_name_.end())
      return it->second;
    const auto new_id = static_cast<std::uint32_t>(names_.size());
    names_.emplace_back(name);
    by_name_.emplace(names_.back(), new_id);
    return new_id;
  }

  std::string name(std::uint32_t id) const {
    std::lock_guard lock{mu_};
    return id < names_.size() ? names_[id] : "<unknown region>";
  }

 private:
  Regions() {
    names_.emplace_back("<untagged>");
    by_name_.emplace("<untagged>", 0u);
  }

  mutable std::mutex mu_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t> by_name_;
};

/// Convenience: region id lookup.
inline std::uint32_t region_id(std::string_view name) {
  return Regions::instance().id(name);
}

}  // namespace coperf::wl
