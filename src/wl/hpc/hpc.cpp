// LLNL HPC workload models (Table I: lulesh, IRSmk, AMG2006).
//
// Characteristics reproduced (Sections IV-A..C, Fig. 2f/3/4):
//  - lulesh: Sedov blast solver -- nodal gathers through an element
//    connectivity array plus regular element sweeps with heavy FP ->
//    good scalability, moderate-high bandwidth, prefetch-sensitive.
//  - IRSmk: 27-point stencil matvec over many coefficient arrays ->
//    very high bandwidth (paper: 18.1 GB/s @4T), strongly
//    prefetch-sensitive, scalability saturating around 6 threads.
//    A chief co-run "offender".
//  - AMG2006: algebraic multigrid with two single-threaded setup
//    phases followed by a bandwidth-hungry parallel solve (paper:
//    low/medium scalability; offender behaviour limited to phase 3).
#include <algorithm>
#include <cstdint>
#include <memory>

#include "util/rng.hpp"
#include "wl/emit.hpp"
#include "wl/registry.hpp"
#include "wl/regions.hpp"
#include "wl/sim_array.hpp"
#include "wl/workload.hpp"

namespace coperf::wl {
namespace {

using sim::Addr;
using sim::Dep;

constexpr std::size_t kDoublesPerLine = sim::kLineBytes / sizeof(double);

// ---------------------------------------------------------------------
// lulesh
// ---------------------------------------------------------------------
class LuleshModel final : public WorkloadBase {
 public:
  explicit LuleshModel(const AppParams& p)
      : WorkloadBase("lulesh", p, sim::ThreadAttr{0.55, 10}),
        elems_per_thread_(scaled_size(160'000, p.size, 4000) / p.threads),
        timesteps_(p.size == SizeClass::Tiny ? 1 : 3),
        nodes_(space(), elems_per_thread_ * p.threads * 3 / 2),
        rgn_force_(region_id("lulesh/CalcForceForNodes")),
        rgn_eos_(region_id("lulesh/EvalEOSForElems")) {
    util::SplitMix64 rng{util::seed_combine(p.seed, 0x1A1E5)};
    for (unsigned t = 0; t < p.threads; ++t) {
      elem_data_.emplace_back(space(), elems_per_thread_ * 8);
      nodelist_.emplace_back(space(), elems_per_thread_ * 8);
    }
    // Real hex-mesh connectivity: each element touches 8 pseudo-random
    // nearby nodes (locality window mimics a structured mesh ordering).
    conn_.resize(elems_per_thread_ * 8);
    const std::size_t n_nodes = nodes_.size();
    for (std::size_t e = 0; e < elems_per_thread_; ++e) {
      const std::size_t base = e * n_nodes / elems_per_thread_;
      for (unsigned c = 0; c < 8; ++c)
        conn_[e * 8 + c] =
            static_cast<std::uint32_t>((base + rng.below(4096)) % n_nodes);
    }
  }

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    const auto& elem = elem_data_[tid];
    const auto& nl = nodelist_[tid];
    for (unsigned step = 0; step < timesteps_; ++step) {
      // ---- nodal force gather: indirection through the connectivity --
      co_await ctx.region(rgn_force_);
      LineTracker nl_line;
      for (std::size_t e = 0; e < elems_per_thread_; ++e) {
        if (nl_line.touch(nl.addr_of(e * 8)))
          co_await ctx.load(nl.addr_of(e * 8), 341);
        for (unsigned c = 0; c < 8; ++c) {
          const std::uint32_t node = conn_[e * 8 + c];
          co_await ctx.load(nodes_.addr_of(node), 342);
        }
        co_await ctx.compute(160);  // hourglass + stress partials
        co_await ctx.store(elem.addr_of(e * 8), 343);
      }
      co_await ctx.barrier();

      // ---- EOS sweep: regular streaming over element arrays ----------
      co_await ctx.region(rgn_eos_);
      for (std::size_t d = 0; d < elem.size(); d += kDoublesPerLine) {
        co_await ctx.load(elem.addr_of(d), 344);
        co_await ctx.compute(90);
        co_await ctx.store(elem.addr_of(d), 345);
      }
      co_await ctx.barrier();
    }
  }

 private:
  std::size_t elems_per_thread_;
  unsigned timesteps_;
  GhostArray<double> nodes_;  ///< shared nodal fields
  std::vector<GhostArray<double>> elem_data_, nodelist_;
  std::vector<std::uint32_t> conn_;
  std::uint32_t rgn_force_, rgn_eos_;
};

// ---------------------------------------------------------------------
// IRSmk: b[i] = sum_k a_k[i] * x[i + off_k] over 27 coefficient arrays
// ---------------------------------------------------------------------
class IrsmkModel final : public WorkloadBase {
 public:
  explicit IrsmkModel(const AppParams& p)
      : WorkloadBase("IRSmk", p, sim::ThreadAttr{0.45, 14}),
        zones_per_thread_(scaled_size(200'000, p.size, 8192) / p.threads),
        sweeps_(p.size == SizeClass::Tiny ? 1 : 2),
        rgn_matvec_(region_id("IRSmk/rmatmult3")) {
    for (unsigned t = 0; t < p.threads; ++t) {
      // 27 coefficient arrays + x + b, laid out separately like the
      // real kernel's dbl/dbc/dbr/dcl/... arrays.
      coeffs_.emplace_back();
      for (unsigned k = 0; k < 27; ++k)
        coeffs_.back().emplace_back(space(), zones_per_thread_);
      x_.emplace_back(space(), zones_per_thread_ + 4096);
      b_.emplace_back(space(), zones_per_thread_);
    }
  }

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    const auto& coeffs = coeffs_[tid];
    const auto& x = x_[tid];
    const auto& b = b_[tid];
    // Plane/row offsets of the 27-point stencil (3 planes of 9).
    constexpr std::ptrdiff_t kRowOffsets[9] = {0,    1,    2,    128,  129,
                                               130,  256,  257,  258};
    co_await ctx.region(rgn_matvec_);
    for (unsigned sweep = 0; sweep < sweeps_; ++sweep) {
      for (std::size_t z = 0; z < zones_per_thread_; z += kDoublesPerLine) {
        // 27 coefficient streams, one line each per 8 zones.
        for (unsigned k = 0; k < 27; ++k)
          co_await ctx.load(coeffs[k].addr_of(z), 350);
        // 9 distinct x rows cover the 27 taps (3 per row share lines).
        for (const auto off : kRowOffsets)
          co_await ctx.load(x.addr_of(z + static_cast<std::size_t>(off)), 351);
        co_await ctx.compute(27 * kDoublesPerLine);  // FMA per tap per zone
        co_await ctx.store(b.addr_of(z), 352);
      }
      co_await ctx.barrier();
    }
  }

 private:
  std::size_t zones_per_thread_;
  unsigned sweeps_;
  std::vector<std::vector<GhostArray<double>>> coeffs_;
  std::vector<GhostArray<double>> x_, b_;
  std::uint32_t rgn_matvec_;
};

// ---------------------------------------------------------------------
// AMG2006: serial setup phases + parallel multigrid solve
// ---------------------------------------------------------------------
class AmgModel final : public WorkloadBase {
 public:
  explicit AmgModel(const AppParams& p)
      : WorkloadBase("AMG2006", p, sim::ThreadAttr{0.55, 10}),
        rows_per_thread_(scaled_size(120'000, p.size, 4096) / p.threads),
        solve_sweeps_(p.size == SizeClass::Tiny ? 2 : 3),
        setup_(space(), scaled_size(700'000, p.size, 8192)),
        x_(space(), rows_per_thread_ * p.threads),
        rgn_setup_(region_id("AMG2006/setup(serial)")),
        rgn_solve_(region_id("AMG2006/solve(SpMV)")) {
    const std::size_t nnz_per_row = 27;
    util::SplitMix64 rng{util::seed_combine(p.seed, 0xA36)};
    cols_.resize(rows_per_thread_ * p.threads * nnz_per_row);
    const std::size_t n = x_.size();
    for (std::size_t i = 0; i < cols_.size(); ++i) {
      // Banded sparsity: mostly near-diagonal with occasional long links.
      const std::size_t row = i / nnz_per_row;
      const std::size_t jitter = rng.below(2048);
      cols_[i] = static_cast<std::uint32_t>((row + jitter) % n);
    }
    for (unsigned t = 0; t < p.threads; ++t) {
      vals_.emplace_back(space(), rows_per_thread_ * nnz_per_row);
      colind_.emplace_back(space(), rows_per_thread_ * nnz_per_row);
    }
  }

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    constexpr std::size_t kNnzPerRow = 27;
    // ---- phases 1 & 2: single-threaded setup (paper Section IV-A) ----
    co_await ctx.region(rgn_setup_);
    for (unsigned phase = 0; phase < 2; ++phase) {
      if (tid == 0) {
        for (std::size_t d = 0; d < setup_.size(); d += kDoublesPerLine) {
          co_await ctx.load(setup_.addr_of(d), 361);
          co_await ctx.compute(18);
          co_await ctx.store(setup_.addr_of(d), 362);
        }
      }
      co_await ctx.barrier();
    }

    // ---- phase 3: parallel SpMV solve sweeps --------------------------
    co_await ctx.region(rgn_solve_);
    const auto& vals = vals_[tid];
    const auto& cind = colind_[tid];
    const std::size_t row0 = rows_per_thread_ * tid;
    for (unsigned sweep = 0; sweep < solve_sweeps_; ++sweep) {
      LineTracker val_line, col_line;
      for (std::size_t r = 0; r < rows_per_thread_; ++r) {
        for (std::size_t k = 0; k < kNnzPerRow; ++k) {
          const std::size_t idx = r * kNnzPerRow + k;
          if (val_line.touch(vals.addr_of(idx)))
            co_await ctx.load(vals.addr_of(idx), 363);
          if (col_line.touch(cind.addr_of(idx)))
            co_await ctx.load(cind.addr_of(idx), 364);
          const std::uint32_t col = cols_[(row0 + r) * kNnzPerRow + k];
          co_await ctx.load(x_.addr_of(col), 365);
        }
        co_await ctx.compute(5 * kNnzPerRow);
        co_await ctx.store(x_.addr_of(row0 + r), 366);
      }
      co_await ctx.barrier();
    }
  }

 private:
  std::size_t rows_per_thread_;
  unsigned solve_sweeps_;
  GhostArray<double> setup_, x_;
  std::vector<GhostArray<double>> vals_;
  std::vector<GhostArray<std::uint32_t>> colind_;
  std::vector<std::uint32_t> cols_;
  std::uint32_t rgn_setup_, rgn_solve_;
};

}  // namespace

void register_hpc(Registry& r) {
  r.add({"lulesh", "HPC", "Sedov blast solver: nodal gathers + element sweeps",
         false,
         [](const AppParams& p) { return std::make_unique<LuleshModel>(p); }});
  r.add({"IRSmk", "HPC", "27-point stencil matvec, bandwidth-dominated", false,
         [](const AppParams& p) { return std::make_unique<IrsmkModel>(p); }});
  r.add({"AMG2006", "HPC",
         "algebraic multigrid: serial setup phases + parallel SpMV solve",
         false,
         [](const AppParams& p) { return std::make_unique<AmgModel>(p); }});
}

}  // namespace coperf::wl
