#include "wl/registry.hpp"

#include <array>
#include <mutex>
#include <stdexcept>

#include "wl/suites.hpp"

namespace coperf::wl {

Registry& Registry::instance() {
  static Registry r;
  static std::once_flag once;
  std::call_once(once, [] { register_all_workloads(r); });
  return r;
}

void Registry::add(WorkloadInfo info) {
  if (find(info.name) != nullptr)
    throw std::logic_error{"workload registered twice: " + info.name};
  infos_.push_back(std::move(info));
}

const WorkloadInfo* Registry::find(std::string_view name) const {
  for (const auto& w : infos_)
    if (w.name == name) return &w;
  return nullptr;
}

const WorkloadInfo& Registry::at(std::string_view name) const {
  if (const WorkloadInfo* w = find(name)) return *w;
  throw std::out_of_range{"unknown workload: " + std::string{name} +
                          " (see Registry::all for valid names)"};
}

std::vector<const WorkloadInfo*> Registry::applications() const {
  // The paper's Fig. 5 axis order by suite.
  static constexpr std::array kSuiteOrder = {
      "GeminiGraph", "PowerGraph", "CNTK", "SPEC CPU2017", "PARSEC", "HPC"};
  std::vector<const WorkloadInfo*> out;
  for (const char* suite : kSuiteOrder)
    for (const auto& w : infos_)
      if (w.suite == suite) out.push_back(&w);
  return out;
}

std::vector<const WorkloadInfo*> Registry::all() const {
  std::vector<const WorkloadInfo*> out;
  out.reserve(infos_.size());
  for (const auto& w : infos_) out.push_back(&w);
  return out;
}

std::vector<const WorkloadInfo*> Registry::suite(std::string_view suite) const {
  std::vector<const WorkloadInfo*> out;
  for (const auto& w : infos_)
    if (w.suite == suite) out.push_back(&w);
  return out;
}

std::unique_ptr<AppModel> Registry::create(std::string_view name,
                                           const AppParams& p) const {
  return at(name).make(p);
}

void register_all_workloads(Registry& r) {
  register_gemini(r);
  register_powergraph(r);
  register_cntk(r);
  register_parsec(r);
  register_hpc(r);
  register_spec(r);
  register_mini(r);
  register_serve(r);
}

}  // namespace coperf::wl
