// Workload registry: the 25 applications of Table I plus the two
// mini-benchmarks and the two latency-critical serving workloads,
// addressable by name (e.g. "G-PR", "fotonik3d", "Stream", "kvserve").
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "wl/workload.hpp"

namespace coperf::wl {

struct WorkloadInfo {
  std::string name;   ///< paper name, e.g. "G-CC"
  std::string suite;  ///< "GeminiGraph", "PowerGraph", "CNTK", "PARSEC", "HPC", "SPEC CPU2017", "mini", "serve"
  std::string description;
  /// SPEC-rate-style parallelism: N threads = N independent copies.
  bool rate_mode = false;
  std::function<std::unique_ptr<AppModel>(const AppParams&)> make;
};

class Registry {
 public:
  /// Process-wide registry with all workloads registered.
  static Registry& instance();

  void add(WorkloadInfo info);

  const WorkloadInfo* find(std::string_view name) const;
  /// Like find(), but throws std::out_of_range with a helpful message.
  const WorkloadInfo& at(std::string_view name) const;

  /// All workloads in the paper's presentation order (Gemini,
  /// PowerGraph, CNTK, SPEC, PARSEC, HPC -- the Fig. 5 axis order),
  /// excluding the mini-benchmarks.
  std::vector<const WorkloadInfo*> applications() const;
  /// Everything, including Bandit/Stream.
  std::vector<const WorkloadInfo*> all() const;
  std::vector<const WorkloadInfo*> suite(std::string_view suite) const;

  std::unique_ptr<AppModel> create(std::string_view name,
                                   const AppParams& p) const;

 private:
  Registry() = default;
  std::vector<WorkloadInfo> infos_;
};

/// Registers every workload model (idempotent; called by
/// Registry::instance()).
void register_all_workloads(Registry& r);

}  // namespace coperf::wl
