// Workload model base classes.
//
// An AppModel is one runnable instance of one of the paper's 27
// programs: it owns the instance's simulated address space, its host
// data, and one coroutine-backed OpSource per thread. WorkloadBase
// provides the plumbing (source pumps, restart/rearm for background
// loops); concrete models implement body() -- the per-thread trace
// program -- and on_run_start() to reset per-run shared state.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/op.hpp"
#include "wl/context.hpp"
#include "wl/sim_array.hpp"

namespace coperf::wl {

/// Input scale. Small is sized for MachineConfig::scaled(8) (the
/// default experiment configuration); Native for the unscaled paper
/// machine; Tiny for unit tests.
enum class SizeClass : std::uint8_t { Tiny, Small, Native };

/// Multiplier applied to Small-class sizes.
constexpr double size_factor(SizeClass s) {
  switch (s) {
    case SizeClass::Tiny: return 1.0 / 16.0;
    case SizeClass::Small: return 1.0;
    case SizeClass::Native: return 8.0;
  }
  return 1.0;
}

struct AppParams {
  sim::AppId app_id = 0;
  unsigned threads = 4;
  SizeClass size = SizeClass::Small;
  std::uint64_t seed = 1;
};

class AppModel {
 public:
  virtual ~AppModel() = default;
  virtual const std::string& name() const = 0;
  /// One OpSource per thread, armed and ready to run. Stable pointers
  /// across restart().
  virtual std::vector<sim::OpSource*> sources() = 0;
  /// Re-arms every thread for a fresh run (background loop semantics).
  virtual void restart() = 0;
  virtual unsigned threads() const = 0;
  /// Total simulated bytes this instance allocated (its footprint).
  virtual std::size_t footprint_bytes() const = 0;
  /// Checks the algorithmic result of the last completed run against a
  /// host reference (e.g. simulated SSSP vs. Dijkstra). Returns an
  /// empty string on success, a diagnostic otherwise. Models whose
  /// output is pure traffic (ghost data) return success.
  virtual std::string verify() const { return {}; }
};

class WorkloadBase : public AppModel {
 public:
  WorkloadBase(std::string name, AppParams p, sim::ThreadAttr attr)
      : name_(std::move(name)), params_(p), attr_(attr), space_(p.app_id) {}

  const std::string& name() const final { return name_; }
  unsigned threads() const final { return params_.threads; }

  std::vector<sim::OpSource*> sources() final {
    ensure_sources();
    if (!armed_) arm();
    std::vector<sim::OpSource*> out;
    out.reserve(pumps_.size());
    for (auto& p : pumps_) out.push_back(p.get());
    return out;
  }

  void restart() final {
    ensure_sources();
    arm();
  }

  const AppParams& params() const { return params_; }
  AddrSpace& space() { return space_; }
  std::size_t footprint_bytes() const final { return space_.bytes_allocated(); }

 protected:
  /// The per-thread trace program.
  virtual TraceGen body(ThreadCtx& ctx, unsigned tid) = 0;
  /// Reset shared per-run state (frontiers, chunk cursors, ...).
  virtual void on_run_start() {}

 private:
  void ensure_sources() {
    if (!pumps_.empty()) return;
    pumps_.reserve(params_.threads);
    for (unsigned t = 0; t < params_.threads; ++t) {
      pumps_.push_back(std::make_unique<CoroSource>(
          [this, t](ThreadCtx& ctx) { return body(ctx, t); }, attr_));
    }
  }
  void arm() {
    on_run_start();
    for (auto& p : pumps_) p->rearm();
    armed_ = true;
  }

  std::string name_;
  AppParams params_;
  sim::ThreadAttr attr_;
  AddrSpace space_;
  std::vector<std::unique_ptr<CoroSource>> pumps_;
  bool armed_ = false;
};

/// Scales a Small-class element count by SizeClass, with a floor.
inline std::size_t scaled_size(std::size_t small_value, SizeClass s,
                               std::size_t floor_value = 1) {
  const auto v = static_cast<std::size_t>(
      static_cast<double>(small_value) * size_factor(s));
  return v < floor_value ? floor_value : v;
}

}  // namespace coperf::wl
