// Per-suite registration hooks (called by register_all_workloads).
#pragma once

namespace coperf::wl {

class Registry;

void register_mini(Registry& r);        // Bandit, Stream (Section III-B)
void register_gemini(Registry& r);      // G-PR, G-BFS, G-BC, G-SSSP, G-CC
void register_powergraph(Registry& r);  // P-PR, P-SSSP, P-CC
void register_cntk(Registry& r);        // CIFAR, MNIST, LSTM, ATIS
void register_parsec(Registry& r);      // blackscholes, freqmine, swaptions, streamcluster
void register_hpc(Registry& r);         // lulesh, IRSmk, AMG2006
void register_spec(Registry& r);        // mcf, fotonik3d, deepsjeng, nab, xalancbmk, cactuBSSN
void register_serve(Registry& r);       // kvserve, lsmserve (latency-critical)

}  // namespace coperf::wl
