// Shared helpers for the two graph-processing engines.
//
// Thread bodies are coroutines that run ahead of simulated time but are
// held back at barriers (see ThreadCtx::EmitBarrier). All shared
// mutable state below is therefore "epoch-tagged": the first thread to
// touch a structure in a new epoch resets it, which is safe because a
// simulated barrier separates epochs in coroutine execution order too.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

namespace coperf::wl::graph {

/// Chunked dynamic work queue over [0, total) -- the Gemini-style
/// work-stealing scheduler. Threads pull chunks as their cores consume
/// trace ops, so faster cores take more chunks (real load balancing).
class EpochCursor {
 public:
  explicit EpochCursor(std::uint32_t chunk = 256) : chunk_(chunk) {}

  void set_total(std::uint32_t total) { total_ = total; }
  void set_chunk(std::uint32_t chunk) { chunk_ = chunk; }

  /// Next chunk [begin, end) for `epoch`, or nullopt when exhausted.
  std::optional<std::pair<std::uint32_t, std::uint32_t>> next(
      std::uint64_t epoch) {
    if (epoch != epoch_) {
      epoch_ = epoch;
      pos_ = 0;
    }
    if (pos_ >= total_) return std::nullopt;
    const std::uint32_t begin = pos_;
    const std::uint32_t end =
        begin + chunk_ < total_ ? begin + chunk_ : total_;
    pos_ = end;
    return std::make_pair(begin, end);
  }

  void reset() {
    epoch_ = kNoEpoch;
    pos_ = 0;
  }

 private:
  static constexpr std::uint64_t kNoEpoch = ~std::uint64_t{0};
  std::uint32_t chunk_;
  std::uint32_t total_ = 0;
  std::uint32_t pos_ = 0;
  std::uint64_t epoch_ = kNoEpoch;
};

/// Epoch-tagged counter (e.g. "labels changed this iteration").
/// Writers add() during epoch k; readers read(k) after the barrier that
/// ends epoch k, i.e. during epoch k+1. Two parity slots keep the
/// previous epoch's value readable while the next accumulates.
class ConvergenceFlag {
 public:
  void add(std::uint64_t epoch, std::uint64_t n = 1) {
    Slot& s = slot_[epoch & 1];
    if (s.epoch != epoch) {
      s.epoch = epoch;
      s.count = 0;
    }
    s.count += n;
  }

  std::uint64_t read(std::uint64_t epoch) const {
    const Slot& s = slot_[epoch & 1];
    return s.epoch == epoch ? s.count : 0;
  }

  void reset() { slot_ = {}; }

 private:
  struct Slot {
    std::uint64_t epoch = ~std::uint64_t{0};
    std::uint64_t count = 0;
  };
  std::array<Slot, 2> slot_{};
};

/// Per-epoch frontier queues: frontier(k) is read during epoch k and
/// frontier(k+1) is appended during epoch k.
class FrontierSet {
 public:
  void reset(std::vector<std::uint32_t> initial) {
    levels_.clear();
    levels_.push_back(std::move(initial));
  }

  const std::vector<std::uint32_t>& frontier(std::size_t epoch) {
    ensure(epoch);
    return levels_[epoch];
  }

  void push(std::size_t epoch, std::uint32_t v) {
    ensure(epoch);
    levels_[epoch].push_back(v);
  }

  std::size_t size(std::size_t epoch) {
    ensure(epoch);
    return levels_[epoch].size();
  }

 private:
  void ensure(std::size_t epoch) {
    // deque, not vector-of-vectors: a coroutine holds a reference to
    // frontier(k) across pushes to frontier(k+1); deque growth keeps
    // existing elements stable.
    while (levels_.size() <= epoch) levels_.emplace_back();
  }
  std::deque<std::vector<std::uint32_t>> levels_;
};

/// Static range partition [begin, end) of [0, n) for thread `tid` of
/// `threads` (used for frontiers and flat arrays).
inline std::pair<std::uint32_t, std::uint32_t> static_range(
    std::uint32_t n, unsigned tid, unsigned threads) {
  const std::uint64_t b = std::uint64_t{n} * tid / threads;
  const std::uint64_t e = std::uint64_t{n} * (tid + 1) / threads;
  return {static_cast<std::uint32_t>(b), static_cast<std::uint32_t>(e)};
}

/// Static vertex range balanced by EDGE count: PowerGraph's loader
/// splits vertices so each worker owns ~m/T edges (otherwise R-MAT's
/// hub skew would starve all but one thread).
inline std::pair<std::uint32_t, std::uint32_t> edge_balanced_range(
    const std::vector<std::uint64_t>& offsets, unsigned tid,
    unsigned threads) {
  const std::uint32_t n = static_cast<std::uint32_t>(offsets.size() - 1);
  const std::uint64_t m = offsets[n];
  const std::uint64_t lo = m * tid / threads;
  const std::uint64_t hi = m * (tid + 1) / threads;
  auto find = [&](std::uint64_t target) {
    return static_cast<std::uint32_t>(
        std::upper_bound(offsets.begin(), offsets.end(), target) -
        offsets.begin() - 1);
  };
  return {find(lo), tid + 1 == threads ? n : find(hi)};
}

}  // namespace coperf::wl::graph
