// Synthetic power-law graph substrate.
//
// The paper runs all graph workloads on the friendster graph (65.6M
// vertices, 1.8B edges). Friendster is not redistributable at this
// scale, so we generate R-MAT graphs (the standard synthetic stand-in
// for skewed social networks) whose degree skew and footprint-to-LLC
// ratio drive the same cache/bandwidth behaviour. Graphs are immutable
// and cached process-wide so the 625-pair sweep does not regenerate
// them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace coperf::wl::graph {

struct Graph {
  std::uint32_t n = 0;  ///< vertex count
  std::uint64_t m = 0;  ///< directed edge count

  // Out-edges (CSR) -- used by push-style phases and scatter.
  std::vector<std::uint64_t> out_offsets;  ///< n+1
  std::vector<std::uint32_t> out_targets;  ///< m

  // In-edges (CSC) -- used by pull-style gathers (Gemini PR, GAS gather).
  std::vector<std::uint64_t> in_offsets;  ///< n+1
  std::vector<std::uint32_t> in_sources;  ///< m

  /// Edge weights aligned with out_targets (1..16, SSSP).
  std::vector<float> weights;

  std::uint32_t out_degree(std::uint32_t v) const {
    return static_cast<std::uint32_t>(out_offsets[v + 1] - out_offsets[v]);
  }
  std::uint32_t in_degree(std::uint32_t v) const {
    return static_cast<std::uint32_t>(in_offsets[v + 1] - in_offsets[v]);
  }

  /// Vertex with the largest out-degree (canonical BFS/SSSP root).
  std::uint32_t max_degree_vertex() const;

  /// Host memory consumed by the adjacency structures.
  std::size_t bytes() const;
};

struct GraphSpec {
  std::uint32_t scale = 16;      ///< n = 2^scale vertices
  std::uint32_t avg_degree = 24; ///< m = n * avg_degree directed edges
  std::uint64_t seed = 42;
  bool symmetric = true;  ///< add reverse edges (connectivity workloads)

  bool operator==(const GraphSpec&) const = default;
};

/// Generates an R-MAT graph (a=0.57 b=0.19 c=0.19 d=0.05).
std::shared_ptr<const Graph> make_rmat(const GraphSpec& spec);

/// Process-wide cache keyed by spec (thread-safe).
std::shared_ptr<const Graph> rmat_cached(const GraphSpec& spec);

// --- host reference algorithms (verification oracles) -----------------

/// BFS hop distances from `root` over out-edges (-1 == unreachable).
std::vector<std::int64_t> host_bfs_levels(const Graph& g, std::uint32_t root);

/// Dijkstra distances from `root` using g.weights (inf == unreachable).
std::vector<double> host_dijkstra(const Graph& g, std::uint32_t root);

/// Connected-component representative per vertex (union-find over the
/// edge list; assumes a symmetric graph).
std::vector<std::uint32_t> host_components(const Graph& g);

/// Reference pull-PageRank: `iters` iterations, damping 0.85.
std::vector<double> host_pagerank(const Graph& g, std::uint32_t iters);

}  // namespace coperf::wl::graph
