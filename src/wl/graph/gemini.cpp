// GeminiGraph workload models (Table I: G-PR, G-BFS, G-BC, G-SSSP, G-CC).
//
// Gemini's performance signature, per the paper: chunk-based
// thread-level work stealing, good locality from chunked partitioning,
// high bandwidth demand (~17-18 GB/s at 4 threads), irregular gathers
// that do not benefit from prefetchers, and strong thread scalability.
// Each model below executes the real algorithm over a real R-MAT graph
// (ranks converge, labels form components, distances match Dijkstra --
// see tests/wl_graph_test.cpp) while emitting its native memory trace.
#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <span>

#include "wl/graph/csr.hpp"
#include "wl/emit.hpp"
#include "wl/graph/engine.hpp"
#include "wl/registry.hpp"
#include "wl/regions.hpp"
#include "wl/sim_array.hpp"
#include "wl/workload.hpp"

namespace coperf::wl {
namespace {

using graph::EpochCursor;
using graph::FrontierSet;
using graph::Graph;
using graph::GraphSpec;
using sim::Addr;
using sim::Dep;

GraphSpec spec_for(SizeClass s) {
  switch (s) {
    case SizeClass::Tiny: return GraphSpec{14, 16, 42, true};
    case SizeClass::Small: return GraphSpec{17, 24, 42, true};
    case SizeClass::Native: return GraphSpec{19, 24, 42, true};
  }
  return GraphSpec{};
}

/// Common plumbing: shared graph, simulated views of the adjacency
/// arrays, and the work-stealing cursor.
class GeminiBase : public WorkloadBase {
 protected:
  GeminiBase(std::string name, const AppParams& p)
      : WorkloadBase(std::move(name), p, sim::ThreadAttr{0.55, 10}),
        g_(graph::rmat_cached(spec_for(p.size))),
        in_off_(space(), std::span{g_->in_offsets}),
        in_src_(space(), std::span{g_->in_sources}),
        out_off_(space(), std::span{g_->out_offsets}),
        out_tgt_(space(), std::span{g_->out_targets}),
        weights_(space(), std::span{g_->weights}) {
    cursor_.set_chunk(256);
  }

  // Synthetic PC ids (per load site; feeds the IP prefetcher + VTune model).
  static constexpr std::uint16_t kPcOffsets = 101;
  static constexpr std::uint16_t kPcEdges = 102;
  static constexpr std::uint16_t kPcGather = 103;
  static constexpr std::uint16_t kPcState = 104;
  static constexpr std::uint16_t kPcFrontier = 105;
  static constexpr std::uint16_t kPcWeights = 106;

  std::shared_ptr<const Graph> g_;
  SimView<std::uint64_t> in_off_;
  SimView<std::uint32_t> in_src_;
  SimView<std::uint64_t> out_off_;
  SimView<std::uint32_t> out_tgt_;
  SimView<float> weights_;
  EpochCursor cursor_;
};

// =====================================================================
// G-PR: pull-mode PageRank (the paper's Fig. 9 kernel, pagerank.c L63-70)
// =====================================================================
class GPageRank final : public GeminiBase {
 public:
  explicit GPageRank(const AppParams& p)
      : GeminiBase("G-PR", p),
        iters_(p.size == SizeClass::Tiny ? 2 : 3),
        scaled_(space(), g_->n, Cell<double>{}),
        acc_(space(), g_->n, 0.0),
        rank_(space(), g_->n, 0.0),
        rgn_edge_(region_id("G-PR/edge_loop(L65)")),
        rgn_apply_(region_id("G-PR/apply")) {}

  /// Final PageRank values (verification hook).
  const SimArray<double>& ranks() const { return rank_; }

  std::string verify() const override {
    const auto ref = graph::host_pagerank(*g_, iters_);
    double sum = 0.0;
    for (std::uint32_t v = 0; v < g_->n; ++v) {
      if (std::abs(rank_[v] - ref[v]) > 1e-9 * (1.0 + std::abs(ref[v])))
        return "G-PR: rank[" + std::to_string(v) + "] diverges from reference";
      sum += rank_[v];
    }
    if (sum <= 0.1 || sum > 1.0 + 1e-6)
      return "G-PR: rank mass " + std::to_string(sum) + " out of range";
    return {};
  }

 protected:
  void on_run_start() override {
    cursor_.set_total(g_->n);
    cursor_.reset();
    const double init = 1.0 / g_->n;
    for (std::uint32_t v = 0; v < g_->n; ++v) {
      rank_[v] = init;
      const auto deg = g_->out_degree(v);
      scaled_[v].v = deg > 0 ? init / deg : 0.0;
      acc_[v] = 0.0;
    }
  }

  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    (void)tid;
    const Graph& g = *g_;
    const double base = 0.15 / g.n;
    for (std::uint32_t iter = 0; iter < iters_; ++iter) {
      const std::uint64_t epoch = 2ull * iter;
      // ---- edge phase: acc[dst] = sum over in-edges of scaled[src] ----
      co_await ctx.region(rgn_edge_);
      LineTracker off_line, edge_line;
      while (auto chunk = cursor_.next(epoch)) {
        for (std::uint32_t dst = chunk->first; dst < chunk->second; ++dst) {
          if (off_line.touch(in_off_.addr_of(dst)))
            co_await ctx.load(in_off_.addr_of(dst), kPcOffsets);
          const std::uint64_t beg = g.in_offsets[dst];
          const std::uint64_t end = g.in_offsets[dst + 1];
          double sum = 0.0;
          for (std::uint64_t k = beg; k < end; ++k) {
            if (edge_line.touch(in_src_.addr_of(k)))
              co_await ctx.load(in_src_.addr_of(k), kPcEdges);
            const std::uint32_t src = g.in_sources[k];
            co_await ctx.load(scaled_.addr_of(src), kPcGather);
            sum += scaled_[src].v;
          }
          acc_[dst] = sum;
          // FMA + emit() bookkeeping per in-edge (Gemini's sparse_slot
          // signal path costs several uops per edge).
          co_await ctx.compute(2 + 2 * static_cast<std::uint32_t>(end - beg));
          co_await ctx.store(acc_.addr_of(dst), kPcState);
        }
      }
      co_await ctx.barrier();

      // ---- apply phase: rank = base + d*acc; rescale by out-degree ----
      co_await ctx.region(rgn_apply_);
      constexpr std::uint32_t kBlock = 8;  // one cache line of doubles
      while (auto chunk = cursor_.next(epoch + 1)) {
        for (std::uint32_t v0 = chunk->first; v0 < chunk->second; v0 += kBlock) {
          const std::uint32_t v1 = std::min(v0 + kBlock, chunk->second);
          co_await ctx.load(acc_.addr_of(v0), kPcState);
          co_await ctx.load(out_off_.addr_of(v0), kPcOffsets);
          for (std::uint32_t v = v0; v < v1; ++v) {
            rank_[v] = base + 0.85 * acc_[v];
            const auto deg = g.out_degree(v);
            scaled_[v].v = deg > 0 ? rank_[v] / deg : 0.0;
          }
          co_await ctx.compute(3 * (v1 - v0));
          co_await ctx.store(rank_.addr_of(v0), kPcState);
          for (std::uint32_t v = v0; v < v1; v += 2)  // 2 cells per line
            co_await ctx.store(scaled_.addr_of(v), kPcState);
        }
      }
      co_await ctx.barrier();
    }
  }

 private:
  std::uint32_t iters_;
  SimArray<Cell<double>> scaled_;
  SimArray<double> acc_, rank_;
  std::uint32_t rgn_edge_, rgn_apply_;
};

// =====================================================================
// G-CC: push-mode label-propagation connected components (cc.cpp L64)
// =====================================================================
class GConnectedComponents final : public GeminiBase {
 public:
  explicit GConnectedComponents(const AppParams& p)
      : GeminiBase("G-CC", p),
        labels_(space(), g_->n, Cell<std::uint32_t>{}),
        active_(space(), g_->n, std::uint8_t{0}),
        next_active_(space(), g_->n, std::uint8_t{0}),
        rgn_edge_(region_id("G-CC/edge_loop(L64)")) {}

  const SimArray<Cell<std::uint32_t>>& labels() const { return labels_; }

  std::string verify() const override {
    const auto comp = graph::host_components(*g_);
    for (std::uint32_t v = 0; v < g_->n; ++v)
      if (labels_[v].v != comp[v])
        return "G-CC: label[" + std::to_string(v) +
               "] != union-find representative";
    return {};
  }

 protected:
  void on_run_start() override {
    cursor_.set_total(g_->n);
    cursor_.reset();
    changed_.reset();
    for (std::uint32_t v = 0; v < g_->n; ++v) {
      labels_[v].v = v;
      active_[v] = 1;
      next_active_[v] = 0;
    }
  }

  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    (void)tid;
    const Graph& g = *g_;
    constexpr std::uint64_t kMaxEpochs = 64;
    co_await ctx.region(rgn_edge_);
    for (std::uint64_t epoch = 0; epoch < kMaxEpochs; ++epoch) {
      auto& cur = (epoch & 1) ? next_active_ : active_;
      auto& nxt = (epoch & 1) ? active_ : next_active_;
      LineTracker flag_line, off_line, edge_line;
      while (auto chunk = cursor_.next(epoch)) {
        for (std::uint32_t src = chunk->first; src < chunk->second; ++src) {
          if (flag_line.touch(cur.addr_of(src)))
            co_await ctx.load(cur.addr_of(src), kPcFrontier);
          if (!cur[src]) continue;
          cur[src] = 0;  // consume activation
          if (off_line.touch(out_off_.addr_of(src)))
            co_await ctx.load(out_off_.addr_of(src), kPcOffsets);
          const std::uint64_t beg = g.out_offsets[src];
          const std::uint64_t end = g.out_offsets[src + 1];
          co_await ctx.load(labels_.addr_of(src), kPcState);
          const std::uint32_t lab = labels_[src].v;
          for (std::uint64_t k = beg; k < end; ++k) {
            if (edge_line.touch(out_tgt_.addr_of(k)))
              co_await ctx.load(out_tgt_.addr_of(k), kPcEdges);
            const std::uint32_t dst = g.out_targets[k];
            co_await ctx.load(labels_.addr_of(dst), kPcGather);
            if (lab < labels_[dst].v) {
              labels_[dst].v = lab;
              co_await ctx.store(labels_.addr_of(dst), kPcGather);
              if (!nxt[dst]) {
                nxt[dst] = 1;
                co_await ctx.store(nxt.addr_of(dst), kPcFrontier);
                changed_.add(epoch);
              }
            }
          }
          co_await ctx.compute(2 + 2 * static_cast<std::uint32_t>(end - beg));
        }
      }
      co_await ctx.barrier();
      if (changed_.read(epoch) == 0) break;
    }
  }

 private:
  SimArray<Cell<std::uint32_t>> labels_;
  SimArray<std::uint8_t> active_, next_active_;
  graph::ConvergenceFlag changed_;
  std::uint32_t rgn_edge_;
};

// =====================================================================
// G-BFS: frontier breadth-first search (bfs.cpp L53)
// =====================================================================
class GBfs final : public GeminiBase {
 public:
  explicit GBfs(const AppParams& p)
      : GeminiBase("G-BFS", p),
        visited_(space(), g_->n, std::uint8_t{0}),
        frontier_store_(space(), g_->n, 0u),
        rgn_expand_(region_id("G-BFS/expand(L53)")) {}

  std::uint64_t visited_count() const {
    std::uint64_t c = 0;
    for (std::uint32_t v = 0; v < g_->n; ++v) c += visited_[v] != 0;
    return c;
  }

  std::string verify() const override {
    const auto ref = graph::host_bfs_levels(*g_, g_->max_degree_vertex());
    for (std::uint32_t v = 0; v < g_->n; ++v) {
      const bool reachable = ref[v] >= 0;
      if (reachable != (visited_[v] != 0))
        return "G-BFS: visited[" + std::to_string(v) +
               "] disagrees with host BFS";
    }
    return {};
  }

 protected:
  void on_run_start() override {
    cursor_.reset();
    visited_.fill(0);
    const std::uint32_t root = g_->max_degree_vertex();
    visited_[root] = 1;
    frontiers_.reset({root});
  }

  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    (void)tid;
    const Graph& g = *g_;
    constexpr std::uint64_t kMaxEpochs = 256;
    co_await ctx.region(rgn_expand_);
    for (std::uint64_t epoch = 0; epoch < kMaxEpochs; ++epoch) {
      const auto& frontier = frontiers_.frontier(epoch);
      if (frontier.empty()) break;
      cursor_.set_total(static_cast<std::uint32_t>(frontier.size()));
      LineTracker frontier_line, off_line, edge_line;
      while (auto chunk = cursor_.next(epoch)) {
        for (std::uint32_t i = chunk->first; i < chunk->second; ++i) {
          if (frontier_line.touch(frontier_store_.addr_of(i)))
            co_await ctx.load(frontier_store_.addr_of(i), kPcFrontier);
          const std::uint32_t u = frontier[i];
          if (off_line.touch(out_off_.addr_of(u)))
            co_await ctx.load(out_off_.addr_of(u), kPcOffsets);
          const std::uint64_t beg = g.out_offsets[u];
          const std::uint64_t end = g.out_offsets[u + 1];
          for (std::uint64_t k = beg; k < end; ++k) {
            if (edge_line.touch(out_tgt_.addr_of(k)))
              co_await ctx.load(out_tgt_.addr_of(k), kPcEdges);
            const std::uint32_t v = g.out_targets[k];
            co_await ctx.load(visited_.addr_of(v), kPcGather);
            if (!visited_[v]) {
              visited_[v] = 1;
              co_await ctx.store(visited_.addr_of(v), kPcGather);
              frontiers_.push(epoch + 1, v);
            }
          }
          co_await ctx.compute(2 + static_cast<std::uint32_t>(end - beg));
        }
      }
      co_await ctx.barrier();
    }
  }

 private:
  SimArray<std::uint8_t> visited_;
  /// Simulated backing for frontier reads (content lives in frontiers_).
  SimArray<std::uint32_t> frontier_store_;
  FrontierSet frontiers_;
  std::uint32_t rgn_expand_;
};

// =====================================================================
// G-BC: Brandes betweenness centrality, one source (bc.cpp L76)
// =====================================================================
class GBetweenness final : public GeminiBase {
 public:
  explicit GBetweenness(const AppParams& p)
      : GeminiBase("G-BC", p),
        level_(space(), g_->n, -1),
        sigma_(space(), g_->n, 0.0),
        delta_(space(), g_->n, 0.0),
        frontier_store_(space(), g_->n, 0u),
        rgn_fwd_(region_id("G-BC/forward")),
        rgn_bwd_(region_id("G-BC/backward(L76)")) {}

  const SimArray<double>& deltas() const { return delta_; }
  const SimArray<std::int32_t>& levels() const { return level_; }

  std::string verify() const override {
    const auto ref = graph::host_bfs_levels(*g_, g_->max_degree_vertex());
    for (std::uint32_t v = 0; v < g_->n; ++v) {
      if (ref[v] != static_cast<std::int64_t>(level_[v]))
        return "G-BC: level[" + std::to_string(v) + "] != host BFS level";
      if (!(delta_[v] >= 0.0) || !std::isfinite(delta_[v]))
        return "G-BC: delta[" + std::to_string(v) + "] not finite/non-negative";
    }
    return {};
  }

 protected:
  void on_run_start() override {
    cursor_.reset();
    level_.fill(-1);
    sigma_.fill(0.0);
    delta_.fill(0.0);
    const std::uint32_t root = g_->max_degree_vertex();
    level_[root] = 0;
    sigma_[root] = 1.0;
    frontiers_.reset({root});
    num_levels_ = 0;
  }

  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    (void)tid;
    const Graph& g = *g_;
    constexpr std::uint64_t kMaxLevels = 256;

    // ---- forward sweep: BFS levels + shortest-path counts ----
    co_await ctx.region(rgn_fwd_);
    std::uint64_t lvl = 0;
    for (; lvl < kMaxLevels; ++lvl) {
      const auto& frontier = frontiers_.frontier(lvl);
      if (frontier.empty()) break;
      cursor_.set_total(static_cast<std::uint32_t>(frontier.size()));
      LineTracker frontier_line, off_line, edge_line;
      while (auto chunk = cursor_.next(lvl)) {
        for (std::uint32_t i = chunk->first; i < chunk->second; ++i) {
          if (frontier_line.touch(frontier_store_.addr_of(i)))
            co_await ctx.load(frontier_store_.addr_of(i), kPcFrontier);
          const std::uint32_t u = frontier[i];
          if (off_line.touch(out_off_.addr_of(u)))
            co_await ctx.load(out_off_.addr_of(u), kPcOffsets);
          const std::uint64_t beg = g.out_offsets[u];
          const std::uint64_t end = g.out_offsets[u + 1];
          for (std::uint64_t k = beg; k < end; ++k) {
            if (edge_line.touch(out_tgt_.addr_of(k)))
              co_await ctx.load(out_tgt_.addr_of(k), kPcEdges);
            const std::uint32_t v = g.out_targets[k];
            co_await ctx.load(level_.addr_of(v), kPcGather);
            if (level_[v] < 0) {
              level_[v] = static_cast<std::int32_t>(lvl + 1);
              sigma_[v] = sigma_[u];
              co_await ctx.store(level_.addr_of(v), kPcGather);
              co_await ctx.store(sigma_.addr_of(v), kPcState);
              frontiers_.push(lvl + 1, v);
            } else if (level_[v] == static_cast<std::int32_t>(lvl + 1)) {
              sigma_[v] += sigma_[u];
              co_await ctx.store(sigma_.addr_of(v), kPcState);
            }
          }
          co_await ctx.compute(2 + static_cast<std::uint32_t>(end - beg));
        }
      }
      co_await ctx.barrier();
    }
    num_levels_ = lvl;  // every thread computes the same value

    // ---- backward sweep: dependency accumulation ----
    co_await ctx.region(rgn_bwd_);
    for (std::uint64_t bi = 0; bi < num_levels_; ++bi) {
      const std::uint64_t l = num_levels_ - 1 - bi;  // levels high -> low
      const auto& frontier = frontiers_.frontier(l);
      cursor_.set_total(static_cast<std::uint32_t>(frontier.size()));
      LineTracker frontier_line, off_line, edge_line;
      while (auto chunk = cursor_.next(kMaxLevels + bi)) {
        for (std::uint32_t i = chunk->first; i < chunk->second; ++i) {
          if (frontier_line.touch(frontier_store_.addr_of(i)))
            co_await ctx.load(frontier_store_.addr_of(i), kPcFrontier);
          const std::uint32_t u = frontier[i];
          if (off_line.touch(out_off_.addr_of(u)))
            co_await ctx.load(out_off_.addr_of(u), kPcOffsets);
          const std::uint64_t beg = g.out_offsets[u];
          const std::uint64_t end = g.out_offsets[u + 1];
          double acc = 0.0;
          for (std::uint64_t k = beg; k < end; ++k) {
            if (edge_line.touch(out_tgt_.addr_of(k)))
              co_await ctx.load(out_tgt_.addr_of(k), kPcEdges);
            const std::uint32_t v = g.out_targets[k];
            co_await ctx.load(level_.addr_of(v), kPcGather);
            if (level_[v] == static_cast<std::int32_t>(l + 1) && sigma_[v] > 0) {
              co_await ctx.load(sigma_.addr_of(v), kPcState);
              co_await ctx.load(delta_.addr_of(v), kPcState);
              acc += sigma_[u] / sigma_[v] * (1.0 + delta_[v]);
            }
          }
          delta_[u] += acc;
          co_await ctx.compute(4 + 2 * static_cast<std::uint32_t>(end - beg));
          co_await ctx.store(delta_.addr_of(u), kPcState);
        }
      }
      co_await ctx.barrier();
    }
  }

 private:
  SimArray<std::int32_t> level_;
  SimArray<double> sigma_, delta_;
  SimArray<std::uint32_t> frontier_store_;
  FrontierSet frontiers_;
  std::uint64_t num_levels_ = 0;
  std::uint32_t rgn_fwd_, rgn_bwd_;
};

// =====================================================================
// G-SSSP: active-set Bellman-Ford with real weights (sssp.cpp L65)
// =====================================================================
class GSssp final : public GeminiBase {
 public:
  explicit GSssp(const AppParams& p)
      : GeminiBase("G-SSSP", p),
        dist_(space(), g_->n,
              Cell<float>{std::numeric_limits<float>::infinity(), {}}),
        in_next_(space(), g_->n, std::uint8_t{0}),
        frontier_store_(space(), g_->n, 0u),
        rgn_relax_(region_id("G-SSSP/relax(L65)")) {}

  const SimArray<Cell<float>>& dist() const { return dist_; }
  std::uint32_t root() const { return g_->max_degree_vertex(); }

  std::string verify() const override {
    const auto ref = graph::host_dijkstra(*g_, g_->max_degree_vertex());
    for (std::uint32_t v = 0; v < g_->n; ++v) {
      const bool ref_inf = std::isinf(ref[v]);
      const bool got_inf = std::isinf(dist_[v].v);
      if (ref_inf != got_inf)
        return "G-SSSP: reachability of " + std::to_string(v) + " differs";
      if (!ref_inf &&
          std::abs(dist_[v].v - ref[v]) > 1e-3 * (1.0 + std::abs(ref[v])))
        return "G-SSSP: dist[" + std::to_string(v) + "]=" +
               std::to_string(dist_[v].v) + " != Dijkstra " +
               std::to_string(ref[v]);
    }
    return {};
  }

 protected:
  void on_run_start() override {
    cursor_.reset();
    dist_.fill(Cell<float>{std::numeric_limits<float>::infinity(), {}});
    in_next_.fill(0);
    const std::uint32_t r = g_->max_degree_vertex();
    dist_[r].v = 0.0f;
    frontiers_.reset({r});
  }

  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    (void)tid;
    const Graph& g = *g_;
    constexpr std::uint64_t kMaxEpochs = 512;
    co_await ctx.region(rgn_relax_);
    for (std::uint64_t epoch = 0; epoch < kMaxEpochs; ++epoch) {
      const auto& frontier = frontiers_.frontier(epoch);
      if (frontier.empty()) break;
      cursor_.set_total(static_cast<std::uint32_t>(frontier.size()));
      LineTracker frontier_line, off_line, edge_line, weight_line;
      while (auto chunk = cursor_.next(epoch)) {
        for (std::uint32_t i = chunk->first; i < chunk->second; ++i) {
          if (frontier_line.touch(frontier_store_.addr_of(i)))
            co_await ctx.load(frontier_store_.addr_of(i), kPcFrontier);
          const std::uint32_t u = frontier[i];
          in_next_[u] = 0;
          if (off_line.touch(out_off_.addr_of(u)))
            co_await ctx.load(out_off_.addr_of(u), kPcOffsets);
          const std::uint64_t beg = g.out_offsets[u];
          const std::uint64_t end = g.out_offsets[u + 1];
          co_await ctx.load(dist_.addr_of(u), kPcState);
          const float du = dist_[u].v;
          for (std::uint64_t k = beg; k < end; ++k) {
            if (edge_line.touch(out_tgt_.addr_of(k)))
              co_await ctx.load(out_tgt_.addr_of(k), kPcEdges);
            if (weight_line.touch(weights_.addr_of(k)))
              co_await ctx.load(weights_.addr_of(k), kPcWeights);
            const std::uint32_t v = g.out_targets[k];
            const float cand = du + g.weights[k];
            co_await ctx.load(dist_.addr_of(v), kPcGather);
            if (cand < dist_[v].v) {
              dist_[v].v = cand;
              co_await ctx.store(dist_.addr_of(v), kPcGather);
              if (!in_next_[v]) {
                in_next_[v] = 1;
                co_await ctx.store(in_next_.addr_of(v), kPcFrontier);
                frontiers_.push(epoch + 1, v);
              }
            }
          }
          co_await ctx.compute(3 + 2 * static_cast<std::uint32_t>(end - beg));
        }
      }
      co_await ctx.barrier();
    }
  }

 private:
  SimArray<Cell<float>> dist_;
  SimArray<std::uint8_t> in_next_;
  SimArray<std::uint32_t> frontier_store_;
  FrontierSet frontiers_;
  std::uint32_t rgn_relax_;
};

}  // namespace

void register_gemini(Registry& r) {
  r.add({"G-PR", "GeminiGraph", "pull-mode PageRank over R-MAT", false,
         [](const AppParams& p) { return std::make_unique<GPageRank>(p); }});
  r.add({"G-BFS", "GeminiGraph", "frontier BFS over R-MAT", false,
         [](const AppParams& p) { return std::make_unique<GBfs>(p); }});
  r.add({"G-BC", "GeminiGraph", "Brandes betweenness centrality", false,
         [](const AppParams& p) { return std::make_unique<GBetweenness>(p); }});
  r.add({"G-SSSP", "GeminiGraph", "active-set Bellman-Ford SSSP", false,
         [](const AppParams& p) { return std::make_unique<GSssp>(p); }});
  r.add({"G-CC", "GeminiGraph", "label-propagation connected components", false,
         [](const AppParams& p) {
           return std::make_unique<GConnectedComponents>(p);
         }});
}

}  // namespace coperf::wl
