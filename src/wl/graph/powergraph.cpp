// PowerGraph workload models (Table I: P-PR, P-SSSP, P-CC).
//
// PowerGraph's signature vs. Gemini, per the paper: the classic
// gather-apply-scatter (GAS) execution model with a vertex-program
// indirection on every edge, static partitioning (so R-MAT's skew
// creates real load imbalance), more engine overhead per edge (lower
// bandwidth, higher CPI, longer runtimes), and -- for P-SSSP -- the
// degenerate identical-weight configuration whose serialized
// bookkeeping caps scalability below 2x (Section IV-A).
//
// The hot `gather` region of P-PR (pagerank.c L63-66, the paper's
// Fig. 10 / Table IV subject) is tagged for the region profiler.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>

#include "wl/graph/csr.hpp"
#include "wl/emit.hpp"
#include "wl/graph/engine.hpp"
#include "wl/registry.hpp"
#include "wl/regions.hpp"
#include "wl/sim_array.hpp"
#include "wl/workload.hpp"

namespace coperf::wl {
namespace {

using graph::FrontierSet;
using graph::Graph;
using graph::GraphSpec;
using graph::edge_balanced_range;
using graph::static_range;
using sim::Addr;
using sim::Dep;

GraphSpec pg_spec_for(SizeClass s) {
  switch (s) {
    case SizeClass::Tiny: return GraphSpec{14, 16, 42, true};
    case SizeClass::Small: return GraphSpec{17, 24, 42, true};
    case SizeClass::Native: return GraphSpec{19, 24, 42, true};
  }
  return GraphSpec{};
}

/// PowerGraph's in-memory edge record (src, dst, data): 16 bytes, so a
/// cache line covers 4 edges (vs. 16 for Gemini's compact 4-byte CSR
/// entries) -- one reason PowerGraph moves fewer useful bytes per line.
struct EdgeRec {
  std::uint32_t src, dst;
  double data;
};
static_assert(sizeof(EdgeRec) == 16);

/// Vertex record touched by every gather (data + num_out_edges + meta).
struct VertexRec {
  double data;
  std::uint32_t num_out_edges;
  std::uint32_t flags;
  double cache[2];
};
static_assert(sizeof(VertexRec) == 32);

class PowerGraphBase : public WorkloadBase {
 protected:
  PowerGraphBase(std::string name, const AppParams& p)
      : WorkloadBase(std::move(name), p, sim::ThreadAttr{0.7, 8}),
        g_(graph::rmat_cached(pg_spec_for(p.size))),
        in_off_(space(), std::span{g_->in_offsets}),
        in_src_(space(), std::span{g_->in_sources}),
        out_off_(space(), std::span{g_->out_offsets}),
        out_tgt_(space(), std::span{g_->out_targets}),
        in_edges_(space(), g_->m),
        vrec_(space(), g_->n) {}

  static constexpr std::uint16_t kPcOffsets = 201;
  static constexpr std::uint16_t kPcEdgeRec = 202;
  static constexpr std::uint16_t kPcVertexRec = 203;
  static constexpr std::uint16_t kPcState = 204;
  static constexpr std::uint16_t kPcFrontier = 205;

  std::shared_ptr<const Graph> g_;
  SimView<std::uint64_t> in_off_;
  SimView<std::uint32_t> in_src_;
  SimView<std::uint64_t> out_off_;
  SimView<std::uint32_t> out_tgt_;
  GhostArray<EdgeRec> in_edges_;  ///< engine edge storage, in-edge order
  GhostArray<VertexRec> vrec_;    ///< per-vertex engine record
};

// =====================================================================
// P-PR: GAS PageRank; gather is pagerank.c L63-66 (Fig. 10, Table IV)
// =====================================================================
class PPageRank final : public PowerGraphBase {
 public:
  explicit PPageRank(const AppParams& p)
      : PowerGraphBase("P-PR", p),
        iters_(p.size == SizeClass::Tiny ? 2 : 2),
        scaled_(space(), g_->n, 0.0),
        acc_(space(), g_->n, 0.0),
        rank_(space(), g_->n, 0.0),
        rgn_gather_(region_id("P-PR/gather(pagerank.c:63-66)")),
        rgn_apply_(region_id("P-PR/apply")),
        rgn_scatter_(region_id("P-PR/scatter")) {}

  const SimArray<double>& ranks() const { return rank_; }

  std::string verify() const override {
    const auto ref = graph::host_pagerank(*g_, iters_);
    for (std::uint32_t v = 0; v < g_->n; ++v)
      if (std::abs(rank_[v] - ref[v]) > 1e-9 * (1.0 + std::abs(ref[v])))
        return "P-PR: rank[" + std::to_string(v) + "] diverges from reference";
    return {};
  }

 protected:
  void on_run_start() override {
    const double init = 1.0 / g_->n;
    for (std::uint32_t v = 0; v < g_->n; ++v) {
      rank_[v] = init;
      const auto deg = g_->out_degree(v);
      scaled_[v] = deg > 0 ? init / deg : 0.0;
      acc_[v] = 0.0;
    }
  }

  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    const Graph& g = *g_;
    const auto [vbeg, vend] = edge_balanced_range(g.in_offsets, tid, threads());
    const double base = 0.15 / g.n;
    for (std::uint32_t iter = 0; iter < iters_; ++iter) {
      // ---- gather: per owned dst, fold over in-edges --------------
      // return (edge.source().data() / edge.source().num_out_edges());
      co_await ctx.region(rgn_gather_);
      LineTracker off_line, edge_line;
      for (std::uint32_t dst = vbeg; dst < vend; ++dst) {
        if (off_line.touch(in_off_.addr_of(dst)))
          co_await ctx.load(in_off_.addr_of(dst), kPcOffsets);
        const std::uint64_t beg = g.in_offsets[dst];
        const std::uint64_t end = g.in_offsets[dst + 1];
        double sum = 0.0;
        for (std::uint64_t k = beg; k < end; ++k) {
          if (edge_line.touch(in_edges_.addr_of(k)))
            co_await ctx.load(in_edges_.addr_of(k), kPcEdgeRec);
          const std::uint32_t src = g.in_sources[k];
          // The vertex-program indirection: edge.source() -> record.
          co_await ctx.load(vrec_.addr_of(src), kPcVertexRec);
          sum += scaled_[src];
          // Vertex-program invocation + FP divide overhead per edge.
          co_await ctx.compute(6);
        }
        acc_[dst] = sum;
        co_await ctx.store(acc_.addr_of(dst), kPcState);
      }
      co_await ctx.barrier();

      // ---- apply: rank update on owned vertices --------------------
      co_await ctx.region(rgn_apply_);
      constexpr std::uint32_t kBlock = 8;
      for (std::uint32_t v0 = vbeg; v0 < vend; v0 += kBlock) {
        const std::uint32_t v1 = std::min(v0 + kBlock, vend);
        co_await ctx.load(acc_.addr_of(v0), kPcState);
        for (std::uint32_t v = v0; v < v1; ++v) {
          rank_[v] = base + 0.85 * acc_[v];
          const auto deg = g.out_degree(v);
          scaled_[v] = deg > 0 ? rank_[v] / deg : 0.0;
        }
        co_await ctx.compute(10 * (v1 - v0));  // vertex-program apply()
        co_await ctx.store(rank_.addr_of(v0), kPcState);
        co_await ctx.store(scaled_.addr_of(v0), kPcState);
        co_await ctx.store(vrec_.addr_of(v0), kPcVertexRec);
      }
      co_await ctx.barrier();

      // ---- scatter: reactivate out-neighbours (all-active PR) -------
      co_await ctx.region(rgn_scatter_);
      LineTracker scat_line;
      for (std::uint32_t v = vbeg; v < vend; ++v) {
        if (scat_line.touch(out_off_.addr_of(v)))
          co_await ctx.load(out_off_.addr_of(v), kPcOffsets);
        co_await ctx.compute(3);
      }
      co_await ctx.barrier();
    }
  }

 private:
  std::uint32_t iters_;
  SimArray<double> scaled_, acc_, rank_;
  std::uint32_t rgn_gather_, rgn_apply_, rgn_scatter_;
};

// =====================================================================
// P-CC: GAS label propagation with active supersteps
// =====================================================================
class PConnectedComponents final : public PowerGraphBase {
 public:
  explicit PConnectedComponents(const AppParams& p)
      : PowerGraphBase("P-CC", p),
        labels_(space(), g_->n, Cell<std::uint32_t>{}),
        active_(space(), g_->n, std::uint8_t{0}),
        next_active_(space(), g_->n, std::uint8_t{0}),
        rgn_gather_(region_id("P-CC/gather")) {}

  const SimArray<Cell<std::uint32_t>>& labels() const { return labels_; }

  std::string verify() const override {
    const auto comp = graph::host_components(*g_);
    for (std::uint32_t v = 0; v < g_->n; ++v)
      if (labels_[v].v != comp[v])
        return "P-CC: label[" + std::to_string(v) +
               "] != union-find representative";
    return {};
  }

 protected:
  void on_run_start() override {
    changed_.reset();
    for (std::uint32_t v = 0; v < g_->n; ++v) {
      labels_[v].v = v;
      active_[v] = 1;
      next_active_[v] = 0;
    }
  }

  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    const Graph& g = *g_;
    const auto [vbeg, vend] = edge_balanced_range(g.in_offsets, tid, threads());
    constexpr std::uint64_t kMaxEpochs = 64;
    co_await ctx.region(rgn_gather_);
    for (std::uint64_t epoch = 0; epoch < kMaxEpochs; ++epoch) {
      auto& cur = (epoch & 1) ? next_active_ : active_;
      auto& nxt = (epoch & 1) ? active_ : next_active_;
      LineTracker flag_line, off_line, edge_line;
      for (std::uint32_t dst = vbeg; dst < vend; ++dst) {
        if (flag_line.touch(cur.addr_of(dst)))
          co_await ctx.load(cur.addr_of(dst), kPcFrontier);
        if (!cur[dst]) continue;
        cur[dst] = 0;
        if (off_line.touch(in_off_.addr_of(dst)))
          co_await ctx.load(in_off_.addr_of(dst), kPcOffsets);
        const std::uint64_t beg = g.in_offsets[dst];
        const std::uint64_t end = g.in_offsets[dst + 1];
        co_await ctx.load(labels_.addr_of(dst), kPcState);
        std::uint32_t lab = labels_[dst].v;
        for (std::uint64_t k = beg; k < end; ++k) {
          if (edge_line.touch(in_edges_.addr_of(k)))
            co_await ctx.load(in_edges_.addr_of(k), kPcEdgeRec);
          const std::uint32_t src = g.in_sources[k];
          co_await ctx.load(labels_.addr_of(src), kPcVertexRec);
          lab = std::min(lab, labels_[src].v);
          co_await ctx.compute(4);  // vertex-program gather per edge
        }
        if (lab < labels_[dst].v) {
          labels_[dst].v = lab;
          co_await ctx.store(labels_.addr_of(dst), kPcState);
          // Scatter: wake out-neighbours whose label may now improve.
          LineTracker so_line, st_line;
          const std::uint64_t obeg = g.out_offsets[dst];
          const std::uint64_t oend = g.out_offsets[dst + 1];
          if (so_line.touch(out_off_.addr_of(dst)))
            co_await ctx.load(out_off_.addr_of(dst), kPcOffsets);
          for (std::uint64_t k = obeg; k < oend; ++k) {
            if (st_line.touch(out_tgt_.addr_of(k)))
              co_await ctx.load(out_tgt_.addr_of(k), kPcEdgeRec);
            const std::uint32_t w = g.out_targets[k];
            if (!nxt[w]) {
              nxt[w] = 1;
              co_await ctx.store(nxt.addr_of(w), kPcFrontier);
              changed_.add(epoch);
            }
          }
        }
      }
      co_await ctx.barrier();
      if (changed_.read(epoch) == 0) break;
    }
  }

 private:
  SimArray<Cell<std::uint32_t>> labels_;
  SimArray<std::uint8_t> active_, next_active_;
  graph::ConvergenceFlag changed_;
  std::uint32_t rgn_gather_;
};

// =====================================================================
// P-SSSP: identical-weight SSSP whose serialized bookkeeping caps
// scalability below 2x (the paper's Section IV-A observation)
// =====================================================================
class PSssp final : public PowerGraphBase {
 public:
  explicit PSssp(const AppParams& p)
      : PowerGraphBase("P-SSSP", p),
        dist_(space(), g_->n, std::numeric_limits<std::uint32_t>::max()),
        in_next_(space(), g_->n, std::uint8_t{0}),
        frontier_store_(space(), g_->n, 0u),
        rgn_gather_(region_id("P-SSSP/gather")),
        rgn_serial_(region_id("P-SSSP/serial_apply")) {}

  const SimArray<std::uint32_t>& dist() const { return dist_; }
  std::uint32_t root() const { return g_->max_degree_vertex(); }

  std::string verify() const override {
    const auto ref = graph::host_bfs_levels(*g_, g_->max_degree_vertex());
    for (std::uint32_t v = 0; v < g_->n; ++v) {
      const bool unreachable = ref[v] < 0;
      const bool got_unreachable =
          dist_[v] == std::numeric_limits<std::uint32_t>::max();
      if (unreachable != got_unreachable)
        return "P-SSSP: reachability of " + std::to_string(v) + " differs";
      if (!unreachable && dist_[v] != static_cast<std::uint32_t>(ref[v]))
        return "P-SSSP: dist[" + std::to_string(v) + "] != BFS level";
    }
    return {};
  }

 protected:
  void on_run_start() override {
    dist_.fill(std::numeric_limits<std::uint32_t>::max());
    in_next_.fill(0);
    const std::uint32_t r = g_->max_degree_vertex();
    dist_[r] = 0;
    frontiers_.reset({r});
  }

  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    const Graph& g = *g_;
    constexpr std::uint64_t kMaxEpochs = 256;
    for (std::uint64_t epoch = 0; epoch < kMaxEpochs; ++epoch) {
      const auto& frontier = frontiers_.frontier(epoch);
      if (frontier.empty()) break;
      const auto n_frontier = static_cast<std::uint32_t>(frontier.size());
      const auto [fbeg, fend] = static_range(n_frontier, tid, threads());

      co_await ctx.region(rgn_gather_);
      LineTracker frontier_line, off_line, edge_line;
      std::uint64_t edges_seen = 0;
      for (std::uint32_t i = fbeg; i < fend; ++i) {
        if (frontier_line.touch(frontier_store_.addr_of(i)))
          co_await ctx.load(frontier_store_.addr_of(i), kPcFrontier);
        const std::uint32_t u = frontier[i];
        in_next_[u] = 0;
        if (off_line.touch(out_off_.addr_of(u)))
          co_await ctx.load(out_off_.addr_of(u), kPcOffsets);
        const std::uint64_t beg = g.out_offsets[u];
        const std::uint64_t end = g.out_offsets[u + 1];
        const std::uint32_t du = dist_[u];
        for (std::uint64_t k = beg; k < end; ++k) {
          if (edge_line.touch(in_edges_.addr_of(k)))
            co_await ctx.load(in_edges_.addr_of(k), kPcEdgeRec);
          const std::uint32_t v = g.out_targets[k];
          co_await ctx.load(dist_.addr_of(v), kPcVertexRec);
          co_await ctx.compute(4);
          ++edges_seen;
          if (du + 1 < dist_[v]) {  // every edge weight is 1
            dist_[v] = du + 1;
            co_await ctx.store(dist_.addr_of(v), kPcVertexRec);
            if (!in_next_[v]) {
              in_next_[v] = 1;
              co_await ctx.store(in_next_.addr_of(v), kPcFrontier);
              frontiers_.push(epoch + 1, v);
            }
          }
        }
      }
      edge_work_.add(epoch, edges_seen);
      co_await ctx.barrier();

      // Serialized apply/commit on thread 0: with identical weights the
      // engine revisits and re-commits the whole frontier centrally --
      // everyone else waits. This is the Amdahl fraction behind the
      // paper's <2x speedup.
      co_await ctx.region(rgn_serial_);
      if (tid == 0) {
        const std::uint64_t total_edges = edge_work_.read(epoch);
        co_await ctx.compute(9 * total_edges);
      }
      co_await ctx.barrier();
    }
  }

 private:
  SimArray<std::uint32_t> dist_;
  SimArray<std::uint8_t> in_next_;
  SimArray<std::uint32_t> frontier_store_;
  FrontierSet frontiers_;
  graph::ConvergenceFlag edge_work_;
  std::uint32_t rgn_gather_, rgn_serial_;
};

}  // namespace

void register_powergraph(Registry& r) {
  r.add({"P-PR", "PowerGraph", "GAS PageRank (gather = pagerank.c L63-66)",
         false,
         [](const AppParams& p) { return std::make_unique<PPageRank>(p); }});
  r.add({"P-CC", "PowerGraph", "GAS label-propagation components", false,
         [](const AppParams& p) {
           return std::make_unique<PConnectedComponents>(p);
         }});
  r.add({"P-SSSP", "PowerGraph",
         "identical-weight SSSP with serialized apply (low scalability)",
         false,
         [](const AppParams& p) { return std::make_unique<PSssp>(p); }});
}

}  // namespace coperf::wl
