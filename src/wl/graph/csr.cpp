#include "wl/graph/csr.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <mutex>
#include <queue>
#include <tuple>

#include "util/rng.hpp"

namespace coperf::wl::graph {

std::uint32_t Graph::max_degree_vertex() const {
  std::uint32_t best = 0;
  std::uint32_t best_deg = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (const auto d = out_degree(v); d > best_deg) {
      best_deg = d;
      best = v;
    }
  }
  return best;
}

std::size_t Graph::bytes() const {
  return out_offsets.size() * sizeof(std::uint64_t) +
         out_targets.size() * sizeof(std::uint32_t) +
         in_offsets.size() * sizeof(std::uint64_t) +
         in_sources.size() * sizeof(std::uint32_t) +
         weights.size() * sizeof(float);
}

namespace {

/// One R-MAT edge: recursively descend the adjacency matrix quadrants.
std::pair<std::uint32_t, std::uint32_t> rmat_edge(util::SplitMix64& rng,
                                                  std::uint32_t scale) {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  for (std::uint32_t bit = 0; bit < scale; ++bit) {
    const double r = rng.uniform();
    // a=0.57, b=0.19, c=0.19, d=0.05 with per-level noise to avoid
    // artificial self-similarity (standard Graph500 practice).
    const double noise = 0.05 * (rng.uniform() - 0.5);
    const double a = 0.57 + noise;
    const double b = 0.19;
    const double c = 0.19;
    src <<= 1;
    dst <<= 1;
    if (r < a) {
      // top-left: nothing
    } else if (r < a + b) {
      dst |= 1;
    } else if (r < a + b + c) {
      src |= 1;
    } else {
      src |= 1;
      dst |= 1;
    }
  }
  return {src, dst};
}

void build_csr(std::uint32_t n,
               const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges,
               std::vector<std::uint64_t>& offsets,
               std::vector<std::uint32_t>& adjacency, bool by_source) {
  offsets.assign(n + 1, 0);
  for (const auto& [s, d] : edges) ++offsets[(by_source ? s : d) + 1];
  for (std::uint32_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  adjacency.resize(edges.size());
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [s, d] : edges) {
    const std::uint32_t key = by_source ? s : d;
    adjacency[cursor[key]++] = by_source ? d : s;
  }
}

}  // namespace

std::shared_ptr<const Graph> make_rmat(const GraphSpec& spec) {
  util::SplitMix64 rng{util::seed_combine(spec.seed, spec.scale)};
  const std::uint32_t n = 1u << spec.scale;
  const std::uint64_t m_base = std::uint64_t{n} * spec.avg_degree /
                               (spec.symmetric ? 2 : 1);

  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(spec.symmetric ? 2 * m_base : m_base);
  for (std::uint64_t e = 0; e < m_base; ++e) {
    auto [s, d] = rmat_edge(rng, spec.scale);
    if (s == d) d = (d + 1) & (n - 1);  // drop self loops
    edges.emplace_back(s, d);
    if (spec.symmetric) edges.emplace_back(d, s);
  }

  auto g = std::make_shared<Graph>();
  g->n = n;
  g->m = edges.size();
  build_csr(n, edges, g->out_offsets, g->out_targets, /*by_source=*/true);
  build_csr(n, edges, g->in_offsets, g->in_sources, /*by_source=*/false);

  g->weights.resize(g->m);
  util::SplitMix64 wrng{util::seed_combine(spec.seed, 0x57ull)};
  for (auto& w : g->weights)
    w = 1.0f + static_cast<float>(wrng.below(16));
  return g;
}

std::vector<std::int64_t> host_bfs_levels(const Graph& g, std::uint32_t root) {
  std::vector<std::int64_t> level(g.n, -1);
  std::queue<std::uint32_t> q;
  level[root] = 0;
  q.push(root);
  while (!q.empty()) {
    const std::uint32_t u = q.front();
    q.pop();
    for (std::uint64_t k = g.out_offsets[u]; k < g.out_offsets[u + 1]; ++k) {
      const std::uint32_t v = g.out_targets[k];
      if (level[v] < 0) {
        level[v] = level[u] + 1;
        q.push(v);
      }
    }
  }
  return level;
}

std::vector<double> host_dijkstra(const Graph& g, std::uint32_t root) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(g.n, kInf);
  using Entry = std::pair<double, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  dist[root] = 0.0;
  pq.emplace(0.0, root);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    for (std::uint64_t k = g.out_offsets[u]; k < g.out_offsets[u + 1]; ++k) {
      const std::uint32_t v = g.out_targets[k];
      const double cand = d + g.weights[k];
      if (cand < dist[v]) {
        dist[v] = cand;
        pq.emplace(cand, v);
      }
    }
  }
  return dist;
}

std::vector<std::uint32_t> host_components(const Graph& g) {
  std::vector<std::uint32_t> parent(g.n);
  for (std::uint32_t v = 0; v < g.n; ++v) parent[v] = v;
  auto find = [&](std::uint32_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (std::uint32_t u = 0; u < g.n; ++u)
    for (std::uint64_t k = g.out_offsets[u]; k < g.out_offsets[u + 1]; ++k) {
      const std::uint32_t a = find(u);
      const std::uint32_t b = find(g.out_targets[k]);
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
  std::vector<std::uint32_t> rep(g.n);
  for (std::uint32_t v = 0; v < g.n; ++v) rep[v] = find(v);
  return rep;
}

std::vector<double> host_pagerank(const Graph& g, std::uint32_t iters) {
  const double base = 0.15 / g.n;
  std::vector<double> rank(g.n, 1.0 / g.n);
  std::vector<double> scaled(g.n, 0.0);
  for (std::uint32_t v = 0; v < g.n; ++v) {
    const auto deg = g.out_degree(v);
    scaled[v] = deg > 0 ? rank[v] / deg : 0.0;
  }
  for (std::uint32_t it = 0; it < iters; ++it) {
    for (std::uint32_t dst = 0; dst < g.n; ++dst) {
      double sum = 0.0;
      for (std::uint64_t k = g.in_offsets[dst]; k < g.in_offsets[dst + 1]; ++k)
        sum += scaled[g.in_sources[k]];
      rank[dst] = base + 0.85 * sum;
    }
    for (std::uint32_t v = 0; v < g.n; ++v) {
      const auto deg = g.out_degree(v);
      scaled[v] = deg > 0 ? rank[v] / deg : 0.0;
    }
  }
  return rank;
}

std::shared_ptr<const Graph> rmat_cached(const GraphSpec& spec) {
  using Key = std::tuple<std::uint32_t, std::uint32_t, std::uint64_t, bool>;
  static std::mutex mu;
  static std::map<Key, std::shared_ptr<const Graph>> cache;
  const Key key{spec.scale, spec.avg_degree, spec.seed, spec.symmetric};
  std::lock_guard lock{mu};
  auto& slot = cache[key];
  if (!slot) slot = make_rmat(spec);
  return slot;
}

}  // namespace coperf::wl::graph
