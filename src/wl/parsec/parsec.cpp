// PARSEC workload models (Table I: blackscholes, freqmine, swaptions,
// streamcluster) with native-input-class behaviour.
//
// Characteristics reproduced (Sections IV-A..C, Fig. 2d/3/4):
//  - blackscholes: embarrassingly parallel FP over a modest option
//    array that caches after the first pass -> ~8x scalability, very
//    low bandwidth, co-run friendly.
//  - swaptions: Monte Carlo over thread-private state -> linear
//    scaling, near-zero bandwidth.
//  - freqmine: FP-growth over an L2-resident prefix tree -> pointer
//    chasing that caches well, high scalability, low bandwidth.
//  - streamcluster: distance kernel streaming a >LLC point set against
//    hot centers -> high bandwidth, prefetcher-sensitive, scalability
//    saturating after 4 threads (a paper "offender"-adjacent victim).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>

#include "util/rng.hpp"
#include "wl/emit.hpp"
#include "wl/registry.hpp"
#include "wl/regions.hpp"
#include "wl/sim_array.hpp"
#include "wl/workload.hpp"

namespace coperf::wl {
namespace {

using sim::Addr;
using sim::Dep;

/// One cache line of address-only footprint.
struct CacheLine {
  std::uint8_t bytes[sim::kLineBytes];
};

// ---------------------------------------------------------------------
// blackscholes
// ---------------------------------------------------------------------
struct Option {
  float spot, strike, rate, vol, time;
  float price;
  std::int32_t type;
  float pad;
};
static_assert(sizeof(Option) == 32);

/// The real Black-Scholes closed form (verified in tests against
/// reference values).
float black_scholes_price(const Option& o) {
  const float d1 =
      (std::log(o.spot / o.strike) + (o.rate + 0.5f * o.vol * o.vol) * o.time) /
      (o.vol * std::sqrt(o.time));
  const float d2 = d1 - o.vol * std::sqrt(o.time);
  auto cndf = [](float x) {
    return 0.5f * std::erfc(-x * 0.70710678f);
  };
  const float call = o.spot * cndf(d1) -
                     o.strike * std::exp(-o.rate * o.time) * cndf(d2);
  if (o.type == 0) return call;
  return call - o.spot + o.strike * std::exp(-o.rate * o.time);  // put-call parity
}

class BlackscholesModel final : public WorkloadBase {
 public:
  explicit BlackscholesModel(const AppParams& p)
      : WorkloadBase("blackscholes", p, sim::ThreadAttr{0.8, 8}),
        options_(space(), scaled_size(32 * 1024, p.size, 1024)),
        runs_(p.size == SizeClass::Tiny ? 2 : 6),
        rgn_price_(region_id("blackscholes/price_loop")) {
    util::SplitMix64 rng{util::seed_combine(p.seed, 0xB5)};
    for (std::size_t i = 0; i < options_.size(); ++i) {
      Option& o = options_[i];
      o.spot = 80.0f + 40.0f * static_cast<float>(rng.uniform());
      o.strike = 80.0f + 40.0f * static_cast<float>(rng.uniform());
      o.rate = 0.02f + 0.04f * static_cast<float>(rng.uniform());
      o.vol = 0.1f + 0.4f * static_cast<float>(rng.uniform());
      o.time = 0.25f + 1.75f * static_cast<float>(rng.uniform());
      o.type = static_cast<std::int32_t>(rng.below(2));
      o.price = 0.0f;
    }
  }

  const SimArray<Option>& options() const { return options_; }

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    const std::size_t n = options_.size();
    const std::size_t beg = n * tid / threads();
    const std::size_t end = n * (tid + 1) / threads();
    co_await ctx.region(rgn_price_);
    for (unsigned run = 0; run < runs_; ++run) {
      LineTracker opt_line;
      for (std::size_t i = beg; i < end; ++i) {
        if (opt_line.touch(options_.addr_of(i)))
          co_await ctx.load(options_.addr_of(i), 301);
        options_[i].price = black_scholes_price(options_[i]);
        co_await ctx.compute(240);  // exp/log/erfc-heavy closed form
        co_await ctx.store(options_.addr_of(i), 302);
      }
      co_await ctx.barrier();  // PARSEC reruns the pricing NUM_RUNS times
    }
  }

 private:
  SimArray<Option> options_;
  unsigned runs_;
  std::uint32_t rgn_price_;
};

// ---------------------------------------------------------------------
// swaptions: HJM Monte Carlo over thread-private scratch
// ---------------------------------------------------------------------
class SwaptionsModel final : public WorkloadBase {
 public:
  explicit SwaptionsModel(const AppParams& p)
      : WorkloadBase("swaptions", p, sim::ThreadAttr{0.75, 6}),
        swaptions_(16),
        trials_(scaled_size(800, p.size, 48)),
        rgn_sim_(region_id("swaptions/hjm_simulation")) {
    for (unsigned t = 0; t < p.threads; ++t)
      scratch_.emplace_back(space(), 12 * 1024 / sizeof(float));
  }

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    const auto& path = scratch_[tid];
    const std::size_t path_lines = path.bytes() / sim::kLineBytes;
    constexpr std::size_t kFloatsPerLine = sim::kLineBytes / sizeof(float);
    // Swaptions are distributed statically, like the PARSEC pthreads code.
    const unsigned s_beg = swaptions_ * tid / threads();
    const unsigned s_end = swaptions_ * (tid + 1) / threads();

    co_await ctx.region(rgn_sim_);
    for (unsigned s = s_beg; s < s_end; ++s) {
      for (std::uint64_t trial = 0; trial < trials_; ++trial) {
        // One HJM path: sweep the private scratch (L1-resident) with
        // heavy FP between touches.
        for (std::size_t l = 0; l < path_lines; ++l) {
          co_await ctx.load(path.addr_of(l * kFloatsPerLine), 311);
          co_await ctx.compute(60);
          co_await ctx.store(path.addr_of(l * kFloatsPerLine), 312);
        }
        co_await ctx.compute(200);  // discounting + payoff
      }
    }
  }

 private:
  unsigned swaptions_;
  std::uint64_t trials_;
  std::vector<GhostArray<float>> scratch_;
  std::uint32_t rgn_sim_;
};

// ---------------------------------------------------------------------
// freqmine: FP-growth over an L2-resident prefix tree
// ---------------------------------------------------------------------
class FreqmineModel final : public WorkloadBase {
 public:
  explicit FreqmineModel(const AppParams& p)
      : WorkloadBase("freqmine", p, sim::ThreadAttr{0.7, 6}),
        transactions_(scaled_size(220'000, p.size, 4000)),
        rgn_build_(region_id("freqmine/tree_build")),
        rgn_mine_(region_id("freqmine/mining")) {
    // One FP-tree shard per thread (FP-growth partitions by item).
    const std::size_t nodes = 48 * 1024 / sizeof(TreeNode);
    for (unsigned t = 0; t < p.threads; ++t) {
      trees_.emplace_back(space(), nodes);
      streams_.emplace_back(space(), 512 * 1024 / sim::kLineBytes);
    }
  }

 protected:
  struct TreeNode {
    std::uint32_t item, count, child, sibling;
  };

  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    util::SplitMix64 rng{util::seed_combine(0xF9, tid)};
    const auto& tree = trees_[tid];
    const auto& stream = streams_[tid];
    const std::size_t nodes = tree.size();
    const std::uint64_t txn = transactions_ / threads();

    // FP-tree touches are heavily skewed towards the top levels (the
    // frequent items), which stay L1-resident; and independent
    // transactions give the walks instruction-level parallelism, so the
    // descents are Indep rather than one serial pointer chain.
    const std::uint64_t hot_nodes = (8 * 1024) / sizeof(TreeNode);
    auto next_node = [&](std::uint64_t h) {
      return (h & 7) != 0 ? h % hot_nodes : h % nodes;  // ~87% hot-top
    };

    // Build: stream transactions, descend the prefix tree.
    co_await ctx.region(rgn_build_);
    for (std::uint64_t t = 0; t < txn; ++t) {
      co_await ctx.load(stream.addr_of(t % stream.size()), 321);
      std::uint64_t node = rng.below(nodes);
      const unsigned depth = 6 + static_cast<unsigned>(rng.below(6));
      for (unsigned d = 0; d < depth; ++d) {
        co_await ctx.load(tree.addr_of(node), 322, Dep::Indep);
        node = next_node(node * 2654435761ull + d);
        co_await ctx.compute(12);
      }
      co_await ctx.store(tree.addr_of(node), 323);
    }
    co_await ctx.barrier();

    // Mine: conditional-pattern walks, compute-heavier.
    co_await ctx.region(rgn_mine_);
    for (std::uint64_t t = 0; t < txn / 2; ++t) {
      std::uint64_t node = rng.below(nodes);
      const unsigned depth = 8 + static_cast<unsigned>(rng.below(8));
      for (unsigned d = 0; d < depth; ++d) {
        co_await ctx.load(tree.addr_of(node), 324, Dep::Indep);
        node = next_node(node * 0x9E3779B9ull + d);
        co_await ctx.compute(18);
      }
    }
  }

 private:
  std::uint64_t transactions_;
  std::vector<GhostArray<TreeNode>> trees_;
  std::vector<GhostArray<CacheLine>> streams_;
  std::uint32_t rgn_build_, rgn_mine_;
};

// ---------------------------------------------------------------------
// streamcluster: kmedian distance kernel over a streamed point set
// ---------------------------------------------------------------------
class StreamclusterModel final : public WorkloadBase {
 public:
  explicit StreamclusterModel(const AppParams& p)
      : WorkloadBase("streamcluster", p, sim::ThreadAttr{0.5, 12}),
        dims_(32),
        iters_(p.size == SizeClass::Tiny ? 2 : 4),
        rgn_dist_(region_id("streamcluster/pgain_distance")) {
    const std::size_t points_per_thread =
        scaled_size(104'000, p.size, 2048) / p.threads;
    for (unsigned t = 0; t < p.threads; ++t)
      points_.emplace_back(space(), points_per_thread * dims_);
    centers_ = std::make_unique<GhostArray<float>>(space(), 16 * dims_);
  }

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    const auto& pts = points_[tid];
    const std::size_t point_lines = dims_ * sizeof(float) / sim::kLineBytes;
    const std::size_t n_points = pts.size() / dims_;
    constexpr std::size_t kFloatsPerLine = sim::kLineBytes / sizeof(float);

    co_await ctx.region(rgn_dist_);
    for (unsigned it = 0; it < iters_; ++it) {
      for (std::size_t pt = 0; pt < n_points; ++pt) {
        // Stream the point (2 lines for 32 float dims)...
        for (std::size_t l = 0; l < point_lines; ++l)
          co_await ctx.load(pts.addr_of(pt * dims_ + l * kFloatsPerLine), 331);
        // ...and compare against the hot center block.
        for (std::size_t c = 0; c < 4; ++c)
          co_await ctx.load(centers_->addr_of(c * dims_), 332);
        co_await ctx.compute(3 * dims_);  // dist() FMA chain
      }
      co_await ctx.barrier();  // reclustering step between passes
    }
  }

 private:
  std::size_t dims_;
  unsigned iters_;
  std::vector<GhostArray<float>> points_;
  std::unique_ptr<GhostArray<float>> centers_;
  std::uint32_t rgn_dist_;
};

}  // namespace

void register_parsec(Registry& r) {
  r.add({"blackscholes", "PARSEC", "closed-form option pricing, compute-bound",
         false, [](const AppParams& p) {
           return std::make_unique<BlackscholesModel>(p);
         }});
  r.add({"freqmine", "PARSEC", "FP-growth mining over cached prefix trees",
         false,
         [](const AppParams& p) { return std::make_unique<FreqmineModel>(p); }});
  r.add({"swaptions", "PARSEC", "HJM Monte Carlo, thread-private state", false,
         [](const AppParams& p) {
           return std::make_unique<SwaptionsModel>(p);
         }});
  r.add({"streamcluster", "PARSEC",
         "kmedian distance kernel streaming points against hot centers", false,
         [](const AppParams& p) {
           return std::make_unique<StreamclusterModel>(p);
         }});
}

}  // namespace coperf::wl
