// The two memory-stressing mini-benchmarks of Section III-B.
//
// Stream (McCalpin): four kernels (Copy/Scale/Add/Triad) sweeping large
// arrays with unit stride. Hardware prefetchers turn the miss stream
// into L2/L3 hits, so Stream consumes close to the machine's practical
// peak bandwidth (paper: 24.5 GB/s of 28 GB/s at 4 threads).
//
// Bandit (Dr-BW): a conflict-miss generator -- every access collides
// with its predecessor in the same cache sets, defeating caches and all
// four prefetchers, so its bandwidth is bounded by per-core
// memory-level parallelism (paper: ~18 GB/s at 4 threads). Because the
// conflicts confine it to a handful of sets, it consumes bandwidth
// WITHOUT polluting the shared LLC -- the reason the paper finds
// Bandit-level contention barely hurts co-runners (Fig. 6a). Modelled
// with Dep::Bypass (non-allocating) accesses.
#include <cstdint>

#include "util/rng.hpp"
#include "wl/registry.hpp"
#include "wl/regions.hpp"
#include "wl/sim_array.hpp"
#include "wl/workload.hpp"

namespace coperf::wl {
namespace {

using sim::Dep;

/// One cache line of address-only footprint.
struct CacheLine {
  std::uint8_t bytes[sim::kLineBytes];
};

// ---------------------------------------------------------------------
// McCalpin Stream
// ---------------------------------------------------------------------
class StreamModel final : public WorkloadBase {
 public:
  explicit StreamModel(const AppParams& p)
      : WorkloadBase("Stream", p, sim::ThreadAttr{0.5, 16}),
        rounds_(p.size == SizeClass::Tiny ? 1 : 2) {
    const std::size_t doubles_per_array =
        scaled_size(128 * 1024, p.size, 32 * 1024);  // 1 MiB per array (Small)
    a_.reserve(p.threads);
    b_.reserve(p.threads);
    c_.reserve(p.threads);
    for (unsigned t = 0; t < p.threads; ++t) {
      a_.emplace_back(space(), doubles_per_array);
      b_.emplace_back(space(), doubles_per_array);
      c_.emplace_back(space(), doubles_per_array);
    }
  }

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    const auto& a = a_[tid];
    const auto& b = b_[tid];
    const auto& c = c_[tid];
    const std::size_t lines = a.bytes() / sim::kLineBytes;
    constexpr std::size_t kPerLine = sim::kLineBytes / sizeof(double);

    co_await ctx.region(region_id("Stream/kernels"));
    for (unsigned r = 0; r < rounds_; ++r) {
      // Copy: c[i] = a[i]
      for (std::size_t l = 0; l < lines; ++l) {
        co_await ctx.load(a.addr_of(l * kPerLine), 11);
        co_await ctx.store(c.addr_of(l * kPerLine), 12);
        co_await ctx.compute(8);
      }
      // Scale: b[i] = s * c[i]
      for (std::size_t l = 0; l < lines; ++l) {
        co_await ctx.load(c.addr_of(l * kPerLine), 13);
        co_await ctx.store(b.addr_of(l * kPerLine), 14);
        co_await ctx.compute(12);
      }
      // Add: c[i] = a[i] + b[i]
      for (std::size_t l = 0; l < lines; ++l) {
        co_await ctx.load(a.addr_of(l * kPerLine), 15);
        co_await ctx.load(b.addr_of(l * kPerLine), 16);
        co_await ctx.store(c.addr_of(l * kPerLine), 17);
        co_await ctx.compute(12);
      }
      // Triad: a[i] = b[i] + s * c[i]
      for (std::size_t l = 0; l < lines; ++l) {
        co_await ctx.load(b.addr_of(l * kPerLine), 18);
        co_await ctx.load(c.addr_of(l * kPerLine), 19);
        co_await ctx.store(a.addr_of(l * kPerLine), 20);
        co_await ctx.compute(16);
      }
    }
  }

 private:
  unsigned rounds_;
  std::vector<GhostArray<double>> a_, b_, c_;
};

// ---------------------------------------------------------------------
// Bandit
// ---------------------------------------------------------------------
class BanditModel final : public WorkloadBase {
 public:
  explicit BanditModel(const AppParams& p)
      : WorkloadBase("Bandit", p, sim::ThreadAttr{0.6, 9}),
        accesses_(scaled_size(150'000, p.size, 2000)) {
    const std::size_t bytes = scaled_size(8u << 20, p.size, 1u << 20);
    for (unsigned t = 0; t < p.threads; ++t)
      region_.emplace_back(space(), bytes / sim::kLineBytes);
  }

 protected:
  TraceGen body(ThreadCtx& ctx, unsigned tid) override {
    const auto& mem = region_[tid];
    const std::size_t lines = mem.size();
    // Large coprime stride: successive accesses alias in cache sets and
    // never share a page-local stream (prefetcher-hostile by design).
    constexpr std::size_t kStride = 40'961;  // prime, > one 4K page in lines
    std::size_t idx = 17 + tid * 131;

    co_await ctx.region(region_id("Bandit/chase"));
    for (std::uint64_t i = 0; i < accesses_; ++i) {
      idx = (idx + kStride) % lines;
      co_await ctx.load(mem.addr_of(idx), 31, Dep::Bypass);
      co_await ctx.compute(3);
    }
  }

 private:
  std::uint64_t accesses_;
  std::vector<GhostArray<CacheLine>> region_;
};

}  // namespace

void register_mini(Registry& r) {
  r.add(WorkloadInfo{
      "Stream", "mini",
      "McCalpin STREAM: regular unit-stride kernels, prefetcher-friendly, "
      "near-peak bandwidth",
      false,
      [](const AppParams& p) { return std::make_unique<StreamModel>(p); }});
  r.add(WorkloadInfo{
      "Bandit", "mini",
      "Dr-BW Bandit: conflict-missing accesses that defeat caches and "
      "prefetchers; pure bandwidth pressure",
      false,
      [](const AppParams& p) { return std::make_unique<BanditModel>(p); }});
}

}  // namespace coperf::wl
