// TraceGen: the coroutine type used by workload thread bodies.
//
// A workload thread is written as straight-line C++ that co_awaits
// every emitted trace op; the coroutine suspends only when the
// per-thread op buffer fills, so resume overhead amortizes over
// thousands of ops. The pump (CoroSource in context.hpp) implements
// sim::OpSource on top.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace coperf::wl {

class TraceGen {
 public:
  struct promise_type {
    std::exception_ptr exception;

    TraceGen get_return_object() {
      return TraceGen{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  TraceGen() = default;
  explicit TraceGen(std::coroutine_handle<promise_type> h) : h_(h) {}
  TraceGen(TraceGen&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  TraceGen& operator=(TraceGen&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  TraceGen(const TraceGen&) = delete;
  TraceGen& operator=(const TraceGen&) = delete;
  ~TraceGen() { destroy(); }

  bool valid() const { return h_ != nullptr; }
  bool done() const { return !h_ || h_.done(); }

  /// Resumes the body until it suspends (buffer full) or finishes.
  /// Rethrows any exception the body raised.
  void resume() {
    if (done()) return;
    h_.resume();
    if (h_.done() && h_.promise().exception)
      std::rethrow_exception(h_.promise().exception);
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  std::coroutine_handle<promise_type> h_;
};

}  // namespace coperf::wl
