// Small helpers for trace emission shared by workload models.
#pragma once

#include "sim/addr.hpp"

namespace coperf::wl {

/// Deduplicates demand loads within a streaming scan: touch() returns
/// true exactly when the address enters a new cache line, so sequential
/// sweeps emit one load per line (the unit the memory system moves)
/// instead of one per element.
struct LineTracker {
  sim::Addr last = ~sim::Addr{0};
  bool touch(sim::Addr a) {
    const sim::Addr line = sim::line_of(a);
    if (line == last) return false;
    last = line;
    return true;
  }
  void reset() { last = ~sim::Addr{0}; }
};

}  // namespace coperf::wl
