// Pairwise deconvolution of N-resident group observations (prediction
// subsystem).
//
// A cluster that packs s >= 3 residents per machine observes *group*
// slowdowns, not pair entries: each observation says "type t ran at
// slowdown s while the multiset O shared its machine". Under the
// additive composition model that is one linear equation per
// observation,
//
//     sum_{o in O} x[t][o] = s - 1,      x[a][b] = M[a][b] - 1,
//
// so the pairwise excess matrix is recoverable by least squares from
// group observations alone -- online refinement no longer needs
// dedicated pair runs (cf. Shubham et al., arXiv:2410.18126, which
// predicts multi-tenant slowdowns straight from solo counters).
//
// PairDeconvolver maintains the running least-squares estimate
// incrementally (one O(n^2) recursive-least-squares update per
// observation, one independent RLS state per foreground row);
// deconvolve_pairwise() is the batch form for offline fits and tests;
// training_pairs_from_groups() distills signature-keyed group samples
// into the TrainingPair feed the data-driven models train() on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/grouptruth.hpp"
#include "harness/matrix.hpp"
#include "predict/model.hpp"

namespace coperf::predict {

class PairDeconvolver {
 public:
  /// `types` axis positions; `ridge` regularizes the per-row normal
  /// matrix (diffuse prior 1/ridge, like LeastSquaresModel's RLS).
  explicit PairDeconvolver(std::size_t types, double ridge = 1e-3);

  /// Seeds the RLS prior with a pairwise estimate (e.g. a predicted
  /// matrix), so the first under-determined group equations *adjust*
  /// calibrated predictions instead of splitting the excess from a
  /// zero-knowledge prior -- without it, one 3-resident observation
  /// can make a well-predicted cell worse until support accumulates.
  /// Only valid before the first observe(); axis sizes must match.
  void seed_prior(const harness::CorunMatrix& prior);

  /// Folds one group observation in: `type` ran at `slowdown` while
  /// the `others` multiset (>= 1 co-resident, any order) shared the
  /// machine. A single co-resident is an exact pair equation; larger
  /// groups constrain sums of row entries.
  void observe(std::size_t type, const std::vector<std::size_t>& others,
               double slowdown);
  void observe(const harness::GroupObservation& o) {
    observe(o.type, o.others, o.slowdown);
  }

  /// Current estimate of the pairwise entry M[fg][bg], clamped >= 1.
  double entry(std::size_t fg, std::size_t bg) const;
  /// Observations that involved the (fg, bg) co-residency so far
  /// (0 = entry() is just the prior).
  std::uint64_t support(std::size_t fg, std::size_t bg) const;

  std::size_t observations() const { return observations_; }
  std::size_t size() const { return n_; }

 private:
  std::size_t n_;
  std::size_t observations_ = 0;
  std::vector<std::vector<double>> excess_;  ///< per-row RLS weights
  /// Per-row inverse normal matrix P = (Phi^T Phi + ridge I)^{-1}.
  std::vector<std::vector<std::vector<double>>> cov_;
  std::vector<std::vector<std::uint64_t>> support_;
};

/// Batch form: the least-squares pairwise matrix recovered from a set
/// of group observations over the `workloads` axis. solo_cycles is
/// left empty (observations are already normalized).
harness::CorunMatrix deconvolve_pairwise(
    const std::vector<std::string>& workloads,
    const std::vector<harness::GroupObservation>& obs, double ridge = 1e-3);

/// Distills signature-keyed group samples into pairwise TrainingPairs
/// via deconvolution (axis = distinct workload names, first-seen
/// signatures as representatives; only pairs that some observation
/// actually involved are emitted), so TrainableModel::train() can fit
/// on 3+-resident measurements without ever running a dedicated pair.
std::vector<TrainingPair> training_pairs_from_groups(
    const std::vector<TrainingGroup>& groups, double ridge = 1e-3);

}  // namespace coperf::predict
