#include "predict/eval.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace coperf::predict {

namespace {

/// Ranks with average ties (Spearman prerequisite).
std::vector<double> ranks(const std::vector<double>& v) {
  std::vector<std::size_t> order(v.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> r(v.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg;
    i = j + 1;
  }
  return r;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0 || syy <= 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void check_axes(const harness::CorunMatrix& a, const harness::CorunMatrix& b) {
  if (a.workloads != b.workloads)
    throw std::invalid_argument{
        "predictor eval: matrices cover different workloads"};
}

}  // namespace

std::size_t Confusion::total() const {
  std::size_t t = 0;
  for (const auto& row : counts)
    for (std::size_t c : row) t += c;
  return t;
}

std::size_t Confusion::agree() const {
  return counts[0][0] + counts[1][1] + counts[2][2];
}

double Confusion::agreement() const {
  const std::size_t t = total();
  return t == 0 ? 1.0 : static_cast<double>(agree()) / static_cast<double>(t);
}

std::string EvalResult::summary() const {
  static const char* kClass[3] = {"Harmony", "V-Offender", "Both-Victim"};
  std::ostringstream os;
  os.precision(3);
  os << "cells evaluated : " << cells << "\n"
     << "MAE             : " << mae << "\n"
     << "RMSE            : " << rmse << "\n"
     << "Spearman rho    : " << spearman << "\n"
     << "class agreement : " << confusion.agree() << "/" << confusion.total()
     << " (" << 100.0 * confusion.agreement() << "%)\n"
     << "confusion (rows = measured, cols = predicted):\n";
  os << "                 ";
  for (const char* c : kClass) os << c << "  ";
  os << "\n";
  for (int r = 0; r < 3; ++r) {
    os << "  " << kClass[r];
    for (std::size_t pad = std::string{kClass[r]}.size(); pad < 15; ++pad)
      os << ' ';
    for (int c = 0; c < 3; ++c) os << confusion.counts[r][c] << "        ";
    os << "\n";
  }
  return os.str();
}

EvalResult evaluate(const harness::CorunMatrix& measured,
                    const harness::CorunMatrix& predicted) {
  check_axes(measured, predicted);
  EvalResult e;
  std::vector<double> mv, pv;
  const std::size_t n = measured.size();
  for (std::size_t fg = 0; fg < n; ++fg) {
    for (std::size_t bg = 0; bg < n; ++bg) {
      const double m = measured.at(fg, bg);
      const double p = predicted.at(fg, bg);
      mv.push_back(m);
      pv.push_back(p);
      e.mae += std::abs(p - m);
      e.rmse += (p - m) * (p - m);
    }
  }
  e.cells = mv.size();
  if (e.cells > 0) {
    e.mae /= static_cast<double>(e.cells);
    e.rmse = std::sqrt(e.rmse / static_cast<double>(e.cells));
  }
  e.spearman = pearson(ranks(mv), ranks(pv));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j)
      ++e.confusion.counts[static_cast<int>(measured.pair_class(i, j))]
                          [static_cast<int>(predicted.pair_class(i, j))];
  return e;
}

EvalResult leave_one_out(
    const harness::CorunMatrix& measured,
    const std::vector<WorkloadSignature>& sigs,
    const std::function<std::unique_ptr<TrainableModel>()>& make_model,
    harness::CorunMatrix* predicted_out) {
  if (measured.size() != sigs.size() || sigs.empty())
    throw std::invalid_argument{"leave_one_out: matrix/signature mismatch"};
  const std::size_t n = sigs.size();
  if (n < 3)
    throw std::invalid_argument{
        "leave_one_out: need >= 3 workloads to hold one out"};

  harness::CorunMatrix predicted;
  predicted.workloads = measured.workloads;
  predicted.solo_cycles = measured.solo_cycles;
  predicted.normalized.assign(n, std::vector<double>(n, 0.0));
  std::vector<std::vector<unsigned>> votes(n, std::vector<unsigned>(n, 0));

  for (std::size_t held = 0; held < n; ++held) {
    std::vector<TrainingPair> train;
    for (std::size_t fg = 0; fg < n; ++fg)
      for (std::size_t bg = 0; bg < n; ++bg)
        if (fg != held && bg != held)
          train.push_back({sigs[fg], sigs[bg], measured.at(fg, bg)});
    auto model = make_model();
    model->train(train);
    // Predict the held-out workload's row and column; off-diagonal
    // cells receive one vote from each side's fold and are averaged.
    for (std::size_t bg = 0; bg < n; ++bg) {
      predicted.normalized[held][bg] +=
          std::max(1.0, model->predict(sigs[held], sigs[bg]));
      ++votes[held][bg];
    }
    for (std::size_t fg = 0; fg < n; ++fg) {
      if (fg == held) continue;  // (held, held) already counted above
      predicted.normalized[fg][held] +=
          std::max(1.0, model->predict(sigs[fg], sigs[held]));
      ++votes[fg][held];
    }
  }
  for (std::size_t fg = 0; fg < n; ++fg)
    for (std::size_t bg = 0; bg < n; ++bg)
      predicted.normalized[fg][bg] /= static_cast<double>(votes[fg][bg]);
  const EvalResult e = evaluate(measured, predicted);
  if (predicted_out) *predicted_out = std::move(predicted);
  return e;
}

GroupEval evaluate_groups(const std::vector<harness::GroupObservation>& obs,
                          const std::vector<WorkloadSignature>& sigs,
                          const harness::CorunMatrix& measured_pairs,
                          const InterferenceModel& model) {
  if (measured_pairs.size() != sigs.size())
    throw std::invalid_argument{
        "evaluate_groups: pairwise matrix / signature axis mismatch"};
  GroupEval e;
  std::vector<double> measured_v, model_v;
  for (const harness::GroupObservation& o : obs) {
    if (o.others.empty()) continue;
    if (o.type >= sigs.size())
      throw std::out_of_range{"evaluate_groups: type outside the axis"};
    std::vector<WorkloadSignature> others;
    others.reserve(o.others.size());
    for (const std::size_t t : o.others) {
      if (t >= sigs.size())
        throw std::out_of_range{"evaluate_groups: co-resident outside axis"};
      others.push_back(sigs[t]);
    }
    const double predicted = model.predict_group(sigs[o.type], others);
    const double composed =
        harness::corun_slowdown(measured_pairs, o.type, o.others);
    measured_v.push_back(o.slowdown);
    model_v.push_back(predicted);
    e.model_mae += std::abs(predicted - o.slowdown);
    e.model_rmse += (predicted - o.slowdown) * (predicted - o.slowdown);
    e.additive_mae += std::abs(composed - o.slowdown);
    e.additive_rmse += (composed - o.slowdown) * (composed - o.slowdown);
    e.max_additive_gap =
        std::max(e.max_additive_gap, std::abs(composed - o.slowdown));
  }
  e.observations = measured_v.size();
  if (e.observations > 0) {
    const double n = static_cast<double>(e.observations);
    e.model_mae /= n;
    e.model_rmse = std::sqrt(e.model_rmse / n);
    e.additive_mae /= n;
    e.additive_rmse = std::sqrt(e.additive_rmse / n);
    e.model_spearman = pearson(ranks(measured_v), ranks(model_v));
  }
  return e;
}

SchedulingComparison compare_scheduling(const harness::CorunMatrix& measured,
                                        const harness::CorunMatrix& predicted,
                                        const std::vector<std::size_t>& jobs) {
  check_axes(measured, predicted);
  SchedulingComparison c;
  harness::Schedule planned = harness::schedule_greedy(predicted, jobs);
  c.from_predicted = harness::bill_pairs(measured, std::move(planned.pairs));
  c.from_measured = harness::schedule_greedy(measured, jobs);
  c.worst = harness::schedule_worst(measured, jobs);
  c.regret = c.from_measured.total_cost > 0
                 ? c.from_predicted.total_cost / c.from_measured.total_cost
                 : 1.0;
  return c;
}

}  // namespace coperf::predict
