// Predicted co-run matrix (prediction subsystem).
//
// Builds a harness::CorunMatrix from N solo signatures and an
// InterferenceModel -- the O(N) replacement for the O(N^2) measured
// sweep. The result is shape- and semantics-compatible with the
// measured matrix, so classify, report, and scheduler consume it
// unchanged.
#pragma once

#include "harness/matrix.hpp"
#include "predict/model.hpp"
#include "predict/signature.hpp"

namespace coperf::predict {

/// Predicted normalized-runtime matrix over `sigs` (axis order
/// preserved). Every cell is clamped to >= 1.0: a co-runner cannot make
/// the foreground faster in this contention model, and downstream
/// consumers assume slowdowns.
harness::CorunMatrix predicted_matrix(const std::vector<WorkloadSignature>& sigs,
                                      const InterferenceModel& model);

/// Convenience end-to-end path: N solo runs -> signatures -> predicted
/// matrix, never invoking run_pair.
harness::CorunMatrix predict_from_solo_runs(
    const std::vector<std::string>& workloads, const harness::RunOptions& opt,
    const InterferenceModel& model, unsigned reps = 3);

/// Extracts the measured training set for the data-driven models: one
/// TrainingPair per (fg, bg) cell of a measured matrix.
std::vector<TrainingPair> training_pairs(
    const harness::CorunMatrix& measured,
    const std::vector<WorkloadSignature>& sigs);

}  // namespace coperf::predict
