#include "predict/predicted_matrix.hpp"

#include <algorithm>
#include <stdexcept>

namespace coperf::predict {

harness::CorunMatrix predicted_matrix(
    const std::vector<WorkloadSignature>& sigs,
    const InterferenceModel& model) {
  if (sigs.empty())
    throw std::invalid_argument{"predicted_matrix: no signatures"};
  harness::CorunMatrix m;
  const std::size_t n = sigs.size();
  m.workloads.reserve(n);
  m.solo_cycles.reserve(n);
  for (const auto& s : sigs) {
    m.workloads.push_back(s.workload);
    m.solo_cycles.push_back(s.solo_cycles);
  }
  m.normalized.assign(n, std::vector<double>(n, 1.0));
  for (std::size_t fg = 0; fg < n; ++fg)
    for (std::size_t bg = 0; bg < n; ++bg)
      m.normalized[fg][bg] = std::max(1.0, model.predict(sigs[fg], sigs[bg]));
  return m;
}

harness::CorunMatrix predict_from_solo_runs(
    const std::vector<std::string>& workloads, const harness::RunOptions& opt,
    const InterferenceModel& model, unsigned reps) {
  return predicted_matrix(collect_signatures(workloads, opt, reps), model);
}

std::vector<TrainingPair> training_pairs(
    const harness::CorunMatrix& measured,
    const std::vector<WorkloadSignature>& sigs) {
  if (measured.size() != sigs.size())
    throw std::invalid_argument{
        "training_pairs: matrix/signature count mismatch"};
  for (std::size_t i = 0; i < sigs.size(); ++i)
    if (measured.workloads[i] != sigs[i].workload)
      throw std::invalid_argument{
          "training_pairs: matrix and signatures disagree on axis order at '" +
          measured.workloads[i] + "'"};
  std::vector<TrainingPair> pairs;
  pairs.reserve(sigs.size() * sigs.size());
  for (std::size_t fg = 0; fg < sigs.size(); ++fg)
    for (std::size_t bg = 0; bg < sigs.size(); ++bg)
      pairs.push_back({sigs[fg], sigs[bg], measured.at(fg, bg)});
  return pairs;
}

}  // namespace coperf::predict
