// Interference predictors (prediction subsystem).
//
// Every model answers one question: given two solo signatures, what is
// the normalized runtime of `fg` when `bg` loops in the background?
// Two families are provided behind the common InterferenceModel
// interface:
//
//  * BandwidthContentionModel -- analytic, zero training. Combined
//    bandwidth demand against the machine's practical peak (the paper's
//    Fig. 3 / Table III saturation analysis) plus queueing-latency and
//    LLC-capacity terms driven by the signatures' sensitivity/intensity
//    scores.
//  * KnnModel / LeastSquaresModel -- data-driven, trained on measured
//    (fg, bg, slowdown) triples, with save/load to a simple text format
//    so a model fitted on one machine's sweep can be reused.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "predict/signature.hpp"

namespace coperf::predict {

/// One measured co-run observation used to fit data-driven models.
struct TrainingPair {
  WorkloadSignature fg;
  WorkloadSignature bg;
  double slowdown = 1.0;  ///< measured t(fg|bg) / t(fg solo)
};

/// One measured N-resident group observation: fg's slowdown while the
/// `others` multiset shared its machine (a GroupResult member, seen
/// from the prediction side).
struct TrainingGroup {
  WorkloadSignature fg;
  std::vector<WorkloadSignature> others;
  double slowdown = 1.0;  ///< measured t(fg | others) / t(fg solo)
};

class InterferenceModel {
 public:
  virtual ~InterferenceModel() = default;
  virtual std::string name() const = 0;
  /// Predicted normalized runtime of fg co-run against bg (>= 1.0).
  virtual double predict(const WorkloadSignature& fg,
                         const WorkloadSignature& bg) const = 0;
  /// Predicted normalized runtime of fg co-resident with the `others`
  /// multiset (>= 1.0). Default: pairwise excess predictions compose
  /// additively (harness::corun_slowdown over predicted entries) --
  /// models with a native group notion override this.
  virtual double predict_group(const WorkloadSignature& fg,
                               const std::vector<WorkloadSignature>& others) const;
  /// Online-refinement hook: folds one truly observed co-run into the
  /// model, so a scheduler can sharpen its predictions from every
  /// placement it actually makes. Incremental for kNN (append the
  /// exemplar), recursive least squares for the linear model. The
  /// analytic model has no trainable state and ignores it.
  virtual void observe(const TrainingPair& /*sample*/) {}
  /// Group-refinement hook. Default: a 2-resident observation is an
  /// exact pair sample and passes to observe(); 3+-resident samples
  /// are ignored -- distill those with predict::PairDeconvolver /
  /// training_pairs_from_groups (predict/deconvolve.hpp).
  virtual void observe_group(const TrainingGroup& g);
  /// Whether 3+-resident TrainingGroups reach this model's
  /// observe_group. False (the default) lets hot paths skip building
  /// the signature-copying sample entirely; a model with a native
  /// group notion overrides both.
  virtual bool wants_group_samples() const { return false; }
  virtual void save(std::ostream& os) const = 0;
  virtual void load(std::istream& is) = 0;
};

class TrainableModel : public InterferenceModel {
 public:
  virtual void train(const std::vector<TrainingPair>& pairs) = 0;
};

/// Pair feature map shared by the data-driven models: interaction terms
/// between the foreground's exposure and the background's pressure.
std::vector<double> pair_features(const WorkloadSignature& fg,
                                  const WorkloadSignature& bg);
std::size_t pair_feature_count();

// ---------------------------------------------------------------------
// Analytic bandwidth-contention model.
// ---------------------------------------------------------------------
class BandwidthContentionModel final : public InterferenceModel {
 public:
  struct Params {
    /// Combined demand / peak above which the channel saturates and the
    /// channel-bound fraction of fg's time inflates proportionally.
    double saturation = 1.0;
    /// Weak-app penalty: under saturation, the app with the smaller
    /// demand loses more than its fair share of the channel.
    double asymmetry_coeff = 1.0;
    /// Queueing-latency growth below the knee: extra latency the
    /// background's traffic adds to fg's demand DRAM waits.
    double queue_coeff = 0.9;
    /// LLC-capacity theft: victim's LLC-resident reuse x offender's
    /// sweep pressure.
    double capacity_coeff = 1.6;
    bool operator==(const Params&) const = default;
  };

  BandwidthContentionModel() = default;
  explicit BandwidthContentionModel(Params p) : params_(p) {}

  std::string name() const override { return "bandwidth"; }
  double predict(const WorkloadSignature& fg,
                 const WorkloadSignature& bg) const override;
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

// ---------------------------------------------------------------------
// k-nearest-neighbours over pair features.
// ---------------------------------------------------------------------
class KnnModel final : public TrainableModel {
 public:
  explicit KnnModel(unsigned k = 5) : k_(k) {}

  std::string name() const override { return "knn"; }
  void train(const std::vector<TrainingPair>& pairs) override;
  double predict(const WorkloadSignature& fg,
                 const WorkloadSignature& bg) const override;
  /// Appends the observation as one more exemplar. Feature
  /// normalization stays frozen at the train()-time statistics so
  /// existing neighbours keep their distances; on a never-trained model
  /// the identity normalization is used.
  void observe(const TrainingPair& sample) override;
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  std::size_t training_size() const { return targets_.size(); }

 private:
  unsigned k_ = 5;
  std::vector<std::vector<double>> rows_;  ///< normalized pair features
  std::vector<double> targets_;
  std::vector<double> mean_, scale_;       ///< per-feature normalization
};

// ---------------------------------------------------------------------
// Ridge-regularized least squares over pair features.
// ---------------------------------------------------------------------
class LeastSquaresModel final : public TrainableModel {
 public:
  explicit LeastSquaresModel(double ridge = 1e-3) : ridge_(ridge) {}

  std::string name() const override { return "lstsq"; }
  void train(const std::vector<TrainingPair>& pairs) override;
  double predict(const WorkloadSignature& fg,
                 const WorkloadSignature& bg) const override;
  /// Recursive-least-squares update: one rank-1 refresh of the weights
  /// and the inverse normal matrix per observation, O(dim^2). Works on
  /// a never-trained model too (zero weights, diffuse prior 1/ridge).
  void observe(const TrainingPair& sample) override;
  void save(std::ostream& os) const override;
  void load(std::istream& is) override;

  const std::vector<double>& weights() const { return weights_; }

 private:
  void ensure_rls_state();

  double ridge_ = 1e-3;
  std::vector<double> weights_;  ///< one per pair feature, plus bias at [0]
  /// RLS state: P = (X^T X + ridge I)^{-1}. Seeded by train(), carried
  /// through save/load (format v2) so online refinement can resume.
  std::vector<std::vector<double>> cov_;
};

/// Factory by model name ("bandwidth", "knn", "lstsq").
std::unique_ptr<InterferenceModel> make_model(std::string_view name);

/// Reads the tag line a model's save() wrote and reconstructs it.
std::unique_ptr<InterferenceModel> load_model(std::istream& is);

}  // namespace coperf::predict
