#include "predict/model.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace coperf::predict {

namespace {

void expect_tag(std::istream& is, const std::string& want) {
  std::string tag;
  std::getline(is, tag);
  if (tag != want)
    throw std::runtime_error{"model load: expected '" + want + "', got '" +
                             tag + "'"};
}

}  // namespace

std::vector<double> pair_features(const WorkloadSignature& fg,
                                  const WorkloadSignature& bg) {
  const double sens = fg.sensitivity();
  const double inten = bg.intensity();
  const double combined_bw = fg.bw_fraction + bg.bw_fraction;
  const double excess = std::max(0.0, combined_bw - 1.0);
  const double mb = fg.channel_bound_frac();
  return {sens,
          inten,
          sens * inten,
          combined_bw,
          excess,
          mb * excess,
          mb * std::max(0.0, bg.bw_fraction - fg.bw_fraction),
          fg.l2_pcp * fg.dram_share() * bg.bw_fraction * bg.bw_fraction,
          fg.llc_reuse_exposure() * bg.llc_sweep_pressure(),
          std::min(1.0, fg.ll / 300.0),
          std::min(1.0, bg.llc_mpki / 20.0)};
}

std::size_t pair_feature_count() {
  static const std::size_t n =
      pair_features(WorkloadSignature{}, WorkloadSignature{}).size();
  return n;
}

double InterferenceModel::predict_group(
    const WorkloadSignature& fg,
    const std::vector<WorkloadSignature>& others) const {
  // Additive composition of pairwise predictions -- the same shape
  // harness::corun_slowdown gives a measured matrix, so a predicted
  // group cost is comparable to a composed measured one.
  double excess = 0.0;
  for (const WorkloadSignature& bg : others)
    excess += predict(fg, bg) - 1.0;
  return std::max(1.0, 1.0 + excess);
}

void InterferenceModel::observe_group(const TrainingGroup& g) {
  if (g.others.size() == 1) observe({g.fg, g.others.front(), g.slowdown});
}

// ---------------------------------------------------------------------
// BandwidthContentionModel
// ---------------------------------------------------------------------

double BandwidthContentionModel::predict(const WorkloadSignature& fg,
                                         const WorkloadSignature& bg) const {
  const double bf = fg.bw_fraction;
  const double bb = bg.bw_fraction;
  const double u = bf + bb;  // combined demand / practical peak

  double chan = 0.0;
  if (params_.saturation > 0 && u > params_.saturation) {
    // Channel saturation (paper Fig. 3 / Table III): combined demand
    // above the practical peak stretches the channel-bound fraction of
    // fg's time by demand/peak. The stretch is not fair-share: the app
    // with the smaller demand (fewer outstanding requests) loses the
    // arbitration and pays extra.
    const double stretch = (u / params_.saturation) *
                           (1.0 + params_.asymmetry_coeff *
                                      std::max(0.0, bb - bf));
    chan = fg.channel_bound_frac() * (stretch - 1.0);
  }
  // Channel queueing: bg's requests lengthen fg's demand DRAM waits,
  // superlinearly in bg's traffic. Past the knee the growth is already
  // accounted for by the saturation stretch, so the term freezes at its
  // knee value -- keeping the prediction continuous and monotone in the
  // background's demand instead of collapsing the instant u crosses
  // saturation.
  const double bb_queue =
      std::min(bb, std::max(0.0, params_.saturation - bf));
  const double queue =
      params_.queue_coeff * fg.l2_pcp * fg.dram_share() * bb_queue * bb_queue;
  // LLC capacity theft: an offender sweeping the shared cache turns the
  // victim's LLC hits into DRAM round trips.
  const double cap = params_.capacity_coeff * fg.llc_reuse_exposure() *
                     bg.llc_sweep_pressure();
  return 1.0 + chan + queue + cap;
}

void BandwidthContentionModel::save(std::ostream& os) const {
  os.precision(17);
  os << "coperf-model bandwidth v1\n"
     << params_.saturation << ' ' << params_.asymmetry_coeff << ' '
     << params_.queue_coeff << ' ' << params_.capacity_coeff << '\n';
}

void BandwidthContentionModel::load(std::istream& is) {
  expect_tag(is, "coperf-model bandwidth v1");
  is >> params_.saturation >> params_.asymmetry_coeff >> params_.queue_coeff >>
      params_.capacity_coeff;
  if (!is) throw std::runtime_error{"bandwidth model: malformed parameters"};
}

// ---------------------------------------------------------------------
// KnnModel
// ---------------------------------------------------------------------

void KnnModel::train(const std::vector<TrainingPair>& pairs) {
  if (pairs.empty()) throw std::invalid_argument{"knn: empty training set"};
  const std::size_t dim = pair_feature_count();
  rows_.clear();
  targets_.clear();
  mean_.assign(dim, 0.0);
  scale_.assign(dim, 1.0);
  for (const auto& p : pairs) {
    rows_.push_back(pair_features(p.fg, p.bg));
    targets_.push_back(p.slowdown);
  }
  for (const auto& r : rows_)
    for (std::size_t f = 0; f < dim; ++f) mean_[f] += r[f];
  for (double& m : mean_) m /= static_cast<double>(rows_.size());
  std::vector<double> var(dim, 0.0);
  for (const auto& r : rows_)
    for (std::size_t f = 0; f < dim; ++f)
      var[f] += (r[f] - mean_[f]) * (r[f] - mean_[f]);
  for (std::size_t f = 0; f < dim; ++f) {
    const double sd = std::sqrt(var[f] / static_cast<double>(rows_.size()));
    scale_[f] = sd > 1e-12 ? sd : 1.0;
  }
  for (auto& r : rows_)
    for (std::size_t f = 0; f < dim; ++f) r[f] = (r[f] - mean_[f]) / scale_[f];
}

double KnnModel::predict(const WorkloadSignature& fg,
                         const WorkloadSignature& bg) const {
  if (rows_.empty())
    throw std::logic_error{"knn: predict() before train()/load()"};
  std::vector<double> q = pair_features(fg, bg);
  for (std::size_t f = 0; f < q.size(); ++f) q[f] = (q[f] - mean_[f]) / scale_[f];
  std::vector<std::pair<double, double>> by_dist;  // (distance^2, target)
  by_dist.reserve(rows_.size());
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t f = 0; f < q.size(); ++f) {
      const double d = rows_[i][f] - q[f];
      d2 += d * d;
    }
    by_dist.emplace_back(d2, targets_[i]);
  }
  const std::size_t k = std::min<std::size_t>(k_ ? k_ : 1, by_dist.size());
  std::partial_sort(by_dist.begin(),
                    by_dist.begin() + static_cast<std::ptrdiff_t>(k),
                    by_dist.end());
  // Distance-weighted mean of the k nearest observed slowdowns.
  double wsum = 0.0, vsum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (std::sqrt(by_dist[i].first) + 1e-6);
    wsum += w;
    vsum += w * by_dist[i].second;
  }
  return vsum / wsum;
}

void KnnModel::observe(const TrainingPair& sample) {
  const std::size_t dim = pair_feature_count();
  if (mean_.size() != dim) {  // never trained: identity normalization
    mean_.assign(dim, 0.0);
    scale_.assign(dim, 1.0);
  }
  std::vector<double> row = pair_features(sample.fg, sample.bg);
  for (std::size_t f = 0; f < dim; ++f) row[f] = (row[f] - mean_[f]) / scale_[f];
  rows_.push_back(std::move(row));
  targets_.push_back(sample.slowdown);
}

void KnnModel::save(std::ostream& os) const {
  os.precision(17);
  os << "coperf-model knn v1\n"
     << k_ << ' ' << mean_.size() << ' ' << rows_.size() << '\n';
  for (double m : mean_) os << m << ' ';
  os << '\n';
  for (double s : scale_) os << s << ' ';
  os << '\n';
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    for (double f : rows_[i]) os << f << ' ';
    os << targets_[i] << '\n';
  }
}

void KnnModel::load(std::istream& is) {
  expect_tag(is, "coperf-model knn v1");
  std::size_t dim = 0, n = 0;
  is >> k_ >> dim >> n;
  if (!is || dim != pair_feature_count() || n == 0)
    throw std::runtime_error{
        "knn model: feature dimension/row count does not match this build"};
  mean_.assign(dim, 0.0);
  scale_.assign(dim, 1.0);
  for (double& m : mean_) is >> m;
  for (double& s : scale_) is >> s;
  rows_.assign(n, std::vector<double>(dim, 0.0));
  targets_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (double& f : rows_[i]) is >> f;
    is >> targets_[i];
  }
  if (!is) throw std::runtime_error{"knn model: malformed body"};
}

// ---------------------------------------------------------------------
// LeastSquaresModel
// ---------------------------------------------------------------------

namespace {

/// Gauss-Jordan inverse with partial pivoting; dim is ~12 so an exact
/// dense inverse is cheap. Throws on a singular matrix.
std::vector<std::vector<double>> invert(std::vector<std::vector<double>> a) {
  const std::size_t dim = a.size();
  std::vector<std::vector<double>> inv(dim, std::vector<double>(dim, 0.0));
  for (std::size_t i = 0; i < dim; ++i) inv[i][i] = 1.0;
  for (std::size_t col = 0; col < dim; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < dim; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    std::swap(a[col], a[pivot]);
    std::swap(inv[col], inv[pivot]);
    if (std::abs(a[col][col]) < 1e-12)
      throw std::runtime_error{"lstsq: singular normal equations"};
    const double d = a[col][col];
    for (std::size_t c = 0; c < dim; ++c) {
      a[col][c] /= d;
      inv[col][c] /= d;
    }
    for (std::size_t r = 0; r < dim; ++r) {
      if (r == col) continue;
      const double factor = a[r][col];
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < dim; ++c) {
        a[r][c] -= factor * a[col][c];
        inv[r][c] -= factor * inv[col][c];
      }
    }
  }
  return inv;
}

std::vector<double> biased_features(const WorkloadSignature& fg,
                                    const WorkloadSignature& bg) {
  std::vector<double> x = pair_features(fg, bg);
  x.insert(x.begin(), 1.0);
  return x;
}

}  // namespace

void LeastSquaresModel::train(const std::vector<TrainingPair>& pairs) {
  if (pairs.empty()) throw std::invalid_argument{"lstsq: empty training set"};
  const std::size_t dim = pair_feature_count() + 1;  // bias column
  // Normal equations (X^T X + ridge I) w = X^T y. The regularized
  // normal matrix is inverted outright (dim is ~12): its inverse is
  // both the solve and the RLS covariance that observe() refines.
  std::vector<std::vector<double>> a(dim, std::vector<double>(dim, 0.0));
  std::vector<double> b(dim, 0.0);
  for (const auto& p : pairs) {
    const std::vector<double> x = biased_features(p.fg, p.bg);
    for (std::size_t i = 0; i < dim; ++i) {
      for (std::size_t j = 0; j < dim; ++j) a[i][j] += x[i] * x[j];
      b[i] += x[i] * p.slowdown;
    }
  }
  for (std::size_t i = 1; i < dim; ++i) a[i][i] += ridge_;  // don't shrink bias
  cov_ = invert(std::move(a));
  weights_.assign(dim, 0.0);
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t j = 0; j < dim; ++j) weights_[i] += cov_[i][j] * b[j];
}

void LeastSquaresModel::ensure_rls_state() {
  const std::size_t dim = pair_feature_count() + 1;
  if (weights_.size() != dim) weights_.assign(dim, 0.0);
  if (cov_.size() != dim) {
    // Diffuse prior: P = I/ridge -- a never-trained (or v1-loaded) model
    // starts RLS as if ridge-regularized with no data.
    const double lambda = ridge_ > 1e-9 ? ridge_ : 1e-9;
    cov_.assign(dim, std::vector<double>(dim, 0.0));
    for (std::size_t i = 0; i < dim; ++i) cov_[i][i] = 1.0 / lambda;
  }
}

void LeastSquaresModel::observe(const TrainingPair& sample) {
  ensure_rls_state();
  const std::size_t dim = weights_.size();
  const std::vector<double> x = biased_features(sample.fg, sample.bg);
  std::vector<double> px(dim, 0.0);  // P x
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t j = 0; j < dim; ++j) px[i] += cov_[i][j] * x[j];
  double denom = 1.0;
  for (std::size_t i = 0; i < dim; ++i) denom += x[i] * px[i];
  double err = sample.slowdown;
  for (std::size_t i = 0; i < dim; ++i) err -= weights_[i] * x[i];
  for (std::size_t i = 0; i < dim; ++i) weights_[i] += px[i] / denom * err;
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t j = 0; j < dim; ++j) cov_[i][j] -= px[i] * px[j] / denom;
}

double LeastSquaresModel::predict(const WorkloadSignature& fg,
                                  const WorkloadSignature& bg) const {
  if (weights_.empty())
    throw std::logic_error{"lstsq: predict() before train()/load()"};
  const std::vector<double> x = pair_features(fg, bg);
  double y = weights_[0];
  for (std::size_t f = 0; f < x.size(); ++f) y += weights_[f + 1] * x[f];
  return y;
}

void LeastSquaresModel::save(std::ostream& os) const {
  os.precision(17);
  // v2 carries the RLS covariance so online refinement resumes exactly
  // where it stopped; has_cov = 0 for a model that never trained.
  os << "coperf-model lstsq v2\n"
     << ridge_ << ' ' << weights_.size() << ' ' << (cov_.empty() ? 0 : 1)
     << '\n';
  for (double w : weights_) os << w << ' ';
  os << '\n';
  for (const auto& row : cov_) {
    for (double p : row) os << p << ' ';
    os << '\n';
  }
}

void LeastSquaresModel::load(std::istream& is) {
  std::string tag;
  std::getline(is, tag);
  int version = 0;
  if (tag == "coperf-model lstsq v1") version = 1;
  else if (tag == "coperf-model lstsq v2") version = 2;
  else
    throw std::runtime_error{
        "model load: expected 'coperf-model lstsq v1|v2', got '" + tag + "'"};
  std::size_t dim = 0;
  int has_cov = 0;
  is >> ridge_ >> dim;
  if (version == 2) is >> has_cov;
  if (!is || dim != pair_feature_count() + 1)
    throw std::runtime_error{
        "lstsq model: weight dimension does not match this build"};
  weights_.assign(dim, 0.0);
  for (double& w : weights_) is >> w;
  cov_.clear();
  if (has_cov) {
    // v1 files carry no covariance; observe() falls back to the diffuse
    // prior via ensure_rls_state().
    cov_.assign(dim, std::vector<double>(dim, 0.0));
    for (auto& row : cov_)
      for (double& p : row) is >> p;
  }
  if (!is) throw std::runtime_error{"lstsq model: malformed body"};
}

// ---------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------

std::unique_ptr<InterferenceModel> make_model(std::string_view name) {
  if (name == "bandwidth") return std::make_unique<BandwidthContentionModel>();
  if (name == "knn") return std::make_unique<KnnModel>();
  if (name == "lstsq") return std::make_unique<LeastSquaresModel>();
  throw std::invalid_argument{"make_model: unknown model '" +
                              std::string{name} + "'"};
}

std::unique_ptr<InterferenceModel> load_model(std::istream& is) {
  std::stringstream buffered;
  buffered << is.rdbuf();
  std::string tag, word, name;
  std::getline(buffered, tag);
  std::istringstream ts{tag};
  ts >> word >> name;
  if (word != "coperf-model")
    throw std::runtime_error{"load_model: not a coperf model file"};
  auto model = make_model(name);
  buffered.seekg(0);
  model->load(buffered);
  return model;
}

}  // namespace coperf::predict
