// Predictor evaluation (prediction subsystem).
//
// Scores a predicted matrix against a measured one: cell-level error
// (MAE/RMSE), Spearman rank correlation (does the predictor order pairs
// correctly, which is all a scheduler needs), and the paper's
// Harmony / Victim-Offender / Both-Victim pair-class confusion.
// leave_one_out() is the honest protocol for the data-driven models:
// each workload's row and column are predicted by a model trained
// without any pair involving that workload.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "harness/grouptruth.hpp"
#include "harness/scheduler.hpp"
#include "predict/model.hpp"
#include "predict/predicted_matrix.hpp"

namespace coperf::predict {

/// 3x3 pair-class confusion: rows = measured class, cols = predicted.
struct Confusion {
  std::size_t counts[3][3] = {};

  std::size_t total() const;
  std::size_t agree() const;  ///< diagonal sum
  double agreement() const;   ///< agree / total (1.0 when total == 0)
};

struct EvalResult {
  double mae = 0.0;
  double rmse = 0.0;
  double spearman = 0.0;  ///< rank correlation over evaluated cells
  std::size_t cells = 0;
  Confusion confusion;

  /// Human-readable multi-line summary (confusion table included).
  std::string summary() const;
};

/// Cell-by-cell comparison over the full matrices (axes must match).
EvalResult evaluate(const harness::CorunMatrix& measured,
                    const harness::CorunMatrix& predicted);

/// Leave-one-workload-out evaluation of a trainable model: for each
/// held-out workload w, trains on every pair not involving w, then
/// predicts w's row and column. The assembled matrix is scored against
/// `measured` -- no cell is ever predicted by a model that saw it.
/// When `predicted_out` is non-null it receives the assembled held-out
/// matrix (e.g. to schedule on an honest prediction).
EvalResult leave_one_out(
    const harness::CorunMatrix& measured,
    const std::vector<WorkloadSignature>& sigs,
    const std::function<std::unique_ptr<TrainableModel>()>& make_model,
    harness::CorunMatrix* predicted_out = nullptr);

/// The scheduling consequence of prediction error: pairs jobs greedily
/// on the *predicted* matrix, then bills that schedule at *measured*
/// cost and compares against scheduling directly on the measurements.
struct SchedulingComparison {
  harness::Schedule from_predicted;  ///< predicted-greedy, measured cost
  harness::Schedule from_measured;   ///< measured-greedy (oracle)
  harness::Schedule worst;           ///< adversarial baseline
  /// measured cost of predicted schedule / oracle cost (1.0 = perfect).
  double regret = 1.0;
};

SchedulingComparison compare_scheduling(const harness::CorunMatrix& measured,
                                        const harness::CorunMatrix& predicted,
                                        const std::vector<std::size_t>& jobs);

/// Accuracy against *measured group truth* -- the re-baseline. Each
/// observation is one member of a measured N-resident group; the model
/// is scored by predict_group(), and the additive composition of the
/// measured pairwise matrix (the pre-grouptruth ground "truth") is
/// scored alongside it, so the additive-vs-measured gap is a first-
/// class number instead of an assumption.
struct GroupEval {
  std::size_t observations = 0;
  double model_mae = 0.0;
  double model_rmse = 0.0;
  double model_spearman = 0.0;  ///< model predictions vs measured, ranks
  double additive_mae = 0.0;    ///< composed measured pairs vs measured
  double additive_rmse = 0.0;
  double max_additive_gap = 0.0;  ///< worst |measured - composed| member
};

/// Scores `model` and the additive-composition baseline over measured
/// group observations (type indices refer to `sigs` / the axis of
/// `measured_pairs`, which must agree). Observations with fewer than
/// one co-resident are skipped.
GroupEval evaluate_groups(const std::vector<harness::GroupObservation>& obs,
                          const std::vector<WorkloadSignature>& sigs,
                          const harness::CorunMatrix& measured_pairs,
                          const InterferenceModel& model);

}  // namespace coperf::predict
