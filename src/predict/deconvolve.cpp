#include "predict/deconvolve.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace coperf::predict {

PairDeconvolver::PairDeconvolver(std::size_t types, double ridge) : n_(types) {
  if (n_ == 0)
    throw std::invalid_argument{"PairDeconvolver: need at least one type"};
  if (ridge <= 0.0)
    throw std::invalid_argument{"PairDeconvolver: ridge must be positive"};
  excess_.assign(n_, std::vector<double>(n_, 0.0));
  support_.assign(n_, std::vector<std::uint64_t>(n_, 0));
  cov_.assign(n_, std::vector<std::vector<double>>(
                      n_, std::vector<double>(n_, 0.0)));
  for (std::size_t r = 0; r < n_; ++r)
    for (std::size_t i = 0; i < n_; ++i) cov_[r][i][i] = 1.0 / ridge;
}

void PairDeconvolver::seed_prior(const harness::CorunMatrix& prior) {
  if (observations_ != 0)
    throw std::logic_error{
        "PairDeconvolver::seed_prior: prior must be set before observations"};
  if (prior.size() != n_)
    throw std::invalid_argument{
        "PairDeconvolver::seed_prior: axis size mismatch"};
  for (std::size_t fg = 0; fg < n_; ++fg)
    for (std::size_t bg = 0; bg < n_; ++bg)
      excess_[fg][bg] = prior.at(fg, bg) - 1.0;
}

void PairDeconvolver::observe(std::size_t type,
                              const std::vector<std::size_t>& others,
                              double slowdown) {
  if (type >= n_)
    throw std::out_of_range{"PairDeconvolver: type outside the axis"};
  if (others.empty())
    throw std::invalid_argument{
        "PairDeconvolver: a solo run carries no pairwise information"};
  // phi = co-resident count vector; y = observed excess.
  std::vector<double> phi(n_, 0.0);
  for (const std::size_t o : others) {
    if (o >= n_)
      throw std::out_of_range{"PairDeconvolver: co-resident outside the axis"};
    phi[o] += 1.0;
  }
  const double y = slowdown - 1.0;

  // Standard RLS on this foreground's row: one rank-1 refresh of the
  // weights and the inverse normal matrix.
  std::vector<double>& w = excess_[type];
  std::vector<std::vector<double>>& P = cov_[type];
  std::vector<double> Pphi(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < n_; ++j) acc += P[i][j] * phi[j];
    Pphi[i] = acc;
  }
  double denom = 1.0;
  double pred = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    denom += phi[i] * Pphi[i];
    pred += phi[i] * w[i];
  }
  const double err = y - pred;
  for (std::size_t i = 0; i < n_; ++i) w[i] += Pphi[i] / denom * err;
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = 0; j < n_; ++j)
      P[i][j] -= Pphi[i] * Pphi[j] / denom;

  for (std::size_t o = 0; o < n_; ++o)
    if (phi[o] > 0.0) ++support_[type][o];
  ++observations_;
}

double PairDeconvolver::entry(std::size_t fg, std::size_t bg) const {
  if (fg >= n_ || bg >= n_)
    throw std::out_of_range{"PairDeconvolver::entry: index outside the axis"};
  return std::max(1.0, 1.0 + excess_[fg][bg]);
}

std::uint64_t PairDeconvolver::support(std::size_t fg, std::size_t bg) const {
  if (fg >= n_ || bg >= n_)
    throw std::out_of_range{"PairDeconvolver::support: index outside the axis"};
  return support_[fg][bg];
}

harness::CorunMatrix deconvolve_pairwise(
    const std::vector<std::string>& workloads,
    const std::vector<harness::GroupObservation>& obs, double ridge) {
  const std::size_t n = workloads.size();
  PairDeconvolver d{n, ridge};
  for (const harness::GroupObservation& o : obs) d.observe(o);
  harness::CorunMatrix m;
  m.workloads = workloads;
  m.normalized.assign(n, std::vector<double>(n, 1.0));
  for (std::size_t fg = 0; fg < n; ++fg)
    for (std::size_t bg = 0; bg < n; ++bg)
      m.normalized[fg][bg] = d.entry(fg, bg);
  return m;
}

std::vector<TrainingPair> training_pairs_from_groups(
    const std::vector<TrainingGroup>& groups, double ridge) {
  // Axis from distinct workload names, first-seen signature as the
  // representative (signatures of the same workload at the same
  // config are identical in practice).
  std::unordered_map<std::string, std::size_t> index;
  std::vector<WorkloadSignature> reps;
  const auto intern = [&](const WorkloadSignature& s) {
    const auto [it, fresh] = index.emplace(s.workload, reps.size());
    if (fresh) reps.push_back(s);
    return it->second;
  };
  std::vector<harness::GroupObservation> obs;
  obs.reserve(groups.size());
  for (const TrainingGroup& g : groups) {
    harness::GroupObservation o;
    o.type = intern(g.fg);
    for (const WorkloadSignature& s : g.others) o.others.push_back(intern(s));
    std::sort(o.others.begin(), o.others.end());
    o.slowdown = g.slowdown;
    obs.push_back(std::move(o));
  }
  if (reps.empty()) return {};
  PairDeconvolver d{reps.size(), ridge};
  for (const harness::GroupObservation& o : obs) d.observe(o);
  std::vector<TrainingPair> pairs;
  for (std::size_t fg = 0; fg < reps.size(); ++fg)
    for (std::size_t bg = 0; bg < reps.size(); ++bg)
      if (d.support(fg, bg) > 0)
        pairs.push_back({reps[fg], reps[bg], d.entry(fg, bg)});
  return pairs;
}

}  // namespace coperf::predict
