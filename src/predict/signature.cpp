#include "predict/signature.hpp"

#include <algorithm>

#include "harness/parallel.hpp"
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace coperf::predict {

namespace {
double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }
}  // namespace

double WorkloadSignature::dram_share() const {
  return l2_mpki > 0 ? clamp01(llc_mpki / l2_mpki) : 1.0;
}

double WorkloadSignature::llc_reuse_exposure() const {
  // L2 misses served by the LLC, per kilo-instruction; ~50/KI means the
  // hot loop lives in the shared cache (G-PR style).
  return clamp01((l2_mpki - llc_mpki) / 50.0);
}

double WorkloadSignature::llc_sweep_pressure() const {
  // A workload evicts a co-runner's LLC-resident set only if it (a) has
  // a footprint that overflows the LLC, (b) moves real bandwidth, and
  // (c) actually streams new lines (prefetch-dominated traffic) rather
  // than re-missing the same conflict sets like Bandit.
  return std::min(1.0, footprint_vs_llc) * std::min(1.0, bw_fraction) *
         prefetch_share;
}

double WorkloadSignature::channel_bound_frac() const {
  // Demand-visible DRAM time (L2_PCP scaled by how many of those
  // pending misses reach DRAM) or prefetch-hidden streaming (bandwidth
  // fraction), whichever exposes more of the run to the channel.
  return std::min(1.0, std::max(l2_pcp * dram_share(), bw_fraction));
}

double WorkloadSignature::intensity() const {
  // Pressure on the two shared resources: the memory channel (bandwidth
  // fraction, the paper's Fig. 3 axis) and the LLC (sweep pressure on a
  // co-runner's resident working set).
  return clamp01(0.65 * std::min(1.0, bw_fraction) +
                 0.35 * llc_sweep_pressure());
}

double WorkloadSignature::sensitivity() const {
  // Exposure: time on the shared channel (a saturated channel stretches
  // it) plus LLC-resident reuse (an LLC sweep converts it to DRAM
  // misses). A compute-bound workload with neither cannot be slowed
  // much no matter how loud the neighbour.
  return clamp01(0.6 * channel_bound_frac() + 0.4 * llc_reuse_exposure());
}

std::vector<double> WorkloadSignature::features() const {
  return {cpi,
          ipc,
          l2_pcp,
          llc_mpki,
          l2_mpki,
          ll,
          bw_fraction,
          footprint_vs_llc,
          mem_stall_frac,
          prefetch_share,
          peak_region_llc_mpki,
          peak_region_l2_pcp};
}

const std::vector<std::string>& WorkloadSignature::feature_names() {
  static const std::vector<std::string> names = {
      "cpi",
      "ipc",
      "l2_pcp",
      "llc_mpki",
      "l2_mpki",
      "ll",
      "bw_fraction",
      "footprint_vs_llc",
      "mem_stall_frac",
      "prefetch_share",
      "peak_region_llc_mpki",
      "peak_region_l2_pcp"};
  return names;
}

WorkloadSignature WorkloadSignature::from(const harness::RunResult& solo,
                                          const sim::MachineConfig& machine) {
  WorkloadSignature s;
  s.workload = solo.workload;
  s.threads = solo.threads;
  s.cpi = solo.metrics.cpi;
  s.ipc = solo.metrics.ipc;
  s.l2_pcp = solo.metrics.l2_pcp;
  s.llc_mpki = solo.metrics.llc_mpki;
  s.l2_mpki = solo.metrics.l2_mpki;
  s.ll = solo.metrics.ll;
  s.solo_bw_gbs = solo.avg_bw_gbs;
  s.bw_fraction =
      machine.peak_bw_gbs > 0 ? solo.avg_bw_gbs / machine.peak_bw_gbs : 0.0;
  s.footprint_vs_llc =
      machine.l3.size_bytes > 0
          ? static_cast<double>(solo.footprint_bytes) /
                static_cast<double>(machine.l3.size_bytes)
          : 0.0;
  s.mem_stall_frac =
      solo.stats.cycles > 0
          ? static_cast<double>(solo.stats.stall_cycles_mem) /
                static_cast<double>(solo.stats.cycles)
          : 0.0;
  s.solo_lat_p50 = solo.latency.quantile(0.50);
  s.solo_lat_p99 = solo.latency.quantile(0.99);
  s.request_count = solo.latency.count;
  // bytes_from_mem counts demand line fills only; the PCM-measured
  // bandwidth additionally carries prefetch fills and writebacks.
  // Whatever the channel moved beyond demand was fetched ahead by the
  // prefetchers (spatial streaming).
  const double demand_bw_gbs =
      solo.seconds > 0
          ? static_cast<double>(solo.stats.bytes_from_mem) / solo.seconds / 1e9
          : 0.0;
  s.prefetch_share =
      solo.avg_bw_gbs > 0
          ? std::clamp(1.0 - demand_bw_gbs / solo.avg_bw_gbs, 0.0, 1.0)
          : 0.0;
  for (const auto& region : solo.regions) {
    s.peak_region_llc_mpki =
        std::max(s.peak_region_llc_mpki, region.metrics.llc_mpki);
    s.peak_region_l2_pcp =
        std::max(s.peak_region_l2_pcp, region.metrics.l2_pcp);
  }
  s.solo_cycles = solo.cycles;
  s.solo_seconds = solo.seconds;
  return s;
}

std::vector<WorkloadSignature> collect_signatures(
    const std::vector<std::string>& workloads, const harness::RunOptions& opt,
    unsigned reps) {
  // The N solo simulations are independent; fan out over host threads
  // exactly like the matrix sweep's baseline pass.
  std::vector<WorkloadSignature> sigs(workloads.size());
  harness::parallel_for(workloads.size(), 0, [&](std::size_t i) {
    const harness::RunResult solo =
        harness::run_solo_median(workloads[i], opt, reps);
    sigs[i] = WorkloadSignature::from(solo, opt.machine);
  });
  return sigs;
}

void save_signatures(std::ostream& os,
                     const std::vector<WorkloadSignature>& sigs) {
  os << "coperf-signatures v1\n";
  os.precision(17);
  for (const auto& s : sigs) {
    os << s.workload << '\t' << s.threads << '\t' << s.solo_cycles << '\t'
       << s.solo_seconds << '\t' << s.solo_bw_gbs;
    for (double f : s.features()) os << '\t' << f;
    os << '\n';
  }
}

std::vector<WorkloadSignature> load_signatures(std::istream& is) {
  std::string header;
  std::getline(is, header);
  if (header != "coperf-signatures v1")
    throw std::runtime_error{"load_signatures: bad header '" + header + "'"};
  std::vector<WorkloadSignature> sigs;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls{line};
    WorkloadSignature s;
    std::getline(ls, s.workload, '\t');
    ls >> s.threads >> s.solo_cycles >> s.solo_seconds >> s.solo_bw_gbs >>
        s.cpi >> s.ipc >> s.l2_pcp >> s.llc_mpki >> s.l2_mpki >> s.ll >>
        s.bw_fraction >> s.footprint_vs_llc >> s.mem_stall_frac >>
        s.prefetch_share >> s.peak_region_llc_mpki >> s.peak_region_l2_pcp;
    if (!ls)
      throw std::runtime_error{"load_signatures: malformed line '" + line + "'"};
    sigs.push_back(std::move(s));
  }
  return sigs;
}

}  // namespace coperf::predict
