// Per-workload interference signatures (prediction subsystem).
//
// A WorkloadSignature condenses one *solo* run into the counter-based
// feature vector the interference models consume: the paper's four
// VTune metrics (Section VI-A), bandwidth demand relative to the
// machine's practical peak (Section VI-B / Fig. 3), footprint relative
// to the shared LLC, and hot-region aggregates. Collecting N
// signatures costs N solo runs -- the O(N) input from which the
// predictors reconstruct the O(N^2) co-run matrix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "sim/config.hpp"

namespace coperf::predict {

struct WorkloadSignature {
  std::string workload;
  unsigned threads = 0;

  // The paper's derived metrics, from the solo run.
  double cpi = 0.0;
  double ipc = 0.0;
  double l2_pcp = 0.0;
  double llc_mpki = 0.0;
  double l2_mpki = 0.0;
  double ll = 0.0;

  // Shared-resource demand, normalized by the machine so the models
  // stay machine-independent.
  double bw_fraction = 0.0;     ///< solo DRAM bandwidth / practical peak
  double solo_bw_gbs = 0.0;
  double footprint_vs_llc = 0.0;///< allocated bytes / LLC capacity
  double mem_stall_frac = 0.0;  ///< memory-blocked cycles / cycles
  /// Fraction of DRAM traffic the prefetchers fetched ahead of demand.
  /// Separates spatial streamers (which sweep the whole LLC and whose
  /// latency exposure is hidden until the channel contends) from
  /// conflict-miss generators like Bandit (all-demand traffic confined
  /// to a few sets, which barely hurts co-runners -- paper Fig. 6a).
  double prefetch_share = 0.0;

  // Hot-region aggregates: the worst region dominates co-run behaviour
  // (paper Section VI-C, Table IV).
  double peak_region_llc_mpki = 0.0;
  double peak_region_l2_pcp = 0.0;

  // Solo baseline the predicted matrix normalizes against.
  sim::Cycle solo_cycles = 0;
  double solo_seconds = 0.0;

  // Tail pass-through for latency-critical serving workloads: the solo
  // p99/p50 request latency in cycles and the request count, straight
  // from RunResult::latency. All zero for batch workloads (no request
  // distribution) -- a tail-aware model can use these as features; the
  // throughput models ignore them.
  double solo_lat_p50 = 0.0;
  double solo_lat_p99 = 0.0;
  std::uint64_t request_count = 0;
  bool latency_critical() const { return request_count > 0; }

  /// Offender score: how hard this workload presses the shared LLC and
  /// memory channel (what it does *to* a co-runner).
  double intensity() const;
  /// Victim score: how much of this workload's time depends on the
  /// shared levels staying fast (what a co-runner can do *to it*).
  double sensitivity() const;

  /// Fraction of L2 misses that reach DRAM (the rest hit in the LLC).
  double dram_share() const;
  /// LLC-resident reuse: L2-miss traffic served by the shared cache,
  /// which an LLC-sweeping offender converts into DRAM round trips.
  double llc_reuse_exposure() const;
  /// How much of the LLC this workload actively sweeps per unit time
  /// (footprint x bandwidth x spatial streaming).
  double llc_sweep_pressure() const;
  /// Fraction of execution time on the DRAM channel (demand or
  /// prefetch) -- the part a saturated channel stretches.
  double channel_bound_frac() const;

  /// Raw feature vector (order matches feature_names()).
  std::vector<double> features() const;
  static const std::vector<std::string>& feature_names();

  /// Extracts the signature from a solo RunResult.
  static WorkloadSignature from(const harness::RunResult& solo,
                                const sim::MachineConfig& machine);

  bool operator==(const WorkloadSignature&) const = default;
};

/// Runs each workload alone (median of `reps` seeds) and extracts its
/// signature -- the O(N) measurement pass.
std::vector<WorkloadSignature> collect_signatures(
    const std::vector<std::string>& workloads, const harness::RunOptions& opt,
    unsigned reps = 3);

/// Text serialization (one signature per line, tab-separated), so solo
/// profiling and matrix prediction can run as separate processes.
void save_signatures(std::ostream& os, const std::vector<WorkloadSignature>& sigs);
std::vector<WorkloadSignature> load_signatures(std::istream& is);

}  // namespace coperf::predict
