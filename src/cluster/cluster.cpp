#include "cluster/cluster.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace coperf::cluster {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Simulated-time scale on the trace: 1 unit of work = 1 ms displayed.
constexpr double kTraceUsPerUnit = 1000.0;

struct Running {
  std::size_t job = 0;
  double remaining = 0.0;  ///< solo-time units still to execute
};

void validate(const ClusterConfig& cfg, const harness::InterferenceTruth& truth,
              const std::vector<JobSpec>& trace) {
  if (cfg.machines == 0)
    throw std::invalid_argument{"simulate: need at least one machine"};
  if (cfg.slots < 2)
    throw std::invalid_argument{"simulate: co-run machines need >= 2 slots"};
  if (truth.size() == 0)
    throw std::invalid_argument{"simulate: empty ground truth"};
  double prev = 0.0;
  for (const JobSpec& j : trace) {
    if (j.type >= truth.size())
      throw std::invalid_argument{"simulate: job type outside the truth axis"};
    if (j.work <= 0.0)
      throw std::invalid_argument{"simulate: job work must be positive"};
    if (j.arrival < prev)
      throw std::invalid_argument{"simulate: arrivals must be sorted"};
    prev = j.arrival;
  }
}

}  // namespace

ClusterResult simulate(const ClusterConfig& cfg,
                       harness::InterferenceTruth& truth,
                       const std::vector<JobSpec>& trace,
                       PlacementPolicy& policy) {
  validate(cfg, truth, trace);
  const std::uint64_t fallbacks_before = truth.fallbacks();

  std::vector<std::vector<Running>> machines(cfg.machines);
  std::deque<std::size_t> waiting;  // arrived, not yet placed (FIFO)
  ClusterResult res;
  res.outcomes.resize(trace.size());
  double t = 0.0;
  std::size_t next_arrival = 0;
  std::size_t running_count = 0;

  // Observability: a simulated-time timeline (own trace process per
  // run, so back-to-back policy sweeps do not overwrite each other's
  // lanes) plus registry counters. Everything is read-only over the
  // loop's state and branch-free when disabled.
  obs::Trace& tr = obs::Trace::instance();
  const bool traced = tr.enabled();
  const int trace_pid = traced ? tr.next_pid() : 0;
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& placements_ctr = reg.counter("cluster.placements");
  obs::Counter& completions_ctr = reg.counter("cluster.completions");
  if (traced) {
    tr.name_process(trace_pid, "cluster " + policy.name() + " (" +
                                   std::to_string(cfg.machines) + "x" +
                                   std::to_string(cfg.slots) +
                                   ", simulated time)");
    for (std::size_t m = 0; m < cfg.machines; ++m)
      tr.name_thread(trace_pid, static_cast<int>(m),
                     "machine " + std::to_string(m));
  }
  const auto type_label = [&](std::size_t type) -> std::string {
    if (type < cfg.type_names.size()) return cfg.type_names[type];
    std::string label{"t"};
    label += std::to_string(type);
    return label;
  };
  // Start of the current constant-resident-set interval, per machine.
  std::vector<double> lane_since(cfg.machines, 0.0);
  // Closes machine m's resident-set span at the current time `t`; call
  // BEFORE mutating machines[m].
  const auto close_lane = [&](std::size_t m) {
    if (!traced) return;
    if (!machines[m].empty() && t > lane_since[m]) {
      std::string label;
      for (const Running& r : machines[m]) {
        if (!label.empty()) label += '+';
        label += type_label(trace[r.job].type);
      }
      tr.complete(trace_pid, static_cast<int>(m), std::move(label),
                  lane_since[m] * kTraceUsPerUnit,
                  (t - lane_since[m]) * kTraceUsPerUnit,
                  obs::Args{}.set("residents", machines[m].size()).str());
    }
    lane_since[m] = t;
  };
  const auto emit_queue_depth = [&] {
    if (traced)
      tr.counter_at(trace_pid, "queue_depth", t * kTraceUsPerUnit,
                    static_cast<double>(waiting.size()));
  };

  // Current slowdown of one resident: the truth oracle's answer for
  // its co-resident group (measured when the truth holds the group,
  // additive pairwise composition otherwise).
  const auto slowdown_of = [&](std::size_t m, std::size_t slot) {
    std::vector<std::size_t> others;
    others.reserve(machines[m].size());
    for (std::size_t s = 0; s < machines[m].size(); ++s)
      if (s != slot) others.push_back(trace[machines[m][s].job].type);
    return truth.slowdown(trace[machines[m][slot].job].type, others);
  };

  const auto drain_waiting = [&] {
    while (!waiting.empty()) {
      std::vector<MachineView> views(cfg.machines);
      bool any_free = false;
      for (std::size_t m = 0; m < cfg.machines; ++m) {
        views[m].free_slots = cfg.slots - machines[m].size();
        any_free = any_free || views[m].free_slots > 0;
        for (const Running& r : machines[m])
          views[m].residents.push_back(
              {trace[r.job].type, std::max(0.0, r.remaining)});
      }
      if (!any_free) return;
      const std::size_t jid = waiting.front();
      waiting.pop_front();
      const JobSpec& job = trace[jid];
      const std::size_t m = policy.place(job, views);
      if (m >= cfg.machines || machines[m].size() >= cfg.slots)
        throw std::logic_error{"simulate: policy chose a full machine"};
      // Bill the decision at ground truth: how much worse was the
      // chosen machine than the best one actually available?
      double chosen = 0.0, best = kInf;
      for (std::size_t v = 0; v < views.size(); ++v) {
        if (views[v].free_slots == 0) continue;
        const double d = placement_delta(truth, job.type, job.work, views[v]);
        if (v == m) chosen = d;
        best = std::min(best, d);
      }
      res.mean_decision_regret += chosen - best;
      placements_ctr.add();
      if (traced)
        tr.instant_at(trace_pid, static_cast<int>(m),
                      "place " + type_label(job.type), t * kTraceUsPerUnit,
                      obs::Args{}
                          .set("job", jid)
                          .set("policy", policy.name())
                          .set("predicted_cost", policy.last_cost_delta())
                          .set("true_cost", chosen)
                          .set("regret", chosen - best)
                          .set("queued_for", t - job.arrival)
                          .str());
      // Report the full group outcome -- every member's true slowdown
      // in the machine's new resident group. The new job leads, so a
      // 2-resident group decomposes into the historical observe_pair
      // order; 3+-resident outcomes are what the deconvolving online
      // policy refines itself with.
      if (!machines[m].empty()) {
        std::vector<std::size_t> group;
        group.reserve(machines[m].size() + 1);
        group.push_back(job.type);
        for (const Running& r : machines[m])
          group.push_back(trace[r.job].type);
        std::vector<double> slowdowns(group.size(), 1.0);
        if (group.size() == 2) {
          // Pair outcomes are raw 2-resident entries -- unclamped,
          // exactly the feedback the legacy loop reported.
          slowdowns[0] = truth.pair_entry(group[0], group[1]);
          slowdowns[1] = truth.pair_entry(group[1], group[0]);
        } else {
          for (std::size_t i = 0; i < group.size(); ++i)
            slowdowns[i] =
                truth.slowdown(group[i], harness::others_excluding(group, i));
        }
        policy.observe_group(group, slowdowns);
      }
      close_lane(m);  // the resident set is about to change
      machines[m].push_back({jid, job.work});
      ++running_count;
      JobOutcome& out = res.outcomes[jid];
      out.job = jid;
      out.type = job.type;
      out.machine = m;
      out.arrival = job.arrival;
      out.start = t;
      out.work = job.work;
      res.log.events.push_back({TraceEvent::Kind::Place, t, jid, job.type, m,
                                policy.last_cost_delta()});
      emit_queue_depth();
    }
  };

  while (next_arrival < trace.size() || running_count > 0 ||
         !waiting.empty()) {
    // Earliest completion under current (constant-between-events) rates;
    // ties resolve to the lowest machine then slot, deterministically.
    double t_done = kInf;
    std::size_t done_m = 0, done_s = 0;
    for (std::size_t m = 0; m < cfg.machines; ++m)
      for (std::size_t s = 0; s < machines[m].size(); ++s) {
        const double eta =
            t + std::max(0.0, machines[m][s].remaining) * slowdown_of(m, s);
        if (eta < t_done) {
          t_done = eta;
          done_m = m;
          done_s = s;
        }
      }
    const double t_arr =
        next_arrival < trace.size() ? trace[next_arrival].arrival : kInf;
    if (t_done == kInf && t_arr == kInf)
      throw std::logic_error{"simulate: stuck with waiting jobs"};

    // Completions first on ties: a freed slot should serve a job
    // arriving at the same instant.
    const double te = std::min(t_done, t_arr);
    for (std::size_t m = 0; m < cfg.machines; ++m)
      for (std::size_t s = 0; s < machines[m].size(); ++s)
        machines[m][s].remaining -= (te - t) / slowdown_of(m, s);
    t = te;

    if (t_done <= t_arr) {
      const std::size_t jid = machines[done_m][done_s].job;
      close_lane(done_m);  // the resident set is about to change
      completions_ctr.add();
      machines[done_m].erase(machines[done_m].begin() +
                             static_cast<std::ptrdiff_t>(done_s));
      --running_count;
      JobOutcome& out = res.outcomes[jid];
      out.finish = t;
      res.log.events.push_back({TraceEvent::Kind::Finish, t, jid, out.type,
                                done_m, out.corun_slowdown()});
    } else {
      const JobSpec& job = trace[next_arrival];
      res.log.events.push_back(
          {TraceEvent::Kind::Arrive, t, job.id, job.type, 0, 0.0});
      waiting.push_back(next_arrival);
      ++next_arrival;
      emit_queue_depth();
    }
    drain_waiting();
  }

  if (!res.outcomes.empty()) {
    for (const JobOutcome& o : res.outcomes) {
      res.mean_stretch += o.stretch();
      res.mean_corun_slowdown += o.corun_slowdown();
      res.makespan = std::max(res.makespan, o.finish);
    }
    res.mean_stretch /= static_cast<double>(res.outcomes.size());
    res.mean_corun_slowdown /= static_cast<double>(res.outcomes.size());
    res.mean_decision_regret /= static_cast<double>(res.outcomes.size());
  }
  res.pairwise_fallbacks = truth.fallbacks() - fallbacks_before;
  return res;
}

ClusterResult simulate(const ClusterConfig& cfg,
                       const harness::CorunMatrix& truth,
                       const std::vector<JobSpec>& trace,
                       PlacementPolicy& policy) {
  harness::MatrixTruth additive{truth};
  return simulate(cfg, additive, trace, policy);
}

}  // namespace coperf::cluster
