#include "cluster/cluster.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace coperf::cluster {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Simulated-time scale on the trace: 1 unit of work = 1 ms displayed.
constexpr double kTraceUsPerUnit = 1000.0;

void validate(const ClusterConfig& cfg, const harness::InterferenceTruth& truth,
              const std::vector<JobSpec>& trace, bool fleet_engine) {
  if (cfg.machines == 0)
    throw std::invalid_argument{"simulate: need at least one machine"};
  if (cfg.slots < 2)
    throw std::invalid_argument{"simulate: co-run machines need >= 2 slots"};
  if (truth.size() == 0)
    throw std::invalid_argument{"simulate: empty ground truth"};
  double prev = 0.0;
  for (const JobSpec& j : trace) {
    if (j.type >= truth.size())
      throw std::invalid_argument{"simulate: job type outside the truth axis"};
    if (j.work <= 0.0)
      throw std::invalid_argument{"simulate: job work must be positive"};
    if (j.arrival < prev)
      throw std::invalid_argument{"simulate: arrivals must be sorted"};
    if (j.priority > kMaxPriority)
      throw std::invalid_argument{"simulate: job priority above kMaxPriority"};
    if (j.slo_p99 < 0.0)
      throw std::invalid_argument{"simulate: job slo_p99 must be >= 0"};
    if (!fleet_engine && j.priority != 0)
      throw std::invalid_argument{
          "simulate_reference: the reference loop is priority-blind"};
    if (!fleet_engine && j.latency_critical())
      throw std::invalid_argument{
          "simulate_reference: the reference loop is SLO-blind"};
    prev = j.arrival;
  }
  if (!fleet_engine) {
    if (!cfg.faults.empty() || cfg.migration.preempt || cfg.admission.enabled())
      throw std::invalid_argument{
          "simulate_reference: the reference loop is fault-blind (no fault "
          "schedule, migration, or admission control)"};
    return;
  }
  double prev_fault = 0.0;
  std::vector<char> down(cfg.machines, 0);
  for (const FaultEvent& f : cfg.faults) {
    if (f.machine >= cfg.machines)
      throw std::invalid_argument{"simulate: fault event machine out of range"};
    if (f.time < prev_fault)
      throw std::invalid_argument{"simulate: fault events must be sorted"};
    const bool is_down = f.kind == FaultEvent::Kind::Down;
    if (is_down == static_cast<bool>(down[f.machine]))
      throw std::invalid_argument{
          "simulate: fault events must alternate Down/Up per machine"};
    down[f.machine] = is_down ? 1 : 0;
    prev_fault = f.time;
  }
  if (cfg.retry.backoff < 0.0 || cfg.retry.backoff_factor < 1.0)
    throw std::invalid_argument{
        "simulate: retry backoff must be >= 0 with factor >= 1"};
  if (cfg.retry.checkpoint < 0.0 || cfg.retry.checkpoint > 1.0)
    throw std::invalid_argument{"simulate: retry checkpoint must be in [0, 1]"};
  if (cfg.admission.util_limit < 0.0 || cfg.admission.util_limit > 1.0)
    throw std::invalid_argument{
        "simulate: admission util_limit must be in [0, 1]"};
  if (cfg.admission.defer_delay < 0.0)
    throw std::invalid_argument{"simulate: admission defer_delay must be >= 0"};
}

// --- indexed fleet engine -------------------------------------------

/// One running job in the indexed engine. `remaining` is materialized
/// as of the owning machine's `upd` time; `slowdown` and `eta` are
/// valid for the machine's current resident multiset.
struct Resident {
  std::size_t job = 0;   ///< trace index
  std::size_t type = 0;
  double remaining = 0.0;
  double slowdown = 1.0;
  double eta = kInf;     ///< absolute completion estimate
  double slo = 0.0;      ///< JobSpec::slo_p99 (0 = best-effort)
};

struct MachineState {
  std::vector<Resident> residents;
  double upd = 0.0;           ///< time `remaining` values were materialized
  std::uint64_t version = 0;  ///< bumped on every resident-set change
  double next_eta = kInf;     ///< min resident eta (ties: lowest slot)
  std::size_t next_pos = 0;
};

/// Machines with >= 1 free slot, as a bitset: O(1) toggle, popcount
/// count, and word-scan enumeration -- the free-slot index behind
/// ClusterView::kth_open.
class OpenSet {
 public:
  explicit OpenSet(std::size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  void set(std::size_t i) {
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t b = 1ull << (i & 63);
    if (!(w & b)) {
      w |= b;
      ++count_;
    }
  }
  void clear(std::size_t i) {
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t b = 1ull << (i & 63);
    if (w & b) {
      w &= ~b;
      --count_;
    }
  }
  std::size_t count() const { return count_; }

  /// First open machine with index >= from; n (== machines) if none.
  std::size_t next(std::size_t from) const {
    if (from >= n_) return n_;
    std::size_t wi = from >> 6;
    std::uint64_t w = words_[wi] & (~0ull << (from & 63));
    while (true) {
      if (w) return (wi << 6) + static_cast<std::size_t>(std::countr_zero(w));
      if (++wi == words_.size()) return n_;
      w = words_[wi];
    }
  }

 private:
  std::size_t n_;
  std::size_t count_ = 0;
  std::vector<std::uint64_t> words_;
};

/// The policies' window into the engine. Views materialize lazily and
/// are cached per event stamp; kth_open serves the ascending scans the
/// policies and the regret billing do in O(1) amortized per step.
class EngineView final : public ClusterView {
 public:
  EngineView(const std::vector<MachineState>& ms, const OpenSet& open,
             std::size_t slots, const double& t, const std::uint64_t& stamp)
      : ms_(ms),
        open_(open),
        slots_(slots),
        t_(t),
        stamp_(stamp),
        views_(ms.size()),
        view_stamp_(ms.size(), 0) {}

  std::size_t machines() const override { return ms_.size(); }
  std::size_t open_count() const override { return open_.count(); }

  std::size_t kth_open(std::size_t k) const override {
    const bool warm = scan_stamp_ == stamp_;
    std::size_t m, kk;
    if (warm && k == last_k_) return last_m_;
    if (warm && k == last_k_ + 1) {
      m = open_.next(last_m_ + 1);
    } else {
      m = open_.next(0);
      for (kk = 0; kk < k && m < ms_.size(); ++kk) m = open_.next(m + 1);
    }
    if (m >= ms_.size())
      throw std::out_of_range{"ClusterView::kth_open: index past open set"};
    scan_stamp_ = stamp_;
    last_k_ = k;
    last_m_ = m;
    return m;
  }

  std::size_t free_slots(std::size_t m) const override {
    return slots_ - ms_[m].residents.size();
  }

  const MachineView& view(std::size_t m) const override {
    MachineView& v = views_[m];
    if (view_stamp_[m] != stamp_) {
      const MachineState& s = ms_[m];
      v.free_slots = slots_ - s.residents.size();
      v.residents.clear();
      for (const Resident& r : s.residents)
        v.residents.push_back(
            {r.type,
             std::max(0.0, r.remaining - (t_ - s.upd) / r.slowdown),
             r.slo});
      view_stamp_[m] = stamp_;
    }
    return v;
  }

 private:
  const std::vector<MachineState>& ms_;
  const OpenSet& open_;
  std::size_t slots_;
  const double& t_;
  const std::uint64_t& stamp_;
  mutable std::vector<MachineView> views_;
  mutable std::vector<std::uint64_t> view_stamp_;
  mutable std::uint64_t scan_stamp_ = 0;
  mutable std::size_t last_k_ = 0;
  mutable std::size_t last_m_ = 0;
};

/// Min-heap entry: machine `machine`'s earliest completion, valid while
/// its version matches (lazy invalidation -- a resident-set change
/// bumps the version and pushes a fresh entry).
struct HeapEntry {
  double eta = kInf;
  std::size_t machine = 0;
  std::uint64_t version = 0;
};
struct HeapLater {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.eta != b.eta) return a.eta > b.eta;
    return a.machine > b.machine;  // deterministic: lowest machine first
  }
};

/// A killed or deferred job waiting out its simulated-time delay before
/// re-entering the waiting lanes. Min-heap by (ready, jid) so
/// same-instant requeues drain in trace order.
struct Requeue {
  double ready = 0.0;
  std::size_t jid = 0;
  bool deferred = false;  ///< re-check admission control on re-entry
};
struct RequeueLater {
  bool operator()(const Requeue& a, const Requeue& b) const {
    if (a.ready != b.ready) return a.ready > b.ready;
    return a.jid > b.jid;
  }
};

}  // namespace

ClusterResult simulate(const ClusterConfig& cfg,
                       harness::InterferenceTruth& truth,
                       const std::vector<JobSpec>& trace,
                       PlacementPolicy& policy) {
  validate(cfg, truth, trace, /*fleet_engine=*/true);
  const std::uint64_t fallbacks_before = truth.fallbacks();

  std::vector<MachineState> machines(cfg.machines);
  OpenSet open(cfg.machines);
  for (std::size_t m = 0; m < cfg.machines; ++m) open.set(m);
  std::vector<char> alive(cfg.machines, 1);
  std::size_t alive_machines = cfg.machines;

  unsigned max_priority = 0;
  for (const JobSpec& j : trace) max_priority = std::max(max_priority, j.priority);
  std::vector<std::deque<std::size_t>> waiting(max_priority + 1);
  std::size_t waiting_count = 0;

  ClusterResult res;
  res.outcomes.resize(trace.size());
  // Does any job carry an SLO budget? When not, the LC billing below
  // is skipped entirely -- no tail_slowdown queries are issued, so
  // batch-only runs are byte-identical to the pre-SLO engine.
  bool any_lc = false;
  for (const JobSpec& j : trace)
    if (j.latency_critical()) {
      any_lc = true;
      ++res.lc_jobs;
    }
  // Solo work a job still owes at its next placement: its full demand
  // until a failure kill or eviction applies the work-loss model.
  std::vector<double> pending(trace.size(), 0.0);
  std::vector<char> placed(trace.size(), 0);  // first placement recorded
  std::vector<double> class_regret(max_priority + 1, 0.0);
  std::vector<std::size_t> class_billed(max_priority + 1, 0);
  double t = 0.0;
  std::uint64_t stamp = 1;
  std::size_t next_arrival = 0;
  std::size_t running_count = 0;
  std::size_t decisions = 0;
  std::size_t next_fault = 0;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLater> heap;
  std::priority_queue<Requeue, std::vector<Requeue>, RequeueLater> requeue;
  EngineView cview{machines, open, cfg.slots, t, stamp};

  // Observability: a simulated-time timeline (own trace process per
  // run, so back-to-back policy sweeps do not overwrite each other's
  // lanes) plus registry counters. Everything is read-only over the
  // loop's state and branch-free when disabled.
  obs::Trace& tr = obs::Trace::instance();
  const bool traced = tr.enabled();
  const int trace_pid = traced ? tr.next_pid() : 0;
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& placements_ctr = reg.counter("cluster.placements");
  obs::Counter& completions_ctr = reg.counter("cluster.completions");
  obs::Counter& failures_ctr = reg.counter("cluster.failures");
  obs::Counter& recoveries_ctr = reg.counter("cluster.recoveries");
  obs::Counter& fault_kills_ctr = reg.counter("cluster.fault_kills");
  obs::Counter& retries_ctr = reg.counter("cluster.retries");
  obs::Counter& migrations_ctr = reg.counter("cluster.migrations");
  obs::Counter& shed_ctr = reg.counter("cluster.shed");
  if (traced) {
    tr.name_process(trace_pid, "cluster " + policy.name() + " (" +
                                   std::to_string(cfg.machines) + "x" +
                                   std::to_string(cfg.slots) +
                                   ", simulated time)");
    for (std::size_t m = 0; m < cfg.machines; ++m)
      tr.name_thread(trace_pid, static_cast<int>(m),
                     "machine " + std::to_string(m));
  }
  const auto type_label = [&](std::size_t type) -> std::string {
    if (type < cfg.type_names.size()) return cfg.type_names[type];
    std::string label{"t"};
    label += std::to_string(type);
    return label;
  };
  // Start of the current constant-resident-set interval, per machine.
  std::vector<double> lane_since(traced ? cfg.machines : 0, 0.0);
  // When the machine's current outage began (traced runs only).
  std::vector<double> down_since(traced ? cfg.machines : 0, 0.0);
  // Closes machine m's resident-set span at the current time `t`; call
  // BEFORE mutating its residents.
  const auto close_lane = [&](std::size_t m) {
    if (!traced) return;
    if (!machines[m].residents.empty() && t > lane_since[m]) {
      std::string label;
      for (const Resident& r : machines[m].residents) {
        if (!label.empty()) label += '+';
        label += type_label(r.type);
      }
      tr.complete(trace_pid, static_cast<int>(m), std::move(label),
                  lane_since[m] * kTraceUsPerUnit,
                  (t - lane_since[m]) * kTraceUsPerUnit,
                  obs::Args{}.set("residents", machines[m].residents.size())
                      .str());
    }
    lane_since[m] = t;
  };
  const auto emit_queue_depth = [&] {
    if (traced)
      tr.counter_at(trace_pid, "queue_depth", t * kTraceUsPerUnit,
                    static_cast<double>(waiting_count));
  };

  // Brings machine m's remaining-work accounting up to `t`: one
  // decrement per resident per constant-rate interval, clamped at zero
  // so completion arithmetic never leaves a negative residue.
  const auto materialize = [&](MachineState& ms) {
    if (ms.upd == t) return;
    for (Resident& r : ms.residents)
      r.remaining = std::max(0.0, r.remaining - (t - ms.upd) / r.slowdown);
    ms.upd = t;
  };

  // Scratch buffers reused across all truth queries and observations.
  std::vector<std::size_t> others_scratch, group_scratch;
  std::vector<double> gslow_scratch;

  // Re-derives machine m's cached rates after a resident-set change at
  // time `t` (call with `remaining` already materialized to `t`): one
  // truth query per resident, fresh ETAs, new heap entry.
  const auto reindex = [&](std::size_t m) {
    MachineState& ms = machines[m];
    ++ms.version;
    ms.next_eta = kInf;
    ms.next_pos = 0;
    for (std::size_t i = 0; i < ms.residents.size(); ++i) {
      others_scratch.clear();
      for (std::size_t j = 0; j < ms.residents.size(); ++j)
        if (j != i) others_scratch.push_back(ms.residents[j].type);
      ms.residents[i].slowdown =
          truth.slowdown(ms.residents[i].type, others_scratch);
    }
    for (std::size_t i = 0; i < ms.residents.size(); ++i) {
      Resident& r = ms.residents[i];
      r.eta = t + std::max(0.0, r.remaining) * r.slowdown;
      if (r.eta < ms.next_eta) {
        ms.next_eta = r.eta;
        ms.next_pos = i;
      }
    }
    if (!ms.residents.empty()) heap.push({ms.next_eta, m, ms.version});
  };

  // --- graceful-degradation helpers (inert on a fault-free run) -------

  // Admission-control overload predicate: queue depth at the limit, or
  // busy share of the *alive* slot pool at the utilization limit. An
  // all-down fleet counts as overloaded.
  const auto overloaded = [&] {
    const AdmissionConfig& adm = cfg.admission;
    if (adm.queue_limit > 0 && waiting_count >= adm.queue_limit) return true;
    if (adm.util_limit > 0.0) {
      const double cap =
          static_cast<double>(alive_machines * cfg.slots);
      if (cap <= 0.0) return true;
      if (static_cast<double>(running_count) >= adm.util_limit * cap)
        return true;
    }
    return false;
  };

  // Drops a job for good: its outstanding solo work is the admission
  // delta of never running it, billed into shed_work / class stats.
  const auto shed_job = [&](std::size_t jid) {
    JobOutcome& out = res.outcomes[jid];
    out.shed = true;
    ++res.shed_jobs;
    res.shed_work += pending[jid];
    shed_ctr.add();
    res.log.events.push_back({TraceEvent::Kind::Shed, t, trace[jid].id,
                              trace[jid].type, 0, pending[jid]});
  };

  // Queues a job into its priority lane, re-checking admission control
  // when asked (fresh arrivals and deferred re-entries; failure retries
  // were already admitted and skip the check).
  const auto admit = [&](std::size_t jid, bool check_admission) {
    const JobSpec& job = trace[jid];
    JobOutcome& out = res.outcomes[jid];
    if (check_admission && cfg.admission.enabled() &&
        job.priority < cfg.admission.shed_below && overloaded()) {
      if (cfg.admission.defer_delay > 0.0 &&
          out.defers < cfg.admission.max_defers) {
        ++out.defers;
        const double until = t + cfg.admission.defer_delay;
        res.log.events.push_back(
            {TraceEvent::Kind::Defer, t, job.id, job.type, 0, until});
        requeue.push({until, jid, /*deferred=*/true});
      } else {
        shed_job(jid);
      }
      return;
    }
    waiting[job.priority].push_back(jid);
    ++waiting_count;
    emit_queue_depth();
  };

  // Applies the work-loss model to a resident killed at time `t` with
  // `remaining` solo work left in its current attempt (materialized),
  // then requeues it with exponential backoff -- or sheds it once its
  // retry budget is spent.
  const auto kill_resident = [&](std::size_t jid, double remaining,
                                 std::size_t m) {
    const double executed = pending[jid] - remaining;
    pending[jid] =
        std::max(0.0, pending[jid] - cfg.retry.checkpoint * executed);
    JobOutcome& out = res.outcomes[jid];
    ++res.fault_kills;
    fault_kills_ctr.add();
    if (out.retries >= cfg.retry.max_retries) {
      shed_job(jid);
      return;
    }
    ++out.retries;
    retries_ctr.add();
    const double delay =
        cfg.retry.backoff *
        std::pow(cfg.retry.backoff_factor,
                 static_cast<double>(out.retries - 1));
    res.log.events.push_back({TraceEvent::Kind::Evict, t, trace[jid].id,
                              trace[jid].type, m, pending[jid]});
    requeue.push({t + delay, jid, /*deferred=*/false});
  };

  const auto drain_waiting = [&] {
    while (waiting_count > 0) {
      if (open.count() == 0) {
        // Preemptive migration: let the highest waiting class claim a
        // slot from a strictly lower-priority resident (lowest class
        // first; ties to the lowest machine then slot). The victim
        // pays the work-loss restart penalty and requeues immediately
        // at the back of its own lane -- no backoff, it did nothing
        // wrong. Progress is guaranteed: every eviction is followed by
        // a strictly higher-priority placement.
        if (!cfg.migration.preempt) break;
        std::size_t top = 0;
        for (std::size_t c = waiting.size(); c-- > 0;) {
          if (!waiting[c].empty()) {
            top = c;
            break;
          }
        }
        std::size_t vm = cfg.machines, vs = 0;
        unsigned vprio = 0;
        for (std::size_t m = 0; m < cfg.machines; ++m) {
          for (std::size_t s = 0; s < machines[m].residents.size(); ++s) {
            const unsigned p = trace[machines[m].residents[s].job].priority;
            if (p >= top) continue;
            if (vm == cfg.machines || p < vprio) {
              vm = m;
              vs = s;
              vprio = p;
            }
          }
        }
        if (vm == cfg.machines) break;  // nothing strictly lower to evict
        MachineState& vms = machines[vm];
        const std::size_t vjid = vms.residents[vs].job;
        close_lane(vm);  // the resident set is about to change
        materialize(vms);
        const double vleft = vms.residents[vs].remaining;
        const double vexecuted = pending[vjid] - vleft;
        pending[vjid] = std::max(
            0.0, pending[vjid] - cfg.retry.checkpoint * vexecuted);
        vms.residents.erase(vms.residents.begin() +
                            static_cast<std::ptrdiff_t>(vs));
        open.set(vm);
        reindex(vm);
        --running_count;
        ++stamp;
        ++res.migrations;
        migrations_ctr.add();
        ++res.outcomes[vjid].evictions;
        res.log.events.push_back({TraceEvent::Kind::Evict, t, trace[vjid].id,
                                  trace[vjid].type, vm, pending[vjid]});
        if (traced)
          tr.instant_at(trace_pid, static_cast<int>(vm),
                        "evict " + type_label(trace[vjid].type),
                        t * kTraceUsPerUnit,
                        obs::Args{}
                            .set("job", trace[vjid].id)
                            .set("for_class", top)
                            .set("work_left", pending[vjid])
                            .str());
        waiting[vprio].push_back(vjid);
        ++waiting_count;
        emit_queue_depth();
        continue;
      }
      std::size_t jid = 0;
      for (std::size_t c = waiting.size(); c-- > 0;) {
        if (!waiting[c].empty()) {
          jid = waiting[c].front();
          waiting[c].pop_front();
          --waiting_count;
          break;
        }
      }
      // The job demands only its outstanding work: identical to the
      // original spec until a kill or eviction shrinks it.
      JobSpec job = trace[jid];
      job.work = pending[jid];
      const std::size_t m = policy.place(job, cview);
      if (m >= cfg.machines || machines[m].residents.size() >= cfg.slots)
        throw std::logic_error{"simulate: policy chose a full machine"};
      // Bill the decision at ground truth: how much worse was the
      // chosen machine than the best one actually available?
      const bool billed =
          cfg.regret_sample != 0 && decisions % cfg.regret_sample == 0;
      ++decisions;
      double chosen = 0.0, best = kInf;
      double lc_chosen = 0.0, lc_best = kInf;
      if (billed) {
        for (std::size_t v = open.next(0); v < cfg.machines;
             v = open.next(v + 1)) {
          const double d =
              placement_delta(truth, job.type, job.work, cview.view(v));
          if (v == m) chosen = d;
          best = std::min(best, d);
          // LC tail billing rides the same candidate scan: every billed
          // decision on an SLO-carrying trace pays for the true tail
          // violation it inflicts (a best-effort aggressor placed next
          // to a running LC job blows that job's p99, and this is the
          // decision that did it).
          if (any_lc) {
            const double lv = slo_violation(truth, job, cview.view(v));
            if (v == m) lc_chosen = lv;
            lc_best = std::min(lc_best, lv);
          }
        }
        res.mean_decision_regret += chosen - best;
        ++res.billed_decisions;
        class_regret[job.priority] += chosen - best;
        ++class_billed[job.priority];
        if (any_lc) {
          res.mean_lc_tail_regret += lc_chosen - lc_best;
          ++res.lc_billed_decisions;
          if (lc_chosen > 0.0) ++res.slo_violation_decisions;
        }
      }
      placements_ctr.add();
      if (traced) {
        obs::Args args;
        args.set("job", job.id)
            .set("policy", policy.name())
            .set("predicted_cost", policy.last_cost_delta());
        if (billed) args.set("true_cost", chosen).set("regret", chosen - best);
        if (billed && any_lc)
          args.set("lc_regret", lc_chosen - lc_best);
        args.set("queued_for", t - job.arrival);
        tr.instant_at(trace_pid, static_cast<int>(m),
                      "place " + type_label(job.type), t * kTraceUsPerUnit,
                      args.str());
      }
      // Report the full group outcome -- every member's true slowdown
      // in the machine's new resident group. The new job leads, so a
      // 2-resident group decomposes into the historical observe_pair
      // order; 3+-resident outcomes are what the deconvolving online
      // policy refines itself with.
      if (!machines[m].residents.empty()) {
        group_scratch.clear();
        group_scratch.push_back(job.type);
        for (const Resident& r : machines[m].residents)
          group_scratch.push_back(r.type);
        gslow_scratch.assign(group_scratch.size(), 1.0);
        if (group_scratch.size() == 2) {
          // Pair outcomes are raw 2-resident entries -- unclamped,
          // exactly the feedback the legacy loop reported.
          gslow_scratch[0] = truth.pair_entry(group_scratch[0], group_scratch[1]);
          gslow_scratch[1] = truth.pair_entry(group_scratch[1], group_scratch[0]);
        } else {
          for (std::size_t i = 0; i < group_scratch.size(); ++i)
            gslow_scratch[i] = truth.slowdown(
                group_scratch[i], harness::others_excluding(group_scratch, i));
        }
        policy.observe_group(group_scratch, gslow_scratch);
      }
      close_lane(m);  // the resident set is about to change
      materialize(machines[m]);
      machines[m].residents.push_back(
          {jid, job.type, job.work, 1.0, kInf, job.slo_p99});
      if (machines[m].residents.size() == cfg.slots) open.clear(m);
      reindex(m);
      ++running_count;
      ++stamp;
      JobOutcome& out = res.outcomes[jid];
      out.machine = m;
      if (!placed[jid]) {
        placed[jid] = 1;
        out.start = t;
      }
      res.log.events.push_back({TraceEvent::Kind::Place, t, job.id, job.type,
                                m, policy.last_cost_delta()});
      emit_queue_depth();
    }
  };

  while (next_arrival < trace.size() || running_count > 0 ||
         waiting_count > 0 || !requeue.empty()) {
    // Earliest completion from the heap (stale entries dropped);
    // ties resolve to the lowest machine then slot, deterministically.
    double t_done = kInf;
    std::size_t done_m = 0;
    while (!heap.empty()) {
      const HeapEntry& top = heap.top();
      if (top.version != machines[top.machine].version) {
        heap.pop();
        continue;
      }
      t_done = top.eta;
      done_m = top.machine;
      break;
    }
    const double t_arr =
        next_arrival < trace.size() ? trace[next_arrival].arrival : kInf;
    const double t_fault =
        next_fault < cfg.faults.size() ? cfg.faults[next_fault].time : kInf;
    const double t_req = requeue.empty() ? kInf : requeue.top().ready;
    if (t_done == kInf && t_arr == kInf && t_fault == kInf && t_req == kInf)
      throw std::logic_error{"simulate: stuck with waiting jobs"};

    // Completions first on ties: a freed slot should serve a job
    // arriving at the same instant, and a job finishing as its machine
    // dies finished. Then faults (a same-instant recovery frees slots
    // before requeues and arrivals queue), then requeues before
    // arrivals (an old job re-enters its lane ahead of a newcomer).
    if (t_done <= t_arr && t_done <= t_fault && t_done <= t_req) {
      heap.pop();
      t = t_done;
      ++stamp;
      MachineState& ms = machines[done_m];
      const std::size_t pos = ms.next_pos;
      const std::size_t jid = ms.residents[pos].job;
      close_lane(done_m);  // the resident set is about to change
      completions_ctr.add();
      materialize(ms);
      ms.residents.erase(ms.residents.begin() +
                         static_cast<std::ptrdiff_t>(pos));
      open.set(done_m);
      reindex(done_m);
      --running_count;
      JobOutcome& out = res.outcomes[jid];
      out.finish = t;
      res.log.events.push_back({TraceEvent::Kind::Finish, t, trace[jid].id,
                                out.type, done_m, out.corun_slowdown()});
    } else if (t_fault <= t_arr && t_fault <= t_req) {
      const FaultEvent& f = cfg.faults[next_fault];
      ++next_fault;
      t = f.time;
      ++stamp;
      if (f.kind == FaultEvent::Kind::Down) {
        MachineState& ms = machines[f.machine];
        close_lane(f.machine);  // the resident set is about to change
        materialize(ms);
        ++res.failures;
        failures_ctr.add();
        res.log.events.push_back(
            {TraceEvent::Kind::Fail, t, 0, 0, f.machine, 0.0});
        for (const Resident& r : ms.residents)
          kill_resident(r.job, r.remaining, f.machine);
        running_count -= ms.residents.size();
        ms.residents.clear();
        open.clear(f.machine);
        alive[f.machine] = 0;
        --alive_machines;
        reindex(f.machine);  // empty: just invalidates stale heap entries
        if (traced) down_since[f.machine] = t;
      } else {
        ++res.recoveries;
        recoveries_ctr.add();
        res.log.events.push_back(
            {TraceEvent::Kind::Recover, t, 0, 0, f.machine, 0.0});
        alive[f.machine] = 1;
        ++alive_machines;
        open.set(f.machine);
        if (traced) {
          tr.complete(trace_pid, static_cast<int>(f.machine), "DOWN",
                      down_since[f.machine] * kTraceUsPerUnit,
                      (t - down_since[f.machine]) * kTraceUsPerUnit,
                      obs::Args{}.set("machine", f.machine).str());
          lane_since[f.machine] = t;
        }
      }
    } else if (t_req <= t_arr) {
      const Requeue rq = requeue.top();
      requeue.pop();
      t = rq.ready;
      ++stamp;
      admit(rq.jid, /*check_admission=*/rq.deferred);
    } else {
      const JobSpec& job = trace[next_arrival];
      t = t_arr;
      ++stamp;
      res.log.events.push_back(
          {TraceEvent::Kind::Arrive, t, job.id, job.type, 0, 0.0});
      JobOutcome& out = res.outcomes[next_arrival];
      out.job = job.id;
      out.type = job.type;
      out.arrival = job.arrival;
      out.work = job.work;
      pending[next_arrival] = job.work;
      admit(next_arrival, /*check_admission=*/true);
      ++next_arrival;
    }
    drain_waiting();
  }

  res.class_stats.assign(max_priority + 1, ClassStats{});
  if (!res.outcomes.empty()) {
    for (std::size_t i = 0; i < res.outcomes.size(); ++i) {
      const JobOutcome& o = res.outcomes[i];
      ClassStats& cs = res.class_stats[trace[i].priority];
      ++cs.jobs;
      cs.work_arrived += o.work;
      if (o.completed()) {
        ++cs.completed;
        ++res.completed_jobs;
        cs.work_completed += o.work;
        cs.mean_stretch += o.stretch();
        res.mean_stretch += o.stretch();
        res.mean_corun_slowdown += o.corun_slowdown();
        res.makespan = std::max(res.makespan, o.finish);
      }
      if (o.shed) ++cs.shed;
    }
    if (res.completed_jobs > 0) {
      res.mean_stretch /= static_cast<double>(res.completed_jobs);
      res.mean_corun_slowdown /= static_cast<double>(res.completed_jobs);
    }
    for (unsigned c = 0; c <= max_priority; ++c) {
      ClassStats& cs = res.class_stats[c];
      if (cs.completed > 0)
        cs.mean_stretch /= static_cast<double>(cs.completed);
      if (res.makespan > 0.0) cs.goodput = cs.work_completed / res.makespan;
      cs.billed = class_billed[c];
      if (cs.billed > 0)
        cs.mean_regret = class_regret[c] / static_cast<double>(cs.billed);
      reg.gauge("cluster.goodput.p" + std::to_string(c)).set(cs.goodput);
    }
  }
  if (res.billed_decisions > 0)
    res.mean_decision_regret /= static_cast<double>(res.billed_decisions);
  if (res.lc_billed_decisions > 0)
    res.mean_lc_tail_regret /= static_cast<double>(res.lc_billed_decisions);
  res.pairwise_fallbacks = truth.fallbacks() - fallbacks_before;
  return res;
}

ClusterResult simulate(const ClusterConfig& cfg,
                       const harness::CorunMatrix& truth,
                       const std::vector<JobSpec>& trace,
                       PlacementPolicy& policy) {
  harness::MatrixTruth additive{truth};
  return simulate(cfg, additive, trace, policy);
}

// --- reference engine (the executable specification) ----------------

namespace {

struct Running {
  std::size_t job = 0;
  double remaining = 0.0;  ///< solo-time units still to execute
};

}  // namespace

ClusterResult simulate_reference(const ClusterConfig& cfg,
                                 harness::InterferenceTruth& truth,
                                 const std::vector<JobSpec>& trace,
                                 PlacementPolicy& policy) {
  validate(cfg, truth, trace, /*fleet_engine=*/false);
  const std::uint64_t fallbacks_before = truth.fallbacks();

  std::vector<std::vector<Running>> machines(cfg.machines);
  std::deque<std::size_t> waiting;  // arrived, not yet placed (FIFO)
  ClusterResult res;
  res.outcomes.resize(trace.size());
  double t = 0.0;
  std::size_t next_arrival = 0;
  std::size_t running_count = 0;

  obs::Trace& tr = obs::Trace::instance();
  const bool traced = tr.enabled();
  const int trace_pid = traced ? tr.next_pid() : 0;
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& placements_ctr = reg.counter("cluster.placements");
  obs::Counter& completions_ctr = reg.counter("cluster.completions");
  if (traced) {
    tr.name_process(trace_pid, "cluster " + policy.name() + " (" +
                                   std::to_string(cfg.machines) + "x" +
                                   std::to_string(cfg.slots) +
                                   ", simulated time, reference)");
    for (std::size_t m = 0; m < cfg.machines; ++m)
      tr.name_thread(trace_pid, static_cast<int>(m),
                     "machine " + std::to_string(m));
  }
  const auto type_label = [&](std::size_t type) -> std::string {
    if (type < cfg.type_names.size()) return cfg.type_names[type];
    std::string label{"t"};
    label += std::to_string(type);
    return label;
  };
  std::vector<double> lane_since(cfg.machines, 0.0);
  const auto close_lane = [&](std::size_t m) {
    if (!traced) return;
    if (!machines[m].empty() && t > lane_since[m]) {
      std::string label;
      for (const Running& r : machines[m]) {
        if (!label.empty()) label += '+';
        label += type_label(trace[r.job].type);
      }
      tr.complete(trace_pid, static_cast<int>(m), std::move(label),
                  lane_since[m] * kTraceUsPerUnit,
                  (t - lane_since[m]) * kTraceUsPerUnit,
                  obs::Args{}.set("residents", machines[m].size()).str());
    }
    lane_since[m] = t;
  };
  const auto emit_queue_depth = [&] {
    if (traced)
      tr.counter_at(trace_pid, "queue_depth", t * kTraceUsPerUnit,
                    static_cast<double>(waiting.size()));
  };

  // Current slowdown of one resident: the truth oracle's answer for
  // its co-resident group (measured when the truth holds the group,
  // additive pairwise composition otherwise).
  const auto slowdown_of = [&](std::size_t m, std::size_t slot) {
    std::vector<std::size_t> others;
    others.reserve(machines[m].size());
    for (std::size_t s = 0; s < machines[m].size(); ++s)
      if (s != slot) others.push_back(trace[machines[m][s].job].type);
    return truth.slowdown(trace[machines[m][slot].job].type, others);
  };

  const auto drain_waiting = [&] {
    while (!waiting.empty()) {
      std::vector<MachineView> views(cfg.machines);
      bool any_free = false;
      for (std::size_t m = 0; m < cfg.machines; ++m) {
        views[m].free_slots = cfg.slots - machines[m].size();
        any_free = any_free || views[m].free_slots > 0;
        for (const Running& r : machines[m])
          views[m].residents.push_back(
              {trace[r.job].type, std::max(0.0, r.remaining)});
      }
      if (!any_free) return;
      const std::size_t jid = waiting.front();
      waiting.pop_front();
      const JobSpec& job = trace[jid];
      const std::size_t m = policy.place(job, views);
      if (m >= cfg.machines || machines[m].size() >= cfg.slots)
        throw std::logic_error{"simulate: policy chose a full machine"};
      double chosen = 0.0, best = kInf;
      for (std::size_t v = 0; v < views.size(); ++v) {
        if (views[v].free_slots == 0) continue;
        const double d = placement_delta(truth, job.type, job.work, views[v]);
        if (v == m) chosen = d;
        best = std::min(best, d);
      }
      res.mean_decision_regret += chosen - best;
      placements_ctr.add();
      if (traced)
        tr.instant_at(trace_pid, static_cast<int>(m),
                      "place " + type_label(job.type), t * kTraceUsPerUnit,
                      obs::Args{}
                          .set("job", job.id)
                          .set("policy", policy.name())
                          .set("predicted_cost", policy.last_cost_delta())
                          .set("true_cost", chosen)
                          .set("regret", chosen - best)
                          .set("queued_for", t - job.arrival)
                          .str());
      if (!machines[m].empty()) {
        std::vector<std::size_t> group;
        group.reserve(machines[m].size() + 1);
        group.push_back(job.type);
        for (const Running& r : machines[m])
          group.push_back(trace[r.job].type);
        std::vector<double> slowdowns(group.size(), 1.0);
        if (group.size() == 2) {
          slowdowns[0] = truth.pair_entry(group[0], group[1]);
          slowdowns[1] = truth.pair_entry(group[1], group[0]);
        } else {
          for (std::size_t i = 0; i < group.size(); ++i)
            slowdowns[i] =
                truth.slowdown(group[i], harness::others_excluding(group, i));
        }
        policy.observe_group(group, slowdowns);
      }
      close_lane(m);  // the resident set is about to change
      machines[m].push_back({jid, job.work});
      ++running_count;
      JobOutcome& out = res.outcomes[jid];
      out.job = job.id;
      out.type = job.type;
      out.machine = m;
      out.arrival = job.arrival;
      out.start = t;
      out.work = job.work;
      res.log.events.push_back({TraceEvent::Kind::Place, t, job.id, job.type,
                                m, policy.last_cost_delta()});
      emit_queue_depth();
    }
  };

  while (next_arrival < trace.size() || running_count > 0 ||
         !waiting.empty()) {
    // Earliest completion under current (constant-between-events) rates;
    // ties resolve to the lowest machine then slot, deterministically.
    double t_done = kInf;
    std::size_t done_m = 0, done_s = 0;
    for (std::size_t m = 0; m < cfg.machines; ++m)
      for (std::size_t s = 0; s < machines[m].size(); ++s) {
        const double eta =
            t + std::max(0.0, machines[m][s].remaining) * slowdown_of(m, s);
        if (eta < t_done) {
          t_done = eta;
          done_m = m;
          done_s = s;
        }
      }
    const double t_arr =
        next_arrival < trace.size() ? trace[next_arrival].arrival : kInf;
    if (t_done == kInf && t_arr == kInf)
      throw std::logic_error{"simulate: stuck with waiting jobs"};

    // Completions first on ties: a freed slot should serve a job
    // arriving at the same instant.
    const double te = std::min(t_done, t_arr);
    for (std::size_t m = 0; m < cfg.machines; ++m)
      for (std::size_t s = 0; s < machines[m].size(); ++s)
        machines[m][s].remaining -= (te - t) / slowdown_of(m, s);
    t = te;

    if (t_done <= t_arr) {
      const std::size_t jid = machines[done_m][done_s].job;
      close_lane(done_m);  // the resident set is about to change
      completions_ctr.add();
      machines[done_m].erase(machines[done_m].begin() +
                             static_cast<std::ptrdiff_t>(done_s));
      --running_count;
      JobOutcome& out = res.outcomes[jid];
      out.finish = t;
      res.log.events.push_back({TraceEvent::Kind::Finish, t, trace[jid].id,
                                out.type, done_m, out.corun_slowdown()});
    } else {
      const JobSpec& job = trace[next_arrival];
      res.log.events.push_back(
          {TraceEvent::Kind::Arrive, t, job.id, job.type, 0, 0.0});
      waiting.push_back(next_arrival);
      ++next_arrival;
      emit_queue_depth();
    }
    drain_waiting();
  }

  if (!res.outcomes.empty()) {
    res.billed_decisions = res.outcomes.size();
    for (const JobOutcome& o : res.outcomes) {
      res.mean_stretch += o.stretch();
      res.mean_corun_slowdown += o.corun_slowdown();
      res.makespan = std::max(res.makespan, o.finish);
    }
    res.mean_stretch /= static_cast<double>(res.outcomes.size());
    res.mean_corun_slowdown /= static_cast<double>(res.outcomes.size());
    res.mean_decision_regret /= static_cast<double>(res.outcomes.size());
  }
  res.pairwise_fallbacks = truth.fallbacks() - fallbacks_before;
  return res;
}

ClusterResult simulate_reference(const ClusterConfig& cfg,
                                 const harness::CorunMatrix& truth,
                                 const std::vector<JobSpec>& trace,
                                 PlacementPolicy& policy) {
  harness::MatrixTruth additive{truth};
  return simulate_reference(cfg, additive, trace, policy);
}

}  // namespace coperf::cluster
