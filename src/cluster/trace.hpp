// Arrival traces and the placement audit log (cluster subsystem).
//
// A trace is the online scheduler's input: a stream of jobs, each an
// instance of one of the co-run matrix's workload types, with an
// arrival time and a solo-work demand. synthetic_trace() draws one
// deterministically from a seed (exponential interarrivals, uniform
// work, uniform types); fleet_trace() generalizes it to datacenter
// shapes -- diurnal load, bursty (two-state modulated) arrivals,
// heavy-tailed Pareto durations, and job priority classes -- so every
// experiment is reproducible bit-for-bit at any scale. TraceLog is the
// simulator's output side: every arrival, placement, and completion,
// rendered to text with fixed precision so the same seed yields
// byte-identical logs (the determinism property tests/cluster_test.cpp
// locks).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace coperf::cluster {

/// Highest admissible JobSpec::priority (inclusive): the simulator
/// keeps one FIFO lane per class, so the class count stays small.
inline constexpr unsigned kMaxPriority = 7;

/// One job in the arrival stream.
struct JobSpec {
  std::size_t id = 0;    ///< stable identity, echoed verbatim in the log
  std::size_t type = 0;  ///< index into the co-run matrix's workload axis
  double arrival = 0.0;  ///< simulated seconds, non-decreasing
  double work = 1.0;     ///< solo execution time this job needs
  /// Priority class (0 = best effort). Higher classes leave the
  /// waiting queue first; FIFO within a class. <= kMaxPriority.
  unsigned priority = 0;
  /// SLO class. > 0 marks the job latency-critical with this p99
  /// slowdown budget (e.g. 1.5 = "p99 request latency may stretch at
  /// most 1.5x over solo"); the simulator bills tail-latency regret on
  /// every decision that could blow such a budget. 0 (the default) =
  /// best-effort: billed on throughput only, exactly as before.
  double slo_p99 = 0.0;

  bool latency_critical() const { return slo_p99 > 0.0; }

  bool operator==(const JobSpec&) const = default;
};

struct TraceOptions {
  std::size_t jobs = 1000;
  std::uint64_t seed = 1;
  double mean_interarrival = 1.0;  ///< exponential interarrival mean
  double mean_work = 8.0;          ///< work uniform in [0.5, 1.5] x mean
};

/// Deterministic synthetic arrival stream over `n_types` workload
/// types. Same (n_types, options) => identical trace.
std::vector<JobSpec> synthetic_trace(std::size_t n_types,
                                     const TraceOptions& opt);

/// Arrival-process shapes for fleet_trace().
enum class ArrivalModel {
  Poisson,  ///< constant-rate exponential interarrivals
  /// Rate modulated sinusoidally: rate(t) = base * (1 + amplitude *
  /// sin(2*pi*t / period)) -- the day/night load swing.
  Diurnal,
  /// Two-state modulated Poisson: a burst state multiplies the rate by
  /// burst_boost; state flips per arrival with probabilities derived
  /// from burst_on / burst_mean_len. Models incast/retry storms.
  Bursty,
};

/// Work-demand shapes for fleet_trace().
enum class WorkModel {
  Uniform,  ///< uniform in [0.5, 1.5] x mean_work (synthetic_trace's law)
  /// Pareto(alpha) scaled to unit mean, capped at work_cap x -- the
  /// heavy tail real cluster traces show (most jobs short, a few huge).
  Pareto,
};

struct FleetTraceOptions {
  std::size_t jobs = 100'000;
  std::uint64_t seed = 1;
  double mean_interarrival = 1.0;  ///< base (long-run) interarrival mean

  ArrivalModel arrivals = ArrivalModel::Poisson;
  double diurnal_period = 1024.0;   ///< simulated time units per "day"
  double diurnal_amplitude = 0.75;  ///< in [0, 1): peak-to-mean swing
  double burst_boost = 8.0;         ///< rate multiplier inside a burst
  double burst_on = 0.1;            ///< long-run fraction of bursty arrivals
  double burst_mean_len = 50.0;     ///< mean arrivals per burst episode

  WorkModel work = WorkModel::Uniform;
  double mean_work = 8.0;
  double pareto_alpha = 1.8;  ///< tail index, > 1 so the mean exists
  double work_cap = 256.0;    ///< cap on the Pareto multiplier

  /// Priority-class mix: share per class, class index == priority
  /// (normalized internally; at most kMaxPriority + 1 classes). Empty
  /// = everything class 0.
  std::vector<double> class_shares;
};

/// Deterministic fleet-shaped arrival stream over `n_types` workload
/// types: same (n_types, options) => identical trace. Arrivals are
/// sorted, ids are dense trace order, work is positive.
std::vector<JobSpec> fleet_trace(std::size_t n_types,
                                 const FleetTraceOptions& opt);

/// One machine availability transition: at `time`, `machine` goes down
/// (Down -- every resident job is killed) or comes back (Up). The
/// fault-injection input of cluster::simulate.
struct FaultEvent {
  enum class Kind { Down, Up };
  double time = 0.0;
  std::size_t machine = 0;
  Kind kind = Kind::Down;

  bool operator==(const FaultEvent&) const = default;
};

struct FaultScheduleOptions {
  std::uint64_t seed = 1;
  /// Failures are drawn while they land before this simulated time;
  /// each failure's recovery is always emitted (possibly past the
  /// horizon), so every Down has a matching Up.
  double horizon = 1000.0;
  double mtbf = 500.0;  ///< mean up-time between failures (exponential)
  double mttr = 25.0;   ///< mean repair time (exponential)
};

/// Seed-deterministic per-machine failure/recovery process: alternating
/// exponential up-times (mean `mtbf`) and repair times (mean `mttr`),
/// merged and sorted by (time, machine). Each machine draws from its
/// own seed stream, so machine k's schedule does not depend on how many
/// machines the fleet has. Same (machines, options) => identical
/// schedule.
std::vector<FaultEvent> fault_schedule(std::size_t machines,
                                       const FaultScheduleOptions& opt);

/// One line of the simulator's audit log.
struct TraceEvent {
  enum class Kind { Arrive, Place, Finish, Fail, Recover, Evict, Shed, Defer };
  Kind kind = Kind::Arrive;
  double time = 0.0;
  std::size_t job = 0;  ///< JobSpec::id -- the same identity in all kinds
  std::size_t type = 0;
  std::size_t machine = 0;  ///< Place/Finish/Fail/Recover/Evict only
  /// Place: the policy's predicted cost delta for the chosen machine;
  /// Finish: the slowdown the job actually experienced;
  /// Evict/Shed: the solo work the job still needed;
  /// Defer: the time the job re-enters the waiting queue.
  double value = 0.0;
};

struct TraceLog {
  std::vector<TraceEvent> events;

  /// Fixed-precision text rendering; workload names label the types.
  void write(std::ostream& os,
             const std::vector<std::string>& workloads) const;
  std::string str(const std::vector<std::string>& workloads) const;
};

}  // namespace coperf::cluster
