// Arrival traces and the placement audit log (cluster subsystem).
//
// A trace is the online scheduler's input: a stream of jobs, each an
// instance of one of the co-run matrix's workload types, with an
// arrival time and a solo-work demand. synthetic_trace() draws one
// deterministically from a seed (exponential interarrivals, uniform
// work, uniform types), so every experiment is reproducible
// bit-for-bit. TraceLog is the simulator's output side: every arrival,
// placement, and completion, rendered to text with fixed precision so
// the same seed yields byte-identical logs (the determinism property
// tests/cluster_test.cpp locks).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace coperf::cluster {

/// One job in the arrival stream.
struct JobSpec {
  std::size_t id = 0;    ///< dense, trace order
  std::size_t type = 0;  ///< index into the co-run matrix's workload axis
  double arrival = 0.0;  ///< simulated seconds, non-decreasing
  double work = 1.0;     ///< solo execution time this job needs

  bool operator==(const JobSpec&) const = default;
};

struct TraceOptions {
  std::size_t jobs = 1000;
  std::uint64_t seed = 1;
  double mean_interarrival = 1.0;  ///< exponential interarrival mean
  double mean_work = 8.0;          ///< work uniform in [0.5, 1.5] x mean
};

/// Deterministic synthetic arrival stream over `n_types` workload
/// types. Same (n_types, options) => identical trace.
std::vector<JobSpec> synthetic_trace(std::size_t n_types,
                                     const TraceOptions& opt);

/// One line of the simulator's audit log.
struct TraceEvent {
  enum class Kind { Arrive, Place, Finish };
  Kind kind = Kind::Arrive;
  double time = 0.0;
  std::size_t job = 0;
  std::size_t type = 0;
  std::size_t machine = 0;  ///< Place/Finish only
  /// Place: the policy's predicted cost delta for the chosen machine;
  /// Finish: the slowdown the job actually experienced.
  double value = 0.0;
};

struct TraceLog {
  std::vector<TraceEvent> events;

  /// Fixed-precision text rendering; workload names label the types.
  void write(std::ostream& os,
             const std::vector<std::string>& workloads) const;
  std::string str(const std::vector<std::string>& workloads) const;
};

}  // namespace coperf::cluster
