#include "cluster/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace coperf::cluster {

namespace {
constexpr double kTwoPi = 6.283185307179586476925287;
}  // namespace

std::vector<JobSpec> synthetic_trace(std::size_t n_types,
                                     const TraceOptions& opt) {
  if (n_types == 0)
    throw std::invalid_argument{"synthetic_trace: no workload types"};
  if (opt.mean_interarrival <= 0.0 || opt.mean_work <= 0.0)
    throw std::invalid_argument{
        "synthetic_trace: interarrival/work means must be positive"};
  util::SplitMix64 rng{opt.seed};
  std::vector<JobSpec> trace;
  trace.reserve(opt.jobs);
  double t = 0.0;
  for (std::size_t i = 0; i < opt.jobs; ++i) {
    // Inverse-CDF exponential; uniform() < 1 so the log argument is > 0.
    t += -opt.mean_interarrival * std::log(1.0 - rng.uniform());
    JobSpec j;
    j.id = i;
    j.type = static_cast<std::size_t>(rng.below(n_types));
    j.arrival = t;
    j.work = opt.mean_work * (0.5 + rng.uniform());
    trace.push_back(j);
  }
  return trace;
}

std::vector<JobSpec> fleet_trace(std::size_t n_types,
                                 const FleetTraceOptions& opt) {
  if (n_types == 0)
    throw std::invalid_argument{"fleet_trace: no workload types"};
  if (opt.mean_interarrival <= 0.0 || opt.mean_work <= 0.0)
    throw std::invalid_argument{
        "fleet_trace: interarrival/work means must be positive"};
  if (opt.diurnal_amplitude < 0.0 || opt.diurnal_amplitude >= 1.0)
    throw std::invalid_argument{
        "fleet_trace: diurnal_amplitude must be in [0, 1)"};
  if (opt.diurnal_period <= 0.0)
    throw std::invalid_argument{"fleet_trace: diurnal_period must be positive"};
  if (opt.burst_boost < 1.0 || opt.burst_on <= 0.0 || opt.burst_on >= 1.0 ||
      opt.burst_mean_len < 1.0)
    throw std::invalid_argument{
        "fleet_trace: need burst_boost >= 1, burst_on in (0, 1), "
        "burst_mean_len >= 1"};
  if (opt.pareto_alpha <= 1.0)
    throw std::invalid_argument{
        "fleet_trace: pareto_alpha must be > 1 (finite mean)"};
  if (opt.work_cap <= 1.0)
    throw std::invalid_argument{"fleet_trace: work_cap must be > 1"};
  if (opt.class_shares.size() > kMaxPriority + 1)
    throw std::invalid_argument{"fleet_trace: too many priority classes"};
  double share_sum = 0.0;
  for (const double s : opt.class_shares) {
    if (s <= 0.0)
      throw std::invalid_argument{
          "fleet_trace: class shares must be positive"};
    share_sum += s;
  }

  util::SplitMix64 rng{opt.seed};
  // Pareto scaled to unit mean: multiplier = xm / (1-u)^(1/alpha) with
  // xm = (alpha-1)/alpha, so E[multiplier] = 1 before the cap.
  const double xm = (opt.pareto_alpha - 1.0) / opt.pareto_alpha;
  const double base_rate = 1.0 / opt.mean_interarrival;
  // Burst state flips per arrival: exit with probability 1/mean_len,
  // enter so the long-run arrival fraction inside bursts is burst_on.
  const double p_exit = 1.0 / opt.burst_mean_len;
  const double p_enter =
      opt.burst_on / (1.0 - opt.burst_on) / opt.burst_mean_len;

  std::vector<JobSpec> trace;
  trace.reserve(opt.jobs);
  double t = 0.0;
  bool bursting = false;
  for (std::size_t i = 0; i < opt.jobs; ++i) {
    // Instantaneous rate at the current time/state; the exponential
    // draw uses it directly (stepwise-constant approximation of the
    // nonhomogeneous process -- deterministic and plenty for a
    // synthetic generator).
    double rate = base_rate;
    switch (opt.arrivals) {
      case ArrivalModel::Poisson:
        break;
      case ArrivalModel::Diurnal:
        rate *= 1.0 + opt.diurnal_amplitude *
                          std::sin(kTwoPi * t / opt.diurnal_period);
        break;
      case ArrivalModel::Bursty:
        if (bursting) {
          rate *= opt.burst_boost;
          if (rng.uniform() < p_exit) bursting = false;
        } else if (rng.uniform() < p_enter) {
          bursting = true;
        }
        break;
    }
    t += -std::log(1.0 - rng.uniform()) / rate;

    JobSpec j;
    j.id = i;
    j.type = static_cast<std::size_t>(rng.below(n_types));
    j.arrival = t;
    switch (opt.work) {
      case WorkModel::Uniform:
        j.work = opt.mean_work * (0.5 + rng.uniform());
        break;
      case WorkModel::Pareto:
        j.work = opt.mean_work *
                 std::min(opt.work_cap,
                          xm / std::pow(1.0 - rng.uniform(),
                                        1.0 / opt.pareto_alpha));
        break;
    }
    if (!opt.class_shares.empty()) {
      double u = rng.uniform() * share_sum;
      unsigned cls = 0;
      for (; cls + 1 < opt.class_shares.size(); ++cls) {
        if (u < opt.class_shares[cls]) break;
        u -= opt.class_shares[cls];
      }
      j.priority = cls;
    }
    trace.push_back(j);
  }
  return trace;
}

std::vector<FaultEvent> fault_schedule(std::size_t machines,
                                       const FaultScheduleOptions& opt) {
  if (opt.horizon <= 0.0)
    throw std::invalid_argument{"fault_schedule: horizon must be positive"};
  if (opt.mtbf <= 0.0 || opt.mttr <= 0.0)
    throw std::invalid_argument{"fault_schedule: mtbf/mttr must be positive"};
  std::vector<FaultEvent> events;
  for (std::size_t m = 0; m < machines; ++m) {
    // Per-machine stream: machine m's schedule is invariant under
    // fleet-size changes (0x9E3779B97F4A7C15 is the SplitMix64 stream
    // spacing constant).
    util::SplitMix64 rng{opt.seed + 0x9E3779B97F4A7C15ull * (m + 1)};
    double t = 0.0;
    for (;;) {
      t += -opt.mtbf * std::log(1.0 - rng.uniform());  // up-time
      if (t >= opt.horizon) break;
      events.push_back({t, m, FaultEvent::Kind::Down});
      t += -opt.mttr * std::log(1.0 - rng.uniform());  // repair time
      events.push_back({t, m, FaultEvent::Kind::Up});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.machine != b.machine) return a.machine < b.machine;
              // A same-instant repair sorts before the next failure.
              return a.kind == FaultEvent::Kind::Up &&
                     b.kind == FaultEvent::Kind::Down;
            });
  return events;
}

namespace {

/// %.6f via snprintf: locale-independent, so log text is stable.
std::string fmt6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

}  // namespace

void TraceLog::write(std::ostream& os,
                     const std::vector<std::string>& workloads) const {
  for (const TraceEvent& e : events) {
    const std::string name =
        e.type < workloads.size() ? workloads[e.type] : "?";
    os << "t=" << fmt6(e.time);
    switch (e.kind) {
      case TraceEvent::Kind::Arrive:
        os << " arrive job=" << e.job << " type=" << name;
        break;
      case TraceEvent::Kind::Place:
        os << " place job=" << e.job << " type=" << name
           << " machine=" << e.machine << " cost+=" << fmt6(e.value);
        break;
      case TraceEvent::Kind::Finish:
        os << " finish job=" << e.job << " type=" << name
           << " machine=" << e.machine << " slowdown=" << fmt6(e.value);
        break;
      case TraceEvent::Kind::Fail:
        os << " fail machine=" << e.machine;
        break;
      case TraceEvent::Kind::Recover:
        os << " recover machine=" << e.machine;
        break;
      case TraceEvent::Kind::Evict:
        os << " evict job=" << e.job << " type=" << name
           << " machine=" << e.machine << " work_left=" << fmt6(e.value);
        break;
      case TraceEvent::Kind::Shed:
        os << " shed job=" << e.job << " type=" << name
           << " work_left=" << fmt6(e.value);
        break;
      case TraceEvent::Kind::Defer:
        os << " defer job=" << e.job << " type=" << name
           << " until=" << fmt6(e.value);
        break;
    }
    os << '\n';
  }
}

std::string TraceLog::str(const std::vector<std::string>& workloads) const {
  std::ostringstream ss;
  write(ss, workloads);
  return ss.str();
}

}  // namespace coperf::cluster
