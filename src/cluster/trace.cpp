#include "cluster/trace.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace coperf::cluster {

std::vector<JobSpec> synthetic_trace(std::size_t n_types,
                                     const TraceOptions& opt) {
  if (n_types == 0)
    throw std::invalid_argument{"synthetic_trace: no workload types"};
  if (opt.mean_interarrival <= 0.0 || opt.mean_work <= 0.0)
    throw std::invalid_argument{
        "synthetic_trace: interarrival/work means must be positive"};
  util::SplitMix64 rng{opt.seed};
  std::vector<JobSpec> trace;
  trace.reserve(opt.jobs);
  double t = 0.0;
  for (std::size_t i = 0; i < opt.jobs; ++i) {
    // Inverse-CDF exponential; uniform() < 1 so the log argument is > 0.
    t += -opt.mean_interarrival * std::log(1.0 - rng.uniform());
    JobSpec j;
    j.id = i;
    j.type = static_cast<std::size_t>(rng.below(n_types));
    j.arrival = t;
    j.work = opt.mean_work * (0.5 + rng.uniform());
    trace.push_back(j);
  }
  return trace;
}

namespace {

/// %.6f via snprintf: locale-independent, so log text is stable.
std::string fmt6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

}  // namespace

void TraceLog::write(std::ostream& os,
                     const std::vector<std::string>& workloads) const {
  for (const TraceEvent& e : events) {
    const std::string name =
        e.type < workloads.size() ? workloads[e.type] : "?";
    os << "t=" << fmt6(e.time);
    switch (e.kind) {
      case TraceEvent::Kind::Arrive:
        os << " arrive job=" << e.job << " type=" << name;
        break;
      case TraceEvent::Kind::Place:
        os << " place job=" << e.job << " type=" << name
           << " machine=" << e.machine << " cost+=" << fmt6(e.value);
        break;
      case TraceEvent::Kind::Finish:
        os << " finish job=" << e.job << " type=" << name
           << " machine=" << e.machine << " slowdown=" << fmt6(e.value);
        break;
    }
    os << '\n';
  }
}

std::string TraceLog::str(const std::vector<std::string>& workloads) const {
  std::ostringstream ss;
  write(ss, workloads);
  return ss.str();
}

}  // namespace coperf::cluster
