// Placement policies (cluster subsystem).
//
// A PlacementPolicy answers one question per arrival: which machine
// with a free slot should run this job? The cost-model policies answer
// it from a slowdown matrix -- a prediction frozen at admission time
// (static) or a prediction the simulator refines after every placement
// by feeding truly observed group outcomes back (online-refined:
// 2-resident outcomes pass through InterferenceModel::observe(),
// 3+-resident outcomes feed a PairDeconvolver so pairwise refinement
// needs no dedicated pair runs). GroupTruthPolicy asks the measured
// group-truth oracle directly -- the zero-regret reference the regret
// bench compares against. Policies own all their randomness, so a
// fresh policy with the same seed replays identically.
//
// Policies see the cluster through ClusterView: a free-slot index
// (open_count/kth_open, ascending machine order) plus lazily
// materialized per-machine MachineViews. The simulator's fleet-scale
// implementation only materializes the machines a policy actually
// prices; the legacy vector-of-views entry point is kept as a thin
// adapter (VectorClusterView) so hand-built views in tests and the
// reference event loop keep working unchanged.
//
// Fault tolerance is invisible here by design: a failed machine simply
// leaves the open set (its slots are never offered), a recovered one
// rejoins it, and a retried or migrated job arrives at the policy as
// an ordinary placement decision -- so every policy is fault-capable
// without code changes, and a fault-free run prices the exact same
// candidate sequence as the fault-blind engine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/trace.hpp"
#include "harness/grouptruth.hpp"
#include "harness/matrix.hpp"
#include "predict/deconvolve.hpp"
#include "predict/model.hpp"
#include "util/rng.hpp"

namespace coperf::cluster {

/// One running job as the policy sees it.
struct ResidentView {
  std::size_t type = 0;
  double remaining = 0.0;  ///< solo-time units left to execute
  /// The resident's p99 slowdown budget; 0 = best-effort
  /// (JobSpec::slo_p99 of the job occupying the slot).
  double slo_target = 0.0;
};

/// A machine's state at decision time.
struct MachineView {
  std::size_t free_slots = 0;
  std::vector<ResidentView> residents;
};

/// What a policy sees of the cluster at decision time. kth_open
/// enumerates machines with a free slot in ascending index order --
/// the deterministic candidate order every policy iterates -- and
/// view() materializes a machine's residents on demand, so pricing N
/// candidates costs O(N x slots) instead of rebuilding every machine.
class ClusterView {
 public:
  virtual ~ClusterView() = default;

  /// Total machines in the cluster.
  virtual std::size_t machines() const = 0;
  /// Machines with at least one free slot.
  virtual std::size_t open_count() const = 0;
  /// The k-th (0-based) open machine in ascending index order. The
  /// simulator's implementation serves ascending k in O(1) amortized.
  virtual std::size_t kth_open(std::size_t k) const = 0;
  virtual std::size_t free_slots(std::size_t m) const = 0;
  /// Machine m's residents and free slots, materialized on demand.
  virtual const MachineView& view(std::size_t m) const = 0;
};

/// Adapter over a caller-built vector of MachineViews (tests, the
/// reference event loop). kth_open is a count-then-pick scan, so even
/// the adapter allocates nothing.
class VectorClusterView final : public ClusterView {
 public:
  explicit VectorClusterView(const std::vector<MachineView>& views);

  std::size_t machines() const override { return views_.size(); }
  std::size_t open_count() const override { return open_count_; }
  std::size_t kth_open(std::size_t k) const override;
  std::size_t free_slots(std::size_t m) const override {
    return views_[m].free_slots;
  }
  const MachineView& view(std::size_t m) const override { return views_[m]; }

 private:
  const std::vector<MachineView>& views_;
  std::size_t open_count_ = 0;
};

/// Estimated machine time that admitting `job_type` with `job_work`
/// units of work adds to `machine`, priced by the slowdown matrix
/// `est`: the job's own excess slowdown persists for its whole work,
/// and the excess it inflicts on each resident persists for that
/// resident's remaining work. The shared cost primitive: the
/// cost-model policies minimize it over machines, and the simulator
/// re-prices every decision with it at ground truth to compute
/// per-decision placement regret. Allocation-free.
double placement_delta(const harness::CorunMatrix& est, std::size_t job_type,
                       double job_work, const MachineView& machine);

/// The same delta priced by a ground-truth oracle instead of a matrix
/// estimate: the job's true group slowdown for its own work plus the
/// true slowdown delta it inflicts on each resident (measured group
/// entries when the truth holds them, additive composition otherwise).
/// The simulator bills every decision with this at ground truth;
/// GroupTruthPolicy minimizes it directly.
double placement_delta(harness::InterferenceTruth& truth, std::size_t job_type,
                       double job_work, const MachineView& machine);

/// SLO violation cost of admitting `job` to `machine`, priced by a
/// ground-truth oracle's tail_slowdown: for every latency-critical
/// party in the would-be group (the arriving job if it carries a
/// budget, plus each resident with slo_target > 0), the excess of its
/// true p99 slowdown in the new group over its budget, weighted by the
/// work that would run under that excess. Zero when nothing
/// latency-critical is involved -- and the function issues no tail
/// queries then, so batch-only billing stays byte-identical. This is
/// the LC regret primitive: the simulator bills
/// slo_violation(chosen) - min over open machines on every billed
/// decision of an LC-carrying trace.
double slo_violation(harness::InterferenceTruth& truth, const JobSpec& job,
                     const MachineView& machine);

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual std::string name() const = 0;

  /// Chooses a machine index with free_slots > 0. At least one such
  /// machine is guaranteed; choosing a full one is a policy bug the
  /// simulator rejects.
  virtual std::size_t place(const JobSpec& job,
                            const ClusterView& cluster) = 0;

  /// Legacy convenience entry point over caller-built views; forwards
  /// to the ClusterView overload. (Derived classes re-export it with
  /// `using PlacementPolicy::place;`.)
  std::size_t place(const JobSpec& job,
                    const std::vector<MachineView>& machines) {
    return place(job, VectorClusterView{machines});
  }

  /// Ground-truth feedback after a placement: the normalized runtime of
  /// fg_type when bg_type shares its machine. Default: ignore.
  virtual void observe_pair(std::size_t fg_type, std::size_t bg_type,
                            double slowdown) {
    (void)fg_type, (void)bg_type, (void)slowdown;
  }

  /// Ground-truth feedback after a placement: the machine's full new
  /// resident group (new job first) and every member's true slowdown
  /// in it. Default: a 2-resident outcome decomposes into the legacy
  /// observe_pair() feedback (both orderings); larger groups are
  /// ignored -- override to consume them (OnlineRefinedPolicy
  /// deconvolves them into pairwise refinement).
  virtual void observe_group(const std::vector<std::size_t>& types,
                             const std::vector<double>& slowdowns) {
    if (types.size() == 2 && slowdowns.size() == 2) {
      observe_pair(types[0], types[1], slowdowns[0]);
      observe_pair(types[1], types[0], slowdowns[1]);
    }
  }

  /// Estimated cost delta of the last place() decision (log annotation).
  virtual double last_cost_delta() const { return 0.0; }
};

/// Uniform random over machines with a free slot -- the no-information
/// baseline. Count-then-pick over the free-slot index, so a decision
/// allocates nothing at any fleet size.
class RandomPolicy final : public PlacementPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 1) : rng_(seed) {}
  std::string name() const override { return "random"; }
  using PlacementPolicy::place;
  std::size_t place(const JobSpec& job, const ClusterView& cluster) override;

 private:
  util::SplitMix64 rng_;
};

/// Greedy marginal-cost placement on a slowdown-matrix estimate: pick
/// the machine where admitting the job adds the least *machine time*
/// -- each pairwise excess slowdown weighted by how long it will
/// persist (the new job's work, resp. the victim resident's remaining
/// work). Lowest index wins ties, for determinism. With the truth
/// matrix as the estimate this is the oracle; with a predicted matrix
/// it is the static-analytic scheduler.
class CostModelPolicy : public PlacementPolicy {
 public:
  CostModelPolicy(std::string name, harness::CorunMatrix estimate);

  std::string name() const override { return name_; }
  using PlacementPolicy::place;
  std::size_t place(const JobSpec& job, const ClusterView& cluster) override;
  double last_cost_delta() const override { return last_delta_; }

  const harness::CorunMatrix& estimate() const { return estimate_; }

 protected:
  harness::CorunMatrix estimate_;

 private:
  std::string name_;
  double last_delta_ = 0.0;
};

/// Greedy marginal-cost placement priced directly by a ground-truth
/// oracle (measured group entries where available). With a fully
/// measured GroupTruth this is the true oracle: zero decision regret
/// by construction, because it minimizes exactly the delta the
/// simulator bills with.
class GroupTruthPolicy final : public PlacementPolicy {
 public:
  GroupTruthPolicy(std::string name, harness::InterferenceTruth& truth);

  std::string name() const override { return name_; }
  using PlacementPolicy::place;
  std::size_t place(const JobSpec& job, const ClusterView& cluster) override;
  double last_cost_delta() const override { return last_delta_; }

 private:
  harness::InterferenceTruth& truth_;
  std::string name_;
  double last_delta_ = 0.0;
};

/// SLO-aware marginal-cost placement: a CostModelPolicy-style greedy
/// over a throughput estimate, extended with a pairwise *tail*
/// estimate (additively composed over residents, like the throughput
/// matrix). Candidates are scored lexicographically by (predicted SLO
/// violation, predicted throughput delta, lowest index): a machine
/// where the arriving job's predicted p99 blows its budget -- or where
/// admitting it blows a latency-critical resident's budget -- is
/// refused while any violation-free machine exists; among the
/// admissible, the cheapest throughput delta wins as today. When every
/// open machine violates some budget, the least-violating one is
/// chosen (the job must land somewhere). Best-effort-only decisions
/// reduce exactly to CostModelPolicy's arithmetic.
class SloAwarePolicy final : public PlacementPolicy {
 public:
  /// `throughput` prices runtime excess (the legacy cost matrix);
  /// `tail` is the pairwise p99-slowdown projection (tail(fg, bg) =
  /// fg's p99 ratio with bg co-resident). Same axis required.
  SloAwarePolicy(std::string name, harness::CorunMatrix throughput,
                 harness::CorunMatrix tail);

  std::string name() const override { return name_; }
  using PlacementPolicy::place;
  std::size_t place(const JobSpec& job, const ClusterView& cluster) override;
  double last_cost_delta() const override { return last_delta_; }

  /// Predicted SLO violation of the last place() decision (0 when the
  /// chosen machine was admissible).
  double last_violation() const { return last_violation_; }
  /// Decisions where every open machine blew some LC budget.
  std::size_t forced_violations() const { return forced_; }

 private:
  harness::CorunMatrix throughput_;
  harness::CorunMatrix tail_;
  std::string name_;
  double last_delta_ = 0.0;
  double last_violation_ = 0.0;
  std::size_t forced_ = 0;
};

/// CostModelPolicy that closes the loop: every *new* observed pairwise
/// slowdown is fed to the model (kNN exemplar append / least-squares
/// RLS; repeats of an already-seen identical observation are dropped,
/// keeping the exemplar set bounded by the matrix size), observed
/// cells override predictions outright (measured fallback), and
/// still-unobserved cells are lazily re-predicted from the refined
/// model at the next placement. 3+-resident group outcomes feed a
/// PairDeconvolver whose least-squares pairwise estimates take over
/// unpinned cells once a co-residency has support -- refinement works
/// even when the cluster never runs a dedicated pair. The model must
/// already be able to predict (trained, or analytic) because the
/// initial estimate is derived from it.
class OnlineRefinedPolicy final : public CostModelPolicy {
 public:
  OnlineRefinedPolicy(std::string name,
                      std::unique_ptr<predict::InterferenceModel> model,
                      std::vector<predict::WorkloadSignature> sigs);

  using CostModelPolicy::place;
  std::size_t place(const JobSpec& job, const ClusterView& cluster) override;
  void observe_pair(std::size_t fg_type, std::size_t bg_type,
                    double slowdown) override;
  void observe_group(const std::vector<std::size_t>& types,
                     const std::vector<double>& slowdowns) override;

  predict::InterferenceModel& model() { return *model_; }
  std::size_t observed_cells() const { return observed_count_; }
  /// Cells currently served by deconvolved 3+-resident observations
  /// (not pinned by a direct pair observation).
  std::size_t deconvolved_cells() const;

 private:
  void refresh_unobserved();

  std::unique_ptr<predict::InterferenceModel> model_;
  std::vector<predict::WorkloadSignature> sigs_;
  /// Last observed slowdown per cell; NaN = never observed.
  std::vector<std::vector<double>> observed_;
  predict::PairDeconvolver decon_;
  std::size_t observed_count_ = 0;
  bool estimate_stale_ = false;
};

}  // namespace coperf::cluster
