// Streaming cluster-scale interference-aware scheduling (cluster
// subsystem).
//
// The paper's stated payoff for interference characterization is
// scheduling: keep destructive pairs off the same machine (Sections I,
// II-B). This module makes that decision *online*, the way a warehouse
// scheduler must: k machines with >= 2 co-run slots each, a stream of
// job arrivals and departures, and a PlacementPolicy consulted per
// arrival. Job progress follows the ground-truth co-run matrix --
// pairwise excess slowdowns compose additively across a machine's
// residents (harness::corun_slowdown) -- so after every placement the
// simulator can report the truly observed pairwise slowdowns back to
// the policy, which is how the online-refined policy converges on the
// truth. Everything is deterministic: same trace + same policy state
// => byte-identical audit log.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/placement.hpp"
#include "cluster/trace.hpp"
#include "harness/matrix.hpp"

namespace coperf::cluster {

struct ClusterConfig {
  std::size_t machines = 4;
  std::size_t slots = 2;  ///< co-run slots per machine, >= 2
};

/// What happened to one job.
struct JobOutcome {
  std::size_t job = 0;
  std::size_t type = 0;
  std::size_t machine = 0;
  double arrival = 0.0;
  double start = 0.0;   ///< placement time (== arrival unless it queued)
  double finish = 0.0;
  double work = 0.0;

  /// Solo-normalized turnaround including queueing: >= 1.0.
  double stretch() const { return (finish - arrival) / work; }
  /// Solo-normalized run time on the machine (pure co-run slowdown).
  double corun_slowdown() const { return (finish - start) / work; }
};

struct ClusterResult {
  std::vector<JobOutcome> outcomes;
  TraceLog log;
  double mean_stretch = 0.0;         ///< mean JobOutcome::stretch()
  double mean_corun_slowdown = 0.0;  ///< mean JobOutcome::corun_slowdown()
  double makespan = 0.0;             ///< time the last job finished
  /// Placement regret, billed per decision at ground truth: mean over
  /// jobs of (true placement_delta of the chosen machine) - (true
  /// placement_delta of the best available machine). Zero for the
  /// oracle by construction; the decision-quality metric the regret
  /// bench and tests compare, immune to downstream queueing chaos that
  /// otherwise drowns out the placement signal in mean_stretch.
  double mean_decision_regret = 0.0;
};

/// Runs the event loop: arrivals are queued FIFO, admitted whenever a
/// slot is free (policy picks the machine), and run to completion at a
/// rate of 1/slowdown where the slowdown composes the truth matrix's
/// pairwise entries over the machine's current residents. Each
/// placement reports both orderings of every new (job, resident) pair
/// to the policy via observe_pair().
ClusterResult simulate(const ClusterConfig& cfg,
                       const harness::CorunMatrix& truth,
                       const std::vector<JobSpec>& trace,
                       PlacementPolicy& policy);

}  // namespace coperf::cluster
