// Streaming cluster-scale interference-aware scheduling (cluster
// subsystem).
//
// The paper's stated payoff for interference characterization is
// scheduling: keep destructive pairs off the same machine (Sections I,
// II-B). This module makes that decision *online*, the way a warehouse
// scheduler must: k machines with >= 2 co-run slots each, a stream of
// job arrivals and departures, and a PlacementPolicy consulted per
// arrival. Job progress follows a ground-truth oracle
// (harness::InterferenceTruth): measured N-resident group slowdowns
// when a GroupTruth backs the oracle, or additive pairwise composition
// over a CorunMatrix (MatrixTruth -- the legacy model, still what the
// synthetic tests use). After every placement the simulator reports
// the full group outcome -- every resident's true slowdown in the new
// group -- back to the policy, which is how the online-refined policy
// converges on the truth without dedicated pair runs. Everything is
// deterministic: same trace + same policy state => byte-identical
// audit log.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/placement.hpp"
#include "cluster/trace.hpp"
#include "harness/grouptruth.hpp"
#include "harness/matrix.hpp"

namespace coperf::cluster {

struct ClusterConfig {
  std::size_t machines = 4;
  std::size_t slots = 2;  ///< co-run slots per machine, >= 2
  /// Optional workload names indexed by job type, used only to label
  /// the observability timeline (obs::Trace); empty = "t<type>". Has
  /// no effect on simulation results.
  std::vector<std::string> type_names;
};

/// What happened to one job.
struct JobOutcome {
  std::size_t job = 0;
  std::size_t type = 0;
  std::size_t machine = 0;
  double arrival = 0.0;
  double start = 0.0;   ///< placement time (== arrival unless it queued)
  double finish = 0.0;
  double work = 0.0;

  /// Solo-normalized turnaround including queueing: >= 1.0.
  double stretch() const { return (finish - arrival) / work; }
  /// Solo-normalized run time on the machine (pure co-run slowdown).
  double corun_slowdown() const { return (finish - start) / work; }
};

struct ClusterResult {
  std::vector<JobOutcome> outcomes;
  TraceLog log;
  double mean_stretch = 0.0;         ///< mean JobOutcome::stretch()
  double mean_corun_slowdown = 0.0;  ///< mean JobOutcome::corun_slowdown()
  double makespan = 0.0;             ///< time the last job finished
  /// Placement regret, billed per decision at ground truth: mean over
  /// jobs of (true admission_delta of the chosen machine) - (true
  /// admission_delta of the best available machine). Zero for the
  /// group-truth oracle by construction; the decision-quality metric
  /// the regret bench and tests compare, immune to downstream queueing
  /// chaos that otherwise drowns out the placement signal in
  /// mean_stretch.
  double mean_decision_regret = 0.0;
  /// Ground-truth queries this run answered by additive pairwise
  /// composition instead of a measurement (resident groups above the
  /// truth's measured arity; every 3+-resident query for MatrixTruth).
  std::uint64_t pairwise_fallbacks = 0;
};

/// Runs the event loop: arrivals are queued FIFO, admitted whenever a
/// slot is free (policy picks the machine), and run to completion at a
/// rate of 1/slowdown where the slowdown is the truth oracle's answer
/// for the machine's current resident group. Each placement reports
/// the full new group outcome (per-member true slowdowns) to the
/// policy via observe_group(); for 2-resident groups that decomposes
/// into the legacy observe_pair() feedback.
///
/// When obs::Trace is recording, the run additionally emits a
/// simulated-time timeline in its own trace process (1 work unit
/// renders as 1 ms): one lane per machine holding resident-set spans
/// (a span per interval of constant resident multiset, labeled with
/// the member names), a per-decision instant event on the chosen
/// machine's lane carrying the policy name, its predicted cost, the
/// true cost, and the billed regret, plus a queue-depth counter track.
/// Tracing never changes results -- it only reads simulator state.
ClusterResult simulate(const ClusterConfig& cfg,
                       harness::InterferenceTruth& truth,
                       const std::vector<JobSpec>& trace,
                       PlacementPolicy& policy);

/// Legacy entry point: additive pairwise composition over `truth`
/// (wraps it in a MatrixTruth). Bit-identical to the pre-grouptruth
/// simulator: clamped composition drives progress and billing, raw
/// pair entries (sub-1.0 included) feed the observers.
ClusterResult simulate(const ClusterConfig& cfg,
                       const harness::CorunMatrix& truth,
                       const std::vector<JobSpec>& trace,
                       PlacementPolicy& policy);

}  // namespace coperf::cluster
