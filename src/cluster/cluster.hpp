// Streaming cluster-scale interference-aware scheduling (cluster
// subsystem).
//
// The paper's stated payoff for interference characterization is
// scheduling: keep destructive pairs off the same machine (Sections I,
// II-B). This module makes that decision *online*, the way a warehouse
// scheduler must: k machines with >= 2 co-run slots each, a stream of
// job arrivals and departures, and a PlacementPolicy consulted per
// arrival. Job progress follows a ground-truth oracle
// (harness::InterferenceTruth): measured N-resident group slowdowns
// when a GroupTruth backs the oracle, or additive pairwise composition
// over a CorunMatrix (MatrixTruth -- the legacy model, still what the
// synthetic tests use). After every placement the simulator reports
// the full group outcome -- every resident's true slowdown in the new
// group -- back to the policy, which is how the online-refined policy
// converges on the truth without dedicated pair runs. Everything is
// deterministic: same trace + same policy state => byte-identical
// audit log.
//
// Two engines share the semantics:
//
//  * simulate() -- the fleet-scale indexed event loop. Per-machine
//    resident slowdowns and absolute completion ETAs are cached and
//    recomputed only when that machine's resident multiset changes; a
//    lazy binary heap of per-machine next completions (deterministic
//    (eta, machine, slot) tie-breaking) replaces the per-event
//    machines x slots rescan, and a free-slot bitset index feeds the
//    policies' ClusterView so a decision prices only candidate
//    machines. Completion arithmetic is drift-free: each resident's
//    remaining work is decremented once per constant-rate interval
//    (clamped at zero), not once per global event. Scales to
//    thousands of machines and millions of arrivals.
//  * simulate_reference() -- the original O(machines x slots)-per-event
//    scan loop, kept verbatim as the executable specification. The
//    equivalence suite pins simulate() against it: byte-identical
//    audit logs and matching regret on the shared fixtures. Exact
//    arithmetic is identical between the engines; floating-point
//    rounding may differ below the log's fixed precision because the
//    reference decrements remaining work at every global event.
//    Priority classes are a fleet-engine feature; the reference loop
//    rejects traces that use them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/placement.hpp"
#include "cluster/trace.hpp"
#include "harness/grouptruth.hpp"
#include "harness/matrix.hpp"

namespace coperf::cluster {

struct ClusterConfig {
  std::size_t machines = 4;
  std::size_t slots = 2;  ///< co-run slots per machine, >= 2
  /// Optional workload names indexed by job type, used only to label
  /// the observability timeline (obs::Trace); empty = "t<type>". Has
  /// no effect on simulation results.
  std::vector<std::string> type_names;
  /// Bill ground-truth decision regret on every Nth placement (1 =
  /// every placement, the exact legacy accounting; 0 = never).
  /// Billing prices every open machine at ground truth, so sampling
  /// keeps fleet-scale runs affordable; mean_decision_regret averages
  /// over the billed decisions only, and skipped decisions issue no
  /// truth queries (so pairwise_fallbacks shrinks accordingly).
  std::size_t regret_sample = 1;
};

/// What happened to one job.
struct JobOutcome {
  std::size_t job = 0;  ///< JobSpec::id
  std::size_t type = 0;
  std::size_t machine = 0;
  double arrival = 0.0;
  double start = 0.0;   ///< placement time (== arrival unless it queued)
  double finish = 0.0;
  double work = 0.0;

  /// Solo-normalized turnaround including queueing: >= 1.0.
  double stretch() const { return (finish - arrival) / work; }
  /// Solo-normalized run time on the machine (pure co-run slowdown).
  double corun_slowdown() const { return (finish - start) / work; }
};

struct ClusterResult {
  std::vector<JobOutcome> outcomes;  ///< indexed by trace position
  TraceLog log;
  double mean_stretch = 0.0;         ///< mean JobOutcome::stretch()
  double mean_corun_slowdown = 0.0;  ///< mean JobOutcome::corun_slowdown()
  double makespan = 0.0;             ///< time the last job finished
  /// Placement regret, billed per decision at ground truth: mean over
  /// billed decisions of (true admission_delta of the chosen machine)
  /// - (true admission_delta of the best available machine). Zero for
  /// the group-truth oracle by construction; the decision-quality
  /// metric the regret bench and tests compare, immune to downstream
  /// queueing chaos that otherwise drowns out the placement signal in
  /// mean_stretch. With ClusterConfig::regret_sample == 1 every
  /// decision is billed (the legacy accounting).
  double mean_decision_regret = 0.0;
  /// Decisions actually billed at ground truth (== outcomes.size()
  /// unless regret_sample != 1).
  std::size_t billed_decisions = 0;
  /// Ground-truth queries this run answered by additive pairwise
  /// composition instead of a measurement (resident groups above the
  /// truth's measured arity; every 3+-resident query for MatrixTruth).
  std::uint64_t pairwise_fallbacks = 0;
};

/// Runs the indexed event loop: arrivals queue per priority class
/// (FIFO within a class, higher classes first; all-zero priorities ==
/// plain FIFO), a job is admitted whenever a slot is free (policy
/// picks the machine through ClusterView), and runs to completion at a
/// rate of 1/slowdown where the slowdown is the truth oracle's answer
/// for the machine's current resident group. Each placement reports
/// the full new group outcome (per-member true slowdowns) to the
/// policy via observe_group(); for 2-resident groups that decomposes
/// into the legacy observe_pair() feedback.
///
/// When obs::Trace is recording, the run additionally emits a
/// simulated-time timeline in its own trace process (1 work unit
/// renders as 1 ms): one lane per machine holding resident-set spans
/// (a span per interval of constant resident multiset, labeled with
/// the member names), a per-decision instant event on the chosen
/// machine's lane carrying the policy name, its predicted cost, the
/// true cost, and the billed regret (true cost/regret only on billed
/// decisions), plus a queue-depth counter track. Tracing never changes
/// results -- it only reads simulator state.
ClusterResult simulate(const ClusterConfig& cfg,
                       harness::InterferenceTruth& truth,
                       const std::vector<JobSpec>& trace,
                       PlacementPolicy& policy);

/// Legacy entry point: additive pairwise composition over `truth`
/// (wraps it in a MatrixTruth). Bit-identical to the pre-grouptruth
/// simulator: clamped composition drives progress and billing, raw
/// pair entries (sub-1.0 included) feed the observers.
ClusterResult simulate(const ClusterConfig& cfg,
                       const harness::CorunMatrix& truth,
                       const std::vector<JobSpec>& trace,
                       PlacementPolicy& policy);

/// The pre-fleet event loop, kept as the executable specification for
/// the equivalence suite: full machines x slots rescan per event,
/// remaining work decremented at every global event, every MachineView
/// materialized per waiting job, every decision billed
/// (regret_sample is ignored). Priority-blind: throws if the trace
/// uses priority classes. Do not use at fleet scale.
ClusterResult simulate_reference(const ClusterConfig& cfg,
                                 harness::InterferenceTruth& truth,
                                 const std::vector<JobSpec>& trace,
                                 PlacementPolicy& policy);

/// Reference loop over additive pairwise composition (MatrixTruth).
ClusterResult simulate_reference(const ClusterConfig& cfg,
                                 const harness::CorunMatrix& truth,
                                 const std::vector<JobSpec>& trace,
                                 PlacementPolicy& policy);

}  // namespace coperf::cluster
