// Streaming cluster-scale interference-aware scheduling (cluster
// subsystem).
//
// The paper's stated payoff for interference characterization is
// scheduling: keep destructive pairs off the same machine (Sections I,
// II-B). This module makes that decision *online*, the way a warehouse
// scheduler must: k machines with >= 2 co-run slots each, a stream of
// job arrivals and departures, and a PlacementPolicy consulted per
// arrival. Job progress follows a ground-truth oracle
// (harness::InterferenceTruth): measured N-resident group slowdowns
// when a GroupTruth backs the oracle, or additive pairwise composition
// over a CorunMatrix (MatrixTruth -- the legacy model, still what the
// synthetic tests use). After every placement the simulator reports
// the full group outcome -- every resident's true slowdown in the new
// group -- back to the policy, which is how the online-refined policy
// converges on the truth without dedicated pair runs. Everything is
// deterministic: same trace + same policy state => byte-identical
// audit log.
//
// Two engines share the semantics:
//
//  * simulate() -- the fleet-scale indexed event loop. Per-machine
//    resident slowdowns and absolute completion ETAs are cached and
//    recomputed only when that machine's resident multiset changes; a
//    lazy binary heap of per-machine next completions (deterministic
//    (eta, machine, slot) tie-breaking) replaces the per-event
//    machines x slots rescan, and a free-slot bitset index feeds the
//    policies' ClusterView so a decision prices only candidate
//    machines. Completion arithmetic is drift-free: each resident's
//    remaining work is decremented once per constant-rate interval
//    (clamped at zero), not once per global event. Scales to
//    thousands of machines and millions of arrivals.
//  * simulate_reference() -- the original O(machines x slots)-per-event
//    scan loop, kept verbatim as the executable specification. The
//    equivalence suite pins simulate() against it: byte-identical
//    audit logs and matching regret on the shared fixtures. Exact
//    arithmetic is identical between the engines; floating-point
//    rounding may differ below the log's fixed precision because the
//    reference decrements remaining work at every global event.
//    Priority classes are a fleet-engine feature; the reference loop
//    rejects traces that use them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/placement.hpp"
#include "cluster/trace.hpp"
#include "harness/grouptruth.hpp"
#include "harness/matrix.hpp"

namespace coperf::cluster {

/// What happens to a job killed by a machine failure: bounded retries
/// with exponential backoff in simulated time, and a configurable
/// work-loss model.
struct RetryConfig {
  /// Failure kills a job may survive before the engine gives up and
  /// sheds it (a Shed event with its work still outstanding).
  unsigned max_retries = 3;
  /// Simulated-time delay before the first requeue; doubles (times
  /// `backoff_factor`) per consecutive kill of the same job.
  double backoff = 1.0;
  double backoff_factor = 2.0;
  /// Work-loss model: the fraction of the killed attempt's executed
  /// work that survives the kill. 0 = restart-from-zero (the whole
  /// attempt is lost), 1 = perfect checkpointing (only in-flight time
  /// is lost). Applies to failure kills and migration evictions alike.
  double checkpoint = 0.0;
};

/// Policy-driven preemptive migration: when the highest waiting class
/// would otherwise queue with no slot free, evict a strictly
/// lower-priority resident (lowest class first -- the PR 7 priority
/// lanes' victim ordering -- ties to the lowest machine then slot),
/// charge it the RetryConfig work-loss model as the restart penalty,
/// and requeue it through the normal decision path.
struct MigrationConfig {
  bool preempt = false;
};

/// Admission control under overload: when the waiting queue is deeper
/// than `queue_limit` (or alive-slot utilization is at least
/// `util_limit`), arrivals of classes below `shed_below` are shed
/// outright -- or deferred by `defer_delay` first, up to `max_defers`
/// times, when deferral is enabled. Shed work is billed into
/// ClusterResult::shed_work and the per-class stats (a shed job's
/// admission delta is the solo work it would have consumed).
struct AdmissionConfig {
  std::size_t queue_limit = 0;  ///< 0 = no queue-depth threshold
  double util_limit = 0.0;      ///< busy/alive slot fraction; 0 = off
  unsigned shed_below = 1;      ///< classes < this are sheddable
  double defer_delay = 0.0;     ///< > 0: defer before shedding
  unsigned max_defers = 0;      ///< defers before an overloaded shed

  bool enabled() const { return queue_limit > 0 || util_limit > 0.0; }
};

struct ClusterConfig {
  std::size_t machines = 4;
  std::size_t slots = 2;  ///< co-run slots per machine, >= 2
  /// Optional workload names indexed by job type, used only to label
  /// the observability timeline (obs::Trace); empty = "t<type>". Has
  /// no effect on simulation results.
  std::vector<std::string> type_names;
  /// Bill ground-truth decision regret on every Nth placement (1 =
  /// every placement, the exact legacy accounting; 0 = never).
  /// Billing prices every open machine at ground truth, so sampling
  /// keeps fleet-scale runs affordable; mean_decision_regret averages
  /// over the billed decisions only, and skipped decisions issue no
  /// truth queries (so pairwise_fallbacks shrinks accordingly).
  std::size_t regret_sample = 1;
  /// Machine failure/recovery schedule (fault_schedule(), or
  /// hand-built: sorted by time, alternating Down/Up per machine).
  /// Empty = no faults; the fault-free path is byte-identical to the
  /// pre-fault engine. Fleet-engine only: simulate_reference rejects
  /// configs that inject faults or enable migration/admission.
  std::vector<FaultEvent> faults;
  RetryConfig retry;
  MigrationConfig migration;
  AdmissionConfig admission;
};

/// What happened to one job.
struct JobOutcome {
  std::size_t job = 0;  ///< JobSpec::id
  std::size_t type = 0;
  std::size_t machine = 0;  ///< machine of the most recent placement
  double arrival = 0.0;
  double start = 0.0;   ///< FIRST placement time (== arrival unless queued)
  double finish = 0.0;  ///< 0 while unfinished (shed jobs never finish)
  double work = 0.0;    ///< the original solo-work demand
  unsigned retries = 0;    ///< times killed by a machine failure
  unsigned evictions = 0;  ///< times preemptively migrated
  unsigned defers = 0;     ///< times deferred by admission control
  bool shed = false;       ///< dropped (admission, or retries exhausted)

  bool completed() const { return finish > 0.0; }
  /// Solo-normalized turnaround including queueing, backoff, and lost
  /// work: >= 1.0 for completed jobs.
  double stretch() const { return (finish - arrival) / work; }
  /// Solo-normalized time from first placement to completion: >= 1.0
  /// for completed jobs (equals the pure co-run slowdown when the job
  /// was never killed or migrated).
  double corun_slowdown() const { return (finish - start) / work; }
};

/// Per-priority-class aggregate of a run -- the degradation surface
/// the fault bench compares policies on.
struct ClassStats {
  std::size_t jobs = 0;       ///< arrivals in this class
  std::size_t completed = 0;
  std::size_t shed = 0;       ///< admission sheds + retry exhaustions
  double work_arrived = 0.0;
  double work_completed = 0.0;
  /// Completed solo work per simulated-time unit, over the run's
  /// makespan: the class goodput under churn.
  double goodput = 0.0;
  double mean_stretch = 0.0;  ///< over completed jobs only
  /// Mean billed decision regret of this class's placements.
  double mean_regret = 0.0;
  std::size_t billed = 0;     ///< billed placements in this class
};

struct ClusterResult {
  std::vector<JobOutcome> outcomes;  ///< indexed by trace position
  TraceLog log;
  double mean_stretch = 0.0;         ///< mean JobOutcome::stretch()
  double mean_corun_slowdown = 0.0;  ///< mean JobOutcome::corun_slowdown()
  double makespan = 0.0;             ///< time the last job finished
  /// Placement regret, billed per decision at ground truth: mean over
  /// billed decisions of (true admission_delta of the chosen machine)
  /// - (true admission_delta of the best available machine). Zero for
  /// the group-truth oracle by construction; the decision-quality
  /// metric the regret bench and tests compare, immune to downstream
  /// queueing chaos that otherwise drowns out the placement signal in
  /// mean_stretch. With ClusterConfig::regret_sample == 1 every
  /// decision is billed (the legacy accounting).
  double mean_decision_regret = 0.0;
  /// Decisions actually billed at ground truth (== outcomes.size()
  /// unless regret_sample != 1).
  std::size_t billed_decisions = 0;
  /// Ground-truth queries this run answered by additive pairwise
  /// composition instead of a measurement (resident groups above the
  /// truth's measured arity; every 3+-resident query for MatrixTruth).
  std::uint64_t pairwise_fallbacks = 0;

  // --- fault-injection / graceful-degradation accounting -------------
  // All zero on a fault-free run with admission and migration off.
  std::size_t failures = 0;    ///< machine Down events processed
  std::size_t recoveries = 0;  ///< machine Up events processed
  std::size_t fault_kills = 0; ///< resident jobs killed by failures
  std::size_t migrations = 0;  ///< preemptive evictions for priority
  std::size_t shed_jobs = 0;   ///< admission sheds + retry exhaustions
  double shed_work = 0.0;      ///< solo work still owed by shed jobs
  std::size_t completed_jobs = 0;
  /// Per-priority-class breakdown, indexed by class (size = highest
  /// class in the trace + 1). mean_stretch / mean_corun_slowdown /
  /// makespan above aggregate completed jobs only once any job is shed.
  std::vector<ClassStats> class_stats;

  // --- SLO / tail-latency accounting ----------------------------------
  // All zero when no job in the trace is latency-critical (every
  // slo_p99 == 0); the billing then issues no tail_slowdown queries,
  // so batch-only runs stay byte-identical to the pre-SLO engine.
  /// Arrivals with an SLO budget (JobSpec::slo_p99 > 0).
  std::size_t lc_jobs = 0;
  /// Mean LC tail regret over billed decisions: true SLO violation
  /// cost of the chosen machine minus the best open machine's (see
  /// slo_violation). Billed at EVERY billed decision, not only LC
  /// arrivals -- a best-effort aggressor placed next to a running LC
  /// job is what blows its p99, and that decision must pay for it.
  double mean_lc_tail_regret = 0.0;
  /// Billed decisions on a latency-critical trace (== billed_decisions
  /// when any job carries an SLO; 0 otherwise).
  std::size_t lc_billed_decisions = 0;
  /// Billed decisions whose chosen machine carried a nonzero true SLO
  /// violation -- some latency-critical budget was blown.
  std::size_t slo_violation_decisions = 0;
};

/// Runs the indexed event loop: arrivals queue per priority class
/// (FIFO within a class, higher classes first; all-zero priorities ==
/// plain FIFO), a job is admitted whenever a slot is free (policy
/// picks the machine through ClusterView), and runs to completion at a
/// rate of 1/slowdown where the slowdown is the truth oracle's answer
/// for the machine's current resident group.
///
/// Fault injection and graceful degradation (all off by default, and
/// byte-identical to the fault-free engine when off): a FaultEvent
/// schedule takes machines down (killing residents, which requeue
/// through RetryConfig's bounded exponential backoff and work-loss
/// model) and brings them back; MigrationConfig lets a waiting
/// high-priority job preempt a strictly lower-priority resident; and
/// AdmissionConfig sheds or defers best-effort arrivals under
/// overload. Every such action is audited (Fail/Recover/Evict/Shed/
/// Defer events), so fault runs replay byte-identically from the same
/// seed. Completions beat same-instant failures (a job finishing as
/// its machine dies finished); recoveries and requeues beat
/// same-instant arrivals. Each placement reports
/// the full new group outcome (per-member true slowdowns) to the
/// policy via observe_group(); for 2-resident groups that decomposes
/// into the legacy observe_pair() feedback.
///
/// When obs::Trace is recording, the run additionally emits a
/// simulated-time timeline in its own trace process (1 work unit
/// renders as 1 ms): one lane per machine holding resident-set spans
/// (a span per interval of constant resident multiset, labeled with
/// the member names), a per-decision instant event on the chosen
/// machine's lane carrying the policy name, its predicted cost, the
/// true cost, and the billed regret (true cost/regret only on billed
/// decisions), plus a queue-depth counter track. Tracing never changes
/// results -- it only reads simulator state.
ClusterResult simulate(const ClusterConfig& cfg,
                       harness::InterferenceTruth& truth,
                       const std::vector<JobSpec>& trace,
                       PlacementPolicy& policy);

/// Legacy entry point: additive pairwise composition over `truth`
/// (wraps it in a MatrixTruth). Bit-identical to the pre-grouptruth
/// simulator: clamped composition drives progress and billing, raw
/// pair entries (sub-1.0 included) feed the observers.
ClusterResult simulate(const ClusterConfig& cfg,
                       const harness::CorunMatrix& truth,
                       const std::vector<JobSpec>& trace,
                       PlacementPolicy& policy);

/// The pre-fleet event loop, kept as the executable specification for
/// the equivalence suite: full machines x slots rescan per event,
/// remaining work decremented at every global event, every MachineView
/// materialized per waiting job, every decision billed
/// (regret_sample is ignored). Priority-blind: throws if the trace
/// uses priority classes. Do not use at fleet scale.
ClusterResult simulate_reference(const ClusterConfig& cfg,
                                 harness::InterferenceTruth& truth,
                                 const std::vector<JobSpec>& trace,
                                 PlacementPolicy& policy);

/// Reference loop over additive pairwise composition (MatrixTruth).
ClusterResult simulate_reference(const ClusterConfig& cfg,
                                 const harness::CorunMatrix& truth,
                                 const std::vector<JobSpec>& trace,
                                 PlacementPolicy& policy);

}  // namespace coperf::cluster
