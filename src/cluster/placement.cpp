#include "cluster/placement.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "harness/scheduler.hpp"
#include "predict/predicted_matrix.hpp"

namespace coperf::cluster {

VectorClusterView::VectorClusterView(const std::vector<MachineView>& views)
    : views_(views) {
  for (const MachineView& v : views_)
    if (v.free_slots > 0) ++open_count_;
}

std::size_t VectorClusterView::kth_open(std::size_t k) const {
  for (std::size_t m = 0; m < views_.size(); ++m)
    if (views_[m].free_slots > 0 && k-- == 0) return m;
  throw std::out_of_range{"VectorClusterView::kth_open: index past open set"};
}

std::size_t RandomPolicy::place(const JobSpec& job,
                                const ClusterView& cluster) {
  (void)job;
  const std::size_t open = cluster.open_count();
  if (open == 0)
    throw std::logic_error{"RandomPolicy::place: no machine has a free slot"};
  return cluster.kth_open(rng_.below(open));
}

CostModelPolicy::CostModelPolicy(std::string name, harness::CorunMatrix estimate)
    : estimate_(std::move(estimate)), name_(std::move(name)) {
  if (estimate_.size() == 0)
    throw std::invalid_argument{"CostModelPolicy: empty estimate matrix"};
}

double placement_delta(const harness::CorunMatrix& est, std::size_t job_type,
                       double job_work, const MachineView& machine) {
  // harness::corun_slowdown inlined over the resident views so the hot
  // path allocates nothing; arithmetic is kept identical (sum the
  // excesses, clamp at 1.0).
  double excess = 0.0;
  for (const ResidentView& r : machine.residents)
    excess += est.at(job_type, r.type) - 1.0;
  double delta = (std::max(1.0, 1.0 + excess) - 1.0) * job_work;
  for (const ResidentView& r : machine.residents)
    delta += (est.at(r.type, job_type) - 1.0) * r.remaining;
  return delta;
}

double placement_delta(harness::InterferenceTruth& truth, std::size_t job_type,
                       double job_work, const MachineView& machine) {
  // Reused scratch: admission_delta takes vectors, and this is priced
  // once per candidate machine per decision -- at fleet scale that is
  // the regret-billing hot path.
  static thread_local std::vector<std::size_t> types;
  static thread_local std::vector<double> remaining;
  types.clear();
  remaining.clear();
  for (const ResidentView& r : machine.residents) {
    types.push_back(r.type);
    remaining.push_back(std::max(0.0, r.remaining));
  }
  return truth.admission_delta(job_type, job_work, types, remaining);
}

double slo_violation(harness::InterferenceTruth& truth, const JobSpec& job,
                     const MachineView& machine) {
  // Skip entirely when nothing latency-critical is involved: no tail
  // queries, so best-effort billing is byte-identical to before.
  bool any_lc = job.latency_critical();
  for (const ResidentView& r : machine.residents)
    any_lc = any_lc || r.slo_target > 0.0;
  if (!any_lc) return 0.0;
  static thread_local std::vector<std::size_t> others;
  double viol = 0.0;
  if (job.latency_critical()) {
    others.clear();
    for (const ResidentView& r : machine.residents) others.push_back(r.type);
    const double tail = truth.tail_slowdown(job.type, others);
    viol += std::max(0.0, tail - job.slo_p99) * job.work;
  }
  for (std::size_t i = 0; i < machine.residents.size(); ++i) {
    const ResidentView& victim = machine.residents[i];
    if (victim.slo_target <= 0.0) continue;
    others.clear();
    others.push_back(job.type);
    for (std::size_t j = 0; j < machine.residents.size(); ++j)
      if (j != i) others.push_back(machine.residents[j].type);
    const double tail = truth.tail_slowdown(victim.type, others);
    viol += std::max(0.0, tail - victim.slo_target) *
            std::max(0.0, victim.remaining);
  }
  return viol;
}

GroupTruthPolicy::GroupTruthPolicy(std::string name,
                                   harness::InterferenceTruth& truth)
    : truth_(truth), name_(std::move(name)) {
  if (truth_.size() == 0)
    throw std::invalid_argument{"GroupTruthPolicy: empty truth"};
}

std::size_t GroupTruthPolicy::place(const JobSpec& job,
                                    const ClusterView& cluster) {
  if (job.type >= truth_.size())
    throw std::out_of_range{"GroupTruthPolicy::place: job type outside truth"};
  std::size_t best = cluster.machines();
  double best_delta = std::numeric_limits<double>::infinity();
  const std::size_t open = cluster.open_count();
  for (std::size_t k = 0; k < open; ++k) {
    const std::size_t m = cluster.kth_open(k);
    const double delta =
        placement_delta(truth_, job.type, job.work, cluster.view(m));
    if (delta < best_delta) {
      best_delta = delta;
      best = m;
    }
  }
  if (best == cluster.machines())
    throw std::logic_error{name_ + "::place: no machine has a free slot"};
  last_delta_ = best_delta;
  return best;
}

std::size_t CostModelPolicy::place(const JobSpec& job,
                                   const ClusterView& cluster) {
  if (job.type >= estimate_.size())
    throw std::out_of_range{"CostModelPolicy::place: job type outside matrix"};
  std::size_t best = cluster.machines();
  double best_delta = std::numeric_limits<double>::infinity();
  const std::size_t open = cluster.open_count();
  for (std::size_t k = 0; k < open; ++k) {
    const std::size_t m = cluster.kth_open(k);
    const double delta =
        placement_delta(estimate_, job.type, job.work, cluster.view(m));
    if (delta < best_delta) {
      best_delta = delta;
      best = m;
    }
  }
  if (best == cluster.machines())
    throw std::logic_error{name_ + "::place: no machine has a free slot"};
  last_delta_ = best_delta;
  return best;
}

namespace {

/// Additively composed tail slowdown of `fg` against the `others` it
/// would share a machine with -- the tail matrix's analog of
/// harness::corun_slowdown, inlined allocation-free.
double composed_tail(const harness::CorunMatrix& tail, std::size_t fg,
                     const MachineView& machine, std::size_t skip,
                     std::size_t extra_type, bool has_extra) {
  double excess = 0.0;
  for (std::size_t j = 0; j < machine.residents.size(); ++j)
    if (j != skip) excess += tail.at(fg, machine.residents[j].type) - 1.0;
  if (has_extra) excess += tail.at(fg, extra_type) - 1.0;
  return std::max(1.0, 1.0 + excess);
}

}  // namespace

SloAwarePolicy::SloAwarePolicy(std::string name,
                               harness::CorunMatrix throughput,
                               harness::CorunMatrix tail)
    : throughput_(std::move(throughput)),
      tail_(std::move(tail)),
      name_(std::move(name)) {
  if (throughput_.size() == 0)
    throw std::invalid_argument{"SloAwarePolicy: empty throughput matrix"};
  if (tail_.size() != throughput_.size())
    throw std::invalid_argument{
        "SloAwarePolicy: tail/throughput axis size mismatch"};
}

std::size_t SloAwarePolicy::place(const JobSpec& job,
                                  const ClusterView& cluster) {
  if (job.type >= throughput_.size())
    throw std::out_of_range{"SloAwarePolicy::place: job type outside matrix"};
  std::size_t best = cluster.machines();
  double best_viol = std::numeric_limits<double>::infinity();
  double best_delta = std::numeric_limits<double>::infinity();
  const std::size_t open = cluster.open_count();
  for (std::size_t k = 0; k < open; ++k) {
    const std::size_t m = cluster.kth_open(k);
    const MachineView& v = cluster.view(m);
    // Predicted SLO violation: the arriving job's own composed tail
    // against its budget, plus the tail the job pushes each
    // latency-critical resident to against that resident's budget.
    double viol = 0.0;
    if (job.latency_critical()) {
      const double own = composed_tail(tail_, job.type, v, v.residents.size(),
                                       0, /*has_extra=*/false);
      viol += std::max(0.0, own - job.slo_p99) * job.work;
    }
    for (std::size_t i = 0; i < v.residents.size(); ++i) {
      const ResidentView& r = v.residents[i];
      if (r.slo_target <= 0.0) continue;
      const double rt =
          composed_tail(tail_, r.type, v, i, job.type, /*has_extra=*/true);
      viol += std::max(0.0, rt - r.slo_target) * std::max(0.0, r.remaining);
    }
    const double delta = placement_delta(throughput_, job.type, job.work, v);
    if (viol < best_viol || (viol == best_viol && delta < best_delta)) {
      best_viol = viol;
      best_delta = delta;
      best = m;
    }
  }
  if (best == cluster.machines())
    throw std::logic_error{name_ + "::place: no machine has a free slot"};
  last_delta_ = best_delta;
  last_violation_ = best_viol;
  if (best_viol > 0.0) ++forced_;
  return best;
}

OnlineRefinedPolicy::OnlineRefinedPolicy(
    std::string name, std::unique_ptr<predict::InterferenceModel> model,
    std::vector<predict::WorkloadSignature> sigs)
    : CostModelPolicy(std::move(name),
                      predict::predicted_matrix(sigs, *model)),
      model_(std::move(model)),
      sigs_(std::move(sigs)),
      observed_(sigs_.size(),
                std::vector<double>(sigs_.size(),
                                    std::numeric_limits<double>::quiet_NaN())),
      decon_(sigs_.size()) {
  // Deconvolution starts from the model's predictions, not from
  // zero-knowledge harmony: an early, under-determined group equation
  // then adjusts a calibrated estimate instead of replacing it.
  decon_.seed_prior(estimate_);
}

std::size_t OnlineRefinedPolicy::place(const JobSpec& job,
                                       const ClusterView& cluster) {
  refresh_unobserved();
  return CostModelPolicy::place(job, cluster);
}

void OnlineRefinedPolicy::observe_pair(std::size_t fg_type,
                                       std::size_t bg_type, double slowdown) {
  if (fg_type >= sigs_.size() || bg_type >= sigs_.size())
    throw std::out_of_range{"OnlineRefinedPolicy: observed type outside matrix"};
  double& seen = observed_[fg_type][bg_type];
  if (seen == slowdown) return;  // an exact repeat teaches nothing
  if (std::isnan(seen)) ++observed_count_;
  seen = slowdown;
  model_->observe({sigs_[fg_type], sigs_[bg_type], slowdown});
  // Measured fallback: the observed cell becomes ground truth now; the
  // remaining cells are re-predicted lazily at the next placement, so
  // a burst of observations costs one refresh, not one per pair.
  estimate_.normalized[fg_type][bg_type] = std::max(1.0, slowdown);
  estimate_stale_ = true;
}

void OnlineRefinedPolicy::observe_group(const std::vector<std::size_t>& types,
                                        const std::vector<double>& slowdowns) {
  if (types.size() != slowdowns.size())
    throw std::invalid_argument{
        "OnlineRefinedPolicy: group types/slowdowns size mismatch"};
  if (types.size() <= 2) {
    // A 2-resident outcome is two exact pair samples: the measured
    // fallback + model observe() path.
    CostModelPolicy::observe_group(types, slowdowns);
    return;
  }
  // 3+-resident outcome: one deconvolution equation per member. The
  // signature-copying TrainingGroup is only built for models that
  // actually absorb group samples (none of the shipped ones do).
  const bool feed_model = model_->wants_group_samples();
  for (std::size_t i = 0; i < types.size(); ++i) {
    if (types[i] >= sigs_.size())
      throw std::out_of_range{
          "OnlineRefinedPolicy: observed type outside matrix"};
    const std::vector<std::size_t> others =
        harness::others_excluding(types, i);
    decon_.observe(types[i], others, slowdowns[i]);
    if (feed_model) {
      predict::TrainingGroup g;
      g.fg = sigs_[types[i]];
      for (const std::size_t o : others) g.others.push_back(sigs_[o]);
      g.slowdown = slowdowns[i];
      model_->observe_group(g);
    }
  }
  estimate_stale_ = true;
}

std::size_t OnlineRefinedPolicy::deconvolved_cells() const {
  std::size_t cells = 0;
  for (std::size_t i = 0; i < sigs_.size(); ++i)
    for (std::size_t j = 0; j < sigs_.size(); ++j)
      if (std::isnan(observed_[i][j]) && decon_.support(i, j) > 0) ++cells;
  return cells;
}

void OnlineRefinedPolicy::refresh_unobserved() {
  if (!estimate_stale_) return;
  // Priority per cell: direct pair observation (pinned, skipped here)
  // > deconvolved estimate from 3+-resident outcomes > model
  // prediction.
  for (std::size_t i = 0; i < sigs_.size(); ++i)
    for (std::size_t j = 0; j < sigs_.size(); ++j)
      if (std::isnan(observed_[i][j]))
        estimate_.normalized[i][j] =
            decon_.support(i, j) > 0
                ? decon_.entry(i, j)
                : std::max(1.0, model_->predict(sigs_[i], sigs_[j]));
  estimate_stale_ = false;
}

}  // namespace coperf::cluster
