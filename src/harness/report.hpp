// Reporters for the per-figure bench binaries.
//
// Two layers:
//   * Table / print_heatmap / print_scalability -- human-readable
//     output in the same shape as the paper's tables and figures;
//   * report::to_json / report::to_csv -- one uniform machine-readable
//     emitter per result type, so every bench binary backs its --csv
//     and --json flags with the same code ("build plan -> execute ->
//     emit report").
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/group.hpp"
#include "harness/matrix.hpp"
#include "harness/prefetch_study.hpp"
#include "harness/runner.hpp"
#include "harness/scalability.hpp"

namespace coperf::harness {

/// Simple column-aligned table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void print(std::ostream& os) const;
  std::string to_csv() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fig. 5-style heat map: rows = foreground, cols = background,
/// values = normalized runtime.
void print_heatmap(std::ostream& os, const CorunMatrix& m);

/// CSV dump of the matrix (fg,bg,normalized triples).
std::string matrix_to_csv(const CorunMatrix& m);

/// Fig. 2-style speedup series for a suite of workloads.
void print_scalability(std::ostream& os,
                       const std::vector<ScalabilityResult>& results);

namespace report {

std::string to_json(const RunResult& r);
std::string to_json(const GroupResult& g);
std::string to_json(const CorunResult& c);
std::string to_json(const CorunMatrix& m);
std::string to_json(const ScalabilityResult& s);
std::string to_json(const std::vector<ScalabilityResult>& s);
std::string to_json(const PrefetchSensitivity& p);
std::string to_json(const std::vector<PrefetchSensitivity>& p);

std::string to_csv(const RunResult& r);
std::string to_csv(const GroupResult& g);
std::string to_csv(const CorunResult& c);
std::string to_csv(const CorunMatrix& m);
std::string to_csv(const ScalabilityResult& s);
std::string to_csv(const std::vector<ScalabilityResult>& s);
std::string to_csv(const PrefetchSensitivity& p);
std::string to_csv(const std::vector<PrefetchSensitivity>& p);

}  // namespace report

}  // namespace coperf::harness
