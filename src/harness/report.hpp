// Plain-text/CSV reporters used by the per-figure bench binaries to
// print rows/series in the same shape as the paper's tables and
// figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "harness/matrix.hpp"
#include "harness/runner.hpp"
#include "harness/scalability.hpp"

namespace coperf::harness {

/// Simple column-aligned table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  void print(std::ostream& os) const;
  std::string to_csv() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fig. 5-style heat map: rows = foreground, cols = background,
/// values = normalized runtime.
void print_heatmap(std::ostream& os, const CorunMatrix& m);

/// CSV dump of the matrix (fg,bg,normalized triples).
std::string matrix_to_csv(const CorunMatrix& m);

/// Fig. 2-style speedup series for a suite of workloads.
void print_scalability(std::ostream& os,
                       const std::vector<ScalabilityResult>& results);

}  // namespace coperf::harness
