#include "harness/grouptruth.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "harness/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "wl/registry.hpp"

namespace coperf::harness {

std::vector<std::size_t> others_excluding(const std::vector<std::size_t>& group,
                                          std::size_t i) {
  if (i >= group.size())
    throw std::out_of_range{"others_excluding: member outside the group"};
  std::vector<std::size_t> others;
  others.reserve(group.size() - 1);
  for (std::size_t j = 0; j < group.size(); ++j)
    if (j != i) others.push_back(group[j]);
  return others;
}

// --- InterferenceTruth ----------------------------------------------

void InterferenceTruth::count_fallbacks(std::uint64_t n) {
  fallbacks_ += n;
  static obs::Counter& ctr =
      obs::Registry::instance().counter("truth.pairwise_fallbacks");
  ctr.add(n);
}

double InterferenceTruth::admission_delta(
    std::size_t job_type, double job_work,
    const std::vector<std::size_t>& residents,
    const std::vector<double>& remaining) {
  if (residents.size() != remaining.size())
    throw std::invalid_argument{
        "admission_delta: residents/remaining size mismatch"};
  double delta = (slowdown(job_type, residents) - 1.0) * job_work;
  for (std::size_t i = 0; i < residents.size(); ++i) {
    std::vector<std::size_t> others = others_excluding(residents, i);
    const double without = slowdown(residents[i], others);
    others.push_back(job_type);
    const double with_job = slowdown(residents[i], others);
    delta += (with_job - without) * remaining[i];
  }
  return delta;
}

// --- MatrixTruth ----------------------------------------------------

MatrixTruth::MatrixTruth(CorunMatrix m) : matrix_(std::move(m)) {
  if (matrix_.size() == 0)
    throw std::invalid_argument{"MatrixTruth: empty matrix"};
}

double MatrixTruth::slowdown(std::size_t type,
                             const std::vector<std::size_t>& others) {
  if (others.size() >= 2) count_fallbacks();  // composed, not measured
  // corun_slowdown exactly, clamp included, so event-loop progress is
  // bit-identical to the legacy simulator even for sub-1.0 entries.
  // Raw pair entries are served by pairwise() -- the feedback path the
  // simulator reports observations from, as the old loop did.
  return corun_slowdown(matrix_, type, others);
}

double MatrixTruth::admission_delta(std::size_t job_type, double job_work,
                                    const std::vector<std::size_t>& residents,
                                    const std::vector<double>& remaining) {
  if (residents.size() != remaining.size())
    throw std::invalid_argument{
        "admission_delta: residents/remaining size mismatch"};
  // Count exactly the composed queries the default oracle formula
  // would have issued (the job's group, plus each resident's
  // with-job and without-job groups), so pairwise_fallbacks means
  // the same thing whichever truth backend billed the run.
  const std::size_t r = residents.size();
  count_fallbacks((r >= 2 ? 1 : 0) +
                  r * ((r >= 2 ? 1 : 0) + (r >= 3 ? 1 : 0)));
  // The pre-grouptruth billing, verbatim: the job's composed slowdown
  // for its own work, plus the raw pair excess it inflicts on each
  // resident. (The default group formula reduces to this when the
  // matrix entries are >= 1; entries below 1 would differ through the
  // clamp, so the legacy arithmetic is kept exactly.)
  double delta = (corun_slowdown(matrix_, job_type, residents) - 1.0) * job_work;
  for (std::size_t i = 0; i < residents.size(); ++i)
    delta += (matrix_.at(residents[i], job_type) - 1.0) * remaining[i];
  return delta;
}

// --- GroupTruth -----------------------------------------------------

GroupTruth::GroupTruth(Config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.workloads.empty())
    throw std::invalid_argument{"GroupTruth: empty workload axis"};
  for (const std::string& w : cfg_.workloads)
    (void)wl::Registry::instance().at(w);  // unknown names fail here
  if (cfg_.member_threads == 0)
    throw std::invalid_argument{"GroupTruth: member_threads must be >= 1"};
  if (cfg_.reps == 0)
    throw std::invalid_argument{"GroupTruth: reps must be >= 1"};
  if (cfg_.max_arity < 2)
    throw std::invalid_argument{
        "GroupTruth: max_arity must be >= 2 (pairs are the smallest group)"};
  if (cfg_.max_arity * cfg_.member_threads > cfg_.opt.machine.num_cores)
    throw std::invalid_argument{
        "GroupTruth: max_arity * member_threads = " +
        std::to_string(cfg_.max_arity * cfg_.member_threads) +
        " cores exceeds the machine's " +
        std::to_string(cfg_.opt.machine.num_cores)};
}

GroupTruth::Key GroupTruth::make_key(std::size_t type,
                                     std::vector<std::size_t> others) {
  std::sort(others.begin(), others.end());
  Key key;
  key.reserve(others.size() + 1);
  key.push_back(type);
  key.insert(key.end(), others.begin(), others.end());
  return key;
}

GroupSpec GroupTruth::trial_spec(const Key& key) const {
  GroupSpec s;
  s.members.push_back(
      MemberSpec{cfg_.workloads[key[0]], cfg_.member_threads, {}, false});
  for (std::size_t i = 1; i < key.size(); ++i)
    s.members.push_back(
        MemberSpec{cfg_.workloads[key[i]], cfg_.member_threads, {}, true});
  return s;
}

GroupTruth::PlanStats GroupTruth::measure(const std::vector<Key>& keys,
                                          ExperimentPlan::Progress progress) {
  ExperimentPlan plan{cfg_.opt};
  std::vector<Key> pending;
  std::vector<std::size_t> solo_pending;
  for (const Key& key : keys) {
    if (measured_.count(key) != 0) continue;
    for (const std::size_t t : key)
      if (t >= cfg_.workloads.size())
        throw std::out_of_range{"GroupTruth: type outside the axis"};
    if (key.size() > cfg_.max_arity)
      throw std::logic_error{"GroupTruth: measuring beyond max_arity"};
    plan.add_group(trial_spec(key), cfg_.reps);
    pending.push_back(key);
  }
  // Solo baselines for every foreground the pending keys normalize by.
  for (const Key& key : pending)
    if (solos_.count(key[0]) == 0) {
      plan.add_solo(
          SoloSpec{cfg_.workloads[key[0]], cfg_.member_threads, cfg_.reps});
      solo_pending.push_back(key[0]);
    }
  PlanStats stats{plan.trial_count(), plan.residue_count()};
  if (plan.trial_count() == 0) return stats;
  const obs::Trace::Span span{"grouptruth.measure",
                              obs::Args{}
                                  .set("groups", pending.size())
                                  .set("trials", stats.trials)
                                  .set("residue", stats.residue)
                                  .str()};
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("grouptruth.measured_groups").add(pending.size());
  const ResultSet rs = plan.execute(cfg_.host_threads, std::move(progress));
  for (const std::size_t t : solo_pending)
    solos_.emplace(
        t, rs.solo(SoloSpec{cfg_.workloads[t], cfg_.member_threads, cfg_.reps}));
  for (const Key& key : pending) {
    const GroupResult& g = rs.group(trial_spec(key), cfg_.reps);
    // A cycle-limit-cut foreground never finished: the ratio below is
    // a lower bound on the true slowdown, not a measurement. Keep it
    // (the best information available) but count it so consumers can
    // warn -- see truncated_trials().
    if (g.members[0].hit_cycle_limit) {
      ++truncated_;
      reg.counter("grouptruth.truncated").add();
    }
    const RunResult& solo_base = solos_.at(key[0]);
    const double solo_cycles = static_cast<double>(solo_base.cycles);
    measured_[key] = solo_cycles > 0.0
                         ? static_cast<double>(g.members[0].cycles) / solo_cycles
                         : 1.0;
    // Tail ratio only when both sides actually recorded requests (a
    // serving foreground); batch foregrounds fall back to throughput,
    // so tail_slowdown() is total over the axis either way.
    const double solo_p99 = solo_base.latency.quantile(0.99);
    measured_tail_[key] =
        (g.members[0].latency.count > 0 && solo_base.latency.count > 0 &&
         solo_p99 > 0.0)
            ? g.members[0].latency.quantile(0.99) / solo_p99
            : measured_[key];
  }
  return stats;
}

double GroupTruth::slowdown(std::size_t type,
                            const std::vector<std::size_t>& others) {
  if (type >= cfg_.workloads.size())
    throw std::out_of_range{"GroupTruth::slowdown: type outside the axis"};
  if (others.empty()) return 1.0;
  if (others.size() + 1 > cfg_.max_arity) {
    count_fallbacks();
    return corun_slowdown(pairwise(), type, others);
  }
  const Key key = make_key(type, others);
  auto it = measured_.find(key);
  if (it == measured_.end()) {
    measure({key}, {});
    it = measured_.find(key);
  }
  return it->second;
}

double GroupTruth::tail_slowdown(std::size_t type,
                                 const std::vector<std::size_t>& others) {
  if (type >= cfg_.workloads.size())
    throw std::out_of_range{"GroupTruth::tail_slowdown: type outside the axis"};
  if (others.empty()) return 1.0;
  if (others.size() + 1 > cfg_.max_arity)
    return slowdown(type, others);  // composed fallback, counted there
  const Key key = make_key(type, others);
  auto it = measured_tail_.find(key);
  if (it == measured_tail_.end()) {
    measure({key}, {});
    it = measured_tail_.find(key);
  }
  return it->second;
}

const CorunMatrix& GroupTruth::pairwise() {
  if (pairwise_built_) return matrix_;
  const std::size_t n = cfg_.workloads.size();
  std::vector<Key> keys;
  keys.reserve(n * n);
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b) keys.push_back(make_key(a, {b}));
  measure(keys, {});
  matrix_.workloads = cfg_.workloads;
  matrix_.solo_cycles.clear();
  for (std::size_t a = 0; a < n; ++a)
    matrix_.solo_cycles.push_back(solo(a).cycles);
  matrix_.normalized.assign(n, std::vector<double>(n, 1.0));
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = 0; b < n; ++b)
      matrix_.normalized[a][b] = measured_.at(make_key(a, {b}));
  pairwise_built_ = true;
  return matrix_;
}

GroupTruth::PlanStats GroupTruth::expand_and_measure(
    const std::vector<std::vector<std::size_t>>& groups,
    ExperimentPlan::Progress progress) {
  std::vector<Key> keys;
  for (const std::vector<std::size_t>& group : groups) {
    if (group.size() < 2)
      throw std::invalid_argument{
          "GroupTruth: a measured group needs >= 2 residents"};
    if (group.size() > cfg_.max_arity)
      throw std::invalid_argument{
          "GroupTruth: group larger than max_arity -- raise Config::max_arity"};
    // One trial per distinct member type: that member foreground, the
    // rest backgrounds.
    std::vector<std::size_t> sorted = group;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (i > 0 && sorted[i] == sorted[i - 1]) continue;
      keys.push_back(make_key(sorted[i], others_excluding(sorted, i)));
    }
  }
  return measure(keys, std::move(progress));
}

GroupTruth::PlanStats GroupTruth::prefetch(
    const std::vector<std::vector<std::size_t>>& groups,
    ExperimentPlan::Progress progress) {
  return expand_and_measure(groups, std::move(progress));
}

GroupTruth::PlanStats GroupTruth::prefetch_all(
    unsigned max_group, ExperimentPlan::Progress progress) {
  max_group = std::min(max_group, cfg_.max_arity);
  if (max_group < 2)
    throw std::invalid_argument{"GroupTruth::prefetch_all: max_group < 2"};
  const std::size_t n = cfg_.workloads.size();
  std::vector<std::vector<std::size_t>> groups;
  std::vector<std::size_t> current;
  // Multisets of each size, non-decreasing type order.
  const auto enumerate = [&](auto&& self, std::size_t first,
                             unsigned left) -> void {
    if (left == 0) {
      groups.push_back(current);
      return;
    }
    for (std::size_t t = first; t < n; ++t) {
      current.push_back(t);
      self(self, t, left - 1);
      current.pop_back();
    }
  };
  for (unsigned size = 2; size <= max_group; ++size)
    enumerate(enumerate, 0, size);
  const obs::Trace::Span span{"grouptruth.prefetch_all",
                              obs::Args{}
                                  .set("axis", n)
                                  .set("max_group", max_group)
                                  .set("multisets", groups.size())
                                  .str()};
  const PlanStats stats = expand_and_measure(groups, std::move(progress));
  (void)pairwise();  // size-2 multisets are already measured: zero new trials
  return stats;
}

const RunResult& GroupTruth::solo(std::size_t type) {
  if (type >= cfg_.workloads.size())
    throw std::out_of_range{"GroupTruth::solo: type outside the axis"};
  auto it = solos_.find(type);
  if (it == solos_.end()) {
    ExperimentPlan plan{cfg_.opt};
    const SoloSpec spec{cfg_.workloads[type], cfg_.member_threads, cfg_.reps};
    plan.add_solo(spec);
    const ResultSet rs = plan.execute(cfg_.host_threads);
    it = solos_.emplace(type, rs.solo(spec)).first;
  }
  return it->second;
}

std::vector<GroupObservation> GroupTruth::observations() const {
  std::vector<GroupObservation> obs;
  obs.reserve(measured_.size());
  for (const auto& [key, value] : measured_) {
    GroupObservation o;
    o.type = key[0];
    o.others.assign(key.begin() + 1, key.end());
    o.slowdown = value;
    const auto tail = measured_tail_.find(key);
    o.tail_slowdown = tail != measured_tail_.end() ? tail->second : value;
    obs.push_back(std::move(o));
  }
  return obs;
}

}  // namespace coperf::harness
