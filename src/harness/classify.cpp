#include "harness/classify.hpp"

namespace coperf::harness {

const char* to_string(PairClass c) {
  switch (c) {
    case PairClass::Harmony: return "Harmony";
    case PairClass::VictimOffender: return "Victim-Offender";
    case PairClass::BothVictim: return "Both-Victim";
  }
  return "?";
}

PairClass classify_pair(double slowdown_a, double slowdown_b,
                        double threshold) {
  const bool a_victim = slowdown_a >= threshold;
  const bool b_victim = slowdown_b >= threshold;
  if (a_victim && b_victim) return PairClass::BothVictim;
  if (a_victim || b_victim) return PairClass::VictimOffender;
  return PairClass::Harmony;
}

std::string victim_of(const std::string& a, const std::string& b,
                      double slowdown_a, double slowdown_b, double threshold) {
  if (classify_pair(slowdown_a, slowdown_b, threshold) !=
      PairClass::VictimOffender)
    return "";
  return slowdown_a >= threshold ? a : b;
}

}  // namespace coperf::harness
