// Experiment manifests: an executed plan serialized to JSON.
//
// A manifest captures everything needed to regenerate a figure or
// table WITHOUT re-running the simulations: the plan's base options,
// every trial (group members + fully resolved per-trial options +
// content-address key) and its GroupResult. load_manifest() rebuilds
// the same spec-addressable ResultSet the original execute() returned,
// so bench code that reads `rs.matrix(spec)` / `rs.solo(spec)` works
// identically over a loaded manifest -- and integrity is checked by
// recomputing each trial's RunCache key from the deserialized spec.
//
// Two deliberate lossy spots, both documented at the field level:
//  * per-region profiles (RunResult::regions) are not serialized --
//    loaded results carry empty region vectors (region-level reports
//    need a live run);
//  * derived perf::Metrics are recomputed from the deserialized
//    CoreStats rather than stored (they are a pure function of them).
// Everything else round-trips bit-identically, the per-request
// latency distribution included.
#pragma once

#include <iosfwd>
#include <string>

#include "harness/plan.hpp"

namespace coperf::harness {

/// Manifest format version; bumped when the schema changes. Loading a
/// manifest with a different version throws std::runtime_error.
inline constexpr int kManifestVersion = 1;

/// Serializes `plan`'s trials with their results from `rs` as one JSON
/// document. Every trial in the plan must have a result in `rs`
/// (i.e. `rs` came from `plan.execute()`); throws std::out_of_range
/// otherwise.
void save_manifest(std::ostream& os, const ExperimentPlan& plan,
                   const ResultSet& rs);
std::string manifest_json(const ExperimentPlan& plan, const ResultSet& rs);

/// Parses a manifest back into a spec-addressable ResultSet. Throws
/// std::runtime_error on malformed input, version mismatch, or a trial
/// whose stored key does not match the key recomputed from its
/// deserialized spec (a corrupted or hand-edited manifest).
ResultSet load_manifest(std::istream& is);

}  // namespace coperf::harness
