#include "harness/matrix.hpp"

#include "harness/plan.hpp"

namespace coperf::harness {

PairClass CorunMatrix::pair_class(std::size_t i, std::size_t j) const {
  return classify_pair(normalized[i][j], normalized[j][i]);
}

CorunMatrix::ClassCounts CorunMatrix::count_classes() const {
  ClassCounts c;
  for (std::size_t i = 0; i < size(); ++i) {
    for (std::size_t j = i; j < size(); ++j) {
      switch (pair_class(i, j)) {
        case PairClass::Harmony: ++c.harmony; break;
        case PairClass::VictimOffender: ++c.victim_offender; break;
        case PairClass::BothVictim: ++c.both_victim; break;
      }
    }
  }
  return c;
}

CorunMatrix corun_matrix(const MatrixOptions& opt) {
  // One plan holds the whole sweep: solo baselines (unless the caller
  // measured them) and all fg x bg cells, deduplicated against
  // anything the RunCache already knows.
  MatrixSpec spec;
  spec.subset = opt.subset;
  spec.reps = opt.reps;
  spec.solo_cycles = opt.solo_cycles;
  ExperimentPlan plan{opt.run};
  plan.add_matrix(spec);
  return plan.execute(opt.host_threads, {}, opt.schedule).matrix(spec);
}

std::vector<double> corun_row(std::string_view fg,
                              const std::vector<std::string>& bgs,
                              const RunOptions& opt, unsigned reps) {
  const sim::Cycle solo = run_solo_median(fg, opt, reps).cycles;
  std::vector<double> out;
  out.reserve(bgs.size());
  for (const auto& bg : bgs) {
    const CorunResult r = run_pair_median(fg, bg, opt, reps);
    out.push_back(static_cast<double>(r.fg.cycles) /
                  static_cast<double>(solo));
  }
  return out;
}

}  // namespace coperf::harness
