#include "harness/matrix.hpp"

#include <atomic>
#include <exception>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "harness/parallel.hpp"
#include "wl/registry.hpp"

namespace coperf::harness {

PairClass CorunMatrix::pair_class(std::size_t i, std::size_t j) const {
  return classify_pair(normalized[i][j], normalized[j][i]);
}

CorunMatrix::ClassCounts CorunMatrix::count_classes() const {
  ClassCounts c;
  for (std::size_t i = 0; i < size(); ++i) {
    for (std::size_t j = i; j < size(); ++j) {
      switch (pair_class(i, j)) {
        case PairClass::Harmony: ++c.harmony; break;
        case PairClass::VictimOffender: ++c.victim_offender; break;
        case PairClass::BothVictim: ++c.both_victim; break;
      }
    }
  }
  return c;
}

CorunMatrix corun_matrix(const MatrixOptions& opt) {
  CorunMatrix m;
  if (opt.subset.empty()) {
    for (const auto* w : wl::Registry::instance().applications())
      m.workloads.push_back(w->name);
  } else {
    m.workloads = opt.subset;
    for (const auto& w : m.workloads) (void)wl::Registry::instance().at(w);
  }
  const std::size_t n = m.workloads.size();
  if (n == 0) throw std::logic_error{"corun_matrix: no workloads"};

  // Solo baselines first (median of reps), unless the caller already
  // measured them.
  if (!opt.solo_cycles.empty() && opt.solo_cycles.size() != n)
    throw std::invalid_argument{
        "corun_matrix: solo_cycles size does not match the workload count"};
  if (opt.solo_cycles.size() == n) {
    m.solo_cycles = opt.solo_cycles;
  } else {
    m.solo_cycles.assign(n, 0);
    parallel_for(
        n, opt.host_threads,
        [&](std::size_t i) {
          m.solo_cycles[i] =
              run_solo_median(m.workloads[i], opt.run, opt.reps).cycles;
        },
        opt.schedule);
  }

  // Full fg x bg sweep.
  m.normalized.assign(n, std::vector<double>(n, 0.0));
  parallel_for(
      n * n, opt.host_threads,
      [&](std::size_t idx) {
        const std::size_t fg = idx / n;
        const std::size_t bg = idx % n;
        const CorunResult r = run_pair_median(m.workloads[fg],
                                              m.workloads[bg], opt.run,
                                              opt.reps);
        m.normalized[fg][bg] = static_cast<double>(r.fg.cycles) /
                               static_cast<double>(m.solo_cycles[fg]);
      },
      opt.schedule);
  return m;
}

std::vector<double> corun_row(std::string_view fg,
                              const std::vector<std::string>& bgs,
                              const RunOptions& opt, unsigned reps) {
  const sim::Cycle solo = run_solo_median(fg, opt, reps).cycles;
  std::vector<double> out;
  out.reserve(bgs.size());
  for (const auto& bg : bgs) {
    const CorunResult r = run_pair_median(fg, bg, opt, reps);
    out.push_back(static_cast<double>(r.fg.cycles) /
                  static_cast<double>(solo));
  }
  return out;
}

}  // namespace coperf::harness
