// The full co-running matrix (paper Section V, Fig. 5): every workload
// as foreground against every workload as background, normalized to
// the solo run. Simulations are independent, so the sweep fans out
// over a host thread pool.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/classify.hpp"
#include "harness/parallel.hpp"
#include "harness/runner.hpp"

namespace coperf::harness {

struct CorunMatrix {
  std::vector<std::string> workloads;  ///< axis order (paper Fig. 5 order)
  std::vector<sim::Cycle> solo_cycles; ///< per workload
  /// normalized[fg][bg] = t(fg with bg) / t(fg solo).
  std::vector<std::vector<double>> normalized;

  double at(std::size_t fg, std::size_t bg) const {
    if (fg >= normalized.size() || bg >= normalized[fg].size())
      throw std::out_of_range{"CorunMatrix::at: index outside the matrix"};
    return normalized[fg][bg];
  }
  std::size_t size() const { return workloads.size(); }

  /// Classification of the unordered pair (i, j) from both orderings.
  PairClass pair_class(std::size_t i, std::size_t j) const;

  /// Counts of each class over all unordered pairs.
  struct ClassCounts {
    std::size_t harmony = 0, victim_offender = 0, both_victim = 0;
  };
  ClassCounts count_classes() const;
};

struct MatrixOptions {
  RunOptions run;
  unsigned reps = 3;           ///< median-of-N (paper: 3 runs per pair)
  unsigned host_threads = 0;   ///< 0 = hardware_concurrency
  /// StaticChunk gives a reproducible index-to-worker partition for
  /// benchmarking (bench/sim_throughput); Dynamic balances load.
  ParallelSchedule schedule = ParallelSchedule::Dynamic;
  /// Restrict to a subset of workloads (empty = all 25 applications).
  std::vector<std::string> subset;
  /// Precomputed solo baselines, one per workload in the exact axis
  /// order of `subset` (e.g. from an earlier signature-collection pass
  /// over the same list). When non-empty the solo pass is skipped; a
  /// size mismatch throws. The caller is responsible for the order --
  /// build this and `subset` from the same vector.
  std::vector<sim::Cycle> solo_cycles;
};

/// Runs the (subset of the) 25x25 sweep. With the default subset this
/// is the paper's 625-pair experiment.
CorunMatrix corun_matrix(const MatrixOptions& opt = {});

/// Single-row helper: one foreground against a list of backgrounds
/// (used by the Fig. 6 mini-benchmark experiment).
std::vector<double> corun_row(std::string_view fg,
                              const std::vector<std::string>& bgs,
                              const RunOptions& opt, unsigned reps = 3);

}  // namespace coperf::harness
