// Solo and co-run execution harness -- the paper's experimental
// methodology (Section III / Fig. 1) as a library:
//   * applications pinned to exclusive cores (fg: 0..3, bg: 4..7),
//   * background application restarted indefinitely until the
//     foreground finishes,
//   * bandwidth sampled PCM-style throughout,
//   * repeated runs under distinct seeds, reported as the median.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "perf/metrics.hpp"
#include "perf/pcm.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"
#include "wl/workload.hpp"

namespace coperf::harness {

struct RunOptions {
  sim::MachineConfig machine = sim::MachineConfig::scaled();
  wl::SizeClass size = wl::SizeClass::Small;
  unsigned threads = 4;     ///< foreground thread count
  unsigned bg_threads = 4;  ///< background thread count (co-run)
  std::uint64_t seed = 1;
  sim::Cycle sample_window = 200'000;  ///< PCM sampling period
  sim::Cycle cycle_limit = 50'000'000'000ull;
};

/// Measurements of one application from one run (solo or co-run).
///
/// Migration note (PR 9): `latency` is new -- the per-request latency
/// distribution in simulated cycles for serving workloads. Batch
/// workloads (everything outside the "serve" suite) never emit request
/// marks, so for them `latency` is empty (count == 0) and every
/// pre-existing field is bit-identical to before. Consumers that
/// aggregate RunResults should merge `latency` with operator+=; the
/// derived percentiles come from LatencyStats::quantile.
struct RunResult {
  std::string workload;
  unsigned threads = 0;
  sim::Cycle cycles = 0;   ///< wall-clock of the run (this app)
  double seconds = 0.0;
  sim::CoreStats stats;    ///< aggregated over the app's cores
  perf::Metrics metrics;
  double avg_bw_gbs = 0.0; ///< this app's DRAM bandwidth
  std::vector<perf::RegionProfile> regions;
  std::size_t footprint_bytes = 0;
  bool hit_cycle_limit = false;
  /// Per-request latency distribution (empty for batch workloads).
  sim::LatencyStats latency;
};

/// Result of one foreground/background pairing.
struct CorunResult {
  RunResult fg;
  std::string bg_workload;
  std::uint64_t bg_runs_completed = 0;
  sim::CoreStats bg_stats;
  double bg_avg_bw_gbs = 0.0;
  double total_avg_bw_gbs = 0.0;
};

/// Runs `workload` alone on cores [0, threads).
RunResult run_solo(std::string_view workload, const RunOptions& opt = {});

/// Runs `fg` on cores [0, threads) against `bg` looping on cores
/// [threads, threads + bg_threads). Measures the foreground completely
/// and the background's progress (Section V methodology). Implemented
/// as the 2-member special case of run_group (harness/group.hpp).
CorunResult run_pair(std::string_view fg, std::string_view bg,
                     const RunOptions& opt = {});

/// Median-of-N helper matching the paper's three repeated runs: reruns
/// with seeds seed+0..n-1 and returns the run with median fg cycles.
RunResult run_solo_median(std::string_view workload, const RunOptions& opt = {},
                          unsigned reps = 3);
CorunResult run_pair_median(std::string_view fg, std::string_view bg,
                            const RunOptions& opt = {}, unsigned reps = 3);

}  // namespace coperf::harness
