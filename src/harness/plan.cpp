#include "harness/plan.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "harness/runcache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "wl/registry.hpp"

namespace coperf::harness {

namespace {

/// Trace-span label of one trial: members joined with '+', background
/// (restart-until-done) members marked with '*'.
std::string trial_label(const GroupSpec& spec) {
  std::string label;
  for (const MemberSpec& m : spec.members) {
    if (!label.empty()) label += '+';
    label += m.workload;
    if (m.restart_until_done) label += '*';
  }
  return label;
}

RunOptions with_seed(RunOptions o, std::uint64_t seed) {
  o.seed = seed;
  return o;
}

GroupSpec pair_group(const std::string& fg, const std::string& bg,
                     const RunOptions& base) {
  return GroupSpec::pair(fg, bg, base.threads, base.bg_threads);
}

/// The matrix axis: the subset verbatim (names validated), or every
/// registered application in paper order.
std::vector<std::string> matrix_axis(const MatrixSpec& spec) {
  if (!spec.subset.empty()) {
    for (const auto& w : spec.subset) (void)wl::Registry::instance().at(w);
    return spec.subset;
  }
  std::vector<std::string> axis;
  for (const auto* w : wl::Registry::instance().applications())
    axis.push_back(w->name);
  return axis;
}

RunOptions prefetch_options(const RunOptions& base, bool on) {
  RunOptions o = base;
  o.machine.prefetch =
      on ? sim::PrefetchMask::all_on() : sim::PrefetchMask::all_off();
  return o;
}

}  // namespace

// --- ExperimentPlan --------------------------------------------------

ExperimentPlan::ExperimentPlan(RunOptions base) : base_(base) {
  base_.machine.validate();
}

void ExperimentPlan::add_trial(GroupSpec group, const RunOptions& opt) {
  // Fail at add time, not from a worker mid-execute: an unknown name
  // must not discard a half-finished ResultSet.
  for (const MemberSpec& m : group.members)
    (void)wl::Registry::instance().at(m.workload);
  std::string key = RunCache::group_key(group, opt);
  if (index_.count(key) != 0) return;  // structural dedup
  index_.emplace(key, trials_.size());
  trials_.push_back(Trial{std::move(group), opt, std::move(key)});
}

ExperimentPlan& ExperimentPlan::add_solo(const SoloSpec& spec) {
  return add_group(GroupSpec::solo(spec.workload, spec.threads), spec.reps);
}

ExperimentPlan& ExperimentPlan::add_group(const GroupSpec& spec,
                                          unsigned reps) {
  if (reps == 0) throw std::invalid_argument{"add_group: reps must be >= 1"};
  for (unsigned r = 0; r < reps; ++r)
    add_trial(spec, with_seed(base_, base_.seed + r));
  return *this;
}

ExperimentPlan& ExperimentPlan::add_scalability(const SweepSpec& spec) {
  if (spec.max_threads == 0)
    throw std::invalid_argument{"add_scalability: max_threads must be >= 1"};
  for (unsigned t = 1; t <= spec.max_threads; ++t)
    add_trial(GroupSpec::solo(spec.workload, t), base_);
  return *this;
}

ExperimentPlan& ExperimentPlan::add_prefetch(const PrefetchSpec& spec) {
  add_trial(GroupSpec::solo(spec.workload, spec.threads),
            prefetch_options(base_, /*on=*/true));
  add_trial(GroupSpec::solo(spec.workload, spec.threads),
            prefetch_options(base_, /*on=*/false));
  return *this;
}

ExperimentPlan& ExperimentPlan::add_matrix(const MatrixSpec& spec) {
  const std::vector<std::string> axis = matrix_axis(spec);
  if (axis.empty()) throw std::logic_error{"add_matrix: no workloads"};
  if (!spec.solo_cycles.empty() && spec.solo_cycles.size() != axis.size())
    throw std::invalid_argument{
        "add_matrix: solo_cycles size does not match the workload count"};
  if (spec.solo_cycles.empty())
    for (const auto& w : axis) add_solo(SoloSpec{w, base_.threads, spec.reps});
  for (const auto& fg : axis)
    for (const auto& bg : axis)
      add_group(pair_group(fg, bg, base_), spec.reps);
  return *this;
}

std::size_t ExperimentPlan::residue_count() const {
  const RunCache& cache = RunCache::instance();
  std::size_t residue = 0;
  for (const Trial& t : trials_)
    if (!cache.contains(t.key)) ++residue;
  return residue;
}

ResultSet ExperimentPlan::execute(unsigned host_threads, Progress progress,
                                  ParallelSchedule schedule) const {
  std::vector<GroupResult> results(trials_.size());
  std::mutex progress_mu;
  std::size_t done = 0;
  // Observability: a trial span per pool-worker lane, an in-flight
  // counter track, and registry counters/histograms. All of it is
  // behind branch-only enabled checks; nothing here touches simulation
  // state (the RunCache hit/miss split is counted inside run_group's
  // cache probe).
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& trials_done = reg.counter("plan.trials_done");
  obs::Histogram& trial_us = reg.histogram("plan.trial_us");
  obs::Gauge& inflight_gauge = reg.gauge("plan.inflight");
  obs::Trace& tr = obs::Trace::instance();
  std::atomic<int> inflight{0};
  // Core-saturation accounting: total busy lane-time vs. plan wall
  // time. utilization == busy / (wall * workers); 1.0 means every pool
  // worker simulated for the whole build, lower means lanes idled on
  // stragglers (StaticChunk tail) or queue gaps.
  std::atomic<std::uint64_t> busy_us{0};
  const double plan_t0 = obs::wall_us();
  {
    obs::Trace::Span plan_span{
        "plan.execute",
        obs::Args{}
            .set("trials", trials_.size())
            .set("residue", tr.enabled() ? residue_count() : std::size_t{0})
            .str()};
    parallel_for(
        trials_.size(), host_threads,
        [&](std::size_t i) {
          const bool traced = tr.enabled();
          const bool timed = traced || obs::metrics_enabled();
          if (timed) {
            const int now_in = inflight.fetch_add(1) + 1;
            inflight_gauge.set(now_in);
            if (traced) tr.counter("plan.inflight", now_in);
          }
          const double t0 = timed ? obs::wall_us() : 0.0;
          try {
            results[i] = run_group(trials_[i].group, trials_[i].opt);
          } catch (...) {
            // Keep the in-flight accounting honest when a trial throws;
            // the pool delivers the first error to the caller.
            if (timed) {
              const int now_in = inflight.fetch_sub(1) - 1;
              inflight_gauge.set(now_in);
              if (traced) tr.counter("plan.inflight", now_in);
            }
            throw;
          }
          if (timed) {
            const double dur = obs::wall_us() - t0;
            trial_us.record(static_cast<std::uint64_t>(dur));
            busy_us.fetch_add(static_cast<std::uint64_t>(dur),
                              std::memory_order_relaxed);
            trials_done.add();
            if (traced) {
              tr.complete_host(
                  trial_label(trials_[i].group), t0, dur,
                  obs::Args{}.set("seed", trials_[i].opt.seed).str());
              tr.counter("plan.inflight", inflight.load() - 1);
            }
            inflight.fetch_sub(1);
            inflight_gauge.set(inflight.load());
          }
          if (progress) {
            std::lock_guard lock{progress_mu};
            progress(++done, trials_.size(), trials_[i]);
          }
        },
        schedule);
  }
  // The pool spawns lazily inside parallel_for: sample it afterwards.
  reg.gauge("pool.workers").set(pool_size());
  // Lane count mirrors parallel_for's participant computation (the
  // caller is a lane too, so this is NOT pool_size(), which is 0 on
  // the serial path and may exceed this job's cap after larger runs).
  unsigned lanes =
      host_threads != 0 ? host_threads : std::thread::hardware_concurrency();
  if (lanes == 0) lanes = 4;
  lanes = static_cast<unsigned>(
      std::min<std::size_t>(lanes, std::max<std::size_t>(trials_.size(), 1)));
  reg.gauge("plan.lanes").set(lanes);
  const double plan_wall = obs::wall_us() - plan_t0;
  if (plan_wall > 0.0)
    reg.gauge("plan.utilization")
        .set(static_cast<double>(busy_us.load(std::memory_order_relaxed)) /
             (plan_wall * static_cast<double>(lanes)));
  ResultSet rs;
  rs.base_ = base_;
  rs.results_.reserve(trials_.size());
  for (std::size_t i = 0; i < trials_.size(); ++i)
    rs.results_.emplace(trials_[i].key, std::move(results[i]));
  return rs;
}

// --- ResultSet -------------------------------------------------------

const GroupResult& ResultSet::at(const std::string& key) const {
  const auto it = results_.find(key);
  if (it == results_.end())
    throw std::out_of_range{
        "ResultSet: no result for this spec -- was it added to the plan? "
        "(key: " +
        key + ")"};
  return it->second;
}

const GroupResult& ResultSet::median_ref(const GroupSpec& spec,
                                         unsigned reps) const {
  if (reps == 0) throw std::invalid_argument{"group: reps must be >= 1"};
  // Rank the stored results without copying them (a GroupResult drags
  // per-member region profiles along); only the chosen median leaves
  // the set, and matrix() reads it in place.
  std::vector<const GroupResult*> runs;
  runs.reserve(reps);
  for (unsigned r = 0; r < reps; ++r)
    runs.push_back(&at(RunCache::group_key(spec, with_seed(base_, base_.seed + r))));
  std::sort(runs.begin(), runs.end(),
            [](const GroupResult* a, const GroupResult* b) {
              return a->members[0].cycles < b->members[0].cycles;
            });
  return *runs[runs.size() / 2];
}

GroupResult ResultSet::group(const GroupSpec& spec, unsigned reps) const {
  return median_ref(spec, reps);
}

RunResult ResultSet::solo(const SoloSpec& spec) const {
  return median_ref(GroupSpec::solo(spec.workload, spec.threads), spec.reps)
      .members[0];
}

ScalabilityResult ResultSet::scalability(const SweepSpec& spec,
                                         const ScalThresholds& t) const {
  ScalabilityResult res;
  res.workload = spec.workload;
  res.rate_mode = wl::Registry::instance().at(spec.workload).rate_mode;
  double t1 = 0.0;
  for (unsigned n = 1; n <= spec.max_threads; ++n) {
    const RunResult& r =
        at(RunCache::group_key(GroupSpec::solo(spec.workload, n), base_))
            .members[0];
    res.threads.push_back(n);
    res.cycles.push_back(r.cycles);
    res.bw_gbs.push_back(r.avg_bw_gbs);
    const double ct = static_cast<double>(r.cycles);
    if (n == 1) t1 = ct;
    // Fixed-work speedup for shared-work applications; throughput
    // speedup for SPEC-rate copies (T copies of fixed per-copy work).
    res.speedup.push_back(res.rate_mode ? n * t1 / ct : t1 / ct);
  }
  res.cls = classify_scalability(res.max_speedup(), t);
  return res;
}

PrefetchSensitivity ResultSet::prefetch(const PrefetchSpec& spec) const {
  const GroupSpec g = GroupSpec::solo(spec.workload, spec.threads);
  const RunResult& r_on =
      at(RunCache::group_key(g, prefetch_options(base_, true))).members[0];
  const RunResult& r_off =
      at(RunCache::group_key(g, prefetch_options(base_, false))).members[0];
  PrefetchSensitivity s;
  s.workload = spec.workload;
  s.cycles_on = r_on.cycles;
  s.cycles_off = r_off.cycles;
  s.speedup_ratio = r_off.cycles == 0
                        ? 1.0
                        : static_cast<double>(r_on.cycles) /
                              static_cast<double>(r_off.cycles);
  s.bw_on_gbs = r_on.avg_bw_gbs;
  s.bw_off_gbs = r_off.avg_bw_gbs;
  return s;
}

CorunMatrix ResultSet::matrix(const MatrixSpec& spec) const {
  CorunMatrix m;
  m.workloads = matrix_axis(spec);
  const std::size_t n = m.workloads.size();
  if (n == 0) throw std::logic_error{"matrix: no workloads"};
  if (!spec.solo_cycles.empty() && spec.solo_cycles.size() != n)
    throw std::invalid_argument{
        "matrix: solo_cycles size does not match the workload count"};
  if (spec.solo_cycles.empty()) {
    m.solo_cycles.reserve(n);
    for (const auto& w : m.workloads)
      m.solo_cycles.push_back(
          solo(SoloSpec{w, base_.threads, spec.reps}).cycles);
  } else {
    m.solo_cycles = spec.solo_cycles;
  }
  m.normalized.assign(n, std::vector<double>(n, 0.0));
  for (std::size_t fg = 0; fg < n; ++fg)
    for (std::size_t bg = 0; bg < n; ++bg) {
      const GroupResult& cell = median_ref(
          pair_group(m.workloads[fg], m.workloads[bg], base_), spec.reps);
      m.normalized[fg][bg] = static_cast<double>(cell.members[0].cycles) /
                             static_cast<double>(m.solo_cycles[fg]);
    }
  return m;
}

}  // namespace coperf::harness
