#include "harness/scalability.hpp"

#include <algorithm>

#include "wl/registry.hpp"

namespace coperf::harness {

const char* to_string(ScalClass c) {
  switch (c) {
    case ScalClass::Low: return "Low";
    case ScalClass::Medium: return "Medium";
    case ScalClass::High: return "High";
  }
  return "?";
}

double ScalabilityResult::max_speedup() const {
  return speedup.empty() ? 0.0 : *std::max_element(speedup.begin(), speedup.end());
}

ScalClass classify_scalability(double s_max, const ScalThresholds& t) {
  if (s_max < t.low_below) return ScalClass::Low;
  if (s_max < t.high_at_least) return ScalClass::Medium;
  return ScalClass::High;
}

ScalabilityResult scalability_sweep(std::string_view workload,
                                    const RunOptions& opt,
                                    unsigned max_threads,
                                    const ScalThresholds& thresholds) {
  ScalabilityResult res;
  res.workload = std::string{workload};
  res.rate_mode = wl::Registry::instance().at(workload).rate_mode;

  double t1 = 0.0;
  for (unsigned t = 1; t <= max_threads; ++t) {
    RunOptions o = opt;
    o.threads = t;
    const RunResult r = run_solo(workload, o);
    res.threads.push_back(t);
    res.cycles.push_back(r.cycles);
    res.bw_gbs.push_back(r.avg_bw_gbs);
    const double ct = static_cast<double>(r.cycles);
    if (t == 1) t1 = ct;
    // Fixed-work speedup for shared-work applications; throughput
    // speedup for SPEC-rate copies (T copies of fixed per-copy work).
    const double s = res.rate_mode ? t * t1 / ct : t1 / ct;
    res.speedup.push_back(s);
  }
  res.cls = classify_scalability(res.max_speedup(), thresholds);
  return res;
}

}  // namespace coperf::harness
