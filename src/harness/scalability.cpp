#include "harness/scalability.hpp"

#include <algorithm>

#include "harness/plan.hpp"

namespace coperf::harness {

const char* to_string(ScalClass c) {
  switch (c) {
    case ScalClass::Low: return "Low";
    case ScalClass::Medium: return "Medium";
    case ScalClass::High: return "High";
  }
  return "?";
}

double ScalabilityResult::max_speedup() const {
  return speedup.empty() ? 0.0 : *std::max_element(speedup.begin(), speedup.end());
}

ScalClass classify_scalability(double s_max, const ScalThresholds& t) {
  if (s_max < t.low_below) return ScalClass::Low;
  if (s_max < t.high_at_least) return ScalClass::Medium;
  return ScalClass::High;
}

ScalabilityResult scalability_sweep(std::string_view workload,
                                    const RunOptions& opt,
                                    unsigned max_threads,
                                    const ScalThresholds& thresholds) {
  const SweepSpec spec{std::string{workload}, max_threads};
  ExperimentPlan plan{opt};
  plan.add_scalability(spec);
  return plan.execute().scalability(spec, thresholds);
}

}  // namespace coperf::harness
