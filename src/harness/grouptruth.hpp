// Group truth -- measured N-way interference as the billing primitive.
//
// The paper's co-location experiments show interference is not
// pairwise-additive: a third resident can push an LLC-thrashing pair
// past a regime change that no sum of pair entries predicts. Until
// this module, every consumer of "how slow is this resident group"
// (the cluster simulator, placement billing, regret benches) composed
// CorunMatrix pair entries additively via harness::corun_slowdown.
//
// InterferenceTruth is the oracle interface those consumers now ask
// instead: per-resident slowdown of an arbitrary co-resident multiset.
// Two implementations:
//
//  * MatrixTruth -- the legacy model: pairwise excess slowdowns from a
//    fixed CorunMatrix compose additively. Kept for synthetic tests,
//    predicted matrices, and as the documented fallback; its billing
//    is bit-identical to the pre-grouptruth code.
//  * GroupTruth -- measured truth: maps a sorted resident multiset to
//    per-member slowdowns actually simulated as N-way GroupSpec trials
//    (harness/group.hpp), built lazily through ExperimentPlan so
//    trials deduplicate structurally and against the content-addressed
//    RunCache (each unique group simulates exactly once, and a warm
//    COPERF_RUN_CACHE_DIR serves repeats without simulating). The
//    pairwise CorunMatrix is its 2-resident projection. Groups larger
//    than Config::max_arity fall back to additive composition of that
//    projection -- counted, so benches can report how often the
//    additive approximation was still in play.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/matrix.hpp"
#include "harness/plan.hpp"
#include "harness/runner.hpp"

namespace coperf::harness {

/// One measured (or composed) group data point: the slowdown of a
/// `type` resident while the `others` multiset shared its machine.
struct GroupObservation {
  std::size_t type = 0;
  std::vector<std::size_t> others;  ///< sorted co-resident type multiset
  double slowdown = 1.0;
  /// p99 request-latency ratio for serving foregrounds; equals
  /// `slowdown` for batch foregrounds (no request distribution).
  double tail_slowdown = 1.0;
};

/// Co-residents of member `i`: `group` minus its i-th element. The
/// member-to-others rebuild every group consumer needs (billing,
/// observation fan-out, trial expansion).
std::vector<std::size_t> others_excluding(const std::vector<std::size_t>& group,
                                          std::size_t i);

/// Oracle for true co-residency slowdowns. `slowdown` answers for an
/// arbitrary resident multiset; `pairwise` is the 2-resident
/// projection every matrix-era consumer (policies, predictors) still
/// reads. `fallbacks` counts the queries this truth could only answer
/// by additive pairwise composition rather than a measurement.
class InterferenceTruth {
 public:
  virtual ~InterferenceTruth() = default;

  /// Number of workload types on the axis.
  virtual std::size_t size() const = 0;

  /// True normalized runtime (>= 1) of a `type` resident co-located
  /// with the `others` multiset (order irrelevant; empty = solo).
  virtual double slowdown(std::size_t type,
                          const std::vector<std::size_t>& others) = 0;

  /// Tail-latency slowdown: the ratio of the `type` resident's p99
  /// request latency under the `others` multiset to its solo p99.
  /// Only serving workloads have a request distribution; for batch
  /// residents (and for truths with no latency data, like MatrixTruth)
  /// this degenerates to the throughput slowdown -- the best available
  /// proxy, and the value SLO billing should see when no tail was
  /// measured.
  virtual double tail_slowdown(std::size_t type,
                               const std::vector<std::size_t>& others) {
    return slowdown(type, others);
  }

  /// The 2-resident projection: pairwise(fg, bg) == slowdown(fg, {bg}).
  virtual const CorunMatrix& pairwise() = 0;

  /// One raw 2-resident entry -- the unclamped measurement the
  /// simulator feeds observers. Default: slowdown(fg, {bg}), which is
  /// already raw for measured truths and only measures that pair;
  /// MatrixTruth overrides to bypass its composition clamp without
  /// touching pairwise() (which a lazy GroupTruth would have to build
  /// in full).
  virtual double pair_entry(std::size_t fg, std::size_t bg) {
    return slowdown(fg, {bg});
  }

  /// Machine time that admitting `job_type` with `job_work` units of
  /// work adds to a machine holding `residents` (with `remaining` solo
  /// work each): the job's own excess persists for its whole work, and
  /// the excess it inflicts on each resident -- the *group* slowdown
  /// delta, not a pair entry -- persists for that resident's remaining
  /// work. This is the billing primitive the cluster simulator prices
  /// every placement decision with.
  virtual double admission_delta(std::size_t job_type, double job_work,
                                 const std::vector<std::size_t>& residents,
                                 const std::vector<double>& remaining);

  /// Queries answered by additive pairwise composition because no
  /// measurement covered the group.
  std::uint64_t fallbacks() const { return fallbacks_; }

 protected:
  /// Adds to fallbacks() and to the process-wide metrics counter
  /// "truth.pairwise_fallbacks" (obs registry), so every truth
  /// implementation is counted on the same observable surface.
  void count_fallbacks(std::uint64_t n = 1);

  std::uint64_t fallbacks_ = 0;
};

/// The legacy model as an oracle: pairwise excesses from a fixed
/// matrix compose additively (harness::corun_slowdown). Every group of
/// 3+ residents is by definition a composition, so such queries count
/// as fallbacks. admission_delta reproduces the pre-grouptruth billing
/// bit-for-bit.
class MatrixTruth final : public InterferenceTruth {
 public:
  explicit MatrixTruth(CorunMatrix m);

  std::size_t size() const override { return matrix_.size(); }
  double slowdown(std::size_t type,
                  const std::vector<std::size_t>& others) override;
  const CorunMatrix& pairwise() override { return matrix_; }
  /// Raw entry, unclamped -- slowdown() composes (and clamps) even a
  /// single co-resident to keep legacy event-loop timing.
  double pair_entry(std::size_t fg, std::size_t bg) override {
    return matrix_.at(fg, bg);
  }
  double admission_delta(std::size_t job_type, double job_work,
                         const std::vector<std::size_t>& residents,
                         const std::vector<double>& remaining) override;

 private:
  CorunMatrix matrix_;
};

/// Measured group truth over a fixed workload axis.
///
/// A resident multiset {a, b, c} is measured the way the pair harness
/// measures a cell: one trial per distinct member type, with that
/// member running to completion ("foreground") on the first cores and
/// every other resident looping ("background") on the next ones --
/// run_pair generalized to N members. slowdown(a, {b, c}) is the
/// foreground's cycles over its solo cycles at the same thread count.
/// Trials execute through ExperimentPlan (median-of-reps, RunCache
/// dedup), so repeated queries, overlapping prefetches, and repeated
/// process runs under COPERF_RUN_CACHE_DIR never re-simulate a group.
class GroupTruth final : public InterferenceTruth {
 public:
  struct Config {
    /// Axis: type index i == workloads[i] (paper order preserved).
    std::vector<std::string> workloads;
    /// Machine, size class, seed, sampling window, cycle limit. The
    /// thread-count fields are ignored; members use member_threads.
    RunOptions opt;
    /// Cores per resident. max_arity * member_threads must fit the
    /// machine (8-core default: 3-resident groups at 2 threads each).
    unsigned member_threads = 2;
    unsigned reps = 1;
    /// Largest resident count measured as a true group; bigger groups
    /// fall back to additive composition of the pairwise projection.
    unsigned max_arity = 3;
    /// Host worker lanes for the fan-out builds (prefetch_all and the
    /// lazy per-query residues). 0 = hardware concurrency. The results
    /// are bit-identical at any lane count -- each trial simulates an
    /// isolated Machine -- so this only trades wall time for cores.
    unsigned host_threads = 0;
  };

  explicit GroupTruth(Config cfg);

  std::size_t size() const override { return cfg_.workloads.size(); }
  double slowdown(std::size_t type,
                  const std::vector<std::size_t>& others) override;
  /// Measured p99 ratio when both the group foreground and its solo
  /// baseline recorded requests; otherwise the throughput slowdown.
  /// Groups beyond max_arity fall back through slowdown() (counted).
  double tail_slowdown(std::size_t type,
                       const std::vector<std::size_t>& others) override;
  const CorunMatrix& pairwise() override;

  /// What one batched measurement put in front of the executor.
  struct PlanStats {
    std::size_t trials = 0;   ///< unique trials after structural dedup
    std::size_t residue = 0;  ///< trials the RunCache could not serve
  };

  /// Batch-measures every resident multiset of 2..max_group members
  /// over the axis in ONE plan execution (solos included), so the
  /// whole truth a bounded-slot cluster can query is simulated with
  /// full parallelism and exact RunCache dedup up front.
  PlanStats prefetch_all(unsigned max_group,
                         ExperimentPlan::Progress progress = {});
  /// Batch-measures the given resident multisets (each a vector of
  /// type indices, any order).
  PlanStats prefetch(const std::vector<std::vector<std::size_t>>& groups,
                     ExperimentPlan::Progress progress = {});

  /// Solo baseline of one axis type at member_threads (measured on
  /// first use).
  const RunResult& solo(std::size_t type);

  /// Every measured (type, others, slowdown) triple, sorted by key --
  /// the training/eval feed for group-aware predictors.
  std::vector<GroupObservation> observations() const;

  /// Distinct group measurements held (pairs included).
  std::size_t measured_trials() const { return measured_.size(); }

  /// Measurements whose foreground hit the cycle limit: the stored
  /// slowdown is a *lower bound* (the run was cut, not finished), so a
  /// nonzero count means the worst interference cases are understated
  /// -- raise RunOptions::cycle_limit or shrink the size class.
  /// Consumers should surface this (bench_cluster_regret warns).
  std::uint64_t truncated_trials() const { return truncated_; }

  const Config& config() const { return cfg_; }

 private:
  using Key = std::vector<std::size_t>;  ///< [fg type, sorted others...]

  static Key make_key(std::size_t type, std::vector<std::size_t> others);
  GroupSpec trial_spec(const Key& key) const;
  /// Measures the missing keys (plus any missing solo baselines) in
  /// one plan execution and memoizes the member slowdowns.
  PlanStats measure(const std::vector<Key>& keys,
                    ExperimentPlan::Progress progress);
  PlanStats expand_and_measure(
      const std::vector<std::vector<std::size_t>>& groups,
      ExperimentPlan::Progress progress);

  Config cfg_;
  std::map<Key, double> measured_;
  /// Tail (p99) slowdowns, parallel to measured_ -- every measured key
  /// has an entry (throughput value when no latency data exists).
  std::map<Key, double> measured_tail_;
  std::map<std::size_t, RunResult> solos_;
  CorunMatrix matrix_;
  std::uint64_t truncated_ = 0;
  bool pairwise_built_ = false;
};

}  // namespace coperf::harness
