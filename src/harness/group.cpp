#include "harness/group.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "harness/runcache.hpp"
#include "perf/profiler.hpp"
#include "wl/registry.hpp"

namespace coperf::harness {

namespace {

/// The bg-seed offset the pair harness has always used, applied per
/// member index so member 1 of a pair keeps its historical stream.
constexpr std::uint64_t kMemberSeedStride = 0x9E37u;

std::vector<unsigned> iota_cores(unsigned first, unsigned count) {
  std::vector<unsigned> cores(count);
  for (unsigned i = 0; i < count; ++i) cores[i] = first + i;
  return cores;
}

RunResult collect_member(sim::Machine& m, std::size_t app_index,
                         const wl::AppModel& model, sim::Cycle cycles,
                         const perf::BandwidthReport& bw, bool hit_limit) {
  RunResult r;
  r.workload = model.name();
  r.threads = model.threads();
  r.cycles = cycles;
  r.seconds = m.config().seconds(cycles);
  r.stats = m.app_stats(app_index);
  r.metrics = perf::Metrics::from(r.stats);
  r.avg_bw_gbs =
      app_index < bw.app_avg_gbs.size() ? bw.app_avg_gbs[app_index] : 0.0;
  r.regions = perf::profile_app(m, app_index, /*min_cycles=*/1000);
  r.footprint_bytes = model.footprint_bytes();
  r.hit_cycle_limit = hit_limit;
  r.latency = m.app_latency(app_index);
  return r;
}

void validate(const GroupSpec& spec, const RunOptions& opt) {
  if (spec.members.empty())
    throw std::invalid_argument{"run_group: the group has no members"};
  bool any_foreground = false;
  for (const MemberSpec& mem : spec.members) {
    if (mem.workload.empty())
      throw std::invalid_argument{"run_group: member without a workload name"};
    if (mem.threads == 0)
      throw std::invalid_argument{"run_group: member '" + mem.workload +
                                  "' needs at least one thread"};
    any_foreground |= !mem.restart_until_done;
  }
  if (!any_foreground)
    throw std::invalid_argument{
        "run_group: every member loops forever -- at least one member must "
        "run to completion"};
  if (spec.total_threads() > opt.machine.num_cores)
    throw std::invalid_argument{
        "run_group: members need " + std::to_string(spec.total_threads()) +
        " cores but the machine has " +
        std::to_string(opt.machine.num_cores)};
}

GroupResult simulate_group(const GroupSpec& spec, const RunOptions& opt) {
  const auto& reg = wl::Registry::instance();
  sim::Machine m{opt.machine};
  m.set_sample_window(opt.sample_window);
  m.set_cycle_limit(opt.cycle_limit);

  std::vector<std::unique_ptr<wl::AppModel>> models;
  models.reserve(spec.members.size());
  unsigned first_core = 0;
  for (std::size_t i = 0; i < spec.members.size(); ++i) {
    const MemberSpec& mem = spec.members[i];
    auto model = reg.create(
        mem.workload,
        wl::AppParams{static_cast<sim::AppId>(i), mem.threads,
                      mem.size.value_or(opt.size),
                      opt.seed + i * kMemberSeedStride});
    sim::AppBinding binding;
    binding.id = static_cast<sim::AppId>(i);
    binding.cores = iota_cores(first_core, mem.threads);
    binding.sources = model->sources();
    if (mem.restart_until_done) {
      binding.background = true;
      binding.restart = [raw = model.get()] { raw->restart(); };
    }
    m.add_app(std::move(binding));
    first_core += mem.threads;
    models.push_back(std::move(model));
  }

  const sim::RunOutcome out = m.run();
  const auto bw = perf::summarize_bandwidth(m);

  GroupResult g;
  g.members.reserve(spec.members.size());
  for (std::size_t i = 0; i < spec.members.size(); ++i)
    g.members.push_back(collect_member(m, i, *models[i], out.app_finish[i], bw,
                                       out.hit_cycle_limit));
  g.runs_completed = out.bg_runs;
  g.total_avg_bw_gbs = bw.avg_total_gbs;
  g.finish_cycle = out.finish_cycle;
  g.hit_cycle_limit = out.hit_cycle_limit;
  return g;
}

}  // namespace

GroupSpec GroupSpec::solo(std::string workload, unsigned threads) {
  GroupSpec s;
  s.members.push_back(MemberSpec{std::move(workload), threads, {}, false});
  return s;
}

GroupSpec GroupSpec::pair(std::string fg, std::string bg, unsigned fg_threads,
                          unsigned bg_threads) {
  GroupSpec s;
  s.members.push_back(MemberSpec{std::move(fg), fg_threads, {}, false});
  s.members.push_back(MemberSpec{std::move(bg), bg_threads, {}, true});
  return s;
}

unsigned GroupSpec::total_threads() const {
  unsigned total = 0;
  for (const MemberSpec& m : members) total += m.threads;
  return total;
}

GroupResult run_group(const GroupSpec& spec, const RunOptions& opt) {
  validate(spec, opt);
  // Simulations are deterministic in the key's fields, so a cache hit
  // is bit-identical to re-running the simulation.
  RunCache& cache = RunCache::instance();
  std::string key;
  if (cache.enabled()) {
    key = RunCache::group_key(spec, opt);
    GroupResult cached;
    if (cache.lookup(key, &cached)) return cached;
  }
  GroupResult g = simulate_group(spec, opt);
  if (cache.enabled()) cache.store(key, g);
  return g;
}

GroupResult run_group_median(const GroupSpec& spec, const RunOptions& opt,
                             unsigned reps) {
  if (reps == 0) throw std::invalid_argument{"reps must be >= 1"};
  std::vector<GroupResult> runs;
  runs.reserve(reps);
  for (unsigned r = 0; r < reps; ++r) {
    RunOptions o = opt;
    o.seed = opt.seed + r;
    runs.push_back(run_group(spec, o));
  }
  std::sort(runs.begin(), runs.end(),
            [](const GroupResult& a, const GroupResult& b) {
              return a.members[0].cycles < b.members[0].cycles;
            });
  return runs[runs.size() / 2];
}

CorunResult to_corun(const GroupResult& g) {
  if (g.members.size() != 2)
    throw std::invalid_argument{
        "to_corun: only 2-member groups have a pair view"};
  CorunResult c;
  c.fg = g.members[0];
  c.bg_workload = g.members[1].workload;
  c.bg_runs_completed = g.runs_completed[1];
  c.bg_stats = g.members[1].stats;
  c.bg_avg_bw_gbs = g.members[1].avg_bw_gbs;
  c.total_avg_bw_gbs = g.total_avg_bw_gbs;
  return c;
}

}  // namespace coperf::harness
