#include "harness/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace coperf::harness {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    os << '\n';
  };
  line(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c)
    rule += std::string(width[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& row : rows_) line(row);
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void print_heatmap(std::ostream& os, const CorunMatrix& m) {
  constexpr std::size_t kName = 14;
  os << std::setw(kName) << "fg \\ bg";
  for (const auto& w : m.workloads)
    os << ' ' << std::setw(5) << w.substr(0, 5);
  os << '\n';
  for (std::size_t fg = 0; fg < m.size(); ++fg) {
    os << std::setw(kName) << m.workloads[fg];
    for (std::size_t bg = 0; bg < m.size(); ++bg)
      os << ' ' << std::setw(5) << Table::fmt(m.at(fg, bg), 2);
    os << '\n';
  }
}

std::string matrix_to_csv(const CorunMatrix& m) {
  std::ostringstream os;
  os << "foreground,background,normalized_runtime\n";
  for (std::size_t fg = 0; fg < m.size(); ++fg)
    for (std::size_t bg = 0; bg < m.size(); ++bg)
      os << m.workloads[fg] << ',' << m.workloads[bg] << ','
         << Table::fmt(m.at(fg, bg), 4) << '\n';
  return os.str();
}

void print_scalability(std::ostream& os,
                       const std::vector<ScalabilityResult>& results) {
  if (results.empty()) return;
  std::vector<std::string> header{"workload"};
  for (unsigned t : results.front().threads)
    header.push_back("S(" + std::to_string(t) + ")");
  header.push_back("class");
  Table table{std::move(header)};
  for (const auto& r : results) {
    std::vector<std::string> row{r.workload};
    for (double s : r.speedup) row.push_back(Table::fmt(s, 2));
    row.push_back(to_string(r.cls));
    table.add_row(std::move(row));
  }
  table.print(os);
}

}  // namespace coperf::harness
