#include "harness/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace coperf::harness {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << cells[c];
    os << '\n';
  };
  line(header_);
  std::string rule;
  for (std::size_t c = 0; c < header_.size(); ++c)
    rule += std::string(width[c], '-') + "  ";
  os << rule << '\n';
  for (const auto& row : rows_) line(row);
}

namespace {

/// RFC 4180 field quoting: values holding a comma, quote, or newline
/// are wrapped in double quotes with embedded quotes doubled, so a
/// workload or region name like "G-PR, warm" cannot shift columns.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out{'"'};
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << csv_field(cells[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void print_heatmap(std::ostream& os, const CorunMatrix& m) {
  constexpr std::size_t kName = 14;
  os << std::setw(kName) << "fg \\ bg";
  for (const auto& w : m.workloads)
    os << ' ' << std::setw(5) << w.substr(0, 5);
  os << '\n';
  for (std::size_t fg = 0; fg < m.size(); ++fg) {
    os << std::setw(kName) << m.workloads[fg];
    for (std::size_t bg = 0; bg < m.size(); ++bg)
      os << ' ' << std::setw(5) << Table::fmt(m.at(fg, bg), 2);
    os << '\n';
  }
}

std::string matrix_to_csv(const CorunMatrix& m) { return report::to_csv(m); }

void print_scalability(std::ostream& os,
                       const std::vector<ScalabilityResult>& results) {
  if (results.empty()) return;
  std::vector<std::string> header{"workload"};
  for (unsigned t : results.front().threads)
    header.push_back("S(" + std::to_string(t) + ")");
  header.push_back("class");
  Table table{std::move(header)};
  for (const auto& r : results) {
    std::vector<std::string> row{r.workload};
    for (double s : r.speedup) row.push_back(Table::fmt(s, 2));
    row.push_back(to_string(r.cls));
    table.add_row(std::move(row));
  }
  table.print(os);
}

namespace report {

namespace {

/// Shortest round-trippable double representation.
std::string jnum(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

std::string jstr(const std::string& s) {
  std::string out{'"'};
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

void json_metrics(std::ostringstream& os, const perf::Metrics& m) {
  os << "{\"cpi\": " << jnum(m.cpi) << ", \"ipc\": " << jnum(m.ipc)
     << ", \"l2_pcp\": " << jnum(m.l2_pcp)
     << ", \"llc_mpki\": " << jnum(m.llc_mpki)
     << ", \"l2_mpki\": " << jnum(m.l2_mpki) << ", \"ll\": " << jnum(m.ll)
     << "}";
}

/// Latency object: counts plus interpolated percentiles in cycles, and
/// the sparse non-zero buckets so the distribution round-trips. Batch
/// workloads emit {"count": 0, ...} -- present but empty, so column
/// shape never depends on the workload.
void json_latency(std::ostringstream& os, const sim::LatencyStats& l) {
  os << "{\"count\": " << l.count << ", \"sum\": " << l.sum
     << ", \"p50\": " << jnum(l.quantile(0.50))
     << ", \"p95\": " << jnum(l.quantile(0.95))
     << ", \"p99\": " << jnum(l.quantile(0.99)) << ", \"buckets\": [";
  bool first = true;
  for (unsigned b = 0; b < l.buckets.size(); ++b) {
    if (l.buckets[b] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << "[" << b << ", " << l.buckets[b] << "]";
  }
  os << "]}";
}

void json_run(std::ostringstream& os, const RunResult& r) {
  os << "{\"workload\": " << jstr(r.workload) << ", \"threads\": " << r.threads
     << ", \"cycles\": " << r.cycles << ", \"seconds\": " << jnum(r.seconds)
     << ", \"instructions\": " << r.stats.instructions
     << ", \"avg_bw_gbs\": " << jnum(r.avg_bw_gbs)
     << ", \"footprint_bytes\": " << r.footprint_bytes
     << ", \"hit_cycle_limit\": " << (r.hit_cycle_limit ? "true" : "false")
     << ", \"latency\": ";
  json_latency(os, r.latency);
  os << ", \"metrics\": ";
  json_metrics(os, r.metrics);
  os << ", \"regions\": [";
  bool first = true;
  for (const auto& reg : r.regions) {
    if (!first) os << ", ";
    first = false;
    os << "{\"region\": " << jstr(reg.region)
       << ", \"cycles\": " << reg.stats.cycles << ", \"metrics\": ";
    json_metrics(os, reg.metrics);
    os << "}";
  }
  os << "]}";
}

constexpr const char* kRunCsvHeader =
    "workload,threads,cycles,seconds,instructions,avg_bw_gbs,"
    "footprint_bytes,hit_cycle_limit,cpi,ipc,llc_mpki,l2_pcp,ll,"
    "req_count,lat_p50,lat_p95,lat_p99";

void csv_run_row(std::ostringstream& os, const RunResult& r) {
  os << csv_field(r.workload) << ',' << r.threads << ',';
  // A cycle-limit-flagged run never finished: its runtime is
  // undefined, not the cycle count the limit happened to cut it at.
  // Progress counters (instructions, bandwidth) remain real.
  if (r.hit_cycle_limit)
    os << "nan,nan,";
  else
    os << r.cycles << ',' << jnum(r.seconds) << ',';
  os << r.stats.instructions << ','
     << jnum(r.avg_bw_gbs) << ',' << r.footprint_bytes << ','
     << (r.hit_cycle_limit ? 1 : 0) << ',' << jnum(r.metrics.cpi) << ','
     << jnum(r.metrics.ipc) << ',' << jnum(r.metrics.llc_mpki) << ','
     << jnum(r.metrics.l2_pcp) << ',' << jnum(r.metrics.ll) << ','
     << r.latency.count << ',';
  // Batch workloads have no requests: the percentile columns stay
  // empty (not nan -- that marks cycle-limit-flagged members).
  if (r.latency.empty())
    os << ",,";
  else
    os << jnum(r.latency.quantile(0.50)) << ','
       << jnum(r.latency.quantile(0.95)) << ','
       << jnum(r.latency.quantile(0.99));
  os << '\n';
}

}  // namespace

std::string to_json(const RunResult& r) {
  std::ostringstream os;
  json_run(os, r);
  return os.str();
}

std::string to_json(const GroupResult& g) {
  std::ostringstream os;
  os << "{\"members\": [";
  for (std::size_t i = 0; i < g.members.size(); ++i) {
    if (i) os << ", ";
    json_run(os, g.members[i]);
  }
  os << "], \"runs_completed\": [";
  for (std::size_t i = 0; i < g.runs_completed.size(); ++i) {
    if (i) os << ", ";
    os << g.runs_completed[i];
  }
  os << "], \"total_avg_bw_gbs\": " << jnum(g.total_avg_bw_gbs)
     << ", \"finish_cycle\": " << g.finish_cycle
     << ", \"hit_cycle_limit\": " << (g.hit_cycle_limit ? "true" : "false")
     << "}";
  return os.str();
}

std::string to_json(const CorunResult& c) {
  std::ostringstream os;
  os << "{\"fg\": ";
  json_run(os, c.fg);
  os << ", \"bg_workload\": " << jstr(c.bg_workload)
     << ", \"bg_runs_completed\": " << c.bg_runs_completed
     << ", \"bg_avg_bw_gbs\": " << jnum(c.bg_avg_bw_gbs)
     << ", \"total_avg_bw_gbs\": " << jnum(c.total_avg_bw_gbs) << "}";
  return os.str();
}

std::string to_json(const CorunMatrix& m) {
  std::ostringstream os;
  os << "{\"workloads\": [";
  for (std::size_t i = 0; i < m.workloads.size(); ++i) {
    if (i) os << ", ";
    os << jstr(m.workloads[i]);
  }
  os << "], \"solo_cycles\": [";
  for (std::size_t i = 0; i < m.solo_cycles.size(); ++i) {
    if (i) os << ", ";
    os << m.solo_cycles[i];
  }
  os << "], \"normalized\": [";
  for (std::size_t fg = 0; fg < m.size(); ++fg) {
    if (fg) os << ", ";
    os << "[";
    for (std::size_t bg = 0; bg < m.size(); ++bg) {
      if (bg) os << ", ";
      os << jnum(m.normalized[fg][bg]);
    }
    os << "]";
  }
  const auto counts = m.count_classes();
  os << "], \"classes\": {\"harmony\": " << counts.harmony
     << ", \"victim_offender\": " << counts.victim_offender
     << ", \"both_victim\": " << counts.both_victim << "}}";
  return os.str();
}

std::string to_json(const ScalabilityResult& s) {
  std::ostringstream os;
  os << "{\"workload\": " << jstr(s.workload)
     << ", \"rate_mode\": " << (s.rate_mode ? "true" : "false")
     << ", \"class\": " << jstr(to_string(s.cls)) << ", \"threads\": [";
  for (std::size_t i = 0; i < s.threads.size(); ++i) {
    if (i) os << ", ";
    os << s.threads[i];
  }
  os << "], \"cycles\": [";
  for (std::size_t i = 0; i < s.cycles.size(); ++i) {
    if (i) os << ", ";
    os << s.cycles[i];
  }
  os << "], \"speedup\": [";
  for (std::size_t i = 0; i < s.speedup.size(); ++i) {
    if (i) os << ", ";
    os << jnum(s.speedup[i]);
  }
  os << "], \"bw_gbs\": [";
  for (std::size_t i = 0; i < s.bw_gbs.size(); ++i) {
    if (i) os << ", ";
    os << jnum(s.bw_gbs[i]);
  }
  os << "]}";
  return os.str();
}

std::string to_json(const std::vector<ScalabilityResult>& s) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) os << ", ";
    os << to_json(s[i]);
  }
  os << "]";
  return os.str();
}

std::string to_json(const PrefetchSensitivity& p) {
  std::ostringstream os;
  os << "{\"workload\": " << jstr(p.workload)
     << ", \"cycles_on\": " << p.cycles_on
     << ", \"cycles_off\": " << p.cycles_off
     << ", \"speedup_ratio\": " << jnum(p.speedup_ratio)
     << ", \"bw_on_gbs\": " << jnum(p.bw_on_gbs)
     << ", \"bw_off_gbs\": " << jnum(p.bw_off_gbs) << "}";
  return os.str();
}

std::string to_json(const std::vector<PrefetchSensitivity>& p) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i) os << ", ";
    os << to_json(p[i]);
  }
  os << "]";
  return os.str();
}

std::string to_csv(const RunResult& r) {
  std::ostringstream os;
  os << kRunCsvHeader << '\n';
  csv_run_row(os, r);
  return os.str();
}

std::string to_csv(const GroupResult& g) {
  std::ostringstream os;
  os << "member," << kRunCsvHeader << ",runs_completed\n";
  for (std::size_t i = 0; i < g.members.size(); ++i) {
    std::ostringstream row;
    csv_run_row(row, g.members[i]);
    std::string line = row.str();
    line.pop_back();  // the trailing newline; runs_completed goes last
    os << i << ',' << line << ',' << g.runs_completed[i] << '\n';
  }
  return os.str();
}

std::string to_csv(const CorunResult& c) {
  // The background's measurement is its progress, not a completed run:
  // instructions + iteration count + bandwidth share.
  std::ostringstream os;
  os << "role," << kRunCsvHeader << ",runs_completed\n";
  os << "fg,";
  {
    std::ostringstream row;
    csv_run_row(row, c.fg);
    std::string line = row.str();
    line.pop_back();
    os << line << ",\n";
  }
  const perf::Metrics bg = perf::Metrics::from(c.bg_stats);
  // The background never runs to completion, so its runtime fields are
  // nan (undefined), consistent with cycle-limit-flagged members.
  os << "bg," << csv_field(c.bg_workload) << ",,nan,nan,"
     << c.bg_stats.instructions << ',' << jnum(c.bg_avg_bw_gbs) << ",,,"
     << jnum(bg.cpi) << ',' << jnum(bg.ipc) << ',' << jnum(bg.llc_mpki) << ','
     << jnum(bg.l2_pcp) << ',' << jnum(bg.ll) << ",0,,,,"
     << c.bg_runs_completed << '\n';
  return os.str();
}

std::string to_csv(const CorunMatrix& m) {
  std::ostringstream os;
  os << "foreground,background,normalized_runtime\n";
  for (std::size_t fg = 0; fg < m.size(); ++fg)
    for (std::size_t bg = 0; bg < m.size(); ++bg)
      os << csv_field(m.workloads[fg]) << ',' << csv_field(m.workloads[bg])
         << ',' << Table::fmt(m.at(fg, bg), 4) << '\n';
  return os.str();
}

std::string to_csv(const ScalabilityResult& s) {
  return to_csv(std::vector<ScalabilityResult>{s});
}

std::string to_csv(const std::vector<ScalabilityResult>& s) {
  std::ostringstream os;
  os << "workload,threads,cycles,speedup,bw_gbs,class\n";
  for (const auto& r : s)
    for (std::size_t i = 0; i < r.threads.size(); ++i)
      os << csv_field(r.workload) << ',' << r.threads[i] << ',' << r.cycles[i]
         << ',' << jnum(r.speedup[i]) << ',' << jnum(r.bw_gbs[i]) << ','
         << to_string(r.cls) << '\n';
  return os.str();
}

std::string to_csv(const PrefetchSensitivity& p) {
  return to_csv(std::vector<PrefetchSensitivity>{p});
}

std::string to_csv(const std::vector<PrefetchSensitivity>& p) {
  std::ostringstream os;
  os << "workload,cycles_on,cycles_off,speedup_ratio,bw_on_gbs,bw_off_gbs\n";
  for (const auto& s : p)
    os << csv_field(s.workload) << ',' << s.cycles_on << ',' << s.cycles_off
       << ',' << jnum(s.speedup_ratio) << ',' << jnum(s.bw_on_gbs) << ','
       << jnum(s.bw_off_gbs) << '\n';
  return os.str();
}

}  // namespace report

}  // namespace coperf::harness
