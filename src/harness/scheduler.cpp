#include "harness/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace coperf::harness {

double corun_slowdown(const CorunMatrix& m, std::size_t job,
                      const std::vector<std::size_t>& others) {
  double excess = 0.0;
  for (std::size_t o : others) excess += m.at(job, o) - 1.0;
  return std::max(1.0, 1.0 + excess);
}

double group_cost(const CorunMatrix& m, const std::vector<std::size_t>& group) {
  double cost = 0.0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    double excess = 0.0;
    for (std::size_t j = 0; j < group.size(); ++j)
      if (j != i) excess += m.at(group[i], group[j]) - 1.0;
    cost += std::max(1.0, 1.0 + excess);
  }
  return cost;
}

double pair_cost(const CorunMatrix& m, std::size_t a, std::size_t b) {
  // == group_cost(m, {a, b}); matrix entries are >= 1 so the clamp in
  // the group form never fires for a pair.
  return m.at(a, b) + m.at(b, a);
}

namespace {

void finalize(const CorunMatrix& m, Schedule& s) {
  s.total_cost = 0.0;
  s.worst_slowdown = 0.0;
  s.worst_class = PairClass::Harmony;
  for (const Pairing& p : s.pairs) {
    s.total_cost += p.cost;
    s.worst_slowdown =
        std::max({s.worst_slowdown, m.at(p.a, p.b), m.at(p.b, p.a)});
    const PairClass c = m.pair_class(p.a, p.b);
    if (static_cast<int>(c) > static_cast<int>(s.worst_class))
      s.worst_class = c;
  }
}

void check_jobs(const std::vector<std::size_t>& jobs, const CorunMatrix& m) {
  if (jobs.size() % 2 != 0)
    throw std::invalid_argument{"scheduler: job count must be even"};
  std::vector<bool> seen(m.size(), false);
  for (std::size_t j : jobs) {
    if (j >= m.size())
      throw std::out_of_range{"scheduler: job index outside the matrix"};
    if (seen[j])
      throw std::invalid_argument{
          "scheduler: duplicate job index " + std::to_string(j) +
          " (each job can be placed once)"};
    seen[j] = true;
  }
}

}  // namespace

Schedule bill_pairs(const CorunMatrix& m, std::vector<Pairing> pairs) {
  Schedule s;
  s.pairs = std::move(pairs);
  for (Pairing& p : s.pairs) p.cost = pair_cost(m, p.a, p.b);
  finalize(m, s);
  return s;
}

Schedule schedule_greedy(const CorunMatrix& m,
                         const std::vector<std::size_t>& jobs) {
  check_jobs(jobs, m);
  // Difficult-job-first matching: repeatedly take the unpaired job whose
  // worst remaining pairing is most expensive and give it its cheapest
  // available partner. Min-edge-first greed is myopic here: it happily
  // pairs the two harmless jobs together and leaves the two offenders
  // to destroy each other.
  std::vector<std::size_t> remaining = jobs;
  Schedule s;
  while (!remaining.empty()) {
    std::size_t worst_idx = 0;
    double worst_exposure = -1.0;
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      double exposure = 0.0;
      for (std::size_t j = 0; j < remaining.size(); ++j)
        if (i != j)
          exposure = std::max(exposure,
                              pair_cost(m, remaining[i], remaining[j]));
      if (exposure > worst_exposure) {
        worst_exposure = exposure;
        worst_idx = i;
      }
    }
    const std::size_t a = remaining[worst_idx];
    remaining.erase(remaining.begin() +
                    static_cast<std::ptrdiff_t>(worst_idx));
    std::size_t best_idx = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < remaining.size(); ++j) {
      const double c = pair_cost(m, a, remaining[j]);
      if (c < best_cost) {
        best_cost = c;
        best_idx = j;
      }
    }
    const std::size_t b = remaining[best_idx];
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best_idx));
    s.pairs.push_back({a, b, best_cost});
  }
  finalize(m, s);
  return s;
}

namespace {

/// Exhaustive matching enumeration shared by the exact min (optimal)
/// and max (adversarial) matchers; `maximize` flips the objective.
void match_rec(const CorunMatrix& m, bool maximize,
               std::vector<std::size_t>& remaining,
               std::vector<Pairing>& current, double cost_so_far,
               double& best_cost, std::vector<Pairing>& best) {
  if (remaining.empty()) {
    if (maximize ? cost_so_far > best_cost : cost_so_far < best_cost) {
      best_cost = cost_so_far;
      best = current;
    }
    return;
  }
  // Branch and bound only when minimizing: costs only grow.
  if (!maximize && cost_so_far >= best_cost) return;
  const std::size_t a = remaining.back();
  remaining.pop_back();
  for (std::size_t i = 0; i < remaining.size(); ++i) {
    const std::size_t b = remaining[i];
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(i));
    const double c = pair_cost(m, a, b);
    current.push_back({a, b, c});
    match_rec(m, maximize, remaining, current, cost_so_far + c, best_cost,
              best);
    current.pop_back();
    remaining.insert(remaining.begin() + static_cast<std::ptrdiff_t>(i), b);
  }
  remaining.push_back(a);
}

}  // namespace

Schedule schedule_optimal(const CorunMatrix& m,
                          const std::vector<std::size_t>& jobs) {
  check_jobs(jobs, m);
  if (jobs.size() > 12)
    throw std::invalid_argument{
        "schedule_optimal: exhaustive matching limited to 12 jobs"};
  std::vector<std::size_t> remaining = jobs;
  std::vector<Pairing> current, best;
  double best_cost = std::numeric_limits<double>::infinity();
  match_rec(m, /*maximize=*/false, remaining, current, 0.0, best_cost, best);
  Schedule s;
  s.pairs = std::move(best);
  finalize(m, s);
  return s;
}

Schedule schedule_worst(const CorunMatrix& m,
                        const std::vector<std::size_t>& jobs) {
  check_jobs(jobs, m);
  // Exhaustive max-cost matching where affordable (<= 12 jobs is 10395
  // matchings): the adversarial baseline must actually upper-bound any
  // matching, greedy included -- greedy max-cost matching does not
  // (tests/scheduler_property_test.cpp caught it losing to greedy).
  if (jobs.size() <= 12) {
    std::vector<std::size_t> remaining = jobs;
    std::vector<Pairing> current, best;
    double best_cost = -1.0;
    match_rec(m, /*maximize=*/true, remaining, current, 0.0, best_cost, best);
    Schedule s;
    s.pairs = std::move(best);
    finalize(m, s);
    return s;
  }
  // Greedy max-cost matching as the adversarial heuristic beyond that.
  struct Cand {
    double cost;
    std::size_t a, b;
  };
  std::vector<Cand> cands;
  for (std::size_t i = 0; i < jobs.size(); ++i)
    for (std::size_t j = i + 1; j < jobs.size(); ++j)
      cands.push_back({pair_cost(m, jobs[i], jobs[j]), jobs[i], jobs[j]});
  std::sort(cands.begin(), cands.end(),
            [](const Cand& x, const Cand& y) { return x.cost > y.cost; });
  std::vector<bool> used(m.size(), false);
  Schedule s;
  for (const Cand& c : cands) {
    if (used[c.a] || used[c.b]) continue;
    used[c.a] = used[c.b] = true;
    s.pairs.push_back({c.a, c.b, c.cost});
  }
  finalize(m, s);
  return s;
}

SchedulingStudy scheduling_study(const CorunMatrix& m,
                                 const std::vector<std::size_t>& jobs) {
  SchedulingStudy st;
  st.greedy = schedule_greedy(m, jobs);
  st.worst = schedule_worst(m, jobs);
  st.improvement =
      st.greedy.total_cost > 0 ? st.worst.total_cost / st.greedy.total_cost
                               : 1.0;
  return st;
}

}  // namespace coperf::harness
