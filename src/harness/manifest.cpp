#include "harness/manifest.hpp"

#include <cctype>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "harness/runcache.hpp"
#include "perf/metrics.hpp"

namespace coperf::harness {

namespace {

// --- JSON writing ----------------------------------------------------

/// 17 significant digits round-trip any IEEE double exactly through
/// strtod, so every stored floating-point field reloads bit-identical.
void jnum(std::ostream& os, double v) {
  os << std::setprecision(17) << v;
}

void jstr(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(static_cast<unsigned char>(c)) << std::dec
             << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_cache(std::ostream& os, const sim::CacheConfig& c) {
  os << '[' << c.size_bytes << ", " << c.assoc << ", " << c.latency_cycles
     << ", " << c.line_bytes << ']';
}

void write_machine(std::ostream& os, const sim::MachineConfig& m) {
  os << "{\"num_cores\": " << m.num_cores << ", \"freq_ghz\": ";
  jnum(os, m.freq_ghz);
  os << ", \"l1d\": ";
  write_cache(os, m.l1d);
  os << ", \"l2\": ";
  write_cache(os, m.l2);
  os << ", \"l3\": ";
  write_cache(os, m.l3);
  os << ", \"l3_inclusive\": " << (m.l3_inclusive ? "true" : "false")
     << ", \"peak_bw_gbs\": ";
  jnum(os, m.peak_bw_gbs);
  os << ", \"per_core_bw_gbs\": ";
  jnum(os, m.per_core_bw_gbs);
  os << ", \"dram_latency_cycles\": " << m.dram_latency_cycles
     << ", \"mshr_per_core\": " << m.mshr_per_core
     << ", \"store_buffer\": " << m.store_buffer
     << ", \"rob_instructions\": " << m.rob_instructions
     << ", \"quantum_cycles\": " << m.quantum_cycles << ", \"prefetch\": ["
     << (m.prefetch.l2_stream ? "true" : "false") << ", "
     << (m.prefetch.l2_adjacent ? "true" : "false") << ", "
     << (m.prefetch.l1_next_line ? "true" : "false") << ", "
     << (m.prefetch.l1_ip_stride ? "true" : "false")
     << "], \"streamer_degree\": " << m.streamer_degree
     << ", \"streamer_train\": " << m.streamer_train
     << ", \"scale\": " << m.scale << '}';
}

const char* size_name(wl::SizeClass s) {
  switch (s) {
    case wl::SizeClass::Tiny: return "Tiny";
    case wl::SizeClass::Small: return "Small";
    case wl::SizeClass::Native: return "Native";
  }
  throw std::logic_error{"manifest: unknown size class"};
}

wl::SizeClass parse_size(const std::string& s) {
  if (s == "Tiny") return wl::SizeClass::Tiny;
  if (s == "Small") return wl::SizeClass::Small;
  if (s == "Native") return wl::SizeClass::Native;
  throw std::runtime_error{"manifest: unknown size class '" + s + "'"};
}

void write_options(std::ostream& os, const RunOptions& o) {
  os << "{\"machine\": ";
  write_machine(os, o.machine);
  os << ", \"size\": \"" << size_name(o.size) << "\", \"threads\": "
     << o.threads << ", \"bg_threads\": " << o.bg_threads << ", \"seed\": "
     << o.seed << ", \"sample_window\": " << o.sample_window
     << ", \"cycle_limit\": " << o.cycle_limit << '}';
}

void write_stats(std::ostream& os, const sim::CoreStats& s) {
  os << '[' << s.cycles << ", " << s.instructions << ", " << s.loads << ", "
     << s.stores << ", " << s.l1d_hits << ", " << s.l1d_misses << ", "
     << s.l2_hits << ", " << s.l2_misses << ", " << s.l3_hits << ", "
     << s.l3_misses << ", " << s.bytes_from_mem << ", "
     << s.bytes_written_back << ", " << s.stall_cycles_mem << ", "
     << s.pending_l2_cycles << ", " << s.barrier_wait_cycles << ", "
     << s.prefetches_issued << ']';
}

void write_latency(std::ostream& os, const sim::LatencyStats& l) {
  os << "{\"count\": " << l.count << ", \"sum\": " << l.sum
     << ", \"buckets\": [";
  bool first = true;
  for (std::size_t b = 0; b < l.buckets.size(); ++b) {
    if (l.buckets[b] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << '[' << b << ", " << l.buckets[b] << ']';
  }
  os << "]}";
}

void write_run(std::ostream& os, const RunResult& r) {
  os << "{\"workload\": ";
  jstr(os, r.workload);
  os << ", \"threads\": " << r.threads << ", \"cycles\": " << r.cycles
     << ", \"seconds\": ";
  jnum(os, r.seconds);
  os << ", \"avg_bw_gbs\": ";
  jnum(os, r.avg_bw_gbs);
  os << ", \"footprint_bytes\": " << r.footprint_bytes
     << ", \"hit_cycle_limit\": " << (r.hit_cycle_limit ? "true" : "false")
     << ", \"stats\": ";
  write_stats(os, r.stats);
  os << ", \"latency\": ";
  write_latency(os, r.latency);
  os << '}';
}

void write_group_result(std::ostream& os, const GroupResult& g) {
  os << "{\"members\": [";
  for (std::size_t i = 0; i < g.members.size(); ++i) {
    if (i != 0) os << ", ";
    write_run(os, g.members[i]);
  }
  os << "], \"runs_completed\": [";
  for (std::size_t i = 0; i < g.runs_completed.size(); ++i) {
    if (i != 0) os << ", ";
    os << g.runs_completed[i];
  }
  os << "], \"total_avg_bw_gbs\": ";
  jnum(os, g.total_avg_bw_gbs);
  os << ", \"finish_cycle\": " << g.finish_cycle << ", \"hit_cycle_limit\": "
     << (g.hit_cycle_limit ? "true" : "false") << '}';
}

// --- JSON parsing ----------------------------------------------------
//
// A small strict recursive-descent parser for exactly the documents
// save_manifest emits (objects, arrays, strings, numbers, booleans,
// null). Numbers keep their raw text so 64-bit integers reload exactly
// (no double round-trip for counters).

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool b = false;
  std::string text;  ///< Number: raw token; String: decoded value
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue& at(const std::string& key) const {
    for (const auto& [k, v] : fields)
      if (k == key) return v;
    throw std::runtime_error{"manifest: missing field '" + key + "'"};
  }
  std::uint64_t u64() const {
    if (kind != Kind::Number)
      throw std::runtime_error{"manifest: expected a number"};
    return std::stoull(text);
  }
  double num() const {
    if (kind != Kind::Number)
      throw std::runtime_error{"manifest: expected a number"};
    return std::stod(text);
  }
  const std::string& str() const {
    if (kind != Kind::String)
      throw std::runtime_error{"manifest: expected a string"};
    return text;
  }
  bool boolean() const {
    if (kind != Kind::Bool)
      throw std::runtime_error{"manifest: expected a boolean"};
    return b;
  }
  const std::vector<JsonValue>& arr() const {
    if (kind != Kind::Array)
      throw std::runtime_error{"manifest: expected an array"};
    return items;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::istream& is) {
    std::ostringstream buf;
    buf << is.rdbuf();
    text_ = buf.str();
  }

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size())
      fail("trailing content after the top-level value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error{"manifest: parse error at byte " +
                             std::to_string(pos_) + ": " + what};
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }
  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f' || c == 'n') return literal();
    if (c == '-' || (c >= '0' && c <= '9')) return number();
    fail("unexpected character");
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = string_value();
      expect(':');
      v.fields.emplace_back(std::move(key.text), value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.text += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': v.text += '"'; break;
        case '\\': v.text += '\\'; break;
        case '/': v.text += '/'; break;
        case 'n': v.text += '\n'; break;
        case 't': v.text += '\t'; break;
        case 'r': v.text += '\r'; break;
        case 'b': v.text += '\b'; break;
        case 'f': v.text += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const int code = std::stoi(text_.substr(pos_, 4), nullptr, 16);
          pos_ += 4;
          if (code > 0x7F) fail("non-ASCII \\u escape unsupported");
          v.text += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue literal() {
    JsonValue v;
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::Bool;
      v.b = true;
    } else if (consume_literal("false")) {
      v.kind = JsonValue::Kind::Bool;
      v.b = false;
    } else if (consume_literal("null")) {
      v.kind = JsonValue::Kind::Null;
    } else {
      fail("unknown literal");
    }
    return v;
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    const std::size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      digits();
    }
    if (pos_ == start) fail("malformed number");
    v.text = text_.substr(start, pos_ - start);
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

// --- deserialization -------------------------------------------------

sim::CacheConfig parse_cache(const JsonValue& v) {
  const auto& a = v.arr();
  if (a.size() != 4)
    throw std::runtime_error{"manifest: cache config needs 4 entries"};
  sim::CacheConfig c;
  c.size_bytes = a[0].u64();
  c.assoc = static_cast<std::uint32_t>(a[1].u64());
  c.latency_cycles = static_cast<std::uint32_t>(a[2].u64());
  c.line_bytes = static_cast<std::uint32_t>(a[3].u64());
  return c;
}

sim::MachineConfig parse_machine(const JsonValue& v) {
  sim::MachineConfig m;
  m.num_cores = static_cast<std::uint32_t>(v.at("num_cores").u64());
  m.freq_ghz = v.at("freq_ghz").num();
  m.l1d = parse_cache(v.at("l1d"));
  m.l2 = parse_cache(v.at("l2"));
  m.l3 = parse_cache(v.at("l3"));
  m.l3_inclusive = v.at("l3_inclusive").boolean();
  m.peak_bw_gbs = v.at("peak_bw_gbs").num();
  m.per_core_bw_gbs = v.at("per_core_bw_gbs").num();
  m.dram_latency_cycles =
      static_cast<std::uint32_t>(v.at("dram_latency_cycles").u64());
  m.mshr_per_core = static_cast<std::uint32_t>(v.at("mshr_per_core").u64());
  m.store_buffer = static_cast<std::uint32_t>(v.at("store_buffer").u64());
  m.rob_instructions =
      static_cast<std::uint32_t>(v.at("rob_instructions").u64());
  m.quantum_cycles = static_cast<std::uint32_t>(v.at("quantum_cycles").u64());
  const auto& pf = v.at("prefetch").arr();
  if (pf.size() != 4)
    throw std::runtime_error{"manifest: prefetch mask needs 4 entries"};
  m.prefetch = {pf[0].boolean(), pf[1].boolean(), pf[2].boolean(),
                pf[3].boolean()};
  m.streamer_degree = static_cast<std::uint32_t>(v.at("streamer_degree").u64());
  m.streamer_train = static_cast<std::uint32_t>(v.at("streamer_train").u64());
  m.scale = static_cast<std::uint32_t>(v.at("scale").u64());
  return m;
}

RunOptions parse_options(const JsonValue& v) {
  RunOptions o;
  o.machine = parse_machine(v.at("machine"));
  o.size = parse_size(v.at("size").str());
  o.threads = static_cast<unsigned>(v.at("threads").u64());
  o.bg_threads = static_cast<unsigned>(v.at("bg_threads").u64());
  o.seed = v.at("seed").u64();
  o.sample_window = v.at("sample_window").u64();
  o.cycle_limit = v.at("cycle_limit").u64();
  return o;
}

sim::CoreStats parse_stats(const JsonValue& v) {
  const auto& a = v.arr();
  if (a.size() != 16)
    throw std::runtime_error{"manifest: stats array needs 16 counters"};
  sim::CoreStats s;
  s.cycles = a[0].u64();
  s.instructions = a[1].u64();
  s.loads = a[2].u64();
  s.stores = a[3].u64();
  s.l1d_hits = a[4].u64();
  s.l1d_misses = a[5].u64();
  s.l2_hits = a[6].u64();
  s.l2_misses = a[7].u64();
  s.l3_hits = a[8].u64();
  s.l3_misses = a[9].u64();
  s.bytes_from_mem = a[10].u64();
  s.bytes_written_back = a[11].u64();
  s.stall_cycles_mem = a[12].u64();
  s.pending_l2_cycles = a[13].u64();
  s.barrier_wait_cycles = a[14].u64();
  s.prefetches_issued = a[15].u64();
  return s;
}

sim::LatencyStats parse_latency(const JsonValue& v) {
  sim::LatencyStats l;
  l.count = v.at("count").u64();
  l.sum = v.at("sum").u64();
  std::uint64_t total = 0;
  for (const JsonValue& pair : v.at("buckets").arr()) {
    const auto& p = pair.arr();
    if (p.size() != 2)
      throw std::runtime_error{"manifest: latency bucket needs [index, count]"};
    const std::uint64_t b = p[0].u64();
    if (b >= l.buckets.size())
      throw std::runtime_error{"manifest: latency bucket index out of range"};
    l.buckets[b] = p[1].u64();
    total += p[1].u64();
  }
  if (total != l.count)
    throw std::runtime_error{"manifest: latency bucket total != count"};
  return l;
}

RunResult parse_run(const JsonValue& v) {
  RunResult r;
  r.workload = v.at("workload").str();
  r.threads = static_cast<unsigned>(v.at("threads").u64());
  r.cycles = v.at("cycles").u64();
  r.seconds = v.at("seconds").num();
  r.avg_bw_gbs = v.at("avg_bw_gbs").num();
  r.footprint_bytes = static_cast<std::size_t>(v.at("footprint_bytes").u64());
  r.hit_cycle_limit = v.at("hit_cycle_limit").boolean();
  r.stats = parse_stats(v.at("stats"));
  // Derived metrics are a pure function of the counters; regions are
  // the documented lossy spot (empty on load).
  r.metrics = perf::Metrics::from(r.stats);
  r.latency = parse_latency(v.at("latency"));
  return r;
}

GroupResult parse_group_result(const JsonValue& v) {
  GroupResult g;
  for (const JsonValue& m : v.at("members").arr())
    g.members.push_back(parse_run(m));
  for (const JsonValue& n : v.at("runs_completed").arr())
    g.runs_completed.push_back(n.u64());
  g.total_avg_bw_gbs = v.at("total_avg_bw_gbs").num();
  g.finish_cycle = v.at("finish_cycle").u64();
  g.hit_cycle_limit = v.at("hit_cycle_limit").boolean();
  return g;
}

GroupSpec parse_members(const JsonValue& v) {
  GroupSpec spec;
  for (const JsonValue& m : v.arr()) {
    MemberSpec mem;
    mem.workload = m.at("workload").str();
    mem.threads = static_cast<unsigned>(m.at("threads").u64());
    const JsonValue& size = m.at("size");
    if (size.kind != JsonValue::Kind::Null) mem.size = parse_size(size.str());
    mem.restart_until_done = m.at("restart").boolean();
    spec.members.push_back(std::move(mem));
  }
  return spec;
}

}  // namespace

void save_manifest(std::ostream& os, const ExperimentPlan& plan,
                   const ResultSet& rs) {
  os << "{\"coperf_manifest\": " << kManifestVersion << ",\n\"base\": ";
  write_options(os, plan.options());
  os << ",\n\"trials\": [";
  bool first = true;
  for (const Trial& t : plan.trials()) {
    os << (first ? "\n" : ",\n") << "{\"key\": ";
    first = false;
    jstr(os, t.key);
    os << ",\n \"members\": [";
    for (std::size_t i = 0; i < t.group.members.size(); ++i) {
      const MemberSpec& m = t.group.members[i];
      if (i != 0) os << ", ";
      os << "{\"workload\": ";
      jstr(os, m.workload);
      os << ", \"threads\": " << m.threads << ", \"size\": ";
      if (m.size)
        os << '"' << size_name(*m.size) << '"';
      else
        os << "null";
      os << ", \"restart\": " << (m.restart_until_done ? "true" : "false")
         << '}';
    }
    os << "],\n \"options\": ";
    write_options(os, t.opt);
    os << ",\n \"result\": ";
    write_group_result(os, rs.at(t.key));  // throws if rs is not this plan's
    os << '}';
  }
  os << "\n]}\n";
}

std::string manifest_json(const ExperimentPlan& plan, const ResultSet& rs) {
  std::ostringstream os;
  save_manifest(os, plan, rs);
  return os.str();
}

ResultSet load_manifest(std::istream& is) {
  const JsonValue doc = JsonParser{is}.parse();
  const std::uint64_t version = doc.at("coperf_manifest").u64();
  if (version != static_cast<std::uint64_t>(kManifestVersion))
    throw std::runtime_error{"manifest: version " + std::to_string(version) +
                             " unsupported (expected " +
                             std::to_string(kManifestVersion) + ")"};
  ResultSet rs;
  rs.base_ = parse_options(doc.at("base"));
  for (const JsonValue& t : doc.at("trials").arr()) {
    const std::string& key = t.at("key").str();
    const GroupSpec spec = parse_members(t.at("members"));
    const RunOptions opt = parse_options(t.at("options"));
    // Integrity: the stored key must be the key the deserialized spec
    // still content-addresses to. A mismatch means the manifest was
    // edited or the key schema changed -- results would silently be
    // unaddressable, so fail loudly instead.
    if (RunCache::group_key(spec, opt) != key)
      throw std::runtime_error{
          "manifest: trial key does not match its spec (corrupted or "
          "incompatible manifest): " +
          key};
    rs.results_.emplace(key, parse_group_result(t.at("result")));
  }
  return rs;
}

}  // namespace coperf::harness
