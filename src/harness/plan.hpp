// Plan-based experiment API: describe a *set* of runs first, execute
// once, read results by spec.
//
// The paper's methodology is "run these experiments, report these
// tables". An ExperimentPlan is that description as a value: trial
// specs (solo / N-way group / scalability sweep / prefetch sweep /
// full co-run matrix) are collected, each expanded into concrete
// trials, deduplicated structurally (two specs that expand to the
// same simulation share one trial) AND against the content-addressed
// RunCache (trials with cached results are served without
// simulating). execute() fans the residue out over the persistent
// parallel_for pool with an optional progress callback and returns a
// ResultSet addressable by the same specs:
//
//   ExperimentPlan plan{opts};
//   MatrixSpec fig5{subset, /*reps=*/3};
//   plan.add_matrix(fig5);
//   for (const auto& w : subset) plan.add_solo({w, 4, 3});   // free: deduped
//   ResultSet rs = plan.execute();
//   CorunMatrix m = rs.matrix(fig5);
//   RunResult solo = rs.solo({subset[0], 4, 3});
//
// corun_matrix(), scalability_sweep() and prefetch_sensitivity() are
// rebuilt on top of plans, so every bench binary is "build plan ->
// execute -> emit report".
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/group.hpp"
#include "harness/matrix.hpp"
#include "harness/parallel.hpp"
#include "harness/prefetch_study.hpp"
#include "harness/runner.hpp"
#include "harness/scalability.hpp"

namespace coperf::harness {

/// One workload solo at a fixed thread count, median-of-reps (seeds
/// seed+0..reps-1, exactly like run_solo_median).
struct SoloSpec {
  std::string workload;
  unsigned threads = 4;
  unsigned reps = 1;
};

/// Thread-scalability sweep, 1..max_threads (one run per count).
struct SweepSpec {
  std::string workload;
  unsigned max_threads = 8;
};

/// Prefetchers all-on vs all-off at a fixed thread count.
struct PrefetchSpec {
  std::string workload;
  unsigned threads = 4;
};

/// The full fg x bg co-run matrix over `subset` (empty = all
/// applications), median-of-reps per cell. When `solo_cycles` is
/// non-empty (one entry per subset workload, same order) the solo
/// baseline trials are skipped and those cycles normalize the matrix.
struct MatrixSpec {
  std::vector<std::string> subset;
  unsigned reps = 3;
  std::vector<sim::Cycle> solo_cycles;
};

/// One concrete simulation of a plan: a group spec plus fully resolved
/// options, identified by its RunCache key.
struct Trial {
  GroupSpec group;
  RunOptions opt;
  std::string key;
};

/// Executed plan results, addressable by the specs that built the plan.
/// Accessors throw std::out_of_range for specs the plan did not
/// contain.
class ResultSet {
 public:
  std::size_t size() const { return results_.size(); }
  bool contains(const std::string& key) const {
    return results_.count(key) != 0;
  }
  /// Raw access by RunCache key (see RunCache::group_key).
  const GroupResult& at(const std::string& key) const;

  /// Median-of-reps group result for a spec added via add_group().
  GroupResult group(const GroupSpec& spec, unsigned reps = 1) const;
  /// Median-of-reps solo result (also serves the matrix's baselines).
  RunResult solo(const SoloSpec& spec) const;
  ScalabilityResult scalability(const SweepSpec& spec,
                                const ScalThresholds& t = {}) const;
  PrefetchSensitivity prefetch(const PrefetchSpec& spec) const;
  CorunMatrix matrix(const MatrixSpec& spec) const;

  const RunOptions& options() const { return base_; }

 private:
  friend class ExperimentPlan;
  /// Manifest loader (harness/manifest.hpp): rebuilds a ResultSet from
  /// a serialized plan execution without re-running anything.
  friend ResultSet load_manifest(std::istream& is);
  const GroupResult& median_ref(const GroupSpec& spec, unsigned reps) const;

  RunOptions base_;
  std::unordered_map<std::string, GroupResult> results_;
};

class ExperimentPlan {
 public:
  /// `base` supplies everything a spec does not: machine, size class,
  /// seed, sampling window, cycle limit, default thread counts.
  explicit ExperimentPlan(RunOptions base = {});

  ExperimentPlan& add_solo(const SoloSpec& spec);
  ExperimentPlan& add_group(const GroupSpec& spec, unsigned reps = 1);
  ExperimentPlan& add_scalability(const SweepSpec& spec);
  ExperimentPlan& add_prefetch(const PrefetchSpec& spec);
  ExperimentPlan& add_matrix(const MatrixSpec& spec);

  /// Unique trials after structural dedup.
  std::size_t trial_count() const { return trials_.size(); }
  /// Trials the RunCache cannot already serve (what execute() will
  /// actually simulate).
  std::size_t residue_count() const;
  const std::vector<Trial>& trials() const { return trials_; }

  /// Called after each finished trial (serialized; `done` counts up to
  /// trial_count()).
  using Progress =
      std::function<void(std::size_t done, std::size_t total, const Trial& t)>;

  /// Runs every unique trial on the persistent pool (cache hits return
  /// without simulating) and collects the results.
  ResultSet execute(unsigned host_threads = 0, Progress progress = {},
                    ParallelSchedule schedule = ParallelSchedule::Dynamic) const;

  const RunOptions& options() const { return base_; }

 private:
  void add_trial(GroupSpec group, const RunOptions& opt);

  RunOptions base_;
  std::vector<Trial> trials_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace coperf::harness
