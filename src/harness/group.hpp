// N-way co-run groups -- the generalization of the paper's fg/bg pair
// harness (Section V, Fig. 1) to an arbitrary number of co-resident
// applications on one machine.
//
// A GroupSpec places N workloads on disjoint core ranges: member i
// occupies the cores immediately after member i-1, so a {4,4} pair is
// the paper's fg cores 0..3 / bg cores 4..7 layout, and a {2,2,2,2}
// group packs four 2-thread residents onto an 8-core machine. Each
// member chooses its own thread count, may override the input size
// class, and picks its completion semantics:
//   * restart_until_done = false (default): the member runs to
//     completion and the group ends when every such member finished
//     ("foreground" semantics);
//   * restart_until_done = true: the member loops, restarting
//     indefinitely until the foregrounds finish, and its completed
//     iteration count is reported ("background" semantics).
//
// run_pair() is the 2-member special case of run_group() and is
// bit-identical to the pre-group implementation (guarded by the golden
// snapshots in tests/sim_equivalence_test); 3+-member groups are the
// scenarios the pair-era API could not express (>2-way interference,
// observation deconvolution, heterogeneous slot packing).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/runner.hpp"

namespace coperf::harness {

/// One application inside a co-run group.
struct MemberSpec {
  std::string workload;
  unsigned threads = 4;
  /// Input size override for this member (unset = RunOptions::size).
  std::optional<wl::SizeClass> size;
  /// Background loop semantics: restart until the foregrounds finish.
  bool restart_until_done = false;
};

/// N workloads on disjoint core ranges of one machine, in placement
/// order (member 0 starts at core 0).
struct GroupSpec {
  std::vector<MemberSpec> members;

  /// The 1-member group: `workload` alone on cores [0, threads).
  static GroupSpec solo(std::string workload, unsigned threads = 4);
  /// The paper's pair: fg runs to completion on the first cores, bg
  /// loops on the next ones.
  static GroupSpec pair(std::string fg, std::string bg,
                        unsigned fg_threads = 4, unsigned bg_threads = 4);

  unsigned total_threads() const;
};

/// Result of one group run: a full per-member RunResult each (stats,
/// metrics, bandwidth, regions), plus group-level aggregates.
struct GroupResult {
  std::vector<RunResult> members;
  /// Completed iterations per member (0 for run-to-completion members
  /// and for a background member that never finished an iteration).
  std::vector<std::uint64_t> runs_completed;
  double total_avg_bw_gbs = 0.0;
  sim::Cycle finish_cycle = 0;  ///< when the last foreground retired
  bool hit_cycle_limit = false;
};

/// Runs the group, placing member i on the cores directly after member
/// i-1. Member i's RNG stream is seeded with opt.seed + i * 0x9E37
/// (the pair harness' bg-seed convention, generalized). Throws
/// std::invalid_argument for empty groups, groups with no
/// run-to-completion member, zero-thread members, or more total
/// threads than the machine has cores.
GroupResult run_group(const GroupSpec& spec, const RunOptions& opt = {});

/// Median-of-N over seeds opt.seed+0..reps-1, ranked by member 0's
/// cycles (the pair harness' fg-median convention, generalized).
GroupResult run_group_median(const GroupSpec& spec, const RunOptions& opt = {},
                             unsigned reps = 3);

/// Views a 2-member GroupResult through the legacy pair lens.
CorunResult to_corun(const GroupResult& g);

}  // namespace coperf::harness
