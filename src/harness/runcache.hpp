// Content-addressed cache of simulation results.
//
// Every coperf simulation is deterministic: the full GroupResult is a
// pure function of (the group's members -- workload, threads, size,
// restart semantics -- the seed, the machine configuration, the
// sampling window, and the cycle limit). The cache keys on exactly
// those fields, so a hit returns a bit-identical result without
// re-simulating. Solo runs and pairs are the 1- and 2-member special
// cases and share the same store, which is what lets an
// ExperimentPlan dedupe a fig5 matrix against the predictor's solo
// profiles and lets a second matrix build complete with zero new
// simulations.
//
// The in-memory layer is always available and process-local. Disk
// persistence (sharing results across bench invocations) is opt-in:
// set COPERF_RUN_CACHE_DIR (the CI jobs point it under the workspace)
// or call set_disk_dir(). Entries are one text file per key under that
// directory, named by a 64-bit FNV-1a hash with the full key stored
// inside and verified on load, so hash collisions degrade to misses.
// Entries are published by temp-file + atomic rename and carry a
// payload checksum; a corrupt or truncated entry (a torn write, a
// stray editor, an old format version) is treated as a miss and
// quarantined aside as <entry>.corrupt (runcache.corrupt counts them)
// instead of poisoning every later run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "harness/group.hpp"
#include "harness/runner.hpp"

namespace coperf::harness {

class RunCache {
 public:
  /// Process-wide instance. Honors COPERF_RUN_CACHE=0 (disable) and
  /// COPERF_RUN_CACHE_DIR (enable disk persistence) at first use.
  static RunCache& instance();

  struct Stats {
    std::uint64_t hits = 0;        ///< served from memory
    std::uint64_t disk_hits = 0;   ///< served from the disk layer
    std::uint64_t misses = 0;      ///< simulated for real
    /// Disk entries that failed checksum/format validation: counted as
    /// misses above and quarantined aside as <entry>.corrupt.
    std::uint64_t corrupt = 0;
  };
  Stats stats() const;
  void reset_stats();

  /// Drops every in-memory entry (disk files are left alone; use
  /// clear_disk() for those).
  void clear();
  /// Removes all entry files from the disk layer (no-op when disabled).
  void clear_disk();

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Empty string disables the disk layer.
  void set_disk_dir(std::string dir);
  const std::string& disk_dir() const { return disk_dir_; }

  // --- used by run_group (and through it run_solo / run_pair) ---------
  bool lookup(const std::string& key, GroupResult* out);
  void store(const std::string& key, const GroupResult& r);
  /// Stats-neutral membership probe (memory or disk) -- lets a plan
  /// count its residue without charging hits/misses.
  bool contains(const std::string& key) const;

  /// Canonical key string. Two (spec, options) pairs produce the same
  /// key iff every simulation-relevant field matches.
  static std::string group_key(const GroupSpec& spec, const RunOptions& opt);
  /// Convenience keys for the 1- and 2-member special cases (thread
  /// counts come from opt.threads / opt.bg_threads like the runners).
  static std::string solo_key(std::string_view workload,
                              const RunOptions& opt);
  static std::string pair_key(std::string_view fg, std::string_view bg,
                              const RunOptions& opt);
  /// Fingerprint of every MachineConfig field that affects simulation.
  static std::string machine_fingerprint(const sim::MachineConfig& m);

 private:
  RunCache();
  struct Impl;
  Impl* impl_;  // leaked with the singleton; keeps the header light
  bool enabled_ = true;
  std::string disk_dir_;
};

}  // namespace coperf::harness
