#include "harness/prefetch_study.hpp"

#include "harness/plan.hpp"

namespace coperf::harness {

PrefetchSensitivity prefetch_sensitivity(std::string_view workload,
                                         const RunOptions& opt) {
  const PrefetchSpec spec{std::string{workload}, opt.threads};
  ExperimentPlan plan{opt};
  plan.add_prefetch(spec);
  return plan.execute().prefetch(spec);
}

PrefetchAblation prefetch_ablation(std::string_view workload,
                                   const RunOptions& opt) {
  auto run_with = [&](sim::PrefetchMask mask) {
    RunOptions o = opt;
    o.machine.prefetch = mask;
    return static_cast<double>(run_solo(workload, o).cycles);
  };

  const double on = run_with(sim::PrefetchMask::all_on());
  auto ratio = [&](sim::PrefetchMask mask) { return on / run_with(mask); };

  PrefetchAblation a;
  a.workload = std::string{workload};
  a.all_on = 1.0;
  sim::PrefetchMask m = sim::PrefetchMask::all_on();
  m.l2_stream = false;
  a.no_l2_stream = ratio(m);
  m = sim::PrefetchMask::all_on();
  m.l2_adjacent = false;
  a.no_l2_adjacent = ratio(m);
  m = sim::PrefetchMask::all_on();
  m.l1_next_line = false;
  a.no_l1_next = ratio(m);
  m = sim::PrefetchMask::all_on();
  m.l1_ip_stride = false;
  a.no_l1_ip = ratio(m);
  a.all_off = ratio(sim::PrefetchMask::all_off());
  return a;
}

}  // namespace coperf::harness
