// Prefetcher-sensitivity study (paper Section IV-C, Fig. 4): run each
// application solo at a fixed thread count with all hardware
// prefetchers on vs. off (the MSR 0x1A4 experiment) and report the
// normalized "speedup" t_on / t_off (<= 1 means prefetchers help).
#pragma once

#include <string>
#include <vector>

#include "harness/runner.hpp"

namespace coperf::harness {

struct PrefetchSensitivity {
  std::string workload;
  sim::Cycle cycles_on = 0;
  sim::Cycle cycles_off = 0;
  /// t_on / t_off, as plotted in Fig. 4 (lower == more sensitive).
  double speedup_ratio = 1.0;
  double bw_on_gbs = 0.0;
  double bw_off_gbs = 0.0;
};

PrefetchSensitivity prefetch_sensitivity(std::string_view workload,
                                         const RunOptions& opt = {});

/// Per-prefetcher ablation: toggles each of the four prefetchers off
/// individually (extension beyond the paper's all-on/all-off sweep).
struct PrefetchAblation {
  std::string workload;
  double all_on = 1.0;  ///< reference
  double no_l2_stream = 1.0;
  double no_l2_adjacent = 1.0;
  double no_l1_next = 1.0;
  double no_l1_ip = 1.0;
  double all_off = 1.0;
};

PrefetchAblation prefetch_ablation(std::string_view workload,
                                   const RunOptions& opt = {});

}  // namespace coperf::harness
