// Thread-scalability sweep (paper Section IV-A, Fig. 2, Table II).
#pragma once

#include <string>
#include <vector>

#include "harness/runner.hpp"

namespace coperf::harness {

enum class ScalClass { Low, Medium, High };

const char* to_string(ScalClass c);

struct ScalabilityResult {
  std::string workload;
  bool rate_mode = false;
  std::vector<unsigned> threads;     ///< swept thread counts
  std::vector<sim::Cycle> cycles;    ///< runtime at each count
  std::vector<double> speedup;       ///< vs. 1 thread (throughput for rate)
  std::vector<double> bw_gbs;        ///< bandwidth at each count
  ScalClass cls = ScalClass::Low;

  double max_speedup() const;
};

/// Classification thresholds on S(max threads). The paper's Table II
/// buckets are Low / Medium ("saturate") / High.
struct ScalThresholds {
  double low_below = 2.5;
  double high_at_least = 5.0;
};

ScalClass classify_scalability(double s_max, const ScalThresholds& t = {});

/// Sweeps `workload` from 1 to `max_threads` threads, solo.
/// For SPEC-rate workloads speedup is throughput-based:
///   S(T) = T * t(1copy) / t(Tcopies).
ScalabilityResult scalability_sweep(std::string_view workload,
                                    const RunOptions& opt = {},
                                    unsigned max_threads = 8,
                                    const ScalThresholds& t = {});

}  // namespace coperf::harness
