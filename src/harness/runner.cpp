#include "harness/runner.hpp"

#include <algorithm>
#include <stdexcept>

#include "harness/group.hpp"

namespace coperf::harness {

RunResult run_solo(std::string_view workload, const RunOptions& opt) {
  return run_group(GroupSpec::solo(std::string{workload}, opt.threads), opt)
      .members[0];
}

CorunResult run_pair(std::string_view fg, std::string_view bg,
                     const RunOptions& opt) {
  return to_corun(run_group(GroupSpec::pair(std::string{fg}, std::string{bg},
                                            opt.threads, opt.bg_threads),
                            opt));
}

RunResult run_solo_median(std::string_view workload, const RunOptions& opt,
                          unsigned reps) {
  return run_group_median(GroupSpec::solo(std::string{workload}, opt.threads),
                          opt, reps)
      .members[0];
}

CorunResult run_pair_median(std::string_view fg, std::string_view bg,
                            const RunOptions& opt, unsigned reps) {
  return to_corun(
      run_group_median(GroupSpec::pair(std::string{fg}, std::string{bg},
                                       opt.threads, opt.bg_threads),
                       opt, reps));
}

}  // namespace coperf::harness
