#include "harness/runner.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "harness/runcache.hpp"
#include "perf/profiler.hpp"
#include "wl/registry.hpp"

namespace coperf::harness {

namespace {

std::vector<unsigned> iota_cores(unsigned first, unsigned count) {
  std::vector<unsigned> cores(count);
  for (unsigned i = 0; i < count; ++i) cores[i] = first + i;
  return cores;
}

RunResult collect_app(sim::Machine& m, std::size_t app_index,
                      const wl::AppModel& model, sim::Cycle cycles,
                      const perf::BandwidthReport& bw, bool hit_limit) {
  RunResult r;
  r.workload = model.name();
  r.threads = model.threads();
  r.cycles = cycles;
  r.seconds = m.config().seconds(cycles);
  r.stats = m.app_stats(app_index);
  r.metrics = perf::Metrics::from(r.stats);
  r.avg_bw_gbs =
      app_index < bw.app_avg_gbs.size() ? bw.app_avg_gbs[app_index] : 0.0;
  r.regions = perf::profile_app(m, app_index, /*min_cycles=*/1000);
  r.hit_cycle_limit = hit_limit;
  return r;
}

}  // namespace

RunResult run_solo(std::string_view workload, const RunOptions& opt) {
  // Simulations are deterministic in the key's fields, so a cache hit
  // is bit-identical to re-running the simulation.
  RunCache& cache = RunCache::instance();
  std::string key;
  if (cache.enabled()) {
    key = RunCache::solo_key(workload, opt);
    RunResult cached;
    if (cache.lookup_solo(key, &cached)) return cached;
  }
  const auto& reg = wl::Registry::instance();
  auto model = reg.create(workload, wl::AppParams{0, opt.threads, opt.size,
                                                  opt.seed});
  sim::Machine m{opt.machine};
  m.set_sample_window(opt.sample_window);
  m.set_cycle_limit(opt.cycle_limit);

  sim::AppBinding binding;
  binding.id = 0;
  binding.cores = iota_cores(0, opt.threads);
  binding.sources = model->sources();
  m.add_app(std::move(binding));

  const sim::RunOutcome out = m.run();
  const auto bw = perf::summarize_bandwidth(m);
  RunResult r =
      collect_app(m, 0, *model, out.finish_cycle, bw, out.hit_cycle_limit);
  r.footprint_bytes = model->footprint_bytes();
  if (cache.enabled()) cache.store_solo(key, r);
  return r;
}

CorunResult run_pair(std::string_view fg, std::string_view bg,
                     const RunOptions& opt) {
  if (opt.threads + opt.bg_threads > opt.machine.num_cores)
    throw std::invalid_argument{
        "run_pair: fg+bg threads exceed the machine's cores"};
  RunCache& cache = RunCache::instance();
  std::string key;
  if (cache.enabled()) {
    key = RunCache::pair_key(fg, bg, opt);
    CorunResult cached;
    if (cache.lookup_pair(key, &cached)) return cached;
  }
  const auto& reg = wl::Registry::instance();
  auto fg_model =
      reg.create(fg, wl::AppParams{0, opt.threads, opt.size, opt.seed});
  auto bg_model = reg.create(
      bg, wl::AppParams{1, opt.bg_threads, opt.size, opt.seed + 0x9E37u});

  sim::Machine m{opt.machine};
  m.set_sample_window(opt.sample_window);
  m.set_cycle_limit(opt.cycle_limit);

  sim::AppBinding fg_binding;
  fg_binding.id = 0;
  fg_binding.cores = iota_cores(0, opt.threads);
  fg_binding.sources = fg_model->sources();
  m.add_app(std::move(fg_binding));

  sim::AppBinding bg_binding;
  bg_binding.id = 1;
  bg_binding.cores = iota_cores(opt.threads, opt.bg_threads);
  bg_binding.sources = bg_model->sources();
  bg_binding.background = true;
  bg_binding.restart = [bg_raw = bg_model.get()] { bg_raw->restart(); };
  m.add_app(std::move(bg_binding));

  const sim::RunOutcome out = m.run();
  const auto bw = perf::summarize_bandwidth(m);

  CorunResult c;
  c.fg = collect_app(m, 0, *fg_model, out.app_finish[0], bw,
                     out.hit_cycle_limit);
  c.fg.footprint_bytes = fg_model->footprint_bytes();
  c.bg_workload = std::string{bg};
  c.bg_runs_completed = out.bg_runs[1];
  c.bg_stats = m.app_stats(1);
  c.bg_avg_bw_gbs = bw.app_avg_gbs.size() > 1 ? bw.app_avg_gbs[1] : 0.0;
  c.total_avg_bw_gbs = bw.avg_total_gbs;
  if (cache.enabled()) cache.store_pair(key, c);
  return c;
}

RunResult run_solo_median(std::string_view workload, const RunOptions& opt,
                          unsigned reps) {
  if (reps == 0) throw std::invalid_argument{"reps must be >= 1"};
  std::vector<RunResult> runs;
  runs.reserve(reps);
  for (unsigned r = 0; r < reps; ++r) {
    RunOptions o = opt;
    o.seed = opt.seed + r;
    runs.push_back(run_solo(workload, o));
  }
  std::sort(runs.begin(), runs.end(),
            [](const RunResult& a, const RunResult& b) {
              return a.cycles < b.cycles;
            });
  return runs[runs.size() / 2];
}

CorunResult run_pair_median(std::string_view fg, std::string_view bg,
                            const RunOptions& opt, unsigned reps) {
  if (reps == 0) throw std::invalid_argument{"reps must be >= 1"};
  std::vector<CorunResult> runs;
  runs.reserve(reps);
  for (unsigned r = 0; r < reps; ++r) {
    RunOptions o = opt;
    o.seed = opt.seed + r;
    runs.push_back(run_pair(fg, bg, o));
  }
  std::sort(runs.begin(), runs.end(),
            [](const CorunResult& a, const CorunResult& b) {
              return a.fg.cycles < b.fg.cycles;
            });
  return runs[runs.size() / 2];
}

}  // namespace coperf::harness
