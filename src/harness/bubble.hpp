// Bubble-Up-style pressure/sensitivity characterization (extension).
//
// The paper's related work (Mars et al., Bubble-Up; Delimitrou et al.,
// iBench) predicts co-run degradation by probing each application with
// a tunable memory-pressure "bubble" instead of running all N^2 pairs.
// This module implements that methodology on top of coperf: a synthetic
// stressor with a bandwidth dial, a sensitivity curve per application
// (slowdown as a function of bubble pressure), and a pressure score per
// application (how big a bubble it is for others). Together they allow
// O(N) characterization that approximates the paper's Fig. 5 matrix.
#pragma once

#include <string>
#include <vector>

#include "harness/runner.hpp"

namespace coperf::harness {

/// Slowdown of one application against increasing background pressure.
struct SensitivityCurve {
  std::string workload;
  std::vector<double> pressure_gbs;  ///< bubble sizes probed
  std::vector<double> slowdown;      ///< t(bubble)/t(solo) at each size

  /// Interpolated slowdown at an arbitrary pressure.
  double at(double gbs) const;
  /// Area-under-curve style scalar score (mean slowdown over the sweep).
  double sensitivity_score() const;
};

/// How much pressure a workload exerts on others, measured as the
/// bandwidth it sustains while co-running against a reference bubble.
struct PressureScore {
  std::string workload;
  double solo_bw_gbs = 0.0;
  double contended_bw_gbs = 0.0;
  /// Effective pressure: bandwidth it keeps claiming under contention.
  double score() const { return contended_bw_gbs; }
};

/// Probes `workload` with bubbles of each size in `pressures_gbs`
/// (background "bubble" stressor on the complementary cores).
SensitivityCurve sensitivity_curve(std::string_view workload,
                                   const std::vector<double>& pressures_gbs,
                                   const RunOptions& opt = {});

/// Measures `workload`'s pressure score against a mid-size bubble.
PressureScore pressure_score(std::string_view workload,
                             const RunOptions& opt = {},
                             double reference_bubble_gbs = 12.0);

/// Bubble-Up prediction: expected slowdown of `victim` when co-running
/// with `aggressor`, from the victim's curve and the aggressor's score
/// (no pair run needed).
double predict_slowdown(const SensitivityCurve& victim,
                        const PressureScore& aggressor);

}  // namespace coperf::harness
