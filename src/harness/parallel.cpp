#include "harness/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace coperf::harness {

namespace {

/// One parallel_for invocation, shared between the caller and the pool
/// workers that join it. Work is claimed in units (single indices under
/// ParallelSchedule::Dynamic, contiguous chunks under ParallelSchedule::StaticChunk).
struct Job {
  std::size_t total = 0;
  std::size_t units = 0;
  unsigned participants = 1;
  ParallelSchedule schedule = ParallelSchedule::Dynamic;
  const std::function<void(std::size_t)>* body = nullptr;

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::atomic<unsigned> active{0};  ///< workers currently inside the job
  unsigned joined = 0;  ///< workers admitted so far (guarded by pool mu_)
  std::exception_ptr error;
  std::mutex error_mu;

  void record_error() {
    std::lock_guard lock{error_mu};
    if (!error) error = std::current_exception();
    failed.store(true);
  }

  void work() {
    for (;;) {
      // Check BEFORE claiming: a failed sweep must not burn one unit
      // per worker loop on its way out.
      if (failed.load(std::memory_order_relaxed)) return;
      const std::size_t u = next.fetch_add(1);
      if (u >= units) return;
      try {
        if (schedule == ParallelSchedule::Dynamic) {
          (*body)(u);
        } else {
          // Chunk u of `participants`: a pure function of (total,
          // participants), so the work grouping is reproducible no
          // matter which worker claims it.
          const std::size_t lo = u * total / participants;
          const std::size_t hi = (u + 1) * total / participants;
          for (std::size_t i = lo; i < hi; ++i) {
            if (failed.load(std::memory_order_relaxed)) return;
            (*body)(i);
          }
        }
      } catch (...) {
        record_error();
        return;
      }
    }
  }
};

thread_local bool tls_inside_pool_worker = false;

/// Lazily-spawned persistent worker pool (process lifetime). Workers
/// sleep on a condition variable between parallel_for calls.
class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  unsigned size() {
    std::lock_guard lock{mu_};
    return static_cast<unsigned>(threads_.size());
  }

  void run(std::size_t total, unsigned participants, ParallelSchedule schedule,
           const std::function<void(std::size_t)>& body) {
    auto job = std::make_shared<Job>();
    job->total = total;
    job->participants = participants;
    job->units = schedule == ParallelSchedule::Dynamic ? total : participants;
    job->schedule = schedule;
    job->body = &body;
    {
      std::lock_guard lock{mu_};
      ensure_workers(participants - 1);
      current_ = job;
      ++job_seq_;
      work_cv_.notify_all();
    }
    job->work();  // the caller is participant number one
    std::unique_lock lock{mu_};
    if (current_ == job) current_.reset();  // no new joiners past this point
    done_cv_.wait(lock, [&] { return job->active.load() == 0; });
    lock.unlock();
    if (job->error) std::rethrow_exception(job->error);
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

 private:
  WorkerPool() = default;

  ~WorkerPool() {
    {
      std::lock_guard lock{mu_};
      stop_ = true;
      work_cv_.notify_all();
    }
    for (auto& t : threads_) t.join();
  }

  void ensure_workers(unsigned wanted) {
    while (threads_.size() < wanted) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    tls_inside_pool_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock lock{mu_};
        work_cv_.wait(lock, [&] {
          return stop_ || (current_ != nullptr && job_seq_ != seen);
        });
        if (stop_) return;
        seen = job_seq_;
        // Honor the job's host_threads cap: the caller is participant
        // one, so at most participants-1 pool workers may join even
        // when earlier calls grew the pool beyond that.
        if (current_->joined >= current_->participants - 1) continue;
        job = current_;
        ++job->joined;
        job->active.fetch_add(1);
      }
      job->work();
      {
        std::lock_guard lock{mu_};
        if (job->active.fetch_sub(1) == 1) done_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  std::shared_ptr<Job> current_;
  std::uint64_t job_seq_ = 0;
  bool stop_ = false;
};

}  // namespace

void parallel_for(std::size_t total, unsigned host_threads,
                  const std::function<void(std::size_t)>& body,
                  ParallelSchedule schedule) {
  unsigned n = host_threads != 0 ? host_threads
                                 : std::thread::hardware_concurrency();
  if (n == 0) n = 4;
  n = static_cast<unsigned>(std::min<std::size_t>(n, total));
  // Serial fast path; also taken from inside a pool worker (nested
  // parallel_for must not wait on the pool it is running on).
  if (n <= 1 || tls_inside_pool_worker) {
    for (std::size_t i = 0; i < total; ++i) body(i);
    return;
  }
  WorkerPool::instance().run(total, n, schedule, body);
}

unsigned pool_size() { return WorkerPool::instance().size(); }

}  // namespace coperf::harness
