#include "harness/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace coperf::harness {

void parallel_for(std::size_t total, unsigned host_threads,
                  const std::function<void(std::size_t)>& body) {
  unsigned n = host_threads != 0 ? host_threads
                                 : std::thread::hardware_concurrency();
  if (n == 0) n = 4;
  n = static_cast<unsigned>(std::min<std::size_t>(n, total));
  if (n <= 1) {
    for (std::size_t i = 0; i < total; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::vector<std::thread> pool;
  pool.reserve(n);
  for (unsigned t = 0; t < n; ++t) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= total || failed.load()) return;
        try {
          body(i);
        } catch (...) {
          std::lock_guard lock{error_mu};
          if (!first_error) first_error = std::current_exception();
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace coperf::harness
