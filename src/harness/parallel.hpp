// Host-side parallel fan-out for independent simulations.
//
// Every coperf simulation is self-contained (no shared mutable state
// between Machine instances), so experiment sweeps parallelize across
// host threads trivially. Exceptions from workers are captured and
// rethrown on the caller.
#pragma once

#include <cstddef>
#include <functional>

namespace coperf::harness {

/// Runs body(i) for i in [0, total) on up to `host_threads` threads
/// (0 = hardware concurrency). Blocks until all complete.
void parallel_for(std::size_t total, unsigned host_threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace coperf::harness
