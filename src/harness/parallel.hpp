// Host-side parallel fan-out for independent simulations.
//
// Every coperf simulation is self-contained (no shared mutable state
// between Machine instances), so experiment sweeps parallelize across
// host threads trivially. Work is executed on a process-wide persistent
// worker pool (spawned lazily, reused by every parallel_for call) so
// matrix sweeps stop paying thread create/join costs per call.
// Exceptions from workers are captured and rethrown on the caller.
#pragma once

#include <cstddef>
#include <functional>

namespace coperf::harness {

/// How parallel_for hands indices to workers.
enum class ParallelSchedule {
  /// Workers race on a shared atomic counter: best load balance when
  /// per-index cost varies (co-run cells differ wildly in cycles).
  Dynamic,
  /// Static block partition: participant t of n processes the
  /// contiguous range [t*total/n, (t+1)*total/n). Index-to-thread
  /// assignment is a pure function of (total, n), making wall-clock
  /// runs reproducible for benchmarking (bench/sim_throughput).
  StaticChunk,
};

/// Runs body(i) for i in [0, total) on up to `host_threads` workers
/// (0 = hardware concurrency) from the persistent pool. Blocks until
/// all complete. The first exception thrown by any worker is rethrown
/// here; remaining workers stop claiming new indices.
void parallel_for(std::size_t total, unsigned host_threads,
                  const std::function<void(std::size_t)>& body,
                  ParallelSchedule schedule = ParallelSchedule::Dynamic);

/// Number of workers the persistent pool currently holds (diagnostics).
unsigned pool_size();

}  // namespace coperf::harness
