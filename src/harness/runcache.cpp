#include "harness/runcache.hpp"

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "perf/metrics.hpp"

namespace coperf::harness {

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void put_stats(std::ostream& os, const char* tag, const sim::CoreStats& s) {
  os << tag << ' ' << s.cycles << ' ' << s.instructions << ' ' << s.loads
     << ' ' << s.stores << ' ' << s.l1d_hits << ' ' << s.l1d_misses << ' '
     << s.l2_hits << ' ' << s.l2_misses << ' ' << s.l3_hits << ' '
     << s.l3_misses << ' ' << s.bytes_from_mem << ' ' << s.bytes_written_back
     << ' ' << s.stall_cycles_mem << ' ' << s.pending_l2_cycles << ' '
     << s.barrier_wait_cycles << ' ' << s.prefetches_issued << '\n';
}

bool get_stats(std::istream& is, sim::CoreStats& s) {
  return static_cast<bool>(
      is >> s.cycles >> s.instructions >> s.loads >> s.stores >> s.l1d_hits >>
      s.l1d_misses >> s.l2_hits >> s.l2_misses >> s.l3_hits >> s.l3_misses >>
      s.bytes_from_mem >> s.bytes_written_back >> s.stall_cycles_mem >>
      s.pending_l2_cycles >> s.barrier_wait_cycles >> s.prefetches_issued);
}

void put_run(std::ostream& os, const RunResult& r) {
  os << "workload " << r.workload << '\n'
     << "threads " << r.threads << '\n'
     << "cycles " << r.cycles << '\n'
     << "seconds " << fmt_double(r.seconds) << '\n';
  put_stats(os, "stats", r.stats);
  // Sparse latency line: count, sum, then (bucket, count) pairs.
  os << "latency " << r.latency.count << ' ' << r.latency.sum;
  for (std::size_t b = 0; b < r.latency.buckets.size(); ++b)
    if (r.latency.buckets[b] != 0)
      os << ' ' << b << ' ' << r.latency.buckets[b];
  os << '\n';
  os << "avg_bw " << fmt_double(r.avg_bw_gbs) << '\n'
     << "footprint " << r.footprint_bytes << '\n'
     << "hit_limit " << (r.hit_cycle_limit ? 1 : 0) << '\n'
     << "regions " << r.regions.size() << '\n';
  for (const auto& reg : r.regions) {
    put_stats(os, "region_stats", reg.stats);
    // The name goes last on its own line: region ids may contain spaces.
    os << "region_name " << reg.region << '\n';
  }
}

bool get_run(std::istream& is, RunResult& r) {
  std::string tag;
  int hit_limit = 0;
  std::size_t nregions = 0;
  if (!(is >> tag >> r.workload) || tag != "workload") return false;
  if (!(is >> tag >> r.threads) || tag != "threads") return false;
  if (!(is >> tag >> r.cycles) || tag != "cycles") return false;
  if (!(is >> tag >> r.seconds) || tag != "seconds") return false;
  if (!(is >> tag) || tag != "stats" || !get_stats(is, r.stats)) return false;
  if (!(is >> tag >> r.latency.count >> r.latency.sum) || tag != "latency")
    return false;
  {
    // The rest of the latency line is sparse (bucket, count) pairs.
    r.latency.buckets.fill(0);
    std::string rest;
    if (!std::getline(is, rest)) return false;
    std::istringstream pairs{rest};
    std::size_t b = 0;
    std::uint64_t n = 0;
    std::uint64_t total = 0;
    while (pairs >> b >> n) {
      if (b >= r.latency.buckets.size()) return false;
      r.latency.buckets[b] = n;
      total += n;
    }
    if (total != r.latency.count) return false;
  }
  if (!(is >> tag >> r.avg_bw_gbs) || tag != "avg_bw") return false;
  if (!(is >> tag >> r.footprint_bytes) || tag != "footprint") return false;
  if (!(is >> tag >> hit_limit) || tag != "hit_limit") return false;
  if (!(is >> tag >> nregions) || tag != "regions") return false;
  r.hit_cycle_limit = hit_limit != 0;
  r.metrics = perf::Metrics::from(r.stats);
  r.regions.clear();
  r.regions.reserve(nregions);
  for (std::size_t i = 0; i < nregions; ++i) {
    perf::RegionProfile reg;
    if (!(is >> tag) || tag != "region_stats" || !get_stats(is, reg.stats))
      return false;
    if (!(is >> tag) || tag != "region_name") return false;
    is.ignore(1);  // the separating space
    if (!std::getline(is, reg.region)) return false;
    reg.metrics = perf::Metrics::from(reg.stats);
    r.regions.push_back(std::move(reg));
  }
  return true;
}

void put_group(std::ostream& os, const GroupResult& g) {
  os << "members " << g.members.size() << '\n';
  for (std::size_t i = 0; i < g.members.size(); ++i) {
    put_run(os, g.members[i]);
    os << "runs_completed " << g.runs_completed[i] << '\n';
  }
  os << "total_avg_bw " << fmt_double(g.total_avg_bw_gbs) << '\n'
     << "finish_cycle " << g.finish_cycle << '\n'
     << "group_hit_limit " << (g.hit_cycle_limit ? 1 : 0) << '\n';
}

bool get_group(std::istream& is, GroupResult& g) {
  std::string tag;
  std::size_t nmembers = 0;
  int hit_limit = 0;
  if (!(is >> tag >> nmembers) || tag != "members") return false;
  g.members.clear();
  g.runs_completed.clear();
  g.members.reserve(nmembers);
  g.runs_completed.resize(nmembers, 0);
  for (std::size_t i = 0; i < nmembers; ++i) {
    RunResult r;
    if (!get_run(is, r)) return false;
    if (!(is >> tag >> g.runs_completed[i]) || tag != "runs_completed")
      return false;
    g.members.push_back(std::move(r));
  }
  if (!(is >> tag >> g.total_avg_bw_gbs) || tag != "total_avg_bw") return false;
  if (!(is >> tag >> g.finish_cycle) || tag != "finish_cycle") return false;
  if (!(is >> tag >> hit_limit) || tag != "group_hit_limit") return false;
  g.hit_cycle_limit = hit_limit != 0;
  return true;
}

// v4: RunResult gained the per-request latency line. The header bump
// quarantines every v3 entry through the existing wrong-header path,
// so a stale cache re-simulates instead of parsing garbage.
constexpr const char* kDiskHeader = "coperf-run-cache v4";

std::string checksum_line(std::string_view payload) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "sum %016" PRIx64, fnv1a(payload));
  return buf;
}

}  // namespace

struct RunCache::Impl {
  mutable std::mutex mu;
  std::unordered_map<std::string, GroupResult> groups;
  Stats stats;
  // Process-wide mirrors of `stats` in the observability registry --
  // the uniform surface --metrics and the CI warm-path assertion read.
  // Unlike stats they are never reset by reset_stats(): they count the
  // whole process, like every other registry metric.
  obs::Counter& hits_ctr = obs::Registry::instance().counter("runcache.hits");
  obs::Counter& disk_hits_ctr =
      obs::Registry::instance().counter("runcache.disk_hits");
  obs::Counter& misses_ctr =
      obs::Registry::instance().counter("runcache.misses");
  obs::Counter& stores_ctr =
      obs::Registry::instance().counter("runcache.stores");
  obs::Counter& corrupt_ctr =
      obs::Registry::instance().counter("runcache.corrupt");

  std::filesystem::path entry_path(const std::string& dir,
                                   const std::string& key) const {
    char name[32];
    std::snprintf(name, sizeof name, "%016" PRIx64 ".run", fnv1a(key));
    return std::filesystem::path{dir} / name;
  }

  /// Opens a disk entry and verifies header + embedded key (collision
  /// safety); leaves the stream positioned at the payload.
  bool disk_open(const std::string& dir, const std::string& key,
                 std::ifstream& in) const {
    if (dir.empty()) return false;
    in.open(entry_path(dir, key));
    if (!in) return false;
    std::string line;
    if (!std::getline(in, line) || line != kDiskHeader) return false;
    if (!std::getline(in, line) || line != "key " + key) return false;
    return true;
  }

  /// Moves a failed-validation entry aside (<entry>.corrupt) so the
  /// next run is a clean miss instead of re-tripping on the same bytes,
  /// and keeps the evidence for a postmortem.
  void quarantine(const std::filesystem::path& path, std::uint64_t* corrupt) {
    std::error_code ec;
    std::filesystem::rename(path, path.string() + ".corrupt", ec);
    if (ec) std::filesystem::remove(path, ec);
    ++*corrupt;
    corrupt_ctr.add();
  }

  bool disk_load(const std::string& dir, const std::string& key,
                 GroupResult* out, std::uint64_t* corrupt) {
    if (dir.empty()) return false;
    const auto path = entry_path(dir, key);
    std::ifstream in{path};
    if (!in) return false;
    std::string line;
    // A wrong header is corruption (or a stale format): quarantine. A
    // wrong key is a hash collision with some OTHER valid entry --
    // plain miss, leave it alone.
    if (!std::getline(in, line) || line != kDiskHeader) {
      quarantine(path, corrupt);
      return false;
    }
    if (!std::getline(in, line) || line != "key " + key) return false;
    std::string sum;
    if (!std::getline(in, sum) || sum.rfind("sum ", 0) != 0) {
      quarantine(path, corrupt);
      return false;
    }
    std::ostringstream rest;
    rest << in.rdbuf();
    const std::string payload = rest.str();
    std::istringstream body{payload};
    if (sum != checksum_line(payload) || !get_group(body, *out)) {
      quarantine(path, corrupt);
      return false;
    }
    return true;
  }

  void disk_store(const std::string& dir, const std::string& key,
                  const GroupResult& v) {
    if (dir.empty()) return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const auto path = entry_path(dir, key);
    const auto tmp = path.string() + ".tmp" + std::to_string(::getpid());
    std::ostringstream body;
    put_group(body, v);
    const std::string payload = body.str();
    {
      std::ofstream out{tmp};
      if (!out) return;
      out << kDiskHeader << "\nkey " << key << '\n'
          << checksum_line(payload) << '\n'
          << payload;
      if (!out) {
        std::filesystem::remove(tmp, ec);
        return;
      }
    }
    std::filesystem::rename(tmp, path, ec);  // atomic publish
    if (ec) std::filesystem::remove(tmp, ec);
  }
};

RunCache::RunCache() : impl_(new Impl) {
  if (const char* off = std::getenv("COPERF_RUN_CACHE");
      off != nullptr && std::string_view{off} == "0")
    enabled_ = false;
  if (const char* dir = std::getenv("COPERF_RUN_CACHE_DIR");
      dir != nullptr && *dir != '\0')
    disk_dir_ = dir;
}

RunCache& RunCache::instance() {
  static RunCache cache;
  return cache;
}

RunCache::Stats RunCache::stats() const {
  std::lock_guard lock{impl_->mu};
  return impl_->stats;
}

void RunCache::reset_stats() {
  std::lock_guard lock{impl_->mu};
  impl_->stats = Stats{};
}

void RunCache::clear() {
  std::lock_guard lock{impl_->mu};
  impl_->groups.clear();
}

void RunCache::clear_disk() {
  std::lock_guard lock{impl_->mu};
  if (disk_dir_.empty()) return;
  std::error_code ec;
  for (const auto& e :
       std::filesystem::directory_iterator{disk_dir_, ec}) {
    if (e.path().extension() == ".run" || e.path().extension() == ".corrupt")
      std::filesystem::remove(e.path(), ec);
  }
}

void RunCache::set_disk_dir(std::string dir) {
  std::lock_guard lock{impl_->mu};
  disk_dir_ = std::move(dir);
}

bool RunCache::lookup(const std::string& key, GroupResult* out) {
  std::lock_guard lock{impl_->mu};
  if (auto it = impl_->groups.find(key); it != impl_->groups.end()) {
    ++impl_->stats.hits;
    impl_->hits_ctr.add();
    *out = it->second;
    return true;
  }
  if (impl_->disk_load(disk_dir_, key, out, &impl_->stats.corrupt)) {
    ++impl_->stats.disk_hits;
    impl_->disk_hits_ctr.add();
    impl_->groups.emplace(key, *out);
    return true;
  }
  ++impl_->stats.misses;
  impl_->misses_ctr.add();
  return false;
}

void RunCache::store(const std::string& key, const GroupResult& r) {
  std::lock_guard lock{impl_->mu};
  impl_->groups.emplace(key, r);
  impl_->stores_ctr.add();
  impl_->disk_store(disk_dir_, key, r);
}

bool RunCache::contains(const std::string& key) const {
  std::lock_guard lock{impl_->mu};
  if (impl_->groups.count(key) != 0) return true;
  std::ifstream in;
  return impl_->disk_open(disk_dir_, key, in);
}

std::string RunCache::machine_fingerprint(const sim::MachineConfig& m) {
  std::ostringstream os;
  const auto cache = [&](const sim::CacheConfig& c) {
    os << c.size_bytes << ',' << c.assoc << ',' << c.latency_cycles << ','
       << c.line_bytes << ';';
  };
  os << "cores=" << m.num_cores << ";freq=" << fmt_double(m.freq_ghz) << ";l1=";
  cache(m.l1d);
  os << "l2=";
  cache(m.l2);
  os << "l3=";
  cache(m.l3);
  os << "incl=" << m.l3_inclusive << ";bw=" << fmt_double(m.peak_bw_gbs)
     << ";corebw=" << fmt_double(m.per_core_bw_gbs)
     << ";dram=" << m.dram_latency_cycles << ";mshr=" << m.mshr_per_core
     << ";sb=" << m.store_buffer << ";rob=" << m.rob_instructions
     << ";q=" << m.quantum_cycles << ";pf=" << m.prefetch.l2_stream
     << m.prefetch.l2_adjacent << m.prefetch.l1_next_line
     << m.prefetch.l1_ip_stride << ";deg=" << m.streamer_degree
     << ";train=" << m.streamer_train << ";scale=" << m.scale;
  return os.str();
}

std::string RunCache::group_key(const GroupSpec& spec, const RunOptions& opt) {
  std::ostringstream os;
  os << "group";
  for (const MemberSpec& m : spec.members) {
    os << '|' << m.workload << ':' << m.threads << ":s"
       << static_cast<int>(m.size.value_or(opt.size)) << ':'
       << (m.restart_until_done ? 'r' : 'f');
  }
  os << "|seed=" << opt.seed << "|sw=" << opt.sample_window
     << "|cl=" << opt.cycle_limit << "|mach{" << machine_fingerprint(opt.machine)
     << "}";
  return os.str();
}

std::string RunCache::solo_key(std::string_view workload,
                               const RunOptions& opt) {
  return group_key(GroupSpec::solo(std::string{workload}, opt.threads), opt);
}

std::string RunCache::pair_key(std::string_view fg, std::string_view bg,
                               const RunOptions& opt) {
  return group_key(GroupSpec::pair(std::string{fg}, std::string{bg},
                                   opt.threads, opt.bg_threads),
                   opt);
}

}  // namespace coperf::harness
