#include "harness/bubble.hpp"

#include <algorithm>
#include <stdexcept>

namespace coperf::harness {

double SensitivityCurve::at(double gbs) const {
  if (pressure_gbs.empty()) return 1.0;
  if (gbs <= pressure_gbs.front()) return slowdown.front();
  for (std::size_t i = 1; i < pressure_gbs.size(); ++i) {
    if (gbs <= pressure_gbs[i]) {
      const double t = (gbs - pressure_gbs[i - 1]) /
                       (pressure_gbs[i] - pressure_gbs[i - 1]);
      return slowdown[i - 1] + t * (slowdown[i] - slowdown[i - 1]);
    }
  }
  return slowdown.back();
}

double SensitivityCurve::sensitivity_score() const {
  if (slowdown.empty()) return 1.0;
  double sum = 0.0;
  for (double s : slowdown) sum += s;
  return sum / static_cast<double>(slowdown.size());
}

namespace {

/// The bubble stressor is Stream scaled by thread count: one Stream
/// thread delivers roughly the per-core bandwidth limit, so the bubble
/// dial picks how many of the complementary cores run it. (Throttling
/// the per-core gate instead would throttle the probed foreground too.)
RunOptions bubble_options(const RunOptions& base, double bubble_gbs) {
  RunOptions o = base;
  const unsigned max_bg = base.machine.num_cores - base.threads;
  const double per_thread = base.machine.per_core_bw_gbs;
  const auto want = static_cast<unsigned>(bubble_gbs / per_thread + 0.999);
  o.bg_threads = std::clamp(want, 1u, max_bg);
  return o;
}

}  // namespace

SensitivityCurve sensitivity_curve(std::string_view workload,
                                   const std::vector<double>& pressures_gbs,
                                   const RunOptions& opt) {
  if (pressures_gbs.empty())
    throw std::invalid_argument{"sensitivity_curve: no pressures given"};
  SensitivityCurve c;
  c.workload = std::string{workload};
  const RunResult solo = run_solo(workload, opt);
  for (double gbs : pressures_gbs) {
    // NOTE: throttling via the per-core gate also throttles the
    // foreground; to keep the probe clean we instead scale the bubble's
    // own thread count and measure the delivered pressure.
    const CorunResult r = run_pair(workload, "Stream", bubble_options(opt, gbs));
    c.pressure_gbs.push_back(r.bg_avg_bw_gbs);
    c.slowdown.push_back(static_cast<double>(r.fg.cycles) /
                         static_cast<double>(solo.cycles));
  }
  // Keep the curve sorted by delivered pressure for interpolation.
  std::vector<std::size_t> idx(c.pressure_gbs.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return c.pressure_gbs[a] < c.pressure_gbs[b];
  });
  SensitivityCurve sorted;
  sorted.workload = c.workload;
  for (std::size_t i : idx) {
    sorted.pressure_gbs.push_back(c.pressure_gbs[i]);
    sorted.slowdown.push_back(c.slowdown[i]);
  }
  return sorted;
}

PressureScore pressure_score(std::string_view workload, const RunOptions& opt,
                             double reference_bubble_gbs) {
  PressureScore p;
  p.workload = std::string{workload};
  p.solo_bw_gbs = run_solo(workload, opt).avg_bw_gbs;
  // Run the subject as FOREGROUND against the reference bubble and
  // measure the bandwidth it still claims -- applications that keep
  // pulling bandwidth under contention are the ones that pressure
  // everyone else.
  const CorunResult r =
      run_pair(workload, "Stream", bubble_options(opt, reference_bubble_gbs));
  p.contended_bw_gbs = r.fg.avg_bw_gbs;
  return p;
}

double predict_slowdown(const SensitivityCurve& victim,
                        const PressureScore& aggressor) {
  return victim.at(aggressor.score());
}

}  // namespace coperf::harness
