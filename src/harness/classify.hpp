// Co-running pair classification (paper Section V): Harmony,
// Victim-Offender, Both-Victim at the paper's 1.5x slowdown threshold.
#pragma once

#include <string>

namespace coperf::harness {

enum class PairClass { Harmony, VictimOffender, BothVictim };

const char* to_string(PairClass c);

inline constexpr double kVictimThreshold = 1.5;

/// Classifies the unordered pair (A, B) from both orderings'
/// foreground slowdowns: slowdown_a = t(A fg, B bg) / t(A solo) and
/// vice versa.
PairClass classify_pair(double slowdown_a, double slowdown_b,
                        double threshold = kVictimThreshold);

/// For a Victim-Offender pair, names the victim ("" if not V-O).
std::string victim_of(const std::string& a, const std::string& b,
                      double slowdown_a, double slowdown_b,
                      double threshold = kVictimThreshold);

}  // namespace coperf::harness
