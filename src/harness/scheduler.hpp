// Interference-aware co-scheduling (extension).
//
// The paper motivates its characterization with exactly this use case
// (Section I / II-B: "task scheduling techniques ... avoid the
// co-location of interfering workloads"). Given a measured or predicted
// co-run matrix, this module pairs 2k jobs onto k machines so that total
// (or worst-case) slowdown is minimized, and reports the improvement
// over random and worst-case pairings -- the consolidation-quality
// metric warehouse schedulers care about.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "harness/matrix.hpp"

namespace coperf::harness {

struct Pairing {
  std::size_t a = 0;  ///< index into the matrix's workload list
  std::size_t b = 0;
  double cost = 0.0;  ///< slowdown(a|b) + slowdown(b|a)
};

struct Schedule {
  std::vector<Pairing> pairs;
  double total_cost = 0.0;     ///< sum of pair costs
  double worst_slowdown = 0.0; ///< max single-sided slowdown
  PairClass worst_class = PairClass::Harmony;
};

/// Slowdown of `job` co-resident with `others` on one machine: pairwise
/// excess slowdowns compose additively (each co-runner independently
/// steals its share of the channel/LLC), clamped to >= 1.0. With a
/// single co-runner this is exactly the matrix entry.
double corun_slowdown(const CorunMatrix& m, std::size_t job,
                      const std::vector<std::size_t>& others);

/// Cost of one machine's resident group: the sum of every member's
/// corun_slowdown against the rest (|group| == perfectly harmonious).
/// This is the billing primitive shared by the pairwise matcher below
/// and the cluster-scale scheduler (src/cluster/).
double group_cost(const CorunMatrix& m, const std::vector<std::size_t>& group);

/// Pair cost = normalized runtime of a with b in the background plus
/// vice versa (2.0 == perfectly harmonious) -- group_cost of the
/// two-slot group {a, b}, kept direct because the matchers call it in
/// O(n^2) loops.
double pair_cost(const CorunMatrix& m, std::size_t a, std::size_t b);

/// Re-prices an existing pairing at this matrix's rates and rebuilds
/// the schedule aggregates -- used to bill a plan made on one matrix
/// (e.g. a predicted one) at another matrix's (measured) cost.
Schedule bill_pairs(const CorunMatrix& m, std::vector<Pairing> pairs);

/// Greedy min-cost matching: repeatedly pair the two remaining jobs
/// with the smallest mutual slowdown. O(n^2 log n), near-optimal for
/// the matrices this produces. `jobs` indexes into m.workloads; must
/// have even size.
Schedule schedule_greedy(const CorunMatrix& m,
                         const std::vector<std::size_t>& jobs);

/// Exhaustive optimal matching (exact, O(n!!)) -- for <= 10 jobs; used
/// to validate the greedy heuristic in tests.
Schedule schedule_optimal(const CorunMatrix& m,
                          const std::vector<std::size_t>& jobs);

/// Adversarial baseline: maximize cost (what a bad scheduler could
/// do). Exact for <= 12 jobs -- a true upper bound on any matching --
/// greedy max-cost heuristic beyond.
Schedule schedule_worst(const CorunMatrix& m,
                        const std::vector<std::size_t>& jobs);

/// Summary of the scheduling value of the characterization:
/// greedy vs. optimal vs. worst total slowdown for a set of jobs.
struct SchedulingStudy {
  Schedule greedy;
  Schedule worst;
  double improvement = 0.0;  ///< worst.total_cost / greedy.total_cost
};

SchedulingStudy scheduling_study(const CorunMatrix& m,
                                 const std::vector<std::size_t>& jobs);

}  // namespace coperf::harness
