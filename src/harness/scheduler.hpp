// Interference-aware co-scheduling (extension).
//
// The paper motivates its characterization with exactly this use case
// (Section I / II-B: "task scheduling techniques ... avoid the
// co-location of interfering workloads"). Given a measured or predicted
// co-run matrix, this module pairs 2k jobs onto k machines so that total
// (or worst-case) slowdown is minimized, and reports the improvement
// over random and worst-case pairings -- the consolidation-quality
// metric warehouse schedulers care about.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "harness/matrix.hpp"

namespace coperf::harness {

struct Pairing {
  std::size_t a = 0;  ///< index into the matrix's workload list
  std::size_t b = 0;
  double cost = 0.0;  ///< slowdown(a|b) + slowdown(b|a)
};

struct Schedule {
  std::vector<Pairing> pairs;
  double total_cost = 0.0;     ///< sum of pair costs
  double worst_slowdown = 0.0; ///< max single-sided slowdown
  PairClass worst_class = PairClass::Harmony;
};

/// Pair cost = normalized runtime of a with b in the background plus
/// vice versa (2.0 == perfectly harmonious).
double pair_cost(const CorunMatrix& m, std::size_t a, std::size_t b);

/// Re-prices an existing pairing at this matrix's rates and rebuilds
/// the schedule aggregates -- used to bill a plan made on one matrix
/// (e.g. a predicted one) at another matrix's (measured) cost.
Schedule bill_pairs(const CorunMatrix& m, std::vector<Pairing> pairs);

/// Greedy min-cost matching: repeatedly pair the two remaining jobs
/// with the smallest mutual slowdown. O(n^2 log n), near-optimal for
/// the matrices this produces. `jobs` indexes into m.workloads; must
/// have even size.
Schedule schedule_greedy(const CorunMatrix& m,
                         const std::vector<std::size_t>& jobs);

/// Exhaustive optimal matching (exact, O(n!!)) -- for <= 10 jobs; used
/// to validate the greedy heuristic in tests.
Schedule schedule_optimal(const CorunMatrix& m,
                          const std::vector<std::size_t>& jobs);

/// Adversarial baseline: maximize cost (what a bad scheduler could do).
Schedule schedule_worst(const CorunMatrix& m,
                        const std::vector<std::size_t>& jobs);

/// Summary of the scheduling value of the characterization:
/// greedy vs. optimal vs. worst total slowdown for a set of jobs.
struct SchedulingStudy {
  Schedule greedy;
  Schedule worst;
  double improvement = 0.0;  ///< worst.total_cost / greedy.total_cost
};

SchedulingStudy scheduling_study(const CorunMatrix& m,
                                 const std::vector<std::size_t>& jobs);

}  // namespace coperf::harness
