// Small deterministic RNG utilities. Every workload model is seeded
// explicitly so whole experiments are reproducible bit-for-bit; the
// paper's "three repeated runs" become three seeds.
#pragma once

#include <cstdint>

namespace coperf::util {

/// SplitMix64 -- tiny, fast, and statistically solid for simulation use.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound) without modulo bias worth caring about here.
  constexpr std::uint64_t below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Derives an independent stream (for per-thread RNGs).
  constexpr SplitMix64 split(std::uint64_t salt) const {
    SplitMix64 s{state_ ^ (salt * 0xD2B74407B1CE6E93ull + 0x9E3779B97F4A7C15ull)};
    (void)s.next();
    return s;
  }

 private:
  std::uint64_t state_;
};

/// Hash two 64-bit values into one seed (stable across platforms).
constexpr std::uint64_t seed_combine(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a * 0x9E3779B97F4A7C15ull + b;
  x ^= x >> 32;
  x *= 0xD6E8FEB86659FD93ull;
  x ^= x >> 32;
  return x;
}

}  // namespace coperf::util
