# Empty dependencies file for plan_test.
# This may be replaced when dependencies are built.
