file(REMOVE_RECURSE
  "CMakeFiles/plan_test.dir/tests/plan_test.cpp.o"
  "CMakeFiles/plan_test.dir/tests/plan_test.cpp.o.d"
  "plan_test"
  "plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
