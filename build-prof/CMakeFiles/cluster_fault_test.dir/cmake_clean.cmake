file(REMOVE_RECURSE
  "CMakeFiles/cluster_fault_test.dir/tests/cluster_fault_test.cpp.o"
  "CMakeFiles/cluster_fault_test.dir/tests/cluster_fault_test.cpp.o.d"
  "cluster_fault_test"
  "cluster_fault_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
