file(REMOVE_RECURSE
  "CMakeFiles/wl_suite_behavior_test.dir/tests/wl_suite_behavior_test.cpp.o"
  "CMakeFiles/wl_suite_behavior_test.dir/tests/wl_suite_behavior_test.cpp.o.d"
  "wl_suite_behavior_test"
  "wl_suite_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_suite_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
