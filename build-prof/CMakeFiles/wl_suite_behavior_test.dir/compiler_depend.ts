# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for wl_suite_behavior_test.
