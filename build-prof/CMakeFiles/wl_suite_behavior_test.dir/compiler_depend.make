# Empty compiler generated dependencies file for wl_suite_behavior_test.
# This may be replaced when dependencies are built.
