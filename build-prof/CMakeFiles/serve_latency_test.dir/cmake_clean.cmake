file(REMOVE_RECURSE
  "CMakeFiles/serve_latency_test.dir/tests/serve_latency_test.cpp.o"
  "CMakeFiles/serve_latency_test.dir/tests/serve_latency_test.cpp.o.d"
  "serve_latency_test"
  "serve_latency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
