# Empty dependencies file for serve_latency_test.
# This may be replaced when dependencies are built.
