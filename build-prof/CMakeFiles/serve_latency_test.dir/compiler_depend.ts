# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for serve_latency_test.
