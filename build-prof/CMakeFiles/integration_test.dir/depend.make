# Empty dependencies file for integration_test.
# This may be replaced when dependencies are built.
