file(REMOVE_RECURSE
  "CMakeFiles/integration_test.dir/tests/integration_test.cpp.o"
  "CMakeFiles/integration_test.dir/tests/integration_test.cpp.o.d"
  "integration_test"
  "integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
