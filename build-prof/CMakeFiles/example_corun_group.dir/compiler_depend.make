# Empty compiler generated dependencies file for example_corun_group.
# This may be replaced when dependencies are built.
