file(REMOVE_RECURSE
  "CMakeFiles/example_corun_group.dir/examples/corun_group.cpp.o"
  "CMakeFiles/example_corun_group.dir/examples/corun_group.cpp.o.d"
  "example_corun_group"
  "example_corun_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_corun_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
