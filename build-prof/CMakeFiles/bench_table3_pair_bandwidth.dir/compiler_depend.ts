# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_table3_pair_bandwidth.
