file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_pair_bandwidth.dir/bench/table3_pair_bandwidth.cpp.o"
  "CMakeFiles/bench_table3_pair_bandwidth.dir/bench/table3_pair_bandwidth.cpp.o.d"
  "bench_table3_pair_bandwidth"
  "bench_table3_pair_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_pair_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
