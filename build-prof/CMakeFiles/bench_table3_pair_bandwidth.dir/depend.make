# Empty dependencies file for bench_table3_pair_bandwidth.
# This may be replaced when dependencies are built.
