# Empty dependencies file for sim_machine_test.
# This may be replaced when dependencies are built.
