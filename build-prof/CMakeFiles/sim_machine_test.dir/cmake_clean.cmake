file(REMOVE_RECURSE
  "CMakeFiles/sim_machine_test.dir/tests/sim_machine_test.cpp.o"
  "CMakeFiles/sim_machine_test.dir/tests/sim_machine_test.cpp.o.d"
  "sim_machine_test"
  "sim_machine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
