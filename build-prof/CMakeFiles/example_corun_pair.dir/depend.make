# Empty dependencies file for example_corun_pair.
# This may be replaced when dependencies are built.
