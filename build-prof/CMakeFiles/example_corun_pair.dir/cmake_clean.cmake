file(REMOVE_RECURSE
  "CMakeFiles/example_corun_pair.dir/examples/corun_pair.cpp.o"
  "CMakeFiles/example_corun_pair.dir/examples/corun_pair.cpp.o.d"
  "example_corun_pair"
  "example_corun_pair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_corun_pair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
