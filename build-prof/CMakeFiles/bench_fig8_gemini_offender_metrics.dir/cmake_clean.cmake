file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_gemini_offender_metrics.dir/bench/fig8_gemini_offender_metrics.cpp.o"
  "CMakeFiles/bench_fig8_gemini_offender_metrics.dir/bench/fig8_gemini_offender_metrics.cpp.o.d"
  "bench_fig8_gemini_offender_metrics"
  "bench_fig8_gemini_offender_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_gemini_offender_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
