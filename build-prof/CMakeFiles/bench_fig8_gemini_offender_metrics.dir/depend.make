# Empty dependencies file for bench_fig8_gemini_offender_metrics.
# This may be replaced when dependencies are built.
