# Empty dependencies file for bench_fig4_prefetch_sensitivity.
# This may be replaced when dependencies are built.
