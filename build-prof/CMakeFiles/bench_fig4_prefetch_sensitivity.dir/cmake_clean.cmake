file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_prefetch_sensitivity.dir/bench/fig4_prefetch_sensitivity.cpp.o"
  "CMakeFiles/bench_fig4_prefetch_sensitivity.dir/bench/fig4_prefetch_sensitivity.cpp.o.d"
  "bench_fig4_prefetch_sensitivity"
  "bench_fig4_prefetch_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_prefetch_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
