# Empty dependencies file for cluster_test.
# This may be replaced when dependencies are built.
