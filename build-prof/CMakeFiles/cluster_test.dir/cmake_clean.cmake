file(REMOVE_RECURSE
  "CMakeFiles/cluster_test.dir/tests/cluster_test.cpp.o"
  "CMakeFiles/cluster_test.dir/tests/cluster_test.cpp.o.d"
  "cluster_test"
  "cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
