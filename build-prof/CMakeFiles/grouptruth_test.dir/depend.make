# Empty dependencies file for grouptruth_test.
# This may be replaced when dependencies are built.
