file(REMOVE_RECURSE
  "CMakeFiles/grouptruth_test.dir/tests/grouptruth_test.cpp.o"
  "CMakeFiles/grouptruth_test.dir/tests/grouptruth_test.cpp.o.d"
  "grouptruth_test"
  "grouptruth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouptruth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
