file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_throughput.dir/bench/sim_throughput.cpp.o"
  "CMakeFiles/bench_sim_throughput.dir/bench/sim_throughput.cpp.o.d"
  "bench_sim_throughput"
  "bench_sim_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
