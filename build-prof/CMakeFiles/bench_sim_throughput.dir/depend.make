# Empty dependencies file for bench_sim_throughput.
# This may be replaced when dependencies are built.
