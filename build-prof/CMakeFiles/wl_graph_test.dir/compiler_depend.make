# Empty compiler generated dependencies file for wl_graph_test.
# This may be replaced when dependencies are built.
