file(REMOVE_RECURSE
  "CMakeFiles/wl_graph_test.dir/tests/wl_graph_test.cpp.o"
  "CMakeFiles/wl_graph_test.dir/tests/wl_graph_test.cpp.o.d"
  "wl_graph_test"
  "wl_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
