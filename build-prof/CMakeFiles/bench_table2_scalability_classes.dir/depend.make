# Empty dependencies file for bench_table2_scalability_classes.
# This may be replaced when dependencies are built.
