file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_scalability_classes.dir/bench/table2_scalability_classes.cpp.o"
  "CMakeFiles/bench_table2_scalability_classes.dir/bench/table2_scalability_classes.cpp.o.d"
  "bench_table2_scalability_classes"
  "bench_table2_scalability_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_scalability_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
