# Empty dependencies file for sim_prefetcher_test.
# This may be replaced when dependencies are built.
