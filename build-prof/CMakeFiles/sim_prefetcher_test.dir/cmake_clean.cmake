file(REMOVE_RECURSE
  "CMakeFiles/sim_prefetcher_test.dir/tests/sim_prefetcher_test.cpp.o"
  "CMakeFiles/sim_prefetcher_test.dir/tests/sim_prefetcher_test.cpp.o.d"
  "sim_prefetcher_test"
  "sim_prefetcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_prefetcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
