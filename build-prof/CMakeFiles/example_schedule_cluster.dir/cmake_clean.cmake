file(REMOVE_RECURSE
  "CMakeFiles/example_schedule_cluster.dir/examples/schedule_cluster.cpp.o"
  "CMakeFiles/example_schedule_cluster.dir/examples/schedule_cluster.cpp.o.d"
  "example_schedule_cluster"
  "example_schedule_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_schedule_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
