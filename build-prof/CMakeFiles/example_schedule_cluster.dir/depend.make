# Empty dependencies file for example_schedule_cluster.
# This may be replaced when dependencies are built.
