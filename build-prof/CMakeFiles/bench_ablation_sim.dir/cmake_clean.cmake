file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sim.dir/bench/ablation_sim.cpp.o"
  "CMakeFiles/bench_ablation_sim.dir/bench/ablation_sim.cpp.o.d"
  "bench_ablation_sim"
  "bench_ablation_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
