# Empty compiler generated dependencies file for bench_ablation_sim.
# This may be replaced when dependencies are built.
