file(REMOVE_RECURSE
  "CMakeFiles/extensions_test.dir/tests/extensions_test.cpp.o"
  "CMakeFiles/extensions_test.dir/tests/extensions_test.cpp.o.d"
  "extensions_test"
  "extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
