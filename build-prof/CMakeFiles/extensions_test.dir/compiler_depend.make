# Empty compiler generated dependencies file for extensions_test.
# This may be replaced when dependencies are built.
