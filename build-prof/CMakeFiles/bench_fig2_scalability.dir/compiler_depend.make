# Empty compiler generated dependencies file for bench_fig2_scalability.
# This may be replaced when dependencies are built.
