file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_scalability.dir/bench/fig2_scalability.cpp.o"
  "CMakeFiles/bench_fig2_scalability.dir/bench/fig2_scalability.cpp.o.d"
  "bench_fig2_scalability"
  "bench_fig2_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
