# Empty compiler generated dependencies file for wl_framework_test.
# This may be replaced when dependencies are built.
