file(REMOVE_RECURSE
  "CMakeFiles/wl_framework_test.dir/tests/wl_framework_test.cpp.o"
  "CMakeFiles/wl_framework_test.dir/tests/wl_framework_test.cpp.o.d"
  "wl_framework_test"
  "wl_framework_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_framework_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
