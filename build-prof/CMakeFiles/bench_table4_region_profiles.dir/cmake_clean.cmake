file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_region_profiles.dir/bench/table4_region_profiles.cpp.o"
  "CMakeFiles/bench_table4_region_profiles.dir/bench/table4_region_profiles.cpp.o.d"
  "bench_table4_region_profiles"
  "bench_table4_region_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_region_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
