# Empty compiler generated dependencies file for bench_table4_region_profiles.
# This may be replaced when dependencies are built.
