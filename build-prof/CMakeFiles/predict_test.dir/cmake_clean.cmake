file(REMOVE_RECURSE
  "CMakeFiles/predict_test.dir/tests/predict_test.cpp.o"
  "CMakeFiles/predict_test.dir/tests/predict_test.cpp.o.d"
  "predict_test"
  "predict_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
