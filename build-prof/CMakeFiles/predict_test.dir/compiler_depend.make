# Empty compiler generated dependencies file for predict_test.
# This may be replaced when dependencies are built.
