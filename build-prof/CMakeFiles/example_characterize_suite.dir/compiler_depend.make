# Empty compiler generated dependencies file for example_characterize_suite.
# This may be replaced when dependencies are built.
