file(REMOVE_RECURSE
  "CMakeFiles/example_characterize_suite.dir/examples/characterize_suite.cpp.o"
  "CMakeFiles/example_characterize_suite.dir/examples/characterize_suite.cpp.o.d"
  "example_characterize_suite"
  "example_characterize_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_characterize_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
