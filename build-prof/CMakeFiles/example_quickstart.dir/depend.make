# Empty dependencies file for example_quickstart.
# This may be replaced when dependencies are built.
