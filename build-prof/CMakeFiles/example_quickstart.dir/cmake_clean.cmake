file(REMOVE_RECURSE
  "CMakeFiles/example_quickstart.dir/examples/quickstart.cpp.o"
  "CMakeFiles/example_quickstart.dir/examples/quickstart.cpp.o.d"
  "example_quickstart"
  "example_quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
