# Empty dependencies file for bench_fig7_gemini_stream_metrics.
# This may be replaced when dependencies are built.
