file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_gemini_stream_metrics.dir/bench/fig7_gemini_stream_metrics.cpp.o"
  "CMakeFiles/bench_fig7_gemini_stream_metrics.dir/bench/fig7_gemini_stream_metrics.cpp.o.d"
  "bench_fig7_gemini_stream_metrics"
  "bench_fig7_gemini_stream_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_gemini_stream_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
