# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig7_gemini_stream_metrics.
