# Empty dependencies file for sim_memory_test.
# This may be replaced when dependencies are built.
