file(REMOVE_RECURSE
  "CMakeFiles/sim_memory_test.dir/tests/sim_memory_test.cpp.o"
  "CMakeFiles/sim_memory_test.dir/tests/sim_memory_test.cpp.o.d"
  "sim_memory_test"
  "sim_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
