# Empty compiler generated dependencies file for bench_fig5_corun_heatmap.
# This may be replaced when dependencies are built.
