file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_corun_heatmap.dir/bench/fig5_corun_heatmap.cpp.o"
  "CMakeFiles/bench_fig5_corun_heatmap.dir/bench/fig5_corun_heatmap.cpp.o.d"
  "bench_fig5_corun_heatmap"
  "bench_fig5_corun_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_corun_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
