# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig5_corun_heatmap.
