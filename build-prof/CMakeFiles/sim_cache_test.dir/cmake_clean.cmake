file(REMOVE_RECURSE
  "CMakeFiles/sim_cache_test.dir/tests/sim_cache_test.cpp.o"
  "CMakeFiles/sim_cache_test.dir/tests/sim_cache_test.cpp.o.d"
  "sim_cache_test"
  "sim_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
