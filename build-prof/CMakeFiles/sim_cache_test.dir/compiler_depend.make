# Empty compiler generated dependencies file for sim_cache_test.
# This may be replaced when dependencies are built.
