file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_bandwidth.dir/bench/fig3_bandwidth.cpp.o"
  "CMakeFiles/bench_fig3_bandwidth.dir/bench/fig3_bandwidth.cpp.o.d"
  "bench_fig3_bandwidth"
  "bench_fig3_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
