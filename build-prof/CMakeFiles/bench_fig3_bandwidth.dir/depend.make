# Empty dependencies file for bench_fig3_bandwidth.
# This may be replaced when dependencies are built.
