# Empty dependencies file for bench_fig6_minibench_corun.
# This may be replaced when dependencies are built.
