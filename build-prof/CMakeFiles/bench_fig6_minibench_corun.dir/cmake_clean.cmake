file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_minibench_corun.dir/bench/fig6_minibench_corun.cpp.o"
  "CMakeFiles/bench_fig6_minibench_corun.dir/bench/fig6_minibench_corun.cpp.o.d"
  "bench_fig6_minibench_corun"
  "bench_fig6_minibench_corun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_minibench_corun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
