file(REMOVE_RECURSE
  "CMakeFiles/perf_test.dir/tests/perf_test.cpp.o"
  "CMakeFiles/perf_test.dir/tests/perf_test.cpp.o.d"
  "perf_test"
  "perf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
