# Empty dependencies file for perf_test.
# This may be replaced when dependencies are built.
