file(REMOVE_RECURSE
  "CMakeFiles/bench_cluster_regret.dir/bench/cluster_regret.cpp.o"
  "CMakeFiles/bench_cluster_regret.dir/bench/cluster_regret.cpp.o.d"
  "bench_cluster_regret"
  "bench_cluster_regret.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cluster_regret.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
