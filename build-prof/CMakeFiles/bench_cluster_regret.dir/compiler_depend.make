# Empty compiler generated dependencies file for bench_cluster_regret.
# This may be replaced when dependencies are built.
