file(REMOVE_RECURSE
  "CMakeFiles/wl_models_test.dir/tests/wl_models_test.cpp.o"
  "CMakeFiles/wl_models_test.dir/tests/wl_models_test.cpp.o.d"
  "wl_models_test"
  "wl_models_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wl_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
