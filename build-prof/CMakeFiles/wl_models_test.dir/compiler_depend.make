# Empty compiler generated dependencies file for wl_models_test.
# This may be replaced when dependencies are built.
