# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cluster_fleet_test.
