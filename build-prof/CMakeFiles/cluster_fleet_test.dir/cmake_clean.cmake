file(REMOVE_RECURSE
  "CMakeFiles/cluster_fleet_test.dir/tests/cluster_fleet_test.cpp.o"
  "CMakeFiles/cluster_fleet_test.dir/tests/cluster_fleet_test.cpp.o.d"
  "cluster_fleet_test"
  "cluster_fleet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_fleet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
