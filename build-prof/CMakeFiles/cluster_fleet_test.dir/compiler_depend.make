# Empty compiler generated dependencies file for cluster_fleet_test.
# This may be replaced when dependencies are built.
