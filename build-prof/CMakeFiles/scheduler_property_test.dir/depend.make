# Empty dependencies file for scheduler_property_test.
# This may be replaced when dependencies are built.
