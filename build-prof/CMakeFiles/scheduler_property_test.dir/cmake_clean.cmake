file(REMOVE_RECURSE
  "CMakeFiles/scheduler_property_test.dir/tests/scheduler_property_test.cpp.o"
  "CMakeFiles/scheduler_property_test.dir/tests/scheduler_property_test.cpp.o.d"
  "scheduler_property_test"
  "scheduler_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
