# Empty dependencies file for sim_properties_test.
# This may be replaced when dependencies are built.
