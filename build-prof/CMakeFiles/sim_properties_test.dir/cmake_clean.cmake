file(REMOVE_RECURSE
  "CMakeFiles/sim_properties_test.dir/tests/sim_properties_test.cpp.o"
  "CMakeFiles/sim_properties_test.dir/tests/sim_properties_test.cpp.o.d"
  "sim_properties_test"
  "sim_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
