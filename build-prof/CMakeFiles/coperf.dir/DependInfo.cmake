
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cpp" "CMakeFiles/coperf.dir/src/cluster/cluster.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/cluster/cluster.cpp.o.d"
  "/root/repo/src/cluster/placement.cpp" "CMakeFiles/coperf.dir/src/cluster/placement.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/cluster/placement.cpp.o.d"
  "/root/repo/src/cluster/trace.cpp" "CMakeFiles/coperf.dir/src/cluster/trace.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/cluster/trace.cpp.o.d"
  "/root/repo/src/core/session.cpp" "CMakeFiles/coperf.dir/src/core/session.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/core/session.cpp.o.d"
  "/root/repo/src/harness/bubble.cpp" "CMakeFiles/coperf.dir/src/harness/bubble.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/harness/bubble.cpp.o.d"
  "/root/repo/src/harness/classify.cpp" "CMakeFiles/coperf.dir/src/harness/classify.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/harness/classify.cpp.o.d"
  "/root/repo/src/harness/group.cpp" "CMakeFiles/coperf.dir/src/harness/group.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/harness/group.cpp.o.d"
  "/root/repo/src/harness/grouptruth.cpp" "CMakeFiles/coperf.dir/src/harness/grouptruth.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/harness/grouptruth.cpp.o.d"
  "/root/repo/src/harness/manifest.cpp" "CMakeFiles/coperf.dir/src/harness/manifest.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/harness/manifest.cpp.o.d"
  "/root/repo/src/harness/matrix.cpp" "CMakeFiles/coperf.dir/src/harness/matrix.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/harness/matrix.cpp.o.d"
  "/root/repo/src/harness/parallel.cpp" "CMakeFiles/coperf.dir/src/harness/parallel.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/harness/parallel.cpp.o.d"
  "/root/repo/src/harness/plan.cpp" "CMakeFiles/coperf.dir/src/harness/plan.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/harness/plan.cpp.o.d"
  "/root/repo/src/harness/prefetch_study.cpp" "CMakeFiles/coperf.dir/src/harness/prefetch_study.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/harness/prefetch_study.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "CMakeFiles/coperf.dir/src/harness/report.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/harness/report.cpp.o.d"
  "/root/repo/src/harness/runcache.cpp" "CMakeFiles/coperf.dir/src/harness/runcache.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/harness/runcache.cpp.o.d"
  "/root/repo/src/harness/runner.cpp" "CMakeFiles/coperf.dir/src/harness/runner.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/harness/runner.cpp.o.d"
  "/root/repo/src/harness/scalability.cpp" "CMakeFiles/coperf.dir/src/harness/scalability.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/harness/scalability.cpp.o.d"
  "/root/repo/src/harness/scheduler.cpp" "CMakeFiles/coperf.dir/src/harness/scheduler.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/harness/scheduler.cpp.o.d"
  "/root/repo/src/obs/metrics.cpp" "CMakeFiles/coperf.dir/src/obs/metrics.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/obs/metrics.cpp.o.d"
  "/root/repo/src/obs/trace.cpp" "CMakeFiles/coperf.dir/src/obs/trace.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/obs/trace.cpp.o.d"
  "/root/repo/src/perf/pcm.cpp" "CMakeFiles/coperf.dir/src/perf/pcm.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/perf/pcm.cpp.o.d"
  "/root/repo/src/perf/profiler.cpp" "CMakeFiles/coperf.dir/src/perf/profiler.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/perf/profiler.cpp.o.d"
  "/root/repo/src/predict/deconvolve.cpp" "CMakeFiles/coperf.dir/src/predict/deconvolve.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/predict/deconvolve.cpp.o.d"
  "/root/repo/src/predict/eval.cpp" "CMakeFiles/coperf.dir/src/predict/eval.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/predict/eval.cpp.o.d"
  "/root/repo/src/predict/model.cpp" "CMakeFiles/coperf.dir/src/predict/model.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/predict/model.cpp.o.d"
  "/root/repo/src/predict/predicted_matrix.cpp" "CMakeFiles/coperf.dir/src/predict/predicted_matrix.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/predict/predicted_matrix.cpp.o.d"
  "/root/repo/src/predict/signature.cpp" "CMakeFiles/coperf.dir/src/predict/signature.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/predict/signature.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "CMakeFiles/coperf.dir/src/sim/cache.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/sim/cache.cpp.o.d"
  "/root/repo/src/sim/core.cpp" "CMakeFiles/coperf.dir/src/sim/core.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/sim/core.cpp.o.d"
  "/root/repo/src/sim/hierarchy.cpp" "CMakeFiles/coperf.dir/src/sim/hierarchy.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/sim/hierarchy.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "CMakeFiles/coperf.dir/src/sim/machine.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/sim/machine.cpp.o.d"
  "/root/repo/src/sim/prefetcher.cpp" "CMakeFiles/coperf.dir/src/sim/prefetcher.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/sim/prefetcher.cpp.o.d"
  "/root/repo/src/wl/dl/cntk.cpp" "CMakeFiles/coperf.dir/src/wl/dl/cntk.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/wl/dl/cntk.cpp.o.d"
  "/root/repo/src/wl/graph/csr.cpp" "CMakeFiles/coperf.dir/src/wl/graph/csr.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/wl/graph/csr.cpp.o.d"
  "/root/repo/src/wl/graph/gemini.cpp" "CMakeFiles/coperf.dir/src/wl/graph/gemini.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/wl/graph/gemini.cpp.o.d"
  "/root/repo/src/wl/graph/powergraph.cpp" "CMakeFiles/coperf.dir/src/wl/graph/powergraph.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/wl/graph/powergraph.cpp.o.d"
  "/root/repo/src/wl/hpc/hpc.cpp" "CMakeFiles/coperf.dir/src/wl/hpc/hpc.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/wl/hpc/hpc.cpp.o.d"
  "/root/repo/src/wl/mini/mini.cpp" "CMakeFiles/coperf.dir/src/wl/mini/mini.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/wl/mini/mini.cpp.o.d"
  "/root/repo/src/wl/parsec/parsec.cpp" "CMakeFiles/coperf.dir/src/wl/parsec/parsec.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/wl/parsec/parsec.cpp.o.d"
  "/root/repo/src/wl/registry.cpp" "CMakeFiles/coperf.dir/src/wl/registry.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/wl/registry.cpp.o.d"
  "/root/repo/src/wl/serve/serve.cpp" "CMakeFiles/coperf.dir/src/wl/serve/serve.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/wl/serve/serve.cpp.o.d"
  "/root/repo/src/wl/spec/spec.cpp" "CMakeFiles/coperf.dir/src/wl/spec/spec.cpp.o" "gcc" "CMakeFiles/coperf.dir/src/wl/spec/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
