file(REMOVE_RECURSE
  "libcoperf.a"
)
