# Empty dependencies file for coperf.
# This may be replaced when dependencies are built.
