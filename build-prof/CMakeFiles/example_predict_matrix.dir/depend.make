# Empty dependencies file for example_predict_matrix.
# This may be replaced when dependencies are built.
