file(REMOVE_RECURSE
  "CMakeFiles/example_predict_matrix.dir/examples/predict_matrix.cpp.o"
  "CMakeFiles/example_predict_matrix.dir/examples/predict_matrix.cpp.o.d"
  "example_predict_matrix"
  "example_predict_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_predict_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
