file(REMOVE_RECURSE
  "CMakeFiles/manifest_test.dir/tests/manifest_test.cpp.o"
  "CMakeFiles/manifest_test.dir/tests/manifest_test.cpp.o.d"
  "manifest_test"
  "manifest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manifest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
