# Empty dependencies file for manifest_test.
# This may be replaced when dependencies are built.
