file(REMOVE_RECURSE
  "CMakeFiles/harness_test.dir/tests/harness_test.cpp.o"
  "CMakeFiles/harness_test.dir/tests/harness_test.cpp.o.d"
  "harness_test"
  "harness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
