# Empty compiler generated dependencies file for harness_test.
# This may be replaced when dependencies are built.
