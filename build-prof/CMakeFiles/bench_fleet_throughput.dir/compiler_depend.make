# Empty compiler generated dependencies file for bench_fleet_throughput.
# This may be replaced when dependencies are built.
