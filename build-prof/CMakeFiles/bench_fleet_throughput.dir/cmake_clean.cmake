file(REMOVE_RECURSE
  "CMakeFiles/bench_fleet_throughput.dir/bench/fleet_throughput.cpp.o"
  "CMakeFiles/bench_fleet_throughput.dir/bench/fleet_throughput.cpp.o.d"
  "bench_fleet_throughput"
  "bench_fleet_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fleet_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
