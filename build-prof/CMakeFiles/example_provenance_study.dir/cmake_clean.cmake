file(REMOVE_RECURSE
  "CMakeFiles/example_provenance_study.dir/examples/provenance_study.cpp.o"
  "CMakeFiles/example_provenance_study.dir/examples/provenance_study.cpp.o.d"
  "example_provenance_study"
  "example_provenance_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_provenance_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
