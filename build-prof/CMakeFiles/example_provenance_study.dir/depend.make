# Empty dependencies file for example_provenance_study.
# This may be replaced when dependencies are built.
