# Empty compiler generated dependencies file for group_test.
# This may be replaced when dependencies are built.
