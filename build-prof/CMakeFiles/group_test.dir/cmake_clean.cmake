file(REMOVE_RECURSE
  "CMakeFiles/group_test.dir/tests/group_test.cpp.o"
  "CMakeFiles/group_test.dir/tests/group_test.cpp.o.d"
  "group_test"
  "group_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
