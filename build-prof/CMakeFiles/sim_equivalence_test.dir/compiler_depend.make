# Empty compiler generated dependencies file for sim_equivalence_test.
# This may be replaced when dependencies are built.
