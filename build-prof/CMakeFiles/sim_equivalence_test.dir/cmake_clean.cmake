file(REMOVE_RECURSE
  "CMakeFiles/sim_equivalence_test.dir/tests/sim_equivalence_test.cpp.o"
  "CMakeFiles/sim_equivalence_test.dir/tests/sim_equivalence_test.cpp.o.d"
  "sim_equivalence_test"
  "sim_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
