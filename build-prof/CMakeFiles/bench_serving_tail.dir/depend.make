# Empty dependencies file for bench_serving_tail.
# This may be replaced when dependencies are built.
