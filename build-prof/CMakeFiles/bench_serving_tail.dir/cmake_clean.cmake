file(REMOVE_RECURSE
  "CMakeFiles/bench_serving_tail.dir/bench/serving_tail.cpp.o"
  "CMakeFiles/bench_serving_tail.dir/bench/serving_tail.cpp.o.d"
  "bench_serving_tail"
  "bench_serving_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serving_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
