file(REMOVE_RECURSE
  "CMakeFiles/obs_test.dir/tests/obs_test.cpp.o"
  "CMakeFiles/obs_test.dir/tests/obs_test.cpp.o.d"
  "obs_test"
  "obs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
