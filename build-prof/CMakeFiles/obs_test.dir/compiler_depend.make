# Empty compiler generated dependencies file for obs_test.
# This may be replaced when dependencies are built.
