# Empty compiler generated dependencies file for bench_predictor_accuracy.
# This may be replaced when dependencies are built.
