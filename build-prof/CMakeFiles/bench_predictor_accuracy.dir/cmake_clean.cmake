file(REMOVE_RECURSE
  "CMakeFiles/bench_predictor_accuracy.dir/bench/predictor_accuracy.cpp.o"
  "CMakeFiles/bench_predictor_accuracy.dir/bench/predictor_accuracy.cpp.o.d"
  "bench_predictor_accuracy"
  "bench_predictor_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_predictor_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
