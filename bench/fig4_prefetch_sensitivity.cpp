// Fig. 4: prefetcher sensitivity -- normalized runtime with all four
// hardware prefetchers enabled vs. disabled (MSR 0x1A4 sweep), at 4
// threads. Values < 1 mean the application depends on prefetchers.
#include "bench_common.hpp"
#include "harness/report.hpp"
#include "wl/registry.hpp"

int main(int argc, char** argv) try {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv);
  bench::print_config(args, "Fig. 4 -- prefetch sensitivity (t_on / t_off)");

  const auto workloads = wl::Registry::instance().all();
  harness::ExperimentPlan plan = args.plan();
  for (const auto* w : workloads)
    plan.add_prefetch({w->name, args.threads});
  const harness::ResultSet rs = plan.execute(0, bench::plan_progress());

  harness::Table table{{"suite", "workload", "speedup", "bw_on", "bw_off"}};
  std::vector<harness::PrefetchSensitivity> sens;
  for (const auto* w : workloads) {
    sens.push_back(rs.prefetch({w->name, args.threads}));
    const auto& s = sens.back();
    table.add_row({w->suite, w->name, harness::Table::fmt(s.speedup_ratio),
                   harness::Table::fmt(s.bw_on_gbs, 1),
                   harness::Table::fmt(s.bw_off_gbs, 1)});
  }
  table.print(std::cout);
  std::cout << "\n(paper: graph + CNTK apps ~1.0 [insensitive]; "
               "streamcluster, HPC apps, fotonik3d ~0.85 [sensitive])\n";
  if (args.csv) std::cout << "\n" << harness::report::to_csv(sens);
  if (args.json) std::cout << "\n" << harness::report::to_json(sens) << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
