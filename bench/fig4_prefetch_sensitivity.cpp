// Fig. 4: prefetcher sensitivity -- normalized runtime with all four
// hardware prefetchers enabled vs. disabled (MSR 0x1A4 sweep), at 4
// threads. Values < 1 mean the application depends on prefetchers.
#include "bench_common.hpp"
#include "harness/parallel.hpp"
#include "harness/prefetch_study.hpp"
#include "harness/report.hpp"
#include "wl/registry.hpp"

int main(int argc, char** argv) {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv);
  bench::print_config(args, "Fig. 4 -- prefetch sensitivity (t_on / t_off)");

  harness::Table table{{"suite", "workload", "speedup", "bw_on", "bw_off"}};
  std::string csv = "suite,workload,speedup_ratio\n";
  harness::RunOptions opt = args.run_options();
  const auto workloads = wl::Registry::instance().all();
  std::vector<harness::PrefetchSensitivity> sens(workloads.size());
  harness::parallel_for(workloads.size(), 0, [&](std::size_t i) {
    sens[i] = harness::prefetch_sensitivity(workloads[i]->name, opt);
  });
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto* w = workloads[i];
    const auto& s = sens[i];
    table.add_row({w->suite, w->name, harness::Table::fmt(s.speedup_ratio),
                   harness::Table::fmt(s.bw_on_gbs, 1),
                   harness::Table::fmt(s.bw_off_gbs, 1)});
    csv += w->suite + "," + w->name + "," +
           harness::Table::fmt(s.speedup_ratio, 3) + "\n";
  }
  table.print(std::cout);
  std::cout << "\n(paper: graph + CNTK apps ~1.0 [insensitive]; "
               "streamcluster, HPC apps, fotonik3d ~0.85 [sensitive])\n";
  if (args.csv) std::cout << "\n" << csv;
  return 0;
}
