// Fig. 2 (a-f): normalized speedup for 1..8 threads, per suite.
// Regenerates the paper's six speedup panels as per-suite tables.
// One plan holds every sweep; trials shared with other experiments
// (e.g. the 4-thread solos of a matrix) are deduplicated for free.
#include "bench_common.hpp"
#include "harness/report.hpp"
#include "wl/registry.hpp"

int main(int argc, char** argv) try {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv);
  bench::print_config(args, "Fig. 2 -- thread scalability, 1..8 threads");

  const char* suites[] = {"PowerGraph", "GeminiGraph", "CNTK",
                          "PARSEC",     "SPEC CPU2017", "HPC"};
  const char* panel[] = {"(a)", "(b)", "(c)", "(d)", "(e)", "(f)"};

  harness::ExperimentPlan plan = args.plan();
  std::vector<std::vector<harness::SweepSpec>> specs(std::size(suites));
  for (std::size_t s = 0; s < std::size(suites); ++s)
    for (const auto* w : wl::Registry::instance().suite(suites[s])) {
      specs[s].push_back(harness::SweepSpec{w->name, 8});
      plan.add_scalability(specs[s].back());
    }
  const harness::ResultSet rs = plan.execute(0, bench::plan_progress());

  std::vector<harness::ScalabilityResult> all;
  for (std::size_t s = 0; s < std::size(suites); ++s) {
    std::cout << "Fig. 2" << panel[s] << " " << suites[s] << "\n";
    std::vector<harness::ScalabilityResult> results;
    for (const auto& spec : specs[s]) results.push_back(rs.scalability(spec));
    print_scalability(std::cout, results);
    std::cout << "\n";
    all.insert(all.end(), results.begin(), results.end());
  }
  if (args.csv) std::cout << harness::report::to_csv(all);
  if (args.json) std::cout << harness::report::to_json(all) << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
