// Fig. 2 (a-f): normalized speedup for 1..8 threads, per suite.
// Regenerates the paper's six speedup panels as per-suite tables.
#include "bench_common.hpp"
#include "harness/parallel.hpp"
#include "harness/report.hpp"
#include "wl/registry.hpp"

int main(int argc, char** argv) {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv);
  bench::print_config(args, "Fig. 2 -- thread scalability, 1..8 threads");

  const char* suites[] = {"PowerGraph", "GeminiGraph", "CNTK",
                          "PARSEC",     "SPEC CPU2017", "HPC"};
  const char* panel[] = {"(a)", "(b)", "(c)", "(d)", "(e)", "(f)"};

  harness::RunOptions opt = args.run_options();
  // All sweeps are independent simulations: fan out across host threads.
  std::vector<std::vector<const wl::WorkloadInfo*>> members;
  std::size_t total = 0;
  for (const char* suite : suites) {
    members.push_back(wl::Registry::instance().suite(suite));
    total += members.back().size();
  }
  std::vector<std::vector<harness::ScalabilityResult>> results(
      std::size(suites));
  for (auto i = std::size_t{0}; i < members.size(); ++i)
    results[i].resize(members[i].size());
  std::vector<std::pair<std::size_t, std::size_t>> flat;
  for (std::size_t s = 0; s < members.size(); ++s)
    for (std::size_t w = 0; w < members[s].size(); ++w) flat.emplace_back(s, w);
  harness::parallel_for(flat.size(), 0, [&](std::size_t idx) {
    const auto [s, w] = flat[idx];
    results[s][w] = harness::scalability_sweep(members[s][w]->name, opt, 8);
  });

  std::string csv = "suite,workload,threads,speedup\n";
  for (std::size_t s = 0; s < std::size(suites); ++s) {
    std::cout << "Fig. 2" << panel[s] << " " << suites[s] << "\n";
    for (const auto& r : results[s])
      for (std::size_t i = 0; i < r.threads.size(); ++i)
        csv += std::string{suites[s]} + "," + r.workload + "," +
               std::to_string(r.threads[i]) + "," +
               harness::Table::fmt(r.speedup[i]) + "\n";
    print_scalability(std::cout, results[s]);
    std::cout << "\n";
  }
  if (args.csv) std::cout << csv;
  return 0;
}
