// Simulator-throughput tracker: how fast the hot path turns host time
// into simulated work, measured on the experiment the repo runs most --
// the fig5 co-run matrix build.
//
// Three phases:
//   1. solo characterization: every workload simulated alone, reporting
//      simulated-cycles-per-wall-second and MB/s of demand-access line
//      traffic (loads+stores, 64 B per access) -- the raw hot-path
//      throughput numbers tracked across PRs;
//   2. cold matrix build: the full fg x bg sweep with an empty run
//      cache (every pair simulated for real);
//   3. warm matrix build: the identical sweep again -- with the run
//      cache it must finish with ZERO new simulations.
//
// --json appends a machine-readable object for the CI perf artifact.
// The matrix phases run the work-stealing Dynamic schedule (the same
// default ExperimentPlan::execute uses) so idle lanes pick up
// straggler trials; trial results are bit-identical either way, only
// the wall time moves.
#include <chrono>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "harness/matrix.hpp"
#include "harness/report.hpp"
#include "harness/runcache.hpp"
#include "snapshot.hpp"

namespace {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace coperf;

  auto args = bench::parse_args(argc, argv, /*subset_supported=*/true);
  const bool json = args.json;
  // This bench defaults to the 8-workload Tiny configuration the perf
  // trajectory tracks (override with --size/--subset as usual).
  if (!args.size_override && !args.native) args.size_override = wl::SizeClass::Tiny;
  bench::print_config(args, "simulator throughput (solo + corun matrix)");

  std::vector<std::string> subset = args.subset;
  if (subset.empty())
    subset = {"Stream", "Bandit", "G-PR", "CIFAR", "fotonik3d",
              "swaptions", "IRSmk", "blackscholes"};

  harness::RunCache& cache = harness::RunCache::instance();
  // Phases must measure real simulation: park the disk layer so stale
  // entries from earlier invocations cannot serve the "cold" build,
  // and force the memory layer ON -- the warm-build zero-new-sims
  // check below is vacuous with the cache disabled (COPERF_RUN_CACHE=0
  // would leave the stats counters at zero while re-simulating).
  const std::string saved_disk = cache.disk_dir();
  const bool saved_enabled = cache.enabled();
  cache.set_enabled(true);
  cache.set_disk_dir("");
  cache.clear();
  cache.reset_stats();

  // ---- phase 1: solo characterization -------------------------------
  std::uint64_t sim_cycles = 0, instructions = 0, accesses = 0,
                mem_bytes = 0;
  struct SoloRow {
    std::string name;
    std::uint64_t cycles = 0;
    double wall_s = 0.0;
  };
  std::vector<SoloRow> solo_rows;
  solo_rows.reserve(subset.size());
  const double t0 = now_seconds();
  for (const auto& w : subset) {
    const double tw = now_seconds();
    const harness::RunResult r = harness::run_solo(w, args.run_options());
    solo_rows.push_back(SoloRow{w, r.stats.cycles, now_seconds() - tw});
    sim_cycles += r.stats.cycles;
    instructions += r.stats.instructions;
    accesses += r.stats.loads + r.stats.stores;
    mem_bytes += r.stats.bytes_from_mem;
  }
  const double solo_wall = now_seconds() - t0;
  const double access_mb =
      static_cast<double>(accesses) * sim::kLineBytes / 1e6;
  std::cout << "solo: " << subset.size() << " workloads in "
            << harness::Table::fmt(solo_wall, 2) << " s -> "
            << harness::Table::fmt(static_cast<double>(sim_cycles) / 1e6 /
                                       solo_wall,
                                   1)
            << " M simulated core-cycles/s, "
            << harness::Table::fmt(access_mb / solo_wall, 1)
            << " MB of demand accesses/s\n";
  // Per-workload breakdown: which application dominates the solo wall
  // time (and whose simulated-cycle rate regressed) at a glance.
  for (const SoloRow& row : solo_rows)
    std::cout << "  solo " << row.name << ": "
              << harness::Table::fmt(row.wall_s, 3) << " s, "
              << harness::Table::fmt(
                     static_cast<double>(row.cycles) / 1e6 /
                         (row.wall_s > 0.0 ? row.wall_s : 1e-9),
                     1)
              << " M cycles/s\n";

  // ---- phase 2: cold matrix build ------------------------------------
  harness::MatrixOptions mo;
  mo.run = args.run_options();
  mo.reps = args.effective_reps();
  mo.subset = subset;
  mo.host_threads = 0;  // pool default: hardware concurrency
  // Dynamic (work-stealing) keeps every lane busy until the queue is
  // empty; StaticChunk's precomputed chunks leave lanes idle behind a
  // straggler chunk. Cell results are bit-identical under both.
  mo.schedule = harness::ParallelSchedule::Dynamic;

  cache.clear();  // phase 1's solos must not warm the "cold" build
  cache.reset_stats();
  const double t1 = now_seconds();
  const harness::CorunMatrix cold = harness::corun_matrix(mo);
  const double cold_wall = now_seconds() - t1;
  const auto cold_stats = cache.stats();
  // plan.utilization / pool.workers are written by the cold build's
  // ExperimentPlan::execute (the warm build overwrites them with a
  // degenerate all-cache-hit sample, so read them here).
  const double cold_util =
      Session::metrics().gauge("plan.utilization").value();
  const double cold_lanes = Session::metrics().gauge("plan.lanes").value();
  std::cout << "matrix cold: " << subset.size() << "x" << subset.size()
            << " in " << harness::Table::fmt(cold_wall, 2) << " s ("
            << cold_stats.misses << " simulations)\n";
  std::cout << "  utilization: "
            << harness::Table::fmt(100.0 * cold_util, 1) << " % of "
            << static_cast<unsigned>(cold_lanes)
            << " host lane(s) busy simulating (plan.utilization)\n";

  // ---- phase 3: warm matrix build ------------------------------------
  cache.reset_stats();
  // The registry's runcache.* counters are process-wide (reset_stats
  // never touches them): take a delta across the warm phase instead.
  const std::uint64_t misses_before_warm =
      Session::metrics().counter("runcache.misses").value();
  const double t2 = now_seconds();
  const harness::CorunMatrix warm = harness::corun_matrix(mo);
  const double warm_wall = now_seconds() - t2;
  const auto warm_stats = cache.stats();
  std::cout << "matrix warm: " << harness::Table::fmt(warm_wall, 2) << " s ("
            << warm_stats.misses << " new simulations, "
            << warm_stats.hits << " cache hits)\n";

  bool identical = cold.size() == warm.size();
  for (std::size_t i = 0; identical && i < cold.size(); ++i)
    for (std::size_t j = 0; identical && j < cold.size(); ++j)
      identical = cold.at(i, j) == warm.at(i, j);
  std::cout << "warm matrix " << (identical ? "identical" : "DIVERGED")
            << "; speedup cold/warm = "
            << harness::Table::fmt(cold_wall / warm_wall, 1) << "x\n";

  // Publish the pass/fail facts on the metrics surface, where CI
  // asserts them (--metrics=FILE) instead of grepping bench prose.
  obs::Registry& reg = Session::metrics();
  reg.gauge("sim_throughput.warm_misses")
      .set(static_cast<double>(reg.counter("runcache.misses").value() -
                               misses_before_warm));
  reg.gauge("sim_throughput.warm_identical").set(identical ? 1.0 : 0.0);

  cache.set_disk_dir(saved_disk);
  cache.set_enabled(saved_enabled);

  if (json) {
    std::ostringstream js;
    js << "{\n"
       << "  \"config\": {\"size\": \"" << bench::size_name(args.size())
       << "\", \"threads\": " << args.threads
       << ", \"reps\": " << args.effective_reps()
       << ", \"workloads\": " << subset.size() << "},\n"
       << "  \"solo\": {\"wall_s\": " << solo_wall
       << ", \"sim_cycles\": " << sim_cycles
       << ", \"sim_cycles_per_s\": " << static_cast<double>(sim_cycles) / solo_wall
       << ", \"instructions\": " << instructions
       << ", \"access_mb\": " << access_mb
       << ", \"access_mb_per_s\": " << access_mb / solo_wall
       << ", \"dram_bytes\": " << mem_bytes << "},\n"
       << "  \"solo_breakdown\": [";
    for (std::size_t i = 0; i < solo_rows.size(); ++i) {
      const SoloRow& row = solo_rows[i];
      js << (i == 0 ? "\n" : ",\n") << "    {\"workload\": \"" << row.name
         << "\", \"wall_s\": " << row.wall_s
         << ", \"sim_cycles\": " << row.cycles << ", \"sim_cycles_per_s\": "
         << static_cast<double>(row.cycles) /
                (row.wall_s > 0.0 ? row.wall_s : 1e-9)
         << "}";
    }
    js << "\n  ],\n"
       << "  \"matrix_cold\": {\"wall_s\": " << cold_wall
       << ", \"simulations\": " << cold_stats.misses
       << ", \"utilization\": " << cold_util
       << ", \"lanes\": " << cold_lanes << "},\n"
       << "  \"matrix_warm\": {\"wall_s\": " << warm_wall
       << ", \"new_simulations\": " << warm_stats.misses
       << ", \"cache_hits\": " << warm_stats.hits
       << ", \"identical\": " << (identical ? "true" : "false") << "}\n"
       << "}\n";
    std::cout << "\n" << js.str();
    bench::write_snapshot("sim_throughput", js.str());
  }
  // The warm build regressing to real simulations is a correctness
  // failure of the run cache, not a perf blip: fail loudly.
  return (warm_stats.misses == 0 && identical) ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
