// Table IV: VTune-style profiles of P-PR's gather region and
// fotonik3d's UUS region -- solo and under each co-runner the paper
// pairs them with (IRSmk, CIFAR, fotonik3d, G-SSSP).
#include "bench_common.hpp"
#include "harness/report.hpp"

namespace {

coperf::perf::RegionProfile find_region(
    const std::vector<coperf::perf::RegionProfile>& regions,
    const std::string& needle) {
  for (const auto& r : regions)
    if (r.region.find(needle) != std::string::npos) return r;
  return {};
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv);
  bench::print_config(args, "Table IV -- P-PR(gather) / fotonik3d(UUS)");

  struct Subject {
    const char* app;
    const char* region;
    std::vector<const char*> co_runners;
  };
  const Subject subjects[] = {
      {"P-PR", "gather", {"IRSmk", "CIFAR", "fotonik3d"}},
      {"fotonik3d", "UUS", {"IRSmk", "CIFAR", "G-SSSP"}},
  };

  const unsigned reps = args.effective_reps();
  const harness::RunOptions opt = args.run_options();
  auto vs = [&](const char* app, const char* bg) {
    return harness::GroupSpec::pair(app, bg, opt.threads, opt.bg_threads);
  };
  harness::ExperimentPlan plan = args.plan();
  for (const auto& s : subjects) {
    plan.add_solo({s.app, args.threads, reps});
    for (const char* bg : s.co_runners) plan.add_group(vs(s.app, bg), reps);
  }
  const harness::ResultSet results = plan.execute(0, bench::plan_progress());

  using harness::Table;
  for (const auto& s : subjects) {
    Table table{{"co-runner", "CPI", "LLC MPKI", "L2_PCP", "LL"}};
    const auto solo = results.solo({s.app, args.threads, reps});
    const auto rsolo = find_region(solo.regions, s.region);
    table.add_row({"(none)", Table::fmt(rsolo.metrics.cpi),
                   Table::fmt(rsolo.metrics.llc_mpki),
                   Table::fmt(rsolo.metrics.l2_pcp * 100, 0) + "%",
                   Table::fmt(rsolo.metrics.ll)});
    for (const char* bg : s.co_runners) {
      const auto pair = results.group(vs(s.app, bg), reps);
      const auto rp = find_region(pair.members[0].regions, s.region);
      table.add_row({std::string{"with "} + bg, Table::fmt(rp.metrics.cpi),
                     Table::fmt(rp.metrics.llc_mpki),
                     Table::fmt(rp.metrics.l2_pcp * 100, 0) + "%",
                     Table::fmt(rp.metrics.ll)});
    }
    std::cout << s.app << " (" << s.region << " region)\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout
      << "(paper anchors: P-PR gather CPI 2.3 solo -> 3.5-4.3 under\n"
         " offenders; fotonik3d UUS CPI 2.0 -> 3.2-3.6 under IRSmk/CIFAR\n"
         " but unchanged under G-SSSP; fotonik3d LLC MPKI ~21 and stable\n"
         " across co-runners -- a bandwidth victim, not a cache victim)\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
