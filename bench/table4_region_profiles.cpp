// Table IV: VTune-style profiles of P-PR's gather region and
// fotonik3d's UUS region -- solo and under each co-runner the paper
// pairs them with (IRSmk, CIFAR, fotonik3d, G-SSSP).
#include "bench_common.hpp"
#include "harness/report.hpp"

namespace {

coperf::perf::RegionProfile find_region(
    const std::vector<coperf::perf::RegionProfile>& regions,
    const std::string& needle) {
  for (const auto& r : regions)
    if (r.region.find(needle) != std::string::npos) return r;
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv);
  bench::print_config(args, "Table IV -- P-PR(gather) / fotonik3d(UUS)");

  struct Subject {
    const char* app;
    const char* region;
    std::vector<const char*> co_runners;
  };
  const Subject subjects[] = {
      {"P-PR", "gather", {"IRSmk", "CIFAR", "fotonik3d"}},
      {"fotonik3d", "UUS", {"IRSmk", "CIFAR", "G-SSSP"}},
  };

  const harness::RunOptions opt = args.run_options();
  using harness::Table;
  for (const auto& s : subjects) {
    Table table{{"co-runner", "CPI", "LLC MPKI", "L2_PCP", "LL"}};
    const auto solo =
        harness::run_solo_median(s.app, opt, args.effective_reps());
    const auto rs = find_region(solo.regions, s.region);
    table.add_row({"(none)", Table::fmt(rs.metrics.cpi),
                   Table::fmt(rs.metrics.llc_mpki),
                   Table::fmt(rs.metrics.l2_pcp * 100, 0) + "%",
                   Table::fmt(rs.metrics.ll)});
    for (const char* bg : s.co_runners) {
      const auto pair =
          harness::run_pair_median(s.app, bg, opt, args.effective_reps());
      const auto rp = find_region(pair.fg.regions, s.region);
      table.add_row({std::string{"with "} + bg, Table::fmt(rp.metrics.cpi),
                     Table::fmt(rp.metrics.llc_mpki),
                     Table::fmt(rp.metrics.l2_pcp * 100, 0) + "%",
                     Table::fmt(rp.metrics.ll)});
    }
    std::cout << s.app << " (" << s.region << " region)\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout
      << "(paper anchors: P-PR gather CPI 2.3 solo -> 3.5-4.3 under\n"
         " offenders; fotonik3d UUS CPI 2.0 -> 3.2-3.6 under IRSmk/CIFAR\n"
         " but unchanged under G-SSSP; fotonik3d LLC MPKI ~21 and stable\n"
         " across co-runners -- a bandwidth victim, not a cache victim)\n";
  return 0;
}
