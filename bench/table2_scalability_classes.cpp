// Table II: thread-scalability characterization (Low / Medium / High)
// for all 25 applications, from the measured S(8).
#include <map>

#include "bench_common.hpp"
#include "harness/parallel.hpp"
#include "harness/report.hpp"
#include "wl/registry.hpp"

int main(int argc, char** argv) {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv);
  bench::print_config(args, "Table II -- scalability classes");

  harness::RunOptions opt = args.run_options();
  const char* suites[] = {"PowerGraph", "GeminiGraph", "CNTK",
                          "PARSEC",     "SPEC CPU2017", "HPC"};

  harness::Table table{{"suite", "Low", "Medium", "High"}};
  std::string csv = "suite,workload,s8,class\n";
  // Sweep every workload in parallel first.
  std::vector<const wl::WorkloadInfo*> all;
  for (const char* suite : suites)
    for (const auto* w : wl::Registry::instance().suite(suite))
      all.push_back(w);
  std::vector<harness::ScalabilityResult> sweeps(all.size());
  harness::parallel_for(all.size(), 0, [&](std::size_t i) {
    sweeps[i] = harness::scalability_sweep(all[i]->name, opt, 8);
  });
  std::size_t cursor = 0;
  for (const char* suite : suites) {
    std::map<harness::ScalClass, std::string> buckets;
    for (const auto* w : wl::Registry::instance().suite(suite)) {
      const auto& res = sweeps[cursor++];
      (void)w;
      std::string& bucket = buckets[res.cls];
      if (!bucket.empty()) bucket += ", ";
      bucket += res.workload;
      csv += std::string{suite} + "," + res.workload + "," +
             harness::Table::fmt(res.max_speedup()) + "," +
             harness::to_string(res.cls) + "\n";
    }
    auto cell = [&](harness::ScalClass c) {
      auto it = buckets.find(c);
      return it == buckets.end() ? std::string{"-"} : it->second;
    };
    table.add_row({suite, cell(harness::ScalClass::Low),
                   cell(harness::ScalClass::Medium),
                   cell(harness::ScalClass::High)});
  }
  table.print(std::cout);
  if (args.csv) std::cout << "\n" << csv;
  return 0;
}
