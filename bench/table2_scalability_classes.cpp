// Table II: thread-scalability characterization (Low / Medium / High)
// for all 25 applications, from the measured S(8). Shares its sweep
// trials with fig2 through the run cache.
#include <map>

#include "bench_common.hpp"
#include "harness/report.hpp"
#include "wl/registry.hpp"

int main(int argc, char** argv) try {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv);
  bench::print_config(args, "Table II -- scalability classes");

  const char* suites[] = {"PowerGraph", "GeminiGraph", "CNTK",
                          "PARSEC",     "SPEC CPU2017", "HPC"};

  harness::ExperimentPlan plan = args.plan();
  for (const char* suite : suites)
    for (const auto* w : wl::Registry::instance().suite(suite))
      plan.add_scalability({w->name, 8});
  const harness::ResultSet rs = plan.execute(0, bench::plan_progress());

  harness::Table table{{"suite", "Low", "Medium", "High"}};
  std::string csv = "suite,workload,s8,class\n";
  std::vector<harness::ScalabilityResult> all;
  for (const char* suite : suites) {
    std::map<harness::ScalClass, std::string> buckets;
    for (const auto* w : wl::Registry::instance().suite(suite)) {
      const auto res = rs.scalability({w->name, 8});
      std::string& bucket = buckets[res.cls];
      if (!bucket.empty()) bucket += ", ";
      bucket += res.workload;
      csv += std::string{suite} + "," + res.workload + "," +
             harness::Table::fmt(res.max_speedup()) + "," +
             harness::to_string(res.cls) + "\n";
      all.push_back(res);
    }
    auto cell = [&](harness::ScalClass c) {
      auto it = buckets.find(c);
      return it == buckets.end() ? std::string{"-"} : it->second;
    };
    table.add_row({suite, cell(harness::ScalClass::Low),
                   cell(harness::ScalClass::Medium),
                   cell(harness::ScalClass::High)});
  }
  table.print(std::cout);
  if (args.csv) std::cout << "\n" << csv;
  if (args.json) std::cout << "\n" << harness::report::to_json(all) << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
