// Shared plumbing for the per-figure/per-table bench binaries.
//
// Every bench accepts:
//   --quick       Tiny inputs, 1 repetition (CI smoke)
//   --native      unscaled paper machine + Native inputs (slow)
//   --reps=N      repetitions (median), default 3 like the paper
//   --threads=N   foreground thread count (default 4, like the paper)
//   --csv         append machine-readable CSV after the table
//   --json        append machine-readable JSON after the table
//                 (backed by harness::report::to_json)
//   --subset=A,B  restrict matrix-style benches to named workloads
//   --size=S      explicit input size (tiny|small|native), overrides
//                 the --quick/--native default
//   --slo=X       p99-slowdown budget for latency-critical jobs (> 1;
//                 benches with no SLO notion ignore it)
//   --victim=W    serving workload used as the latency-critical victim
//                 in SLO benches (default bench-specific)
//   --trace=FILE  record a Chrome trace of the run (Perfetto-loadable);
//                 written at exit
//   --metrics[=FILE]  print the obs metrics snapshot at exit (stdout,
//                 or FILE when given)
//
// Malformed flag values (--reps=abc, --threads=) are rejected with a
// clear diagnostic and exit code 2 instead of an uncaught exception,
// and --trace=/--metrics= paths that cannot be opened for writing fail
// the same way up front instead of silently dropping the output at
// exit.
#pragma once

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/session.hpp"

namespace coperf::bench {

struct BenchArgs {
  bool quick = false;
  bool native = false;
  bool csv = false;
  bool json = false;
  unsigned reps = 3;
  unsigned threads = 4;
  /// Workload names from --subset=A,B,... (empty = bench default).
  std::vector<std::string> subset;
  /// Explicit --size=tiny|small|native override (unset = derived).
  std::optional<wl::SizeClass> size_override;
  /// --trace=FILE: Chrome trace output path (empty = tracing off).
  std::string trace_path;
  /// --metrics[=FILE]: dump the metrics snapshot at exit.
  bool metrics = false;
  std::string metrics_path;  ///< empty = stdout
  /// --slo=X: p99-slowdown budget for latency-critical jobs (0 =
  /// bench default; must be > 1 when given -- a budget of 1.0 or less
  /// is unsatisfiable under any interference).
  double slo = 0.0;
  /// --victim=W: serving workload to use as the latency-critical
  /// victim (empty = bench default).
  std::string victim;

  sim::MachineConfig machine() const {
    return native ? sim::MachineConfig::paper() : sim::MachineConfig::scaled();
  }
  wl::SizeClass size() const {
    if (size_override) return *size_override;
    if (quick) return wl::SizeClass::Tiny;
    return native ? wl::SizeClass::Native : wl::SizeClass::Small;
  }
  unsigned effective_reps() const { return quick ? 1 : reps; }

  harness::RunOptions run_options() const {
    harness::RunOptions o;
    o.machine = machine();
    o.size = size();
    o.threads = threads;
    return o;
  }

  /// A plan seeded with this bench's options, ready for add_*() calls.
  harness::ExperimentPlan plan() const {
    return harness::ExperimentPlan{run_options()};
  }

  Session session() const { return Session{machine(), size()}; }
};

/// Splits a --subset=A,B,C value into workload names.
inline std::vector<std::string> split_subset(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

inline wl::SizeClass parse_size(const std::string& s) {
  if (s == "tiny") return wl::SizeClass::Tiny;
  if (s == "small") return wl::SizeClass::Small;
  if (s == "native") return wl::SizeClass::Native;
  std::cerr << "bad --size=" << s << " (expected tiny|small|native)\n";
  std::exit(2);
}

/// Strict non-negative integer parse: the whole value must be digits.
/// `--reps=abc`, `--threads=`, and out-of-range values exit with a
/// diagnostic instead of throwing std::invalid_argument out of main.
inline unsigned parse_unsigned(const std::string& flag,
                               const std::string& value) {
  bool ok = !value.empty() && value.size() <= 9;
  for (const char c : value) ok = ok && c >= '0' && c <= '9';
  if (!ok) {
    std::cerr << "bad " << flag << "=" << (value.empty() ? "<empty>" : value)
              << " (expected a non-negative integer)\n";
    std::exit(2);
  }
  return static_cast<unsigned>(std::stoul(value));
}

/// Strict positive decimal parse for --slo=: digits with at most one
/// '.', value must exceed `min`. Malformed or out-of-range values exit
/// with a diagnostic (code 2) instead of throwing out of main.
inline double parse_decimal_above(const std::string& flag,
                                  const std::string& value, double min) {
  bool ok = !value.empty() && value.size() <= 16;
  unsigned dots = 0, digits = 0;
  for (const char c : value) {
    if (c == '.')
      ++dots;
    else if (c >= '0' && c <= '9')
      ++digits;
    else
      ok = false;
  }
  ok = ok && dots <= 1 && digits >= 1;
  if (!ok) {
    std::cerr << "bad " << flag << "=" << (value.empty() ? "<empty>" : value)
              << " (expected a decimal number)\n";
    std::exit(2);
  }
  const double v = std::stod(value);
  if (!(v > min)) {
    std::cerr << "bad " << flag << "=" << value << " (must be > " << min
              << ")\n";
    std::exit(2);
  }
  return v;
}

/// Bench-specific flag hook for parse_args: return true when the flag
/// was consumed, false to fall through to the unknown-flag error.
using ExtraFlag = std::function<bool(const std::string& arg)>;

namespace detail {
/// Where the atexit observability flush sends its output. Plain static
/// storage (not function-locals) so the handler never touches an
/// object destroyed before it runs; the obs singletons themselves are
/// leaked for the same reason.
inline std::string& metrics_sink() {
  static std::string* s = new std::string;
  return *s;
}
inline bool& metrics_wanted() {
  static bool w = false;
  return w;
}

inline void obs_flush_at_exit() {
  obs::Trace& tr = obs::Trace::instance();
  if (tr.enabled()) {
    const std::string path = tr.stop();  // writes the trace file
    std::cerr << "trace written to " << path << " (" << tr.event_count()
              << " events; open in Perfetto or chrome://tracing)\n";
  }
  if (metrics_wanted()) {
    const std::string& path = metrics_sink();
    if (path.empty()) {
      std::cout << obs::Registry::instance().snapshot_json() << "\n";
    } else {
      std::ofstream out{path};
      obs::Registry::instance().snapshot_json(out);
      out << "\n";
      if (out)
        std::cerr << "metrics snapshot written to " << path << "\n";
      else
        std::cerr << "ERROR: metrics snapshot write to " << path
                  << " failed\n";
    }
  }
}

/// Fails fast (exit 2) when an observability output path cannot be
/// opened for writing, instead of silently dropping the trace/metrics
/// at exit. Probes in append mode so an existing file's contents are
/// left alone; the real writer truncates later.
inline void require_writable(const char* flag, const std::string& path) {
  std::ofstream probe{path, std::ios::app};
  if (!probe) {
    std::cerr << flag << "=" << path << ": cannot open for writing\n";
    std::exit(2);
  }
}

/// Registers the flush once, on the first --trace/--metrics flag.
inline void arm_obs_flush() {
  static const bool armed = [] {
    std::atexit(obs_flush_at_exit);
    return true;
  }();
  (void)armed;
}
}  // namespace detail

/// `subset_supported`: benches that cannot restrict their workload list
/// must leave this false so --subset is rejected instead of silently
/// ignored. `extra` consumes bench-specific flags (documented via
/// `extra_help`, appended to --help).
inline BenchArgs parse_args(int argc, char** argv,
                            bool subset_supported = false,
                            const ExtraFlag& extra = {},
                            const std::string& extra_help = {}) {
  BenchArgs a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (extra && extra(arg)) {
      continue;
    } else if (arg == "--quick") {
      a.quick = true;
    } else if (arg == "--native") {
      a.native = true;
    } else if (arg == "--csv") {
      a.csv = true;
    } else if (arg == "--json") {
      a.json = true;
    } else if (arg.rfind("--reps=", 0) == 0) {
      a.reps = parse_unsigned("--reps", arg.substr(7));
    } else if (arg.rfind("--threads=", 0) == 0) {
      a.threads = parse_unsigned("--threads", arg.substr(10));
    } else if (arg.rfind("--subset=", 0) == 0) {
      if (!subset_supported) {
        std::cerr << "this bench does not support --subset\n";
        std::exit(2);
      }
      a.subset = split_subset(arg.substr(9));
      if (a.subset.empty()) {
        // An empty value (e.g. an unset shell variable) must not
        // silently degrade to the full sweep.
        std::cerr << "--subset= needs at least one workload name\n";
        std::exit(2);
      }
    } else if (arg.rfind("--size=", 0) == 0) {
      a.size_override = parse_size(arg.substr(7));
    } else if (arg.rfind("--slo=", 0) == 0) {
      a.slo = parse_decimal_above("--slo", arg.substr(6), 1.0);
    } else if (arg.rfind("--victim=", 0) == 0) {
      a.victim = arg.substr(9);
      if (a.victim.empty()) {
        std::cerr << "--victim= needs a workload name\n";
        std::exit(2);
      }
    } else if (arg.rfind("--trace=", 0) == 0) {
      a.trace_path = arg.substr(8);
      if (a.trace_path.empty()) {
        std::cerr << "--trace= needs an output file path\n";
        std::exit(2);
      }
      detail::require_writable("--trace", a.trace_path);
      detail::arm_obs_flush();
      obs::Trace::instance().start(a.trace_path);
    } else if (arg == "--metrics" || arg.rfind("--metrics=", 0) == 0) {
      a.metrics = true;
      if (arg.size() > 9) a.metrics_path = arg.substr(10);
      if (!a.metrics_path.empty())
        detail::require_writable("--metrics", a.metrics_path);
      detail::metrics_wanted() = true;
      detail::metrics_sink() = a.metrics_path;
      detail::arm_obs_flush();
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "flags: --quick --native --csv --json --reps=N --threads=N"
                   " --size=tiny|small|native --slo=X --victim=W"
                   " --trace=FILE --metrics[=FILE]"
                << (subset_supported ? " --subset=A,B,..." : "")
                << (extra_help.empty() ? "" : " " + extra_help) << "\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag " << arg << " (see --help)\n";
      std::exit(2);
    }
  }
  return a;
}

inline const char* size_name(wl::SizeClass s) {
  switch (s) {
    case wl::SizeClass::Tiny: return "Tiny";
    case wl::SizeClass::Small: return "Small";
    case wl::SizeClass::Native: return "Native";
  }
  return "?";
}

inline void print_config(const BenchArgs& a, const std::string& what) {
  std::cout << "== coperf bench: " << what << " ==\n"
            << "   config: " << (a.native ? "paper" : "scaled") << " machine, "
            << size_name(a.size()) << " inputs, " << a.effective_reps()
            << " rep(s), " << a.threads << " threads";
  if (!a.subset.empty()) std::cout << ", subset of " << a.subset.size();
  std::cout << "\n\n";
}

/// Progress reporter for plan execution: trials done/total plus an ETA
/// extrapolated from the mean trial rate so far. On a terminal the
/// line updates in place; piped (CI logs) it prints every ~10th
/// milestone.
inline harness::ExperimentPlan::Progress plan_progress() {
  const bool tty = ::isatty(2) != 0;
  const auto start = std::chrono::steady_clock::now();
  return [tty, start](std::size_t done, std::size_t total,
                      const harness::Trial&) {
    if (total < 8) return;
    const auto eta = [&]() -> std::string {
      if (done == 0 || done == total) return {};
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const double left =
          elapsed / static_cast<double>(done) *
          static_cast<double>(total - done);
      return " (eta " + std::to_string(static_cast<long>(left + 0.5)) + "s)";
    };
    if (tty) {
      std::cerr << "\r  trial " << done << "/" << total << eta()
                << (done == total ? "\n" : "    ") << std::flush;
      return;
    }
    const std::size_t step = total < 10 ? 1 : total / 10;
    if (done % step == 0 || done == total)
      std::cerr << "  trial " << done << "/" << total << eta() << "\n";
  };
}

}  // namespace coperf::bench
