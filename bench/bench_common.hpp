// Shared plumbing for the per-figure/per-table bench binaries.
//
// Every bench accepts:
//   --quick       Tiny inputs, 1 repetition (CI smoke)
//   --native      unscaled paper machine + Native inputs (slow)
//   --reps=N      repetitions (median), default 3 like the paper
//   --threads=N   foreground thread count (default 4, like the paper)
//   --csv         append machine-readable CSV after the table
#pragma once

#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/session.hpp"

namespace coperf::bench {

struct BenchArgs {
  bool quick = false;
  bool native = false;
  bool csv = false;
  unsigned reps = 3;
  unsigned threads = 4;

  sim::MachineConfig machine() const {
    return native ? sim::MachineConfig::paper() : sim::MachineConfig::scaled();
  }
  wl::SizeClass size() const {
    if (quick) return wl::SizeClass::Tiny;
    return native ? wl::SizeClass::Native : wl::SizeClass::Small;
  }
  unsigned effective_reps() const { return quick ? 1 : reps; }

  harness::RunOptions run_options() const {
    harness::RunOptions o;
    o.machine = machine();
    o.size = size();
    o.threads = threads;
    return o;
  }

  Session session() const { return Session{machine(), size()}; }
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      a.quick = true;
    } else if (arg == "--native") {
      a.native = true;
    } else if (arg == "--csv") {
      a.csv = true;
    } else if (arg.rfind("--reps=", 0) == 0) {
      a.reps = static_cast<unsigned>(std::stoul(arg.substr(7)));
    } else if (arg.rfind("--threads=", 0) == 0) {
      a.threads = static_cast<unsigned>(std::stoul(arg.substr(10)));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "flags: --quick --native --csv --reps=N --threads=N\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag " << arg << " (see --help)\n";
      std::exit(2);
    }
  }
  return a;
}

inline void print_config(const BenchArgs& a, const std::string& what) {
  std::cout << "== coperf bench: " << what << " ==\n"
            << "   config: "
            << (a.quick ? "quick (Tiny inputs, 1 rep)"
                        : (a.native ? "native (paper machine)"
                                    : "default (scaled machine, Small inputs)"))
            << ", " << a.effective_reps() << " rep(s), " << a.threads
            << " threads\n\n";
}

}  // namespace coperf::bench
