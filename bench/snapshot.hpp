// In-repo bench snapshots.
//
// The perf-tracked benches (--json mode) persist their machine-readable
// output as BENCH_<name>.json at the repository root, so the numbers a
// change ships with live next to the code that produced them and a
// reviewer can diff them like any other file. The repo root is found by
// walking up from the current directory to the first ancestor holding
// ROADMAP.md + CMakeLists.txt; COPERF_BENCH_SNAPSHOT_DIR overrides the
// destination (CI uses it to keep workspace runs from dirtying the
// checkout). When neither resolves, the snapshot is skipped with a
// note -- a bench run outside the repo must not fail over bookkeeping.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

namespace coperf::bench {

/// Directory snapshots are written to, or nullopt when unresolvable.
inline std::optional<std::filesystem::path> snapshot_dir() {
  namespace fs = std::filesystem;
  if (const char* env = std::getenv("COPERF_BENCH_SNAPSHOT_DIR"))
    if (*env != '\0') return fs::path{env};
  std::error_code ec;
  fs::path dir = fs::current_path(ec);
  if (ec) return std::nullopt;
  for (; !dir.empty(); dir = dir.parent_path()) {
    if (fs::exists(dir / "ROADMAP.md", ec) &&
        fs::exists(dir / "CMakeLists.txt", ec))
      return dir;
    if (dir == dir.root_path()) break;
  }
  return std::nullopt;
}

/// Writes BENCH_<name>.json holding `json` (a complete document) into
/// snapshot_dir(), reporting the path -- or why it was skipped -- on
/// stderr.
inline void write_snapshot(const std::string& name, const std::string& json) {
  const auto dir = snapshot_dir();
  if (!dir) {
    std::cerr << "bench snapshot skipped: no repo root found and "
                 "COPERF_BENCH_SNAPSHOT_DIR is unset\n";
    return;
  }
  const std::filesystem::path path = *dir / ("BENCH_" + name + ".json");
  std::ofstream out{path};
  if (!out) {
    std::cerr << "bench snapshot skipped: cannot write " << path.string()
              << "\n";
    return;
  }
  out << json;
  if (!json.empty() && json.back() != '\n') out << "\n";
  std::cerr << "bench snapshot written to " << path.string() << "\n";
}

}  // namespace coperf::bench
