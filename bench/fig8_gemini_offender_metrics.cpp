// Fig. 8 (a-d): the same four metrics for the five GeminiGraph
// applications co-running with each of the paper's three offender
// applications (IRSmk, fotonik3d, CIFAR). One plan covers all 5
// solos + 15 pairs; the solos dedupe against fig7's.
#include "bench_common.hpp"
#include "harness/report.hpp"

namespace {

coperf::perf::RegionProfile hot_region(
    const std::vector<coperf::perf::RegionProfile>& regions) {
  for (const auto& r : regions)
    if (r.region != "<untagged>") return r;
  return regions.empty() ? coperf::perf::RegionProfile{} : regions.front();
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv);
  bench::print_config(
      args, "Fig. 8 -- Gemini hot-region metrics vs offender apps");

  const char* apps[] = {"G-SSSP", "G-PR", "G-CC", "G-BC", "G-BFS"};
  const char* offenders[] = {"IRSmk", "fotonik3d", "CIFAR"};
  const unsigned reps = args.effective_reps();
  const harness::RunOptions opt = args.run_options();
  using harness::Table;

  auto vs = [&](const char* app, const char* off) {
    return harness::GroupSpec::pair(app, off, opt.threads, opt.bg_threads);
  };
  harness::ExperimentPlan plan = args.plan();
  for (const char* app : apps) {
    plan.add_solo({app, args.threads, reps});
    for (const char* off : offenders) plan.add_group(vs(app, off), reps);
  }
  const harness::ResultSet rs = plan.execute(0, bench::plan_progress());

  for (const char* metric : {"CPI", "L2_PCP", "LLC MPKI", "LL"}) {
    Table table{{"workload", "solo", "+IRSmk", "+fotonik3d", "+CIFAR"}};
    for (const char* app : apps) {
      const auto solo = rs.solo({app, args.threads, reps});
      std::vector<std::string> row{app};
      auto metric_of = [&](const perf::RegionProfile& r) {
        const std::string m{metric};
        if (m == "CPI") return Table::fmt(r.metrics.cpi);
        if (m == "L2_PCP") return Table::fmt(r.metrics.l2_pcp * 100, 0) + "%";
        if (m == "LLC MPKI") return Table::fmt(r.metrics.llc_mpki);
        return Table::fmt(r.metrics.ll);
      };
      row.push_back(metric_of(hot_region(solo.regions)));
      for (const char* off : offenders) {
        const auto pair = rs.group(vs(app, off), reps);
        row.push_back(metric_of(hot_region(pair.members[0].regions)));
      }
      table.add_row(std::move(row));
    }
    std::cout << "Fig. 8 -- " << metric << "\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "(paper: offenders raise Gemini LLC MPKI by up to ~18% and "
               "LL by >100%, milder than Stream)\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
