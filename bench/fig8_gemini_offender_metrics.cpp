// Fig. 8 (a-d): the same four metrics for the five GeminiGraph
// applications co-running with each of the paper's three offender
// applications (IRSmk, fotonik3d, CIFAR).
#include "bench_common.hpp"
#include "harness/report.hpp"

namespace {

coperf::perf::RegionProfile hot_region(
    const std::vector<coperf::perf::RegionProfile>& regions) {
  for (const auto& r : regions)
    if (r.region != "<untagged>") return r;
  return regions.empty() ? coperf::perf::RegionProfile{} : regions.front();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv);
  bench::print_config(
      args, "Fig. 8 -- Gemini hot-region metrics vs offender apps");

  const char* apps[] = {"G-SSSP", "G-PR", "G-CC", "G-BC", "G-BFS"};
  const char* offenders[] = {"IRSmk", "fotonik3d", "CIFAR"};
  const harness::RunOptions opt = args.run_options();
  using harness::Table;

  for (const char* metric : {"CPI", "L2_PCP", "LLC MPKI", "LL"}) {
    Table table{{"workload", "solo", "+IRSmk", "+fotonik3d", "+CIFAR"}};
    for (const char* app : apps) {
      const auto solo =
          harness::run_solo_median(app, opt, args.effective_reps());
      std::vector<std::string> row{app};
      auto metric_of = [&](const perf::RegionProfile& r) {
        const std::string m{metric};
        if (m == "CPI") return Table::fmt(r.metrics.cpi);
        if (m == "L2_PCP") return Table::fmt(r.metrics.l2_pcp * 100, 0) + "%";
        if (m == "LLC MPKI") return Table::fmt(r.metrics.llc_mpki);
        return Table::fmt(r.metrics.ll);
      };
      row.push_back(metric_of(hot_region(solo.regions)));
      for (const char* off : offenders) {
        const auto pair =
            harness::run_pair_median(app, off, opt, args.effective_reps());
        row.push_back(metric_of(hot_region(pair.fg.regions)));
      }
      table.add_row(std::move(row));
    }
    std::cout << "Fig. 8 -- " << metric << "\n";
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "(paper: offenders raise Gemini LLC MPKI by up to ~18% and "
               "LL by >100%, milder than Stream)\n";
  return 0;
}
