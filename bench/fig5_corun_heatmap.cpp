// Fig. 5: the full 25x25 co-run heat map -- normalized execution time
// of every foreground application against every background application
// (625 pairs, median of N repeated runs), plus the paper's
// Harmony / Victim-Offender / Both-Victim classification summary.
#include "bench_common.hpp"
#include "harness/report.hpp"
#include "harness/runcache.hpp"

int main(int argc, char** argv) try {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv, /*subset_supported=*/true);
  bench::print_config(args,
                      "Fig. 5 -- 25x25 co-run normalized-runtime heat map");

  harness::MatrixSpec spec{args.subset, args.effective_reps(), {}};
  harness::ExperimentPlan plan = args.plan();
  plan.add_matrix(spec);
  std::cout << "plan: " << plan.trial_count() << " unique trials, "
            << plan.residue_count() << " to simulate\n";
  const harness::ResultSet rs = plan.execute(0, bench::plan_progress());
  const harness::CorunMatrix m = rs.matrix(spec);

  harness::print_heatmap(std::cout, m);

  const auto counts = m.count_classes();
  std::cout << "\npair classes (threshold " << harness::kVictimThreshold
            << "x, unordered pairs incl. self):\n"
            << "  Harmony         : " << counts.harmony << "\n"
            << "  Victim-Offender : " << counts.victim_offender << "\n"
            << "  Both-Victim     : " << counts.both_victim << "\n";

  // The paper's named anchor pairs (Section V-A).
  auto idx = [&](const std::string& w) {
    for (std::size_t i = 0; i < m.size(); ++i)
      if (m.workloads[i] == w) return i;
    return m.size();
  };
  struct Anchor {
    const char* fg;
    const char* bg;
    const char* paper;
  };
  const Anchor anchors[] = {
      {"G-CC", "CIFAR", "1.55"},      {"G-CC", "fotonik3d", "1.98"},
      {"CIFAR", "fotonik3d", "1.52"}, {"fotonik3d", "CIFAR", "1.54"},
      {"P-PR", "fotonik3d", "~1.5"},  {"IRSmk", "fotonik3d", "1.9"},
  };
  std::cout << "\nanchor cells (measured vs. paper):\n";
  for (const auto& a : anchors) {
    const std::size_t f = idx(a.fg), b = idx(a.bg);
    if (f < m.size() && b < m.size())
      std::cout << "  " << a.fg << " + " << a.bg << " bg: "
                << harness::Table::fmt(m.at(f, b)) << "x (paper " << a.paper
                << ")\n";
  }

  if (args.csv) std::cout << "\n" << harness::report::to_csv(m);
  if (args.json) std::cout << "\n" << harness::report::to_json(m) << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
