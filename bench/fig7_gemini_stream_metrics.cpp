// Fig. 7 (a-d): CPI, L2_PCP, LLC MPKI and LL of the five GeminiGraph
// applications' hot edge loops, solo vs. co-running with Stream.
#include "bench_common.hpp"
#include "harness/report.hpp"

namespace {

coperf::perf::RegionProfile hot_region(
    const std::vector<coperf::perf::RegionProfile>& regions) {
  // Regions are sorted by cycles; take the hottest tagged one.
  for (const auto& r : regions)
    if (r.region != "<untagged>") return r;
  return regions.empty() ? coperf::perf::RegionProfile{} : regions.front();
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv);
  bench::print_config(args,
                      "Fig. 7 -- Gemini hot-region metrics, solo vs Stream");

  const char* apps[] = {"G-SSSP", "G-PR", "G-CC", "G-BC", "G-BFS"};
  const unsigned reps = args.effective_reps();
  const harness::RunOptions opt = args.run_options();

  harness::ExperimentPlan plan = args.plan();
  auto vs_stream = [&](const char* app) {
    return harness::GroupSpec::pair(app, "Stream", opt.threads,
                                    opt.bg_threads);
  };
  for (const char* app : apps) {
    plan.add_solo({app, args.threads, reps});
    plan.add_group(vs_stream(app), reps);
  }
  const harness::ResultSet rs = plan.execute(0, bench::plan_progress());

  harness::Table table{{"workload", "region", "CPI solo", "CPI +Stream",
                        "PCP solo", "PCP +Stream", "MPKI solo", "MPKI +Stream",
                        "LL solo", "LL +Stream"}};
  std::string csv =
      "workload,cpi_solo,cpi_stream,pcp_solo,pcp_stream,mpki_solo,"
      "mpki_stream,ll_solo,ll_stream\n";
  using harness::Table;
  for (const char* app : apps) {
    const auto solo = rs.solo({app, args.threads, reps});
    const auto pair = rs.group(vs_stream(app), reps);
    const auto rsolo = hot_region(solo.regions);
    const auto rp = hot_region(pair.members[0].regions);
    table.add_row({app, rsolo.region, Table::fmt(rsolo.metrics.cpi),
                   Table::fmt(rp.metrics.cpi),
                   Table::fmt(rsolo.metrics.l2_pcp * 100, 0) + "%",
                   Table::fmt(rp.metrics.l2_pcp * 100, 0) + "%",
                   Table::fmt(rsolo.metrics.llc_mpki),
                   Table::fmt(rp.metrics.llc_mpki),
                   Table::fmt(rsolo.metrics.ll), Table::fmt(rp.metrics.ll)});
    csv += std::string{app} + "," + Table::fmt(rsolo.metrics.cpi, 3) + "," +
           Table::fmt(rp.metrics.cpi, 3) + "," +
           Table::fmt(rsolo.metrics.l2_pcp, 3) + "," +
           Table::fmt(rp.metrics.l2_pcp, 3) + "," +
           Table::fmt(rsolo.metrics.llc_mpki, 3) + "," +
           Table::fmt(rp.metrics.llc_mpki, 3) + "," +
           Table::fmt(rsolo.metrics.ll, 3) + "," + Table::fmt(rp.metrics.ll, 3) +
           "\n";
  }
  table.print(std::cout);
  std::cout << "\n(paper: under Stream, LLC MPKI ~x2.6, CPI >x2, L2_PCP up "
               "to 93% for G-PR, LL >x2)\n";
  if (args.csv) std::cout << "\n" << csv;
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
