// Predictor accuracy: the O(N) -> O(N^2) story, end to end.
//
// 1. Build ONE plan holding the measured co-run matrix (the expensive
//    ground truth) and the N solo profiles -- the solos double as the
//    matrix's baselines, so the plan simulates each unique trial
//    exactly once.
// 2. Derive N solo signatures from the plan's solo results (the cheap
//    O(N) pass).
// 3. Predict the matrix with the analytic bandwidth model and, via
//    leave-one-workload-out, with the data-driven kNN and least-squares
//    models.
// 4. Report MAE / Spearman rho / pair-class confusion per model, and
//    the scheduling regret: how much worse a schedule planned on the
//    predicted matrix is when billed at measured cost.
// 5. Re-baseline against *measured group truth*: a deterministic
//    sample of 3-resident groups is truly measured (GroupTruth) and
//    both the additive composition of measured pairs and the models'
//    predict_group() are scored against it -- the additive-vs-measured
//    gap the pairwise era could not see.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "harness/grouptruth.hpp"
#include "harness/report.hpp"
#include "predict/eval.hpp"

int main(int argc, char** argv) try {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv, /*subset_supported=*/true);
  bench::print_config(args, "predictor accuracy -- solo signatures vs. "
                            "measured co-run matrix");

  // Default subset: one representative per suite plus both
  // mini-benchmarks -- small enough to measure, diverse enough that the
  // three pair classes all appear.
  std::vector<std::string> subset = args.subset;
  if (subset.empty())
    subset = {"Stream", "Bandit", "G-PR", "CIFAR", "fotonik3d",
              "swaptions", "IRSmk", "blackscholes"};

  const unsigned reps = args.effective_reps();
  harness::MatrixSpec mspec{subset, reps, {}};
  harness::ExperimentPlan plan = args.plan();
  plan.add_matrix(mspec);  // solo baselines + all fg x bg cells
  std::cout << "plan: " << subset.size() << " solos + " << subset.size() << "x"
            << subset.size() << " co-runs = " << plan.trial_count()
            << " unique trials (" << plan.residue_count()
            << " not yet cached)\n\n";
  const harness::ResultSet rs = plan.execute(0, bench::plan_progress());

  std::vector<predict::WorkloadSignature> sigs;
  for (const auto& w : subset)
    sigs.push_back(predict::WorkloadSignature::from(
        rs.solo({w, args.threads, reps}), args.machine()));
  const harness::CorunMatrix measured = rs.matrix(mspec);

  std::string csv = "model,mae,rmse,spearman,class_agreement,regret\n";
  const auto report = [&](const std::string& name,
                          const predict::EvalResult& e,
                          const harness::CorunMatrix& predicted) {
    std::cout << "-- " << name << " --\n" << e.summary();
    std::vector<std::size_t> jobs(measured.size() & ~std::size_t{1});
    for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i] = i;
    const auto sched = predict::compare_scheduling(measured, predicted, jobs);
    std::cout << "scheduling: predicted-plan cost "
              << harness::Table::fmt(sched.from_predicted.total_cost)
              << " vs oracle " << harness::Table::fmt(sched.from_measured.total_cost)
              << " vs worst " << harness::Table::fmt(sched.worst.total_cost)
              << " (regret " << harness::Table::fmt(sched.regret, 3) << "x)\n\n";
    csv += name + "," + harness::Table::fmt(e.mae, 4) + "," +
           harness::Table::fmt(e.rmse, 4) + "," +
           harness::Table::fmt(e.spearman, 4) + "," +
           harness::Table::fmt(e.confusion.agreement(), 4) + "," +
           harness::Table::fmt(sched.regret, 4) + "\n";
  };

  // Analytic model: no training, pure counter arithmetic.
  const predict::BandwidthContentionModel analytic;
  const harness::CorunMatrix analytic_pred =
      predict::predicted_matrix(sigs, analytic);
  report("bandwidth (analytic)", predict::evaluate(measured, analytic_pred),
         analytic_pred);

  // Data-driven models under the honest leave-one-workload-out
  // protocol: both the accuracy numbers and the scheduling regret come
  // from the held-out assembled matrix.
  if (measured.size() >= 3) {
    {
      harness::CorunMatrix loo_pred;
      const auto loo = predict::leave_one_out(
          measured, sigs,
          [] { return std::make_unique<predict::KnnModel>(); }, &loo_pred);
      report("knn (leave-one-out)", loo, loo_pred);
    }
    {
      harness::CorunMatrix loo_pred;
      const auto loo = predict::leave_one_out(
          measured, sigs,
          [] { return std::make_unique<predict::LeastSquaresModel>(); },
          &loo_pred);
      report("lstsq (leave-one-out)", loo, loo_pred);
    }
  }

  // -- Group-truth re-baseline -----------------------------------------
  // Measured 3-resident groups (members at cores/3 threads so the trio
  // fills the machine) vs the additive composition the pairwise era
  // assumed was ground truth. The sample is a deterministic stride over
  // all distinct triples, capped so this stays a side dish; the cap is
  // printed, never silent.
  if (subset.size() >= 3) {
    harness::GroupTruth::Config gcfg;
    gcfg.workloads = subset;
    gcfg.opt = args.run_options();
    gcfg.reps = reps;
    gcfg.max_arity = 3;
    gcfg.member_threads =
        std::max(1u, gcfg.opt.machine.num_cores / gcfg.max_arity);
    harness::GroupTruth truth{gcfg};

    std::vector<std::vector<std::size_t>> triples;
    for (std::size_t i = 0; i < subset.size(); ++i)
      for (std::size_t j = i + 1; j < subset.size(); ++j)
        for (std::size_t k = j + 1; k < subset.size(); ++k)
          triples.push_back({i, j, k});
    constexpr std::size_t kMaxGroups = 12;
    std::vector<std::vector<std::size_t>> sample;
    const std::size_t stride = std::max<std::size_t>(1, triples.size() / kMaxGroups);
    for (std::size_t t = 0; t < triples.size() && sample.size() < kMaxGroups;
         t += stride)
      sample.push_back(triples[t]);

    std::cout << "\n== group-truth re-baseline ==\n"
              << "measuring " << sample.size() << " of " << triples.size()
              << " distinct 3-resident groups (every member foreground once, "
              << gcfg.member_threads << " threads/member) + the pairwise "
              << "projection...\n";
    truth.prefetch(sample, bench::plan_progress());
    const harness::CorunMatrix& pairwise = truth.pairwise();
    std::vector<predict::WorkloadSignature> gsigs;
    for (std::size_t i = 0; i < subset.size(); ++i)
      gsigs.push_back(
          predict::WorkloadSignature::from(truth.solo(i), args.machine()));

    std::vector<harness::GroupObservation> obs;
    for (auto& o : truth.observations())
      if (o.others.size() >= 2) obs.push_back(std::move(o));
    const auto ge = predict::evaluate_groups(obs, gsigs, pairwise, analytic);
    std::cout << ge.observations << " member observations:\n"
              << "  composed measured pairs : MAE "
              << harness::Table::fmt(ge.additive_mae, 4) << ", RMSE "
              << harness::Table::fmt(ge.additive_rmse, 4) << ", max gap "
              << harness::Table::fmt(ge.max_additive_gap, 4) << "\n"
              << "  analytic predict_group  : MAE "
              << harness::Table::fmt(ge.model_mae, 4) << ", RMSE "
              << harness::Table::fmt(ge.model_rmse, 4) << ", Spearman "
              << harness::Table::fmt(ge.model_spearman, 4) << "\n";
    csv += "group-additive," + harness::Table::fmt(ge.additive_mae, 4) + "," +
           harness::Table::fmt(ge.additive_rmse, 4) + ",,,\n";
    csv += "group-analytic," + harness::Table::fmt(ge.model_mae, 4) + "," +
           harness::Table::fmt(ge.model_rmse, 4) + "," +
           harness::Table::fmt(ge.model_spearman, 4) + ",,\n";
  }

  std::cout << "\ncost: measured sweep = " << subset.size() * subset.size()
            << " co-runs; predictor = " << subset.size()
            << " solo runs + inference\n";
  if (args.csv) std::cout << "\n" << csv;
  if (args.json)
    std::cout << "\n" << harness::report::to_json(measured) << "\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
