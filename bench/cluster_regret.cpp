// Cluster placement regret billed at *measured group truth*: what
// prediction quality buys an online scheduler, and what the additive
// pairwise approximation was hiding.
//
// 1. Build a GroupTruth over the subset (default: the 8-workload Tiny
//    set predictor_accuracy uses) and batch-measure every resident
//    multiset a machine with --slots co-run slots can hold, up to
//    --max-truth-arity residents, in ONE deduplicated plan -- each
//    unique group simulates exactly once and repeats are served by the
//    content-addressed RunCache (set COPERF_RUN_CACHE_DIR to reuse
//    across invocations). Members run at cores/slots threads so the
//    largest group fills the machine.
// 2. Report the additive-vs-measured gap: how far composing the
//    measured pairwise projection lands from the truly measured
//    3+-resident slowdowns (predict::evaluate_groups).
// 3. Build the analytic predicted matrix from the solo signatures and
//    distill it into the trainable models (kNN, least squares).
// 4. Sweep synthetic arrival traces (--reps seeds) through the cluster
//    simulator under each policy and report mean stretch and
//    per-decision regret billed at group truth: random,
//    static-analytic (frozen prediction), online-refined lstsq/knn
//    (prediction + group-outcome feedback, 3-resident outcomes
//    deconvolved into pairwise refinement), and the group-truth oracle
//    (zero regret by construction). Any query the truth had to answer
//    by additive composition is counted and printed as a
//    pairwise-fallback -- zero when --max-truth-arity >= --slots.
#include <algorithm>
#include <iostream>
#include <memory>
#include <sstream>

#include "bench_common.hpp"
#include "cluster/cluster.hpp"
#include "harness/grouptruth.hpp"
#include "harness/report.hpp"
#include "harness/runcache.hpp"
#include "predict/eval.hpp"
#include "predict/predicted_matrix.hpp"
#include "snapshot.hpp"

int main(int argc, char** argv) try {
  using namespace coperf;
  unsigned machines = 4, slots = 3, max_truth_arity = 3;
  const auto extra = [&](const std::string& arg) {
    if (arg.rfind("--machines=", 0) == 0) {
      machines = bench::parse_unsigned("--machines", arg.substr(11));
      return true;
    }
    if (arg.rfind("--slots=", 0) == 0) {
      slots = bench::parse_unsigned("--slots", arg.substr(8));
      return true;
    }
    if (arg.rfind("--max-truth-arity=", 0) == 0) {
      max_truth_arity =
          bench::parse_unsigned("--max-truth-arity", arg.substr(18));
      return true;
    }
    return false;
  };
  const auto args = bench::parse_args(
      argc, argv, /*subset_supported=*/true, extra,
      "--machines=N --slots=N --max-truth-arity=N");
  bench::print_config(args, "cluster placement regret at measured group "
                            "truth -- {random, static, online} vs oracle");
  if (slots < 2 || machines == 0 || max_truth_arity < 2) {
    std::cerr << "need --machines >= 1, --slots >= 2, --max-truth-arity >= 2\n";
    return 2;
  }

  std::vector<std::string> subset = args.subset;
  if (subset.empty())
    subset = {"Stream", "Bandit", "G-PR", "CIFAR", "fotonik3d",
              "swaptions", "IRSmk", "blackscholes"};

  const unsigned reps = args.effective_reps();

  // Ground truth: measured resident groups. Members share the machine
  // evenly, so the largest measured group fills its cores.
  harness::GroupTruth::Config gcfg;
  gcfg.workloads = subset;
  gcfg.opt = args.run_options();
  gcfg.reps = reps;
  gcfg.max_arity = std::min(max_truth_arity, slots);
  // Divide cores by SLOTS, not arity: a full machine holds `slots`
  // residents, so this is the geometry every trial (measured group or
  // composed pair) must be run at for the truth to describe it.
  gcfg.member_threads =
      std::max(1u, gcfg.opt.machine.num_cores / std::max(slots, 2u));
  harness::GroupTruth truth{gcfg};

  std::cout << "ground truth: " << subset.size() << " solos + every <= "
            << gcfg.max_arity << "-resident multiset of " << subset.size()
            << " types at " << gcfg.member_threads << " threads/member\n";
  const auto pstats = truth.prefetch_all(gcfg.max_arity, bench::plan_progress());
  std::cout << "  " << pstats.trials << " unique trials ("
            << pstats.residue << " to simulate, rest cached)\n";
  if (truth.truncated_trials() > 0)
    std::cerr << "WARNING: " << truth.truncated_trials()
              << " group trial(s) hit the cycle limit -- their slowdowns "
                 "are lower bounds, not measurements (raise cycle_limit or "
                 "shrink --size)\n";

  // RunCache behaviour comes off the uniform metrics surface (the
  // counters the cache maintains in the obs registry), not bespoke
  // Stats plumbing -- the same numbers --metrics exposes.
  obs::Registry& reg = Session::metrics();
  std::cout << "run cache: " << reg.counter("runcache.misses").value()
            << " simulated, " << reg.counter("runcache.hits").value()
            << " memory hits, " << reg.counter("runcache.disk_hits").value()
            << " disk hits";
  if (harness::RunCache::instance().disk_dir().empty())
    std::cout << " (set COPERF_RUN_CACHE_DIR to reuse across invocations)";
  std::cout << "\n\n";

  std::vector<predict::WorkloadSignature> sigs;
  for (std::size_t i = 0; i < subset.size(); ++i)
    sigs.push_back(
        predict::WorkloadSignature::from(truth.solo(i), args.machine()));
  const harness::CorunMatrix& pairwise = truth.pairwise();

  const predict::BandwidthContentionModel analytic;
  const harness::CorunMatrix predicted =
      predict::predicted_matrix(sigs, analytic);
  const auto distilled_pairs = predict::training_pairs(predicted, sigs);

  // The additive-vs-measured gap over every measured 3+-resident group:
  // what the pre-grouptruth pipeline billed with vs what actually runs.
  predict::GroupEval gap{};
  {
    std::vector<harness::GroupObservation> big;
    for (auto& o : truth.observations())
      if (o.others.size() >= 2) big.push_back(std::move(o));
    if (!big.empty()) {
      gap = predict::evaluate_groups(big, sigs, pairwise, analytic);
      std::cout << "additive composition vs measured >=3-resident truth ("
                << gap.observations << " member observations):\n"
                << "  composed-pairwise MAE "
                << harness::Table::fmt(gap.additive_mae, 4) << " (max gap "
                << harness::Table::fmt(gap.max_additive_gap, 4)
                << "), analytic predict_group MAE "
                << harness::Table::fmt(gap.model_mae, 4) << "\n\n";
    }
  }

  cluster::ClusterConfig cfg;
  cfg.machines = machines;
  cfg.slots = slots;
  cfg.type_names = subset;  // label the trace timeline with real names
  cluster::TraceOptions topt;
  topt.jobs = 1000;
  topt.mean_work = 8.0;
  topt.mean_interarrival =
      topt.mean_work / (0.8 * static_cast<double>(cfg.machines * cfg.slots));

  // Trace seeds are independent of the measurement reps: even a
  // --quick run sweeps a few arrival patterns.
  const unsigned seeds = std::max(3u, args.effective_reps());
  struct Row {
    std::string name;
    double stretch = 0.0, slowdown = 0.0, regret = 0.0;
    std::uint64_t fallbacks = 0;
  };
  std::vector<Row> rows = {{"random", 0, 0, 0, 0},
                           {"static-analytic", 0, 0, 0, 0},
                           {"online-lstsq", 0, 0, 0, 0},
                           {"online-knn", 0, 0, 0, 0},
                           {"oracle", 0, 0, 0, 0}};

  std::cout << "sweeping " << seeds << " arrival trace(s) of " << topt.jobs
            << " jobs over " << cfg.machines << " machines x " << cfg.slots
            << " slots...\n";
  for (unsigned seed = 1; seed <= seeds; ++seed) {
    topt.seed = seed;
    const auto trace = cluster::synthetic_trace(subset.size(), topt);

    // Fresh policy state per trace: regret measures one cold start.
    auto lstsq = std::make_unique<predict::LeastSquaresModel>();
    lstsq->train(distilled_pairs);
    auto knn = std::make_unique<predict::KnnModel>();
    knn->train(distilled_pairs);
    cluster::RandomPolicy random{seed};
    cluster::CostModelPolicy statics{"static-analytic", predicted};
    cluster::OnlineRefinedPolicy online_lstsq{"online-lstsq",
                                              std::move(lstsq), sigs};
    cluster::OnlineRefinedPolicy online_knn{"online-knn", std::move(knn),
                                            sigs};
    cluster::GroupTruthPolicy oracle{"oracle", truth};

    cluster::PlacementPolicy* policies[] = {&random, &statics, &online_lstsq,
                                            &online_knn, &oracle};
    for (std::size_t p = 0; p < rows.size(); ++p) {
      const auto run = cluster::simulate(cfg, truth, trace, *policies[p]);
      rows[p].stretch += run.mean_stretch;
      rows[p].slowdown += run.mean_corun_slowdown;
      rows[p].regret += run.mean_decision_regret;
      rows[p].fallbacks += run.pairwise_fallbacks;
    }
  }

  harness::Table table{{"policy", "mean stretch", "co-run slowdown",
                        "decision regret", "pairwise fallbacks"}};
  std::string csv =
      "policy,mean_stretch,corun_slowdown,decision_regret,"
      "pairwise_fallbacks\n";
  std::uint64_t total_fallbacks = 0;
  for (Row& r : rows) {
    r.stretch /= seeds;
    r.slowdown /= seeds;
    r.regret /= seeds;
    total_fallbacks += r.fallbacks;
    table.add_row({r.name, harness::Table::fmt(r.stretch, 3),
                   harness::Table::fmt(r.slowdown, 3),
                   harness::Table::fmt(r.regret, 4),
                   std::to_string(r.fallbacks)});
    csv += r.name + "," + harness::Table::fmt(r.stretch, 4) + "," +
           harness::Table::fmt(r.slowdown, 4) + "," +
           harness::Table::fmt(r.regret, 5) + "," +
           std::to_string(r.fallbacks) + "\n";
  }
  table.print(std::cout);

  std::cout << "\npairwise-fallback count: " << total_fallbacks
            << " (max-truth-arity=" << gcfg.max_arity << ", slots=" << slots
            << (total_fallbacks == 0
                    ? ") -- every billed group was truly measured\n"
                    : ") -- groups above the measured arity were billed by "
                      "additive composition\n");

  const double static_regret = rows[1].regret;
  const double online_regret = rows[2].regret;
  const double oracle_regret = rows[4].regret;
  std::cout << "\nper-decision placement regret (machine time handed to "
               "interference, billed at measured group truth):\n"
            << "  online-refined " << harness::Table::fmt(online_regret, 4)
            << " vs static-analytic "
            << harness::Table::fmt(static_regret, 4) << " -- "
            << (online_regret <= static_regret + 1e-9 ? "refinement pays"
                                                      : "REGRESSION")
            << "\n  group-truth oracle "
            << harness::Table::fmt(oracle_regret, 4)
            << (oracle_regret <= 1e-9 ? " (zero by construction)" : "")
            << "\n";
  if (args.csv) std::cout << "\n" << csv;
  if (args.json) {
    std::ostringstream js;
    js << "{\n"
       << "  \"config\": {\"size\": \"" << bench::size_name(args.size())
       << "\", \"reps\": " << reps << ", \"workloads\": " << subset.size()
       << ", \"machines\": " << machines << ", \"slots\": " << slots
       << ", \"max_truth_arity\": " << gcfg.max_arity
       << ", \"seeds\": " << seeds << "},\n"
       << "  \"truth\": {\"trials\": " << pstats.trials
       << ", \"residue\": " << pstats.residue
       << ", \"truncated\": " << truth.truncated_trials() << "},\n"
       << "  \"additive_gap\": {\"observations\": " << gap.observations
       << ", \"additive_mae\": " << gap.additive_mae
       << ", \"max_additive_gap\": " << gap.max_additive_gap
       << ", \"model_mae\": " << gap.model_mae << "},\n"
       << "  \"policies\": [\n";
    for (std::size_t p = 0; p < rows.size(); ++p)
      js << "    {\"name\": \"" << rows[p].name
         << "\", \"mean_stretch\": " << rows[p].stretch
         << ", \"corun_slowdown\": " << rows[p].slowdown
         << ", \"decision_regret\": " << rows[p].regret
         << ", \"pairwise_fallbacks\": " << rows[p].fallbacks << "}"
         << (p + 1 < rows.size() ? "," : "") << "\n";
    js << "  ]\n}\n";
    std::cout << "\n" << js.str();
    bench::write_snapshot("cluster_regret", js.str());
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
