// Cluster placement regret: what prediction quality buys an online
// scheduler, and what online refinement buys on top.
//
// 1. Build ONE plan for the ground truth: the co-run matrix on a
//    subset (default: the 8-workload Tiny set predictor_accuracy
//    uses) plus the solo profiles, deduplicated so each unique trial
//    simulates once -- and served from the content-addressed RunCache
//    when available, so repeated regret runs (and earlier
//    predictor_accuracy / fig5 invocations with COPERF_RUN_CACHE_DIR
//    set) stop re-simulating solos and pairs.
// 2. Build the analytic predicted matrix from solo signatures, and
//    distill it into the trainable models (kNN, least squares) so they
//    can absorb observations.
// 3. Sweep synthetic arrival traces (--reps seeds) through the cluster
//    simulator under each policy and report mean stretch and regret
//    against the oracle: random, static-analytic (frozen prediction),
//    online-refined lstsq/knn (prediction + observe() feedback), oracle.
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "cluster/cluster.hpp"
#include "harness/report.hpp"
#include "harness/runcache.hpp"
#include "predict/predicted_matrix.hpp"

int main(int argc, char** argv) try {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv, /*subset_supported=*/true);
  bench::print_config(args, "cluster placement regret -- "
                            "{random, static, online} vs oracle");

  std::vector<std::string> subset = args.subset;
  if (subset.empty())
    subset = {"Stream", "Bandit", "G-PR", "CIFAR", "fotonik3d",
              "swaptions", "IRSmk", "blackscholes"};

  const unsigned reps = args.effective_reps();
  harness::RunCache& cache = harness::RunCache::instance();
  cache.reset_stats();

  harness::MatrixSpec mspec{subset, reps, {}};
  harness::ExperimentPlan plan = args.plan();
  plan.add_matrix(mspec);
  std::cout << "ground truth: " << subset.size() << " solos + "
            << subset.size() << "x" << subset.size() << " co-runs, "
            << plan.trial_count() << " unique trials ("
            << plan.residue_count() << " to simulate, rest cached)\n";
  const harness::ResultSet rs = plan.execute(0, bench::plan_progress());

  const auto cstats = cache.stats();
  std::cout << "run cache: " << cstats.misses << " simulated, "
            << cstats.hits << " memory hits, " << cstats.disk_hits
            << " disk hits";
  if (cache.disk_dir().empty())
    std::cout << " (set COPERF_RUN_CACHE_DIR to reuse across invocations)";
  std::cout << "\n\n";

  std::vector<predict::WorkloadSignature> sigs;
  for (const auto& w : subset)
    sigs.push_back(predict::WorkloadSignature::from(
        rs.solo({w, args.threads, reps}), args.machine()));
  const harness::CorunMatrix truth = rs.matrix(mspec);

  const predict::BandwidthContentionModel analytic;
  const harness::CorunMatrix predicted = predict::predicted_matrix(sigs, analytic);
  const auto distilled_pairs = predict::training_pairs(predicted, sigs);

  cluster::ClusterConfig cfg;
  cfg.machines = 4;
  cfg.slots = 2;
  cluster::TraceOptions topt;
  topt.jobs = 1000;
  topt.mean_work = 8.0;
  topt.mean_interarrival =
      topt.mean_work / (0.8 * static_cast<double>(cfg.machines * cfg.slots));

  // Trace seeds are independent of the measurement reps: even a
  // --quick run sweeps a few arrival patterns.
  const unsigned seeds = std::max(3u, args.effective_reps());
  struct Row {
    std::string name;
    double stretch = 0.0, slowdown = 0.0, regret = 0.0;
  };
  std::vector<Row> rows = {{"random", 0, 0, 0},
                           {"static-analytic", 0, 0, 0},
                           {"online-lstsq", 0, 0, 0},
                           {"online-knn", 0, 0, 0},
                           {"oracle", 0, 0, 0}};

  std::cout << "sweeping " << seeds << " arrival trace(s) of " << topt.jobs
            << " jobs over " << cfg.machines << " machines x " << cfg.slots
            << " slots...\n";
  for (unsigned seed = 1; seed <= seeds; ++seed) {
    topt.seed = seed;
    const auto trace = cluster::synthetic_trace(subset.size(), topt);

    // Fresh policy state per trace: regret measures one cold start.
    auto lstsq = std::make_unique<predict::LeastSquaresModel>();
    lstsq->train(distilled_pairs);
    auto knn = std::make_unique<predict::KnnModel>();
    knn->train(distilled_pairs);
    cluster::RandomPolicy random{seed};
    cluster::CostModelPolicy statics{"static-analytic", predicted};
    cluster::OnlineRefinedPolicy online_lstsq{"online-lstsq",
                                              std::move(lstsq), sigs};
    cluster::OnlineRefinedPolicy online_knn{"online-knn", std::move(knn),
                                            sigs};
    cluster::CostModelPolicy oracle{"oracle", truth};

    cluster::PlacementPolicy* policies[] = {&random, &statics, &online_lstsq,
                                            &online_knn, &oracle};
    for (std::size_t p = 0; p < rows.size(); ++p) {
      const auto run = cluster::simulate(cfg, truth, trace, *policies[p]);
      rows[p].stretch += run.mean_stretch;
      rows[p].slowdown += run.mean_corun_slowdown;
      rows[p].regret += run.mean_decision_regret;
    }
  }

  harness::Table table{{"policy", "mean stretch", "co-run slowdown",
                        "decision regret"}};
  std::string csv = "policy,mean_stretch,corun_slowdown,decision_regret\n";
  for (Row& r : rows) {
    r.stretch /= seeds;
    r.slowdown /= seeds;
    r.regret /= seeds;
    table.add_row({r.name, harness::Table::fmt(r.stretch, 3),
                   harness::Table::fmt(r.slowdown, 3),
                   harness::Table::fmt(r.regret, 4)});
    csv += r.name + "," + harness::Table::fmt(r.stretch, 4) + "," +
           harness::Table::fmt(r.slowdown, 4) + "," +
           harness::Table::fmt(r.regret, 5) + "\n";
  }
  table.print(std::cout);

  const double static_regret = rows[1].regret;
  const double online_regret = rows[2].regret;
  std::cout << "\nper-decision placement regret (machine time handed to "
               "interference, billed at ground truth):\n"
            << "  online-refined " << harness::Table::fmt(online_regret, 4)
            << " vs static-analytic "
            << harness::Table::fmt(static_regret, 4) << " -- "
            << (online_regret <= static_regret + 1e-9 ? "refinement pays"
                                                      : "REGRESSION")
            << "\n";
  if (args.csv) std::cout << "\n" << csv;
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
