// Fig. 3: memory bandwidth of every application at 1, 4, and 8
// threads, measured PCM-style over the whole run. One plan of solo
// specs; thread counts already simulated elsewhere are cache hits.
#include "bench_common.hpp"
#include "harness/report.hpp"
#include "wl/registry.hpp"

int main(int argc, char** argv) try {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv);
  bench::print_config(args, "Fig. 3 -- per-app DRAM bandwidth (GB/s)");

  constexpr unsigned kThreadCounts[] = {1, 4, 8};
  const auto workloads = wl::Registry::instance().all();

  harness::ExperimentPlan plan = args.plan();
  for (const auto* w : workloads)
    for (unsigned t : kThreadCounts)
      plan.add_solo({w->name, t, args.effective_reps()});
  const harness::ResultSet rs = plan.execute(0, bench::plan_progress());

  harness::Table table{{"suite", "workload", "1-thread", "4-thread",
                        "8-thread"}};
  std::string csv = "suite,workload,threads,bw_gbs\n";
  for (const auto* w : workloads) {
    std::vector<std::string> row{w->suite, w->name};
    for (unsigned t : kThreadCounts) {
      const double bw =
          rs.solo({w->name, t, args.effective_reps()}).avg_bw_gbs;
      row.push_back(harness::Table::fmt(bw, 1));
      csv += w->suite + "," + w->name + "," + std::to_string(t) + "," +
             harness::Table::fmt(bw, 2) + "\n";
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(system practical peak: "
            << args.machine().peak_bw_gbs << " GB/s; paper anchors @4T: "
            << "Stream 24.5, Bandit 18, fotonik3d 18.4, IRSmk 18.1, "
               "G-CC 17.8, CIFAR 7-8)\n";
  if (args.csv) std::cout << "\n" << csv;
  if (args.json) {
    std::cout << "\n[";
    bool first = true;
    for (const auto* w : workloads)
      for (unsigned t : kThreadCounts) {
        if (!first) std::cout << ", ";
        first = false;
        std::cout << harness::report::to_json(
            rs.solo({w->name, t, args.effective_reps()}));
      }
    std::cout << "]\n";
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
