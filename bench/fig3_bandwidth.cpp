// Fig. 3: memory bandwidth of every application at 1, 4, and 8
// threads, measured PCM-style over the whole run.
#include "bench_common.hpp"
#include "harness/parallel.hpp"
#include "harness/report.hpp"
#include "wl/registry.hpp"

int main(int argc, char** argv) {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv);
  bench::print_config(args, "Fig. 3 -- per-app DRAM bandwidth (GB/s)");

  harness::Table table{{"suite", "workload", "1-thread", "4-thread",
                        "8-thread"}};
  std::string csv = "suite,workload,threads,bw_gbs\n";
  harness::RunOptions opt = args.run_options();
  const auto workloads = wl::Registry::instance().all();
  constexpr unsigned kThreadCounts[] = {1, 4, 8};
  std::vector<double> bw(workloads.size() * 3, 0.0);
  harness::parallel_for(bw.size(), 0, [&](std::size_t idx) {
    harness::RunOptions o = opt;
    o.threads = kThreadCounts[idx % 3];
    bw[idx] = harness::run_solo_median(workloads[idx / 3]->name, o,
                                       args.effective_reps())
                  .avg_bw_gbs;
  });
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const auto* w = workloads[i];
    std::vector<std::string> row{w->suite, w->name};
    for (std::size_t t = 0; t < 3; ++t) {
      row.push_back(harness::Table::fmt(bw[i * 3 + t], 1));
      csv += w->suite + "," + w->name + "," +
             std::to_string(kThreadCounts[t]) + "," +
             harness::Table::fmt(bw[i * 3 + t], 2) + "\n";
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(system practical peak: "
            << args.machine().peak_bw_gbs << " GB/s; paper anchors @4T: "
            << "Stream 24.5, Bandit 18, fotonik3d 18.4, IRSmk 18.1, "
               "G-CC 17.8, CIFAR 7-8)\n";
  if (args.csv) std::cout << "\n" << csv;
  return 0;
}
