// Fleet-scale scheduler throughput: how fast the indexed cluster
// engine makes placement decisions at datacenter size, and what regret
// sampling costs in fidelity.
//
// Unlike cluster_regret (which measures a real GroupTruth and sweeps
// policy quality at 4x3), this bench is about the *event loop itself*:
// a synthetic 8-type co-run matrix drives a ladder of fleet scales --
// 1k to 10k machines, 100k to 1M arrivals from the fleet trace
// generators (bursty arrivals, Pareto work by default) -- and reports
// decisions/sec, wall time, and the sampled decision regret per rung,
// for both an O(1)-per-decision policy (random) and the O(open
// machines) cost-model argmin (oracle over the same matrix, so its
// regret is ~0 and any drift is engine error).
//
//   --quick           first rung only (1000 machines x 100k arrivals)
//   --machines=N      single rung at N machines (with --jobs)
//   --jobs=N          single rung at N arrivals (with --machines)
//   --slots=N         co-run slots per machine (default 2)
//   --regret-sample=N bill ground-truth regret every Nth decision
//                     (default 1000; 0 = never)
//   --arrivals=M      poisson | diurnal | bursty   (default bursty)
//   --work=M          uniform | pareto             (default pareto)
//   --trace=FILE      Chrome trace of the run (machine lanes are
//                     emitted per simulated machine: use small rungs)
//
// --json appends machine-readable output and persists it as
// BENCH_fleet_throughput.json at the repo root (the perf-CI snapshot).
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/cluster.hpp"
#include "harness/report.hpp"
#include "snapshot.hpp"

namespace {

/// Deterministic 8-type co-run matrix with hog/victim structure: type
/// b's aggression and type f's sensitivity rise with the index, so the
/// matrix spans harmonious (1.0x) to destructive (~1.9x) pairs.
coperf::harness::CorunMatrix synthetic_fleet_truth(std::size_t n_types) {
  coperf::harness::CorunMatrix m;
  for (std::size_t i = 0; i < n_types; ++i) {
    m.workloads.push_back("t" + std::to_string(i));
    m.solo_cycles.push_back(1'000'000);
  }
  m.normalized.assign(n_types, std::vector<double>(n_types, 1.0));
  const double den = static_cast<double>(n_types - 1);
  for (std::size_t f = 0; f < n_types; ++f)
    for (std::size_t b = 0; b < n_types; ++b) {
      const double sensitivity = 0.2 + 0.8 * static_cast<double>(f) / den;
      const double aggression = static_cast<double>(b) / den;
      m.normalized[f][b] = 1.0 + 1.1 * sensitivity * aggression;
    }
  return m;
}

struct Rung {
  std::size_t machines;
  std::size_t jobs;
};

}  // namespace

int main(int argc, char** argv) try {
  using namespace coperf;
  using Clock = std::chrono::steady_clock;

  unsigned machines = 0, jobs = 0, slots = 2, regret_sample = 1000;
  cluster::ArrivalModel arrivals = cluster::ArrivalModel::Bursty;
  cluster::WorkModel work = cluster::WorkModel::Pareto;
  const auto extra = [&](const std::string& arg) {
    if (arg.rfind("--machines=", 0) == 0) {
      machines = bench::parse_unsigned("--machines", arg.substr(11));
      return true;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      jobs = bench::parse_unsigned("--jobs", arg.substr(7));
      return true;
    }
    if (arg.rfind("--slots=", 0) == 0) {
      slots = bench::parse_unsigned("--slots", arg.substr(8));
      return true;
    }
    if (arg.rfind("--regret-sample=", 0) == 0) {
      regret_sample = bench::parse_unsigned("--regret-sample", arg.substr(16));
      return true;
    }
    if (arg.rfind("--arrivals=", 0) == 0) {
      const std::string v = arg.substr(11);
      if (v == "poisson") arrivals = cluster::ArrivalModel::Poisson;
      else if (v == "diurnal") arrivals = cluster::ArrivalModel::Diurnal;
      else if (v == "bursty") arrivals = cluster::ArrivalModel::Bursty;
      else {
        std::cerr << "--arrivals wants poisson|diurnal|bursty\n";
        std::exit(2);
      }
      return true;
    }
    if (arg.rfind("--work=", 0) == 0) {
      const std::string v = arg.substr(7);
      if (v == "uniform") work = cluster::WorkModel::Uniform;
      else if (v == "pareto") work = cluster::WorkModel::Pareto;
      else {
        std::cerr << "--work wants uniform|pareto\n";
        std::exit(2);
      }
      return true;
    }
    return false;
  };
  const auto args = bench::parse_args(
      argc, argv, /*subset_supported=*/false, extra,
      "--machines=N --jobs=N --slots=N --regret-sample=N "
      "--arrivals=poisson|diurnal|bursty --work=uniform|pareto");
  bench::print_config(args, "fleet-scale cluster engine throughput "
                            "(decisions/sec on the indexed event loop)");
  if ((machines == 0) != (jobs == 0)) {
    std::cerr << "--machines and --jobs go together (one rung)\n";
    return 2;
  }
  if (slots < 2) {
    std::cerr << "need --slots >= 2\n";
    return 2;
  }

  std::vector<Rung> ladder;
  if (machines != 0) {
    ladder.push_back({machines, jobs});
  } else {
    ladder = {{1'000, 100'000},
              {2'000, 250'000},
              {4'000, 500'000},
              {10'000, 1'000'000}};
    if (args.quick) ladder.resize(1);
  }

  const harness::CorunMatrix truth = synthetic_fleet_truth(8);

  struct Row {
    std::string policy;
    Rung rung{};
    double wall_s = 0.0;
    double dps = 0.0;  ///< placement decisions per second
    double stretch = 0.0;
    double regret = 0.0;
    std::size_t billed = 0;
    double makespan = 0.0;
  };
  std::vector<Row> rows;

  for (const Rung& rung : ladder) {
    cluster::FleetTraceOptions topt;
    topt.jobs = rung.jobs;
    topt.seed = 1;
    topt.arrivals = arrivals;
    topt.work = work;
    topt.class_shares = {0.75, 0.2, 0.05};
    // ~80% slot utilization at steady state.
    topt.mean_interarrival =
        topt.mean_work /
        (0.8 * static_cast<double>(rung.machines) * slots);
    const auto trace = cluster::fleet_trace(truth.size(), topt);

    cluster::ClusterConfig cfg;
    cfg.machines = rung.machines;
    cfg.slots = slots;
    cfg.regret_sample = regret_sample;

    cluster::RandomPolicy random{7};
    cluster::CostModelPolicy oracle{"oracle", truth};
    cluster::PlacementPolicy* policies[] = {&random, &oracle};
    for (cluster::PlacementPolicy* policy : policies) {
      const auto t0 = Clock::now();
      const auto res = cluster::simulate(cfg, truth, trace, *policy);
      const double wall =
          std::chrono::duration<double>(Clock::now() - t0).count();
      Row row;
      row.policy = policy->name();
      row.rung = rung;
      row.wall_s = wall;
      row.dps = static_cast<double>(rung.jobs) / wall;
      row.stretch = res.mean_stretch;
      row.regret = res.mean_decision_regret;
      row.billed = res.billed_decisions;
      row.makespan = res.makespan;
      rows.push_back(row);
      std::cout << "  " << rung.machines << " machines x " << rung.jobs
                << " jobs, " << row.policy << ": "
                << harness::Table::fmt(row.dps / 1e6, 2) << "M decisions/s ("
                << harness::Table::fmt(wall, 2) << " s)\n";
    }
  }
  std::cout << "\n";

  harness::Table table{{"machines", "jobs", "policy", "wall s",
                        "decisions/s", "mean stretch", "regret (sampled)",
                        "billed"}};
  std::string csv =
      "machines,jobs,policy,wall_s,decisions_per_s,mean_stretch,"
      "decision_regret,billed_decisions\n";
  for (const Row& r : rows) {
    table.add_row({std::to_string(r.rung.machines),
                   std::to_string(r.rung.jobs), r.policy,
                   harness::Table::fmt(r.wall_s, 3),
                   harness::Table::fmt(r.dps, 0),
                   harness::Table::fmt(r.stretch, 3),
                   harness::Table::fmt(r.regret, 4),
                   std::to_string(r.billed)});
    csv += std::to_string(r.rung.machines) + "," +
           std::to_string(r.rung.jobs) + "," + r.policy + "," +
           harness::Table::fmt(r.wall_s, 4) + "," +
           harness::Table::fmt(r.dps, 1) + "," +
           harness::Table::fmt(r.stretch, 4) + "," +
           harness::Table::fmt(r.regret, 5) + "," +
           std::to_string(r.billed) + "\n";
  }
  table.print(std::cout);
  std::cout << "\nregret is billed at ground truth on every "
            << (regret_sample == 0 ? std::string("(never)")
                                   : std::to_string(regret_sample) + "th")
            << " decision; the oracle rows should stay ~0 at any scale.\n";

  if (args.csv) std::cout << "\n" << csv;
  if (args.json) {
    const auto model_name = [&] {
      std::string a = arrivals == cluster::ArrivalModel::Poisson ? "poisson"
                      : arrivals == cluster::ArrivalModel::Diurnal
                          ? "diurnal"
                          : "bursty";
      return a + "+" +
             (work == cluster::WorkModel::Uniform ? "uniform" : "pareto");
    }();
    std::ostringstream js;
    js << "{\n"
       << "  \"config\": {\"slots\": " << slots
       << ", \"regret_sample\": " << regret_sample << ", \"trace\": \""
       << model_name << "\", \"types\": " << truth.size() << "},\n"
       << "  \"rungs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      js << "    {\"machines\": " << r.rung.machines
         << ", \"jobs\": " << r.rung.jobs << ", \"policy\": \"" << r.policy
         << "\", \"wall_s\": " << r.wall_s
         << ", \"decisions_per_s\": " << r.dps
         << ", \"mean_stretch\": " << r.stretch
         << ", \"decision_regret\": " << r.regret
         << ", \"billed_decisions\": " << r.billed
         << ", \"makespan\": " << r.makespan << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    js << "  ]\n}";
    std::cout << "\n" << js.str() << "\n";
    bench::write_snapshot("fleet_throughput", js.str());
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "fleet_throughput failed: " << e.what() << "\n";
  return 1;
}
