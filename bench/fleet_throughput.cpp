// Fleet-scale scheduler throughput: how fast the indexed cluster
// engine makes placement decisions at datacenter size, and what regret
// sampling costs in fidelity.
//
// Unlike cluster_regret (which measures a real GroupTruth and sweeps
// policy quality at 4x3), this bench is about the *event loop itself*:
// a synthetic 8-type co-run matrix drives a ladder of fleet scales --
// 1k to 10k machines, 100k to 1M arrivals from the fleet trace
// generators (bursty arrivals, Pareto work by default) -- and reports
// decisions/sec, wall time, and the sampled decision regret per rung,
// for both an O(1)-per-decision policy (random) and the O(open
// machines) cost-model argmin (oracle over the same matrix, so its
// regret is ~0 and any drift is engine error).
//
//   --quick           first rung only (1000 machines x 100k arrivals)
//   --machines=N      single rung at N machines (with --jobs)
//   --jobs=N          single rung at N arrivals (with --machines)
//   --slots=N         co-run slots per machine (default 2)
//   --regret-sample=N bill ground-truth regret every Nth decision
//                     (default 1000; 0 = never)
//   --arrivals=M      poisson | diurnal | bursty   (default bursty)
//   --work=M          uniform | pareto             (default pareto)
//   --faults          append the graceful-degradation ladder: overload
//                     (~135% of slot capacity) plus machine churn, a
//                     no-shed baseline vs admission control + preemptive
//                     migration, compared on per-class goodput and
//                     regret (quick = first rung only)
//   --trace=FILE      Chrome trace of the run (machine lanes are
//                     emitted per simulated machine: use small rungs)
//
// --json appends machine-readable output and persists it as
// BENCH_fleet_throughput.json at the repo root (the perf-CI snapshot),
// including the fault ladder's per-class breakdown when --faults is on.
#include <chrono>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/cluster.hpp"
#include "harness/report.hpp"
#include "snapshot.hpp"

namespace {

/// Deterministic 8-type co-run matrix with hog/victim structure: type
/// b's aggression and type f's sensitivity rise with the index, so the
/// matrix spans harmonious (1.0x) to destructive (~1.9x) pairs.
coperf::harness::CorunMatrix synthetic_fleet_truth(std::size_t n_types) {
  coperf::harness::CorunMatrix m;
  for (std::size_t i = 0; i < n_types; ++i) {
    m.workloads.push_back("t" + std::to_string(i));
    m.solo_cycles.push_back(1'000'000);
  }
  m.normalized.assign(n_types, std::vector<double>(n_types, 1.0));
  const double den = static_cast<double>(n_types - 1);
  for (std::size_t f = 0; f < n_types; ++f)
    for (std::size_t b = 0; b < n_types; ++b) {
      const double sensitivity = 0.2 + 0.8 * static_cast<double>(f) / den;
      const double aggression = static_cast<double>(b) / den;
      m.normalized[f][b] = 1.0 + 1.1 * sensitivity * aggression;
    }
  return m;
}

struct Rung {
  std::size_t machines;
  std::size_t jobs;
};

}  // namespace

int main(int argc, char** argv) try {
  using namespace coperf;
  using Clock = std::chrono::steady_clock;

  unsigned machines = 0, jobs = 0, slots = 2, regret_sample = 1000;
  bool faults = false;
  cluster::ArrivalModel arrivals = cluster::ArrivalModel::Bursty;
  cluster::WorkModel work = cluster::WorkModel::Pareto;
  const auto extra = [&](const std::string& arg) {
    if (arg == "--faults") {
      faults = true;
      return true;
    }
    if (arg.rfind("--machines=", 0) == 0) {
      machines = bench::parse_unsigned("--machines", arg.substr(11));
      return true;
    }
    if (arg.rfind("--jobs=", 0) == 0) {
      jobs = bench::parse_unsigned("--jobs", arg.substr(7));
      return true;
    }
    if (arg.rfind("--slots=", 0) == 0) {
      slots = bench::parse_unsigned("--slots", arg.substr(8));
      return true;
    }
    if (arg.rfind("--regret-sample=", 0) == 0) {
      regret_sample = bench::parse_unsigned("--regret-sample", arg.substr(16));
      return true;
    }
    if (arg.rfind("--arrivals=", 0) == 0) {
      const std::string v = arg.substr(11);
      if (v == "poisson") arrivals = cluster::ArrivalModel::Poisson;
      else if (v == "diurnal") arrivals = cluster::ArrivalModel::Diurnal;
      else if (v == "bursty") arrivals = cluster::ArrivalModel::Bursty;
      else {
        std::cerr << "--arrivals wants poisson|diurnal|bursty\n";
        std::exit(2);
      }
      return true;
    }
    if (arg.rfind("--work=", 0) == 0) {
      const std::string v = arg.substr(7);
      if (v == "uniform") work = cluster::WorkModel::Uniform;
      else if (v == "pareto") work = cluster::WorkModel::Pareto;
      else {
        std::cerr << "--work wants uniform|pareto\n";
        std::exit(2);
      }
      return true;
    }
    return false;
  };
  const auto args = bench::parse_args(
      argc, argv, /*subset_supported=*/false, extra,
      "--machines=N --jobs=N --slots=N --regret-sample=N "
      "--arrivals=poisson|diurnal|bursty --work=uniform|pareto --faults");
  bench::print_config(args, "fleet-scale cluster engine throughput "
                            "(decisions/sec on the indexed event loop)");
  if ((machines == 0) != (jobs == 0)) {
    std::cerr << "--machines and --jobs go together (one rung)\n";
    return 2;
  }
  if (slots < 2) {
    std::cerr << "need --slots >= 2\n";
    return 2;
  }

  std::vector<Rung> ladder;
  if (machines != 0) {
    ladder.push_back({machines, jobs});
  } else {
    ladder = {{1'000, 100'000},
              {2'000, 250'000},
              {4'000, 500'000},
              {10'000, 1'000'000}};
    if (args.quick) ladder.resize(1);
  }

  const harness::CorunMatrix truth = synthetic_fleet_truth(8);

  struct Row {
    std::string policy;
    Rung rung{};
    double wall_s = 0.0;
    double dps = 0.0;  ///< placement decisions per second
    double stretch = 0.0;
    double regret = 0.0;
    std::size_t billed = 0;
    double makespan = 0.0;
  };
  std::vector<Row> rows;

  for (const Rung& rung : ladder) {
    cluster::FleetTraceOptions topt;
    topt.jobs = rung.jobs;
    topt.seed = 1;
    topt.arrivals = arrivals;
    topt.work = work;
    topt.class_shares = {0.75, 0.2, 0.05};
    // ~80% slot utilization at steady state.
    topt.mean_interarrival =
        topt.mean_work /
        (0.8 * static_cast<double>(rung.machines) * slots);
    const auto trace = cluster::fleet_trace(truth.size(), topt);

    cluster::ClusterConfig cfg;
    cfg.machines = rung.machines;
    cfg.slots = slots;
    cfg.regret_sample = regret_sample;

    cluster::RandomPolicy random{7};
    cluster::CostModelPolicy oracle{"oracle", truth};
    cluster::PlacementPolicy* policies[] = {&random, &oracle};
    for (cluster::PlacementPolicy* policy : policies) {
      const auto t0 = Clock::now();
      const auto res = cluster::simulate(cfg, truth, trace, *policy);
      const double wall =
          std::chrono::duration<double>(Clock::now() - t0).count();
      Row row;
      row.policy = policy->name();
      row.rung = rung;
      row.wall_s = wall;
      row.dps = static_cast<double>(rung.jobs) / wall;
      row.stretch = res.mean_stretch;
      row.regret = res.mean_decision_regret;
      row.billed = res.billed_decisions;
      row.makespan = res.makespan;
      rows.push_back(row);
      std::cout << "  " << rung.machines << " machines x " << rung.jobs
                << " jobs, " << row.policy << ": "
                << harness::Table::fmt(row.dps / 1e6, 2) << "M decisions/s ("
                << harness::Table::fmt(wall, 2) << " s)\n";
    }
  }
  std::cout << "\n";

  // --- graceful-degradation ladder (--faults) ------------------------
  //
  // Overload (~135% of slot capacity) plus seed-deterministic machine
  // churn, each rung simulated twice per policy: a no-shed baseline
  // (faults + retries only) and a protected config (admission control
  // sheds the best-effort class, preemptive migration clears slots for
  // the priority lanes). The headline comparison is the top class:
  // protection must buy it goodput and shed its queueing regret --
  // mean (start - arrival) / work over completed jobs, the
  // solo-normalized placement delay against the clairvoyant ideal of
  // instant placement. (Billed decision regret collapses toward zero
  // for everyone once overload leaves a single open machine per
  // placement, so it cannot separate the configs; stretch folds in
  // co-run slowdown noise from whatever neighbours the matrix deals.)
  struct FaultRow {
    std::string policy;
    bool protected_ = false;
    Rung rung{};
    double wall_s = 0.0;
    double makespan = 0.0;
    std::size_t failures = 0, migrations = 0, shed_jobs = 0;
    double shed_work = 0.0;
    std::vector<cluster::ClassStats> classes;
    /// Per-class mean solo-normalized placement delay (completed jobs).
    std::vector<double> wait_regret;
  };
  std::vector<FaultRow> frows;
  if (faults) {
    std::vector<Rung> fault_ladder = {{64, 20'000},
                                      {128, 40'000},
                                      {256, 80'000}};
    if (machines != 0) fault_ladder = {{machines, jobs}};
    else if (args.quick) fault_ladder.resize(1);

    std::cout << "== fault ladder: overload + machine churn ==\n";
    for (const Rung& rung : fault_ladder) {
      cluster::FleetTraceOptions topt;
      topt.jobs = rung.jobs;
      topt.seed = 1;
      topt.arrivals = arrivals;
      topt.work = work;
      topt.class_shares = {0.75, 0.2, 0.05};
      // ~135% of slot capacity: without shedding the queue only grows.
      topt.mean_interarrival =
          topt.mean_work /
          (1.35 * static_cast<double>(rung.machines) * slots);
      const auto trace = cluster::fleet_trace(truth.size(), topt);
      const double span = trace.back().arrival;

      // ~3 outages per machine over the arrival span, 5% repair time.
      cluster::FaultScheduleOptions fopt;
      fopt.seed = 1;
      fopt.horizon = span;
      fopt.mtbf = span / 3.0;
      fopt.mttr = fopt.mtbf / 20.0;
      const auto schedule = cluster::fault_schedule(rung.machines, fopt);

      for (const bool protect : {false, true}) {
        cluster::ClusterConfig cfg;
        cfg.machines = rung.machines;
        cfg.slots = slots;
        cfg.regret_sample = 1;  // small rungs: bill every placement
        cfg.faults = schedule;
        if (protect) {
          cfg.migration.preempt = true;
          cfg.admission.queue_limit = rung.machines;
          cfg.admission.shed_below = 1;  // only the best-effort class
        }
        cluster::RandomPolicy random{7};
        cluster::CostModelPolicy oracle{"oracle", truth};
        cluster::PlacementPolicy* fpolicies[] = {&random, &oracle};
        for (cluster::PlacementPolicy* policy : fpolicies) {
          const auto t0 = Clock::now();
          const auto res = cluster::simulate(cfg, truth, trace, *policy);
          FaultRow fr;
          fr.policy = policy->name();
          fr.protected_ = protect;
          fr.rung = rung;
          fr.wall_s =
              std::chrono::duration<double>(Clock::now() - t0).count();
          fr.makespan = res.makespan;
          fr.failures = res.failures;
          fr.migrations = res.migrations;
          fr.shed_jobs = res.shed_jobs;
          fr.shed_work = res.shed_work;
          fr.classes = res.class_stats;
          fr.wait_regret.assign(fr.classes.size(), 0.0);
          std::vector<std::size_t> wait_n(fr.classes.size(), 0);
          for (const cluster::JobOutcome& out : res.outcomes) {
            if (!out.completed()) continue;
            const unsigned c = trace[out.job].priority;
            fr.wait_regret[c] += (out.start - out.arrival) / out.work;
            ++wait_n[c];
          }
          for (std::size_t c = 0; c < fr.wait_regret.size(); ++c)
            if (wait_n[c] != 0)
              fr.wait_regret[c] /= static_cast<double>(wait_n[c]);
          frows.push_back(fr);
          const cluster::ClassStats& hp = fr.classes.back();
          std::cout << "  " << rung.machines << " machines x " << rung.jobs
                    << " jobs, " << fr.policy << ", "
                    << (protect ? "protected" : "baseline ")
                    << ": top-class goodput "
                    << harness::Table::fmt(hp.goodput, 2) << ", stretch "
                    << harness::Table::fmt(hp.mean_stretch, 2) << ", shed "
                    << fr.shed_jobs << " jobs\n";
        }
      }
    }

    harness::Table ftable{{"machines", "jobs", "policy", "config",
                           "failures", "migrations", "shed", "hp goodput",
                           "hp stretch", "hp queue regret"}};
    for (const FaultRow& fr : frows) {
      const cluster::ClassStats& hp = fr.classes.back();
      ftable.add_row({std::to_string(fr.rung.machines),
                      std::to_string(fr.rung.jobs), fr.policy,
                      fr.protected_ ? "protected" : "baseline",
                      std::to_string(fr.failures),
                      std::to_string(fr.migrations),
                      std::to_string(fr.shed_jobs),
                      harness::Table::fmt(hp.goodput, 3),
                      harness::Table::fmt(hp.mean_stretch, 3),
                      harness::Table::fmt(fr.wait_regret.back(), 3)});
    }
    std::cout << "\n";
    ftable.print(std::cout);

    // Baseline rows and protected rows alternate per policy; pair them
    // up and report whether protection won the top class.
    bool all_won = true;
    for (std::size_t i = 0; i < frows.size(); ++i) {
      const FaultRow& base = frows[i];
      if (base.protected_) continue;
      for (std::size_t j = i + 1; j < frows.size(); ++j) {
        const FaultRow& prot = frows[j];
        if (!prot.protected_ || prot.policy != base.policy ||
            prot.rung.machines != base.rung.machines)
          continue;
        const cluster::ClassStats& bh = base.classes.back();
        const cluster::ClassStats& ph = prot.classes.back();
        const bool won = ph.goodput > bh.goodput &&
                         prot.wait_regret.back() < base.wait_regret.back();
        all_won = all_won && won;
        std::cout << "  " << base.rung.machines << " machines, "
                  << base.policy << ": protection "
                  << (won ? "WINS" : "DOES NOT WIN")
                  << " the top class (goodput "
                  << harness::Table::fmt(bh.goodput, 2) << " -> "
                  << harness::Table::fmt(ph.goodput, 2)
                  << ", queue regret "
                  << harness::Table::fmt(base.wait_regret.back(), 3)
                  << " -> "
                  << harness::Table::fmt(prot.wait_regret.back(), 3)
                  << ")\n";
        break;
      }
    }
    std::cout << (all_won
                      ? "  admission control + migration lifts top-class "
                        "goodput on every rung\n\n"
                      : "  WARNING: protection did not win every rung\n\n");
  }

  harness::Table table{{"machines", "jobs", "policy", "wall s",
                        "decisions/s", "mean stretch", "regret (sampled)",
                        "billed"}};
  std::string csv =
      "machines,jobs,policy,wall_s,decisions_per_s,mean_stretch,"
      "decision_regret,billed_decisions\n";
  for (const Row& r : rows) {
    table.add_row({std::to_string(r.rung.machines),
                   std::to_string(r.rung.jobs), r.policy,
                   harness::Table::fmt(r.wall_s, 3),
                   harness::Table::fmt(r.dps, 0),
                   harness::Table::fmt(r.stretch, 3),
                   harness::Table::fmt(r.regret, 4),
                   std::to_string(r.billed)});
    csv += std::to_string(r.rung.machines) + "," +
           std::to_string(r.rung.jobs) + "," + r.policy + "," +
           harness::Table::fmt(r.wall_s, 4) + "," +
           harness::Table::fmt(r.dps, 1) + "," +
           harness::Table::fmt(r.stretch, 4) + "," +
           harness::Table::fmt(r.regret, 5) + "," +
           std::to_string(r.billed) + "\n";
  }
  table.print(std::cout);
  std::cout << "\nregret is billed at ground truth on every "
            << (regret_sample == 0 ? std::string("(never)")
                                   : std::to_string(regret_sample) + "th")
            << " decision; the oracle rows should stay ~0 at any scale.\n";

  if (args.csv) std::cout << "\n" << csv;
  if (args.json) {
    const auto model_name = [&] {
      std::string a = arrivals == cluster::ArrivalModel::Poisson ? "poisson"
                      : arrivals == cluster::ArrivalModel::Diurnal
                          ? "diurnal"
                          : "bursty";
      return a + "+" +
             (work == cluster::WorkModel::Uniform ? "uniform" : "pareto");
    }();
    std::ostringstream js;
    js << "{\n"
       << "  \"config\": {\"slots\": " << slots
       << ", \"regret_sample\": " << regret_sample << ", \"trace\": \""
       << model_name << "\", \"types\": " << truth.size() << "},\n"
       << "  \"rungs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      js << "    {\"machines\": " << r.rung.machines
         << ", \"jobs\": " << r.rung.jobs << ", \"policy\": \"" << r.policy
         << "\", \"wall_s\": " << r.wall_s
         << ", \"decisions_per_s\": " << r.dps
         << ", \"mean_stretch\": " << r.stretch
         << ", \"decision_regret\": " << r.regret
         << ", \"billed_decisions\": " << r.billed
         << ", \"makespan\": " << r.makespan << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    js << "  ]";
    if (faults) {
      js << ",\n  \"fault_rungs\": [\n";
      for (std::size_t i = 0; i < frows.size(); ++i) {
        const FaultRow& fr = frows[i];
        js << "    {\"machines\": " << fr.rung.machines
           << ", \"jobs\": " << fr.rung.jobs << ", \"policy\": \""
           << fr.policy << "\", \"config\": \""
           << (fr.protected_ ? "protected" : "baseline")
           << "\", \"wall_s\": " << fr.wall_s
           << ", \"makespan\": " << fr.makespan
           << ", \"failures\": " << fr.failures
           << ", \"migrations\": " << fr.migrations
           << ", \"shed_jobs\": " << fr.shed_jobs
           << ", \"shed_work\": " << fr.shed_work << ",\n"
           << "     \"classes\": [";
        for (std::size_t c = 0; c < fr.classes.size(); ++c) {
          const cluster::ClassStats& cs = fr.classes[c];
          js << (c == 0 ? "" : ", ")
             << "{\"class\": " << c << ", \"jobs\": " << cs.jobs
             << ", \"completed\": " << cs.completed
             << ", \"shed\": " << cs.shed
             << ", \"goodput\": " << cs.goodput
             << ", \"mean_stretch\": " << cs.mean_stretch
             << ", \"queueing_regret\": " << fr.wait_regret[c]
             << ", \"decision_regret\": " << cs.mean_regret
             << ", \"billed\": " << cs.billed << "}";
        }
        js << "]}" << (i + 1 < frows.size() ? "," : "") << "\n";
      }
      js << "  ]";
    }
    js << "\n}";
    std::cout << "\n" << js.str() << "\n";
    bench::write_snapshot("fleet_throughput", js.str());
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "fleet_throughput failed: " << e.what() << "\n";
  return 1;
}
