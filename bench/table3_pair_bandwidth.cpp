// Table III: bandwidth consumption of the paper's five problematic
// co-running pairs -- the combined bandwidth and each member's solo
// bandwidth (all at 4+4 threads).
#include "bench_common.hpp"
#include "harness/report.hpp"

int main(int argc, char** argv) try {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv);
  bench::print_config(args, "Table III -- pair bandwidth (GB/s)");

  struct Pair {
    const char* a;
    const char* b;
    const char* paper;  // pair / A solo / B solo
  };
  const Pair pairs[] = {
      {"CIFAR", "fotonik3d", "18.0 / 7.3 / 18.4"},
      {"IRSmk", "fotonik3d", "24.5 / 18.1 / 18.4"},
      {"G-CC", "fotonik3d", "18.6 / 17.8 / 18.4"},
      {"G-CC", "IRSmk", "26.3 / 17.8 / 18.1"},
      {"G-CC", "CIFAR", "18.6 / 17.8 / 18.0"},
  };

  const unsigned reps = args.effective_reps();
  const harness::RunOptions opt = args.run_options();
  auto group_of = [&](const Pair& p) {
    return harness::GroupSpec::pair(p.a, p.b, opt.threads, opt.bg_threads);
  };
  harness::ExperimentPlan plan = args.plan();
  for (const auto& p : pairs) {
    plan.add_solo({p.a, args.threads, reps});
    plan.add_solo({p.b, args.threads, reps});
    plan.add_group(group_of(p), reps);
  }
  const harness::ResultSet rs = plan.execute(0, bench::plan_progress());

  harness::Table table{{"pair", "co-run BW", "A solo", "B solo", "solo sum",
                        "paper (pair/A/B)"}};
  std::string csv = "a,b,pair_bw,a_solo,b_solo\n";
  for (const auto& p : pairs) {
    const auto a_solo = rs.solo({p.a, args.threads, reps});
    const auto b_solo = rs.solo({p.b, args.threads, reps});
    const auto pair = rs.group(group_of(p), reps);
    table.add_row({std::string{p.a} + " + " + p.b,
                   harness::Table::fmt(pair.total_avg_bw_gbs, 1),
                   harness::Table::fmt(a_solo.avg_bw_gbs, 1),
                   harness::Table::fmt(b_solo.avg_bw_gbs, 1),
                   harness::Table::fmt(a_solo.avg_bw_gbs + b_solo.avg_bw_gbs, 1),
                   p.paper});
    csv += std::string{p.a} + "," + p.b + "," +
           harness::Table::fmt(pair.total_avg_bw_gbs, 2) + "," +
           harness::Table::fmt(a_solo.avg_bw_gbs, 2) + "," +
           harness::Table::fmt(b_solo.avg_bw_gbs, 2) + "\n";
  }
  table.print(std::cout);
  std::cout << "\n(key property: co-run bandwidth < sum of solo bandwidths "
               "-- the shared channel saturates)\n";
  if (args.csv) std::cout << "\n" << csv;
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
