// Fig. 6 (a, b): normalized speedup of all 25 applications co-running
// with the two mini-benchmarks, Bandit and Stream (each as a 4-thread
// background stressor). Speedup = t_solo / t_corun (lower = worse).
// One plan: a solo spec and two pair groups per application.
#include "bench_common.hpp"
#include "harness/report.hpp"
#include "wl/registry.hpp"

int main(int argc, char** argv) try {
  using namespace coperf;
  const auto args = bench::parse_args(argc, argv, /*subset_supported=*/true);
  bench::print_config(args, "Fig. 6 -- co-run with Bandit / Stream");

  auto workloads = wl::Registry::instance().applications();
  if (!args.subset.empty()) {
    std::vector<const wl::WorkloadInfo*> picked;
    for (const auto& name : args.subset)
      picked.push_back(&wl::Registry::instance().at(name));
    workloads = std::move(picked);
  }

  const unsigned reps = args.effective_reps();
  const harness::RunOptions opt = args.run_options();
  auto vs = [&](const std::string& fg, const std::string& bg) {
    return harness::GroupSpec::pair(fg, bg, opt.threads, opt.bg_threads);
  };
  harness::ExperimentPlan plan = args.plan();
  for (const auto* w : workloads) {
    plan.add_solo({w->name, args.threads, reps});
    plan.add_group(vs(w->name, "Bandit"), reps);
    plan.add_group(vs(w->name, "Stream"), reps);
  }
  const harness::ResultSet rs = plan.execute(0, bench::plan_progress());

  harness::Table table{{"suite", "workload", "vs Bandit", "vs Stream"}};
  std::string csv = "suite,workload,speedup_vs_bandit,speedup_vs_stream\n";
  double sum_bandit = 0, sum_stream = 0, gem_stream = 0;
  unsigned count = 0, gem_count = 0;
  for (const auto* w : workloads) {
    const double solo =
        static_cast<double>(rs.solo({w->name, args.threads, reps}).cycles);
    const double sb =
        solo / static_cast<double>(
                   rs.group(vs(w->name, "Bandit"), reps).members[0].cycles);
    const double ss =
        solo / static_cast<double>(
                   rs.group(vs(w->name, "Stream"), reps).members[0].cycles);
    table.add_row({w->suite, w->name, harness::Table::fmt(sb),
                   harness::Table::fmt(ss)});
    csv += w->suite + "," + w->name + "," + harness::Table::fmt(sb, 3) + "," +
           harness::Table::fmt(ss, 3) + "\n";
    sum_bandit += sb;
    sum_stream += ss;
    ++count;
    if (w->suite == "GeminiGraph") {
      gem_stream += ss;
      ++gem_count;
    }
  }
  table.print(std::cout);
  std::cout << "\naverages:\n"
            << "  vs Bandit (" << count << " apps)    : "
            << harness::Table::fmt(sum_bandit / count)
            << "  (paper: 0.77-1.0 range over all 25)\n"
            << "  vs Stream (" << count << " apps)    : "
            << harness::Table::fmt(sum_stream / count)
            << "  (paper: ~0.61 over all 25)\n";
  if (gem_count > 0)
    std::cout << "  vs Stream (GeminiGraph) : "
              << harness::Table::fmt(gem_stream / gem_count)
              << "  (paper: ~0.48, i.e. ~2.08x slowdown)\n";
  if (args.csv) std::cout << "\n" << csv;
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
