// Tail-latency interference and SLO-aware placement: what a p99 budget
// buys a latency-critical serving workload that throughput-only cost
// models cannot see.
//
// 1. Build a GroupTruth over {batch aggressors} + {serving victims}
//    (default: four Tiny-set aggressors vs kvserve + lsmserve) and
//    batch-measure every resident multiset a machine with --slots
//    co-run slots can hold. Serving foregrounds carry a per-request
//    latency distribution, so the truth answers BOTH slowdown
//    questions: throughput (cycles ratio) and tail (p99 request
//    latency ratio, tail_slowdown).
// 2. Print the victims' pairwise tail matrix next to the throughput
//    matrix: the paper's observation that shared-resource interference
//    hits the tail harder than the mean, now measured.
// 3. Sweep arrival traces at increasing load rungs where victim-type
//    jobs are latency-critical (JobSpec::slo_p99 = --slo, default
//    1.5), under four policies: random, throughput-cost (the legacy
//    cost model, SLO-blind), slo-aware (tail-aware admissibility +
//    throughput tie-break), and the group-truth oracle. The simulator
//    bills every decision twice -- throughput regret as always, plus
//    LC tail regret (true SLO violation of the chosen machine vs the
//    best open one) -- and the bench reports the LC/BE split.
// 4. Gate: the SLO-aware policy must hold LC p99 regret at or below
//    the throughput-only cost model on every rung (greppable verdict
//    line; CI enforces it).
#include <algorithm>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "cluster/cluster.hpp"
#include "harness/grouptruth.hpp"
#include "harness/report.hpp"
#include "harness/runcache.hpp"
#include "snapshot.hpp"

int main(int argc, char** argv) try {
  using namespace coperf;
  unsigned machines = 4, slots = 3, max_truth_arity = 3;
  const auto extra = [&](const std::string& arg) {
    if (arg.rfind("--machines=", 0) == 0) {
      machines = bench::parse_unsigned("--machines", arg.substr(11));
      return true;
    }
    if (arg.rfind("--slots=", 0) == 0) {
      slots = bench::parse_unsigned("--slots", arg.substr(8));
      return true;
    }
    if (arg.rfind("--max-truth-arity=", 0) == 0) {
      max_truth_arity =
          bench::parse_unsigned("--max-truth-arity", arg.substr(18));
      return true;
    }
    return false;
  };
  const auto args = bench::parse_args(
      argc, argv, /*subset_supported=*/true, extra,
      "--machines=N --slots=N --max-truth-arity=N");
  bench::print_config(args, "serving tail latency under interference -- "
                            "SLO-aware vs throughput-only placement");
  if (slots < 2 || machines == 0 || max_truth_arity < 2) {
    std::cerr << "need --machines >= 1, --slots >= 2, --max-truth-arity >= 2\n";
    return 2;
  }

  // Axis: batch aggressors first, serving victims last -- victim type
  // indices are [first_victim, axis.size()).
  std::vector<std::string> aggressors = args.subset;
  if (aggressors.empty())
    aggressors = {"Stream", "Bandit", "G-PR", "fotonik3d"};
  std::vector<std::string> victims =
      args.victim.empty() ? std::vector<std::string>{"kvserve", "lsmserve"}
                          : std::vector<std::string>{args.victim};
  std::vector<std::string> axis = aggressors;
  axis.insert(axis.end(), victims.begin(), victims.end());
  const std::size_t first_victim = aggressors.size();
  const double slo = args.slo > 0.0 ? args.slo : 1.5;

  const unsigned reps = args.effective_reps();

  harness::GroupTruth::Config gcfg;
  gcfg.workloads = axis;
  gcfg.opt = args.run_options();
  gcfg.reps = reps;
  gcfg.max_arity = std::min(max_truth_arity, slots);
  gcfg.member_threads =
      std::max(1u, gcfg.opt.machine.num_cores / std::max(slots, 2u));
  harness::GroupTruth truth{gcfg};

  std::cout << "ground truth: " << aggressors.size() << " aggressor type(s) + "
            << victims.size() << " serving victim(s), every <= "
            << gcfg.max_arity << "-resident multiset at "
            << gcfg.member_threads << " threads/member, SLO p99 budget "
            << harness::Table::fmt(slo, 2) << "x\n";
  const auto pstats =
      truth.prefetch_all(gcfg.max_arity, bench::plan_progress());
  std::cout << "  " << pstats.trials << " unique trials (" << pstats.residue
            << " to simulate, rest cached)\n";
  if (truth.truncated_trials() > 0)
    std::cerr << "WARNING: " << truth.truncated_trials()
              << " group trial(s) hit the cycle limit -- slowdowns are "
                 "lower bounds (raise cycle_limit or shrink --size)\n";

  // Sanity: serving victims must actually record requests, or tail ==
  // throughput and the whole bench degenerates.
  for (std::size_t v = first_victim; v < axis.size(); ++v)
    if (truth.solo(v).latency.empty()) {
      std::cerr << "error: victim '" << axis[v]
                << "' recorded no requests -- not a serving workload?\n";
      return 2;
    }

  const harness::CorunMatrix& pairwise = truth.pairwise();
  harness::CorunMatrix tailm = pairwise;
  for (std::size_t a = 0; a < axis.size(); ++a)
    for (std::size_t b = 0; b < axis.size(); ++b)
      tailm.normalized[a][b] = truth.tail_slowdown(a, {b});

  // The victims' pairwise interference profile: throughput slowdown
  // next to p99 slowdown per aggressor.
  std::cout << "\npairwise victim profile (co-run / solo):\n";
  harness::Table prof{{"victim", "vs", "throughput", "p99 latency",
                       "budget " + harness::Table::fmt(slo, 2) + "x"}};
  for (std::size_t v = first_victim; v < axis.size(); ++v)
    for (std::size_t b = 0; b < axis.size(); ++b) {
      const double tp = pairwise.normalized[v][b];
      const double tl = tailm.normalized[v][b];
      prof.add_row({axis[v], axis[b], harness::Table::fmt(tp, 3),
                    harness::Table::fmt(tl, 3),
                    tl > slo ? "BLOWN" : "ok"});
    }
  prof.print(std::cout);

  cluster::ClusterConfig cfg;
  cfg.machines = machines;
  cfg.slots = slots;
  cfg.type_names = axis;

  // Load rungs: offered load as a fraction of fleet slot capacity.
  const std::vector<double> rungs = {0.5, 0.8, 1.1};
  const unsigned seeds = std::max(3u, args.effective_reps());

  struct Cell {
    double lc_regret = 0.0;   ///< mean LC tail regret (p99 budget violation)
    double be_regret = 0.0;   ///< mean throughput decision regret
    double stretch = 0.0;
    std::uint64_t violations = 0;  ///< billed decisions that blew a budget
  };
  const std::vector<std::string> policy_names = {"random", "throughput-cost",
                                                 "slo-aware", "oracle"};
  // results[rung][policy]
  std::vector<std::vector<Cell>> results(
      rungs.size(), std::vector<Cell>(policy_names.size()));

  cluster::TraceOptions topt;
  topt.jobs = 400;
  topt.mean_work = 8.0;

  std::cout << "\nsweeping " << rungs.size() << " load rung(s) x " << seeds
            << " arrival trace(s) of " << topt.jobs << " jobs over "
            << machines << " machines x " << slots << " slots...\n";
  for (std::size_t ri = 0; ri < rungs.size(); ++ri) {
    topt.mean_interarrival =
        topt.mean_work /
        (rungs[ri] * static_cast<double>(cfg.machines * cfg.slots));
    for (unsigned seed = 1; seed <= seeds; ++seed) {
      topt.seed = seed;
      auto trace = cluster::synthetic_trace(axis.size(), topt);
      // Victim-type jobs are latency-critical: they carry the p99
      // budget the SLO billing prices violations against.
      for (cluster::JobSpec& j : trace)
        if (j.type >= first_victim) j.slo_p99 = slo;

      cluster::RandomPolicy random{seed};
      cluster::CostModelPolicy throughput{"throughput-cost", pairwise};
      cluster::SloAwarePolicy sloaware{"slo-aware", pairwise, tailm};
      cluster::GroupTruthPolicy oracle{"oracle", truth};
      cluster::PlacementPolicy* policies[] = {&random, &throughput, &sloaware,
                                              &oracle};
      for (std::size_t p = 0; p < policy_names.size(); ++p) {
        const auto run = cluster::simulate(cfg, truth, trace, *policies[p]);
        results[ri][p].lc_regret += run.mean_lc_tail_regret;
        results[ri][p].be_regret += run.mean_decision_regret;
        results[ri][p].stretch += run.mean_stretch;
        results[ri][p].violations += run.slo_violation_decisions;
      }
    }
    for (Cell& c : results[ri]) {
      c.lc_regret /= seeds;
      c.be_regret /= seeds;
      c.stretch /= seeds;
    }
  }

  harness::Table table{{"load", "policy", "LC p99 regret", "BE regret",
                        "mean stretch", "budget-blowing decisions"}};
  std::string csv =
      "load,policy,lc_p99_regret,be_regret,mean_stretch,violations\n";
  for (std::size_t ri = 0; ri < rungs.size(); ++ri)
    for (std::size_t p = 0; p < policy_names.size(); ++p) {
      const Cell& c = results[ri][p];
      table.add_row({harness::Table::fmt(rungs[ri], 1), policy_names[p],
                     harness::Table::fmt(c.lc_regret, 4),
                     harness::Table::fmt(c.be_regret, 4),
                     harness::Table::fmt(c.stretch, 3),
                     std::to_string(c.violations)});
      csv += harness::Table::fmt(rungs[ri], 1) + "," + policy_names[p] + "," +
             harness::Table::fmt(c.lc_regret, 5) + "," +
             harness::Table::fmt(c.be_regret, 5) + "," +
             harness::Table::fmt(c.stretch, 4) + "," +
             std::to_string(c.violations) + "\n";
    }
  std::cout << "\n";
  table.print(std::cout);

  // The gate CI greps: SLO-awareness must never cost LC tail regret
  // relative to the throughput-only model, and should strictly win
  // somewhere.
  const std::size_t p_tp = 1, p_slo = 2;
  bool every_rung = true;
  double sum_tp = 0.0, sum_slo = 0.0;
  for (std::size_t ri = 0; ri < rungs.size(); ++ri) {
    every_rung = every_rung &&
                 results[ri][p_slo].lc_regret <=
                     results[ri][p_tp].lc_regret + 1e-9;
    sum_tp += results[ri][p_tp].lc_regret;
    sum_slo += results[ri][p_slo].lc_regret;
  }
  std::cout << "\nLC p99 regret, slo-aware vs throughput-cost: "
            << harness::Table::fmt(sum_slo / rungs.size(), 4) << " vs "
            << harness::Table::fmt(sum_tp / rungs.size(), 4) << " mean over "
            << rungs.size() << " rungs\n";
  if (every_rung)
    std::cout << "SLO-aware placement holds LC p99 regret at or below the "
                 "throughput-only cost model on every rung"
              << (sum_slo < sum_tp - 1e-9 ? " (strictly lower overall)" : "")
              << "\n";
  else
    std::cout << "REGRESSION: SLO-aware placement exceeded the "
                 "throughput-only cost model's LC p99 regret on some rung\n";

  if (args.csv) std::cout << "\n" << csv;
  if (args.json) {
    std::ostringstream js;
    js << "{\n"
       << "  \"config\": {\"size\": \"" << bench::size_name(args.size())
       << "\", \"reps\": " << reps << ", \"aggressors\": "
       << aggressors.size() << ", \"victims\": " << victims.size()
       << ", \"machines\": " << machines << ", \"slots\": " << slots
       << ", \"max_truth_arity\": " << gcfg.max_arity << ", \"slo_p99\": "
       << slo << ", \"seeds\": " << seeds << "},\n"
       << "  \"truth\": {\"trials\": " << pstats.trials << ", \"residue\": "
       << pstats.residue << ", \"truncated\": " << truth.truncated_trials()
       << "},\n"
       << "  \"victim_pairwise\": [\n";
    bool vp_first = true;
    for (std::size_t v = first_victim; v < axis.size(); ++v)
      for (std::size_t b = 0; b < axis.size(); ++b) {
        js << (vp_first ? "" : ",\n") << "    {\"victim\": \"" << axis[v]
           << "\", \"vs\": \"" << axis[b] << "\", \"throughput\": "
           << pairwise.normalized[v][b] << ", \"p99\": "
           << tailm.normalized[v][b] << "}";
        vp_first = false;
      }
    js << "\n  ],\n  \"rungs\": [\n";
    for (std::size_t ri = 0; ri < rungs.size(); ++ri) {
      js << "    {\"load\": " << rungs[ri] << ", \"policies\": [\n";
      for (std::size_t p = 0; p < policy_names.size(); ++p) {
        const Cell& c = results[ri][p];
        js << "      {\"name\": \"" << policy_names[p]
           << "\", \"lc_p99_regret\": " << c.lc_regret << ", \"be_regret\": "
           << c.be_regret << ", \"mean_stretch\": " << c.stretch
           << ", \"violations\": " << c.violations << "}"
           << (p + 1 < policy_names.size() ? "," : "") << "\n";
      }
      js << "    ]}" << (ri + 1 < rungs.size() ? "," : "") << "\n";
    }
    js << "  ],\n  \"gate\": {\"slo_aware_holds_every_rung\": "
       << (every_rung ? "true" : "false") << ", \"strictly_lower_overall\": "
       << (sum_slo < sum_tp - 1e-9 ? "true" : "false") << "}\n}\n";
    std::cout << "\n" << js.str();
    bench::write_snapshot("serving_tail", js.str());
  }
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
