// Ablation studies of the simulator's design choices (DESIGN.md §4),
// as google-benchmark microbenches:
//   - BM_SimThroughput: raw simulation speed (ops/second),
//   - BM_QuantumSensitivity: result stability vs. the sync quantum,
//   - BM_MlpWindow: victimhood of a gather kernel vs. its MLP window,
//   - BM_InclusiveLlc: inclusive vs. non-inclusive LLC under co-run,
//   - BM_PrefetchDegree: streamer aggressiveness vs. Stream bandwidth.
#include <benchmark/benchmark.h>

#include "harness/runner.hpp"

namespace {

using namespace coperf;

harness::RunOptions tiny_opts() {
  harness::RunOptions o;
  o.machine = sim::MachineConfig::scaled();
  o.size = wl::SizeClass::Tiny;
  o.threads = 4;
  return o;
}

void BM_SimThroughput(benchmark::State& state) {
  const auto opt = tiny_opts();
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const auto r = harness::run_solo("G-PR", opt);
    instructions += r.stats.instructions;
    benchmark::DoNotOptimize(r.cycles);
  }
  state.counters["sim_instr/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimThroughput)->Unit(benchmark::kMillisecond);

void BM_QuantumSensitivity(benchmark::State& state) {
  auto opt = tiny_opts();
  opt.machine.quantum_cycles = static_cast<std::uint32_t>(state.range(0));
  sim::Cycle cycles = 0;
  for (auto _ : state) {
    const auto r = harness::run_pair("G-PR", "Stream", opt);
    cycles = r.fg.cycles;
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["fg_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_QuantumSensitivity)
    ->Arg(250)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

void BM_MlpWindow(benchmark::State& state) {
  auto opt = tiny_opts();
  opt.machine.mshr_per_core = static_cast<std::uint32_t>(state.range(0));
  sim::Cycle cycles = 0;
  for (auto _ : state) {
    const auto r = harness::run_pair("G-PR", "Stream", opt);
    cycles = r.fg.cycles;
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["fg_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_MlpWindow)->Arg(2)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_InclusiveLlc(benchmark::State& state) {
  auto opt = tiny_opts();
  opt.machine.l3_inclusive = state.range(0) != 0;
  sim::Cycle cycles = 0;
  for (auto _ : state) {
    const auto r = harness::run_pair("G-CC", "Stream", opt);
    cycles = r.fg.cycles;
    benchmark::DoNotOptimize(cycles);
  }
  state.counters["fg_cycles"] = static_cast<double>(cycles);
}
BENCHMARK(BM_InclusiveLlc)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_PrefetchDegree(benchmark::State& state) {
  auto opt = tiny_opts();
  opt.machine.streamer_degree = static_cast<std::uint32_t>(state.range(0));
  opt.sample_window = 50'000;  // Tiny runs need a fine PCM window
  double bw = 0;
  for (auto _ : state) {
    const auto r = harness::run_solo("Stream", opt);
    // NOTE: DoNotOptimize on a double clobbers it with this
    // google-benchmark version (integer-register constraint); the
    // counter assignment below is a sufficient side effect.
    bw = r.avg_bw_gbs;
    benchmark::ClobberMemory();
  }
  state.counters["stream_gbs"] = benchmark::Counter(bw);
}
BENCHMARK(BM_PrefetchDegree)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
