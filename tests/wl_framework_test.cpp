// Unit tests for the workload framework: coroutine pump, op buffering,
// barrier holdback, address spaces, registry, epoch helpers.
#include <gtest/gtest.h>

#include <vector>

#include "wl/context.hpp"
#include "wl/graph/engine.hpp"
#include "wl/registry.hpp"
#include "wl/sim_array.hpp"
#include "wl/workload.hpp"

namespace coperf::wl {
namespace {

using sim::Op;
using sim::OpKind;

std::vector<Op> drain_all(CoroSource& src, std::size_t cap = 1'000'000) {
  std::vector<Op> out;
  Op buf[64];
  while (out.size() < cap) {
    const std::size_t n = src.refill(buf, 64);
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  return out;
}

TEST(CoroSource, EmitsOpsInProgramOrder) {
  CoroSource src{[](ThreadCtx& ctx) -> TraceGen {
                   co_await ctx.compute(5);
                   co_await ctx.load(0x100, 7);
                   co_await ctx.store(0x200, 8);
                 },
                 sim::ThreadAttr{}};
  src.rearm();
  const auto ops = drain_all(src);
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].kind, OpKind::Compute);
  EXPECT_EQ(ops[0].count, 5u);
  EXPECT_EQ(ops[1].kind, OpKind::Load);
  EXPECT_EQ(ops[1].addr, 0x100u);
  EXPECT_EQ(ops[1].pc, 7u);
  EXPECT_EQ(ops[2].kind, OpKind::Store);
}

TEST(CoroSource, LargeComputeSplitsIntoChunks) {
  CoroSource src{[](ThreadCtx& ctx) -> TraceGen {
                   co_await ctx.compute(10'000);
                 },
                 sim::ThreadAttr{}};
  src.rearm();
  const auto ops = drain_all(src);
  std::uint64_t total = 0;
  for (const Op& op : ops) {
    EXPECT_EQ(op.kind, OpKind::Compute);
    EXPECT_LE(op.count, ThreadCtx::kComputeChunk);
    total += op.count;
  }
  EXPECT_EQ(total, 10'000u);
}

TEST(CoroSource, ManyOpsSurviveBufferWraparound) {
  constexpr std::size_t kN = 3 * ThreadCtx::kCap + 17;
  CoroSource src{[](ThreadCtx& ctx) -> TraceGen {
                   for (std::size_t i = 0; i < kN; ++i)
                     co_await ctx.load(i * 64, 1);
                 },
                 sim::ThreadAttr{}};
  src.rearm();
  const auto ops = drain_all(src);
  ASSERT_EQ(ops.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(ops[i].addr, i * 64);
}

TEST(CoroSource, ExhaustedSourceReturnsZero) {
  CoroSource src{[](ThreadCtx& ctx) -> TraceGen { co_await ctx.compute(1); },
                 sim::ThreadAttr{}};
  src.rearm();
  (void)drain_all(src);
  Op buf[4];
  EXPECT_EQ(src.refill(buf, 4), 0u);
  EXPECT_EQ(src.refill(buf, 4), 0u);
}

TEST(CoroSource, RearmRestartsFromScratch) {
  int run_count = 0;
  CoroSource src{[&run_count](ThreadCtx& ctx) -> TraceGen {
                   ++run_count;
                   co_await ctx.compute(1);
                 },
                 sim::ThreadAttr{}};
  src.rearm();
  (void)drain_all(src);
  src.rearm();
  const auto ops = drain_all(src);
  EXPECT_EQ(ops.size(), 1u);
  EXPECT_EQ(run_count, 2);
}

TEST(CoroSource, BarrierHoldsGeneratorUntilPassed) {
  int phase = 0;
  CoroSource src{[&phase](ThreadCtx& ctx) -> TraceGen {
                   phase = 1;
                   co_await ctx.compute(1);
                   co_await ctx.barrier();
                   phase = 2;  // must not run until barrier_passed()
                   co_await ctx.compute(1);
                 },
                 sim::ThreadAttr{}};
  src.rearm();
  Op buf[64];
  std::size_t n = src.refill(buf, 64);
  ASSERT_EQ(n, 2u);
  EXPECT_EQ(buf[1].kind, OpKind::Barrier);
  EXPECT_EQ(phase, 1) << "post-barrier code ran before the barrier released";
  EXPECT_EQ(src.refill(buf, 64), 0u)
      << "pump must not resume a barrier-parked body";
  EXPECT_EQ(phase, 1);
  src.barrier_passed();
  n = src.refill(buf, 64);
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(phase, 2);
}

TEST(CoroSource, ExceptionInBodyPropagates) {
  CoroSource src{[](ThreadCtx& ctx) -> TraceGen {
                   co_await ctx.compute(1);
                   throw std::runtime_error{"workload bug"};
                 },
                 sim::ThreadAttr{}};
  // The body throws during its first resume (the single emit does not
  // fill the buffer, so the coroutine runs straight into the throw):
  // the pump must surface the exception on that refill.
  src.rearm();
  Op buf[64];
  EXPECT_THROW((void)src.refill(buf, 64), std::runtime_error);
}

// ---------------------------------------------------------------------
// AddrSpace / SimArray
// ---------------------------------------------------------------------

TEST(AddrSpace, AllocationsAreDisjointAndAligned) {
  AddrSpace space{2};
  const sim::Addr a = space.alloc(1000);
  const sim::Addr b = space.alloc(1000);
  EXPECT_GE(b, a + 1000);
  EXPECT_EQ(a % 4096, 0u);
  EXPECT_EQ(sim::app_of(a), 2);
  EXPECT_EQ(sim::app_of(b), 2);
}

TEST(AddrSpace, TracksFootprint) {
  AddrSpace space{0};
  (void)space.alloc(4096);
  (void)space.alloc(4096);
  EXPECT_GE(space.bytes_allocated(), 2u * 4096);
}

TEST(SimArray, HostAndSimulatedViewsAgree) {
  AddrSpace space{1};
  SimArray<std::uint32_t> arr{space, 100, 7u};
  EXPECT_EQ(arr[50], 7u);
  arr[50] = 9;
  EXPECT_EQ(arr[50], 9u);
  EXPECT_EQ(arr.addr_of(1) - arr.addr_of(0), sizeof(std::uint32_t));
  EXPECT_EQ(sim::app_of(arr.addr_of(99)), 1);
}

TEST(GhostArray, AddressOnlyFootprint) {
  AddrSpace space{1};
  GhostArray<double> g{space, 1024};
  EXPECT_EQ(g.bytes(), 1024 * sizeof(double));
  EXPECT_EQ(g.addr_of(1023) - g.addr_of(0), 1023 * sizeof(double));
}

TEST(SimView, MapsSharedHostData) {
  AddrSpace space{3};
  std::vector<float> host{1.f, 2.f, 3.f};
  SimView<float> v{space, std::span{host}};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], 2.f);
  EXPECT_EQ(sim::app_of(v.addr_of(0)), 3);
}

// ---------------------------------------------------------------------
// Epoch helpers
// ---------------------------------------------------------------------

TEST(EpochCursor, DistributesWholeRangeOnce) {
  graph::EpochCursor cur{64};
  cur.set_total(1000);
  std::vector<bool> seen(1000, false);
  while (auto c = cur.next(0)) {
    for (std::uint32_t i = c->first; i < c->second; ++i) {
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(EpochCursor, NewEpochResets) {
  graph::EpochCursor cur{512};
  cur.set_total(100);
  EXPECT_TRUE(cur.next(0).has_value());
  EXPECT_FALSE(cur.next(0).has_value());
  EXPECT_TRUE(cur.next(1).has_value()) << "next epoch must rewind";
}

TEST(ConvergenceFlag, ParitySlotsKeepPreviousEpochReadable) {
  graph::ConvergenceFlag f;
  f.add(0, 5);
  EXPECT_EQ(f.read(0), 5u);
  f.add(1, 2);           // epoch 1 accumulates in the other slot
  EXPECT_EQ(f.read(0), 5u);
  EXPECT_EQ(f.read(1), 2u);
  f.add(2, 1);           // overwrites epoch 0's slot
  EXPECT_EQ(f.read(2), 1u);
  EXPECT_EQ(f.read(0), 0u) << "stale epoch reads as zero";
}

TEST(FrontierSet, PushAndReadByEpoch) {
  graph::FrontierSet fs;
  fs.reset({1, 2, 3});
  EXPECT_EQ(fs.frontier(0).size(), 3u);
  fs.push(1, 9);
  fs.push(1, 10);
  EXPECT_EQ(fs.frontier(1).size(), 2u);
  EXPECT_EQ(fs.size(5), 0u);
}

TEST(FrontierSet, ReferencesStableAcrossGrowth) {
  graph::FrontierSet fs;
  fs.reset({1, 2, 3});
  const auto& f0 = fs.frontier(0);
  for (std::uint32_t e = 1; e < 100; ++e) fs.push(e, e);
  EXPECT_EQ(f0.size(), 3u);
  EXPECT_EQ(f0[2], 3u);
}

TEST(StaticRange, CoversWithoutOverlap) {
  const std::uint32_t n = 1003;
  std::uint32_t covered = 0;
  std::uint32_t prev_end = 0;
  for (unsigned t = 0; t < 7; ++t) {
    const auto [b, e] = graph::static_range(n, t, 7);
    EXPECT_EQ(b, prev_end);
    covered += e - b;
    prev_end = e;
  }
  EXPECT_EQ(covered, n);
  EXPECT_EQ(prev_end, n);
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TEST(Registry, Has25ApplicationsPlus2MinisPlus2Serving) {
  auto& reg = Registry::instance();
  EXPECT_EQ(reg.applications().size(), 25u);
  EXPECT_EQ(reg.all().size(), 29u);
  EXPECT_EQ(reg.suite("serve").size(), 2u);
}

TEST(Registry, PaperSuiteSizesMatchTableI) {
  auto& reg = Registry::instance();
  EXPECT_EQ(reg.suite("GeminiGraph").size(), 5u);
  EXPECT_EQ(reg.suite("PowerGraph").size(), 3u);
  EXPECT_EQ(reg.suite("CNTK").size(), 4u);
  EXPECT_EQ(reg.suite("PARSEC").size(), 4u);
  EXPECT_EQ(reg.suite("HPC").size(), 3u);
  EXPECT_EQ(reg.suite("SPEC CPU2017").size(), 6u);
  EXPECT_EQ(reg.suite("mini").size(), 2u);
}

TEST(Registry, SpecIsRateModeOthersAreNot) {
  auto& reg = Registry::instance();
  for (const auto* w : reg.suite("SPEC CPU2017")) EXPECT_TRUE(w->rate_mode);
  for (const auto* w : reg.suite("GeminiGraph")) EXPECT_FALSE(w->rate_mode);
}

TEST(Registry, UnknownNameThrowsWithMessage) {
  EXPECT_THROW((void)Registry::instance().at("NotAWorkload"),
               std::out_of_range);
}

TEST(Registry, CreateProducesWorkingModel) {
  auto model = Registry::instance().create(
      "Stream", AppParams{0, 2, SizeClass::Tiny, 1});
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name(), "Stream");
  EXPECT_EQ(model->threads(), 2u);
  const auto sources = model->sources();
  EXPECT_EQ(sources.size(), 2u);
  EXPECT_GT(model->footprint_bytes(), 0u);
}

}  // namespace
}  // namespace coperf::wl
