// Fault-injection and graceful-degradation tests: the fault schedule
// generator, fault-free byte-identity against the reference loop,
// deterministic fault replay, retry/backoff and work-loss accounting,
// preemptive migration ordering, and admission-control shed billing.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster_fixtures.hpp"
#include "harness/matrix.hpp"

namespace coperf::cluster {
namespace {

// Neutral x neutral co-runs at 1.00x in synthetic_truth, so the
// hand-computed scenarios below stay in solo-speed arithmetic.
constexpr std::size_t kNeutral = 2;

std::vector<JobSpec> neutral_jobs(
    const std::vector<std::pair<double, double>>& arrival_work,
    unsigned priority = 0) {
  std::vector<JobSpec> trace;
  for (std::size_t i = 0; i < arrival_work.size(); ++i) {
    JobSpec j;
    j.id = i;
    j.type = kNeutral;
    j.arrival = arrival_work[i].first;
    j.work = arrival_work[i].second;
    j.priority = priority;
    trace.push_back(j);
  }
  return trace;
}

// --- fault schedule generator ---------------------------------------

TEST(FaultSchedule, DeterministicSortedAlternating) {
  FaultScheduleOptions opt;
  opt.seed = 42;
  opt.horizon = 2000.0;
  opt.mtbf = 100.0;
  opt.mttr = 10.0;
  const auto a = fault_schedule(8, opt);
  const auto b = fault_schedule(8, opt);
  EXPECT_EQ(a, b) << "same seed must yield an identical schedule";
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size() % 2, 0u) << "every Down needs a matching Up";

  double prev = 0.0;
  std::vector<int> down(8, 0);
  for (const FaultEvent& f : a) {
    EXPECT_GE(f.time, prev);
    prev = f.time;
    ASSERT_LT(f.machine, 8u);
    if (f.kind == FaultEvent::Kind::Down) {
      EXPECT_EQ(down[f.machine], 0) << "double Down on machine " << f.machine;
      down[f.machine] = 1;
    } else {
      EXPECT_EQ(down[f.machine], 1) << "Up without Down on " << f.machine;
      down[f.machine] = 0;
    }
  }
  for (const int d : down) EXPECT_EQ(d, 0);
}

TEST(FaultSchedule, MachineStreamsInvariantUnderFleetSize) {
  FaultScheduleOptions opt;
  opt.seed = 7;
  opt.horizon = 1500.0;
  const auto small = fault_schedule(2, opt);
  const auto large = fault_schedule(16, opt);
  std::vector<FaultEvent> filtered;
  for (const FaultEvent& f : large)
    if (f.machine < 2) filtered.push_back(f);
  EXPECT_EQ(small, filtered)
      << "machine k's schedule must not depend on the fleet size";
}

TEST(FaultSchedule, RejectsBadOptions) {
  FaultScheduleOptions opt;
  opt.mtbf = 0.0;
  EXPECT_THROW(fault_schedule(2, opt), std::invalid_argument);
  opt = {};
  opt.horizon = -1.0;
  EXPECT_THROW(fault_schedule(2, opt), std::invalid_argument);
}

// --- fault-free identity and config validation ----------------------

// With no faults, no migration, and no admission control, the fleet
// engine must stay byte-identical to the reference specification.
TEST(FaultFree, ByteIdenticalToReference) {
  const auto truth = synthetic_truth();
  TraceOptions topt;
  topt.jobs = 400;
  topt.seed = 3;
  topt.mean_interarrival = 0.8;
  const auto trace = synthetic_trace(truth.size(), topt);
  const ClusterConfig cfg{3, 2};

  CostModelPolicy pref{"oracle", truth};
  const ClusterResult ref = simulate_reference(cfg, truth, trace, pref);
  CostModelPolicy pfleet{"oracle", truth};
  const ClusterResult fleet = simulate(cfg, truth, trace, pfleet);
  EXPECT_EQ(ref.log.str(truth.workloads), fleet.log.str(truth.workloads));
  EXPECT_NEAR(ref.mean_decision_regret, fleet.mean_decision_regret, 1e-9);
  EXPECT_EQ(fleet.failures, 0u);
  EXPECT_EQ(fleet.shed_jobs, 0u);
  EXPECT_EQ(fleet.completed_jobs, trace.size());
}

TEST(FaultFree, ReferenceRejectsFaultConfigs) {
  const auto truth = synthetic_truth();
  const auto trace = neutral_jobs({{0.0, 1.0}});
  CostModelPolicy p{"oracle", truth};

  ClusterConfig cfg{2, 2};
  cfg.faults = {{1.0, 0, FaultEvent::Kind::Down},
                {2.0, 0, FaultEvent::Kind::Up}};
  EXPECT_THROW(simulate_reference(cfg, truth, trace, p),
               std::invalid_argument);
  cfg = ClusterConfig{2, 2};
  cfg.migration.preempt = true;
  EXPECT_THROW(simulate_reference(cfg, truth, trace, p),
               std::invalid_argument);
  cfg = ClusterConfig{2, 2};
  cfg.admission.queue_limit = 4;
  EXPECT_THROW(simulate_reference(cfg, truth, trace, p),
               std::invalid_argument);
}

TEST(FaultFree, EngineValidatesFaultSchedules) {
  const auto truth = synthetic_truth();
  const auto trace = neutral_jobs({{0.0, 1.0}});
  CostModelPolicy p{"oracle", truth};

  ClusterConfig cfg{2, 2};
  cfg.faults = {{1.0, 5, FaultEvent::Kind::Down}};  // machine out of range
  EXPECT_THROW(simulate(cfg, truth, trace, p), std::invalid_argument);
  cfg.faults = {{2.0, 0, FaultEvent::Kind::Down},
                {1.0, 0, FaultEvent::Kind::Up}};  // unsorted
  EXPECT_THROW(simulate(cfg, truth, trace, p), std::invalid_argument);
  cfg.faults = {{1.0, 0, FaultEvent::Kind::Up}};  // Up without Down
  EXPECT_THROW(simulate(cfg, truth, trace, p), std::invalid_argument);
  cfg.faults.clear();
  cfg.retry.checkpoint = 1.5;
  EXPECT_THROW(simulate(cfg, truth, trace, p), std::invalid_argument);
}

// --- deterministic fault replay -------------------------------------

TEST(FaultReplay, SameSeedSameAuditLog) {
  const auto truth = synthetic_truth();
  FleetTraceOptions fopt;
  fopt.jobs = 1200;
  fopt.seed = 17;
  fopt.mean_interarrival = 0.5;
  fopt.class_shares = {3.0, 1.0};
  const auto trace = fleet_trace(truth.size(), fopt);

  ClusterConfig cfg{4, 2};
  FaultScheduleOptions sched;
  sched.seed = 99;
  sched.horizon = 400.0;
  sched.mtbf = 60.0;
  sched.mttr = 15.0;
  cfg.faults = fault_schedule(cfg.machines, sched);
  cfg.migration.preempt = true;
  cfg.admission.queue_limit = 40;

  const auto run = [&] {
    CostModelPolicy p{"oracle", truth};
    return simulate(cfg, truth, trace, p);
  };
  const ClusterResult a = run();
  const ClusterResult b = run();
  const std::string log = a.log.str(truth.workloads);
  EXPECT_EQ(log, b.log.str(truth.workloads));
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.shed_work, b.shed_work);
  EXPECT_EQ(a.mean_stretch, b.mean_stretch);

  EXPECT_GT(a.failures, 0u);
  EXPECT_GT(a.recoveries, 0u);
  EXPECT_GT(a.fault_kills, 0u);
  EXPECT_NE(log.find(" fail machine="), std::string::npos);
  EXPECT_NE(log.find(" recover machine="), std::string::npos);
  EXPECT_NE(log.find(" evict job="), std::string::npos);

  // Killed-and-completed jobs still satisfy the solo-normalized
  // invariants: lost work and backoff only stretch them.
  for (const JobOutcome& o : a.outcomes) {
    if (!o.completed()) continue;
    EXPECT_GE(o.stretch(), 1.0 - 1e-12);
    EXPECT_GE(o.corun_slowdown(), 1.0 - 1e-12);
  }
}

// --- retry/backoff and the work-loss model --------------------------

// One machine, one solo job, one outage: finish times are exact
// solo-speed arithmetic, so the work-loss model is pinned numerically.
// Down at t=4 kills the job (4 of 10 units executed); backoff 1 makes
// it ready at t=5 but the machine only recovers at t=6.
TEST(Retry, WorkLossModelRestartFromZero) {
  const auto truth = synthetic_truth();
  const auto trace = neutral_jobs({{0.0, 10.0}});
  ClusterConfig cfg{1, 2};
  cfg.faults = {{4.0, 0, FaultEvent::Kind::Down},
                {6.0, 0, FaultEvent::Kind::Up}};
  cfg.retry.backoff = 1.0;
  cfg.retry.checkpoint = 0.0;  // the whole attempt is lost
  CostModelPolicy p{"oracle", truth};
  const ClusterResult res = simulate(cfg, truth, trace, p);

  ASSERT_TRUE(res.outcomes[0].completed());
  EXPECT_EQ(res.outcomes[0].retries, 1u);
  EXPECT_NEAR(res.outcomes[0].finish, 16.0, 1e-9);  // 6 + full 10 again
  EXPECT_NEAR(res.outcomes[0].start, 0.0, 1e-9);    // first placement
  EXPECT_NEAR(res.outcomes[0].stretch(), 1.6, 1e-9);
  EXPECT_EQ(res.failures, 1u);
  EXPECT_EQ(res.recoveries, 1u);
  EXPECT_EQ(res.fault_kills, 1u);
}

TEST(Retry, WorkLossModelPerfectCheckpoint) {
  const auto truth = synthetic_truth();
  const auto trace = neutral_jobs({{0.0, 10.0}});
  ClusterConfig cfg{1, 2};
  cfg.faults = {{4.0, 0, FaultEvent::Kind::Down},
                {6.0, 0, FaultEvent::Kind::Up}};
  cfg.retry.backoff = 1.0;
  cfg.retry.checkpoint = 1.0;  // only in-flight time is lost
  CostModelPolicy p{"oracle", truth};
  const ClusterResult res = simulate(cfg, truth, trace, p);

  ASSERT_TRUE(res.outcomes[0].completed());
  EXPECT_NEAR(res.outcomes[0].finish, 12.0, 1e-9);  // 6 + remaining 6
  EXPECT_NEAR(res.outcomes[0].stretch(), 1.2, 1e-9);
}

TEST(Retry, BackoffDelaysPastRecovery) {
  const auto truth = synthetic_truth();
  const auto trace = neutral_jobs({{0.0, 10.0}});
  ClusterConfig cfg{1, 2};
  cfg.faults = {{4.0, 0, FaultEvent::Kind::Down},
                {6.0, 0, FaultEvent::Kind::Up}};
  cfg.retry.backoff = 5.0;  // ready at t=9, after the t=6 recovery
  cfg.retry.checkpoint = 1.0;
  CostModelPolicy p{"oracle", truth};
  const ClusterResult res = simulate(cfg, truth, trace, p);
  EXPECT_NEAR(res.outcomes[0].finish, 15.0, 1e-9);  // 9 + remaining 6
}

TEST(Retry, ExhaustedRetriesShed) {
  const auto truth = synthetic_truth();
  const auto trace = neutral_jobs({{0.0, 10.0}});
  ClusterConfig cfg{1, 2};
  cfg.faults = {{4.0, 0, FaultEvent::Kind::Down},
                {6.0, 0, FaultEvent::Kind::Up}};
  cfg.retry.max_retries = 0;
  CostModelPolicy p{"oracle", truth};
  const ClusterResult res = simulate(cfg, truth, trace, p);

  EXPECT_FALSE(res.outcomes[0].completed());
  EXPECT_TRUE(res.outcomes[0].shed);
  EXPECT_EQ(res.shed_jobs, 1u);
  EXPECT_NEAR(res.shed_work, 10.0, 1e-9);  // restart-from-zero loss
  EXPECT_EQ(res.completed_jobs, 0u);
  EXPECT_NE(res.log.str(truth.workloads).find(" shed job=0"),
            std::string::npos);
}

// --- preemptive migration -------------------------------------------

TEST(Migration, HighPriorityPreemptsLowestClass) {
  const auto truth = synthetic_truth();
  // Two best-effort residents fill the only machine; a class-1 job
  // arrives at t=1.
  std::vector<JobSpec> trace = neutral_jobs({{0.0, 100.0}, {0.0, 100.0}});
  JobSpec hp;
  hp.id = 2;
  hp.type = kNeutral;
  hp.arrival = 1.0;
  hp.work = 10.0;
  hp.priority = 1;
  trace.push_back(hp);

  ClusterConfig cfg{1, 2};
  cfg.migration.preempt = true;
  CostModelPolicy p{"oracle", truth};
  const ClusterResult res = simulate(cfg, truth, trace, p);

  EXPECT_EQ(res.migrations, 1u);
  EXPECT_EQ(res.outcomes[0].evictions, 1u);  // lowest slot is the victim
  EXPECT_EQ(res.outcomes[1].evictions, 0u);
  EXPECT_NEAR(res.outcomes[2].start, 1.0, 1e-9)
      << "the class-1 job must start at arrival, not after a drain";
  EXPECT_NEAR(res.outcomes[2].finish, 11.0, 1e-9);
  // The victim loses its 1 unit of progress (restart-from-zero) and
  // re-places when the class-1 job finishes.
  ASSERT_TRUE(res.outcomes[0].completed());
  EXPECT_NEAR(res.outcomes[0].finish, 111.0, 1e-9);
  EXPECT_EQ(res.outcomes[0].retries, 0u) << "eviction is not a failure kill";
  EXPECT_NE(res.log.str(truth.workloads).find(" evict job=0"),
            std::string::npos);
}

TEST(Migration, NeverEvictsEqualOrHigherClass) {
  const auto truth = synthetic_truth();
  std::vector<JobSpec> trace =
      neutral_jobs({{0.0, 100.0}, {0.0, 100.0}}, /*priority=*/1);
  JobSpec hp;
  hp.id = 2;
  hp.type = kNeutral;
  hp.arrival = 1.0;
  hp.work = 10.0;
  hp.priority = 1;
  trace.push_back(hp);

  ClusterConfig cfg{1, 2};
  cfg.migration.preempt = true;
  CostModelPolicy p{"oracle", truth};
  const ClusterResult res = simulate(cfg, truth, trace, p);
  EXPECT_EQ(res.migrations, 0u);
  EXPECT_NEAR(res.outcomes[2].start, 100.0, 1e-9)
      << "equal-class residents must not be preempted";
}

// --- admission control ----------------------------------------------

TEST(Admission, ShedBillingConservesWork) {
  const auto truth = synthetic_truth();
  const auto trace = neutral_jobs(
      {{0.0, 50.0}, {0.1, 50.0}, {0.2, 50.0}, {0.3, 50.0}});
  ClusterConfig cfg{1, 2};
  cfg.admission.queue_limit = 1;  // one waiter is already overload
  CostModelPolicy p{"oracle", truth};
  const ClusterResult res = simulate(cfg, truth, trace, p);

  // Jobs 0/1 run, job 2 waits, job 3 arrives over the limit and sheds.
  EXPECT_EQ(res.shed_jobs, 1u);
  EXPECT_NEAR(res.shed_work, 50.0, 1e-9);
  EXPECT_TRUE(res.outcomes[3].shed);
  EXPECT_EQ(res.completed_jobs, 3u);
  ASSERT_EQ(res.class_stats.size(), 1u);
  const ClassStats& cs = res.class_stats[0];
  EXPECT_EQ(cs.jobs, 4u);
  EXPECT_EQ(cs.shed, 1u);
  EXPECT_NEAR(cs.work_arrived, 200.0, 1e-9);
  EXPECT_NEAR(cs.work_completed, 150.0, 1e-9);
  // Billing identity: every arrived unit either completed or was shed.
  EXPECT_NEAR(cs.work_arrived, cs.work_completed + res.shed_work, 1e-9);
  EXPECT_NEAR(cs.goodput * res.makespan, cs.work_completed, 1e-9);
  EXPECT_NE(res.log.str(truth.workloads).find(" shed job=3"),
            std::string::npos);
}

TEST(Admission, HighClassesAreNeverShed) {
  const auto truth = synthetic_truth();
  std::vector<JobSpec> trace = neutral_jobs(
      {{0.0, 50.0}, {0.1, 50.0}, {0.2, 50.0}});
  JobSpec hp;
  hp.id = 3;
  hp.type = kNeutral;
  hp.arrival = 0.3;
  hp.work = 50.0;
  hp.priority = 1;
  trace.push_back(hp);

  ClusterConfig cfg{1, 2};
  cfg.admission.queue_limit = 1;
  cfg.admission.shed_below = 1;  // only class 0 is sheddable
  CostModelPolicy p{"oracle", truth};
  const ClusterResult res = simulate(cfg, truth, trace, p);
  EXPECT_FALSE(res.outcomes[3].shed);
  EXPECT_TRUE(res.outcomes[3].completed());
  ASSERT_EQ(res.class_stats.size(), 2u);
  EXPECT_EQ(res.class_stats[1].shed, 0u);
}

TEST(Admission, DeferThenShedUnderPersistentOverload) {
  const auto truth = synthetic_truth();
  const auto trace = neutral_jobs(
      {{0.0, 50.0}, {0.1, 50.0}, {0.2, 50.0}, {0.3, 50.0}});
  ClusterConfig cfg{1, 2};
  cfg.admission.queue_limit = 1;
  cfg.admission.defer_delay = 10.0;
  cfg.admission.max_defers = 1;
  CostModelPolicy p{"oracle", truth};
  const ClusterResult res = simulate(cfg, truth, trace, p);

  // Job 3 defers once (until t=10.3, still overloaded: job 2 waits
  // until the first completion at t=50) and then sheds.
  EXPECT_EQ(res.outcomes[3].defers, 1u);
  EXPECT_TRUE(res.outcomes[3].shed);
  const std::string log = res.log.str(truth.workloads);
  EXPECT_NE(log.find(" defer job=3"), std::string::npos);
  EXPECT_NE(log.find(" shed job=3"), std::string::npos);
}

TEST(Admission, DeferredJobAdmittedOnceLoadClears) {
  const auto truth = synthetic_truth();
  const auto trace = neutral_jobs(
      {{0.0, 10.0}, {0.1, 10.0}, {0.2, 10.0}, {0.3, 10.0}});
  ClusterConfig cfg{1, 2};
  cfg.admission.queue_limit = 1;
  cfg.admission.defer_delay = 25.0;  // re-enters at t=25.3: queue empty
  cfg.admission.max_defers = 3;
  CostModelPolicy p{"oracle", truth};
  const ClusterResult res = simulate(cfg, truth, trace, p);
  EXPECT_EQ(res.outcomes[3].defers, 1u);
  EXPECT_FALSE(res.outcomes[3].shed);
  ASSERT_TRUE(res.outcomes[3].completed());
  EXPECT_EQ(res.shed_jobs, 0u);
}

// --- graceful degradation end to end --------------------------------

// The acceptance-shaped comparison at test scale: under overload plus
// machine churn, admission control + migration must buy the
// high-priority class strictly more goodput and less stretch than the
// no-shed baseline.
TEST(Degradation, ProtectionLiftsHighPriorityGoodput) {
  const auto truth = synthetic_truth();
  FleetTraceOptions fopt;
  fopt.jobs = 2000;
  fopt.seed = 21;
  fopt.mean_interarrival = 0.45;  // well past the fleet's capacity
  fopt.class_shares = {3.0, 1.0};
  const auto trace = fleet_trace(truth.size(), fopt);

  FaultScheduleOptions sched;
  sched.seed = 13;
  sched.horizon = 500.0;
  sched.mtbf = 120.0;
  sched.mttr = 30.0;

  ClusterConfig base{6, 2};
  base.faults = fault_schedule(base.machines, sched);

  ClusterConfig prot = base;
  prot.migration.preempt = true;
  prot.admission.queue_limit = 30;
  prot.admission.shed_below = 1;

  CostModelPolicy pb{"oracle", truth};
  const ClusterResult rb = simulate(base, truth, trace, pb);
  CostModelPolicy pp{"oracle", truth};
  const ClusterResult rp = simulate(prot, truth, trace, pp);

  ASSERT_EQ(rb.class_stats.size(), 2u);
  ASSERT_EQ(rp.class_stats.size(), 2u);
  EXPECT_EQ(rb.migrations, 0u) << "baseline must not migrate";
  EXPECT_GT(rp.shed_jobs, 0u) << "protection must actually shed load";
  EXPECT_GT(rp.class_stats[1].goodput, rb.class_stats[1].goodput)
      << "admission control + migration must lift class-1 goodput";
  EXPECT_LT(rp.class_stats[1].mean_stretch, rb.class_stats[1].mean_stretch)
      << "class-1 jobs must also wait less";
  EXPECT_EQ(rp.class_stats[1].shed, 0u);
}

}  // namespace
}  // namespace coperf::cluster
