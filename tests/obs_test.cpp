// Observability tests: the metrics registry stays exact under
// concurrent pool updates, disabled mode records nothing, snapshots
// and trace documents are valid JSON, and the cluster simulator's
// simulated-time timeline is structurally well formed (disjoint
// resident-set spans per machine lane, monotonic counter tracks) while
// never changing simulation results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "harness/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/stats.hpp"

namespace coperf::obs {
namespace {

// --- minimal JSON parser (validation only) ---------------------------

struct Json {
  enum class Kind { Object, Array, String, Number, Bool, Null };
  Kind kind = Kind::Null;
  std::map<std::string, Json> obj;
  std::vector<Json> arr;
  std::string str;
  double num = 0.0;
  bool boolean = false;

  const Json& at(const std::string& key) const {
    const auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error{"missing key " + key};
    return it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) != 0; }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error{"trailing bytes"};
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) throw std::runtime_error{"unexpected end"};
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c)
      throw std::runtime_error{std::string{"expected "} + c + " got " +
                               s_[pos_]};
    ++pos_;
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) throw std::runtime_error{"unterminated string"};
      const char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= s_.size()) throw std::runtime_error{"bad escape"};
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u':
            if (pos_ + 4 > s_.size()) throw std::runtime_error{"bad \\u"};
            for (int i = 0; i < 4; ++i)
              if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])))
                throw std::runtime_error{"bad \\u digit"};
            out += '?';  // value irrelevant for validation
            pos_ += 4;
            break;
          default: throw std::runtime_error{"unknown escape"};
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        throw std::runtime_error{"raw control char in string"};
      } else {
        out += c;
      }
    }
    return out;
  }

  Json value() {
    skip_ws();
    Json v;
    const char c = peek();
    if (c == '{') {
      ++pos_;
      v.kind = Json::Kind::Object;
      if (!consume('}')) {
        do {
          skip_ws();
          std::string key = string();
          skip_ws();
          expect(':');
          v.obj.emplace(std::move(key), value());
        } while (consume(','));
        skip_ws();
        expect('}');
      }
    } else if (c == '[') {
      ++pos_;
      v.kind = Json::Kind::Array;
      if (!consume(']')) {
        do {
          v.arr.push_back(value());
        } while (consume(','));
        skip_ws();
        expect(']');
      }
    } else if (c == '"') {
      v.kind = Json::Kind::String;
      v.str = string();
    } else if (c == 't' || c == 'f') {
      v.kind = Json::Kind::Bool;
      const std::string word = c == 't' ? "true" : "false";
      if (s_.compare(pos_, word.size(), word) != 0)
        throw std::runtime_error{"bad literal"};
      pos_ += word.size();
      v.boolean = c == 't';
    } else if (c == 'n') {
      if (s_.compare(pos_, 4, "null") != 0)
        throw std::runtime_error{"bad literal"};
      pos_ += 4;
    } else {
      v.kind = Json::Kind::Number;
      const std::size_t start = pos_;
      while (pos_ < s_.size() &&
             (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
              s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
              s_[pos_] == 'e' || s_[pos_] == 'E'))
        ++pos_;
      if (pos_ == start) throw std::runtime_error{"bad number"};
      v.num = std::stod(s_.substr(start, pos_ - start));
    }
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Structural validation of a trace document. Checks every event is
/// well formed, 'X' spans on one (pid, tid) lane are disjoint or
/// properly nested, and counter tracks on simulated timelines (pid !=
/// kHostPid, where timestamps are event-loop time) are nondecreasing
/// in file order. Host counter tracks are exempt: their timestamps are
/// read before the buffer lock, so concurrent emitters may interleave.
void validate_trace_doc(const Json& doc) {
  ASSERT_EQ(doc.kind, Json::Kind::Object);
  ASSERT_TRUE(doc.has("traceEvents"));
  const Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.kind, Json::Kind::Array);

  struct SpanRec {
    double ts, dur;
  };
  std::map<std::pair<int, int>, std::vector<SpanRec>> spans;
  std::map<std::pair<int, std::string>, double> counter_last;

  for (const Json& e : events.arr) {
    ASSERT_EQ(e.kind, Json::Kind::Object);
    ASSERT_EQ(e.at("name").kind, Json::Kind::String);
    ASSERT_EQ(e.at("ph").kind, Json::Kind::String);
    ASSERT_EQ(e.at("ph").str.size(), 1u);
    const char ph = e.at("ph").str[0];
    ASSERT_TRUE(ph == 'X' || ph == 'i' || ph == 'C' || ph == 'M')
        << "unexpected phase " << ph;
    const int pid = static_cast<int>(e.at("pid").num);
    const int tid = static_cast<int>(e.at("tid").num);
    const double ts = e.at("ts").num;
    ASSERT_GE(ts, 0.0);
    if (ph == 'X') {
      ASSERT_GE(e.at("dur").num, 0.0);
      spans[{pid, tid}].push_back({ts, e.at("dur").num});
    }
    if (ph == 'i') ASSERT_EQ(e.at("s").str, "t");
    if (ph == 'C') {
      ASSERT_TRUE(e.has("args"));
      ASSERT_TRUE(e.at("args").has("value"));
      if (pid != Trace::kHostPid) {
        const auto key = std::make_pair(pid, e.at("name").str);
        const auto it = counter_last.find(key);
        if (it != counter_last.end())
          ASSERT_GE(ts, it->second) << "counter track went backwards";
        counter_last[key] = ts;
      }
    }
    if (ph == 'M') ASSERT_TRUE(e.at("args").has("name"));
  }

  // Same-lane spans: sorted by (start, -dur), each span must either
  // start after the enclosing one ends or end within it.
  constexpr double kEps = 1e-3;  // us; float slack on boundaries
  for (auto& [lane, v] : spans) {
    std::sort(v.begin(), v.end(), [](const SpanRec& a, const SpanRec& b) {
      return a.ts != b.ts ? a.ts < b.ts : a.dur > b.dur;
    });
    std::vector<double> stack;  // open span end times
    for (const SpanRec& s : v) {
      while (!stack.empty() && stack.back() <= s.ts + kEps) stack.pop_back();
      if (!stack.empty())
        ASSERT_LE(s.ts + s.dur, stack.back() + kEps)
            << "overlapping spans on lane (" << lane.first << ","
            << lane.second << ")";
      stack.push_back(s.ts + s.dur);
    }
  }
}

Json parse_current_trace() {
  std::ostringstream os;
  Trace::instance().write(os);
  return Parser{os.str()}.parse();
}

/// RAII guard: every test leaves metrics enabled and the trace stopped
/// and empty, whatever it toggled.
struct ObsSandbox {
  ~ObsSandbox() {
    set_metrics_enabled(true);
    Trace::instance().stop();
    Trace::instance().clear();
  }
};

// --- metrics ---------------------------------------------------------

TEST(MetricsTest, CounterExactUnderConcurrentPoolUpdates) {
  ObsSandbox sandbox;
  Registry& reg = Registry::instance();
  Counter& c = reg.counter("obs_test.concurrent_counter");
  Histogram& h = reg.histogram("obs_test.concurrent_hist");
  c.reset();
  h.reset();
  constexpr std::size_t kIters = 10'000;
  harness::parallel_for(kIters, 8, [&](std::size_t i) {
    c.add();
    h.record(i);
  });
  EXPECT_EQ(c.value(), kIters);
  EXPECT_EQ(h.count(), kIters);
  EXPECT_EQ(h.sum(), kIters * (kIters - 1) / 2);
}

TEST(MetricsTest, GaugeSetAndAtomicAdd) {
  ObsSandbox sandbox;
  Gauge& g = Registry::instance().gauge("obs_test.gauge");
  g.reset();
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  harness::parallel_for(1000, 8, [&](std::size_t) { g.add(1.0); });
  EXPECT_DOUBLE_EQ(g.value(), 1002.5);
}

TEST(MetricsTest, HistogramLogBuckets) {
  ObsSandbox sandbox;
  Histogram h;
  h.record(0);    // bucket 0
  h.record(1);    // bit_width 1 -> bucket 1
  h.record(2);    // bucket 2
  h.record(3);    // bucket 2
  h.record(4);    // bucket 3
  h.record(1024);  // bucket 11
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(11), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 1034u);
  // p50 of 6 samples lands in bucket 2 -> upper bound 3.
  EXPECT_EQ(h.quantile_upper(0.5), 3u);
  EXPECT_EQ(h.quantile_upper(1.0), 2047u);
}

TEST(MetricsTest, HistogramInterpolatedQuantile) {
  ObsSandbox sandbox;
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram
  h.record(5);
  // A single sample: every quantile interpolates inside its bucket
  // [4, 8), never outside it.
  EXPECT_GE(h.quantile(0.0), 4.0);
  EXPECT_LE(h.quantile(1.0), 8.0);
  EXPECT_LE(h.quantile(0.25), h.quantile(0.75));
  for (std::uint64_t v = 0; v < 100; ++v) h.record(1u << 20);
  // Mass overwhelmingly in bucket 21 ([2^20, 2^21)): the median must
  // land there, and the interpolated value within the bucket bounds.
  EXPECT_GE(h.quantile(0.5), static_cast<double>(1u << 20));
  EXPECT_LE(h.quantile(0.5), static_cast<double>(1u << 21));
  // Never above the bucket-upper-bound answer.
  EXPECT_LE(h.quantile(0.99),
            static_cast<double>(h.quantile_upper(0.99)) + 1.0);
  // Monotone in q.
  EXPECT_LE(h.quantile(0.50), h.quantile(0.95));
  EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
}

TEST(MetricsTest, HistogramQuantileMatchesLatencyStatsMath) {
  // Histogram::quantile and sim::LatencyStats::quantile share
  // obs/quantile.hpp -- identical samples must give identical answers.
  ObsSandbox sandbox;
  Histogram h;
  sim::LatencyStats l;
  const std::uint64_t samples[] = {3, 17, 17, 250, 4096, 4097, 70000};
  for (const std::uint64_t s : samples) {
    h.record(s);
    l.record(s);
  }
  for (const double q : {0.0, 0.5, 0.9, 0.95, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(h.quantile(q), l.quantile(q)) << "q=" << q;
}

TEST(MetricsTest, DisabledUpdatesAreDropped) {
  ObsSandbox sandbox;
  Registry& reg = Registry::instance();
  Counter& c = reg.counter("obs_test.disabled_counter");
  Gauge& g = reg.gauge("obs_test.disabled_gauge");
  Histogram& h = reg.histogram("obs_test.disabled_hist");
  c.reset();
  g.reset();
  h.reset();
  set_metrics_enabled(false);
  c.add(7);
  g.set(1.0);
  g.add(1.0);
  h.record(42);
  set_metrics_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsTest, SnapshotIsValidJsonAndCarriesValues) {
  ObsSandbox sandbox;
  Registry& reg = Registry::instance();
  reg.counter("obs_test.snap_counter").reset();
  reg.counter("obs_test.snap_counter").add(3);
  reg.gauge("obs_test.snap_gauge").set(1.5);
  reg.histogram("obs_test.snap_hist").record(10);
  const Json doc = Parser{reg.snapshot_json()}.parse();
  ASSERT_EQ(doc.kind, Json::Kind::Object);
  EXPECT_DOUBLE_EQ(doc.at("counters").at("obs_test.snap_counter").num, 3.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("obs_test.snap_gauge").num, 1.5);
  const Json& h = doc.at("histograms").at("obs_test.snap_hist");
  EXPECT_DOUBLE_EQ(h.at("count").num, 1.0);
  EXPECT_DOUBLE_EQ(h.at("sum").num, 10.0);
}

TEST(MetricsTest, LabeledSeriesName) {
  EXPECT_EQ(Registry::labeled("plan.trials", "bench", "fig5"),
            "plan.trials{bench=fig5}");
}

// --- trace -----------------------------------------------------------

TEST(TraceTest, DisabledRecordsNothingAndReadsNoClock) {
  ObsSandbox sandbox;
  Trace& tr = Trace::instance();
  tr.stop();
  tr.clear();
  ASSERT_FALSE(tr.enabled());
  {
    Trace::Span span{"should-not-record"};
    tr.instant("nope");
    tr.counter("nope", 1.0);
    tr.complete(5, 0, "nope", 0.0, 1.0);
  }
  EXPECT_EQ(tr.event_count(), 0u);
}

TEST(TraceTest, HostSpansFormValidDocument) {
  ObsSandbox sandbox;
  Trace& tr = Trace::instance();
  tr.start();
  {
    Trace::Span outer{"outer", Args{}.set("k", 1).str()};
    harness::parallel_for(64, 4, [&](std::size_t i) {
      const double t0 = tr.now_us();
      tr.complete_host("work", t0, tr.now_us() - t0,
                       Args{}.set("i", i).str());
      if (i % 8 == 0) tr.instant("milestone");
    });
    tr.counter("inflight", 0.0);
  }
  ASSERT_GT(tr.event_count(), 64u);
  const Json doc = parse_current_trace();
  validate_trace_doc(doc);
  // Every span event landed on the host timeline.
  for (const Json& e : doc.at("traceEvents").arr)
    if (e.at("ph").str == "X")
      EXPECT_EQ(static_cast<int>(e.at("pid").num), Trace::kHostPid);
  tr.stop();
  tr.clear();
}

TEST(TraceTest, ArgsEscapesAndRenders) {
  const std::string json =
      Args{}.set("s", "a\"b\\c\nd").set("n", 42).set("d", 1.5).set("b", true)
          .str();
  const Json v = Parser{json}.parse();
  EXPECT_EQ(v.at("s").str, "a\"b\\c\nd");
  EXPECT_DOUBLE_EQ(v.at("n").num, 42.0);
  EXPECT_DOUBLE_EQ(v.at("d").num, 1.5);
  EXPECT_TRUE(v.at("b").boolean);
}

// --- cluster simulated-time timeline ---------------------------------

harness::CorunMatrix synthetic_matrix() {
  harness::CorunMatrix m;
  m.workloads = {"hog", "victim", "neutral"};
  m.solo_cycles = {1'000'000, 1'000'000, 1'000'000};
  m.normalized = {
      {1.60, 1.10, 1.05},
      {2.20, 1.05, 1.02},
      {1.05, 1.01, 1.00},
  };
  return m;
}

cluster::ClusterResult run_cluster(std::uint64_t seed) {
  cluster::ClusterConfig cfg;
  cfg.machines = 3;
  cfg.slots = 2;
  cfg.type_names = {"hog", "victim", "neutral"};
  cluster::TraceOptions topt;
  topt.jobs = 60;
  topt.seed = seed;
  topt.mean_interarrival = 2.0;
  const auto trace = cluster::synthetic_trace(3, topt);
  cluster::RandomPolicy policy{seed};
  return cluster::simulate(cfg, synthetic_matrix(), trace, policy);
}

TEST(TraceTest, ClusterTimelineWellFormed) {
  ObsSandbox sandbox;
  Trace& tr = Trace::instance();
  tr.start();
  const auto res = run_cluster(7);
  ASSERT_EQ(res.outcomes.size(), 60u);
  const Json doc = parse_current_trace();
  tr.stop();
  tr.clear();
  validate_trace_doc(doc);

  // The run got its own simulated-time process: machine lanes holding
  // resident-set spans, "place ..." decision instants carrying the
  // billing args, and a queue-depth counter track.
  int sim_pid = -1;
  std::size_t resident_spans = 0, place_events = 0, queue_samples = 0;
  for (const Json& e : doc.at("traceEvents").arr) {
    const int pid = static_cast<int>(e.at("pid").num);
    if (pid == Trace::kHostPid) continue;
    const std::string& ph = e.at("ph").str;
    if (ph == "M") continue;
    if (sim_pid == -1) sim_pid = pid;
    EXPECT_EQ(pid, sim_pid) << "one simulate() call must use one pid";
    const int tid = static_cast<int>(e.at("tid").num);
    if (ph == "X") {
      ++resident_spans;
      EXPECT_GE(tid, 0);
      EXPECT_LT(tid, 3);
      EXPECT_TRUE(e.at("args").has("residents"));
    } else if (ph == "i") {
      ++place_events;
      EXPECT_EQ(e.at("name").str.rfind("place ", 0), 0u);
      const Json& a = e.at("args");
      EXPECT_TRUE(a.has("policy"));
      EXPECT_TRUE(a.has("predicted_cost"));
      EXPECT_TRUE(a.has("true_cost"));
      EXPECT_TRUE(a.has("regret"));
    } else if (ph == "C") {
      EXPECT_EQ(e.at("name").str, "queue_depth");
      ++queue_samples;
    }
  }
  EXPECT_GT(resident_spans, 0u);
  EXPECT_EQ(place_events, 60u);  // one decision instant per job
  EXPECT_GT(queue_samples, 0u);
}

TEST(TraceTest, TracingNeverChangesClusterResults) {
  ObsSandbox sandbox;
  Trace& tr = Trace::instance();
  tr.stop();
  tr.clear();
  const auto plain = run_cluster(11);
  tr.start();
  const auto traced = run_cluster(11);
  tr.stop();
  tr.clear();
  EXPECT_EQ(plain.mean_stretch, traced.mean_stretch);
  EXPECT_EQ(plain.mean_decision_regret, traced.mean_decision_regret);
  EXPECT_EQ(plain.makespan, traced.makespan);
  EXPECT_EQ(plain.log.events.size(), traced.log.events.size());
}

TEST(TraceTest, SeparatePidPerSimulateCall) {
  ObsSandbox sandbox;
  Trace& tr = Trace::instance();
  tr.start();
  (void)run_cluster(1);
  (void)run_cluster(2);
  const Json doc = parse_current_trace();
  tr.stop();
  tr.clear();
  std::vector<int> pids;
  for (const Json& e : doc.at("traceEvents").arr) {
    const int pid = static_cast<int>(e.at("pid").num);
    if (pid != Trace::kHostPid &&
        std::find(pids.begin(), pids.end(), pid) == pids.end())
      pids.push_back(pid);
  }
  EXPECT_EQ(pids.size(), 2u);
}

}  // namespace
}  // namespace coperf::obs
