// Unit tests for the set-associative cache model.
#include <gtest/gtest.h>

#include "sim/cache.hpp"

namespace coperf::sim {
namespace {

CacheConfig small_cfg(std::uint64_t size = 4096, std::uint32_t assoc = 4) {
  CacheConfig c;
  c.size_bytes = size;
  c.assoc = assoc;
  c.latency_cycles = 10;
  return c;
}

TEST(Cache, MissThenHitAfterFill) {
  Cache c{"t", small_cfg()};
  EXPECT_FALSE(c.access(7, false).hit);
  c.fill(7, false, false);
  EXPECT_TRUE(c.access(7, false).hit);
  EXPECT_EQ(c.stats().demand_misses, 1u);
  EXPECT_EQ(c.stats().demand_hits, 1u);
}

TEST(Cache, ProbeHasNoSideEffects) {
  Cache c{"t", small_cfg()};
  EXPECT_FALSE(c.probe(5));
  c.fill(5, false, false);
  EXPECT_TRUE(c.probe(5));
  EXPECT_EQ(c.stats().demand_hits, 0u);
  EXPECT_EQ(c.stats().demand_misses, 0u);
}

TEST(Cache, GeometryDerivedFromConfig) {
  Cache c{"t", small_cfg(32 * 1024, 8)};
  EXPECT_EQ(c.num_sets(), 32u * 1024 / (8 * 64));
  EXPECT_EQ(c.assoc(), 8u);
  EXPECT_EQ(c.size_bytes(), 32u * 1024);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  // One set: 4 ways; lines mapping to set 0 are multiples of num_sets.
  Cache c{"t", small_cfg(4096, 4)};
  const std::uint64_t sets = c.num_sets();
  // Fill 4 ways of set 0.
  for (std::uint64_t i = 0; i < 4; ++i) c.fill(i * sets, false, false);
  // Touch lines 0..2 so line 3*sets is LRU.
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_TRUE(c.access(i * sets, false).hit);
  const CacheResult r = c.fill(4 * sets, false, false);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(r.evicted_line, 3 * sets);
}

TEST(Cache, DirtyEvictionRequestsWriteback) {
  Cache c{"t", small_cfg(4096, 2)};
  const std::uint64_t sets = c.num_sets();
  c.fill(0, /*dirty=*/true, false);
  c.fill(sets, false, false);
  const CacheResult r = c.fill(2 * sets, false, false);
  EXPECT_TRUE(r.evicted);
  EXPECT_TRUE(r.evicted_dirty);
  EXPECT_EQ(r.evicted_line, 0u);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, StoreHitMarksLineDirty) {
  Cache c{"t", small_cfg(4096, 2)};
  const std::uint64_t sets = c.num_sets();
  c.fill(0, false, false);
  EXPECT_TRUE(c.access(0, /*is_write=*/true).hit);
  c.fill(sets, false, false);
  const CacheResult r = c.fill(2 * sets, false, false);
  EXPECT_TRUE(r.evicted_dirty) << "store hit must dirty the line";
}

TEST(Cache, MarkDirtyOnPresentLine) {
  Cache c{"t", small_cfg(4096, 2)};
  c.fill(3, false, false);
  c.mark_dirty(3);
  const auto inv = c.invalidate(3);
  EXPECT_TRUE(inv.present);
  EXPECT_TRUE(inv.dirty);
}

TEST(Cache, InvalidateRemovesLine) {
  Cache c{"t", small_cfg()};
  c.fill(9, false, false);
  EXPECT_TRUE(c.probe(9));
  const auto inv = c.invalidate(9);
  EXPECT_TRUE(inv.present);
  EXPECT_FALSE(c.probe(9));
  EXPECT_EQ(c.stats().back_invalidations, 1u);
  // Second invalidate is a no-op.
  EXPECT_FALSE(c.invalidate(9).present);
}

TEST(Cache, PrefetchUsefulnessCountedOnce) {
  Cache c{"t", small_cfg()};
  c.fill(11, false, /*from_prefetch=*/true);
  EXPECT_EQ(c.stats().prefetch_fills, 1u);
  const CacheResult first = c.access(11, false);
  EXPECT_TRUE(first.hit);
  EXPECT_TRUE(first.was_prefetched);
  EXPECT_EQ(c.stats().prefetch_useful, 1u);
  const CacheResult second = c.access(11, false);
  EXPECT_TRUE(second.hit);
  EXPECT_FALSE(second.was_prefetched) << "only first touch counts";
  EXPECT_EQ(c.stats().prefetch_useful, 1u);
}

TEST(Cache, DuplicateFillKeepsDirtyBit) {
  Cache c{"t", small_cfg()};
  c.fill(4, true, false);
  c.fill(4, false, false);  // prefetch raced a demand fill
  const auto inv = c.invalidate(4);
  EXPECT_TRUE(inv.dirty);
}

TEST(Cache, OccupancyTracksValidLines) {
  Cache c{"t", small_cfg(4096, 4)};
  EXPECT_EQ(c.occupancy(), 0u);
  for (std::uint64_t i = 0; i < 10; ++i) c.fill(i, false, false);
  EXPECT_EQ(c.occupancy(), 10u);
}

TEST(Cache, OccupancyPerApp) {
  Cache c{"t", small_cfg(64 * 1024, 16)};
  const Addr app1 = app_base(1) >> kLineBytesLog2;
  for (std::uint64_t i = 0; i < 5; ++i) c.fill(i, false, false);
  for (std::uint64_t i = 0; i < 3; ++i) c.fill(app1 + i, false, false);
  EXPECT_EQ(c.occupancy_of(0), 5u);
  EXPECT_EQ(c.occupancy_of(1), 3u);
}

TEST(Cache, InvalidateAppDropsOnlyThatApp) {
  Cache c{"t", small_cfg(64 * 1024, 16)};
  const Addr app1 = app_base(1) >> kLineBytesLog2;
  for (std::uint64_t i = 0; i < 5; ++i) c.fill(i, false, false);
  for (std::uint64_t i = 0; i < 3; ++i) c.fill(app1 + i, false, false);
  EXPECT_EQ(c.invalidate_app(1), 3u);
  EXPECT_EQ(c.occupancy_of(1), 0u);
  EXPECT_EQ(c.occupancy_of(0), 5u);
}

TEST(Cache, HashedIndexSpreadsAppSpaces) {
  // With hashed indexing, two app spaces whose low bits are identical
  // should not collide into the same sets systematically.
  CacheConfig cfg = small_cfg(64 * 1024, 2);
  Cache plain{"p", cfg, /*hashed_index=*/false};
  Cache hashed{"h", cfg, /*hashed_index=*/true};
  const Addr app1 = app_base(1) >> kLineBytesLog2;
  std::uint64_t same_plain = 0, same_hashed = 0;
  for (std::uint64_t i = 0; i < 256; ++i) {
    same_plain += plain.set_index(i) == plain.set_index(app1 + i);
    same_hashed += hashed.set_index(i) == hashed.set_index(app1 + i);
  }
  EXPECT_EQ(same_plain, 256u) << "plain indexing aliases app spaces";
  EXPECT_LT(same_hashed, 32u) << "hashed indexing must spread them";
}

TEST(Cache, RejectsNonPowerOfTwoSets) {
  CacheConfig cfg;
  cfg.size_bytes = 3 * 1024;
  cfg.assoc = 4;
  EXPECT_THROW((Cache{"bad", cfg}), std::invalid_argument);
}

TEST(Cache, WorksAtPaperL3Geometry) {
  CacheConfig cfg;
  cfg.size_bytes = 20ull * 1024 * 1024;
  cfg.assoc = 20;
  cfg.latency_cycles = 38;
  Cache c{"L3", cfg, true};
  EXPECT_EQ(c.num_sets(), 16384u);
  for (std::uint64_t i = 0; i < 100'000; ++i) c.fill(i * 7, false, false);
  EXPECT_LE(c.occupancy(), cfg.size_bytes / 64);
}

/// Property sweep: filling exactly `ways` distinct lines of one set
/// never evicts; one more always evicts, for several geometries.
class CacheAssocSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheAssocSweep, SetFillsToExactlyAssocWays) {
  const std::uint32_t assoc = GetParam();
  // 16 sets for any associativity (set count must be a power of two).
  Cache c{"t", small_cfg(std::uint64_t{assoc} * 64 * 16, assoc)};
  const std::uint64_t sets = c.num_sets();
  for (std::uint32_t i = 0; i < assoc; ++i) {
    const CacheResult r = c.fill(std::uint64_t{i} * sets, false, false);
    EXPECT_FALSE(r.evicted) << "way " << i;
  }
  EXPECT_TRUE(c.fill(std::uint64_t{assoc} * sets, false, false).evicted);
  // All but the evicted line must still be present.
  std::uint32_t present = 0;
  for (std::uint32_t i = 0; i <= assoc; ++i)
    present += c.probe(std::uint64_t{i} * sets);
  EXPECT_EQ(present, assoc);
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheAssocSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 20));

}  // namespace
}  // namespace coperf::sim
