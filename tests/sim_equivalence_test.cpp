// Golden-stats equivalence guard for the simulator hot path.
//
// The hot-path refactors (single-scan cache fills, SoA way storage,
// presence-filtered inclusion invalidation, runnable-core scheduling)
// are pure performance work: every simulated statistic and finish cycle
// must be bit-identical to the seed implementation. This suite pins the
// Tiny-suite solo runs and three representative co-run pairs against a
// golden snapshot captured from the pre-refactor tree.
//
// Regenerate after an INTENTIONAL semantic change with:
//   COPERF_PRINT_GOLDEN=1 ./sim_equivalence_test
// and paste the printed table over kGolden below.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "harness/parallel.hpp"
#include "harness/runcache.hpp"
#include "harness/runner.hpp"
#include "sim/machine.hpp"
#include "wl/registry.hpp"

namespace coperf {
namespace {

using Snapshot = std::vector<std::uint64_t>;

const char* const kWorkloads[] = {"Stream", "Bandit",    "G-PR",
                                  "CIFAR",  "fotonik3d", "swaptions",
                                  "IRSmk",  "blackscholes", "G-BFS"};
const std::pair<const char*, const char*> kPairs[] = {
    {"CIFAR", "fotonik3d"},  // victim-offender (paper Fig. 5 anchor)
    {"G-PR", "fotonik3d"},   // graph victim vs. streaming offender
    {"Stream", "Bandit"},    // offender vs. cache-resident harmony
    // Prefetch-heavy pins for the request-combining queue: two trained
    // streamers saturating the bank, and a gemini graph victim whose
    // irregular gathers interleave with a streaming offender's
    // degree-4 bursts. Captured from the pre-combining tree.
    {"Stream", "Stream"},    // maximum streamer pressure, both sides
    {"G-BFS", "Stream"},     // gemini pair: gather victim vs. streamer
};

void append(Snapshot& out, const sim::CoreStats& s) {
  out.insert(out.end(),
             {s.cycles, s.instructions, s.loads, s.stores, s.l1d_hits,
              s.l1d_misses, s.l2_hits, s.l2_misses, s.l3_hits, s.l3_misses,
              s.bytes_from_mem, s.bytes_written_back, s.stall_cycles_mem,
              s.pending_l2_cycles, s.barrier_wait_cycles,
              s.prefetches_issued});
}

void append(Snapshot& out, const sim::CacheStats& s) {
  out.insert(out.end(),
             {s.demand_hits, s.demand_misses, s.store_hits, s.store_misses,
              s.prefetch_fills, s.prefetch_useful, s.writebacks,
              s.back_invalidations});
}

harness::RunOptions tiny_options() {
  harness::RunOptions o;
  o.machine = sim::MachineConfig::scaled();
  o.size = wl::SizeClass::Tiny;
  o.threads = 4;
  o.seed = 1;
  return o;
}

/// Solo run through the public harness: finish cycle + CoreStats.
Snapshot snap_solo(const std::string& workload) {
  const harness::RunResult r = harness::run_solo(workload, tiny_options());
  Snapshot out{r.cycles};
  append(out, r.stats);
  return out;
}

/// Co-run pair on a directly assembled Machine (mirrors run_pair's
/// setup) so the shared-cache counters are snapshotted too.
Snapshot snap_pair(const std::string& fg, const std::string& bg) {
  const harness::RunOptions opt = tiny_options();
  const auto& reg = wl::Registry::instance();
  auto fg_model =
      reg.create(fg, wl::AppParams{0, opt.threads, opt.size, opt.seed});
  auto bg_model = reg.create(
      bg, wl::AppParams{1, opt.bg_threads, opt.size, opt.seed + 0x9E37u});

  sim::Machine m{opt.machine};
  m.set_sample_window(opt.sample_window);

  sim::AppBinding fgb;
  fgb.id = 0;
  for (unsigned c = 0; c < opt.threads; ++c) fgb.cores.push_back(c);
  fgb.sources = fg_model->sources();
  m.add_app(std::move(fgb));

  sim::AppBinding bgb;
  bgb.id = 1;
  for (unsigned c = 0; c < opt.bg_threads; ++c)
    bgb.cores.push_back(opt.threads + c);
  bgb.sources = bg_model->sources();
  bgb.background = true;
  bgb.restart = [raw = bg_model.get()] { raw->restart(); };
  m.add_app(std::move(bgb));

  const sim::RunOutcome out = m.run();
  Snapshot s{out.finish_cycle, out.app_finish[0], out.app_finish[1],
             out.bg_runs[1]};
  append(s, m.app_stats(0));
  append(s, m.app_stats(1));
  append(s, m.mem().l3().stats());
  sim::CacheStats l1_total, l2_total;
  for (unsigned c = 0; c < opt.machine.num_cores; ++c) {
    l1_total += m.mem().l1(c).stats();
    l2_total += m.mem().l2(c).stats();
  }
  append(s, l1_total);
  append(s, l2_total);
  return s;
}

std::vector<std::pair<std::string, Snapshot>> current_snapshots() {
  std::vector<std::pair<std::string, Snapshot>> out;
  for (const char* w : kWorkloads)
    out.emplace_back("solo/" + std::string{w}, snap_solo(w));
  for (const auto& [fg, bg] : kPairs)
    out.emplace_back("pair/" + std::string{fg} + "+" + bg, snap_pair(fg, bg));
  return out;
}

// clang-format off
const std::vector<std::pair<std::string, Snapshot>> kGolden = {
    {"solo/Stream",
     {1421188ull, 4952566ull, 950272ull, 98304ull, 65536ull, 104719ull,
      59121ull, 8565ull, 50556ull, 25ull, 50531ull, 3233984ull,
      0ull, 4378380ull, 4910721ull, 0ull, 129954ull}},
    {"solo/Bandit",
     {472552ull, 1639310ull, 150000ull, 37500ull, 0ull, 0ull,
      37500ull, 0ull, 37500ull, 0ull, 37500ull, 2400000ull,
      0ull, 1534314ull, 1640268ull, 0ull, 0ull}},
    {"solo/G-PR",
     {825273ull, 3301092ull, 1835055ull, 569391ull, 53248ull, 213818ull,
      408821ull, 150213ull, 258608ull, 249617ull, 8991ull, 575424ull,
      0ull, 1220303ull, 2460604ull, 490897ull, 273513ull}},
    {"solo/CIFAR",
     {5531905ull, 22127620ull, 33984512ull, 466944ull, 126976ull, 560179ull,
      33741ull, 3426ull, 30315ull, 4082ull, 26233ull, 1678912ull,
      0ull, 4017697ull, 4499834ull, 813855ull, 535640ull}},
    {"solo/fotonik3d",
     {1296603ull, 4303190ull, 7077888ull, 147456ull, 49152ull, 192548ull,
      4060ull, 371ull, 3689ull, 0ull, 3689ull, 236096ull,
      0ull, 1009264ull, 1213409ull, 0ull, 144503ull}},
    {"solo/swaptions",
     {1835521ull, 7341480ull, 9683200ull, 153600ull, 153600ull, 307188ull,
      12ull, 4ull, 8ull, 0ull, 8ull, 512ull,
      0ull, 2272ull, 3392ull, 0ull, 768ull}},
    {"solo/IRSmk",
     {428055ull, 1712220ull, 395692ull, 56304ull, 1564ull, 10884ull,
      46984ull, 22613ull, 24371ull, 0ull, 24371ull, 1559744ull,
      0ull, 1264128ull, 1494590ull, 192978ull, 21221ull}},
    {"solo/blackscholes",
     {200545ull, 802180ull, 989184ull, 2048ull, 4096ull, 6136ull,
      8ull, 4ull, 4ull, 0ull, 4ull, 256ull,
      0ull, 311ull, 1079ull, 9285ull, 1028ull}},
    {"solo/G-BFS",
     {240756ull, 963024ull, 595620ull, 300491ull, 10997ull, 278068ull,
      33420ull, 12549ull, 20871ull, 15337ull, 5534ull, 354176ull,
      0ull, 329192ull, 719466ull, 140975ull, 29585ull}},
    {"pair/CIFAR+fotonik3d",
     {8330514ull, 8330514ull, 7133645ull, 3ull, 33322056ull, 33984512ull,
      466944ull, 126976ull, 538382ull, 55538ull, 6255ull, 49283ull,
      4165ull, 45118ull, 2887552ull, 0ull, 11066238ull, 12242759ull,
      4954092ull, 518880ull, 33323350ull, 26283596ull, 547575ull, 182521ull,
      636021ull, 94075ull, 12784ull, 81291ull, 5ull, 81286ull,
      5202304ull, 0ull, 18041093ull, 21568677ull, 0ull, 491679ull,
      4170ull, 126404ull, 0ull, 0ull, 914877ull, 3334ull,
      285495ull, 0ull, 883031ull, 131488ull, 291372ull, 18125ull,
      947481ull, 946826ull, 306577ull, 16319ull, 19039ull, 130574ull,
      0ull, 0ull, 965551ull, 19039ull, 288387ull, 187507ull}},
    {"pair/G-PR+fotonik3d",
     {1970172ull, 1970172ull, 1820281ull, 1ull, 7880688ull, 1835057ull,
      569393ull, 53248ull, 212732ull, 409909ull, 150497ull, 259412ull,
      236783ull, 22629ull, 1448256ull, 0ull, 5414885ull, 6719642ull,
      875341ull, 271944ull, 7881121ull, 7524860ull, 156768ull, 52252ull,
      191578ull, 17442ull, 2183ull, 15259ull, 2ull, 15257ull,
      976448ull, 0ull, 3515294ull, 4222073ull, 0ull, 146422ull,
      236785ull, 37886ull, 0ull, 0ull, 211831ull, 8739ull,
      61007ull, 0ull, 312146ull, 414015ull, 92164ull, 13336ull,
      191520ull, 190253ull, 74713ull, 4489ull, 152680ull, 274671ull,
      0ull, 0ull, 412512ull, 50092ull, 66415ull, 50729ull}},
    {"pair/Stream+Bandit",
     {1771893ull, 1771893ull, 1051148ull, 1ull, 6057086ull, 950272ull,
      98304ull, 65536ull, 91444ull, 72396ull, 10484ull, 61912ull,
      507ull, 61405ull, 3929920ull, 0ull, 5479062ull, 6016592ull,
      0ull, 116959ull, 7089090ull, 273733ull, 68434ull, 0ull,
      0ull, 68434ull, 0ull, 68434ull, 0ull, 68434ull,
      4379776ull, 0ull, 6842489ull, 7038092ull, 0ull, 41299ull,
      507ull, 129839ull, 0ull, 0ull, 96875ull, 371ull,
      55712ull, 0ull, 59184ull, 107554ull, 32260ull, 33276ull,
      91485ull, 91444ull, 64443ull, 2474ull, 10484ull, 130346ull,
      0ull, 0ull, 102051ull, 10484ull, 62137ull, 6078ull}},
    {"pair/Stream+Stream",
     {2418154ull, 2418154ull, 0ull, 0ull, 7902393ull, 950272ull,
      98304ull, 65536ull, 68805ull, 95035ull, 13458ull, 81577ull,
      1ull, 81576ull, 5220864ull, 0ull, 7318421ull, 7888900ull,
      0ull, 94728ull, 9674462ull, 670442ull, 68218ull, 50492ull,
      15995ull, 102715ull, 4643ull, 98072ull, 2ull, 98070ull,
      6276480ull, 0ull, 9270600ull, 9673814ull, 0ull, 23504ull,
      3ull, 179646ull, 0ull, 0ull, 102926ull, 3ull,
      70504ull, 0ull, 57145ull, 109377ull, 27655ull, 88373ull,
      84829ull, 84800ull, 114497ull, 1537ull, 18101ull, 179649ull,
      0ull, 0ull, 102930ull, 18101ull, 73476ull, 78708ull}},
    {"pair/G-BFS+Stream",
     {552260ull, 552260ull, 0ull, 0ull, 2209040ull, 595617ull,
      300488ull, 10997ull, 276150ull, 35335ull, 12112ull, 23223ull,
      13566ull, 9657ull, 618048ull, 0ull, 1417429ull, 1869387ull,
      299632ull, 26798ull, 2210746ull, 270205ull, 24101ull, 23948ull,
      22540ull, 25509ull, 3116ull, 22393ull, 0ull, 22393ull,
      1433152ull, 0ull, 2045387ull, 2207357ull, 0ull, 30121ull,
      13566ull, 32050ull, 0ull, 0ull, 40440ull, 2894ull,
      15009ull, 0ull, 277520ull, 47069ull, 21170ull, 13775ull,
      34307ull, 31095ull, 24954ull, 1570ull, 15228ull, 45616ull,
      0ull, 0ull, 51925ull, 8368ull, 18565ull, 10108ull}},
};
// clang-format on

TEST(SimEquivalence, GoldenStatsBitIdentical) {
  const auto got = current_snapshots();
  if (std::getenv("COPERF_PRINT_GOLDEN") != nullptr) {
    std::cout << "const std::vector<std::pair<std::string, Snapshot>> "
                 "kGolden = {\n";
    for (const auto& [name, snap] : got) {
      std::cout << "    {\"" << name << "\",\n     {";
      for (std::size_t i = 0; i < snap.size(); ++i) {
        if (i != 0) std::cout << (i % 6 == 0 ? "ull,\n      " : "ull, ");
        std::cout << snap[i];
      }
      std::cout << "ull}},\n";
    }
    std::cout << "};\n";
    GTEST_SKIP() << "golden table printed, not compared";
  }
  ASSERT_EQ(got.size(), kGolden.size())
      << "scenario list changed -- regenerate the golden table";
  for (std::size_t s = 0; s < got.size(); ++s) {
    EXPECT_EQ(got[s].first, kGolden[s].first);
    ASSERT_EQ(got[s].second.size(), kGolden[s].second.size())
        << got[s].first;
    for (std::size_t i = 0; i < got[s].second.size(); ++i)
      EXPECT_EQ(got[s].second[i], kGolden[s].second[i])
          << got[s].first << " field #" << i
          << " -- the hot-path refactor changed simulated behavior";
  }
}

// ---------------------------------------------------------------------
// Run-cache key semantics (fast tier; see CMakeLists test split).

harness::RunOptions cache_test_options() {
  harness::RunOptions o;
  o.machine = sim::MachineConfig::scaled();
  o.size = wl::SizeClass::Tiny;
  o.threads = 1;
  o.seed = 77;
  return o;
}

TEST(RunCacheKey, KeyCoversEverySimulationInput) {
  const harness::RunOptions base = cache_test_options();
  const std::string k = harness::RunCache::solo_key("Stream", base);
  EXPECT_EQ(k, harness::RunCache::solo_key("Stream", base))
      << "same options must produce the same key";

  harness::RunOptions seed = base;
  seed.seed = 78;
  EXPECT_NE(k, harness::RunCache::solo_key("Stream", seed))
      << "seed change must miss";

  harness::RunOptions mach = base;
  mach.machine.l3.size_bytes /= 2;
  EXPECT_NE(k, harness::RunCache::solo_key("Stream", mach))
      << "machine-config change must miss";

  harness::RunOptions pf = base;
  pf.machine.prefetch.l2_stream = false;
  EXPECT_NE(k, harness::RunCache::solo_key("Stream", pf))
      << "prefetch-mask change must miss";

  EXPECT_NE(k, harness::RunCache::solo_key("Bandit", base));
  EXPECT_NE(harness::RunCache::pair_key("Stream", "Bandit", base),
            harness::RunCache::pair_key("Bandit", "Stream", base))
      << "fg/bg are not symmetric";
}

void expect_identical(const harness::RunResult& a, const harness::RunResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.avg_bw_gbs, b.avg_bw_gbs);
  EXPECT_EQ(a.footprint_bytes, b.footprint_bytes);
  EXPECT_EQ(a.hit_cycle_limit, b.hit_cycle_limit);
  Snapshot sa, sb;
  append(sa, a.stats);
  append(sb, b.stats);
  EXPECT_EQ(sa, sb);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (std::size_t i = 0; i < a.regions.size(); ++i) {
    EXPECT_EQ(a.regions[i].region, b.regions[i].region);
    Snapshot ra, rb;
    append(ra, a.regions[i].stats);
    append(rb, b.regions[i].stats);
    EXPECT_EQ(ra, rb);
  }
}

TEST(RunCacheKey, HitReturnsIdenticalRunResult) {
  auto& cache = harness::RunCache::instance();
  // Park the disk layer (CI sets COPERF_RUN_CACHE_DIR): the hit/miss
  // accounting below must see exactly this process' simulations.
  const std::string saved_disk = cache.disk_dir();
  cache.set_disk_dir("");
  cache.clear();
  cache.reset_stats();
  const harness::RunOptions opt = cache_test_options();

  const harness::RunResult first = harness::run_solo("Stream", opt);
  const auto after_first = cache.stats();
  EXPECT_EQ(after_first.misses, 1u);
  EXPECT_EQ(after_first.hits, 0u);

  const harness::RunResult second = harness::run_solo("Stream", opt);
  const auto after_second = cache.stats();
  EXPECT_EQ(after_second.misses, 1u) << "second run must not re-simulate";
  EXPECT_EQ(after_second.hits, 1u);
  expect_identical(first, second);

  // A different seed is a different simulation.
  harness::RunOptions other = opt;
  other.seed = opt.seed + 1;
  (void)harness::run_solo("Stream", other);
  EXPECT_EQ(cache.stats().misses, 2u);
  cache.set_disk_dir(saved_disk);
}

TEST(RunCacheKey, DiskLayerRoundTripsAcrossMemoryClear) {
  auto& cache = harness::RunCache::instance();
  const auto dir =
      (std::filesystem::temp_directory_path() / "coperf_runcache_test")
          .string();
  cache.set_disk_dir(dir);
  cache.clear_disk();
  cache.clear();
  cache.reset_stats();
  const harness::RunOptions opt = cache_test_options();

  const harness::RunResult first = harness::run_solo("Bandit", opt);
  cache.clear();  // drop memory; the entry must come back from disk
  const harness::RunResult second = harness::run_solo("Bandit", opt);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  expect_identical(first, second);

  cache.clear_disk();
  cache.set_disk_dir("");
  cache.clear();
}

TEST(RunCacheKey, CorruptDiskEntryQuarantinesAndMisses) {
  auto& cache = harness::RunCache::instance();
  const auto dir =
      std::filesystem::temp_directory_path() / "coperf_runcache_corrupt_test";
  std::filesystem::remove_all(dir);
  cache.set_disk_dir(dir.string());
  cache.clear();
  cache.reset_stats();
  const harness::RunOptions opt = cache_test_options();
  const harness::RunResult first = harness::run_solo("Stream", opt);

  // Tear the entry the way a killed writer used to: header and key
  // intact, payload truncated mid-stream with a stale checksum.
  std::filesystem::path entry;
  for (const auto& e : std::filesystem::directory_iterator{dir})
    if (e.path().extension() == ".run") entry = e.path();
  ASSERT_FALSE(entry.empty());
  {
    std::ifstream in{entry};
    std::string header, key;
    ASSERT_TRUE(std::getline(in, header));
    ASSERT_TRUE(std::getline(in, key));
    in.close();
    std::ofstream out{entry, std::ios::trunc};
    out << header << '\n'
        << key << '\n'
        << "sum 0000000000000000\nmembers 1\n";
  }

  cache.clear();  // memory dropped: the torn disk entry is the only copy
  const harness::RunResult second = harness::run_solo("Stream", opt);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.corrupt, 1u) << "the torn entry must be flagged";
  EXPECT_EQ(stats.disk_hits, 0u) << "a torn entry must never be served";
  EXPECT_EQ(stats.misses, 2u) << "corrupt entries degrade to misses";
  expect_identical(first, second);

  bool quarantined = false, restored = false;
  for (const auto& e : std::filesystem::directory_iterator{dir}) {
    quarantined = quarantined || e.path().extension() == ".corrupt";
    restored = restored || e.path().extension() == ".run";
  }
  EXPECT_TRUE(quarantined) << "the bad bytes must be moved aside";
  EXPECT_TRUE(restored) << "the miss must republish a fresh entry";

  // The republished entry is healthy: the third run is a disk hit.
  cache.clear();
  (void)harness::run_solo("Stream", opt);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  EXPECT_EQ(cache.stats().corrupt, 1u);

  cache.clear_disk();
  std::filesystem::remove_all(dir);
  cache.set_disk_dir("");
  cache.clear();
}

// ---------------------------------------------------------------------
// Persistent worker pool (fast tier).

TEST(ParallelPool, RunsEveryIndexOnceAndReusesWorkers) {
  std::vector<std::atomic<int>> seen(501);
  harness::parallel_for(seen.size(), 4,
                        [&](std::size_t i) { seen[i].fetch_add(1); });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
  const unsigned after_first = harness::pool_size();
  EXPECT_GE(after_first, 3u) << "pool must hold persistent workers";

  std::atomic<std::size_t> sum{0};
  harness::parallel_for(1000, 4, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 1000u * 999u / 2);
  EXPECT_EQ(harness::pool_size(), after_first)
      << "second sweep must reuse the pool, not spawn a new one";
}

TEST(ParallelPool, ThrowMidPlanPropagatesFirstErrorAndPoolSurvives) {
  // Warm the pool so the failure exercises persistent workers.
  harness::parallel_for(64, 4, [](std::size_t) {});
  const unsigned workers_before = harness::pool_size();

  std::atomic<std::size_t> ran{0};
  try {
    harness::parallel_for(5000, 4, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i == 137) throw std::runtime_error{"trial 137 went sideways"};
      // Slow the healthy trials slightly so the failure flag is
      // guaranteed to land before the sweep could drain on its own.
      for (volatile int spin = 0; spin < 64; ++spin) {
      }
    });
    FAIL() << "the worker's exception must reach the caller";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "trial 137 went sideways");
  }
  EXPECT_LT(ran.load(), 5000u)
      << "a failed sweep must stop claiming work, not run to completion";

  // The pool must come back clean: same workers, full sweeps complete.
  std::atomic<std::size_t> sum{0};
  harness::parallel_for(2000, 4, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 2000u * 1999u / 2);
  EXPECT_EQ(harness::pool_size(), workers_before)
      << "a thrown trial must not wedge or regrow the pool";

  // Same contract under the static-chunk schedule.
  EXPECT_THROW(
      harness::parallel_for(
          512, 4, [](std::size_t i) {
            if (i == 300) throw std::logic_error{"chunk failure"};
          },
          harness::ParallelSchedule::StaticChunk),
      std::logic_error);
  std::atomic<std::size_t> again{0};
  harness::parallel_for(256, 4, [&](std::size_t) { again.fetch_add(1); },
                        harness::ParallelSchedule::StaticChunk);
  EXPECT_EQ(again.load(), 256u);
}

TEST(ParallelPool, StaticChunksCoverEveryIndex) {
  std::vector<std::atomic<int>> seen(97);
  harness::parallel_for(
      seen.size(), 4, [&](std::size_t i) { seen[i].fetch_add(1); },
      harness::ParallelSchedule::StaticChunk);
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ParallelPool, ExceptionPropagatesAndStopsTheSweep) {
  std::atomic<std::size_t> ran{0};
  EXPECT_THROW(
      harness::parallel_for(10'000, 4,
                            [&](std::size_t i) {
                              if (i == 3) throw std::runtime_error{"boom"};
                              ran.fetch_add(1);
                            }),
      std::runtime_error);
  EXPECT_LT(ran.load(), 10'000u) << "failed sweep must stop claiming work";
}

}  // namespace
}  // namespace coperf
