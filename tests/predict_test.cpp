// Tests for the interference-prediction subsystem: signature
// extraction, model save/load, predicted-matrix invariants, and the
// analytic model reproducing measured pair classes end to end.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/classify.hpp"
#include "harness/scheduler.hpp"
#include "predict/deconvolve.hpp"
#include "predict/eval.hpp"
#include "predict/model.hpp"
#include "predict/predicted_matrix.hpp"
#include "predict/signature.hpp"

namespace coperf::predict {
namespace {

harness::RunOptions tiny_opts() {
  harness::RunOptions o;
  o.machine = sim::MachineConfig::scaled();
  o.size = wl::SizeClass::Tiny;
  o.threads = 4;
  return o;
}

/// Hand-built signature for simulation-free unit tests.
WorkloadSignature synthetic(const std::string& name, double bw_fraction,
                            double l2_pcp, double llc_mpki, double l2_mpki,
                            double footprint_vs_llc, double prefetch_share) {
  WorkloadSignature s;
  s.workload = name;
  s.threads = 4;
  s.bw_fraction = bw_fraction;
  s.solo_bw_gbs = bw_fraction * 28.0;
  s.l2_pcp = l2_pcp;
  s.mem_stall_frac = l2_pcp * 0.9;
  s.llc_mpki = llc_mpki;
  s.l2_mpki = l2_mpki;
  s.cpi = 1.0 + l2_pcp;
  s.ipc = 1.0 / s.cpi;
  s.ll = 100.0;
  s.footprint_vs_llc = footprint_vs_llc;
  s.prefetch_share = prefetch_share;
  s.solo_cycles = 1'000'000;
  s.solo_seconds = 3.7e-4;
  return s;
}

std::vector<WorkloadSignature> synthetic_suite() {
  return {
      synthetic("stream-like", 0.95, 0.95, 50.0, 50.0, 2.5, 0.8),
      synthetic("llc-resident", 0.35, 0.6, 3.0, 120.0, 1.5, 0.7),
      synthetic("prefetch-stream", 0.8, 0.25, 0.5, 0.6, 3.0, 0.95),
      synthetic("compute", 0.02, 0.01, 0.05, 0.06, 0.05, 0.2),
      synthetic("conflict-gen", 0.45, 0.99, 200.0, 200.0, 3.0, 0.0),
      synthetic("moderate", 0.5, 0.4, 10.0, 30.0, 1.2, 0.6),
  };
}

TEST(Signature, ExtractionIsDeterministic) {
  const auto opt = tiny_opts();
  const auto a = WorkloadSignature::from(harness::run_solo("Stream", opt),
                                         opt.machine);
  const auto b = WorkloadSignature::from(harness::run_solo("Stream", opt),
                                         opt.machine);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.workload, "Stream");
  EXPECT_GT(a.bw_fraction, 0.5) << "Stream should be bandwidth-hungry";
  EXPECT_GT(a.solo_cycles, 0u);
}

TEST(Signature, FeatureVectorMatchesNames) {
  const auto s = synthetic("x", 0.5, 0.5, 10.0, 20.0, 1.0, 0.5);
  EXPECT_EQ(s.features().size(), WorkloadSignature::feature_names().size());
}

TEST(Signature, ScoresAreBounded) {
  for (const auto& s : synthetic_suite()) {
    EXPECT_GE(s.sensitivity(), 0.0);
    EXPECT_LE(s.sensitivity(), 1.0);
    EXPECT_GE(s.intensity(), 0.0);
    EXPECT_LE(s.intensity(), 1.5);
  }
  // A pure-compute workload must score near zero on both axes.
  const auto compute = synthetic("compute", 0.02, 0.01, 0.05, 0.06, 0.05, 0.2);
  EXPECT_LT(compute.sensitivity(), 0.1);
  EXPECT_LT(compute.intensity(), 0.1);
}

TEST(Signature, SaveLoadRoundTrip) {
  const auto sigs = synthetic_suite();
  std::stringstream ss;
  save_signatures(ss, sigs);
  const auto loaded = load_signatures(ss);
  ASSERT_EQ(loaded.size(), sigs.size());
  for (std::size_t i = 0; i < sigs.size(); ++i) EXPECT_EQ(loaded[i], sigs[i]);
}

TEST(Signature, LoadRejectsBadHeader) {
  std::stringstream ss{"not-a-signature-file\n"};
  EXPECT_THROW(load_signatures(ss), std::runtime_error);
}

TEST(Model, BandwidthSaveLoadRoundTrip) {
  BandwidthContentionModel::Params p;
  p.saturation = 0.9;
  p.asymmetry_coeff = 1.25;
  p.queue_coeff = 0.5;
  p.capacity_coeff = 2.0;
  const BandwidthContentionModel m{p};
  std::stringstream ss;
  m.save(ss);
  BandwidthContentionModel loaded;
  loaded.load(ss);
  EXPECT_EQ(loaded.params(), p);
}

TEST(Model, TrainedModelsSurviveSaveLoad) {
  const auto sigs = synthetic_suite();
  harness::CorunMatrix fake;
  for (const auto& s : sigs) {
    fake.workloads.push_back(s.workload);
    fake.solo_cycles.push_back(s.solo_cycles);
  }
  const BandwidthContentionModel teacher;
  fake.normalized.assign(sigs.size(), std::vector<double>(sigs.size(), 1.0));
  for (std::size_t i = 0; i < sigs.size(); ++i)
    for (std::size_t j = 0; j < sigs.size(); ++j)
      fake.normalized[i][j] = teacher.predict(sigs[i], sigs[j]);
  const auto pairs = training_pairs(fake, sigs);

  KnnModel knn{3};
  knn.train(pairs);
  LeastSquaresModel lstsq;
  lstsq.train(pairs);

  for (InterferenceModel* m : {static_cast<InterferenceModel*>(&knn),
                               static_cast<InterferenceModel*>(&lstsq)}) {
    std::stringstream ss;
    m->save(ss);
    const auto loaded = load_model(ss);
    EXPECT_EQ(loaded->name(), m->name());
    for (std::size_t i = 0; i < sigs.size(); ++i)
      for (std::size_t j = 0; j < sigs.size(); ++j)
        EXPECT_DOUBLE_EQ(loaded->predict(sigs[i], sigs[j]),
                         m->predict(sigs[i], sigs[j]))
            << m->name() << " changed after save/load";
  }
}

TEST(Model, AnalyticPredictionIsMonotoneInBackgroundDemand) {
  // A louder background must never predict a smaller slowdown --
  // especially across the saturation knee, where the scheduler depends
  // on the pair ordering.
  const BandwidthContentionModel model;
  const auto fg = synthetic("victim", 0.5, 0.3, 3.0, 6.0, 1.0, 0.5);
  double prev = 0.0;
  for (double bb = 0.0; bb <= 1.2; bb += 0.01) {
    auto bg = synthetic("offender", bb, 0.5, 10.0, 10.0, 2.0, 0.8);
    const double s = model.predict(fg, bg);
    EXPECT_GE(s, prev - 1e-12) << "slowdown dropped at bg bw_fraction " << bb;
    prev = s;
  }
}

TEST(Model, LoadRejectsForeignFeatureDimension) {
  // A file whose stored dimension disagrees with this build's
  // pair_features() must be rejected at load, not crash at predict.
  std::stringstream knn{"coperf-model knn v1\n3 5 1\n0 0 0 0 0\n1 1 1 1 1\n"
                        "0 0 0 0 0 1.5\n"};
  EXPECT_THROW(KnnModel{}.load(knn), std::runtime_error);
  std::stringstream lstsq{"coperf-model lstsq v1\n0.001 4\n1 0 0 0\n"};
  EXPECT_THROW(LeastSquaresModel{}.load(lstsq), std::runtime_error);
}

TEST(Model, FactoryKnowsAllModels) {
  EXPECT_EQ(make_model("bandwidth")->name(), "bandwidth");
  EXPECT_EQ(make_model("knn")->name(), "knn");
  EXPECT_EQ(make_model("lstsq")->name(), "lstsq");
  EXPECT_THROW(make_model("oracle"), std::invalid_argument);
}

TEST(Model, UntrainedPredictThrows) {
  const auto s = synthetic("x", 0.5, 0.5, 10.0, 20.0, 1.0, 0.5);
  EXPECT_THROW(KnnModel{}.predict(s, s), std::logic_error);
  EXPECT_THROW(LeastSquaresModel{}.predict(s, s), std::logic_error);
  EXPECT_THROW(KnnModel{}.train({}), std::invalid_argument);
}

TEST(Model, LeastSquaresRecoversLinearTarget) {
  // Slowdown defined as an exact linear function of the pair features
  // must be recovered (near-)exactly by the ridge solve.
  const auto sigs = synthetic_suite();
  std::vector<TrainingPair> pairs;
  for (const auto& fg : sigs)
    for (const auto& bg : sigs) {
      const auto x = pair_features(fg, bg);
      pairs.push_back({fg, bg, 1.0 + 0.5 * x[0] + 0.25 * x[3]});
    }
  LeastSquaresModel m{1e-9};
  m.train(pairs);
  for (const auto& p : pairs)
    EXPECT_NEAR(m.predict(p.fg, p.bg), p.slowdown, 1e-6);
}

TEST(Model, KnnObserveAppendsExemplar) {
  const auto sigs = synthetic_suite();
  // Train on every pair except (0, 1), all harmonious.
  std::vector<TrainingPair> pairs;
  for (std::size_t i = 0; i < sigs.size(); ++i)
    for (std::size_t j = 0; j < sigs.size(); ++j)
      if (!(i == 0 && j == 1)) pairs.push_back({sigs[i], sigs[j], 1.2});
  KnnModel m{1};
  m.train(pairs);
  const std::size_t before = m.training_size();
  EXPECT_NEAR(m.predict(sigs[0], sigs[1]), 1.2, 1e-9);
  // Observing the true slowdown at the held-out point must pull k=1
  // prediction there exactly: the new exemplar is its own (unique)
  // nearest neighbour.
  m.observe({sigs[0], sigs[1], 2.5});
  EXPECT_EQ(m.training_size(), before + 1);
  EXPECT_NEAR(m.predict(sigs[0], sigs[1]), 2.5, 1e-9);
}

TEST(Model, KnnObserveWorksOnColdModel) {
  const auto sigs = synthetic_suite();
  KnnModel m{3};
  m.observe({sigs[0], sigs[1], 1.7});
  EXPECT_EQ(m.training_size(), 1u);
  EXPECT_NEAR(m.predict(sigs[0], sigs[1]), 1.7, 1e-9);
}

TEST(Model, RlsObserveMatchesBatchRetrain) {
  // Recursive least squares is algebraically exact: training on N
  // pairs and observing one more must equal training on all N+1 (same
  // ridge prior). This is the property that makes online refinement
  // trustworthy -- no drift relative to the batch solve.
  const auto sigs = synthetic_suite();
  const BandwidthContentionModel teacher;
  std::vector<TrainingPair> pairs;
  for (const auto& fg : sigs)
    for (const auto& bg : sigs)
      pairs.push_back({fg, bg, teacher.predict(fg, bg)});
  const TrainingPair extra{sigs[2], sigs[4], 1.9};

  LeastSquaresModel online;
  online.train(pairs);
  online.observe(extra);

  std::vector<TrainingPair> all = pairs;
  all.push_back(extra);
  LeastSquaresModel batch;
  batch.train(all);

  ASSERT_EQ(online.weights().size(), batch.weights().size());
  for (const auto& fg : sigs)
    for (const auto& bg : sigs)
      EXPECT_NEAR(online.predict(fg, bg), batch.predict(fg, bg), 1e-6)
          << "RLS diverged from the batch solve";
}

TEST(Model, RlsObserveWorksOnColdModel) {
  // A never-trained model starts from the diffuse ridge prior; a few
  // repeats of the same observation must pull the prediction to it.
  const auto sigs = synthetic_suite();
  LeastSquaresModel m;
  for (int i = 0; i < 50; ++i) m.observe({sigs[1], sigs[3], 1.8});
  EXPECT_NEAR(m.predict(sigs[1], sigs[3]), 1.8, 0.05);
}

TEST(Model, OnlineUpdatedStateSurvivesSaveLoad) {
  const auto sigs = synthetic_suite();
  const BandwidthContentionModel teacher;
  std::vector<TrainingPair> pairs;
  for (const auto& fg : sigs)
    for (const auto& bg : sigs)
      pairs.push_back({fg, bg, teacher.predict(fg, bg)});

  KnnModel knn{3};
  knn.train(pairs);
  LeastSquaresModel lstsq;
  lstsq.train(pairs);
  for (InterferenceModel* m : {static_cast<InterferenceModel*>(&knn),
                               static_cast<InterferenceModel*>(&lstsq)}) {
    m->observe({sigs[0], sigs[5], 2.2});
    std::stringstream ss;
    m->save(ss);
    const auto loaded = load_model(ss);
    // Round trip preserves the refined predictions...
    for (const auto& fg : sigs)
      for (const auto& bg : sigs)
        EXPECT_DOUBLE_EQ(loaded->predict(fg, bg), m->predict(fg, bg))
            << m->name() << " changed after online-update save/load";
    // ...and the update *state*: continuing to observe on the original
    // and the reloaded copy must stay in lockstep (for lstsq this is
    // the RLS covariance doing its job, not just the weights).
    const TrainingPair next{sigs[1], sigs[2], 1.6};
    m->observe(next);
    loaded->observe(next);
    EXPECT_DOUBLE_EQ(loaded->predict(sigs[1], sigs[2]),
                     m->predict(sigs[1], sigs[2]))
        << m->name() << " update state diverged after save/load";
  }
}

TEST(Model, LstsqLoadsLegacyV1Files) {
  // A v1 file carries weights only. It must load, predict exactly, and
  // accept observe() afterwards (covariance restarts from the prior).
  const std::size_t dim = pair_feature_count() + 1;
  std::ostringstream file;
  file << "coperf-model lstsq v1\n" << 0.001 << ' ' << dim << '\n';
  file << 1.0 << ' ';
  for (std::size_t i = 1; i < dim; ++i) file << 0.25 << ' ';
  file << '\n';
  std::istringstream in{file.str()};
  LeastSquaresModel m;
  m.load(in);
  const auto sigs = synthetic_suite();
  const auto x = pair_features(sigs[0], sigs[1]);
  double want = 1.0;
  for (double f : x) want += 0.25 * f;
  EXPECT_NEAR(m.predict(sigs[0], sigs[1]), want, 1e-12);
  m.observe({sigs[0], sigs[1], 1.4});  // must not throw
}

TEST(Model, LoadRejectsMalformedBodies) {
  // Truncated kNN body: header promises 2 rows, file has 1.
  {
    KnnModel seed{2};
    seed.observe({synthetic_suite()[0], synthetic_suite()[1], 1.5});
    seed.observe({synthetic_suite()[2], synthetic_suite()[3], 1.2});
    std::stringstream ss;
    seed.save(ss);
    std::string text = ss.str();
    text.erase(text.rfind('\n', text.size() - 2) + 1);  // drop last row
    std::istringstream in{text};
    EXPECT_THROW(KnnModel{}.load(in), std::runtime_error);
  }
  // lstsq v2 that promises a covariance but does not deliver one.
  {
    const std::size_t dim = pair_feature_count() + 1;
    std::ostringstream file;
    file << "coperf-model lstsq v2\n" << 0.001 << ' ' << dim << " 1\n";
    for (std::size_t i = 0; i < dim; ++i) file << 1.0 << ' ';
    file << '\n';
    std::istringstream in{file.str()};
    EXPECT_THROW(LeastSquaresModel{}.load(in), std::runtime_error);
  }
  // Wrong family tag routed to the wrong loader.
  {
    std::istringstream in{"coperf-model knn v1\n3 11 1\n"};
    EXPECT_THROW(LeastSquaresModel{}.load(in), std::runtime_error);
  }
  // Garbage where numbers should be.
  {
    std::istringstream in{"coperf-model bandwidth v1\nnot numbers at all\n"};
    EXPECT_THROW(BandwidthContentionModel{}.load(in), std::runtime_error);
  }
}

TEST(PredictedMatrix, ShapeAndNormalizationInvariants) {
  const auto sigs = synthetic_suite();
  const BandwidthContentionModel model;
  const harness::CorunMatrix m = predicted_matrix(sigs, model);
  ASSERT_EQ(m.size(), sigs.size());
  for (std::size_t i = 0; i < sigs.size(); ++i) {
    EXPECT_EQ(m.workloads[i], sigs[i].workload);
    EXPECT_EQ(m.solo_cycles[i], sigs[i].solo_cycles);
    ASSERT_EQ(m.normalized[i].size(), sigs.size());
    for (std::size_t j = 0; j < sigs.size(); ++j)
      EXPECT_GE(m.at(i, j), 1.0) << "a co-runner cannot speed up the fg";
  }
  // Diagonal: self co-run of a bandwidth hog must not be harmonious.
  EXPECT_GT(m.at(0, 0), harness::kVictimThreshold);
  EXPECT_THROW(predicted_matrix({}, model), std::invalid_argument);
}

TEST(PredictedMatrix, FeedsExistingConsumersUnchanged) {
  const auto sigs = synthetic_suite();
  const BandwidthContentionModel model;
  const harness::CorunMatrix m = predicted_matrix(sigs, model);
  // classify / count_classes / scheduler all operate on the predicted
  // matrix exactly as on a measured one.
  const auto counts = m.count_classes();
  EXPECT_EQ(counts.harmony + counts.victim_offender + counts.both_victim,
            sigs.size() * (sigs.size() + 1) / 2);
  std::vector<std::size_t> jobs(sigs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) jobs[i] = i;
  const auto study = harness::scheduling_study(m, jobs);
  EXPECT_EQ(study.greedy.pairs.size(), jobs.size() / 2);
  EXPECT_GE(study.improvement, 1.0);
  // The greedy plan must beat pairing the two loudest workloads
  // together, which is what the adversarial baseline does.
  EXPECT_LE(study.greedy.total_cost, study.worst.total_cost);
}

TEST(PredictedMatrix, TrainingPairsValidatesAxes) {
  const auto sigs = synthetic_suite();
  harness::CorunMatrix m;
  m.workloads = {"a", "b"};
  m.normalized = {{1.0, 1.0}, {1.0, 1.0}};
  m.solo_cycles = {1, 1};
  EXPECT_THROW(training_pairs(m, sigs), std::invalid_argument);
}

TEST(Eval, PerfectPredictionScoresPerfectly) {
  const auto sigs = synthetic_suite();
  const BandwidthContentionModel model;
  const harness::CorunMatrix m = predicted_matrix(sigs, model);
  const EvalResult e = evaluate(m, m);
  EXPECT_DOUBLE_EQ(e.mae, 0.0);
  EXPECT_DOUBLE_EQ(e.rmse, 0.0);
  EXPECT_NEAR(e.spearman, 1.0, 1e-9);
  EXPECT_EQ(e.confusion.agree(), e.confusion.total());
  EXPECT_DOUBLE_EQ(e.confusion.agreement(), 1.0);
  EXPECT_FALSE(e.summary().empty());
}

TEST(Eval, LeaveOneOutPredictsHeldOutRows) {
  const auto sigs = synthetic_suite();
  // Ground truth generated by the analytic model: the data-driven
  // models must recover it from held-out training alone.
  const BandwidthContentionModel teacher;
  const harness::CorunMatrix truth = predicted_matrix(sigs, teacher);
  const EvalResult knn = leave_one_out(
      truth, sigs, [] { return std::make_unique<KnnModel>(3); });
  EXPECT_GT(knn.spearman, 0.5);
  const EvalResult lstsq = leave_one_out(
      truth, sigs, [] { return std::make_unique<LeastSquaresModel>(); });
  EXPECT_GT(lstsq.spearman, 0.7);
  EXPECT_LT(lstsq.mae, 0.25);
  EXPECT_THROW(
      leave_one_out(truth, {sigs[0]},
                    [] { return std::make_unique<KnnModel>(); }),
      std::invalid_argument);
}

// ---------------------------------------------------------------------
// Group-aware path: predict_group, observe_group, deconvolution.

/// A known additive pairwise truth over 4 synthetic types.
harness::CorunMatrix additive_truth4() {
  harness::CorunMatrix m;
  m.workloads = {"hog", "victim", "neutral", "medium"};
  m.solo_cycles = {1, 1, 1, 1};
  m.normalized = {
      {1.60, 1.10, 1.05, 1.20},
      {2.20, 1.05, 1.02, 1.40},
      {1.05, 1.01, 1.00, 1.02},
      {1.50, 1.10, 1.03, 1.25},
  };
  return m;
}

/// Every 3-resident multiset observation synthesized additively from
/// the matrix (each member foreground once, duplicates included so the
/// diagonal is constrained too).
std::vector<harness::GroupObservation> additive_observations(
    const harness::CorunMatrix& m) {
  std::vector<harness::GroupObservation> obs;
  const std::size_t n = m.size();
  for (std::size_t a = 0; a < n; ++a)
    for (std::size_t b = a; b < n; ++b)
      for (std::size_t c = b; c < n; ++c) {
        const std::vector<std::size_t> group = {a, b, c};
        for (std::size_t i = 0; i < group.size(); ++i) {
          harness::GroupObservation o;
          o.type = group[i];
          for (std::size_t j = 0; j < group.size(); ++j)
            if (j != i) o.others.push_back(group[j]);
          o.slowdown = harness::corun_slowdown(m, o.type, o.others);
          obs.push_back(std::move(o));
        }
      }
  return obs;
}

TEST(Deconvolve, RecoversPairwiseEntriesFromGroupObservations) {
  const harness::CorunMatrix truth = additive_truth4();
  const harness::CorunMatrix recovered =
      deconvolve_pairwise(truth.workloads, additive_observations(truth));
  ASSERT_EQ(recovered.size(), truth.size());
  for (std::size_t fg = 0; fg < truth.size(); ++fg)
    for (std::size_t bg = 0; bg < truth.size(); ++bg)
      EXPECT_NEAR(recovered.at(fg, bg), truth.at(fg, bg), 1e-2)
          << "pairwise entry (" << fg << "," << bg
          << ") not recovered from 3-resident observations";
}

TEST(Deconvolve, TracksSupportAndValidatesInput) {
  PairDeconvolver d{3};
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.observations(), 0u);
  EXPECT_EQ(d.support(0, 1), 0u);
  EXPECT_DOUBLE_EQ(d.entry(0, 1), 1.0) << "the prior is harmony";

  d.observe(0, {1, 2}, 1.5);
  EXPECT_EQ(d.observations(), 1u);
  EXPECT_EQ(d.support(0, 1), 1u);
  EXPECT_EQ(d.support(0, 2), 1u);
  EXPECT_EQ(d.support(1, 0), 0u) << "support is per foreground row";
  // One equation x01 + x02 = 0.5: least-norm splits the excess.
  EXPECT_GT(d.entry(0, 1), 1.0);

  EXPECT_THROW(d.observe(9, {0}, 1.1), std::out_of_range);
  EXPECT_THROW(d.observe(0, {9}, 1.1), std::out_of_range);
  EXPECT_THROW(d.observe(0, {}, 1.1), std::invalid_argument);
  EXPECT_THROW((void)d.entry(3, 0), std::out_of_range);
  EXPECT_THROW(PairDeconvolver(0), std::invalid_argument);
  EXPECT_THROW(PairDeconvolver(2, 0.0), std::invalid_argument);
}

TEST(Deconvolve, SeededPriorIsAdjustedNotReplaced) {
  const harness::CorunMatrix truth = additive_truth4();
  PairDeconvolver d{truth.size()};
  d.seed_prior(truth);
  for (std::size_t fg = 0; fg < truth.size(); ++fg)
    for (std::size_t bg = 0; bg < truth.size(); ++bg)
      EXPECT_DOUBLE_EQ(d.entry(fg, bg), truth.at(fg, bg));

  // One equation consistent with the prior must not degrade any cell:
  // the RLS innovation is ~0, so the estimate stays at the truth
  // instead of snapping to a least-norm split of the excess.
  const double consistent = harness::corun_slowdown(truth, 1, {0, 3});
  d.observe(1, {0, 3}, consistent);
  for (std::size_t bg = 0; bg < truth.size(); ++bg)
    EXPECT_NEAR(d.entry(1, bg), truth.at(1, bg), 1e-9)
        << "a consistent observation must leave the calibrated prior alone";

  EXPECT_THROW(d.seed_prior(truth), std::logic_error)
      << "prior after observations would silently discard evidence";
  PairDeconvolver fresh{2};
  EXPECT_THROW(fresh.seed_prior(truth), std::invalid_argument);
}

TEST(Model, PredictGroupDefaultsToAdditiveComposition) {
  const auto sigs = synthetic_suite();
  const BandwidthContentionModel model;
  const double p1 = model.predict(sigs[0], sigs[1]);
  const double p2 = model.predict(sigs[0], sigs[2]);
  EXPECT_DOUBLE_EQ(model.predict_group(sigs[0], {sigs[1]}), std::max(1.0, p1));
  EXPECT_DOUBLE_EQ(model.predict_group(sigs[0], {sigs[1], sigs[2]}),
                   std::max(1.0, 1.0 + (p1 - 1.0) + (p2 - 1.0)));
  EXPECT_DOUBLE_EQ(model.predict_group(sigs[0], {}), 1.0);
}

TEST(Model, ObserveGroupFoldsExactPairsAndIgnoresLargerGroups) {
  const auto sigs = synthetic_suite();
  LeastSquaresModel via_pair, via_group, untouched;
  via_pair.observe({sigs[0], sigs[1], 1.7});
  via_group.observe_group({sigs[0], {sigs[1]}, 1.7});
  EXPECT_EQ(via_pair.weights(), via_group.weights())
      << "a 2-resident group observation is exactly one pair sample";
  untouched.observe_group({sigs[0], {sigs[1], sigs[2]}, 1.9});
  EXPECT_TRUE(untouched.weights().empty())
      << "3+-resident samples are deconvolution's job, not raw observe()";
}

TEST(Deconvolve, TrainingPairsFromGroupsFeedTrainableModels) {
  const harness::CorunMatrix truth = additive_truth4();
  // Signature-keyed groups: representatives per axis name.
  std::vector<WorkloadSignature> sigs;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    auto s = synthetic_suite()[i];
    s.workload = truth.workloads[i];
    sigs.push_back(std::move(s));
  }
  std::vector<TrainingGroup> groups;
  for (const auto& o : additive_observations(truth)) {
    TrainingGroup g;
    g.fg = sigs[o.type];
    for (const std::size_t t : o.others) g.others.push_back(sigs[t]);
    g.slowdown = o.slowdown;
    groups.push_back(std::move(g));
  }
  const auto pairs = training_pairs_from_groups(groups);
  ASSERT_EQ(pairs.size(), truth.size() * truth.size())
      << "every co-residency has support in the full 3-way sweep";
  for (const TrainingPair& p : pairs) {
    std::size_t fg = truth.size(), bg = truth.size();
    for (std::size_t i = 0; i < truth.size(); ++i) {
      if (truth.workloads[i] == p.fg.workload) fg = i;
      if (truth.workloads[i] == p.bg.workload) bg = i;
    }
    ASSERT_LT(fg, truth.size());
    ASSERT_LT(bg, truth.size());
    EXPECT_NEAR(p.slowdown, truth.at(fg, bg), 1e-2);
  }
  EXPECT_TRUE(training_pairs_from_groups({}).empty());
}

TEST(Eval, EvaluateGroupsScoresModelAndAdditiveBaseline) {
  const harness::CorunMatrix pairs = additive_truth4();
  std::vector<WorkloadSignature> sigs;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    auto s = synthetic_suite()[i];
    s.workload = pairs.workloads[i];
    sigs.push_back(std::move(s));
  }
  // Measured truth IS the additive composition here, so the additive
  // baseline scores perfectly while the analytic model does not.
  const auto obs = additive_observations(pairs);
  const BandwidthContentionModel model;
  const GroupEval e = evaluate_groups(obs, sigs, pairs, model);
  EXPECT_EQ(e.observations, obs.size());
  EXPECT_NEAR(e.additive_mae, 0.0, 1e-12);
  EXPECT_NEAR(e.max_additive_gap, 0.0, 1e-12);
  EXPECT_GE(e.model_mae, 0.0);

  // A non-additive measured truth shows up as a positive additive gap.
  auto skewed = obs;
  skewed.front().slowdown += 1.0;
  const GroupEval g = evaluate_groups(skewed, sigs, pairs, model);
  EXPECT_GT(g.additive_mae, 0.0);
  EXPECT_NEAR(g.max_additive_gap, 1.0, 1e-12);

  harness::CorunMatrix wrong_axis = pairs;
  wrong_axis.workloads.pop_back();
  EXPECT_THROW(evaluate_groups(obs, sigs, wrong_axis, model),
               std::invalid_argument);
}

// The acceptance-criteria path: solo signatures -> analytic prediction
// reproduces the measured Tiny-size pair class for Stream against the
// cache-light workloads, without ever measuring a co-run.
TEST(Integration, AnalyticModelReproducesMeasuredPairClass) {
  const auto opt = tiny_opts();
  const std::vector<std::string> workloads = {"Stream", "Bandit",
                                              "blackscholes"};
  const auto sigs = collect_signatures(workloads, opt, /*reps=*/1);
  const BandwidthContentionModel model;
  const harness::CorunMatrix predicted = predicted_matrix(sigs, model);

  const auto measured_class = [&](std::size_t i, std::size_t j) {
    const auto ij = harness::run_pair(workloads[i], workloads[j], opt);
    const auto ji = harness::run_pair(workloads[j], workloads[i], opt);
    const double si = static_cast<double>(ij.fg.cycles) /
                      static_cast<double>(sigs[i].solo_cycles);
    const double sj = static_cast<double>(ji.fg.cycles) /
                      static_cast<double>(sigs[j].solo_cycles);
    return harness::classify_pair(si, sj);
  };

  // Stream vs Bandit: the conflict-miss generator is the victim of the
  // bandwidth hog (paper Fig. 6), and Stream vs the cache-light
  // blackscholes is harmonious.
  EXPECT_EQ(predicted.pair_class(0, 1), measured_class(0, 1));
  EXPECT_EQ(predicted.pair_class(0, 2), measured_class(0, 2));
  EXPECT_EQ(predicted.pair_class(0, 2), harness::PairClass::Harmony);
}

}  // namespace
}  // namespace coperf::predict
