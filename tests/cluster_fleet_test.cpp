// Fleet-engine tests: the indexed event loop (simulate) pinned against
// the reference scan loop (simulate_reference) -- byte-identical audit
// logs, matching regret -- plus the fleet trace generators, priority
// classes, regret sampling, and the audit-log job-id regression.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <sstream>

#include "cluster/cluster.hpp"
#include "cluster_fixtures.hpp"
#include "harness/grouptruth.hpp"
#include "harness/matrix.hpp"

namespace coperf::cluster {
namespace {

// --- engine equivalence ---------------------------------------------

// The tentpole guard: the indexed engine must reproduce the reference
// loop's audit log byte for byte and its regret, across policy
// families, on the additive synthetic truth.
TEST(FleetEquivalence, MatchesReferenceOnSyntheticTruth) {
  const auto truth = synthetic_truth();
  const auto sigs = synthetic_sigs();
  TraceOptions topt;
  topt.jobs = 500;
  topt.seed = 11;
  topt.mean_interarrival = 0.9;  // deep queueing: waiting lanes exercised
  const auto trace = synthetic_trace(truth.size(), topt);
  const ClusterConfig cfg{3, 2};

  for (int which = 0; which < 3; ++which) {
    const auto make_run = [&](auto&& run) {
      switch (which) {
        case 0: {
          RandomPolicy p{7};
          return run(p);
        }
        case 1: {
          CostModelPolicy p{"oracle", truth};
          return run(p);
        }
        default: {
          OnlineRefinedPolicy p{"online", distilled_model(truth, sigs), sigs};
          return run(p);
        }
      }
    };
    const ClusterResult ref = make_run([&](PlacementPolicy& p) {
      return simulate_reference(cfg, truth, trace, p);
    });
    const ClusterResult fleet = make_run(
        [&](PlacementPolicy& p) { return simulate(cfg, truth, trace, p); });
    EXPECT_EQ(ref.log.str(truth.workloads), fleet.log.str(truth.workloads))
        << "policy family " << which << " diverged from the reference loop";
    EXPECT_NEAR(ref.mean_decision_regret, fleet.mean_decision_regret, 1e-9);
    EXPECT_NEAR(ref.mean_stretch, fleet.mean_stretch, 1e-9);
    EXPECT_NEAR(ref.mean_corun_slowdown, fleet.mean_corun_slowdown, 1e-9);
    EXPECT_NEAR(ref.makespan, fleet.makespan, 1e-9);
    EXPECT_EQ(ref.billed_decisions, fleet.billed_decisions);
  }
}

// Same pin on a non-additive truth (measured 3-resident regime
// change), where slowdowns depend on the full resident multiset.
// Fallback counts are NOT compared: the indexed engine re-queries the
// oracle only when a resident set changes, the reference re-queries at
// every global event, so the counts legitimately differ.
TEST(FleetEquivalence, MatchesReferenceOnRegimeChangeTruth) {
  TraceOptions topt;
  topt.jobs = 400;
  topt.seed = 23;
  topt.mean_interarrival = 0.7;
  const auto trace = synthetic_trace(3, topt);
  const ClusterConfig cfg{2, 3};  // 3 slots: the 4.0x regime is reachable
  const auto workloads = RegimeChangeTruth::regime_matrix().workloads;

  RegimeChangeTruth truth_ref, truth_fleet;
  GroupTruthPolicy p_ref{"group-oracle", truth_ref};
  GroupTruthPolicy p_fleet{"group-oracle", truth_fleet};
  const auto ref = simulate_reference(cfg, truth_ref, trace, p_ref);
  const auto fleet = simulate(cfg, truth_fleet, trace, p_fleet);
  EXPECT_EQ(ref.log.str(workloads), fleet.log.str(workloads));
  EXPECT_NEAR(ref.mean_decision_regret, fleet.mean_decision_regret, 1e-9);
  EXPECT_NEAR(ref.mean_stretch, fleet.mean_stretch, 1e-9);
  EXPECT_EQ(ref.billed_decisions, fleet.billed_decisions);
}

// --- audit-log job identity (the bugfix) ----------------------------

// Regression: Place and Finish events used to log the job's *trace
// index* instead of JobSpec::id, so any trace with non-identity ids
// produced an audit log whose Arrive lines disagreed with its
// Place/Finish lines about which job was which.
TEST(FleetAuditLog, PlaceAndFinishLogJobIdsNotTraceIndices) {
  const auto truth = synthetic_truth();
  TraceOptions topt;
  topt.jobs = 120;
  topt.seed = 9;
  auto trace = synthetic_trace(truth.size(), topt);
  for (std::size_t i = 0; i < trace.size(); ++i)
    trace[i].id = 1000 + 3 * i;  // non-identity, disjoint from indices

  for (int engine = 0; engine < 2; ++engine) {
    CostModelPolicy policy{"oracle", truth};
    const auto res = engine == 0
                         ? simulate_reference({2, 2}, truth, trace, policy)
                         : simulate({2, 2}, truth, trace, policy);
    // Every event must carry a JobSpec::id, and each job's Arrive,
    // Place, and Finish must agree on it (exactly one of each).
    std::map<std::size_t, std::array<int, 3>> kinds;
    for (const TraceEvent& e : res.log.events) {
      EXPECT_GE(e.job, 1000u) << "event logged a trace index, not an id";
      ++kinds[e.job][static_cast<int>(e.kind)];
    }
    EXPECT_EQ(kinds.size(), trace.size());
    for (const auto& [id, counts] : kinds) {
      EXPECT_EQ(counts[0], 1) << "job " << id;
      EXPECT_EQ(counts[1], 1) << "job " << id;
      EXPECT_EQ(counts[2], 1) << "job " << id;
    }
    ASSERT_EQ(res.outcomes.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
      EXPECT_EQ(res.outcomes[i].job, trace[i].id)
          << "outcome " << i << " lost its job identity";
  }
}

// --- floating-point discipline over long traces ---------------------

// The completion path clamps remaining work at zero per interval, so
// even a long, deeply-queued run never yields a stretch or co-run
// slowdown below 1: negative-residue drift would show up here.
TEST(FleetNumerics, LongTraceStretchStaysAboveOneAndReplays) {
  const auto truth = synthetic_truth();
  TraceOptions topt;
  topt.jobs = 20'000;
  topt.seed = 31;
  topt.mean_interarrival = 0.35;  // ~2.3x oversubscribed on 4 slots
  const auto trace = synthetic_trace(truth.size(), topt);
  const ClusterConfig cfg{2, 2};

  const auto run = [&] {
    CostModelPolicy policy{"oracle", truth};
    return simulate(cfg, truth, trace, policy);
  };
  const auto res = run();
  for (const JobOutcome& o : res.outcomes) {
    ASSERT_GE(o.stretch(), 1.0 - 1e-9) << "job " << o.job;
    ASSERT_GE(o.corun_slowdown(), 1.0 - 1e-9) << "job " << o.job;
  }
  EXPECT_GE(res.mean_stretch, 1.0 - 1e-9);
  // Deterministic replay: same inputs, byte-identical audit log.
  EXPECT_EQ(res.log.str(truth.workloads), run().log.str(truth.workloads));
}

// --- regret sampling ------------------------------------------------

// Billing is observational: sampling it must not perturb the
// simulation itself, only how many decisions are priced.
TEST(FleetRegret, SamplingChangesBillingNotDynamics) {
  const auto truth = synthetic_truth();
  TraceOptions topt;
  topt.jobs = 300;
  topt.seed = 13;
  const auto trace = synthetic_trace(truth.size(), topt);

  const auto run = [&](std::size_t sample) {
    ClusterConfig cfg{3, 2};
    cfg.regret_sample = sample;
    CostModelPolicy policy{"oracle", truth};
    return simulate(cfg, truth, trace, policy);
  };
  const auto every = run(1);
  const auto tenth = run(10);
  const auto never = run(0);
  EXPECT_EQ(every.billed_decisions, trace.size());
  EXPECT_EQ(tenth.billed_decisions, (trace.size() + 9) / 10);
  EXPECT_EQ(never.billed_decisions, 0u);
  EXPECT_DOUBLE_EQ(never.mean_decision_regret, 0.0);
  // The oracle's regret is 0 at any sampling rate.
  EXPECT_NEAR(every.mean_decision_regret, 0.0, 1e-12);
  EXPECT_NEAR(tenth.mean_decision_regret, 0.0, 1e-12);
  // Identical dynamics regardless of billing.
  EXPECT_EQ(every.log.str(truth.workloads), tenth.log.str(truth.workloads));
  EXPECT_EQ(every.log.str(truth.workloads), never.log.str(truth.workloads));
}

// --- priority classes -----------------------------------------------

TEST(FleetPriority, HigherClassLeavesTheQueueFirst) {
  harness::CorunMatrix truth;
  truth.workloads = {"unit"};
  truth.solo_cycles = {1};
  truth.normalized = {{1.0}};
  // One 2-slot machine, full until t=4; a best-effort job arrives at
  // t=1, a priority-3 job at t=2. The freed slot at t=4 must go to the
  // later, higher-class arrival.
  const std::vector<JobSpec> trace = {{0, 0, 0.0, 4.0, 0},
                                      {1, 0, 0.0, 8.0, 0},
                                      {2, 0, 1.0, 1.0, 0},
                                      {3, 0, 2.0, 1.0, 3}};
  CostModelPolicy policy{"oracle", truth};
  const auto res = simulate({1, 2}, truth, trace, policy);
  EXPECT_DOUBLE_EQ(res.outcomes[3].start, 4.0) << "priority job first";
  EXPECT_DOUBLE_EQ(res.outcomes[2].start, 5.0) << "best-effort job after";

  // All-zero priorities are plain FIFO -- and the reference loop only
  // accepts those.
  CostModelPolicy ref_policy{"oracle", truth};
  EXPECT_THROW(simulate_reference({1, 2}, truth, trace, ref_policy),
               std::invalid_argument);
  const std::vector<JobSpec> bad = {{0, 0, 0.0, 1.0, kMaxPriority + 1}};
  EXPECT_THROW(simulate({1, 2}, truth, bad, policy), std::invalid_argument);
}

// --- fleet trace generators -----------------------------------------

TEST(FleetTrace, GeneratorsAreDeterministicSortedAndValid) {
  for (const ArrivalModel am :
       {ArrivalModel::Poisson, ArrivalModel::Diurnal, ArrivalModel::Bursty}) {
    for (const WorkModel wm : {WorkModel::Uniform, WorkModel::Pareto}) {
      FleetTraceOptions opt;
      opt.jobs = 2000;
      opt.seed = 42;
      opt.arrivals = am;
      opt.work = wm;
      opt.class_shares = {0.7, 0.2, 0.1};
      const auto a = fleet_trace(5, opt);
      const auto b = fleet_trace(5, opt);
      EXPECT_EQ(a, b) << "fleet_trace must be seed-deterministic";
      opt.seed = 43;
      EXPECT_NE(a, fleet_trace(5, opt));
      ASSERT_EQ(a.size(), 2000u);
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, i);
        EXPECT_LT(a[i].type, 5u);
        EXPECT_GT(a[i].work, 0.0);
        EXPECT_LE(a[i].priority, 2u);
        if (i > 0) ASSERT_GE(a[i].arrival, a[i - 1].arrival);
      }
    }
  }
}

TEST(FleetTrace, ParetoWorkIsHeavyTailedAndCapped) {
  FleetTraceOptions opt;
  opt.jobs = 50'000;
  opt.seed = 7;
  opt.work = WorkModel::Pareto;
  opt.mean_work = 8.0;
  opt.pareto_alpha = 1.5;
  opt.work_cap = 64.0;
  const auto trace = fleet_trace(3, opt);
  double max_work = 0.0, sum = 0.0;
  for (const JobSpec& j : trace) {
    max_work = std::max(max_work, j.work);
    sum += j.work;
    ASSERT_LE(j.work, opt.mean_work * opt.work_cap + 1e-9);
  }
  const double mean = sum / static_cast<double>(trace.size());
  EXPECT_NEAR(mean, opt.mean_work, 0.2 * opt.mean_work)
      << "Pareto work is scaled to roughly unit mean";
  EXPECT_GT(max_work, 10.0 * opt.mean_work)
      << "a 50k-job alpha=1.5 draw must show the heavy tail";
  // Uniform work, same options, never leaves [0.5, 1.5] x mean.
  opt.work = WorkModel::Uniform;
  for (const JobSpec& j : fleet_trace(3, opt)) {
    ASSERT_GE(j.work, 0.5 * opt.mean_work);
    ASSERT_LE(j.work, 1.5 * opt.mean_work);
  }
}

TEST(FleetTrace, DiurnalLoadSwingsWithThePhase) {
  FleetTraceOptions opt;
  opt.jobs = 40'000;
  opt.seed = 3;
  opt.arrivals = ArrivalModel::Diurnal;
  opt.mean_interarrival = 1.0;
  opt.diurnal_period = 2048.0;
  opt.diurnal_amplitude = 0.9;
  const auto trace = fleet_trace(2, opt);
  // Count arrivals landing in the rising half of each period (sin > 0,
  // boosted rate) vs the falling half: the swing must be visible.
  std::size_t up = 0, down = 0;
  for (const JobSpec& j : trace) {
    const double phase = std::fmod(j.arrival, opt.diurnal_period);
    (phase < opt.diurnal_period / 2.0 ? up : down) += 1;
  }
  EXPECT_GT(static_cast<double>(up), 1.5 * static_cast<double>(down))
      << "peak-phase arrivals must clearly outnumber trough-phase ones";
}

TEST(FleetTrace, BurstyArrivalsAreBurstierThanPoisson) {
  FleetTraceOptions opt;
  opt.jobs = 40'000;
  opt.seed = 5;
  opt.mean_interarrival = 1.0;
  opt.burst_boost = 16.0;
  opt.burst_on = 0.2;
  opt.burst_mean_len = 100.0;
  const auto cv2 = [](const std::vector<JobSpec>& trace) {
    double sum = 0.0, sq = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 1; i < trace.size(); ++i) {
      const double d = trace[i].arrival - trace[i - 1].arrival;
      sum += d;
      sq += d * d;
      ++n;
    }
    const double mean = sum / static_cast<double>(n);
    return (sq / static_cast<double>(n) - mean * mean) / (mean * mean);
  };
  opt.arrivals = ArrivalModel::Poisson;
  const double poisson_cv2 = cv2(fleet_trace(2, opt));
  opt.arrivals = ArrivalModel::Bursty;
  const double bursty_cv2 = cv2(fleet_trace(2, opt));
  EXPECT_NEAR(poisson_cv2, 1.0, 0.15) << "exponential interarrivals: CV^2=1";
  // Theoretical CV^2 for this mixture is ~1.43; anything clearly above
  // the Poisson baseline proves the modulation is live.
  EXPECT_GT(bursty_cv2, 1.25 * poisson_cv2)
      << "the two-state modulation must overdisperse interarrivals";
}

TEST(FleetTrace, PriorityClassSharesAreRespected) {
  FleetTraceOptions opt;
  opt.jobs = 30'000;
  opt.seed = 17;
  opt.class_shares = {0.6, 0.3, 0.1};
  const auto trace = fleet_trace(4, opt);
  std::array<std::size_t, 3> counts{};
  for (const JobSpec& j : trace) {
    ASSERT_LE(j.priority, 2u);
    ++counts[j.priority];
  }
  const double n = static_cast<double>(trace.size());
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.6, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.1, 0.02);
}

TEST(FleetTrace, RejectsDegenerateOptions) {
  EXPECT_THROW(fleet_trace(0, {}), std::invalid_argument);
  FleetTraceOptions bad;
  bad.mean_interarrival = 0.0;
  EXPECT_THROW(fleet_trace(2, bad), std::invalid_argument);
  bad = {};
  bad.diurnal_amplitude = 1.0;
  EXPECT_THROW(fleet_trace(2, bad), std::invalid_argument);
  bad = {};
  bad.burst_on = 1.0;
  EXPECT_THROW(fleet_trace(2, bad), std::invalid_argument);
  bad = {};
  bad.pareto_alpha = 1.0;
  EXPECT_THROW(fleet_trace(2, bad), std::invalid_argument);
  bad = {};
  bad.class_shares = std::vector<double>(kMaxPriority + 2, 1.0);
  EXPECT_THROW(fleet_trace(2, bad), std::invalid_argument);
  bad = {};
  bad.class_shares = {0.5, -0.5};
  EXPECT_THROW(fleet_trace(2, bad), std::invalid_argument);
}

// --- fleet-shaped end-to-end run ------------------------------------

// A moderately large fleet run through the indexed engine: every job
// completes, identities survive, and sampled regret stays finite.
// (The real scale test is bench/fleet_throughput; this keeps the
// engine honest at a size ctest can afford.)
TEST(FleetEngine, HandlesAFleetShapedTrace) {
  const auto truth = synthetic_truth();
  FleetTraceOptions opt;
  opt.jobs = 30'000;
  opt.seed = 2;
  opt.arrivals = ArrivalModel::Bursty;
  opt.work = WorkModel::Pareto;
  opt.mean_interarrival = 8.0 / (0.8 * 64.0 * 2.0);
  opt.class_shares = {0.8, 0.2};
  const auto trace = fleet_trace(truth.size(), opt);
  ClusterConfig cfg{64, 2};
  cfg.regret_sample = 100;
  CostModelPolicy policy{"oracle", truth};
  const auto res = simulate(cfg, truth, trace, policy);
  ASSERT_EQ(res.outcomes.size(), trace.size());
  for (const JobOutcome& o : res.outcomes) {
    ASSERT_GT(o.finish, 0.0);
    ASSERT_GE(o.stretch(), 1.0 - 1e-9);
  }
  EXPECT_EQ(res.billed_decisions, (trace.size() + 99) / 100);
  EXPECT_NEAR(res.mean_decision_regret, 0.0, 1e-9)
      << "the additive oracle stays regret-free under sampling";
}

}  // namespace
}  // namespace coperf::cluster
