// Unit tests for the DRAM channel and the memory hierarchy.
#include <gtest/gtest.h>

#include "sim/hierarchy.hpp"
#include "sim/memory.hpp"

namespace coperf::sim {
namespace {

TEST(MemoryChannel, UnloadedLatencyIsBasePlusService) {
  MemoryChannel ch{/*bytes_per_cycle=*/10.0, /*base_latency=*/200};
  const Cycle done = ch.read(1000, 64, 0);
  // service = ceil(64/10 + 0.5)-ish ~ 6-7 cycles, no queueing.
  EXPECT_GE(done, 1000u + 200u + 6u);
  EXPECT_LE(done, 1000u + 200u + 8u);
  EXPECT_EQ(ch.stats().reads, 1u);
  EXPECT_EQ(ch.stats().bytes_read, 64u);
}

TEST(MemoryChannel, BackToBackRequestsQueue) {
  MemoryChannel ch{10.0, 200};
  const Cycle first = ch.read(0, 64, 0);
  const Cycle second = ch.read(0, 64, 0);
  EXPECT_GT(second, first) << "same-cycle requests must serialize";
  EXPECT_GT(ch.stats().queue_delay_cycles, 0u);
}

TEST(MemoryChannel, ThroughputBoundedByPeak) {
  const double bpc = 10.0;
  MemoryChannel ch{bpc, 200};
  // Saturate: 10k back-to-back line reads at time 0.
  Cycle last = 0;
  for (int i = 0; i < 10'000; ++i) last = ch.read(0, 64, 0);
  const double achieved =
      static_cast<double>(ch.stats().bytes_read) / static_cast<double>(last);
  EXPECT_LE(achieved, bpc * 1.05);
  EXPECT_GE(achieved, bpc * 0.80);
}

TEST(MemoryChannel, PerAppAccounting) {
  MemoryChannel ch{10.0, 200};
  ch.read(0, 64, 0);
  ch.read(0, 64, 1);
  ch.read(0, 64, 1);
  ch.write(0, 64, 1);
  EXPECT_EQ(ch.bytes_of(0), 64u);
  EXPECT_EQ(ch.bytes_of(1), 3u * 64u);
  EXPECT_EQ(ch.stats().total_bytes(), 4u * 64u);
}

TEST(MemoryChannel, IdleChannelRecovers) {
  MemoryChannel ch{10.0, 200};
  for (int i = 0; i < 100; ++i) ch.read(0, 64, 0);
  // Far in the future the backlog is gone.
  const Cycle done = ch.read(1'000'000, 64, 0);
  EXPECT_LE(done, 1'000'000u + 200u + 8u);
  EXPECT_EQ(ch.backlog(2'000'000), 0u);
}

TEST(MemoryChannel, WritebacksConsumeBandwidthWithoutWaiters) {
  MemoryChannel ch{10.0, 200};
  ch.write(0, 64, 0);
  const Cycle done = ch.read(0, 64, 0);
  EXPECT_GT(done, 200u + 7u) << "read queues behind the writeback";
  EXPECT_EQ(ch.stats().writes, 1u);
}

// ---------------------------------------------------------------------
// MemorySystem (hierarchy)
// ---------------------------------------------------------------------

MachineConfig tiny_machine() {
  MachineConfig c;
  c.num_cores = 2;
  c.l1d = CacheConfig{1024, 2, 4};
  c.l2 = CacheConfig{4096, 4, 12};
  c.l3 = CacheConfig{16384, 4, 38};
  c.prefetch = PrefetchMask::all_off();
  return c;
}

TEST(MemorySystem, ColdMissGoesToMemoryThenHitsL1) {
  MemorySystem ms{tiny_machine()};
  const auto miss = ms.demand_access(0, 0x1000, 1, false, 0);
  EXPECT_EQ(miss.level, HitLevel::Mem);
  EXPECT_TRUE(miss.l2_miss);
  EXPECT_GT(miss.latency, 200u);
  const auto hit = ms.demand_access(0, 0x1008, 1, false, 100);
  EXPECT_EQ(hit.level, HitLevel::L1);
  EXPECT_EQ(hit.latency, 0u);
}

TEST(MemorySystem, PrivateCachesAreSeparate) {
  MemorySystem ms{tiny_machine()};
  (void)ms.demand_access(0, 0x1000, 1, false, 0);
  // Core 1 misses its private L1/L2 but hits the shared L3.
  const auto out = ms.demand_access(1, 0x1000, 1, false, 50);
  EXPECT_EQ(out.level, HitLevel::L3);
}

TEST(MemorySystem, InclusiveL3BackInvalidatesPrivates) {
  MachineConfig cfg = tiny_machine();
  cfg.l3_inclusive = true;
  MemorySystem ms{cfg};
  (void)ms.demand_access(0, 0, 1, false, 0);
  ASSERT_TRUE(ms.l1(0).probe(0));
  // Force every line of the (4-way) L3 set containing line 0 out.
  const std::uint64_t sets = ms.l3().num_sets();
  std::uint64_t filled = 0;
  for (std::uint64_t i = 1; filled < 64 && i < 100'000; ++i) {
    if (ms.l3().set_index(i) == ms.l3().set_index(0)) {
      (void)ms.demand_access(1, i << kLineBytesLog2, 1, false, 1000 + i);
      ++filled;
    }
  }
  EXPECT_FALSE(ms.l3().probe(0));
  EXPECT_FALSE(ms.l1(0).probe(0)) << "inclusion victim must leave L1";
  EXPECT_FALSE(ms.l2(0).probe(0)) << "inclusion victim must leave L2";
  (void)sets;
}

TEST(MemorySystem, NonInclusiveL3KeepsPrivateCopies) {
  MachineConfig cfg = tiny_machine();
  cfg.l3_inclusive = false;
  MemorySystem ms{cfg};
  (void)ms.demand_access(0, 0, 1, false, 0);
  for (std::uint64_t i = 1, filled = 0; filled < 64 && i < 100'000; ++i) {
    if (ms.l3().set_index(i) == ms.l3().set_index(0)) {
      (void)ms.demand_access(1, i << kLineBytesLog2, 1, false, 1000 + i);
      ++filled;
    }
  }
  EXPECT_TRUE(ms.l1(0).probe(0));
}

TEST(MemorySystem, StreamingWithPrefetchTurnsMissesIntoHits) {
  MachineConfig cfg = tiny_machine();
  cfg.prefetch = PrefetchMask::all_on();
  MemorySystem ms{cfg};
  std::uint64_t mem_hits = 0, total = 0;
  Cycle now = 0;
  for (Addr a = 0; a < 400 * kLineBytes; a += kLineBytes) {
    const auto out = ms.demand_access(0, a, 42, false, now);
    now += 50;
    ++total;
    mem_hits += out.level == HitLevel::Mem;
  }
  // The streamer should capture the vast majority of the stream.
  EXPECT_LT(mem_hits, total / 4)
      << "sequential stream must be mostly prefetched";
}

TEST(MemorySystem, PrefetchTrafficIsAccounted) {
  MachineConfig cfg = tiny_machine();
  cfg.prefetch = PrefetchMask::all_on();
  MemorySystem ms{cfg};
  Cycle now = 0;
  for (Addr a = 0; a < 64 * kLineBytes; a += kLineBytes) {
    (void)ms.demand_access(0, a, 42, false, now);
    now += 100;
  }
  const auto& st = ms.channel().stats();
  // More bytes were moved than demand misses alone would explain.
  EXPECT_GT(st.bytes_read, 0u);
  EXPECT_GT(ms.prefetcher(0).issued(), 0u);
}

TEST(MemorySystem, WriteAllocatesAndDirtyWritebackReachesMemory) {
  MemorySystem ms{tiny_machine()};
  // Store misses allocate...
  (void)ms.demand_access(0, 0x2000, 1, /*is_write=*/true, 0);
  EXPECT_TRUE(ms.l1(0).probe(line_of(0x2000)));
  const std::uint64_t writes_before = ms.channel().stats().writes;
  // ...then push enough conflicting lines through the tiny hierarchy to
  // force the dirty line all the way out.
  Cycle now = 100;
  for (Addr a = 0x100000; a < 0x100000 + 4096 * kLineBytes; a += kLineBytes)
    (void)ms.demand_access(0, a, 2, false, now += 10);
  EXPECT_GT(ms.channel().stats().writes, writes_before)
      << "the dirty line must eventually be written back to DRAM";
}

}  // namespace
}  // namespace coperf::sim
