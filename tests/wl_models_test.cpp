// Behavioural tests for the non-graph workload models: every model
// must run to completion on a tiny machine, and its memory-system
// signature must match its paper characterization (bandwidth class,
// cache locality, chain-vs-streaming, sync-boundedness).
#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "wl/registry.hpp"

namespace coperf::wl {
namespace {

harness::RunOptions tiny_opts(unsigned threads = 4) {
  harness::RunOptions o;
  o.machine = sim::MachineConfig::scaled();
  o.size = SizeClass::Tiny;
  o.threads = threads;
  o.sample_window = 50'000;
  return o;
}

/// Every workload (incl. minis) completes a Tiny run within the cycle
/// limit and retires a sane number of instructions.
class AllModelsRun : public ::testing::TestWithParam<const char*> {};

TEST_P(AllModelsRun, CompletesAndRetiresWork) {
  const auto r = harness::run_solo(GetParam(), tiny_opts());
  EXPECT_FALSE(r.hit_cycle_limit) << GetParam();
  EXPECT_GT(r.cycles, 1000u);
  EXPECT_GT(r.stats.instructions, 1000u);
  EXPECT_GT(r.stats.loads + r.stats.stores, 0u);
  EXPECT_GT(r.footprint_bytes, 0u);
  EXPECT_EQ(r.threads, 4u);
}

INSTANTIATE_TEST_SUITE_P(
    Everything, AllModelsRun,
    ::testing::Values("G-PR", "G-BFS", "G-BC", "G-SSSP", "G-CC", "P-PR",
                      "P-CC", "P-SSSP", "CIFAR", "MNIST", "LSTM", "ATIS",
                      "blackscholes", "freqmine", "swaptions", "streamcluster",
                      "lulesh", "IRSmk", "AMG2006", "mcf", "fotonik3d",
                      "deepsjeng", "nab", "xalancbmk", "cactuBSSN", "Stream",
                      "Bandit"));

TEST(ModelDeterminism, SameSeedSameCycles) {
  const auto a = harness::run_solo("CIFAR", tiny_opts());
  const auto b = harness::run_solo("CIFAR", tiny_opts());
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.stats.instructions, b.stats.instructions);
  EXPECT_EQ(a.stats.l3_misses, b.stats.l3_misses);
}

TEST(ModelSignature, StreamOutpacesBanditInBandwidth) {
  const auto stream = harness::run_solo("Stream", tiny_opts());
  const auto bandit = harness::run_solo("Bandit", tiny_opts());
  EXPECT_GT(stream.avg_bw_gbs, bandit.avg_bw_gbs)
      << "prefetch-friendly STREAM must beat conflict-missing Bandit";
  EXPECT_GT(stream.avg_bw_gbs, 10.0);
}

TEST(ModelSignature, BanditMissesEverywhere) {
  const auto r = harness::run_solo("Bandit", tiny_opts());
  const double miss_rate =
      static_cast<double>(r.stats.l3_misses) /
      static_cast<double>(r.stats.loads);
  EXPECT_GT(miss_rate, 0.8) << "Bandit accesses must defeat all caches";
}

TEST(ModelSignature, ComputeBoundAppsHaveLowBandwidth) {
  for (const char* name : {"swaptions", "deepsjeng", "nab"}) {
    const auto r = harness::run_solo(name, tiny_opts());
    EXPECT_LT(r.avg_bw_gbs, 4.0) << name << " must be co-run friendly";
  }
}

TEST(ModelSignature, StreamingAppsHaveHighBandwidth) {
  for (const char* name : {"fotonik3d", "IRSmk"}) {
    const auto r = harness::run_solo(name, tiny_opts());
    EXPECT_GT(r.avg_bw_gbs, 8.0) << name << " must be an offender-class app";
  }
}

TEST(ModelSignature, ChainWorkloadsStall) {
  const auto r = harness::run_solo("mcf", tiny_opts());
  EXPECT_GT(r.metrics.cpi, 1.5) << "pointer chasing must hurt CPI";
  EXPECT_GT(r.metrics.llc_mpki, 1.0);
}

TEST(ModelSignature, AtisIsBarrierBound) {
  const auto r = harness::run_solo("ATIS", tiny_opts(4));
  const double barrier_share =
      static_cast<double>(r.stats.barrier_wait_cycles) /
      static_cast<double>(r.stats.cycles);
  EXPECT_GT(barrier_share, 0.3)
      << "ATIS at 4 threads must spend heavily in barriers (paper: ~80%)";
}

TEST(ModelSignature, AmgHasSerialPhases) {
  const auto r = harness::run_solo("AMG2006", tiny_opts(4));
  bool found_serial = false;
  for (const auto& region : r.regions)
    if (region.region.find("setup") != std::string::npos) found_serial = true;
  EXPECT_TRUE(found_serial) << "AMG must report its serial setup region";
}

TEST(ModelRegions, HotRegionsAreTagged) {
  const auto ppr = harness::run_solo("P-PR", tiny_opts());
  bool has_gather = false;
  for (const auto& region : ppr.regions)
    if (region.region.find("gather") != std::string::npos) has_gather = true;
  EXPECT_TRUE(has_gather) << "P-PR must attribute cycles to gather()";

  const auto fot = harness::run_solo("fotonik3d", tiny_opts());
  bool has_uus = false;
  for (const auto& region : fot.regions)
    if (region.region.find("UUS") != std::string::npos) has_uus = true;
  EXPECT_TRUE(has_uus) << "fotonik3d must attribute cycles to UUS";
}

TEST(ModelFootprints, LlcClassesAreRespected) {
  // Streaming offenders need footprints well beyond the scaled LLC at
  // the default (Small) size class; checked at construction time.
  const std::size_t llc = sim::MachineConfig::scaled().l3.size_bytes;
  const AppParams p{0, 4, SizeClass::Small, 1};
  auto& reg = Registry::instance();
  EXPECT_GT(reg.create("fotonik3d", p)->footprint_bytes(), 2 * llc);
  EXPECT_GT(reg.create("Stream", p)->footprint_bytes(), 2 * llc);
  EXPECT_GT(reg.create("G-CC", p)->footprint_bytes(), llc);
  EXPECT_LT(reg.create("swaptions", p)->footprint_bytes(), llc);
}

TEST(ModelVerify, NonGraphModelsReportSuccess) {
  // Ghost-traffic models have no algorithmic output to check; their
  // verify() must simply succeed after a run.
  auto model = Registry::instance().create(
      "Stream", AppParams{0, 2, SizeClass::Tiny, 1});
  EXPECT_EQ(model->verify(), "");
}

}  // namespace
}  // namespace coperf::wl
