// Group-truth tests (harness/grouptruth.hpp): the pairwise projection
// matches the plan-built matrix, every unique group simulates exactly
// once by RunCache counts, a warm COPERF_RUN_CACHE_DIR-style disk
// layer re-simulates zero group-truth trials on the second build,
// fallback accounting above the measured arity, and the cluster
// simulator running on measured group truth with a zero-regret
// group-truth oracle.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "cluster/cluster.hpp"
#include "harness/grouptruth.hpp"
#include "harness/plan.hpp"
#include "harness/runcache.hpp"
#include "harness/scheduler.hpp"

namespace coperf::harness {
namespace {

RunOptions tiny_opts() {
  RunOptions o;
  o.machine = sim::MachineConfig::scaled();
  o.size = wl::SizeClass::Tiny;
  o.seed = 33;
  return o;
}

GroupTruth::Config tiny_config(std::vector<std::string> workloads,
                               unsigned max_arity = 3, unsigned reps = 1) {
  GroupTruth::Config cfg;
  cfg.workloads = std::move(workloads);
  cfg.opt = tiny_opts();
  cfg.member_threads = 2;
  cfg.reps = reps;
  cfg.max_arity = max_arity;
  return cfg;
}

/// Parks the disk layer and clears stats for exact hit/miss accounting
/// (CI sets COPERF_RUN_CACHE_DIR); restores on destruction.
struct CacheSandbox {
  CacheSandbox() : saved(RunCache::instance().disk_dir()) {
    RunCache::instance().set_disk_dir("");
    RunCache::instance().clear();
    RunCache::instance().reset_stats();
  }
  ~CacheSandbox() { RunCache::instance().set_disk_dir(saved); }
  std::string saved;
};

TEST(GroupTruth, ValidatesItsConfig) {
  EXPECT_THROW(GroupTruth{tiny_config({})}, std::invalid_argument);
  EXPECT_THROW(GroupTruth{tiny_config({"nonsense"})}, std::out_of_range);
  auto bad_arity = tiny_config({"Bandit"});
  bad_arity.max_arity = 1;
  EXPECT_THROW(GroupTruth{bad_arity}, std::invalid_argument);
  auto no_reps = tiny_config({"Bandit"});
  no_reps.reps = 0;
  EXPECT_THROW(GroupTruth{no_reps}, std::invalid_argument);
  auto too_wide = tiny_config({"Bandit"});
  too_wide.max_arity = 3;
  too_wide.member_threads = 4;  // 12 cores on an 8-core machine
  EXPECT_THROW(GroupTruth{too_wide}, std::invalid_argument);

  GroupTruth ok{tiny_config({"Bandit", "swaptions"})};
  EXPECT_EQ(ok.size(), 2u);
  EXPECT_THROW((void)ok.slowdown(9, {}), std::out_of_range);
  EXPECT_THROW((void)ok.solo(9), std::out_of_range);
  EXPECT_THROW(ok.prefetch({{0}}), std::invalid_argument);  // < 2 residents
  EXPECT_THROW(ok.prefetch({{0, 0, 1, 1}}), std::invalid_argument);  // > arity
}

TEST(GroupTruth, PairwiseProjectionMatchesThePlanMatrix) {
  CacheSandbox sandbox;
  const std::vector<std::string> subset = {"Bandit", "swaptions"};
  GroupTruth truth{tiny_config(subset, /*max_arity=*/2)};
  const CorunMatrix& proj = truth.pairwise();

  // The reference matrix through the plan API at the same member
  // geometry (2 fg + 2 bg threads).
  RunOptions mopt = tiny_opts();
  mopt.threads = 2;
  mopt.bg_threads = 2;
  ExperimentPlan plan{mopt};
  const MatrixSpec spec{subset, 1, {}};
  plan.add_matrix(spec);
  const CorunMatrix direct = plan.execute().matrix(spec);

  ASSERT_EQ(proj.size(), direct.size());
  for (std::size_t fg = 0; fg < proj.size(); ++fg) {
    EXPECT_EQ(proj.solo_cycles[fg], direct.solo_cycles[fg]);
    for (std::size_t bg = 0; bg < proj.size(); ++bg) {
      EXPECT_DOUBLE_EQ(proj.at(fg, bg), direct.at(fg, bg));
      // slowdown(fg, {bg}) IS the matrix entry -- the 2-resident
      // projection, by definition.
      EXPECT_DOUBLE_EQ(truth.slowdown(fg, {bg}), proj.at(fg, bg));
    }
  }
  EXPECT_EQ(truth.fallbacks(), 0u);
  EXPECT_DOUBLE_EQ(truth.slowdown(0, {}), 1.0) << "solo slowdown is 1";
}

// The tentpole accounting criterion: prefetching every <= 3-resident
// multiset simulates each unique group exactly once (RunCache miss
// counts), and a second GroupTruth over a warm disk layer -- the
// COPERF_RUN_CACHE_DIR path CI exercises -- re-simulates ZERO
// group-truth trials.
TEST(GroupTruth, EveryGroupSimulatesOnceAndWarmDiskRunsResimulateNothing) {
  CacheSandbox sandbox;
  RunCache& cache = RunCache::instance();
  const auto disk =
      std::filesystem::temp_directory_path() /
      ("coperf-grouptruth-test-" + std::to_string(::getpid()));
  std::filesystem::remove_all(disk);
  cache.set_disk_dir(disk.string());

  const std::vector<std::string> subset = {"Bandit", "swaptions"};
  // 2 types, arity 3: 2 solos + 4 pair trials ((a|a),(a|b),(b|a),(b|b))
  // + 6 trio trials ((a|aa),(a|ab),(a|bb),(b|aa),(b|ab),(b|bb)) = 12.
  constexpr std::uint64_t kUniqueTrials = 12;
  {
    GroupTruth cold{tiny_config(subset, /*max_arity=*/3)};
    const auto stats = cold.prefetch_all(3);
    EXPECT_EQ(stats.trials, kUniqueTrials);
    EXPECT_EQ(stats.residue, kUniqueTrials);
    const auto after = cache.stats();
    EXPECT_EQ(after.misses, kUniqueTrials)
        << "each unique group must simulate exactly once";
    EXPECT_EQ(after.hits, 0u);
    EXPECT_EQ(cold.measured_trials(), 10u);  // 4 pairs + 6 trios
    EXPECT_EQ(cold.observations().size(), 10u);
    EXPECT_EQ(cold.fallbacks(), 0u);
    EXPECT_EQ(cold.truncated_trials(), 0u)
        << "Tiny groups must finish inside the cycle limit";
  }

  // Second build, fresh process simulated: in-memory cache dropped,
  // disk layer warm.
  cache.clear();
  cache.reset_stats();
  {
    GroupTruth warm{tiny_config(subset, /*max_arity=*/3)};
    const auto stats = warm.prefetch_all(3);
    EXPECT_EQ(stats.residue, 0u) << "warm disk layer must serve every trial";
    const auto after = cache.stats();
    EXPECT_EQ(after.misses, 0u)
        << "the warm COPERF_RUN_CACHE_DIR path must re-simulate zero "
           "group-truth trials";
    EXPECT_EQ(after.disk_hits, kUniqueTrials);
    EXPECT_GT(warm.slowdown(0, {0, 1}), 0.0);
  }

  cache.set_disk_dir("");
  std::filesystem::remove_all(disk);
}

TEST(GroupTruth, GroupsAboveTheMeasuredArityFallBackToComposition) {
  CacheSandbox sandbox;
  const std::vector<std::string> subset = {"Bandit", "swaptions"};
  GroupTruth truth{tiny_config(subset, /*max_arity=*/2)};
  const CorunMatrix proj = truth.pairwise();
  const auto misses_before = RunCache::instance().stats().misses;

  const double composed = truth.slowdown(0, {0, 1});
  EXPECT_EQ(truth.fallbacks(), 1u);
  EXPECT_DOUBLE_EQ(composed, corun_slowdown(proj, 0, {0, 1}))
      << "above max_arity the answer is the additive composition of the "
         "pairwise projection";
  EXPECT_EQ(RunCache::instance().stats().misses, misses_before)
      << "a fallback must not simulate anything";
}

// End to end on measured truth: a 3-slot cluster billed at measured
// 3-resident groups, zero pairwise fallbacks, and the group-truth
// oracle with zero decision regret by construction.
TEST(GroupTruth, PrefetchAllIsPoolSizeInvariant) {
  // Every trial simulates an isolated Machine, so the truth table must
  // be BIT-identical no matter how many host lanes sharded the build.
  // Build the Tiny trio table serially, then again across a worker
  // pool, clearing the run cache in between so both actually simulate.
  CacheSandbox sandbox;
  auto build = [](unsigned host_threads) {
    RunCache::instance().clear();
    RunCache::instance().reset_stats();
    auto cfg = tiny_config({"Bandit", "swaptions", "Stream"});
    cfg.host_threads = host_threads;
    GroupTruth truth{cfg};
    truth.prefetch_all(3);
    return truth.observations();
  };
  const auto serial = build(1);
  const auto pooled = build(4);
  ASSERT_FALSE(serial.empty());
  ASSERT_EQ(serial.size(), pooled.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].type, pooled[i].type) << "observation " << i;
    EXPECT_EQ(serial[i].others, pooled[i].others) << "observation " << i;
    // Exact double comparison on purpose: any lane-count dependence in
    // the simulation would show up here as a ULP-level wobble.
    EXPECT_EQ(serial[i].slowdown, pooled[i].slowdown) << "observation " << i;
    EXPECT_EQ(serial[i].tail_slowdown, pooled[i].tail_slowdown)
        << "observation " << i;
  }
}

TEST(GroupTruth, ClusterOnMeasuredGroupTruthHasZeroFallbacksAndOracleRegret) {
  CacheSandbox sandbox;
  const std::vector<std::string> subset = {"Bandit", "swaptions"};
  GroupTruth truth{tiny_config(subset, /*max_arity=*/3)};
  truth.prefetch_all(3);

  cluster::ClusterConfig cfg;
  cfg.machines = 2;
  cfg.slots = 3;
  cluster::TraceOptions topt;
  topt.jobs = 60;
  topt.seed = 11;
  topt.mean_work = 4.0;
  topt.mean_interarrival = 1.0;
  const auto trace = cluster::synthetic_trace(subset.size(), topt);

  cluster::GroupTruthPolicy oracle{"oracle", truth};
  const auto run = cluster::simulate(cfg, truth, trace, oracle);
  EXPECT_EQ(run.pairwise_fallbacks, 0u)
      << "every billed group fits the measured arity";
  EXPECT_NEAR(run.mean_decision_regret, 0.0, 1e-12)
      << "the group-truth oracle minimizes exactly what the simulator bills";
  EXPECT_GE(run.mean_stretch, 1.0 - 1e-9);

  cluster::RandomPolicy random{7};
  const auto rnd = cluster::simulate(cfg, truth, trace, random);
  EXPECT_EQ(rnd.pairwise_fallbacks, 0u);
  EXPECT_GE(rnd.mean_decision_regret, 0.0);
}

}  // namespace
}  // namespace coperf::harness
