// Fast-tier suite for the N-way group harness (harness/group.hpp):
// run_group({fg, bg}) must reproduce run_pair bit-identically (the
// long-tier sim_equivalence_test pins the same path against golden
// snapshots from the pre-group tree), 3-way groups must run end to
// end on Tiny inputs, and invalid groups must be rejected.
#include <gtest/gtest.h>

#include <stdexcept>

#include "harness/group.hpp"
#include "harness/runcache.hpp"
#include "harness/runner.hpp"
#include "perf/pcm.hpp"
#include "sim/machine.hpp"
#include "wl/registry.hpp"

namespace coperf::harness {
namespace {

RunOptions tiny_opts(unsigned threads = 4) {
  RunOptions o;
  o.machine = sim::MachineConfig::scaled();
  o.size = wl::SizeClass::Tiny;
  o.threads = threads;
  o.seed = 11;
  return o;
}

void expect_stats_eq(const sim::CoreStats& a, const sim::CoreStats& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(a.l1d_hits, b.l1d_hits);
  EXPECT_EQ(a.l1d_misses, b.l1d_misses);
  EXPECT_EQ(a.l2_hits, b.l2_hits);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.l3_hits, b.l3_hits);
  EXPECT_EQ(a.l3_misses, b.l3_misses);
  EXPECT_EQ(a.bytes_from_mem, b.bytes_from_mem);
  EXPECT_EQ(a.bytes_written_back, b.bytes_written_back);
  EXPECT_EQ(a.stall_cycles_mem, b.stall_cycles_mem);
  EXPECT_EQ(a.pending_l2_cycles, b.pending_l2_cycles);
  EXPECT_EQ(a.barrier_wait_cycles, b.barrier_wait_cycles);
  EXPECT_EQ(a.prefetches_issued, b.prefetches_issued);
}

TEST(Group, TwoMemberGroupIsBitIdenticalToRunPair) {
  const RunOptions opt = tiny_opts();
  const GroupSpec spec = GroupSpec::pair("Bandit", "Stream", opt.threads,
                                         opt.bg_threads);
  auto& cache = RunCache::instance();
  const std::string saved_disk = cache.disk_dir();
  cache.set_disk_dir("");  // both runs must really simulate
  cache.clear();
  const GroupResult g = run_group(spec, opt);
  cache.clear();  // the pair must not just read the cache
  const CorunResult p = run_pair("Bandit", "Stream", opt);
  cache.set_disk_dir(saved_disk);

  ASSERT_EQ(g.members.size(), 2u);
  EXPECT_EQ(g.members[0].workload, p.fg.workload);
  EXPECT_EQ(g.members[0].threads, p.fg.threads);
  EXPECT_EQ(g.members[0].cycles, p.fg.cycles);
  EXPECT_EQ(g.members[0].seconds, p.fg.seconds);
  EXPECT_EQ(g.members[0].avg_bw_gbs, p.fg.avg_bw_gbs);
  EXPECT_EQ(g.members[0].footprint_bytes, p.fg.footprint_bytes);
  EXPECT_EQ(g.members[0].hit_cycle_limit, p.fg.hit_cycle_limit);
  expect_stats_eq(g.members[0].stats, p.fg.stats);
  ASSERT_EQ(g.members[0].regions.size(), p.fg.regions.size());
  for (std::size_t i = 0; i < g.members[0].regions.size(); ++i) {
    EXPECT_EQ(g.members[0].regions[i].region, p.fg.regions[i].region);
    expect_stats_eq(g.members[0].regions[i].stats, p.fg.regions[i].stats);
  }
  EXPECT_EQ(g.members[1].workload, p.bg_workload);
  EXPECT_EQ(g.runs_completed[1], p.bg_runs_completed);
  expect_stats_eq(g.members[1].stats, p.bg_stats);
  EXPECT_EQ(g.members[1].avg_bw_gbs, p.bg_avg_bw_gbs);
  EXPECT_EQ(g.total_avg_bw_gbs, p.total_avg_bw_gbs);
}

/// Independent ground truth: the same pair assembled directly on a
/// Machine, with the historical core placement and seed convention.
TEST(Group, TwoMemberGroupMatchesDirectMachineAssembly) {
  const RunOptions opt = tiny_opts();
  const auto& reg = wl::Registry::instance();
  auto fg_model =
      reg.create("Bandit", wl::AppParams{0, opt.threads, opt.size, opt.seed});
  auto bg_model = reg.create(
      "Stream", wl::AppParams{1, opt.bg_threads, opt.size, opt.seed + 0x9E37u});

  sim::Machine m{opt.machine};
  m.set_sample_window(opt.sample_window);
  sim::AppBinding fgb;
  fgb.id = 0;
  for (unsigned c = 0; c < opt.threads; ++c) fgb.cores.push_back(c);
  fgb.sources = fg_model->sources();
  m.add_app(std::move(fgb));
  sim::AppBinding bgb;
  bgb.id = 1;
  for (unsigned c = 0; c < opt.bg_threads; ++c)
    bgb.cores.push_back(opt.threads + c);
  bgb.sources = bg_model->sources();
  bgb.background = true;
  bgb.restart = [raw = bg_model.get()] { raw->restart(); };
  m.add_app(std::move(bgb));
  const sim::RunOutcome out = m.run();

  auto& cache = RunCache::instance();
  const std::string saved_disk = cache.disk_dir();
  cache.set_disk_dir("");
  cache.clear();
  const GroupResult g = run_group(
      GroupSpec::pair("Bandit", "Stream", opt.threads, opt.bg_threads), opt);
  cache.set_disk_dir(saved_disk);
  EXPECT_EQ(g.members[0].cycles, out.app_finish[0]);
  EXPECT_EQ(g.members[1].cycles, out.app_finish[1]);
  EXPECT_EQ(g.finish_cycle, out.finish_cycle);
  EXPECT_EQ(g.runs_completed[1], out.bg_runs[1]);
  expect_stats_eq(g.members[0].stats, m.app_stats(0));
  expect_stats_eq(g.members[1].stats, m.app_stats(1));
}

TEST(Group, ThreeWayGroupRunsEndToEnd) {
  const RunOptions opt = tiny_opts();
  GroupSpec spec;
  spec.members = {MemberSpec{"Bandit", 2, {}, false},
                  MemberSpec{"swaptions", 2, {}, false},
                  MemberSpec{"Stream", 4, {}, true}};
  const GroupResult g = run_group(spec, opt);

  ASSERT_EQ(g.members.size(), 3u);
  ASSERT_EQ(g.runs_completed.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(g.members[i].stats.instructions, 0u) << "member " << i;
    EXPECT_GT(g.members[i].stats.cycles, 0u) << "member " << i;
    EXPECT_EQ(g.members[i].threads, spec.members[i].threads);
    EXPECT_FALSE(g.members[i].hit_cycle_limit);
  }
  // Run-to-completion members never report loop iterations.
  EXPECT_EQ(g.runs_completed[0], 0u);
  EXPECT_EQ(g.runs_completed[1], 0u);
  // The group ends when the last foreground retires.
  EXPECT_EQ(g.finish_cycle,
            std::max(g.members[0].cycles, g.members[1].cycles));
  EXPECT_FALSE(g.hit_cycle_limit);
  // Per-member bandwidth shares are consistent with the socket total.
  EXPECT_GT(g.total_avg_bw_gbs, 0.0);
  for (const RunResult& m : g.members)
    EXPECT_GE(g.total_avg_bw_gbs + 0.5, m.avg_bw_gbs);
}

TEST(Group, ThreeWayInterferenceSlowsTheVictim) {
  const RunOptions opt = tiny_opts();
  const sim::Cycle solo = run_solo("Bandit", [&] {
                            RunOptions o = opt;
                            o.threads = 2;
                            return o;
                          }()).cycles;
  GroupSpec trio;
  trio.members = {MemberSpec{"Bandit", 2, {}, false},
                  MemberSpec{"Stream", 3, {}, true},
                  MemberSpec{"fotonik3d", 3, {}, true}};
  const GroupResult g = run_group(trio, opt);
  EXPECT_GT(g.members[0].cycles, solo)
      << "a bandwidth victim must slow down next to two streaming offenders";
}

TEST(Group, CycleLimitIsFlagged) {
  RunOptions opt = tiny_opts();
  opt.cycle_limit = 20'000;  // far below any Tiny finish time
  const GroupResult g =
      run_group(GroupSpec::pair("Bandit", "Stream", 4, 4), opt);
  EXPECT_TRUE(g.hit_cycle_limit);
  for (const RunResult& m : g.members) EXPECT_TRUE(m.hit_cycle_limit);
}

TEST(Group, RejectsInvalidSpecs) {
  const RunOptions opt = tiny_opts();
  EXPECT_THROW(run_group(GroupSpec{}, opt), std::invalid_argument);

  GroupSpec all_bg;
  all_bg.members = {MemberSpec{"Bandit", 2, {}, true},
                    MemberSpec{"Stream", 2, {}, true}};
  EXPECT_THROW(run_group(all_bg, opt), std::invalid_argument);

  GroupSpec zero_threads;
  zero_threads.members = {MemberSpec{"Bandit", 0, {}, false}};
  EXPECT_THROW(run_group(zero_threads, opt), std::invalid_argument);

  GroupSpec oversubscribed;
  oversubscribed.members = {MemberSpec{"Bandit", 4, {}, false},
                            MemberSpec{"Stream", 3, {}, false},
                            MemberSpec{"swaptions", 3, {}, false}};
  EXPECT_THROW(run_group(oversubscribed, opt), std::invalid_argument);

  GroupResult three;
  three.members.resize(3);
  EXPECT_THROW(to_corun(three), std::invalid_argument);
}

TEST(Group, MedianRanksByFirstMember) {
  const RunOptions opt = tiny_opts();
  const GroupSpec spec = GroupSpec::solo("Bandit", 2);
  const GroupResult med = run_group_median(spec, opt, 3);
  // Median-of-3 must be one of the three seeds' results.
  bool found = false;
  for (unsigned r = 0; r < 3; ++r) {
    RunOptions o = opt;
    o.seed = opt.seed + r;
    found |= run_group(spec, o).members[0].cycles == med.members[0].cycles;
  }
  EXPECT_TRUE(found);
  EXPECT_THROW(run_group_median(spec, opt, 0), std::invalid_argument);
}

TEST(Group, CacheKeyCoversMembersAndSemantics) {
  const RunOptions opt = tiny_opts();
  const std::string pair_ab =
      RunCache::group_key(GroupSpec::pair("Bandit", "Stream", 4, 4), opt);
  EXPECT_NE(pair_ab,
            RunCache::group_key(GroupSpec::pair("Stream", "Bandit", 4, 4), opt))
      << "member order is placement order, not symmetric";
  EXPECT_NE(pair_ab,
            RunCache::group_key(GroupSpec::pair("Bandit", "Stream", 2, 4), opt))
      << "per-member threads must be in the key";

  GroupSpec both_fg = GroupSpec::pair("Bandit", "Stream", 4, 4);
  both_fg.members[1].restart_until_done = false;
  EXPECT_NE(pair_ab, RunCache::group_key(both_fg, opt))
      << "restart semantics must be in the key";

  GroupSpec sized = GroupSpec::pair("Bandit", "Stream", 4, 4);
  sized.members[1].size = wl::SizeClass::Small;
  EXPECT_NE(pair_ab, RunCache::group_key(sized, opt))
      << "a per-member size override must be in the key";
}

}  // namespace
}  // namespace coperf::harness
